#include <gtest/gtest.h>

#include "depchaos/loader/loader.hpp"
#include "depchaos/spack/environment.hpp"

namespace depchaos::spack {
namespace {

Repo env_repo() {
  Repo repo;
  repo.add_package_py("class Zlib(Package):\n    version(\"1.2.12\")\n"
                      "    version(\"1.2.11\")\n");
  repo.add_package_py(
      "class Hdf5(Package):\n    version(\"1.12.1\")\n    version(\"1.10.8\")\n"
      "    depends_on(\"zlib\")\n");
  repo.add_package_py(
      "class Viz(Package):\n    version(\"3.0\")\n"
      "    depends_on(\"hdf5@1.10\")\n");
  repo.add_package_py(
      "class Sim(Package):\n    version(\"2.0\")\n"
      "    depends_on(\"hdf5\")\n    depends_on(\"zlib\")\n");
  return repo;
}

TEST(Environment, SharedDependenciesUnify) {
  const Repo repo = env_repo();
  const Concretizer concretizer(repo);
  const auto env = concretize_environment(concretizer, {"sim", "viz"});
  EXPECT_EQ(env.roots, (std::vector<std::string>{"sim", "viz"}));
  // viz pins hdf5@1.10; unification forces sim onto the same node.
  EXPECT_EQ(env.dag.nodes.count("hdf5"), 1u);
  EXPECT_EQ(env.dag.at("hdf5").version, "1.10.8");
  EXPECT_EQ(env.dag.nodes.count("zlib"), 1u);
}

TEST(Environment, ContradictoryRootsThrow) {
  const Repo repo = env_repo();
  const Concretizer concretizer(repo);
  EXPECT_THROW(concretize_environment(
                   concretizer, {"sim ^hdf5@1.12", "viz"}),  // viz wants 1.10
               ResolveError);
}

TEST(Environment, SingleRootMatchesPlainConcretize) {
  const Repo repo = env_repo();
  const Concretizer concretizer(repo);
  const auto env = concretize_environment(concretizer, {"sim"});
  const auto plain = concretizer.concretize("sim");
  EXPECT_EQ(env.dag.size(), plain.size());
  EXPECT_EQ(env.dag.dag_hash("sim"), plain.dag_hash("sim"));
}

TEST(Environment, EmptyRootListThrows) {
  const Repo repo = env_repo();
  const Concretizer concretizer(repo);
  EXPECT_THROW(concretize_environment(concretizer, {}), ResolveError);
}

TEST(Environment, InstallPublishesMergedView) {
  const Repo repo = env_repo();
  const Concretizer concretizer(repo);
  const auto env = concretize_environment(concretizer, {"sim", "viz"});

  vfs::FileSystem fs;
  pkg::store::Store store(fs, "/spack/store");
  const auto installed = install_environment(store, env);
  ASSERT_EQ(installed.per_root.size(), 2u);

  // Both executables exist and load.
  loader::Loader loader(fs);
  for (const auto& root : installed.per_root) {
    EXPECT_TRUE(loader.load(root.exe_path).success);
  }
  // The merged view exposes both binaries and the shared libraries once.
  EXPECT_TRUE(fs.exists(installed.view_path + "/bin/sim"));
  EXPECT_TRUE(fs.exists(installed.view_path + "/bin/viz"));
  EXPECT_TRUE(fs.exists(installed.view_path + "/lib/libhdf5.so"));
  EXPECT_TRUE(fs.exists(installed.view_path + "/lib/libzlib.so"));
}

TEST(Environment, SharedNodesInstallOnce) {
  const Repo repo = env_repo();
  const Concretizer concretizer(repo);
  const auto env = concretize_environment(concretizer, {"sim", "viz"});
  vfs::FileSystem fs;
  pkg::store::Store store(fs, "/spack/store");
  (void)install_environment(store, env);
  // 4 packages total despite two roots sharing hdf5+zlib.
  EXPECT_EQ(store.packages().size(), env.dag.size());
}

}  // namespace
}  // namespace depchaos::spack
