// Language-layer package managers (§II-E) and store garbage collection.

#include <gtest/gtest.h>

#include "depchaos/elf/patcher.hpp"
#include "depchaos/pkg/pip.hpp"
#include "depchaos/pkg/store.hpp"

namespace depchaos::pkg {
namespace {

// ------------------------------------------------------------------- pip

TEST(Pip, InstallListUninstall) {
  vfs::FileSystem fs;
  pip::SitePackages site(fs, "/usr/lib/python3.9/site-packages");
  site.install({"numpy", "1.22.3", {}});
  site.install(pip::PyPackage{"scipy", "1.8.0", {{"numpy", "1.20"}}});
  ASSERT_EQ(site.list().size(), 2u);
  EXPECT_EQ(site.installed_version("numpy")->version, "1.22.3");
  site.uninstall("numpy");
  EXPECT_FALSE(site.installed_version("numpy").has_value());
}

TEST(Pip, VersionComparison) {
  EXPECT_LT(pip::compare_py_versions("1.9", "1.10"), 0);
  EXPECT_EQ(pip::compare_py_versions("1.2", "1.2.0"), 0);
  EXPECT_GT(pip::compare_py_versions("2.0.1", "2.0"), 0);
}

TEST(Pip, FlatNamespaceReplacesInPlace) {
  vfs::FileSystem fs;
  pip::SitePackages site(fs, "/sp");
  site.install({"foo", "1.0", {}});
  const auto result = site.install({"foo", "2.0", {}});
  EXPECT_EQ(result.replaced_version, "1.0");
  ASSERT_EQ(site.list().size(), 1u);
  EXPECT_EQ(site.installed_version("foo")->version, "2.0");
}

TEST(Pip, UpgradeBreaksSiblingRequirement) {
  // The §II-E hazard at the language layer: installing one app's deps
  // silently downgrades/changes another's.
  vfs::FileSystem fs;
  pip::SitePackages site(fs, "/sp");
  site.install({"foo", "2.1", {}});
  site.install({"appA", "1.0", {{"foo", "2.0"}}});
  EXPECT_TRUE(site.check().empty());
  // appB pins an OLD foo; pip replaces the shared copy.
  site.install({"foo", "1.5", {}});
  site.install({"appB", "1.0", {{"foo", "1.5"}}});
  const auto broken = site.check();
  ASSERT_EQ(broken.size(), 1u);
  EXPECT_NE(broken[0].find("appA requires foo>=2.0"), std::string::npos);
}

TEST(Pip, CheckFindsMissingRequirement) {
  vfs::FileSystem fs;
  pip::SitePackages site(fs, "/sp");
  site.install({"app", "1.0", {{"ghost", ""}}});
  const auto broken = site.check();
  ASSERT_EQ(broken.size(), 1u);
  EXPECT_NE(broken[0].find("not installed"), std::string::npos);
}

TEST(Pip, VenvIsolationAvoidsTheConflict) {
  // The store-model move at the language layer: one site-packages per app.
  vfs::FileSystem fs;
  pip::SitePackages venv_a(fs, "/venvs/appA/site-packages");
  pip::SitePackages venv_b(fs, "/venvs/appB/site-packages");
  venv_a.install({"foo", "2.1", {}});
  venv_a.install({"appA", "1.0", {{"foo", "2.0"}}});
  venv_b.install({"foo", "1.5", {}});
  venv_b.install({"appB", "1.0", {{"foo", "1.5"}}});
  EXPECT_TRUE(venv_a.check().empty());
  EXPECT_TRUE(venv_b.check().empty());
}

// -------------------------------------------------------------- store GC

store::PackageSpec lib_pkg(const std::string& name,
                           std::vector<std::string> deps = {}) {
  store::PackageSpec spec;
  spec.name = name;
  spec.version = "1";
  spec.deps = std::move(deps);
  elf::Object lib = elf::make_library("lib" + name + ".so");
  lib.extra_size = 1000;
  spec.files.push_back(store::StoreFile{"lib/lib" + name + ".so", lib, ""});
  return spec;
}

TEST(StoreGc, NoProfilesMeansEverythingIsGarbage) {
  vfs::FileSystem fs;
  store::Store store(fs);
  const auto a = store.add(lib_pkg("a")).prefix;
  store.add(lib_pkg("b", {a}));
  const auto result = store.garbage_collect();
  EXPECT_EQ(result.removed_prefixes.size(), 2u);
  EXPECT_GT(result.bytes_freed, 2000u);
  EXPECT_TRUE(store.packages().empty());
  EXPECT_FALSE(fs.exists(a));
}

TEST(StoreGc, ProfileRootsKeepTheirClosure) {
  vfs::FileSystem fs;
  store::Store store(fs);
  const auto base = store.add(lib_pkg("base")).prefix;
  const auto app = store.add(lib_pkg("app", {base})).prefix;
  const auto orphan = store.add(lib_pkg("orphan")).prefix;
  store.set_profile({app});

  const auto result = store.garbage_collect();
  ASSERT_EQ(result.removed_prefixes.size(), 1u);
  EXPECT_EQ(result.removed_prefixes[0], orphan);
  EXPECT_TRUE(fs.exists(base));  // kept via app's dependency edge
  EXPECT_TRUE(fs.exists(app));
  EXPECT_EQ(store.packages().size(), 2u);
}

TEST(StoreGc, OldGenerationsPinOldVersions) {
  // The §II-D upgrade story: after an upgrade, BOTH versions are live until
  // the old generation is dropped.
  vfs::FileSystem fs;
  store::Store store(fs);
  const auto v1 = store.add(lib_pkg("tool")).prefix;
  store.set_profile({v1});
  auto v2_spec = lib_pkg("tool");
  v2_spec.version = "2";
  const auto v2 = store.add(v2_spec).prefix;
  store.set_profile({v2});

  EXPECT_TRUE(store.garbage_collect().removed_prefixes.empty());
  EXPECT_TRUE(fs.exists(v1));
  EXPECT_TRUE(fs.exists(v2));
}

TEST(StoreGc, IdempotentWhenClean) {
  vfs::FileSystem fs;
  store::Store store(fs);
  const auto app = store.add(lib_pkg("app")).prefix;
  store.set_profile({app});
  (void)store.garbage_collect();
  EXPECT_TRUE(store.garbage_collect().removed_prefixes.empty());
}

TEST(StoreGc, LookupsStillWorkAfterCollection) {
  vfs::FileSystem fs;
  store::Store store(fs);
  const auto& keep = store.add(lib_pkg("keep"));
  store.add(lib_pkg("drop"));
  store.set_profile({keep.prefix});
  (void)store.garbage_collect();
  EXPECT_NE(store.find("keep"), nullptr);
  EXPECT_EQ(store.find("drop"), nullptr);
}

}  // namespace
}  // namespace depchaos::pkg
