#include <gtest/gtest.h>

#include <algorithm>

#include "depchaos/elf/patcher.hpp"
#include "depchaos/loader/symbols.hpp"
#include "depchaos/shrinkwrap/libtree.hpp"
#include "depchaos/shrinkwrap/shrinkwrap.hpp"
#include "depchaos/workload/debian.hpp"
#include "depchaos/workload/emacs.hpp"
#include "depchaos/workload/nixruby.hpp"
#include "depchaos/workload/pynamic.hpp"
#include "depchaos/workload/scenarios.hpp"

namespace depchaos::workload {
namespace {

// ---------------------------------------------------------------- pynamic

TEST(Pynamic, SmallInstanceLoads) {
  vfs::FileSystem fs;
  PynamicConfig config;
  config.num_modules = 40;
  config.exe_extra_bytes = 0;
  const auto app = generate_pynamic(fs, config);
  loader::Loader loader(fs);
  const auto report = loader.load(app.exe_path);
  ASSERT_TRUE(report.success);
  EXPECT_EQ(report.load_order.size(), 41u);
}

TEST(Pynamic, SearchCostIsQuadraticish) {
  vfs::FileSystem fs;
  PynamicConfig config;
  config.num_modules = 60;
  config.exe_extra_bytes = 0;
  const auto app = generate_pynamic(fs, config);
  loader::Loader loader(fs);
  const auto report = loader.load(app.exe_path);
  // Module i sits in directory i: resolving it probes i+1 directories.
  // Sum ~ n(n+1)/2; dedup'd cross-deps add nothing.
  const std::uint64_t expected_min = 60ull * 61 / 2;
  EXPECT_GE(report.stats.open_calls, expected_min);
  EXPECT_LE(report.stats.open_calls, expected_min + 61);
}

TEST(Pynamic, DeterministicForSeed) {
  vfs::FileSystem fs1, fs2;
  PynamicConfig config;
  config.num_modules = 30;
  const auto app1 = generate_pynamic(fs1, config);
  const auto app2 = generate_pynamic(fs2, config);
  EXPECT_EQ(elf::read_object(fs1, app1.exe_path),
            elf::read_object(fs2, app2.exe_path));
}

TEST(Pynamic, ShrinkwrapCutsSyscallsByOrdersOfMagnitude) {
  vfs::FileSystem fs;
  PynamicConfig config;
  config.num_modules = 100;
  config.exe_extra_bytes = 0;
  const auto app = generate_pynamic(fs, config);
  loader::Loader loader(fs);
  const auto before = loader.load(app.exe_path);
  ASSERT_TRUE(shrinkwrap::shrinkwrap(fs, loader, app.exe_path).ok());
  const auto after = loader.load(app.exe_path);
  ASSERT_TRUE(after.success);
  EXPECT_GT(before.stats.metadata_calls(),
            after.stats.metadata_calls() * 20);
}

// ------------------------------------------------------------------ emacs

TEST(Emacs, TableIIShape) {
  vfs::FileSystem fs;
  const auto app = generate_emacs_like(fs, {});
  loader::Loader loader(fs);
  const auto normal = loader.load(app.exe_path);
  ASSERT_TRUE(normal.success);
  // 103 deps across 36 dirs, avg position ~18: ~1800-1900 calls (paper: 1823).
  EXPECT_GT(normal.stats.metadata_calls(), 1200u);
  EXPECT_LT(normal.stats.metadata_calls(), 2600u);

  ASSERT_TRUE(shrinkwrap::shrinkwrap(fs, loader, app.exe_path).ok());
  const auto wrapped = loader.load(app.exe_path);
  ASSERT_TRUE(wrapped.success);
  // Paper: 104 (one open per dependency + the executable).
  EXPECT_EQ(wrapped.stats.metadata_calls(), 104u);

  const double ratio =
      static_cast<double>(normal.stats.metadata_calls()) /
      static_cast<double>(wrapped.stats.metadata_calls());
  EXPECT_GT(ratio, 12.0);  // paper's strace ratio is ~17.5x
}

TEST(Emacs, AllDepsDirect) {
  vfs::FileSystem fs;
  EmacsConfig config;
  config.num_deps = 10;
  config.num_dirs = 4;
  const auto app = generate_emacs_like(fs, config);
  loader::Loader loader(fs);
  const auto report = loader.load(app.exe_path);
  ASSERT_TRUE(report.success);
  EXPECT_EQ(report.load_order.size(), 11u);
}

// ----------------------------------------------------------------- debian

TEST(DebianCorpus, ProportionsMatchFig1) {
  DebianCorpusConfig config;
  config.num_packages = 20000;  // scaled-down for test speed
  const auto corpus = generate_debian_corpus(config);
  const auto counts = pkg::deb::classify(corpus);
  const double total = static_cast<double>(counts.total());
  EXPECT_NEAR(counts.unversioned / total, 0.735, 0.02);
  EXPECT_NEAR(counts.range / total, 0.248, 0.02);
  EXPECT_NEAR(counts.exact / total, 0.017, 0.01);
}

TEST(DebianCorpus, SurvivesControlRoundTrip) {
  DebianCorpusConfig config;
  config.num_packages = 500;
  const auto corpus = generate_debian_corpus(config);
  const auto reparsed =
      pkg::deb::parse_control(corpus_to_control_text(corpus));
  ASSERT_EQ(reparsed.size(), corpus.size());
  EXPECT_EQ(pkg::deb::classify(reparsed).total(),
            pkg::deb::classify(corpus).total());
}

TEST(InstalledSystem, Fig4ReuseShape) {
  const auto system = generate_installed_system({});
  const auto histogram = reuse_histogram(system);
  ASSERT_EQ(histogram.size(), 1400u);
  // "only 4% of shared object files are used by more than 5% of binaries"
  const auto threshold = static_cast<std::uint64_t>(0.05 * 3287);
  const double fraction = histogram.fraction_above(threshold);
  EXPECT_GT(fraction, 0.015);
  EXPECT_LT(fraction, 0.08);
  // rank 0 (libc) used by every binary.
  EXPECT_EQ(histogram.max(), 3287u);
}

TEST(InstalledSystem, MaterializedBinariesLoad) {
  InstalledSystemConfig config;
  config.num_binaries = 25;
  config.num_shared_objects = 40;
  const auto system = generate_installed_system(config);
  vfs::FileSystem fs;
  materialize_installed_system(fs, system);
  loader::Loader loader(fs);
  for (int b = 0; b < 25; ++b) {
    EXPECT_TRUE(loader.load("/usr/bin/bin" + std::to_string(b)).success);
  }
}

// ---------------------------------------------------------------- nixruby

TEST(NixRuby, ClosureHitsTargetSize) {
  const auto closure = generate_ruby_closure({});
  EXPECT_EQ(closure.drvs.closure(closure.root).size(), 453u);
}

TEST(NixRuby, StructureResemblesFig2) {
  const auto closure = generate_ruby_closure({});
  const auto stats = closure.drvs.stats(closure.root);
  EXPECT_EQ(stats.nodes, 453u);
  EXPECT_GT(stats.sources, 50u);     // tarballs + patches everywhere
  EXPECT_GT(stats.bootstrap, 15u);   // five stages of machinery
  EXPECT_GT(stats.max_depth, 3u);    // deep bootstrap chain
  EXPECT_GT(stats.edges, stats.nodes);  // denser than a tree: a "snarl"
}

TEST(NixRuby, DotExportContainsRoot) {
  const auto closure = generate_ruby_closure({});
  const auto graph = closure.drvs.closure_graph(closure.root);
  const auto dot = graph.to_dot("ruby");
  EXPECT_NE(dot.find("ruby-2.7.5.drv"), std::string::npos);
  EXPECT_EQ(graph.node_count(), 453u);
}

// --------------------------------------------------------------- scenarios

TEST(Rocm, WrongModuleMixesVersions) {
  vfs::FileSystem fs;
  const auto scenario = make_rocm_scenario(fs);
  loader::Loader loader(fs);

  const auto clean = loader.load(scenario.exe_path, scenario.clean_env);
  ASSERT_TRUE(clean.success);
  EXPECT_FALSE(rocm_versions_mixed(clean, scenario));

  const auto broken =
      loader.load(scenario.exe_path, scenario.wrong_module_env);
  ASSERT_TRUE(broken.success);  // it loads... the wrong thing (the segfault)
  EXPECT_TRUE(rocm_versions_mixed(broken, scenario));
}

TEST(Rocm, ShrinkwrapFixesTheMix) {
  vfs::FileSystem fs;
  const auto scenario = make_rocm_scenario(fs);
  loader::Loader loader(fs);
  ASSERT_TRUE(shrinkwrap::shrinkwrap(fs, loader, scenario.exe_path).ok());
  const auto report =
      loader.load(scenario.exe_path, scenario.wrong_module_env);
  ASSERT_TRUE(report.success);
  EXPECT_FALSE(rocm_versions_mixed(report, scenario));
}

TEST(Samba, RescuedLibraryIsCacheSatisfiedNotSearchable) {
  vfs::FileSystem fs;
  const auto scenario = make_samba_scenario(fs);
  loader::SearchConfig config;
  config.classify_cache_hits = true;
  loader::Loader loader(fs, config);
  const auto report = loader.load(scenario.exe_path);
  ASSERT_TRUE(report.success);

  // Find the request for the rescued soname issued by the runpath-less lib.
  bool found_rescue = false;
  for (const auto& request : report.requests) {
    if (request.name == scenario.rescued_soname &&
        request.requested_by == scenario.no_runpath_lib) {
      EXPECT_EQ(request.how, loader::HowFound::Cache);
      EXPECT_EQ(request.cache_search_how, loader::HowFound::NotFound);
      found_rescue = true;
    }
  }
  EXPECT_TRUE(found_rescue);
}

TEST(Samba, LibtreeShowsListingOneAnnotations) {
  vfs::FileSystem fs;
  const auto scenario = make_samba_scenario(fs);
  loader::SearchConfig config;
  config.classify_cache_hits = true;
  loader::Loader loader(fs, config);
  const auto tree = shrinkwrap::render_tree(loader.load(scenario.exe_path));
  EXPECT_NE(tree.find("[runpath]"), std::string::npos);
  EXPECT_NE(tree.find("[default path]"), std::string::npos);
  EXPECT_NE(tree.find("not found (satisfied by earlier load)"),
            std::string::npos);
}

TEST(Omp, LoadOrderDecidesWinner) {
  vfs::FileSystem fs;
  const auto real_first = make_ompstubs_scenario(fs, /*stubs_first=*/false);
  loader::Loader loader(fs);
  const auto bind1 = loader::bind_symbols(loader.load(real_first.exe_path));
  EXPECT_EQ(*bind1.provider_of("omp_get_num_threads"),
            real_first.libomp_path);

  vfs::FileSystem fs2;
  const auto stubs_first = make_ompstubs_scenario(fs2, /*stubs_first=*/true);
  loader::Loader loader2(fs2);
  const auto bind2 =
      loader::bind_symbols(loader2.load(stubs_first.exe_path));
  EXPECT_EQ(*bind2.provider_of("omp_get_num_threads"),
            stubs_first.stubs_path);
}

TEST(Paradox, NoSearchOrderSatisfiesBoth) {
  vfs::FileSystem fs;
  const auto scenario = make_runpath_paradox(fs);
  loader::Loader loader(fs);

  const std::vector<std::vector<std::string>> orders = {
      {scenario.dir_a, scenario.dir_b},
      {scenario.dir_b, scenario.dir_a},
      {scenario.dir_a},
      {scenario.dir_b},
  };
  for (const auto& order : orders) {
    set_paradox_search_order(fs, scenario, order);
    loader.invalidate();
    const auto report = loader.load(scenario.exe_path);
    EXPECT_FALSE(paradox_satisfied(report, scenario))
        << "order unexpectedly satisfied the paradox";
  }
}

TEST(Paradox, ShrinkwrapResolvesIt) {
  vfs::FileSystem fs;
  const auto scenario = make_runpath_paradox(fs);
  loader::Loader loader(fs);
  // Wrap with the intended libraries as explicit absolute entries.
  elf::Patcher patcher(fs);
  patcher.set_needed(scenario.exe_path,
                     {scenario.good_a_path, scenario.good_b_path});
  patcher.set_runpath(scenario.exe_path, {});
  loader.invalidate();
  const auto report = loader.load(scenario.exe_path);
  ASSERT_TRUE(report.success);
  EXPECT_TRUE(paradox_satisfied(report, scenario));
}

TEST(QtPlugin, RunpathTrapAndRpathRescue) {
  {
    vfs::FileSystem fs;
    const auto scenario = make_qt_plugin_scenario(fs, /*use_rpath=*/false);
    loader::Loader loader(fs);
    auto report = loader.load(scenario.exe_path);
    ASSERT_TRUE(report.success);
    const auto plug = loader.dlopen(report, scenario.gui_lib_path,
                                    scenario.plugin_soname);
    EXPECT_EQ(plug.how, loader::HowFound::NotFound);
  }
  {
    vfs::FileSystem fs;
    const auto scenario = make_qt_plugin_scenario(fs, /*use_rpath=*/true);
    loader::Loader loader(fs);
    auto report = loader.load(scenario.exe_path);
    ASSERT_TRUE(report.success);
    const auto plug = loader.dlopen(report, scenario.gui_lib_path,
                                    scenario.plugin_soname);
    EXPECT_EQ(plug.how, loader::HowFound::RpathAncestor);
  }
}

}  // namespace
}  // namespace depchaos::workload
