// Copy-on-write world forks: vfs::FileSystem::fork(), core::Session::fork(),
// and the what-if workflow built on them.
//
// The load-bearing property: a forked-then-mutated world is OBSERVABLY
// byte-identical to a deep-copied-then-mutated world — same stat/open/
// readlink answers, same readdir ordering, same inode numbers, same
// errors — while allocating none of the deep copy's bytes up front.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "depchaos/core/world.hpp"
#include "depchaos/elf/patcher.hpp"
#include "depchaos/support/rng.hpp"
#include "depchaos/vfs/snapshot.hpp"
#include "depchaos/vfs/vfs.hpp"

namespace depchaos::vfs {
namespace {

using core::Session;
using core::WorldBuilder;
using elf::make_executable;
using elf::make_library;

// ------------------------------------------------------------ fingerprint

void fingerprint_tree(FileSystem& fs, const std::string& path,
                      std::string& out) {
  const auto lst = fs.lstat(path);
  ASSERT_TRUE(lst.has_value()) << path;
  out += path + " ino=" + std::to_string(lst->ino) +
         " type=" + std::to_string(static_cast<int>(lst->type)) +
         " size=" + std::to_string(lst->size);
  if (lst->type == NodeType::Symlink) {
    out += " -> " + fs.peek_link_target(path).value_or("?");
    const auto followed = fs.stat(path);
    out += followed ? " resolves ino=" + std::to_string(followed->ino)
                    : std::string(" dangling");
    out += " realpath=" + fs.realpath(path).value_or("(none)");
  }
  if (lst->type == NodeType::Regular) {
    const FileData* data = fs.peek(path);
    out += " bytes=" + (data ? data->bytes : std::string("?"));
  }
  out += '\n';
  if (lst->type == NodeType::Directory) {
    for (const auto& name : fs.list_dir(path)) {
      fingerprint_tree(fs, path == "/" ? "/" + name : path + "/" + name, out);
    }
  }
}

/// Every observable read-path fact about the world, in deterministic
/// (readdir) order. Counting is suspended so fingerprinting two views
/// cannot make their own counters diverge.
std::string fingerprint(FileSystem& fs) {
  const bool was_counting = fs.counting();
  fs.set_counting(false);
  std::string out = "inodes=" + std::to_string(fs.inode_count()) +
                    " du=" + std::to_string(fs.disk_usage("/")) + "\n";
  fingerprint_tree(fs, "/", out);
  fs.set_counting(was_counting);
  return out;
}

// ----------------------------------------------------------- vfs basics

TEST(FsForkTest, ForkSeesBaseAndIsolatesWrites) {
  FileSystem base;
  base.write_file("/usr/lib/libx.so", "x1");
  base.symlink("libx.so", "/usr/lib/libx.so.1");

  FileSystem child = base.fork();
  EXPECT_EQ(child.peek("/usr/lib/libx.so")->bytes, "x1");
  EXPECT_EQ(*child.peek_link_target("/usr/lib/libx.so.1"), "libx.so");

  child.write_file("/usr/lib/liby.so", "y");
  child.write_file("/usr/lib/libx.so", "x2");
  EXPECT_EQ(child.peek("/usr/lib/libx.so")->bytes, "x2");
  EXPECT_TRUE(child.exists("/usr/lib/liby.so"));
  // The base never sees the fork's writes...
  EXPECT_EQ(base.peek("/usr/lib/libx.so")->bytes, "x1");
  EXPECT_FALSE(base.exists("/usr/lib/liby.so"));
  // ...and vice versa.
  base.write_file("/usr/lib/libz.so", "z");
  EXPECT_FALSE(child.exists("/usr/lib/libz.so"));
}

TEST(FsForkTest, RemovalsAndRenamesAreWhiteoutsNotLeaks) {
  FileSystem base;
  base.write_file("/a/one", "1");
  base.write_file("/a/two", "2");
  base.write_file("/a/three", "3");

  FileSystem child = base.fork();
  child.remove("/a/two");
  child.rename("/a/three", "/b/three");
  EXPECT_FALSE(child.exists("/a/two"));
  EXPECT_FALSE(child.exists("/a/three"));
  EXPECT_EQ(child.peek("/b/three")->bytes, "3");
  EXPECT_EQ(child.list_dir("/a"), (std::vector<std::string>{"one"}));
  // Whiteouts are private to the fork.
  EXPECT_EQ(base.list_dir("/a"),
            (std::vector<std::string>{"one", "two", "three"}));
  EXPECT_FALSE(base.exists("/b"));
}

TEST(FsForkTest, ForkIsO1AndLayerDepthTracksGenerations) {
  FileSystem base;
  for (int i = 0; i < 200; ++i) {
    base.write_file("/data/file" + std::to_string(i),
                    std::string(256, 'a' + (i % 26)));
  }
  EXPECT_EQ(base.layer_depth(), 1u);

  const FileSystem deep(base);
  FileSystem child = base.fork();
  EXPECT_EQ(base.layer_depth(), 2u);
  EXPECT_EQ(child.layer_depth(), 2u);
  EXPECT_EQ(deep.layer_depth(), 1u);
  // A fresh fork owns nothing; the deep copy owns the whole world.
  EXPECT_EQ(child.owned_bytes(), 0u);
  EXPECT_GT(deep.owned_bytes(), 200u * 256u);

  FileSystem grandchild = child.fork();
  EXPECT_EQ(grandchild.layer_depth(), 2u);  // child had no private writes
  child.write_file("/data/file0", "mutated");
  FileSystem after_write = child.fork();
  EXPECT_EQ(after_write.layer_depth(), 3u);
}

TEST(FsForkTest, ForkClonesLatencyModelPerView) {
  FileSystem base;
  base.set_latency_model(std::make_shared<NfsModel>());
  base.write_file("/f", "x");
  FileSystem child = base.fork();
  ASSERT_NE(child.latency_model(), nullptr);
  EXPECT_NE(child.latency_model(), base.latency_model());
  // Fresh per-view counters.
  base.stat("/f");
  EXPECT_EQ(base.stats().stat_calls, 1u);
  EXPECT_EQ(child.stats().stat_calls, 0u);
}

// ----------------------------------------- fork vs deep copy, propertywise

/// Apply `op` to both filesystems; they must agree on success or on the
/// exact error.
template <typename F>
void apply_both(FileSystem& a, FileSystem& b, F&& op) {
  std::string err_a = "(ok)", err_b = "(ok)";
  try {
    op(a);
  } catch (const FsError& e) {
    err_a = e.what();
  }
  try {
    op(b);
  } catch (const FsError& e) {
    err_b = e.what();
  }
  ASSERT_EQ(err_a, err_b);
}

TEST(FsForkTest, PropertyForkedMutationsMatchDeepCopiedMutations) {
  for (const std::uint64_t seed : {1ull, 42ull, 0xc0ffeeull}) {
    support::Rng rng(seed);

    // A seeded base world with depth, links, and clutter.
    FileSystem base;
    std::vector<std::string> pool;
    for (int i = 0; i < 40; ++i) {
      const std::string dir = "/d" + std::to_string(rng.below(6));
      const std::string file =
          dir + "/f" + std::to_string(rng.below(30));
      base.write_file(file, "seed" + std::to_string(i));
      pool.push_back(file);
      pool.push_back(dir);
    }
    for (int i = 0; i < 8; ++i) {
      const std::string link = "/links/l" + std::to_string(i);
      try {
        base.symlink(pool[rng.below(pool.size())], link);
        pool.push_back(link);
      } catch (const FsError&) {
      }
    }

    FileSystem deep(base);
    FileSystem forked = base.fork();
    const std::string base_before = fingerprint(base);

    // Identical random mutation traffic against both views.
    for (int step = 0; step < 120; ++step) {
      const std::string fresh =
          "/d" + std::to_string(rng.below(8)) + "/n" +
          std::to_string(rng.below(40));
      const std::string victim = pool[rng.below(pool.size())];
      const std::string target = pool[rng.below(pool.size())];
      switch (rng.below(6)) {
        case 0:
          apply_both(deep, forked, [&](FileSystem& fs) {
            fs.write_file(fresh, "step" + std::to_string(step));
          });
          pool.push_back(fresh);
          break;
        case 1:
          apply_both(deep, forked, [&](FileSystem& fs) {
            fs.write_file(victim, "over" + std::to_string(step));
          });
          break;
        case 2:
          apply_both(deep, forked,
                     [&](FileSystem& fs) { fs.mkdir_p(fresh + "/sub"); });
          pool.push_back(fresh + "/sub");
          break;
        case 3:
          apply_both(deep, forked,
                     [&](FileSystem& fs) { fs.symlink(target, fresh); });
          pool.push_back(fresh);
          break;
        case 4:
          apply_both(deep, forked, [&](FileSystem& fs) {
            fs.remove(victim, /*recursive=*/true);
          });
          break;
        case 5:
          apply_both(deep, forked,
                     [&](FileSystem& fs) { fs.rename(victim, fresh); });
          pool.push_back(fresh);
          break;
      }
    }

    // Every read path agrees — paths, types, sizes, bytes, link targets,
    // readdir ordering, AND inode numbers.
    EXPECT_EQ(fingerprint(deep), fingerprint(forked)) << "seed " << seed;
    // The shared base never moved.
    EXPECT_EQ(fingerprint(base), base_before) << "seed " << seed;
  }
}

// ------------------------------------------- sealed forks == legacy forks

TEST(FsForkTest, PropertySealedForkMatchesLegacyForkByteForByte) {
  // fork() is seal() + fork_sealed() by construction; this pins the
  // contract observably: children stamped from a sealed view are
  // byte-identical to legacy forks — inode numbers, readdir order, file
  // bytes, link targets, AND syscall counters under identical traffic.
  for (const std::uint64_t seed : {5ull, 99ull, 0xfeedull}) {
    support::Rng rng(seed);
    FileSystem world;
    std::vector<std::string> pool;
    for (int i = 0; i < 40; ++i) {
      const std::string file = "/d" + std::to_string(rng.below(6)) + "/f" +
                               std::to_string(rng.below(25));
      world.write_file(file, "seed" + std::to_string(i));
      pool.push_back(file);
    }
    for (int i = 0; i < 8; ++i) {
      try {
        const std::string link = "/links/l" + std::to_string(i);
        world.symlink(pool[rng.below(pool.size())], link);
        pool.push_back(link);
      } catch (const FsError&) {
      }
    }
    // Warm the dentry memo so the seal's rotation moves real state.
    for (int i = 0; i < 100; ++i) {
      (void)world.exists(pool[rng.below(pool.size())]);
    }

    FileSystem twin(world);  // deep copy: identical inode numbering
    FileSystem legacy = world.fork();
    EXPECT_FALSE(twin.sealed());
    twin.seal();
    ASSERT_TRUE(twin.sealed());
    const FileSystem& sealed_view = twin;  // const stamp, no parent mutation
    FileSystem stamped = sealed_view.fork_sealed();
    EXPECT_TRUE(twin.sealed());  // still sealed after any number of stamps
    FileSystem sibling = sealed_view.fork_sealed();

    EXPECT_EQ(fingerprint(legacy), fingerprint(stamped)) << "seed " << seed;
    EXPECT_EQ(fingerprint(stamped), fingerprint(sibling)) << "seed " << seed;
    EXPECT_EQ(fingerprint(world), fingerprint(twin)) << "seed " << seed;

    // Identical probe traffic charges identical fresh counters.
    legacy.reset_stats();
    stamped.reset_stats();
    support::Rng probes_a(seed ^ 0x1234);
    support::Rng probes_b(seed ^ 0x1234);
    const auto storm = [&pool](FileSystem& fs, support::Rng& r) {
      for (int i = 0; i < 200; ++i) {
        const std::string& path = pool[r.below(pool.size())];
        switch (r.below(3)) {
          case 0:
            (void)fs.stat(path);
            break;
          case 1:
            (void)fs.exists(path);
            break;
          default:
            (void)fs.realpath(path);
            break;
        }
      }
    };
    storm(legacy, probes_a);
    storm(stamped, probes_b);
    EXPECT_EQ(legacy.stats().stat_calls, stamped.stats().stat_calls);
    EXPECT_EQ(legacy.stats().failed_probes, stamped.stats().failed_probes);
    EXPECT_EQ(legacy.stats().readlink_calls, stamped.stats().readlink_calls);

    // Divergence after the stamp behaves exactly like a legacy fork's.
    apply_both(legacy, stamped,
               [&](FileSystem& fs) { fs.write_file("/div/new", "x"); });
    apply_both(legacy, stamped,
               [&](FileSystem& fs) { fs.remove(pool.front()); });
    EXPECT_EQ(fingerprint(legacy), fingerprint(stamped)) << "seed " << seed;
    EXPECT_EQ(fingerprint(world), fingerprint(twin)) << "seed " << seed;

    // Any mutation clears the seal; fork_sealed refuses until resealed.
    twin.write_file("/unsealing/write", "x");
    EXPECT_FALSE(twin.sealed());
    EXPECT_THROW(twin.fork_sealed(), FsError);
    twin.seal();
    FileSystem resealed = twin.fork_sealed();
    EXPECT_TRUE(resealed.exists("/unsealing/write"));
  }
}

// ------------------------------------------------------ layer compaction

TEST(FsForkTest, CollapseFlattensPreservingObservables) {
  FileSystem base;
  base.write_file("/usr/lib/libx.so", "x");
  base.symlink("libx.so", "/usr/lib/libx.so.1");
  FileSystem child = base.fork();
  child.write_file("/usr/lib/liby.so", "y");
  child.remove("/usr/lib/libx.so.1");
  FileSystem grandchild = child.fork();
  grandchild.write_file("/etc/ld.so.conf", "/usr/lib");
  ASSERT_GE(grandchild.layer_depth(), 3u);

  const std::string before = fingerprint(grandchild);
  grandchild.collapse();
  EXPECT_EQ(grandchild.layer_depth(), 1u);
  // Same inodes, same bytes, same readdir order, same errors — collapse
  // changes where nodes live, never what resolution observes.
  EXPECT_EQ(fingerprint(grandchild), before);
  // A collapsed view owns its whole world.
  EXPECT_GT(grandchild.owned_bytes(), 0u);
  // Collapse is idempotent.
  grandchild.collapse();
  EXPECT_EQ(fingerprint(grandchild), before);
  // The rest of the family is untouched.
  EXPECT_TRUE(child.exists("/usr/lib/liby.so"));
  EXPECT_FALSE(child.exists("/etc/ld.so.conf"));
}

TEST(FsForkTest, AutoCollapseBoundsChainDepth) {
  FileSystem fs;
  fs.write_file("/f", "seed");
  fs.set_auto_collapse(3);
  // Each generation mutates (so fork really freezes a new layer) and
  // replaces the view with its child, the way long what-if chains do.
  for (int generation = 0; generation < 10; ++generation) {
    fs.write_file("/g" + std::to_string(generation), "x");
    fs = fs.fork();
    EXPECT_LE(fs.layer_depth(), 3u) << "generation " << generation;
  }
  for (int generation = 0; generation < 10; ++generation) {
    EXPECT_TRUE(fs.exists("/g" + std::to_string(generation)));
  }
  // Threshold 0 disables: depth grows again.
  fs.set_auto_collapse(0);
  const std::size_t depth = fs.layer_depth();
  fs.write_file("/more", "x");
  fs = fs.fork();
  EXPECT_GT(fs.layer_depth(), depth);
}

TEST(FsForkTest, PropertyCollapseEquivalentToNoCollapse) {
  // The dentry cache and compaction interact (collapse preserves cached
  // inode numbers; fork drops the cache), so the equivalence is checked
  // under randomized mutation traffic WITH periodic re-forking: view A
  // never compacts, view B auto-collapses at a tiny threshold and gets
  // explicit collapse() calls sprinkled in.
  for (const std::uint64_t seed : {3ull, 77ull, 0xbeefull}) {
    support::Rng rng(seed);
    FileSystem base;
    std::vector<std::string> pool;
    for (int i = 0; i < 30; ++i) {
      const std::string file = "/d" + std::to_string(rng.below(5)) + "/f" +
                               std::to_string(rng.below(20));
      base.write_file(file, "seed" + std::to_string(i));
      pool.push_back(file);
    }
    for (int i = 0; i < 6; ++i) {
      try {
        const std::string link = "/links/l" + std::to_string(i);
        base.symlink(pool[rng.below(pool.size())], link);
        pool.push_back(link);
      } catch (const FsError&) {
      }
    }

    FileSystem plain = base.fork();
    FileSystem compacted = base.fork();
    plain.set_auto_collapse(0);
    compacted.set_auto_collapse(2);

    for (int step = 0; step < 100; ++step) {
      const std::string fresh = "/d" + std::to_string(rng.below(6)) + "/n" +
                                std::to_string(rng.below(30));
      const std::string victim = pool[rng.below(pool.size())];
      switch (rng.below(6)) {
        case 0:
          apply_both(plain, compacted, [&](FileSystem& fs) {
            fs.write_file(fresh, "step" + std::to_string(step));
          });
          pool.push_back(fresh);
          break;
        case 1:
          apply_both(plain, compacted, [&](FileSystem& fs) {
            fs.remove(victim, /*recursive=*/true);
          });
          break;
        case 2:
          apply_both(plain, compacted,
                     [&](FileSystem& fs) { fs.rename(victim, fresh); });
          pool.push_back(fresh);
          break;
        case 3:
          apply_both(plain, compacted,
                     [&](FileSystem& fs) { fs.symlink(victim, fresh); });
          pool.push_back(fresh);
          break;
        case 4:
          // Deepen both chains; only B's bounded by auto-collapse.
          plain = plain.fork();
          compacted = compacted.fork();
          break;
        case 5:
          if (rng.below(2) == 0) compacted.collapse();
          break;
      }
      if (step % 25 == 0) {
        ASSERT_EQ(fingerprint(plain), fingerprint(compacted))
            << "seed " << seed << " step " << step;
      }
    }
    EXPECT_EQ(fingerprint(plain), fingerprint(compacted)) << "seed " << seed;
    EXPECT_LE(compacted.layer_depth(), 2u);  // the bound held
  }
}

TEST(FsForkTest, SnapshotRoundTripCollapsesLayers) {
  FileSystem base;
  base.write_file("/usr/lib/libx.so", "x");
  base.symlink("libx.so", "/usr/lib/libx.so.1");
  FileSystem child = base.fork();
  child.write_file("/usr/lib/liby.so", "y");
  child.remove("/usr/lib/libx.so.1");
  FileSystem grandchild = child.fork();
  grandchild.write_file("/etc/ld.so.conf", "/usr/lib");
  ASSERT_GE(grandchild.layer_depth(), 3u);

  const std::string image = save_world(grandchild);
  FileSystem reloaded = load_world(image);
  EXPECT_EQ(reloaded.layer_depth(), 1u);  // flat again
  // Same observable world (inode numbers may legitimately differ after a
  // collapse — dead nodes are gone — so compare the path-addressed facts).
  EXPECT_EQ(save_world(reloaded), image);
  EXPECT_TRUE(reloaded.exists("/usr/lib/liby.so"));
  EXPECT_FALSE(reloaded.exists("/usr/lib/libx.so.1"));
}

}  // namespace
}  // namespace depchaos::vfs

// ------------------------------------------------------- Session::fork()

namespace depchaos::core {
namespace {

using elf::make_executable;
using elf::make_library;

void expect_reports_identical(const loader::LoadReport& a,
                              const loader::LoadReport& b) {
  EXPECT_EQ(a.success, b.success);
  ASSERT_EQ(a.load_order.size(), b.load_order.size());
  for (std::size_t i = 0; i < a.load_order.size(); ++i) {
    EXPECT_EQ(a.load_order[i].path, b.load_order[i].path);
    EXPECT_EQ(a.load_order[i].how, b.load_order[i].how);
  }
  EXPECT_EQ(a.stats.stat_calls, b.stats.stat_calls);
  EXPECT_EQ(a.stats.open_calls, b.stats.open_calls);
  EXPECT_EQ(a.stats.failed_probes, b.stats.failed_probes);
  EXPECT_DOUBLE_EQ(a.stats.sim_time_s, b.stats.sim_time_s);
}

WorldBuilder small_world() {
  WorldBuilder builder;
  workload::EmacsConfig config;
  config.num_deps = 12;
  config.num_dirs = 5;
  builder.emacs(config);
  return builder;
}

TEST(SessionForkTest, ChildLoadsMatchParentAndCountersStartFresh) {
  auto parent = small_world().build();
  const auto parent_report = parent.load();
  auto child = parent.fork();
  // One interner per fork family: forked fleets share one PathTable, so a
  // path probed anywhere is interned exactly once fleet-wide.
  EXPECT_EQ(child.fs().path_table().get(), parent.fs().path_table().get());
  EXPECT_EQ(child.default_exe(), parent.default_exe());
  EXPECT_EQ(child.fs().stats().stat_calls, 0u);
  EXPECT_EQ(child.fs().stats().open_calls, 0u);
  const auto child_report = child.load();
  expect_reports_identical(parent_report, child_report);
}

TEST(SessionForkTest, ChildMutationsNeverLeakIntoParent) {
  auto parent = small_world().build();
  const std::string before = parent.save();
  const auto unwrapped = parent.load();

  auto child = parent.fork();
  ASSERT_TRUE(child.shrinkwrap().ok());
  const auto wrapped = child.load();
  EXPECT_LT(wrapped.stats.metadata_calls(), unwrapped.stats.metadata_calls());

  // The parent's world bytes and load behaviour are untouched.
  EXPECT_EQ(parent.save(), before);
  const auto parent_again = parent.load();
  expect_reports_identical(unwrapped, parent_again);
}

TEST(SessionForkTest, SiblingForksAreMutuallyIsolated) {
  auto parent = small_world().build();
  auto a = parent.fork();
  auto b = parent.fork();
  a.fs().write_file("/only/in/a", "a");
  b.fs().write_file("/only/in/b", "b");
  EXPECT_TRUE(a.fs().exists("/only/in/a"));
  EXPECT_FALSE(a.fs().exists("/only/in/b"));
  EXPECT_TRUE(b.fs().exists("/only/in/b"));
  EXPECT_FALSE(b.fs().exists("/only/in/a"));
  EXPECT_FALSE(parent.fs().exists("/only/in/a"));
  EXPECT_FALSE(parent.fs().exists("/only/in/b"));
}

TEST(SessionForkTest, ForkClonesStatefulLatencyModel) {
  auto parent = small_world().nfs().build();
  auto child = parent.fork();
  ASSERT_NE(child.fs().latency_model(), nullptr);
  EXPECT_NE(child.fs().latency_model(), parent.fs().latency_model());
  const auto report = child.load();
  EXPECT_GT(report.stats.sim_time_s, 0.0);
}

// A stateful model whose base-class clone() returns nullptr: load_many must
// detect the shared pointer on the probe fork and fall back to serial.
struct UncloneableModel final : vfs::LatencyModel {
  double cost(vfs::OpKind, bool, const std::string&) override { return 1e-6; }
  std::string name() const override { return "uncloneable"; }
};

TEST(SessionForkTest, LoadManyFallsBackToSerialWithUncloneableModel) {
  auto builder = small_world();
  builder.latency(std::make_shared<UncloneableModel>());
  auto session = builder.build();
  const std::vector<std::string> exes(3, session.default_exe());
  const auto reports = session.load_many(exes);
  ASSERT_EQ(reports.size(), exes.size());
  for (const auto& report : reports) {
    EXPECT_TRUE(report.success);
    EXPECT_GT(report.stats.sim_time_s, 0.0);
  }
}

TEST(SessionForkTest, LoadManyAfterForkStaysByteIdentical) {
  WorldBuilder builder;
  builder.install("/usr/lib/libcommon.so", make_library("libcommon.so"));
  std::vector<std::string> exes;
  for (int i = 0; i < 6; ++i) {
    const std::string n = std::to_string(i);
    builder.install("/apps/a" + n + "/lib/libp" + n + ".so",
                    make_library("libp" + n + ".so", {"libcommon.so"}));
    builder.install(
        "/apps/a" + n + "/bin/app",
        make_executable({"libp" + n + ".so"}, {"/apps/a" + n + "/lib"}));
    exes.push_back("/apps/a" + n + "/bin/app");
  }
  auto session = builder.build();
  auto child = session.fork();  // load_many through a forked session

  std::vector<loader::LoadReport> serial;
  for (const auto& exe : exes) serial.push_back(session.load(exe));
  const auto parallel = child.load_many(exes);
  ASSERT_EQ(parallel.size(), exes.size());
  for (std::size_t i = 0; i < exes.size(); ++i) {
    expect_reports_identical(serial[i], parallel[i]);
  }
}

// ------------------------------------------------------------- what-if

TEST(WhatIfTest, ReportsWrapEffectWithoutMutatingTheWorld) {
  auto session = small_world().build();
  const std::string before = session.save();
  const auto report = session.whatif();
  EXPECT_TRUE(report.wrap.ok());
  EXPECT_LT(report.after.stats.metadata_calls(),
            report.before.stats.metadata_calls());
  EXPECT_NE(report.before_tree, report.after_tree);
  EXPECT_NE(report.tree_diff.find("+ "), std::string::npos);
  EXPECT_NE(report.tree_diff.find("- "), std::string::npos);
  // The session's world is byte-identical afterwards.
  EXPECT_EQ(session.save(), before);
  // And the wrap really did NOT apply here: loading is still search-based.
  const auto still_unwrapped = session.load();
  EXPECT_EQ(still_unwrapped.stats.metadata_calls(),
            report.before.stats.metadata_calls());
}

// -------------------------------------------- dentry warm start on fork

/// Random probe mix against pre-existing and never-probed paths.
std::string warm_storm(vfs::FileSystem& fs, std::uint64_t seed, int rounds) {
  support::Rng rng(seed);
  std::string out;
  for (int i = 0; i < rounds; ++i) {
    const std::string path = "/w/d" + std::to_string(rng.below(6)) + "/f" +
                             std::to_string(rng.below(20));
    switch (rng.below(3)) {
      case 0: {
        const auto st = fs.stat(path);
        out += st ? std::to_string(st->ino) : std::string("-");
        break;
      }
      case 1:
        out += fs.exists(path) ? "+" : "-";
        break;
      default:
        out += fs.realpath(path).value_or("-");
        break;
    }
    out += ';';
  }
  out += "stat=" + std::to_string(fs.stats().stat_calls) +
         " fail=" + std::to_string(fs.stats().failed_probes);
  return out;
}

TEST(DentryWarmStart, ForkedChildAnswersLikeAColdDeepCopy) {
  vfs::FileSystem parent;
  support::Rng rng(7);
  for (int d = 0; d < 6; ++d) {
    for (int f = 0; f < 12; ++f) {
      const std::string dir = "/w/d" + std::to_string(d);
      if (rng.chance(0.2)) {
        parent.symlink("f" + std::to_string((f + 1) % 12),
                       dir + "/f" + std::to_string(f));
      } else {
        parent.write_file(dir + "/f" + std::to_string(f), "data");
      }
    }
  }
  // Warm the parent's memo — positive and negative entries.
  warm_storm(parent, 1, 300);
  parent.reset_stats();

  // The property: a warm-started fork is OBSERVABLY identical to a cold
  // deep copy — same answers, same counters — for identical probes.
  vfs::FileSystem cold(parent);
  cold.reset_stats();
  vfs::FileSystem child = parent.fork();
  EXPECT_EQ(warm_storm(child, 2, 500), warm_storm(cold, 2, 500));

  // And the parent keeps its warmth across the fork with the same
  // transparency.
  vfs::FileSystem cold2(parent);
  parent.reset_stats();
  cold2.reset_stats();
  EXPECT_EQ(warm_storm(parent, 3, 500), warm_storm(cold2, 3, 500));
}

TEST(DentryWarmStart, CopyOnInvalidateIsPerView) {
  vfs::FileSystem parent;
  parent.write_file("/a/b/one", "1");
  parent.write_file("/a/b/two", "2");
  EXPECT_TRUE(parent.exists("/a/b/one"));  // warm
  vfs::FileSystem child = parent.fork();
  EXPECT_TRUE(child.exists("/a/b/one"));  // served warm

  // Child mutates: ITS snapshot reference drops; answers adjust.
  child.remove("/a/b/one");
  EXPECT_FALSE(child.exists("/a/b/one"));
  // Siblings and the parent keep the shared snapshot AND the old truth.
  EXPECT_TRUE(parent.exists("/a/b/one"));
  vfs::FileSystem sibling = parent.fork();
  EXPECT_TRUE(sibling.exists("/a/b/one"));
}

TEST(DentryWarmStart, SymlinkLoopHopsReplayThroughTheSnapshot) {
  vfs::FileSystem parent;
  parent.symlink("/loop/b", "/loop/a");
  parent.symlink("/loop/a", "/loop/b");
  parent.write_file("/ok/file", "x");
  EXPECT_FALSE(parent.exists("/loop/a"));  // ELOOP memoized as negative-ish
  EXPECT_TRUE(parent.exists("/ok/file"));
  vfs::FileSystem child = parent.fork();
  // Behaviour must replay identically through the warm snapshot.
  EXPECT_FALSE(child.exists("/loop/a"));
  EXPECT_THROW(child.list_dir("/loop/a"), FsError);
  EXPECT_TRUE(child.exists("/ok/file"));
}

TEST(DentryWarmStart, DisabledCacheStaysDisabledAcrossFork) {
  vfs::FileSystem parent;
  parent.write_file("/x/y", "z");
  parent.set_dentry_cache(false);
  EXPECT_TRUE(parent.exists("/x/y"));
  vfs::FileSystem child = parent.fork();
  EXPECT_FALSE(child.dentry_cache_enabled());
  EXPECT_TRUE(child.exists("/x/y"));
}

TEST(WhatIfTest, TreeDiffMarksChangedLines) {
  const std::string diff = shrinkwrap::tree_diff("a\nb\nc\n", "a\nx\nc\n");
  EXPECT_EQ(diff, "  a\n- b\n+ x\n  c\n");
  EXPECT_EQ(shrinkwrap::tree_diff("same\n", "same\n"), "  same\n");
}

// ------------------------------------------- dentry snapshot generations

TEST(DentrySnapshotCap, CapShedsDeadGenerationsAndStaysTransparent) {
  // The accumulating regime is a READ-MOSTLY view forked over and over
  // (any mutation drops the snapshot wholesale): each generation probes a
  // DISJOINT slice of the world, so the uncapped snapshot carries every
  // dead generation forever while the capped one rebuilds age-based and
  // stays bounded by one generation's working set.
  vfs::FileSystem base;
  for (int gen = 0; gen < 8; ++gen) {
    for (int i = 0; i < 6; ++i) {
      base.write_file("/base/g" + std::to_string(gen) + "f" +
                          std::to_string(i),
                      "x");
    }
  }
  vfs::FileSystem uncapped(base);
  vfs::FileSystem capped(base);
  uncapped.set_dentry_snapshot_cap(0);
  capped.set_dentry_snapshot_cap(8);
  EXPECT_EQ(capped.dentry_snapshot_cap(), 8u);

  const auto generation = [](vfs::FileSystem& fs, int gen) {
    for (int i = 0; i < 6; ++i) {
      EXPECT_TRUE(fs.stat("/base/g" + std::to_string(gen) + "f" +
                          std::to_string(i))
                      .has_value());
    }
    fs = fs.fork();  // the long fork chain idiom: the view rides its child
  };
  for (int gen = 0; gen < 8; ++gen) {
    generation(uncapped, gen);
    generation(capped, gen);
    // Cap inherited across the fork-and-replace above.
    EXPECT_EQ(capped.dentry_snapshot_cap(), 8u);
    EXPECT_LE(capped.dentry_snapshot_entries(), 16u) << "gen " << gen;
  }
  // Uncapped: every generation's entries, still on board.
  EXPECT_GT(uncapped.dentry_snapshot_entries(), 40u);
  // Shed entries are simply re-walked: every old path still answers.
  for (int gen = 0; gen < 8; ++gen) {
    for (int i = 0; i < 6; ++i) {
      EXPECT_TRUE(capped.exists("/base/g" + std::to_string(gen) + "f" +
                                std::to_string(i)));
    }
  }
}

TEST(DentrySnapshotCap, PromotedSharedHitsSurviveARebuild) {
  // A path served FROM the snapshot (never re-walked) counts as young:
  // the promotion keeps it through a capped rebuild.
  vfs::FileSystem fs;
  fs.write_file("/hot/file", "x");
  fs.write_file("/cold/file", "y");
  EXPECT_TRUE(fs.stat("/hot/file").has_value());
  EXPECT_TRUE(fs.stat("/cold/file").has_value());
  fs = fs.fork();  // both paths now live in the shared snapshot
  fs.set_dentry_snapshot_cap(3);
  // This generation touches only the hot path — served from the snapshot.
  EXPECT_TRUE(fs.stat("/hot/file").has_value());
  fs = fs.fork();  // merged size would exceed 3: age-based rebuild
  EXPECT_LE(fs.dentry_snapshot_entries(), 3u);
  // Transparency: both paths still resolve identically.
  EXPECT_TRUE(fs.exists("/hot/file"));
  EXPECT_TRUE(fs.exists("/cold/file"));
}

TEST(DentrySnapshotCap, PropertyCappedRebuildMatchesUncapped) {
  // Randomized mutate / probe / fork / launch traffic against two views of
  // the same world — uncapped vs a tiny cap that rebuilds constantly. The
  // cache is a memo: every answer, error, inode number, and syscall
  // counter must stay byte-identical.
  for (const std::uint64_t seed : {11ull, 4242ull, 0xabadull}) {
    support::Rng rng(seed);
    workload::PynamicConfig config;
    config.num_modules = 18;
    config.exe_extra_bytes = 1u << 16;
    vfs::FileSystem plain;
    const auto app = workload::generate_pynamic(plain, config);
    vfs::FileSystem capped(plain);  // deep copy: identical inode numbering
    plain.set_dentry_snapshot_cap(0);
    capped.set_dentry_snapshot_cap(6);

    std::vector<std::string> pool = app.module_paths;
    pool.push_back(app.exe_path);
    for (int step = 0; step < 80; ++step) {
      switch (rng.below(5)) {
        case 0: {  // mutate both sides identically
          const std::string fresh =
              "/scratch/d" + std::to_string(rng.below(4)) + "/f" +
              std::to_string(rng.below(12));
          plain.write_file(fresh, "s" + std::to_string(step));
          capped.write_file(fresh, "s" + std::to_string(step));
          pool.push_back(fresh);
          break;
        }
        case 1: {  // probe storm: answers and counters must agree
          for (int i = 0; i < 10; ++i) {
            const std::string& path = pool[rng.below(pool.size())];
            const auto a = plain.stat(path);
            const auto b = capped.stat(path);
            ASSERT_EQ(a.has_value(), b.has_value()) << path;
            if (a) {
              EXPECT_EQ(a->ino, b->ino) << path;
              EXPECT_EQ(a->size, b->size) << path;
            }
          }
          break;
        }
        case 2: {  // fork-and-replace: the snapshot boundary under test
          plain = plain.fork();
          capped = capped.fork();
          // A capped snapshot only ever sheds relative to the uncapped one
          // (identical traffic keeps the per-generation maps identical).
          EXPECT_LE(capped.dentry_snapshot_entries(),
                    plain.dentry_snapshot_entries());
          break;
        }
        case 3: {  // launch traffic: the loader's candidate storm
          loader::Loader la(plain);
          loader::Loader lb(capped);
          const auto ra =
              launch::simulate_launch(plain, la, app.exe_path, {}, 64);
          const auto rb =
              launch::simulate_launch(capped, lb, app.exe_path, {}, 64);
          EXPECT_EQ(ra.meta_ops_per_rank, rb.meta_ops_per_rank);
          EXPECT_EQ(ra.bytes_per_rank, rb.bytes_per_rank);
          EXPECT_EQ(ra.load_succeeded, rb.load_succeeded);
          break;
        }
        default: {  // negative probes (never-existing paths)
          const std::string ghost =
              "/ghost/g" + std::to_string(rng.below(20));
          EXPECT_FALSE(plain.stat(ghost).has_value());
          EXPECT_FALSE(capped.stat(ghost).has_value());
          break;
        }
      }
    }
    // Counters charged identically through both cache configurations.
    EXPECT_EQ(plain.stats().stat_calls, capped.stats().stat_calls)
        << "seed " << seed;
    EXPECT_EQ(plain.stats().open_calls, capped.stats().open_calls)
        << "seed " << seed;
    EXPECT_EQ(plain.stats().failed_probes, capped.stats().failed_probes)
        << "seed " << seed;
    EXPECT_EQ(plain.stats().readlink_calls, capped.stats().readlink_calls)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace depchaos::core
