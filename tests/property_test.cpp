// Property-style sweeps over randomized dependency worlds (parameterized
// gtest). For every (seed, size, link-style) combination we build a random
// store-model application and check the invariants the paper's tooling
// relies on:
//   * the loader resolves it (the generator wires search paths correctly);
//   * shrinkwrap resolves the same closure as the loader (Interp == what
//     actually loaded), rewrites to absolute paths, and verify() passes;
//   * wrapping never increases metadata syscalls and never changes the SET
//     of loaded files;
//   * wrapping is idempotent;
//   * a hostile LD_LIBRARY_PATH full of impostors cannot redirect a
//     wrapped binary.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>

#include "depchaos/elf/patcher.hpp"
#include "depchaos/loader/loader.hpp"
#include "depchaos/shrinkwrap/shrinkwrap.hpp"
#include "depchaos/support/rng.hpp"
#include "depchaos/vfs/vfs.hpp"

namespace depchaos {
namespace {

enum class Style { RpathOnExe, RunpathPerLib };

struct WorldParam {
  std::uint64_t seed;
  std::size_t num_libs;
  Style style;
};

std::string param_name(const ::testing::TestParamInfo<WorldParam>& info) {
  return "seed" + std::to_string(info.param.seed) + "_n" +
         std::to_string(info.param.num_libs) +
         (info.param.style == Style::RpathOnExe ? "_rpath" : "_runpath");
}

/// A random store-model world: libs 0..n-1, lib i may need any subset of
/// earlier libs (acyclic), each lib in its own directory.
struct World {
  vfs::FileSystem fs;
  std::string exe_path = "/world/bin/app";
  std::vector<std::string> lib_paths;
  std::set<std::string> all_sonames;

  explicit World(const WorldParam& param) {
    support::Rng rng(param.seed);
    std::vector<std::string> sonames;
    std::vector<std::string> dirs;
    for (std::size_t i = 0; i < param.num_libs; ++i) {
      sonames.push_back("librand" + std::to_string(i) + ".so");
      dirs.push_back("/world/pkg" + std::to_string(i) + "/lib");
      all_sonames.insert(sonames.back());
    }
    for (std::size_t i = 0; i < param.num_libs; ++i) {
      std::vector<std::string> needed;
      std::vector<std::string> dep_dirs;
      const std::size_t max_deps = std::min<std::size_t>(i, 4);
      const std::size_t num_deps =
          max_deps == 0 ? 0 : rng.below(max_deps + 1);
      std::set<std::size_t> chosen;
      for (std::size_t d = 0; d < num_deps; ++d) {
        const std::size_t target = rng.below(i);
        if (chosen.insert(target).second) {
          needed.push_back(sonames[target]);
          dep_dirs.push_back(dirs[target]);
        }
      }
      elf::Object lib =
          param.style == Style::RunpathPerLib
              ? elf::make_library(sonames[i], needed, dep_dirs)
              : elf::make_library(sonames[i], needed);
      elf::install_object(fs, dirs[i] + "/" + sonames[i], lib);
      lib_paths.push_back(dirs[i] + "/" + sonames[i]);
    }
    // The executable needs a random non-empty subset of libs.
    std::vector<std::string> exe_needed;
    std::vector<std::string> exe_dirs;
    for (std::size_t i = 0; i < param.num_libs; ++i) {
      if (rng.chance(0.5) || i == param.num_libs - 1) {
        exe_needed.push_back(sonames[i]);
      }
      exe_dirs.push_back(dirs[i]);
    }
    elf::Object exe =
        param.style == Style::RunpathPerLib
            ? elf::make_executable(exe_needed, exe_dirs)
            : elf::make_executable(exe_needed, {}, exe_dirs);
    elf::install_object(fs, exe_path, exe);
  }
};

std::set<std::string> loaded_realpaths(const loader::LoadReport& report) {
  std::set<std::string> out;
  for (std::size_t i = 1; i < report.load_order.size(); ++i) {
    out.insert(report.load_order[i].real_path);
  }
  return out;
}

class RandomWorldTest : public ::testing::TestWithParam<WorldParam> {};

TEST_P(RandomWorldTest, LoadsAsBuilt) {
  World world(GetParam());
  loader::Loader loader(world.fs);
  EXPECT_TRUE(loader.load(world.exe_path).success);
}

TEST_P(RandomWorldTest, ShrinkwrapPreservesLoadedSet) {
  World world(GetParam());
  loader::Loader loader(world.fs);
  const auto before = loader.load(world.exe_path);
  ASSERT_TRUE(before.success);
  const auto before_set = loaded_realpaths(before);

  const auto wrap = shrinkwrap::shrinkwrap(world.fs, loader, world.exe_path);
  ASSERT_TRUE(wrap.ok());
  const auto after = loader.load(world.exe_path);
  ASSERT_TRUE(after.success);
  EXPECT_EQ(loaded_realpaths(after), before_set);
}

TEST_P(RandomWorldTest, ShrinkwrapNeverIncreasesSyscalls) {
  World world(GetParam());
  loader::Loader loader(world.fs);
  const auto before = loader.load(world.exe_path);
  ASSERT_TRUE(before.success);
  ASSERT_TRUE(shrinkwrap::shrinkwrap(world.fs, loader, world.exe_path).ok());
  const auto after = loader.load(world.exe_path);
  EXPECT_LE(after.stats.metadata_calls(), before.stats.metadata_calls());
  EXPECT_EQ(after.stats.failed_probes, 0u);
}

TEST_P(RandomWorldTest, ShrinkwrapIdempotent) {
  World world(GetParam());
  loader::Loader loader(world.fs);
  const auto first = shrinkwrap::shrinkwrap(world.fs, loader, world.exe_path);
  ASSERT_TRUE(first.ok());
  const auto second =
      shrinkwrap::shrinkwrap(world.fs, loader, world.exe_path);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.new_needed, second.new_needed);
  EXPECT_FALSE(second.changed);
}

TEST_P(RandomWorldTest, VerifyPassesAfterWrap) {
  World world(GetParam());
  loader::Loader loader(world.fs);
  ASSERT_TRUE(shrinkwrap::shrinkwrap(world.fs, loader, world.exe_path).ok());
  EXPECT_TRUE(shrinkwrap::verify(world.fs, loader, world.exe_path).ok);
}

TEST_P(RandomWorldTest, WrappedResistsImpostorEnvironment) {
  World world(GetParam());
  loader::Loader loader(world.fs);
  const auto before = loader.load(world.exe_path);
  ASSERT_TRUE(before.success);
  ASSERT_TRUE(shrinkwrap::shrinkwrap(world.fs, loader, world.exe_path).ok());
  // Impostors for every soname.
  for (const auto& soname : world.all_sonames) {
    elf::install_object(world.fs, "/impostors/" + soname,
                        elf::make_library(soname));
  }
  loader.invalidate();
  const auto hostile = loader.load(
      world.exe_path, loader::Environment::with_library_path({"/impostors"}));
  ASSERT_TRUE(hostile.success);
  for (const auto& path : loaded_realpaths(hostile)) {
    EXPECT_FALSE(path.starts_with("/impostors/")) << path;
  }
}

TEST_P(RandomWorldTest, InterpAndNativeStrategiesAgree) {
  const auto param = GetParam();
  World interp_world(param);
  World native_world(param);  // identical by construction (same seed)
  loader::Loader interp_loader(interp_world.fs);
  loader::Loader native_loader(native_world.fs);
  const auto interp =
      shrinkwrap::shrinkwrap(interp_world.fs, interp_loader,
                             interp_world.exe_path);
  shrinkwrap::Options options;
  options.strategy = shrinkwrap::Strategy::Native;
  const auto native = shrinkwrap::shrinkwrap(
      native_world.fs, native_loader, native_world.exe_path, options);
  ASSERT_TRUE(interp.ok());
  ASSERT_TRUE(native.ok());
  EXPECT_EQ(interp.new_needed, native.new_needed);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomWorldTest,
    ::testing::Values(
        WorldParam{1, 3, Style::RpathOnExe},
        WorldParam{2, 8, Style::RpathOnExe},
        WorldParam{3, 20, Style::RpathOnExe},
        WorldParam{4, 50, Style::RpathOnExe},
        WorldParam{5, 8, Style::RunpathPerLib},
        WorldParam{6, 20, Style::RunpathPerLib},
        WorldParam{7, 50, Style::RunpathPerLib},
        WorldParam{8, 120, Style::RpathOnExe},
        WorldParam{9, 120, Style::RunpathPerLib}),
    param_name);

// ------------------------------------------------------- path properties

class PathNormalizeTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PathNormalizeTest, NormalizeIsIdempotent) {
  support::Rng rng(GetParam());
  static const char* kComponents[] = {"usr", "lib", ".", "..", "a", "b5",
                                      "store", "x-y_z"};
  for (int trial = 0; trial < 200; ++trial) {
    std::string path = "/";
    const std::size_t parts = 1 + rng.below(8);
    for (std::size_t i = 0; i < parts; ++i) {
      path += kComponents[rng.below(std::size(kComponents))];
      if (rng.chance(0.3)) path += "/";
      path += "/";
    }
    const std::string once = vfs::normalize_path(path);
    EXPECT_EQ(vfs::normalize_path(once), once) << path;
    EXPECT_TRUE(once == "/" || !once.ends_with('/')) << once;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PathNormalizeTest,
                         ::testing::Values(11, 22, 33, 44));

// ------------------------------------------------ serialization property

class SelfRoundTripTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SelfRoundTripTest, RandomObjectsRoundTrip) {
  support::Rng rng(GetParam());
  for (int trial = 0; trial < 100; ++trial) {
    elf::Object object;
    object.kind = rng.chance(0.5) ? elf::ObjectKind::Executable
                                  : elf::ObjectKind::SharedObject;
    const elf::Machine machines[] = {elf::Machine::X86, elf::Machine::X86_64,
                                     elf::Machine::PPC64LE,
                                     elf::Machine::AArch64};
    object.machine = machines[rng.below(4)];
    if (rng.chance(0.7)) object.dyn.soname = "lib" + std::to_string(trial) + ".so";
    for (std::size_t i = 0; i < rng.below(6); ++i) {
      object.dyn.needed.push_back("libdep" + std::to_string(i) + ".so");
    }
    for (std::size_t i = 0; i < rng.below(4); ++i) {
      object.dyn.rpath.push_back("/r" + std::to_string(i));
    }
    for (std::size_t i = 0; i < rng.below(4); ++i) {
      object.dyn.runpath.push_back("$ORIGIN/../l" + std::to_string(i));
    }
    for (std::size_t i = 0; i < rng.below(5); ++i) {
      const elf::SymbolBinding bindings[] = {elf::SymbolBinding::Local,
                                             elf::SymbolBinding::Global,
                                             elf::SymbolBinding::Weak};
      object.symbols.push_back(elf::Symbol{"sym_" + std::to_string(i),
                                           bindings[rng.below(3)],
                                           rng.chance(0.6)});
    }
    for (std::size_t i = 0; i < rng.below(3); ++i) {
      object.dlopen_names.push_back("libplug" + std::to_string(i) + ".so");
    }
    object.extra_size = rng.below(1 << 20);
    EXPECT_EQ(elf::parse(elf::serialize(object)), object);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SelfRoundTripTest,
                         ::testing::Values(101, 202, 303));

}  // namespace
}  // namespace depchaos
