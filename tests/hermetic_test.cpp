#include <gtest/gtest.h>

#include "depchaos/elf/patcher.hpp"
#include "depchaos/loader/loader.hpp"
#include "depchaos/pkg/hermetic.hpp"

namespace depchaos::pkg::hermetic {
namespace {

TEST(Hermetic, CommitFreezesStagingLayer) {
  Image image;
  image.write_file("/usr/lib/libc.so.6", std::string("v1"));
  EXPECT_EQ(image.staged_changes(), 1u);
  const auto id = image.commit("base");
  EXPECT_FALSE(id.empty());
  EXPECT_EQ(image.staged_changes(), 0u);
  EXPECT_EQ(image.head(), id);
}

TEST(Hermetic, EmptyCommitIsNoop) {
  Image image;
  image.write_file("/f", std::string("x"));
  const auto first = image.commit("one");
  EXPECT_EQ(image.commit("empty"), first);
  EXPECT_EQ(image.log().size(), 1u);
}

TEST(Hermetic, UpperLayerOverridesLower) {
  Image image;
  image.write_file("/etc/conf", std::string("old"));
  image.commit("base");
  image.write_file("/etc/conf", std::string("new"));
  image.commit("update");
  EXPECT_EQ(image.read("/etc/conf")->bytes, "new");
}

TEST(Hermetic, WhiteoutDeletes) {
  Image image;
  image.write_file("/usr/bin/tool", std::string("bin"));
  image.commit("base");
  image.remove("/usr/bin/tool");
  image.commit("remove tool");
  EXPECT_FALSE(image.read("/usr/bin/tool").has_value());
  // The underlying layer still holds it: rollback resurrects.
  image.rollback();
  EXPECT_TRUE(image.read("/usr/bin/tool").has_value());
}

TEST(Hermetic, RollbackIsAtomicAndDiscardsStaging) {
  Image image;
  image.write_file("/a", std::string("1"));
  const auto first = image.commit("one");
  image.write_file("/a", std::string("2"));
  image.write_file("/b", std::string("2"));
  image.commit("two");
  image.write_file("/c", std::string("staged"));

  image.rollback();
  EXPECT_EQ(image.head(), first);
  EXPECT_EQ(image.read("/a")->bytes, "1");
  EXPECT_FALSE(image.read("/b").has_value());
  EXPECT_FALSE(image.read("/c").has_value());
}

TEST(Hermetic, RollbackPastRootThrows) {
  Image image;
  EXPECT_THROW(image.rollback(), Error);
}

TEST(Hermetic, CommitAfterRollbackAbandonsTheFuture) {
  Image image;
  image.write_file("/v", std::string("1"));
  image.commit("one");
  image.write_file("/v", std::string("2"));
  const auto two = image.commit("two");
  image.rollback();
  image.write_file("/v", std::string("3"));
  image.commit("three");
  EXPECT_EQ(image.read("/v")->bytes, "3");
  EXPECT_THROW(image.checkout_commit(two), Error);  // rewritten history
  EXPECT_EQ(image.log().size(), 2u);
}

TEST(Hermetic, CheckoutArbitraryCommit) {
  Image image;
  image.write_file("/gen", std::string("1"));
  const auto one = image.commit("one");
  image.write_file("/gen", std::string("2"));
  image.commit("two");
  image.checkout_commit(one);
  EXPECT_EQ(image.read("/gen")->bytes, "1");
}

TEST(Hermetic, MaterializedImageRunsFhsBinaries) {
  // The §II-C selling point: the interior is plain FHS, so ordinary
  // dynamic binaries work against a checked-out commit.
  Image image;
  image.write_file("/usr/lib/libm.so",
                   elf::serialize(elf::make_library("libm.so")));
  image.write_file("/usr/bin/calc",
                   elf::serialize(elf::make_executable({"libm.so"})));
  image.commit("base os");

  auto fs = image.materialize();
  loader::Loader loader(fs);
  const auto report = loader.load("/usr/bin/calc");
  ASSERT_TRUE(report.success);
  EXPECT_EQ(report.load_order[1].how, loader::HowFound::DefaultPath);
}

TEST(Hermetic, UpgradeThenRollbackChangesWhatLoads) {
  Image image;
  elf::Object v1 = elf::make_library("libssl.so");
  v1.symbols.push_back(elf::Symbol{"ssl_v1", elf::SymbolBinding::Global, true});
  image.write_file("/usr/lib/libssl.so", elf::serialize(v1));
  image.write_file("/usr/bin/app",
                   elf::serialize(elf::make_executable({"libssl.so"})));
  image.commit("v1");

  elf::Object v2 = elf::make_library("libssl.so");
  v2.symbols.push_back(elf::Symbol{"ssl_v2", elf::SymbolBinding::Global, true});
  image.write_file("/usr/lib/libssl.so", elf::serialize(v2));
  image.commit("security update");

  {
    auto fs = image.materialize();
    loader::Loader loader(fs);
    const auto report = loader.load("/usr/bin/app");
    EXPECT_TRUE(report.load_order[1].object->defines("ssl_v2"));
  }
  image.rollback();
  {
    auto fs = image.materialize();
    loader::Loader loader(fs);
    const auto report = loader.load("/usr/bin/app");
    EXPECT_TRUE(report.load_order[1].object->defines("ssl_v1"));
  }
}

}  // namespace
}  // namespace depchaos::pkg::hermetic
