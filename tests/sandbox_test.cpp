// Session::sandbox — per-job container views over one host world — and
// the container failure-mode scenarios: a host library leaking through an
// unmasked /usr/lib (fixed by masking), a stale app image shadowing a
// patched host library, and per-job overlay divergence.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "depchaos/core/session.hpp"
#include "depchaos/core/world.hpp"
#include "depchaos/elf/patcher.hpp"
#include "depchaos/vfs/snapshot.hpp"
#include "depchaos/workload/scenarios.hpp"

namespace depchaos::core {
namespace {

using workload::ContainerLeakScenario;
using workload::StaleImageScenario;

Session host_session_for(const ContainerLeakScenario& scenario,
                         vfs::FileSystem host) {
  SessionConfig config;
  config.search = scenario.search;
  return Session(std::move(host), std::move(config));
}

TEST(Sandbox, HostLeakOnlyUnderUnmaskedMountStackingAndFixedByMasking) {
  vfs::FileSystem host_fs;
  const auto scenario = workload::make_container_leak_scenario(host_fs);
  Session host = host_session_for(scenario, std::move(host_fs));

  // Outside any sandbox the tool does not even exist: the failure needs a
  // specific mount stacking to occur at all.
  EXPECT_THROW(host.load(scenario.exe), Error);

  // Image mounted, host dir visible: the HOST's stale copy wins — the
  // wrong-library load.
  Session::SandboxSpec leaky;
  leaky.image = scenario.image;
  leaky.image_mount = scenario.image_mount;
  leaky.exe = scenario.exe;
  Session leaking = host.sandbox(leaky);
  const auto bad = leaking.load();
  ASSERT_TRUE(bad.success);
  EXPECT_TRUE(workload::container_host_leaked(bad, scenario));
  const auto* leaked = bad.find_loaded(scenario.leak_soname);
  ASSERT_NE(leaked, nullptr);
  EXPECT_TRUE(leaked->path.starts_with(scenario.host_lib_dir));

  // Same image, host dir masked: the load is CORRECT (not merely failing)
  // — the container's own copy resolves instead.
  Session::SandboxSpec masked = leaky;
  masked.mask = {scenario.host_lib_dir};
  Session fixed = host.sandbox(masked);
  const auto good = fixed.load();
  ASSERT_TRUE(good.success);
  EXPECT_FALSE(workload::container_host_leaked(good, scenario));
  const auto* bound = good.find_loaded(scenario.leak_soname);
  ASSERT_NE(bound, nullptr);
  EXPECT_TRUE(bound->path.starts_with(scenario.image_mount));

  // The host world never noticed any of it.
  EXPECT_FALSE(host.fs().exists(scenario.exe));
  EXPECT_TRUE(host.fs().exists(scenario.host_lib_dir + "/libdeps.so"));
}

TEST(Sandbox, StaleImageShadowsPatchedHostLibrary) {
  vfs::FileSystem host_fs;
  const auto scenario = workload::make_stale_image_scenario(host_fs);
  Session host(std::move(host_fs));

  Session::SandboxSpec spec;
  spec.image = scenario.stale_image;
  spec.image_mount = scenario.image_mount;
  spec.exe = scenario.exe;
  Session stale = host.sandbox(spec);
  const auto shadowed = stale.load();
  ASSERT_TRUE(shadowed.success);
  EXPECT_TRUE(workload::stale_library_loaded(shadowed, scenario));

  // Remounting the rebuilt image is the fix.
  spec.image = scenario.fresh_image;
  Session fresh = host.sandbox(spec);
  const auto updated = fresh.load();
  ASSERT_TRUE(updated.success);
  EXPECT_FALSE(workload::stale_library_loaded(updated, scenario));
}

TEST(Sandbox, PerJobOverlayDivergence) {
  vfs::FileSystem host_fs;
  const auto scenario = workload::make_container_leak_scenario(host_fs);
  Session host = host_session_for(scenario, std::move(host_fs));

  Session::SandboxSpec spec;
  spec.image = scenario.image;
  spec.image_mount = scenario.image_mount;
  spec.exe = scenario.exe;
  spec.writable_image_overlay = true;
  spec.mask = {scenario.host_lib_dir};

  Session job_a = host.sandbox(spec);
  Session job_b = host.sandbox(spec);

  // Job A hotfixes the bundled library in ITS overlay.
  elf::Object hotfix = elf::make_library("libdeps.so");
  hotfix.symbols.push_back(
      elf::Symbol{"libdeps_hotfix_v3", elf::SymbolBinding::Global, true});
  elf::install_object(job_a.fs(), scenario.image_mount + "/lib/libdeps.so",
                      hotfix);
  job_a.invalidate();

  const auto report_a = job_a.load();
  const auto report_b = job_b.load();
  ASSERT_TRUE(report_a.success && report_b.success);
  const auto* deps_a = report_a.find_loaded(scenario.leak_soname);
  const auto* deps_b = report_b.find_loaded(scenario.leak_soname);
  ASSERT_TRUE(deps_a && deps_a->object && deps_b && deps_b->object);
  EXPECT_TRUE(deps_a->object->defines_strong("libdeps_hotfix_v3"));
  EXPECT_FALSE(deps_b->object->defines_strong("libdeps_hotfix_v3"));
  EXPECT_TRUE(deps_b->object->defines_strong(scenario.image_marker));
  // The shared image is untouched by A's hotfix.
  EXPECT_FALSE(scenario.image->peek("/lib/libdeps.so") == nullptr);
  Session job_c = host.sandbox(spec);
  const auto report_c = job_c.load();
  ASSERT_TRUE(report_c.success);
  EXPECT_TRUE(report_c.find_loaded(scenario.leak_soname)
                  ->object->defines_strong(scenario.image_marker));
}

TEST(Sandbox, ScratchMountsAreWritableAndPrivate) {
  Session host = WorldBuilder().samba().build();
  Session::SandboxSpec spec;
  spec.scratch = {"/tmp/job"};
  Session job = host.sandbox(spec);
  job.fs().write_file("/tmp/job/out.log", std::string("done"));
  EXPECT_TRUE(job.fs().exists("/tmp/job/out.log"));
  EXPECT_FALSE(host.fs().exists("/tmp/job/out.log"));
  // The host workload still resolves inside the sandbox (shared base).
  EXPECT_TRUE(job.load(host.default_exe()).success);
}

TEST(Sandbox, FleetPersistsAndRestoresThroughSnapshotV2) {
  vfs::FileSystem host_fs;
  const auto scenario = workload::make_container_leak_scenario(host_fs);
  Session host = host_session_for(scenario, std::move(host_fs));

  Session::SandboxSpec spec;
  spec.image = scenario.image;
  spec.image_mount = scenario.image_mount;
  spec.exe = scenario.exe;
  spec.writable_image_overlay = true;
  spec.mask = {scenario.host_lib_dir};
  Session job_a = host.sandbox(spec);
  Session job_b = host.sandbox(spec);
  job_a.fs().write_file(scenario.image_mount + "/etc/job.conf",
                        std::string("job A"));

  const std::vector<const vfs::FileSystem*> views = {&job_a.fs(),
                                                     &job_b.fs()};
  const std::string image = vfs::save_fleet(host.fs(), views);
  auto fleet = vfs::load_fleet(image);
  ASSERT_EQ(fleet.views.size(), 2u);

  // Observable equality, then behavioral equality through the loader.
  EXPECT_EQ(vfs::save_world(fleet.views[0]), vfs::save_world(job_a.fs()));
  EXPECT_EQ(vfs::save_world(fleet.views[1]), vfs::save_world(job_b.fs()));

  SessionConfig config;
  config.search = scenario.search;
  Session restored(std::move(fleet.views[0]), std::move(config),
                   scenario.exe);
  const auto before = job_a.load();
  const auto after = restored.load();
  ASSERT_TRUE(after.success);
  ASSERT_EQ(before.load_order.size(), after.load_order.size());
  for (std::size_t i = 0; i < before.load_order.size(); ++i) {
    EXPECT_EQ(before.load_order[i].path, after.load_order[i].path) << i;
    EXPECT_EQ(before.load_order[i].how, after.load_order[i].how) << i;
  }
  EXPECT_EQ(before.stats.open_calls, after.stats.open_calls);
}

TEST(Sandbox, FromSnapshotOpensFleetImages) {
  vfs::FileSystem host_fs;
  const auto scenario = workload::make_container_leak_scenario(host_fs);
  Session host = host_session_for(scenario, std::move(host_fs));
  Session::SandboxSpec spec;
  spec.image = scenario.image;
  spec.image_mount = scenario.image_mount;
  spec.exe = scenario.exe;
  spec.mask = {scenario.host_lib_dir};
  Session job = host.sandbox(spec);

  const std::vector<const vfs::FileSystem*> views = {&job.fs()};
  const std::string image = vfs::save_fleet(host.fs(), views);
  SessionConfig config;
  config.search = scenario.search;
  Session reopened = Session::from_snapshot(image, std::move(config));
  const auto report = reopened.load(scenario.exe);
  ASSERT_TRUE(report.success);
  EXPECT_FALSE(workload::container_host_leaked(report, scenario));
}

TEST(Sandbox, BuildImageProducesAMountableWorld) {
  auto image = WorldBuilder()
                   .file("/share/banner.txt", "hello")
                   .build_image();
  Session host = WorldBuilder().samba().build();
  Session::SandboxSpec spec;
  spec.image = image;
  spec.image_mount = "/opt/bundle";
  Session job = host.sandbox(spec);
  EXPECT_EQ(job.fs().peek("/opt/bundle/share/banner.txt")->bytes, "hello");
}

}  // namespace
}  // namespace depchaos::core
