#include <gtest/gtest.h>

#include "depchaos/elf/object.hpp"
#include "depchaos/elf/patcher.hpp"
#include "depchaos/vfs/vfs.hpp"

namespace depchaos::elf {
namespace {

Object sample_object() {
  Object object;
  object.kind = ObjectKind::Executable;
  object.machine = Machine::X86_64;
  object.interp = "/lib64/ld-linux-x86-64.so.2";
  object.dyn.soname = "libsample.so.1";
  object.dyn.needed = {"liba.so", "libb.so.2", "/abs/libc.so"};
  object.dyn.rpath = {"/opt/x/lib"};
  object.dyn.runpath = {"$ORIGIN/../lib", "/usr/lib"};
  object.symbols = {
      {"main", SymbolBinding::Global, true},
      {"helper", SymbolBinding::Weak, true},
      {"printf", SymbolBinding::Global, false},
      {"_internal", SymbolBinding::Local, true},
  };
  object.extra_size = 4096;
  return object;
}

TEST(SelfFormat, RoundTripsExactly) {
  const Object original = sample_object();
  const Object reparsed = parse(serialize(original));
  EXPECT_EQ(original, reparsed);
}

TEST(SelfFormat, RoundTripMinimalLibrary) {
  const Object lib = make_library("libm.so");
  EXPECT_EQ(parse(serialize(lib)), lib);
}

TEST(SelfFormat, MagicDetection) {
  EXPECT_TRUE(looks_like_self(serialize(sample_object())));
  EXPECT_FALSE(looks_like_self("#!/bin/sh\necho hi\n"));
  EXPECT_FALSE(looks_like_self(""));
  EXPECT_FALSE(looks_like_self("SELF1"));  // no newline/body
}

TEST(SelfFormat, ParseRejectsBadMagic) {
  EXPECT_THROW(parse("ELF..."), ElfError);
}

TEST(SelfFormat, ParseRejectsTruncated) {
  std::string image = serialize(sample_object());
  image = image.substr(0, image.size() - 5);  // chop "end\n"
  EXPECT_THROW(parse(image), ElfError);
}

TEST(SelfFormat, ParseRejectsUnknownField) {
  EXPECT_THROW(parse("SELF1\nbogus value\nend\n"), ElfError);
}

TEST(SelfFormat, ParseRejectsBadMachine) {
  EXPECT_THROW(parse("SELF1\nmachine vax\nend\n"), ElfError);
}

TEST(SelfFormat, ParseRejectsTrailingContent) {
  EXPECT_THROW(parse("SELF1\nkind dyn\nend\nkind exec\n"), ElfError);
}

TEST(SelfFormat, SymbolLineRoundTrip) {
  Object object = make_library("libs.so");
  object.symbols = {{"sym with space", SymbolBinding::Global, true}};
  EXPECT_EQ(parse(serialize(object)).symbols[0].name, "sym with space");
}

TEST(Machine, NamesRoundTrip) {
  for (const Machine machine : {Machine::X86, Machine::PPC64LE,
                                Machine::X86_64, Machine::AArch64}) {
    EXPECT_EQ(machine_from_name(machine_name(machine)), machine);
  }
  EXPECT_FALSE(machine_from_name("mips").has_value());
}

TEST(Object, DefinesRespectsBindingAndVisibility) {
  const Object object = sample_object();
  EXPECT_TRUE(object.defines("main"));
  EXPECT_TRUE(object.defines("helper"));       // weak counts
  EXPECT_FALSE(object.defines("_internal"));   // local hidden
  EXPECT_FALSE(object.defines("printf"));      // undefined
  EXPECT_TRUE(object.defines_strong("main"));
  EXPECT_FALSE(object.defines_strong("helper"));
}

TEST(Object, UndefinedSymbols) {
  const auto undef = sample_object().undefined_symbols();
  ASSERT_EQ(undef.size(), 1u);
  EXPECT_EQ(undef[0], "printf");
}

// ------------------------------------------------------------- patcher

class PatcherTest : public ::testing::Test {
 protected:
  void SetUp() override {
    install_object(fs_, "/bin/app", sample_object());
  }
  vfs::FileSystem fs_;
  Patcher patcher_{fs_};
};

TEST_F(PatcherTest, InstallSetsDeclaredSize) {
  const auto st = fs_.stat("/bin/app");
  ASSERT_TRUE(st.has_value());
  EXPECT_GT(st->size, 4096u);  // extra_size + metadata
}

TEST_F(PatcherTest, ReadMissingThrows) {
  EXPECT_THROW(patcher_.read("/no/such"), FsError);
}

TEST_F(PatcherTest, SetRunpath) {
  patcher_.set_runpath("/bin/app", {"/new/lib"});
  EXPECT_EQ(patcher_.read("/bin/app").dyn.runpath,
            std::vector<std::string>{"/new/lib"});
}

TEST_F(PatcherTest, SetRpath) {
  patcher_.set_rpath("/bin/app", {"/r1", "/r2"});
  const auto object = patcher_.read("/bin/app");
  EXPECT_EQ(object.dyn.rpath, (std::vector<std::string>{"/r1", "/r2"}));
}

TEST_F(PatcherTest, ClearSearchPaths) {
  patcher_.clear_search_paths("/bin/app");
  const auto object = patcher_.read("/bin/app");
  EXPECT_TRUE(object.dyn.rpath.empty());
  EXPECT_TRUE(object.dyn.runpath.empty());
}

TEST_F(PatcherTest, SetSoname) {
  patcher_.set_soname("/bin/app", "libapp.so.2");
  EXPECT_EQ(patcher_.read("/bin/app").dyn.soname, "libapp.so.2");
}

TEST_F(PatcherTest, SetNeededReplacesWholeList) {
  patcher_.set_needed("/bin/app", {"/x/liba.so"});
  EXPECT_EQ(patcher_.read("/bin/app").dyn.needed,
            std::vector<std::string>{"/x/liba.so"});
}

TEST_F(PatcherTest, AddRemoveNeeded) {
  patcher_.add_needed("/bin/app", "libnew.so");
  EXPECT_EQ(patcher_.read("/bin/app").dyn.needed.back(), "libnew.so");
  patcher_.remove_needed("/bin/app", "liba.so");
  const auto needed = patcher_.read("/bin/app").dyn.needed;
  EXPECT_EQ(std::count(needed.begin(), needed.end(), "liba.so"), 0);
}

TEST_F(PatcherTest, ReplaceNeededPreservesPosition) {
  patcher_.replace_needed("/bin/app", "libb.so.2", "/abs/libb.so.2");
  const auto needed = patcher_.read("/bin/app").dyn.needed;
  ASSERT_EQ(needed.size(), 3u);
  EXPECT_EQ(needed[1], "/abs/libb.so.2");
}

TEST_F(PatcherTest, PatchPreservesOtherFields) {
  const Object before = patcher_.read("/bin/app");
  patcher_.set_runpath("/bin/app", {"/q"});
  const Object after = patcher_.read("/bin/app");
  EXPECT_EQ(before.symbols, after.symbols);
  EXPECT_EQ(before.extra_size, after.extra_size);
  EXPECT_EQ(before.interp, after.interp);
}

}  // namespace
}  // namespace depchaos::elf
