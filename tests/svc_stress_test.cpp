// Thread-sanitizer stress for the multi-core session service. These tests
// exist to give TSan (and the hardened CI legs) real contention to chew
// on: many raw threads stamping fork_sealed() children off one sealed
// base while the siblings resolve concurrently, and a SessionPool fed
// from competing submitter threads so the work-stealing pool, sharded
// memo, and sharded PathTable index all run hot. Assertions are
// byte-identity checks — any synchronization bug shows up either as a
// TSan report or as a divergent report digest.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "depchaos/core/world.hpp"
#include "depchaos/elf/patcher.hpp"
#include "depchaos/support/thread_pool.hpp"
#include "depchaos/svc/session_pool.hpp"

namespace depchaos::svc {
namespace {

using core::Session;
using core::WorldBuilder;
using elf::make_executable;
using elf::make_library;

std::vector<std::string> install_fleet(WorldBuilder& builder,
                                       std::size_t count) {
  builder.install("/usr/lib/libcommon.so", make_library("libcommon.so"));
  std::vector<std::string> exes;
  for (std::size_t i = 0; i < count; ++i) {
    const std::string n = std::to_string(i);
    builder.install("/apps/a" + n + "/lib/libpriv" + n + ".so",
                    make_library("libpriv" + n + ".so", {"libcommon.so"}));
    builder.install(
        "/apps/a" + n + "/bin/app",
        make_executable({"libpriv" + n + ".so"}, {"/apps/a" + n + "/lib"}));
    exes.push_back("/apps/a" + n + "/bin/app");
  }
  return exes;
}

std::string digest(const loader::LoadReport& r) {
  std::ostringstream out;
  out << "ok=" << r.success << '\n';
  for (const auto& o : r.load_order) {
    out << o.name << '|' << o.path << '|' << o.real_path << '|' << o.depth
        << '\n';
  }
  out << "stat=" << r.stats.stat_calls << " open=" << r.stats.open_calls
      << " failed=" << r.stats.failed_probes << '\n';
  return out.str();
}

// Raw-thread admission storm: every thread stamps its own fork_sealed()
// child off ONE sealed base — no locks anywhere on the fork path — and
// immediately resolves against it while its siblings do the same. The
// interleaved resolutions intern paths into the family-shared PathTable
// concurrently, which is exactly the sharded-index write path.
TEST(SvcStress, ConcurrentSealedForksResolveByteIdentically) {
  constexpr std::size_t kThreads = 8;
  constexpr int kRounds = 4;

  WorldBuilder builder;
  const auto exes = install_fleet(builder, kThreads);
  Session base = builder.build();
  base.seal();
  ASSERT_TRUE(base.sealed());

  // Reference digests from a single sequential child.
  std::vector<std::string> want;
  {
    Session reference = base.fork_sealed();
    for (const auto& exe : exes) want.push_back(digest(reference.load(exe)));
  }

  std::vector<std::vector<std::string>> got(kThreads);
  std::atomic<int> failures{0};
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        try {
          for (int round = 0; round < kRounds; ++round) {
            Session child = base.fork_sealed();
            // Each round resolves every app, rotated so threads collide
            // on different closures at different times.
            for (std::size_t i = 0; i < exes.size(); ++i) {
              const std::size_t pick = (t + i + round) % exes.size();
              const std::string d = digest(child.load(exes[pick]));
              if (round == 0 && i == 0) got[t].push_back(d);
              if (d != want[pick]) failures.fetch_add(1);
            }
          }
        } catch (...) {
          failures.fetch_add(1);
        }
      });
    }
    for (auto& thread : threads) thread.join();
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_TRUE(base.sealed());  // const stamps never cleared the seal
}

// The pool under competing submitters: several threads blast loads for
// overlapping clients/exes at a multi-worker pool. Work stealing, the
// sharded memo (hit and miss paths racing on cold keys), and strand
// batching all interleave; every single report must still match the
// sequential reference.
TEST(SvcStress, PoolUnderCompetingSubmittersStaysByteIdentical) {
  constexpr std::size_t kSubmitters = 4;
  constexpr std::size_t kClientsPer = 8;
  constexpr int kLoadsPerClient = 3;

  WorldBuilder twin_a;
  const auto exes = install_fleet(twin_a, 6);
  WorldBuilder twin_b;
  install_fleet(twin_b, 6);

  Session reference = twin_a.build();
  reference.seal();
  std::vector<std::string> want;
  {
    Session child = reference.fork_sealed();
    for (const auto& exe : exes) want.push_back(digest(child.load(exe)));
  }

  PoolConfig config;
  config.shards = 4;
  config.threads = 4;
  SessionPool pool(twin_b.build(), config);

  std::atomic<int> failures{0};
  {
    std::vector<std::thread> submitters;
    submitters.reserve(kSubmitters);
    for (std::size_t s = 0; s < kSubmitters; ++s) {
      submitters.emplace_back([&, s] {
        std::vector<std::pair<std::size_t, std::future<loader::LoadReport>>>
            inflight;
        for (std::size_t c = 0; c < kClientsPer; ++c) {
          const ClientId client =
              static_cast<ClientId>(s * kClientsPer + c + 1);
          for (int i = 0; i < kLoadsPerClient; ++i) {
            const std::size_t pick = (s + c + static_cast<std::size_t>(i)) %
                                     exes.size();
            inflight.emplace_back(pick,
                                  pool.submit_load(client, exes[pick]));
          }
        }
        for (auto& [pick, future] : inflight) {
          try {
            if (digest(future.get()) != want[pick]) failures.fetch_add(1);
          } catch (...) {
            failures.fetch_add(1);
          }
        }
      });
    }
    for (auto& submitter : submitters) submitter.join();
  }
  pool.drain();
  EXPECT_EQ(failures.load(), 0);

  const PoolStats stats = pool.stats();
  EXPECT_EQ(stats.executed, kSubmitters * kClientsPer * kLoadsPerClient);
  EXPECT_EQ(stats.worker_errors, 0u);
  EXPECT_EQ(stats.forks_locked, 0u);  // sealed stamps only, never the mutex
  EXPECT_GT(stats.memo_hits, 0u);
}

// Work-stealing pool in isolation: imbalanced task sizes from several
// submitter threads, tags and errors striped across lanes. TSan checks
// the lane handoffs; the assertions check the bookkeeping survived them.
TEST(SvcStress, ThreadPoolStealsKeepTagAndErrorBookkeeping) {
  support::ThreadPool pool(4);
  constexpr int kTasks = 400;
  std::atomic<int> ran{0};
  {
    std::vector<std::thread> submitters;
    for (int s = 0; s < 3; ++s) {
      submitters.emplace_back([&, s] {
        for (int i = 0; i < kTasks; ++i) {
          pool.submit("stress/tag" + std::to_string(s), [&, i] {
            // Tail of heavy tasks so some lanes drain early and steal.
            volatile std::uint64_t sink = 0;
            const int spin = (i % 16 == 0) ? 20000 : 50;
            for (int k = 0; k < spin; ++k) {
              sink = sink + static_cast<std::uint64_t>(k);
            }
            ran.fetch_add(1);
            if (i % 97 == 0) throw std::runtime_error("expected");
          });
        }
      });
    }
    for (auto& submitter : submitters) submitter.join();
  }
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 3 * kTasks);
  const auto errors = pool.take_errors();
  EXPECT_EQ(errors.size(), 3u * ((kTasks + 96) / 97));
  const auto tags = pool.tag_stats();
  std::uint64_t tagged = 0;
  for (const auto& [tag, counts] : tags) tagged += counts.completed;
  EXPECT_EQ(tagged, 3u * kTasks);
}

}  // namespace
}  // namespace depchaos::svc
