#include <gtest/gtest.h>

#include "depchaos/loader/loader.hpp"
#include "depchaos/spack/concretizer.hpp"
#include "depchaos/spack/dsl.hpp"
#include "depchaos/spack/install.hpp"
#include "depchaos/spack/spec.hpp"
#include "depchaos/spack/version.hpp"

namespace depchaos::spack {
namespace {

// -------------------------------------------------------------- versions

TEST(Version, NumericSegmentCompare) {
  EXPECT_LT(Version("1.9"), Version("1.10"));
  EXPECT_LT(Version("1.8"), Version("2.0"));
  EXPECT_EQ(Version("1.8"), Version("1.8.0"));
  EXPECT_LT(Version("1.8"), Version("1.8.1"));
}

TEST(Version, PrefixMatch) {
  EXPECT_TRUE(Version("1.8").is_prefix_of(Version("1.8.2")));
  EXPECT_FALSE(Version("1.8").is_prefix_of(Version("1.80")));
  EXPECT_TRUE(Version("1.8.0").is_prefix_of(Version("1.8")));
  EXPECT_FALSE(Version("1.8.1").is_prefix_of(Version("1.8")));
}

TEST(Constraint, AnyMatchesEverything) {
  const VersionConstraint any;
  EXPECT_TRUE(any.satisfied_by(Version("0.0.1")));
  EXPECT_TRUE(any.is_any());
}

TEST(Constraint, ExactRequiresEquality) {
  const VersionConstraint exact("=1.8.2");
  EXPECT_TRUE(exact.satisfied_by(Version("1.8.2")));
  EXPECT_FALSE(exact.satisfied_by(Version("1.8.3")));
}

TEST(Constraint, PrefixForm) {
  const VersionConstraint prefix("1.8");
  EXPECT_TRUE(prefix.satisfied_by(Version("1.8.2")));
  EXPECT_FALSE(prefix.satisfied_by(Version("1.9.0")));
}

TEST(Constraint, ClosedRange) {
  const VersionConstraint range("1.8:1.12");
  EXPECT_TRUE(range.satisfied_by(Version("1.8")));
  EXPECT_TRUE(range.satisfied_by(Version("1.10.7")));
  EXPECT_TRUE(range.satisfied_by(Version("1.12.3")));  // prefix-closed upper
  EXPECT_FALSE(range.satisfied_by(Version("1.13")));
  EXPECT_FALSE(range.satisfied_by(Version("1.7.9")));
}

TEST(Constraint, OpenRanges) {
  EXPECT_TRUE(VersionConstraint("1.8:").satisfied_by(Version("99")));
  EXPECT_FALSE(VersionConstraint("1.8:").satisfied_by(Version("1.7")));
  EXPECT_TRUE(VersionConstraint(":1.12").satisfied_by(Version("0.1")));
  EXPECT_FALSE(VersionConstraint(":1.12").satisfied_by(Version("2.0")));
}

TEST(Constraint, Intersections) {
  EXPECT_TRUE(VersionConstraint("1.8:").intersects(VersionConstraint(":1.9")));
  EXPECT_TRUE(VersionConstraint("1.8").intersects(VersionConstraint("1.8:2")));
  EXPECT_FALSE(
      VersionConstraint("=1.2").intersects(VersionConstraint("2.0:3.0")));
}

// ------------------------------------------------------------------ spec

TEST(SpecParse, FullForm) {
  const Spec spec = Spec::parse("axom@0.7.0%gcc@10.3 +mpi ~shared");
  EXPECT_EQ(spec.name, "axom");
  EXPECT_TRUE(spec.version.satisfied_by(Version("0.7.0")));
  EXPECT_EQ(spec.compiler, "gcc");
  EXPECT_TRUE(spec.compiler_version.satisfied_by(Version("10.3")));
  EXPECT_TRUE(spec.variants.at("mpi"));
  EXPECT_FALSE(spec.variants.at("shared"));
}

TEST(SpecParse, DependencyConstraints) {
  const Spec spec = Spec::parse("app ^hdf5@1.8:1.12+shared ^mpi");
  ASSERT_EQ(spec.dep_constraints.size(), 2u);
  EXPECT_EQ(spec.dep_constraints[0].name, "hdf5");
  EXPECT_TRUE(spec.dep_constraints[0].variants.at("shared"));
  EXPECT_EQ(spec.dep_constraints[1].name, "mpi");
}

TEST(SpecParse, AnonymousConditionSpecs) {
  const Spec cond = Spec::parse("+mpi");
  EXPECT_TRUE(cond.anonymous());
  EXPECT_TRUE(cond.variants.at("mpi"));
  const Spec ver = Spec::parse("@1.8:");
  EXPECT_TRUE(ver.anonymous());
  EXPECT_FALSE(ver.version.is_any());
}

TEST(SpecParse, Malformed) {
  EXPECT_THROW(Spec::parse("pkg@"), ParseError);
  EXPECT_THROW(Spec::parse("pkg%"), ParseError);
  EXPECT_THROW(Spec::parse("pkg+"), ParseError);
  EXPECT_THROW(Spec::parse("pkg ^"), ParseError);
  EXPECT_THROW(Spec::parse("pkg ^+mpi"), ParseError);
}

TEST(SpecParse, RoundTripThroughStr) {
  const Spec spec = Spec::parse("axom@0.7%gcc+mpi~openmp ^hdf5@1.10:");
  const Spec reparsed = Spec::parse(spec.str());
  EXPECT_EQ(reparsed.name, "axom");
  EXPECT_EQ(reparsed.variants.size(), 2u);
  EXPECT_EQ(reparsed.dep_constraints.size(), 1u);
}

// ------------------------------------------------------------------- dsl

constexpr const char* kAxomPy = R"PY(
# Copyright (c) Lawrence Livermore
from spack.package import *


class Axom(CMakePackage):
    """Axom provides robust software components
    for HPC applications, across multiple lines."""

    homepage = "https://github.com/LLNL/axom"
    url = "https://github.com/LLNL/axom/archive/v0.7.0.tar.gz"

    version("0.7.0", sha256="aaa111")
    version("0.6.1", sha256="bbb222", deprecated=True)
    version("0.5.0", sha256="ccc333")

    variant("mpi", default=True, description="Enable MPI support")
    variant("openmp", default=False, description="Enable OpenMP")
    variant("shared", default=True, description="Build shared libs")

    depends_on("mpi", when="+mpi")
    depends_on(
        "hdf5@1.8:1.12",
        type=("build", "link"),
    )
    depends_on("conduit+shared", when="+shared")
    depends_on("raja", when="+openmp")

    conflicts("%gcc@:7", when="+openmp")
    patch("fix-install.patch", when="@0.5.0")
)PY";

TEST(Dsl, ParsesClassAndMetadata) {
  const Recipe recipe = parse_package_py(kAxomPy);
  EXPECT_EQ(recipe.name, "axom");
  EXPECT_EQ(recipe.class_name, "Axom");
  EXPECT_EQ(recipe.base_class, "CMakePackage");
  EXPECT_EQ(recipe.homepage, "https://github.com/LLNL/axom");
}

TEST(Dsl, ParsesVersionsWithKwargs) {
  const Recipe recipe = parse_package_py(kAxomPy);
  ASSERT_EQ(recipe.versions.size(), 3u);
  EXPECT_EQ(recipe.versions[0].version, "0.7.0");
  EXPECT_EQ(recipe.versions[0].sha256, "aaa111");
  EXPECT_TRUE(recipe.versions[1].deprecated);
}

TEST(Dsl, ParsesVariants) {
  const Recipe recipe = parse_package_py(kAxomPy);
  ASSERT_EQ(recipe.variants.size(), 3u);
  EXPECT_TRUE(recipe.find_variant("mpi")->default_value);
  EXPECT_FALSE(recipe.find_variant("openmp")->default_value);
  EXPECT_EQ(recipe.find_variant("mpi")->description, "Enable MPI support");
}

TEST(Dsl, ParsesDependsOnWithWhenAndMultiline) {
  const Recipe recipe = parse_package_py(kAxomPy);
  ASSERT_EQ(recipe.dependencies.size(), 4u);
  EXPECT_EQ(recipe.dependencies[0].spec.name, "mpi");
  EXPECT_TRUE(recipe.dependencies[0].has_when);
  EXPECT_TRUE(recipe.dependencies[0].when.variants.at("mpi"));
  // multi-line call merged:
  EXPECT_EQ(recipe.dependencies[1].spec.name, "hdf5");
  EXPECT_EQ(recipe.dependencies[1].types,
            (std::vector<std::string>{"build", "link"}));
  EXPECT_TRUE(recipe.dependencies[2].spec.variants.at("shared"));
}

TEST(Dsl, ParsesConflictsAndPatches) {
  const Recipe recipe = parse_package_py(kAxomPy);
  ASSERT_EQ(recipe.conflicts.size(), 1u);
  EXPECT_EQ(recipe.conflicts[0].conflict.compiler, "gcc");
  EXPECT_EQ(recipe.patch_count, 1u);
}

TEST(Dsl, DocstringAndCommentsIgnored) {
  const Recipe recipe = parse_package_py(
      "class X(Package):\n"
      "    \"\"\"doc with version(\"9.9\") inside\"\"\"\n"
      "    # version(\"8.8\")\n"
      "    version(\"1.0\", sha256=\"x\")\n");
  ASSERT_EQ(recipe.versions.size(), 1u);
  EXPECT_EQ(recipe.versions[0].version, "1.0");
}

TEST(Dsl, CamelCaseConversion) {
  EXPECT_EQ(class_to_package_name("Axom"), "axom");
  EXPECT_EQ(class_to_package_name("PyNumpy"), "py-numpy");
  EXPECT_EQ(class_to_package_name("Hdf5"), "hdf5");
  EXPECT_EQ(class_to_package_name("Openmpi"), "openmpi");
}

TEST(Dsl, ProvidesVirtuals) {
  const Recipe recipe = parse_package_py(
      "class Openmpi(Package):\n"
      "    version(\"4.1.1\")\n"
      "    provides(\"mpi\")\n");
  ASSERT_EQ(recipe.provides.size(), 1u);
  EXPECT_EQ(recipe.provides[0], "mpi");
}

TEST(Dsl, NoClassThrows) {
  EXPECT_THROW(parse_package_py("version(\"1.0\")\n"), ParseError);
}

TEST(Dsl, BestVersionSkipsDeprecatedAndHonorsPreferred) {
  const Recipe recipe = parse_package_py(
      "class P(Package):\n"
      "    version(\"3.0\", deprecated=True)\n"
      "    version(\"2.0\", preferred=True)\n"
      "    version(\"2.5\")\n");
  EXPECT_EQ(recipe.best_version(VersionConstraint{}), "2.0");
  EXPECT_EQ(recipe.best_version(VersionConstraint("2.1:")), "2.5");
  EXPECT_EQ(recipe.best_version(VersionConstraint("3.0:")), "");
}

// ----------------------------------------------------------- concretizer

Repo sample_repo() {
  Repo repo;
  repo.add_package_py(kAxomPy);
  repo.add_package_py(
      "class Hdf5(Package):\n"
      "    version(\"1.12.1\")\n"
      "    version(\"1.10.8\")\n"
      "    version(\"1.13.0\")\n"
      "    depends_on(\"zlib\")\n");
  repo.add_package_py(
      "class Zlib(Package):\n"
      "    version(\"1.2.11\")\n");
  repo.add_package_py(
      "class Conduit(Package):\n"
      "    version(\"0.8.2\")\n"
      "    variant(\"shared\", default=True, description=\"s\")\n"
      "    depends_on(\"hdf5@1.8:1.12\")\n");
  repo.add_package_py(
      "class Raja(Package):\n"
      "    version(\"2022.3.0\")\n");
  repo.add_package_py(
      "class Openmpi(Package):\n"
      "    version(\"4.1.1\")\n"
      "    provides(\"mpi\")\n"
      "    depends_on(\"zlib\")\n");
  repo.add_package_py(
      "class Mvapich2(Package):\n"
      "    version(\"2.3.6\")\n"
      "    provides(\"mpi\")\n");
  return repo;
}

TEST(Concretizer, PicksHighestSatisfyingVersion) {
  const Repo repo = sample_repo();
  const Concretizer concretizer(repo);
  const auto dag = concretizer.concretize("hdf5@1.8:1.12");
  EXPECT_EQ(dag.at("hdf5").version, "1.12.1");
}

TEST(Concretizer, DefaultsVariantsAndCompiler) {
  const Repo repo = sample_repo();
  const Concretizer concretizer(repo);
  const auto dag = concretizer.concretize("axom");
  const auto& axom = dag.at("axom");
  EXPECT_EQ(axom.version, "0.7.0");  // deprecated 0.6.1 skipped
  EXPECT_TRUE(axom.variants.at("mpi"));
  EXPECT_FALSE(axom.variants.at("openmp"));
  EXPECT_EQ(axom.compiler, "gcc");
}

TEST(Concretizer, WhenConditionsGateDependencies) {
  const Repo repo = sample_repo();
  const Concretizer concretizer(repo);
  const auto with_mpi = concretizer.concretize("axom+mpi");
  // Default provider is the alphabetically-first recipe providing "mpi".
  EXPECT_TRUE(with_mpi.nodes.contains("mvapich2"));
  const auto without_mpi = concretizer.concretize("axom~mpi");
  EXPECT_FALSE(without_mpi.nodes.contains("openmpi"));
  EXPECT_FALSE(without_mpi.nodes.contains("mvapich2"));
}

TEST(Concretizer, VirtualProviderSelectable) {
  const Repo repo = sample_repo();
  ConcretizerOptions options;
  options.virtual_defaults["mpi"] = "mvapich2";
  const Concretizer concretizer(repo, options);
  const auto dag = concretizer.concretize("axom+mpi");
  EXPECT_TRUE(dag.nodes.contains("mvapich2"));
  EXPECT_FALSE(dag.nodes.contains("openmpi"));
}

TEST(Concretizer, DagUnifiesSharedDependencies) {
  const Repo repo = sample_repo();
  const Concretizer concretizer(repo);
  const auto dag = concretizer.concretize("axom+mpi");
  // zlib appears once even though hdf5 and openmpi both need it.
  EXPECT_EQ(dag.nodes.count("zlib"), 1u);
  const auto order = dag.install_order();
  // deps-first: zlib before hdf5, everything before axom.
  const auto pos = [&](const std::string& n) {
    return std::find(order.begin(), order.end(), n) - order.begin();
  };
  EXPECT_LT(pos("zlib"), pos("hdf5"));
  EXPECT_EQ(order.back(), "axom");
}

TEST(Concretizer, HatConstraintNarrowsTransitiveDep) {
  const Repo repo = sample_repo();
  const Concretizer concretizer(repo);
  const auto dag = concretizer.concretize("axom ^hdf5@1.10");
  EXPECT_EQ(dag.at("hdf5").version, "1.10.8");
}

TEST(Concretizer, UnknownPackageThrows) {
  const Repo repo = sample_repo();
  const Concretizer concretizer(repo);
  EXPECT_THROW(concretizer.concretize("nosuchpkg"), ResolveError);
}

TEST(Concretizer, UnsatisfiableVersionThrows) {
  const Repo repo = sample_repo();
  const Concretizer concretizer(repo);
  EXPECT_THROW(concretizer.concretize("zlib@9.9"), ResolveError);
}

TEST(Concretizer, ConflictTriggers) {
  const Repo repo = sample_repo();
  const Concretizer concretizer(repo);
  // axom conflicts("%gcc@:7", when="+openmp"); default compiler gcc@12.1.0
  // does NOT match @:7, so +openmp alone is fine...
  EXPECT_NO_THROW(concretizer.concretize("axom+openmp"));
  // ...but an old gcc plus openmp trips it.
  EXPECT_THROW(concretizer.concretize("axom+openmp%gcc@7.5"), ResolveError);
}

TEST(Concretizer, ContradictoryVariantsThrow) {
  const Repo repo = sample_repo();
  const Concretizer concretizer(repo);
  EXPECT_THROW(concretizer.concretize("axom+shared ^conduit~shared +mpi"),
               ResolveError);
  // note: conduit~shared contradicts axom's depends_on("conduit+shared").
}

TEST(Concretizer, DagHashStableAndSensitive) {
  const Repo repo = sample_repo();
  const Concretizer concretizer(repo);
  const auto dag1 = concretizer.concretize("axom");
  const auto dag2 = concretizer.concretize("axom");
  EXPECT_EQ(dag1.dag_hash("axom"), dag2.dag_hash("axom"));
  const auto dag3 = concretizer.concretize("axom~mpi");
  EXPECT_NE(dag1.dag_hash("axom"), dag3.dag_hash("axom"));
}

TEST(Concretizer, CycleDetected) {
  Repo repo;
  repo.add_package_py(
      "class A(Package):\n    version(\"1\")\n    depends_on(\"b\")\n");
  repo.add_package_py(
      "class B(Package):\n    version(\"1\")\n    depends_on(\"a\")\n");
  const Concretizer concretizer(repo);
  EXPECT_THROW(concretizer.concretize("a"), ResolveError);
}

// --------------------------------------------------------------- install

TEST(Install, MaterializedDagLoads) {
  vfs::FileSystem fs;
  const Repo repo = sample_repo();
  const Concretizer concretizer(repo);
  const auto dag = concretizer.concretize("axom+mpi");

  pkg::store::Store store(fs, "/opt/spack/store");
  const auto result = install_dag(store, dag);
  ASSERT_FALSE(result.exe_path.empty());
  EXPECT_EQ(result.prefixes.size(), dag.size());

  loader::Loader loader(fs);
  const auto report = loader.load(result.exe_path);
  EXPECT_TRUE(report.success);
  // Every DAG node's library got loaded.
  EXPECT_EQ(report.load_order.size(), 1 + dag.size());
}

TEST(Install, RunpathStoreAlsoLoads) {
  vfs::FileSystem fs;
  const Repo repo = sample_repo();
  const Concretizer concretizer(repo);
  const auto dag = concretizer.concretize("conduit");
  pkg::store::Store store(fs, "/opt/spack/store",
                          pkg::store::LinkStyle::Runpath);
  const auto result = install_dag(store, dag);
  loader::Loader loader(fs);
  EXPECT_TRUE(loader.load(result.exe_path).success);
}

}  // namespace
}  // namespace depchaos::spack
