// svc::SessionPool — the multi-tenant session service over one shared world.
//
// The load-bearing property is at the bottom: a randomized mix of
// load/whatif/shrinkwrap requests from many concurrent clients produces
// results BYTE-IDENTICAL to the same per-client request sequences run
// sequentially on private forks. Everything the pool does for throughput —
// strand batching, Load memoization across pristine forks, idle
// eviction/collapse — must be invisible in the reports.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "depchaos/core/world.hpp"
#include "depchaos/elf/patcher.hpp"
#include "depchaos/launch/launch.hpp"
#include "depchaos/svc/session_pool.hpp"
#include "depchaos/workload/pynamic.hpp"

namespace depchaos::svc {
namespace {

using core::Session;
using core::WorldBuilder;
using elf::make_executable;
using elf::make_library;

// Install `count` independent apps (private lib + one shared system lib).
// Deterministic: two calls build byte-identical worlds, which is what lets
// the property test run the pool and the sequential reference on twins.
std::vector<std::string> install_fleet(WorldBuilder& builder,
                                       std::size_t count) {
  builder.install("/usr/lib/libcommon.so", make_library("libcommon.so"));
  std::vector<std::string> exes;
  for (std::size_t i = 0; i < count; ++i) {
    const std::string n = std::to_string(i);
    builder.install("/apps/a" + n + "/lib/libpriv" + n + ".so",
                    make_library("libpriv" + n + ".so", {"libcommon.so"}));
    builder.install(
        "/apps/a" + n + "/bin/app",
        make_executable({"libpriv" + n + ".so"}, {"/apps/a" + n + "/lib"}));
    exes.push_back("/apps/a" + n + "/bin/app");
  }
  return exes;
}

Session make_world(std::size_t apps = 6) {
  WorldBuilder builder;
  install_fleet(builder, apps);
  return builder.build();
}

// Flatten every consumer-observable report field into a comparable string.
std::string digest(const loader::LoadReport& r) {
  std::ostringstream out;
  out << "ok=" << r.success << '\n';
  for (const auto& o : r.load_order) {
    out << o.name << '|' << o.path << '|' << o.real_path << '|'
        << o.requested_by << '|' << static_cast<int>(o.how) << '|' << o.depth
        << '|' << o.parent_index << '\n';
  }
  out << "req=" << r.requests.size() << " miss=" << r.missing.size()
      << " stat=" << r.stats.stat_calls << " open=" << r.stats.open_calls
      << " read=" << r.stats.read_calls
      << " readlink=" << r.stats.readlink_calls
      << " failed=" << r.stats.failed_probes << " t=" << r.stats.sim_time_s
      << '\n';
  return out.str();
}

std::string digest(const shrinkwrap::WrapReport& r) {
  std::ostringstream out;
  out << "changed=" << r.changed << " ok=" << r.ok() << '\n';
  for (const auto& n : r.old_needed) out << "old " << n << '\n';
  for (const auto& n : r.new_needed) out << "new " << n << '\n';
  for (const auto& [name, path] : r.resolved) {
    out << name << " -> " << path << '\n';
  }
  out << "stat=" << r.wrap_cost.stat_calls << " open=" << r.wrap_cost.open_calls
      << '\n';
  return out.str();
}

std::string digest(const Session::WhatIfReport& r) {
  return digest(r.wrap) + digest(r.before) + digest(r.after) + r.before_tree +
         r.after_tree + r.tree_diff;
}

// ----------------------------------------------------------- basic service

TEST(SessionPool, LoadMatchesDirectSession) {
  WorldBuilder twin_a;
  const auto exes = install_fleet(twin_a, 3);
  WorldBuilder twin_b;
  install_fleet(twin_b, 3);

  Session direct = twin_a.build();
  SessionPool pool(twin_b.build());
  for (const auto& exe : exes) {
    EXPECT_EQ(digest(pool.submit_load(1, exe).get()), digest(direct.load(exe)));
  }
  // Promises are fulfilled before the strand updates counters; quiesce so
  // the final finish() is visible before reading stats.
  pool.drain();
  const PoolStats stats = pool.stats();
  EXPECT_EQ(stats.executed, exes.size());
  EXPECT_EQ(stats.clients_live, 1u);
  EXPECT_EQ(stats.latency[static_cast<std::size_t>(RequestKind::Load)].count,
            exes.size());
}

TEST(SessionPool, MemoizationServesIdenticalReportsAcrossClients) {
  SessionPool pool(make_world());
  ASSERT_TRUE(pool.memoization_enabled());
  const std::string exe = "/apps/a0/bin/app";
  const std::string first = digest(pool.submit_load(1, exe).get());
  for (ClientId client = 2; client <= 32; ++client) {
    EXPECT_EQ(digest(pool.submit_load(client, exe).get()), first);
  }
  pool.drain();  // counters update after promises are fulfilled
  const PoolStats stats = pool.stats();
  EXPECT_EQ(stats.executed, 32u);
  EXPECT_EQ(stats.memoized, 31u);  // every repeat was a memo hit
}

TEST(SessionPool, SharedLoadsAliasOneReportAndMatchCopyingApi) {
  SessionPool pool(make_world());
  const std::string exe = "/apps/a0/bin/app";
  const std::string copied = digest(pool.submit_load(1, exe).get());
  auto a = pool.submit_load_shared(2, exe).get();
  auto b = pool.submit_load_shared(3, exe).get();
  // Fleet dedup: identical responses are ONE immutable payload…
  EXPECT_EQ(a.get(), b.get());
  // …and byte-identical to what the copying API returns.
  EXPECT_EQ(digest(*a), copied);
}

// Everything in a LoadReport except sim_time_s is warmth-transparent and
// must match bit-for-bit; sim_time_s is compared separately (1e-9) since
// re-pricing replays floating-point charge sums.
std::string digest_sans_time(loader::LoadReport r) {
  r.stats.sim_time_s = 0;
  return digest(r);
}

TEST(SessionPool, MemoizationStaysOnUnderLatencyModelWithRepricing) {
  WorldBuilder twin_a;
  install_fleet(twin_a, 3);
  WorldBuilder twin_b;
  install_fleet(twin_b, 3);

  Session base = twin_b.build();
  base.fs().set_latency_model(std::make_shared<vfs::NfsModel>());
  SessionPool pool(std::move(base));
  // A stateful model no longer disables the memo: hits replay the miss
  // run's charge log through the hitting client's OWN cloned models.
  EXPECT_TRUE(pool.memoization_enabled());
  EXPECT_TRUE(pool.repricing_active());

  const std::string exe = "/apps/a0/bin/app";
  // Client 1 loads twice (cold attr cache, then warm); client 2 loads
  // once on its own cold fork. Loads 2 and 3 are memo hits, yet each must
  // be priced for ITS client's warmth, not the miss run's.
  const auto cold = pool.submit_load(1, exe).get();
  const auto warm = pool.submit_load(1, exe).get();
  const auto other = pool.submit_load(2, exe).get();
  pool.drain();  // counters update after promises are fulfilled

  Session reference = twin_a.build();
  reference.fs().set_latency_model(std::make_shared<vfs::NfsModel>());
  reference.seal();  // mirror the pool's ctor seal
  Session ref1 = reference.fork_sealed();
  const auto ref_cold = ref1.load(exe);
  const auto ref_warm = ref1.load(exe);
  Session ref2 = reference.fork_sealed();
  const auto ref_other = ref2.load(exe);

  EXPECT_EQ(digest_sans_time(cold), digest_sans_time(ref_cold));
  EXPECT_EQ(digest_sans_time(warm), digest_sans_time(ref_warm));
  EXPECT_EQ(digest_sans_time(other), digest_sans_time(ref_other));
  EXPECT_NEAR(cold.stats.sim_time_s, ref_cold.stats.sim_time_s, 1e-9);
  EXPECT_NEAR(warm.stats.sim_time_s, ref_warm.stats.sim_time_s, 1e-9);
  EXPECT_NEAR(other.stats.sim_time_s, ref_other.stats.sim_time_s, 1e-9);
  // The re-pricing is doing real work: warm NFS caches are cheaper than
  // cold ones, so the two hits of the same memo entry price differently.
  EXPECT_LT(warm.stats.sim_time_s, cold.stats.sim_time_s);

  const PoolStats stats = pool.stats();
  EXPECT_EQ(stats.memoized, 2u);  // warm + other were memo-served
  EXPECT_EQ(stats.memo_hits, 2u);
  EXPECT_GE(stats.memo_misses, 1u);
}

TEST(SessionPool, ShrinkwrapIsolatedPerClientAndFifoOrdered) {
  WorldBuilder twin_a;
  install_fleet(twin_a, 2);
  WorldBuilder twin_b;
  install_fleet(twin_b, 2);
  Session direct = twin_a.build();
  SessionPool pool(twin_b.build());
  const std::string exe = "/apps/a0/bin/app";

  // Client 1: wrap then load, submitted back-to-back — FIFO on the strand
  // means the load MUST observe the wrap.
  auto wrap = pool.submit_shrinkwrap(1, exe);
  auto wrapped_load = pool.submit_load(1, exe);
  // Client 2 stays pristine; its load must match the untouched base.
  auto pristine_load = pool.submit_load(2, exe);

  EXPECT_TRUE(wrap.get().changed);
  const auto after = wrapped_load.get();
  ASSERT_TRUE(after.success);
  EXPECT_EQ(digest(pristine_load.get()), digest(direct.load(exe)));

  Session direct_wrapped = make_world(2);
  direct_wrapped.shrinkwrap(exe);
  EXPECT_EQ(digest(after), digest(direct_wrapped.load(exe)));

  // Client 1's divergence is private: a third client still sees the base.
  EXPECT_EQ(digest(pool.submit_load(3, exe).get()), digest(direct.load(exe)));
}

TEST(SessionPool, QueryAndLoadManyAndReset) {
  SessionPool pool(make_world(4));
  const QueryResult fresh = pool.submit_query(7).get();
  EXPECT_TRUE(fresh.pristine);
  EXPECT_GT(fresh.inode_count, 0u);
  EXPECT_GT(fresh.interned_paths, 0u);

  auto many = pool.submit_load_many(
      7, {"/apps/a0/bin/app", "/apps/a1/bin/app", "/apps/a2/bin/app"});
  const auto reports = many.get();
  ASSERT_EQ(reports.size(), 3u);
  for (const auto& report : reports) EXPECT_TRUE(report.success);

  pool.submit_shrinkwrap(7, "/apps/a0/bin/app").get();
  EXPECT_FALSE(pool.submit_query(7).get().pristine);
  pool.reset(7).get();
  EXPECT_TRUE(pool.submit_query(7).get().pristine);

  pool.release(7).get();
  pool.drain();
  EXPECT_EQ(pool.stats().clients_live, 0u);
}

// --------------------------------------------------- errors stay contained

TEST(SessionPool, RequestErrorsLandInFuturesNotWorkers) {
  SessionPool pool(make_world(2));
  auto bad = pool.submit_load(1, "/no/such/exe");
  EXPECT_THROW(bad.get(), Error);
  // The strand survived: the same client's next request works.
  EXPECT_TRUE(pool.submit_load(1, "/apps/a0/bin/app").get().success);
  // get() can return before the strand's bookkeeping lands; quiesce first.
  pool.drain();
  const PoolStats stats = pool.stats();
  EXPECT_EQ(stats.worker_errors, 1u);
  EXPECT_EQ(stats.executed, 2u);
}

// ----------------------------------------------------- backpressure bounds

TEST(SessionPool, BackpressureRejectsPastHighWaterWithRetryHint) {
  PoolConfig config;
  config.shards = 1;
  config.queue_high_water = 4;
  config.manual_drain = true;  // nothing drains until we pump()
  SessionPool pool(make_world(2), config);

  std::vector<std::future<loader::LoadReport>> accepted;
  for (int i = 0; i < 4; ++i) {
    accepted.push_back(pool.submit_load(1, "/apps/a0/bin/app"));
  }
  try {
    pool.submit_load(1, "/apps/a0/bin/app");
    FAIL() << "expected Overloaded";
  } catch (const Overloaded& overloaded) {
    EXPECT_EQ(overloaded.shard(), 0u);
    EXPECT_EQ(overloaded.queue_depth(), 4u);
    EXPECT_GT(overloaded.retry_after_s(), 0.0);
  }
  EXPECT_EQ(pool.stats().rejected, 1u);
  EXPECT_EQ(pool.stats().queue_depths.at(0), 4u);

  // release() bypasses the bound — an overloaded pool can still shed state.
  auto released = pool.release(1);

  EXPECT_GT(pool.pump(), 0u);
  pool.drain();
  released.get();
  for (auto& future : accepted) EXPECT_TRUE(future.get().success);
  // The backlog drained; admission is open again (manual drain: pump the
  // new command through by hand before reading its future).
  auto reopened = pool.submit_load(1, "/apps/a0/bin/app");
  pool.drain();
  EXPECT_TRUE(reopened.get().success);
}

// --------------------------------------------------- per-client fairness

TEST(SessionPool, FairnessBudgetInterleavesClientsAcrossCycles) {
  PoolConfig config;
  config.shards = 1;
  config.manual_drain = true;
  config.client_budget_per_cycle = 1;
  SessionPool pool(make_world(2), config);

  // Client 1 floods; client 2 submits one request behind the flood.
  std::vector<std::future<loader::LoadReport>> chatty;
  for (int i = 0; i < 4; ++i) {
    chatty.push_back(pool.submit_load(1, "/apps/a0/bin/app"));
  }
  auto quiet = pool.submit_load(2, "/apps/a1/bin/app");

  // Cycle 1: one command per client — the quiet tenant is served ahead of
  // the flood's tail instead of waiting out all four commands.
  EXPECT_EQ(pool.pump(), 2u);
  EXPECT_TRUE(quiet.get().success);
  EXPECT_EQ(pool.stats().queue_depths.at(0), 3u);
  EXPECT_EQ(pool.stats().max_clients_per_cycle, 2u);

  // The surplus drains one per cycle, FIFO within the client.
  EXPECT_EQ(pool.pump(), 1u);
  EXPECT_EQ(pool.pump(), 1u);
  EXPECT_EQ(pool.pump(), 1u);
  for (auto& future : chatty) EXPECT_TRUE(future.get().success);
  EXPECT_EQ(pool.stats().executed, 5u);
  EXPECT_EQ(pool.stats().queue_depths.at(0), 0u);
}

TEST(SessionPool, FairnessRequeuePreservesPerClientFifoByteIdentity) {
  PoolConfig config;
  config.shards = 1;
  config.manual_drain = true;
  config.client_budget_per_cycle = 1;
  SessionPool pool(make_world(2), config);
  const std::string exe = "/apps/a0/bin/app";

  // Client 1's wrap precedes its loads; the budget defers the loads across
  // cycles but must NOT reorder them past the wrap.
  auto wrap = pool.submit_shrinkwrap(1, exe);
  auto first_load = pool.submit_load(1, exe);
  auto second_load = pool.submit_load(1, exe);
  auto other = pool.submit_load(2, "/apps/a1/bin/app");
  pool.drain();

  EXPECT_TRUE(wrap.get().changed);
  EXPECT_TRUE(other.get().success);
  Session reference = make_world(2);
  reference.shrinkwrap(exe);
  const std::string wrapped = digest(reference.load(exe));
  EXPECT_EQ(digest(first_load.get()), wrapped);
  EXPECT_EQ(digest(second_load.get()), wrapped);
  EXPECT_GE(pool.stats().drain_cycles, 3u);  // the surplus took extra cycles
}

TEST(SessionPool, UnlimitedBudgetKeepsPlainFifoSemantics) {
  PoolConfig config;
  config.shards = 1;
  config.manual_drain = true;  // default client_budget_per_cycle = 0
  SessionPool pool(make_world(2), config);
  for (int i = 0; i < 3; ++i) pool.submit_load(1, "/apps/a0/bin/app");
  auto quiet = pool.submit_load(2, "/apps/a1/bin/app");
  // One cycle swallows the whole backlog; the stat still counts tenants.
  EXPECT_EQ(pool.pump(), 4u);
  EXPECT_TRUE(quiet.get().success);
  EXPECT_EQ(pool.stats().max_clients_per_cycle, 2u);
}

// --------------------------------------------- heterogeneous fleet verbs

TEST(SessionPool, LaunchFleetConfigRidesAlongWithClustering) {
  workload::PynamicConfig app;
  app.num_modules = 48;
  app.exe_extra_bytes = 1u << 20;
  WorldBuilder twin_a;
  Session direct = twin_a.pynamic(app).nfs().build();
  WorldBuilder twin_b;
  SessionPool pool(twin_b.pynamic(app).nfs().build());

  core::SandboxSpec spec;
  spec.image = std::make_shared<vfs::FileSystem>(direct.fs());
  spec.image_mount = "/";
  spec.writable_image_overlay = true;
  launch::FleetConfig fleet;
  fleet.cluster = direct.config().cluster;
  fleet.rank_setup = [](Session& sandbox, int rank) {
    if (rank % 2 == 1) {
      sandbox.env().ld_library_path.insert(
          sandbox.env().ld_library_path.begin(), "/opt/mixed/lib");
    }
  };

  const auto want = direct.launch_fleet(spec, "", 8, fleet);
  const auto got = pool.submit_launch_fleet(5, spec, "", 8, fleet).get();
  ASSERT_TRUE(got.load_succeeded);
  // The config rode along: two environment classes, each measured once,
  // byte-identical to the direct-session path.
  EXPECT_EQ(got.classes_measured, 2);
  EXPECT_EQ(got.ranks_measured, want.ranks_measured);
  EXPECT_EQ(got.class_sizes, want.class_sizes);
  EXPECT_EQ(got.meta_ops_per_rank, want.meta_ops_per_rank);
  EXPECT_EQ(got.fleet_meta_ops, want.fleet_meta_ops);
  EXPECT_EQ(got.fleet_overlay_meta_ops, want.fleet_overlay_meta_ops);
  EXPECT_EQ(got.total_time_s, want.total_time_s);

  // The legacy overload still runs the session-default config.
  const auto legacy = pool.submit_launch_fleet(6, spec, "", 4).get();
  EXPECT_TRUE(legacy.load_succeeded);
  EXPECT_EQ(legacy.classes_measured, 1);
}

// ------------------------------------------------- idle fork housekeeping

TEST(SessionPool, IdleSweepEvictsPristineAndCollapsesMutatedForks) {
  PoolConfig config;
  config.shards = 1;
  config.idle_evict_cycles = 2;
  config.manual_drain = true;
  SessionPool pool(make_world(3), config);

  pool.submit_load(1, "/apps/a0/bin/app");  // pristine fork
  pool.submit_shrinkwrap(2, "/apps/a1/bin/app");  // mutated fork
  pool.pump();
  ASSERT_EQ(pool.stats().clients_live, 2u);

  // Keep a third client active to advance drain cycles past the idle bar.
  for (int cycle = 0; cycle < 4; ++cycle) {
    pool.submit_query(3);
    pool.pump();
  }

  const PoolStats stats = pool.stats();
  EXPECT_EQ(stats.evicted, 1u);    // client 1's pristine fork dropped
  EXPECT_EQ(stats.collapsed, 1u);  // client 2's divergence flattened
  // Client 2 keeps its wrap through the collapse; client 1 re-forks O(1).
  auto mutated = pool.submit_query(2);
  auto refreshed = pool.submit_query(1);
  pool.drain();
  const QueryResult q2 = mutated.get();
  EXPECT_FALSE(q2.pristine);
  EXPECT_EQ(q2.layer_depth, 1u);
  EXPECT_TRUE(refreshed.get().pristine);
}

// ------------------------------- the property: concurrent == sequential

struct ScriptStep {
  int op = 0;  // 0 load(own), 1 load(other), 2 whatif(own), 3 shrinkwrap(own)
  std::string exe;
};

TEST(SessionPoolProperty, RandomConcurrentClientsMatchSequentialRuns) {
  constexpr std::size_t kApps = 6;
  constexpr std::size_t kClients = 12;
  constexpr std::size_t kSteps = 5;

  WorldBuilder twin_a;
  const auto exes = install_fleet(twin_a, kApps);
  WorldBuilder twin_b;
  install_fleet(twin_b, kApps);

  std::mt19937 rng(20260808);
  std::uniform_int_distribution<int> op_dist(0, 3);
  std::uniform_int_distribution<std::size_t> exe_dist(0, kApps - 1);
  std::vector<std::vector<ScriptStep>> scripts(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    const std::string& own = exes[c % kApps];
    for (std::size_t s = 0; s < kSteps; ++s) {
      ScriptStep step;
      step.op = op_dist(rng);
      step.exe = step.op == 1 ? exes[exe_dist(rng)] : own;
      scripts[c].push_back(step);
    }
  }

  // Concurrent: all clients interleaved through the pool. Submission
  // round-robins by step so shard queues genuinely mix clients.
  PoolConfig config;
  config.shards = 4;
  config.threads = 4;
  SessionPool pool(twin_b.build(), config);
  std::vector<std::vector<std::string>> concurrent(kClients);
  std::vector<std::vector<std::future<loader::LoadReport>>> loads(kClients);
  std::vector<std::vector<std::future<Session::WhatIfReport>>> whatifs(
      kClients);
  std::vector<std::vector<std::future<shrinkwrap::WrapReport>>> wraps(
      kClients);
  for (std::size_t s = 0; s < kSteps; ++s) {
    for (std::size_t c = 0; c < kClients; ++c) {
      const ScriptStep& step = scripts[c][s];
      const ClientId client = static_cast<ClientId>(c + 1);
      switch (step.op) {
        case 0:
        case 1:
          loads[c].push_back(pool.submit_load(client, step.exe));
          break;
        case 2:
          whatifs[c].push_back(pool.submit_whatif(client, step.exe));
          break;
        case 3:
          wraps[c].push_back(pool.submit_shrinkwrap(client, step.exe));
          break;
      }
    }
  }
  for (std::size_t c = 0; c < kClients; ++c) {
    std::size_t load_i = 0;
    std::size_t whatif_i = 0;
    std::size_t wrap_i = 0;
    for (const ScriptStep& step : scripts[c]) {
      switch (step.op) {
        case 0:
        case 1:
          concurrent[c].push_back(digest(loads[c][load_i++].get()));
          break;
        case 2:
          concurrent[c].push_back(digest(whatifs[c][whatif_i++].get()));
          break;
        case 3:
          concurrent[c].push_back(digest(wraps[c][wrap_i++].get()));
          break;
      }
    }
  }

  // Sequential reference: each client's script on a private fork of a
  // byte-identical twin world, one after another on this thread.
  Session base = twin_a.build();
  base.seal();  // mirror the pool's ctor seal (what the priming fork did)
  for (std::size_t c = 0; c < kClients; ++c) {
    Session session = base.fork();
    std::size_t step_index = 0;
    for (const ScriptStep& step : scripts[c]) {
      std::string expected;
      switch (step.op) {
        case 0:
        case 1:
          expected = digest(session.load(step.exe));
          break;
        case 2:
          expected = digest(session.whatif(step.exe));
          break;
        case 3:
          expected = digest(session.shrinkwrap(step.exe));
          break;
      }
      EXPECT_EQ(concurrent[c][step_index], expected)
          << "client " << c << " step " << step_index << " op "
          << scripts[c][step_index].op << " exe " << scripts[c][step_index].exe;
      ++step_index;
    }
  }

  pool.drain();  // counters update after promises are fulfilled
  const PoolStats stats = pool.stats();
  EXPECT_EQ(stats.executed, kClients * kSteps);
  EXPECT_EQ(stats.worker_errors, 0u);
}

// Same property under a STATEFUL latency model: random load scripts from
// concurrent clients, memoization active, every sim_time_s within 1e-9 of
// the sequential per-client fork reference (all other fields exact).
TEST(SessionPoolProperty, RandomizedMemoRepricingMatchesSequentialForks) {
  constexpr std::size_t kApps = 4;
  constexpr std::size_t kClients = 8;
  constexpr std::size_t kSteps = 4;

  WorldBuilder twin_a;
  const auto exes = install_fleet(twin_a, kApps);
  WorldBuilder twin_b;
  install_fleet(twin_b, kApps);

  std::mt19937 rng(20260808);
  std::uniform_int_distribution<std::size_t> exe_dist(0, kApps - 1);
  std::vector<std::vector<std::string>> scripts(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    for (std::size_t s = 0; s < kSteps; ++s) {
      scripts[c].push_back(exes[exe_dist(rng)]);
    }
  }

  Session base = twin_b.build();
  base.fs().set_latency_model(std::make_shared<vfs::NfsModel>());
  PoolConfig config;
  config.shards = 4;
  config.threads = 4;
  SessionPool pool(std::move(base), config);
  ASSERT_TRUE(pool.memoization_enabled());
  ASSERT_TRUE(pool.repricing_active());
  std::vector<std::vector<std::future<loader::LoadReport>>> futures(kClients);
  for (std::size_t s = 0; s < kSteps; ++s) {
    for (std::size_t c = 0; c < kClients; ++c) {
      futures[c].push_back(
          pool.submit_load(static_cast<ClientId>(c + 1), scripts[c][s]));
    }
  }

  Session reference = twin_a.build();
  reference.fs().set_latency_model(std::make_shared<vfs::NfsModel>());
  reference.seal();  // mirror the pool's ctor seal
  for (std::size_t c = 0; c < kClients; ++c) {
    Session session = reference.fork_sealed();
    for (std::size_t s = 0; s < kSteps; ++s) {
      const loader::LoadReport got = futures[c][s].get();
      const loader::LoadReport want = session.load(scripts[c][s]);
      EXPECT_EQ(digest_sans_time(got), digest_sans_time(want))
          << "client " << c << " step " << s << " exe " << scripts[c][s];
      EXPECT_NEAR(got.stats.sim_time_s, want.stats.sim_time_s, 1e-9)
          << "client " << c << " step " << s << " exe " << scripts[c][s];
    }
  }

  pool.drain();  // counters update after promises are fulfilled
  const PoolStats stats = pool.stats();
  EXPECT_EQ(stats.executed, kClients * kSteps);
  EXPECT_EQ(stats.worker_errors, 0u);
  // 32 loads over 4 distinct closures: the memo carried most of them.
  // (>= kApps misses, not ==: two strands may race the same cold key.)
  EXPECT_GT(stats.memo_hits, 0u);
  EXPECT_GE(stats.memo_misses, kApps);
  EXPECT_EQ(stats.forks_locked, 0u);  // every admission was the sealed stamp
}

// ------------------------------------------------------- admission safety

// Regression: enqueue incremented pending_ before scheduling the drain
// task; when the worker-pool submit threw (pool shutting down), the
// counter was never given back, drain() blocked forever, and the shard's
// `draining` flag stayed set — wedging the strand for every later submit.
// The fault hook forces exactly that failure.
TEST(SessionPool, FailedDrainSchedulingDoesNotLeakPendingOrWedgeTheShard) {
  std::atomic<int> faults{1};
  PoolConfig config;
  config.drain_submit_fault = [&faults] {
    if (faults.fetch_sub(1) > 0) {
      throw std::runtime_error("worker pool rejected the drain task");
    }
  };
  SessionPool pool(make_world(), config);
  const std::string exe = "/apps/a0/bin/app";

  // The submit surfaces the failure instead of returning a future that
  // can never complete.
  EXPECT_THROW(pool.submit_load(1, exe), std::runtime_error);

  // Before the fix this hung forever on the leaked pending_ count.
  pool.drain();

  // And the shard is not wedged: the next submit schedules a fresh drain
  // task and completes normally.
  EXPECT_TRUE(pool.submit_load(1, exe).get().success);
  pool.drain();
  const PoolStats stats = pool.stats();
  EXPECT_EQ(stats.executed, 1u);
  EXPECT_EQ(stats.rejected, 1u);  // the failed admission was counted
}

}  // namespace
}  // namespace depchaos::svc
