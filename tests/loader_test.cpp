#include <gtest/gtest.h>

#include "depchaos/elf/patcher.hpp"
#include "depchaos/loader/loader.hpp"
#include "depchaos/vfs/vfs.hpp"

namespace depchaos::loader {
namespace {

using elf::install_object;
using elf::make_executable;
using elf::make_library;

class LoaderTest : public ::testing::Test {
 protected:
  vfs::FileSystem fs_;

  Loader glibc(SearchConfig config = {}) {
    return Loader(fs_, std::move(config), Dialect::Glibc);
  }
  Loader musl(SearchConfig config = {}) {
    return Loader(fs_, std::move(config), Dialect::Musl);
  }
};

// ----------------------------------------------------------- fundamentals

TEST_F(LoaderTest, LoadsExecutableWithNoDeps) {
  install_object(fs_, "/bin/app", make_executable({}));
  auto loader = glibc();
  const auto report = loader.load("/bin/app");
  EXPECT_TRUE(report.success);
  ASSERT_EQ(report.load_order.size(), 1u);
  EXPECT_EQ(report.load_order[0].how, HowFound::Root);
}

TEST_F(LoaderTest, MissingExecutableThrows) {
  auto loader = glibc();
  EXPECT_THROW(loader.load("/bin/nope"), FsError);
}

TEST_F(LoaderTest, NonSelfExecutableThrows) {
  fs_.write_file("/bin/script", std::string("#!/bin/sh\n"));
  auto loader = glibc();
  EXPECT_THROW(loader.load("/bin/script"), ElfError);
}

TEST_F(LoaderTest, FindsLibInRunpath) {
  install_object(fs_, "/app/lib/libx.so", make_library("libx.so"));
  install_object(fs_, "/app/bin/app",
                 make_executable({"libx.so"}, {"/app/lib"}));
  auto loader = glibc();
  const auto report = loader.load("/app/bin/app");
  ASSERT_TRUE(report.success);
  ASSERT_EQ(report.load_order.size(), 2u);
  EXPECT_EQ(report.load_order[1].how, HowFound::Runpath);
  EXPECT_EQ(report.load_order[1].path, "/app/lib/libx.so");
}

TEST_F(LoaderTest, MissingDependencyReportsFailure) {
  install_object(fs_, "/bin/app", make_executable({"libmissing.so"}));
  auto loader = glibc();
  const auto report = loader.load("/bin/app");
  EXPECT_FALSE(report.success);
  ASSERT_EQ(report.missing.size(), 1u);
  EXPECT_EQ(report.missing[0].name, "libmissing.so");
  EXPECT_EQ(report.missing[0].how, HowFound::NotFound);
}

TEST_F(LoaderTest, AbsoluteNeededPathLoadsDirectly) {
  install_object(fs_, "/exact/libx.so", make_library("libx.so"));
  install_object(fs_, "/bin/app", make_executable({"/exact/libx.so"}));
  auto loader = glibc();
  const auto report = loader.load("/bin/app");
  ASSERT_TRUE(report.success);
  EXPECT_EQ(report.load_order[1].how, HowFound::AbsolutePath);
}

TEST_F(LoaderTest, BfsLoadOrder) {
  // app -> (a, b); a -> c. BFS: app, a, b, c.
  install_object(fs_, "/l/libc1.so", make_library("libc1.so"));
  install_object(fs_, "/l/liba.so",
                 make_library("liba.so", {"libc1.so"}, {"/l"}));
  install_object(fs_, "/l/libb.so", make_library("libb.so"));
  install_object(fs_, "/bin/app",
                 make_executable({"liba.so", "libb.so"}, {"/l"}));
  auto loader = glibc();
  const auto report = loader.load("/bin/app");
  ASSERT_TRUE(report.success);
  ASSERT_EQ(report.load_order.size(), 4u);
  EXPECT_EQ(report.load_order[1].name, "liba.so");
  EXPECT_EQ(report.load_order[2].name, "libb.so");
  EXPECT_EQ(report.load_order[3].name, "libc1.so");
  EXPECT_EQ(report.load_order[3].depth, 2);
}

// --------------------------------------------------------------- Table I

TEST_F(LoaderTest, TableI_RpathBeforeLdLibraryPath) {
  install_object(fs_, "/rp/libx.so", make_library("libx.so"));
  install_object(fs_, "/env/libx.so", make_library("libx.so"));
  install_object(fs_, "/bin/app",
                 make_executable({"libx.so"}, {}, {"/rp"}));
  auto loader = glibc();
  const auto report =
      loader.load("/bin/app", Environment::with_library_path({"/env"}));
  EXPECT_EQ(report.load_order[1].path, "/rp/libx.so");
  EXPECT_EQ(report.load_order[1].how, HowFound::Rpath);
}

TEST_F(LoaderTest, TableI_LdLibraryPathBeforeRunpath) {
  install_object(fs_, "/rp/libx.so", make_library("libx.so"));
  install_object(fs_, "/env/libx.so", make_library("libx.so"));
  install_object(fs_, "/bin/app", make_executable({"libx.so"}, {"/rp"}));
  auto loader = glibc();
  const auto report =
      loader.load("/bin/app", Environment::with_library_path({"/env"}));
  EXPECT_EQ(report.load_order[1].path, "/env/libx.so");
  EXPECT_EQ(report.load_order[1].how, HowFound::LdLibraryPath);
}

TEST_F(LoaderTest, TableI_RpathPropagatesToDependencies) {
  // liby.so is needed by libx.so; only the EXECUTABLE's RPATH names its dir.
  install_object(fs_, "/deep/liby.so", make_library("liby.so"));
  install_object(fs_, "/l/libx.so", make_library("libx.so", {"liby.so"}));
  install_object(fs_, "/bin/app",
                 make_executable({"libx.so"}, {}, {"/l", "/deep"}));
  auto loader = glibc();
  const auto report = loader.load("/bin/app");
  ASSERT_TRUE(report.success);
  const auto* y = report.find_loaded("liby.so");
  ASSERT_NE(y, nullptr);
  EXPECT_EQ(y->how, HowFound::RpathAncestor);
}

TEST_F(LoaderTest, TableI_RunpathDoesNotPropagate) {
  install_object(fs_, "/deep/liby.so", make_library("liby.so"));
  install_object(fs_, "/l/libx.so", make_library("libx.so", {"liby.so"}));
  install_object(fs_, "/bin/app",
                 make_executable({"libx.so"}, {"/l", "/deep"}));  // RUNPATH
  auto loader = glibc();
  const auto report = loader.load("/bin/app");
  EXPECT_FALSE(report.success);
  ASSERT_EQ(report.missing.size(), 1u);
  EXPECT_EQ(report.missing[0].name, "liby.so");
}

TEST_F(LoaderTest, RunpathOnRequesterDisablesItsRpathChain) {
  // The ROCm mechanism in miniature: the requesting library carries a
  // RUNPATH, so the executable's RPATH no longer applies to its lookups.
  install_object(fs_, "/good/liby.so", make_library("liby.so"));
  install_object(fs_, "/other/libz.so", make_library("libz.so"));
  elf::Object libx = make_library("libx.so", {"liby.so"});
  libx.dyn.runpath = {"/other"};  // present but useless for liby
  install_object(fs_, "/l/libx.so", libx);
  install_object(fs_, "/bin/app",
                 make_executable({"libx.so"}, {}, {"/l", "/good"}));
  auto loader = glibc();
  const auto report = loader.load("/bin/app");
  EXPECT_FALSE(report.success);  // liby not findable: RPATH chain disabled
}

TEST_F(LoaderTest, AncestorWithRunpathContributesNoRpath) {
  // Chain: app(RUNPATH) -> libmid(RPATH /deep) -> liby. libmid's own RPATH
  // applies (it has no RUNPATH); the app's RPATH would be ignored anyway.
  install_object(fs_, "/deep/liby.so", make_library("liby.so"));
  install_object(fs_, "/l/libmid.so",
                 make_library("libmid.so", {"liby.so"}, {}, {"/deep"}));
  install_object(fs_, "/bin/app", make_executable({"libmid.so"}, {"/l"}));
  auto loader = glibc();
  const auto report = loader.load("/bin/app");
  ASSERT_TRUE(report.success);
  EXPECT_EQ(report.find_loaded("liby.so")->how, HowFound::Rpath);
}

// ------------------------------------------------------------ dedup rules

TEST_F(LoaderTest, GlibcDedupsBySonameAcrossAbsoluteAndBare) {
  // Fig 5: exe needs /abs path; a transitive object requests the bare
  // soname; glibc satisfies it from the cache.
  install_object(fs_, "/store/libac.so", make_library("libac.so"));
  install_object(fs_, "/store/libxyz.so",
                 make_library("libxyz.so", {"libac.so"}));
  install_object(fs_, "/bin/app",
                 make_executable({"/store/libac.so", "/store/libxyz.so"}));
  auto loader = glibc();
  const auto report = loader.load("/bin/app");
  ASSERT_TRUE(report.success);
  EXPECT_EQ(report.load_order.size(), 3u);  // no duplicate libac
  const auto& last_request = report.requests.back();
  EXPECT_EQ(last_request.name, "libac.so");
  EXPECT_EQ(last_request.how, HowFound::Cache);
}

TEST_F(LoaderTest, MuslDoesNotDedupBySoname) {
  // Same layout as above but under musl: the bare-soname request is NOT
  // satisfied from cache; the search fails (store dir is not searched).
  install_object(fs_, "/store/libac.so", make_library("libac.so"));
  install_object(fs_, "/store/libxyz.so",
                 make_library("libxyz.so", {"libac.so"}));
  install_object(fs_, "/bin/app",
                 make_executable({"/store/libac.so", "/store/libxyz.so"}));
  auto loader = musl();
  const auto report = loader.load("/bin/app");
  EXPECT_FALSE(report.success);
  ASSERT_EQ(report.missing.size(), 1u);
  EXPECT_EQ(report.missing[0].name, "libac.so");
}

TEST_F(LoaderTest, MuslDedupsByInodeWhenSearchFindsSameFile) {
  install_object(fs_, "/l/libac.so", make_library("libac.so"));
  install_object(fs_, "/l/libxyz.so",
                 make_library("libxyz.so", {"libac.so"}, {}, {"/l"}));
  install_object(fs_, "/bin/app",
                 make_executable({"/l/libac.so", "libxyz.so"}, {}, {"/l"}));
  auto loader = musl();
  const auto report = loader.load("/bin/app");
  ASSERT_TRUE(report.success);
  EXPECT_EQ(report.load_order.size(), 3u);  // libac loaded once (inode dedup)
  EXPECT_EQ(report.requests.back().how, HowFound::Cache);
}

TEST_F(LoaderTest, SymlinkAliasesDedupByRealpath) {
  install_object(fs_, "/real/libx.so.1.2", make_library("libx.so"));
  fs_.symlink("/real/libx.so.1.2", "/real/libx.so");
  install_object(fs_, "/bin/app",
                 make_executable({"/real/libx.so", "/real/libx.so.1.2"}));
  auto loader = glibc();
  const auto report = loader.load("/bin/app");
  ASSERT_TRUE(report.success);
  EXPECT_EQ(report.load_order.size(), 2u);
}

TEST_F(LoaderTest, SameNameRequestedTwiceLoadsOnce) {
  install_object(fs_, "/l/libx.so", make_library("libx.so"));
  install_object(fs_, "/l/liba.so", make_library("liba.so", {"libx.so"}, {"/l"}));
  install_object(fs_, "/l/libb.so", make_library("libb.so", {"libx.so"}, {"/l"}));
  install_object(fs_, "/bin/app",
                 make_executable({"liba.so", "libb.so", "libx.so"}, {"/l"}));
  auto loader = glibc();
  const auto report = loader.load("/bin/app");
  ASSERT_TRUE(report.success);
  EXPECT_EQ(report.load_order.size(), 4u);
  int cache_hits = 0;
  for (const auto& request : report.requests) {
    if (request.how == HowFound::Cache) ++cache_hits;
  }
  EXPECT_EQ(cache_hits, 2);
}

// -------------------------------------------------- musl melded search

TEST_F(LoaderTest, MuslSearchesLdLibraryPathBeforeRpath) {
  install_object(fs_, "/rp/libx.so", make_library("libx.so"));
  install_object(fs_, "/env/libx.so", make_library("libx.so"));
  install_object(fs_, "/bin/app", make_executable({"libx.so"}, {}, {"/rp"}));
  auto loader = musl();
  const auto report =
      loader.load("/bin/app", Environment::with_library_path({"/env"}));
  EXPECT_EQ(report.load_order[1].path, "/env/libx.so");
}

TEST_F(LoaderTest, MuslRunpathPropagates) {
  // Would fail under glibc (RUNPATH doesn't propagate); musl's meld works.
  install_object(fs_, "/deep/liby.so", make_library("liby.so"));
  install_object(fs_, "/l/libx.so", make_library("libx.so", {"liby.so"}));
  install_object(fs_, "/bin/app",
                 make_executable({"libx.so"}, {"/l", "/deep"}));
  auto loader = musl();
  const auto report = loader.load("/bin/app");
  EXPECT_TRUE(report.success);
}

// ----------------------------------------------- $ORIGIN, hwcaps, arch

TEST_F(LoaderTest, OriginExpansionInRunpath) {
  install_object(fs_, "/apps/x/lib/libx.so", make_library("libx.so"));
  install_object(fs_, "/apps/x/bin/app",
                 make_executable({"libx.so"}, {"$ORIGIN/../lib"}));
  auto loader = glibc();
  const auto report = loader.load("/apps/x/bin/app");
  ASSERT_TRUE(report.success);
  EXPECT_EQ(report.load_order[1].path, "/apps/x/lib/libx.so");
}

TEST_F(LoaderTest, OriginBracedForm) {
  install_object(fs_, "/apps/x/lib/libx.so", make_library("libx.so"));
  install_object(fs_, "/apps/x/bin/app",
                 make_executable({"libx.so"}, {"${ORIGIN}/../lib"}));
  auto loader = glibc();
  EXPECT_TRUE(loader.load("/apps/x/bin/app").success);
}

TEST_F(LoaderTest, OriginExpandsRelativeToTheObjectThatSaysIt) {
  install_object(fs_, "/pkg/lib/liby.so", make_library("liby.so"));
  install_object(fs_, "/pkg/lib/libx.so",
                 make_library("libx.so", {"liby.so"}, {"$ORIGIN"}));
  install_object(fs_, "/bin/app",
                 make_executable({"libx.so"}, {"/pkg/lib"}));
  auto loader = glibc();
  const auto report = loader.load("/bin/app");
  ASSERT_TRUE(report.success);
  EXPECT_EQ(report.find_loaded("liby.so")->path, "/pkg/lib/liby.so");
}

TEST_F(LoaderTest, HwcapsSubdirPreferred) {
  install_object(fs_, "/l/libx.so", make_library("libx.so"));
  install_object(fs_, "/l/glibc-hwcaps/x86-64-v3/libx.so",
                 make_library("libx.so"));
  SearchConfig config;
  config.hwcaps = {"glibc-hwcaps/x86-64-v3"};
  install_object(fs_, "/bin/app", make_executable({"libx.so"}, {"/l"}));
  auto loader = glibc(config);
  const auto report = loader.load("/bin/app");
  ASSERT_TRUE(report.success);
  EXPECT_EQ(report.load_order[1].path, "/l/glibc-hwcaps/x86-64-v3/libx.so");
}

TEST_F(LoaderTest, MuslIgnoresHwcaps) {
  install_object(fs_, "/l/libx.so", make_library("libx.so"));
  install_object(fs_, "/l/glibc-hwcaps/x86-64-v3/libx.so",
                 make_library("libx.so"));
  SearchConfig config;
  config.hwcaps = {"glibc-hwcaps/x86-64-v3"};
  install_object(fs_, "/bin/app", make_executable({"libx.so"}, {}, {"/l"}));
  auto loader = musl(config);
  const auto report = loader.load("/bin/app");
  ASSERT_TRUE(report.success);
  EXPECT_EQ(report.load_order[1].path, "/l/libx.so");
}

TEST_F(LoaderTest, WrongArchitectureSilentlySkipped) {
  // A 32-bit libx.so earlier in the search path must be skipped and the
  // x86_64 one found in a later directory (§IV).
  elf::Object lib32 = make_library("libx.so");
  lib32.machine = elf::Machine::X86;
  install_object(fs_, "/lib32/libx.so", lib32);
  install_object(fs_, "/lib64dir/libx.so", make_library("libx.so"));
  install_object(fs_, "/bin/app",
                 make_executable({"libx.so"}, {"/lib32", "/lib64dir"}));
  auto loader = glibc();
  const auto report = loader.load("/bin/app");
  ASSERT_TRUE(report.success);
  EXPECT_EQ(report.load_order[1].path, "/lib64dir/libx.so");
}

TEST_F(LoaderTest, NonElfFileInSearchPathSkipped) {
  fs_.write_file("/l1/libx.so", std::string("not an object"));
  install_object(fs_, "/l2/libx.so", make_library("libx.so"));
  install_object(fs_, "/bin/app", make_executable({"libx.so"}, {"/l1", "/l2"}));
  auto loader = glibc();
  const auto report = loader.load("/bin/app");
  ASSERT_TRUE(report.success);
  EXPECT_EQ(report.load_order[1].path, "/l2/libx.so");
}

// -------------------------------------------- system paths & ld.so.cache

TEST_F(LoaderTest, DefaultPathFallback) {
  install_object(fs_, "/usr/lib/libsys.so", make_library("libsys.so"));
  install_object(fs_, "/bin/app", make_executable({"libsys.so"}));
  auto loader = glibc();
  const auto report = loader.load("/bin/app");
  ASSERT_TRUE(report.success);
  EXPECT_EQ(report.load_order[1].how, HowFound::DefaultPath);
}

TEST_F(LoaderTest, LdSoConfBeforeDefaults) {
  install_object(fs_, "/opt/conf/libsys.so", make_library("libsys.so"));
  install_object(fs_, "/usr/lib/libsys.so", make_library("libsys.so"));
  SearchConfig config;
  config.ld_so_conf = {"/opt/conf"};
  install_object(fs_, "/bin/app", make_executable({"libsys.so"}));
  auto loader = glibc(config);
  const auto report = loader.load("/bin/app");
  EXPECT_EQ(report.load_order[1].how, HowFound::LdSoConf);
  EXPECT_EQ(report.load_order[1].path, "/opt/conf/libsys.so");
}

TEST_F(LoaderTest, LdCacheCostsOneOpenPerHit) {
  install_object(fs_, "/usr/lib/libsys.so", make_library("libsys.so"));
  install_object(fs_, "/bin/app", make_executable({"libsys.so"}));
  auto loader = glibc();
  const auto report = loader.load("/bin/app");
  // exe open + lib open: the cache lookup itself is free.
  EXPECT_EQ(report.stats.open_calls, 2u);
}

TEST_F(LoaderTest, NoCacheModeProbesDirectories) {
  install_object(fs_, "/usr/lib/libsys.so", make_library("libsys.so"));
  install_object(fs_, "/bin/app", make_executable({"libsys.so"}));
  SearchConfig config;
  config.use_ld_cache = false;
  auto loader = glibc(config);
  const auto report = loader.load("/bin/app");
  ASSERT_TRUE(report.success);
  // defaults: /lib64, /usr/lib64, /lib fail before /usr/lib hits; + exe.
  EXPECT_GT(report.stats.open_calls, 2u);
}

TEST_F(LoaderTest, StaleCacheInvalidatedExplicitly) {
  install_object(fs_, "/usr/lib/libsys.so", make_library("libsys.so"));
  install_object(fs_, "/bin/app", make_executable({"libsys.so"}));
  auto loader = glibc();
  ASSERT_TRUE(loader.load("/bin/app").success);
  elf::Patcher patcher(fs_);
  patcher.set_needed("/bin/app", {"libnew.so"});
  install_object(fs_, "/usr/lib/libnew.so", make_library("libnew.so"));
  loader.invalidate();
  const auto report = loader.load("/bin/app");
  ASSERT_TRUE(report.success);
  EXPECT_EQ(report.load_order[1].name, "libnew.so");
}

// --------------------------------------------------------------- preload

TEST_F(LoaderTest, PreloadLoadsBeforeNeeded) {
  install_object(fs_, "/usr/lib/libtool.so", make_library("libtool.so"));
  install_object(fs_, "/l/libx.so", make_library("libx.so"));
  install_object(fs_, "/bin/app", make_executable({"libx.so"}, {"/l"}));
  Environment env;
  env.ld_preload = {"libtool.so"};
  auto loader = glibc();
  const auto report = loader.load("/bin/app", env);
  ASSERT_TRUE(report.success);
  ASSERT_GE(report.load_order.size(), 3u);
  EXPECT_EQ(report.load_order[1].name, "libtool.so");
  EXPECT_EQ(report.load_order[1].how, HowFound::Preload);
}

TEST_F(LoaderTest, PreloadByAbsolutePath) {
  install_object(fs_, "/tools/libpmpi.so", make_library("libpmpi.so"));
  install_object(fs_, "/bin/app", make_executable({}));
  Environment env;
  env.ld_preload = {"/tools/libpmpi.so"};
  auto loader = glibc();
  const auto report = loader.load("/bin/app", env);
  ASSERT_TRUE(report.success);
  EXPECT_EQ(report.load_order[1].path, "/tools/libpmpi.so");
}

TEST_F(LoaderTest, MissingPreloadWarnsButContinues) {
  install_object(fs_, "/bin/app", make_executable({}));
  Environment env;
  env.ld_preload = {"libgone.so"};
  auto loader = glibc();
  const auto report = loader.load("/bin/app", env);
  EXPECT_TRUE(report.success);  // glibc behaviour: warn, keep going
  EXPECT_EQ(report.load_order.size(), 1u);
}

TEST_F(LoaderTest, PreloadDependenciesAreLoaded) {
  install_object(fs_, "/usr/lib/libdep.so", make_library("libdep.so"));
  install_object(fs_, "/usr/lib/libtool.so",
                 make_library("libtool.so", {"libdep.so"}));
  install_object(fs_, "/bin/app", make_executable({}));
  Environment env;
  env.ld_preload = {"libtool.so"};
  auto loader = glibc();
  const auto report = loader.load("/bin/app", env);
  ASSERT_TRUE(report.success);
  EXPECT_NE(report.find_loaded("libdep.so"), nullptr);
}

// ---------------------------------------------------------------- dlopen

TEST_F(LoaderTest, DlopenUsesCallerRunpath) {
  install_object(fs_, "/qt/plugins/libplug.so", make_library("libplug.so"));
  install_object(fs_, "/qt/lib/libgui.so",
                 make_library("libgui.so", {}, {"/qt/plugins"}));
  install_object(fs_, "/bin/app", make_executable({"libgui.so"}, {"/qt/lib"}));
  auto loader = glibc();
  auto report = loader.load("/bin/app");
  ASSERT_TRUE(report.success);
  const auto plug = loader.dlopen(report, "/qt/lib/libgui.so", "libplug.so");
  EXPECT_EQ(plug.how, HowFound::Runpath);
}

TEST_F(LoaderTest, DlopenSeesExecutableRpathViaAncestry) {
  install_object(fs_, "/qt/plugins/libplug.so", make_library("libplug.so"));
  install_object(fs_, "/qt/lib/libgui.so", make_library("libgui.so"));
  install_object(fs_, "/bin/app", make_executable({"libgui.so"}, {},
                                                  {"/qt/lib", "/qt/plugins"}));
  auto loader = glibc();
  auto report = loader.load("/bin/app");
  ASSERT_TRUE(report.success);
  const auto plug = loader.dlopen(report, "/qt/lib/libgui.so", "libplug.so");
  EXPECT_EQ(plug.how, HowFound::RpathAncestor);
}

TEST_F(LoaderTest, DlopenDoesNotSeeExecutableRunpath) {
  // The Qt plugin trap (§III-A): the app's RUNPATH does NOT reach a dlopen
  // issued inside libgui.
  install_object(fs_, "/qt/plugins/libplug.so", make_library("libplug.so"));
  install_object(fs_, "/qt/lib/libgui.so", make_library("libgui.so"));
  install_object(fs_, "/bin/app",
                 make_executable({"libgui.so"}, {"/qt/lib", "/qt/plugins"}));
  auto loader = glibc();
  auto report = loader.load("/bin/app");
  ASSERT_TRUE(report.success);
  const auto plug = loader.dlopen(report, "/qt/lib/libgui.so", "libplug.so");
  EXPECT_EQ(plug.how, HowFound::NotFound);
}

TEST_F(LoaderTest, DlopenAbsolutePath) {
  install_object(fs_, "/p/libplug.so", make_library("libplug.so"));
  install_object(fs_, "/bin/app", make_executable({}));
  auto loader = glibc();
  auto report = loader.load("/bin/app");
  const auto plug = loader.dlopen(report, "/bin/app", "/p/libplug.so");
  EXPECT_EQ(plug.how, HowFound::AbsolutePath);
  EXPECT_NE(report.find_loaded("/p/libplug.so"), nullptr);
}

TEST_F(LoaderTest, DlopenLoadsTransitiveDeps) {
  install_object(fs_, "/usr/lib/libleaf.so", make_library("libleaf.so"));
  install_object(fs_, "/p/libplug.so", make_library("libplug.so", {"libleaf.so"}));
  install_object(fs_, "/bin/app", make_executable({}));
  auto loader = glibc();
  auto report = loader.load("/bin/app");
  (void)loader.dlopen(report, "/bin/app", "/p/libplug.so");
  EXPECT_NE(report.find_loaded("libleaf.so"), nullptr);
}

TEST_F(LoaderTest, DlopenUnknownCallerThrows) {
  install_object(fs_, "/bin/app", make_executable({}));
  auto loader = glibc();
  auto report = loader.load("/bin/app");
  EXPECT_THROW(loader.dlopen(report, "/not/loaded.so", "libx.so"), Error);
}

// --------------------------------------------------- request trace detail

TEST_F(LoaderTest, RequestsIncludeCacheHitsInOrder) {
  install_object(fs_, "/l/libshared.so", make_library("libshared.so"));
  install_object(fs_, "/l/liba.so",
                 make_library("liba.so", {"libshared.so"}, {"/l"}));
  install_object(fs_, "/bin/app",
                 make_executable({"liba.so", "libshared.so"}, {"/l"}));
  auto loader = glibc();
  const auto report = loader.load("/bin/app");
  ASSERT_EQ(report.requests.size(), 3u);
  EXPECT_EQ(report.requests[0].name, "liba.so");
  EXPECT_EQ(report.requests[1].name, "libshared.so");
  EXPECT_NE(report.requests[1].how, HowFound::Cache);
  EXPECT_EQ(report.requests[2].name, "libshared.so");
  EXPECT_EQ(report.requests[2].how, HowFound::Cache);
}

TEST_F(LoaderTest, ClassifyCacheHitsDoesNotPerturbStats) {
  install_object(fs_, "/l/libshared.so", make_library("libshared.so"));
  install_object(fs_, "/l/liba.so",
                 make_library("liba.so", {"libshared.so"}, {"/l"}));
  install_object(fs_, "/bin/app",
                 make_executable({"liba.so", "libshared.so"}, {"/l"}));

  auto plain = glibc();
  const auto baseline = plain.load("/bin/app");

  SearchConfig config;
  config.classify_cache_hits = true;
  auto classifying = glibc(config);
  const auto classified = classifying.load("/bin/app");

  EXPECT_EQ(baseline.stats.metadata_calls(), classified.stats.metadata_calls());
  EXPECT_EQ(classified.requests[2].cache_search_how, HowFound::Runpath);
}

TEST_F(LoaderTest, StatsAreDeltaPerLoad) {
  install_object(fs_, "/l/libx.so", make_library("libx.so"));
  install_object(fs_, "/bin/app", make_executable({"libx.so"}, {"/l"}));
  auto loader = glibc();
  const auto first = loader.load("/bin/app");
  const auto second = loader.load("/bin/app");
  EXPECT_EQ(first.stats.open_calls, second.stats.open_calls);
}

// ------------------------------------------------- search-cost arithmetic

TEST_F(LoaderTest, SearchCostGrowsWithDirectoryPosition) {
  // lib in the 5th of 5 runpath dirs: 4 failed probes + 1 hit + exe open.
  for (int d = 0; d < 4; ++d) {
    fs_.mkdir_p("/dirs/d" + std::to_string(d));
  }
  install_object(fs_, "/dirs/d4/libx.so", make_library("libx.so"));
  std::vector<std::string> dirs;
  for (int d = 0; d < 5; ++d) dirs.push_back("/dirs/d" + std::to_string(d));
  install_object(fs_, "/bin/app", make_executable({"libx.so"}, dirs));
  auto loader = glibc();
  const auto report = loader.load("/bin/app");
  ASSERT_TRUE(report.success);
  EXPECT_EQ(report.stats.open_calls, 1u + 5u);
  EXPECT_EQ(report.stats.failed_probes, 4u);
}

}  // namespace
}  // namespace depchaos::loader
