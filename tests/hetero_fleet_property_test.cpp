// Fingerprint-clustered heterogeneous fleet measurement, end to end.
//
// Two layers under test:
//  * vfs::FileSystem::overlay_fingerprint / overlay_delta_equal — the
//    equivalence-class key. Sibling forks with byte-identical deltas must
//    hash equal; ANY structural divergence (content, names, env is keyed
//    separately) must split them; the memo must refresh across mutation,
//    fork, and collapse (the delta-defining boundaries).
//  * launch::simulate_fleet_launch clustering — measuring ONE
//    representative per (fingerprint, environment) class and replicating
//    per-class results must be byte-identical to the legacy per-rank loop
//    (FleetConfig::cluster_ranks = false) on every counter, split, fleet
//    total, and modelled time, for randomized shuffled class layouts.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <string>
#include <vector>

#include "depchaos/core/world.hpp"
#include "depchaos/launch/launch.hpp"
#include "depchaos/support/rng.hpp"
#include "depchaos/vfs/vfs.hpp"
#include "depchaos/workload/pynamic.hpp"
#include "depchaos/workload/scenarios.hpp"

namespace depchaos {
namespace {

// ------------------------------------------------------- fingerprint layer

vfs::FileSystem seed_world() {
  vfs::FileSystem fs;
  fs.mkdir_p("/opt/lib");
  fs.write_file("/opt/lib/libbase.so", std::string("base-bytes"));
  fs.write_file("/etc/ld.so.conf", std::string("/opt/lib"));
  return fs;
}

TEST(OverlayFingerprint, SiblingForksWithIdenticalDeltasHashEqual) {
  vfs::FileSystem parent = seed_world();
  vfs::FileSystem a = parent.fork();
  vfs::FileSystem b = parent.fork();
  for (vfs::FileSystem* fs : {&a, &b}) {
    fs->mkdir_p("/work/out");
    fs->write_file("/work/out/result.so", std::string("same-delta"));
    fs->symlink("/work/out/result.so", "/work/latest");
  }
  EXPECT_EQ(a.overlay_fingerprint(), b.overlay_fingerprint());
  EXPECT_TRUE(a.overlay_delta_equal(b));
  EXPECT_TRUE(b.overlay_delta_equal(a));
}

TEST(OverlayFingerprint, ContentDivergenceSplitsTheClass) {
  vfs::FileSystem parent = seed_world();
  vfs::FileSystem a = parent.fork();
  vfs::FileSystem b = parent.fork();
  a.write_file("/work/result.so", std::string("alpha"));
  b.write_file("/work/result.so", std::string("bravo"));
  EXPECT_NE(a.overlay_fingerprint(), b.overlay_fingerprint());
  EXPECT_FALSE(a.overlay_delta_equal(b));
}

TEST(OverlayFingerprint, NameDivergenceSplitsTheClass) {
  vfs::FileSystem parent = seed_world();
  vfs::FileSystem a = parent.fork();
  vfs::FileSystem b = parent.fork();
  a.write_file("/work/one.so", std::string("payload"));
  b.write_file("/work/two.so", std::string("payload"));
  EXPECT_NE(a.overlay_fingerprint(), b.overlay_fingerprint());
  EXPECT_FALSE(a.overlay_delta_equal(b));
}

TEST(OverlayFingerprint, MemoRefreshesAcrossMutationForkAndCollapse) {
  vfs::FileSystem fs = seed_world();
  const std::string empty_delta = fs.overlay_fingerprint();

  // Structural mutation must show up even though the value was memoized.
  fs.write_file("/opt/lib/libnew.so", std::string("new"));
  const std::string after_write = fs.overlay_fingerprint();
  EXPECT_NE(after_write, empty_delta);

  // fork() freezes the parent's overlay: the delta boundary moved, so the
  // parent's (now empty) delta must not reuse the pre-fork hash.
  vfs::FileSystem child = fs.fork();
  const std::string after_fork = fs.overlay_fingerprint();
  EXPECT_NE(after_fork, after_write);
  // A pristine child shares the parent's base and an empty delta.
  EXPECT_EQ(child.overlay_fingerprint(), after_fork);
  EXPECT_TRUE(child.overlay_delta_equal(fs));

  // collapse() makes the whole world the delta; the memo must refresh even
  // though observable content is unchanged.
  child.collapse();
  EXPECT_NE(child.overlay_fingerprint(), after_fork);
  // A hash miss can only SPLIT a class (extra measurement), never merge
  // one: content-equal views are still structurally distinguishable.
  EXPECT_FALSE(child.overlay_delta_equal(fs));
}

TEST(OverlayFingerprint, RepeatedReadsAreStable) {
  vfs::FileSystem fs = seed_world();
  fs.write_file("/work/x", std::string("x"));
  const std::string first = fs.overlay_fingerprint();
  EXPECT_EQ(fs.overlay_fingerprint(), first);
  // Pure reads must not disturb the memo.
  (void)fs.peek("/work/x");
  EXPECT_EQ(fs.overlay_fingerprint(), first);
}

// ----------------------------------------------- clustered fleet property

workload::PynamicConfig small_pynamic() {
  workload::PynamicConfig config;
  config.num_modules = 48;
  config.exe_extra_bytes = 1u << 20;
  return config;
}

/// Mixed fleet with the class layout SHUFFLED along the rank axis: rank r
/// runs program class perm[r] % classes, so representatives are discovered
/// in arbitrary order and replication must land back on the right ranks.
TEST(HeteroFleetProperty, ClusteredEqualsPerRankByteForByte) {
  for (const std::uint64_t seed : {3ull, 77ull, 4096ull}) {
    core::WorldBuilder builder;
    auto session = builder.pynamic(small_pynamic()).nfs().build();
    core::SandboxSpec spec;
    spec.image = std::make_shared<vfs::FileSystem>(session.fs());
    spec.image_mount = "/";
    spec.writable_image_overlay = true;

    support::Rng rng(seed);
    const int nprocs = 12;
    const int classes = 1 + static_cast<int>(rng.below(4));  // 1..4
    std::vector<int> perm(static_cast<std::size_t>(nprocs));
    std::iota(perm.begin(), perm.end(), 0);
    for (std::size_t i = perm.size(); i > 1; --i) {
      std::swap(perm[i - 1], perm[rng.below(i)]);
    }

    const auto scenario =
        workload::make_container_launch_scenario(small_pynamic());
    const workload::PynamicApp& app = scenario.app;
    const auto setup = [&perm, &app, classes](core::Session& sandbox,
                                              int rank) {
      workload::apply_mpmd_rank(sandbox.fs(), sandbox.env(), app,
                                perm[static_cast<std::size_t>(rank)], classes);
    };

    launch::FleetConfig clustered;
    clustered.cluster = session.config().cluster;
    clustered.rank_setup = setup;
    launch::FleetConfig per_rank = clustered;
    per_rank.cluster_ranks = false;

    const auto fast = session.launch_fleet(spec, "", nprocs, clustered);
    const auto slow = session.launch_fleet(spec, "", nprocs, per_rank);

    // Class accounting: one loader replay per distinct class, sizes tile
    // the fleet, and the legacy path reports clustering disabled.
    const int distinct = std::min(classes, nprocs);
    EXPECT_EQ(fast.classes_measured, distinct) << "seed " << seed;
    EXPECT_EQ(fast.ranks_measured, distinct) << "seed " << seed;
    int covered = 0;
    for (const int size : fast.class_sizes) covered += size;
    EXPECT_EQ(covered, nprocs) << "seed " << seed;
    EXPECT_EQ(slow.ranks_measured, nprocs) << "seed " << seed;
    EXPECT_EQ(slow.classes_measured, 0) << "seed " << seed;

    // Byte identity: measuring one representative per class and
    // replicating must equal measuring every rank, on every field.
    EXPECT_EQ(fast.load_succeeded, slow.load_succeeded) << "seed " << seed;
    EXPECT_EQ(fast.meta_ops_per_rank, slow.meta_ops_per_rank)
        << "seed " << seed;
    EXPECT_EQ(fast.bytes_per_rank, slow.bytes_per_rank) << "seed " << seed;
    EXPECT_EQ(fast.shared_meta_ops_per_rank, slow.shared_meta_ops_per_rank)
        << "seed " << seed;
    EXPECT_EQ(fast.overlay_meta_ops_per_rank, slow.overlay_meta_ops_per_rank)
        << "seed " << seed;
    EXPECT_EQ(fast.shared_bytes_per_rank, slow.shared_bytes_per_rank)
        << "seed " << seed;
    EXPECT_EQ(fast.overlay_bytes_per_rank, slow.overlay_bytes_per_rank)
        << "seed " << seed;
    EXPECT_EQ(fast.fleet_meta_ops, slow.fleet_meta_ops) << "seed " << seed;
    EXPECT_EQ(fast.fleet_bytes, slow.fleet_bytes) << "seed " << seed;
    EXPECT_EQ(fast.fleet_shared_meta_ops, slow.fleet_shared_meta_ops)
        << "seed " << seed;
    EXPECT_EQ(fast.fleet_overlay_meta_ops, slow.fleet_overlay_meta_ops)
        << "seed " << seed;
    EXPECT_EQ(fast.data_time_s, slow.data_time_s) << "seed " << seed;
    EXPECT_EQ(fast.meta_time_s, slow.meta_time_s) << "seed " << seed;
    EXPECT_EQ(fast.total_time_s, slow.total_time_s) << "seed " << seed;
  }
}

TEST(HeteroFleetProperty, EnvironmentOnlyDivergenceStillSplitsClasses) {
  // Two ranks with byte-identical overlays but different loader
  // environments resolve differently — the class key must include the
  // environment, not just the filesystem fingerprint.
  core::WorldBuilder builder;
  auto session = builder.pynamic(small_pynamic()).nfs().build();
  core::SandboxSpec spec;
  spec.image = std::make_shared<vfs::FileSystem>(session.fs());
  spec.image_mount = "/";
  spec.writable_image_overlay = true;

  launch::FleetConfig fleet;
  fleet.cluster = session.config().cluster;
  fleet.rank_setup = [](core::Session& sandbox, int rank) {
    if (rank % 2 == 1) {
      sandbox.env().ld_library_path.insert(
          sandbox.env().ld_library_path.begin(), "/opt/extra/lib");
    }
  };
  const auto result = session.launch_fleet(spec, "", 6, fleet);
  ASSERT_TRUE(result.load_succeeded);
  EXPECT_EQ(result.classes_measured, 2);
  ASSERT_EQ(result.class_sizes.size(), 2u);
  EXPECT_EQ(result.class_sizes[0] + result.class_sizes[1], 6);
}

TEST(HeteroFleetProperty, MpmdClassLayoutIsDeterministic) {
  // Two identically-configured fleets measure identical class structure:
  // apply_mpmd_rank is a pure function of (app, rank, classes).
  core::WorldBuilder builder;
  auto session = builder.pynamic(small_pynamic()).nfs().build();
  core::SandboxSpec spec;
  spec.image = std::make_shared<vfs::FileSystem>(session.fs());
  spec.image_mount = "/";
  spec.writable_image_overlay = true;

  const auto scenario =
      workload::make_container_launch_scenario(small_pynamic());
  const workload::PynamicApp& app = scenario.app;
  launch::FleetConfig fleet;
  fleet.cluster = session.config().cluster;
  fleet.rank_setup = [&app](core::Session& sandbox, int rank) {
    workload::apply_mpmd_rank(sandbox.fs(), sandbox.env(), app, rank, 3);
  };
  const auto first = session.launch_fleet(spec, "", 9, fleet);
  const auto second = session.launch_fleet(spec, "", 9, fleet);
  ASSERT_TRUE(first.load_succeeded);
  EXPECT_EQ(first.classes_measured, 3);
  EXPECT_EQ(first.class_sizes, second.class_sizes);
  EXPECT_EQ(first.meta_ops_per_rank, second.meta_ops_per_rank);
  EXPECT_EQ(first.fleet_meta_ops, second.fleet_meta_ops);
  for (int c = 0; c < 3; ++c) {
    EXPECT_EQ(first.class_sizes[static_cast<std::size_t>(c)], 3);
    EXPECT_EQ(workload::mpmd_class_of(c + 6, 3), c);
  }
}

}  // namespace
}  // namespace depchaos
