// package.py DSL reparser edge cases: the syntax quirks real Spack recipes
// exercise (the "awkward" part of the reproduction).

#include <gtest/gtest.h>

#include "depchaos/spack/dsl.hpp"
#include "depchaos/support/error.hpp"

namespace depchaos::spack {
namespace {

TEST(DslEdge, SingleQuotedStrings) {
  const Recipe recipe = parse_package_py(
      "class P(Package):\n"
      "    version('1.0', sha256='abc')\n"
      "    depends_on('zlib@1.2:')\n");
  ASSERT_EQ(recipe.versions.size(), 1u);
  EXPECT_EQ(recipe.versions[0].sha256, "abc");
  EXPECT_EQ(recipe.dependencies[0].spec.name, "zlib");
}

TEST(DslEdge, EscapedQuotesInsideStrings) {
  const Recipe recipe = parse_package_py(
      "class P(Package):\n"
      "    version(\"1.0\")\n"
      "    variant(\"x\", default=False, description=\"says \\\"hi\\\"\")\n");
  EXPECT_EQ(recipe.variants[0].description, "says \"hi\"");
}

TEST(DslEdge, TrailingCommasAndWeirdWhitespace) {
  const Recipe recipe = parse_package_py(
      "class P(Package):\n"
      "    version(\n"
      "        \"2.1\"  ,\n"
      "        sha256 = \"fff\" ,\n"
      "    )\n");
  ASSERT_EQ(recipe.versions.size(), 1u);
  EXPECT_EQ(recipe.versions[0].version, "2.1");
  EXPECT_EQ(recipe.versions[0].sha256, "fff");
}

TEST(DslEdge, CommentsAfterCode) {
  const Recipe recipe = parse_package_py(
      "class P(Package):\n"
      "    version(\"1.0\")  # latest\n"
      "    # depends_on(\"ghost\")\n");
  EXPECT_EQ(recipe.versions.size(), 1u);
  EXPECT_TRUE(recipe.dependencies.empty());
}

TEST(DslEdge, TupleTypeArgumentSingleElement) {
  const Recipe recipe = parse_package_py(
      "class P(Package):\n"
      "    version(\"1.0\")\n"
      "    depends_on(\"cmake\", type=(\"build\",))\n");
  EXPECT_EQ(recipe.dependencies[0].types,
            std::vector<std::string>{"build"});
}

TEST(DslEdge, ListTypeArgument) {
  const Recipe recipe = parse_package_py(
      "class P(Package):\n"
      "    version(\"1.0\")\n"
      "    depends_on(\"py-setuptools\", type=[\"build\", \"run\"])\n");
  EXPECT_EQ(recipe.dependencies[0].types,
            (std::vector<std::string>{"build", "run"}));
}

TEST(DslEdge, WhenSpecWithVersionAndCompiler) {
  const Recipe recipe = parse_package_py(
      "class P(Package):\n"
      "    version(\"1.0\")\n"
      "    depends_on(\"cuda\", when=\"@1.0:%gcc@:11+gpu\")\n");
  const auto& when = recipe.dependencies[0].when;
  EXPECT_TRUE(recipe.dependencies[0].has_when);
  EXPECT_FALSE(when.version.is_any());
  EXPECT_EQ(when.compiler, "gcc");
  EXPECT_TRUE(when.variants.at("gpu"));
}

TEST(DslEdge, UnknownCallsAndKwargsTolerated) {
  const Recipe recipe = parse_package_py(
      "class P(Package):\n"
      "    maintainers(\"alice\", \"bob\")\n"
      "    license(\"MIT\")\n"
      "    version(\"1.0\", expand=False, url=\"http://x\")\n");
  EXPECT_EQ(recipe.versions.size(), 1u);
}

TEST(DslEdge, MultilineDocstringWithCodeLookalikes) {
  const Recipe recipe = parse_package_py(
      "class P(Package):\n"
      "    '''Docs.\n"
      "    version(\"9.9\")\n"
      "    depends_on(\"fake\")\n"
      "    '''\n"
      "    version(\"1.0\")\n");
  ASSERT_EQ(recipe.versions.size(), 1u);
  EXPECT_EQ(recipe.versions[0].version, "1.0");
}

TEST(DslEdge, UnderscoreClassNames) {
  EXPECT_EQ(class_to_package_name("_7zip"), "-7zip");
  EXPECT_EQ(class_to_package_name("RubyRake"), "ruby-rake");
}

TEST(DslEdge, UnterminatedStringThrows) {
  EXPECT_THROW(parse_package_py("class P(Package):\n    version(\"1.0)\n"),
               depchaos::Error);
}

TEST(DslEdge, ConflictsWithoutWhen) {
  const Recipe recipe = parse_package_py(
      "class P(Package):\n"
      "    version(\"1.0\")\n"
      "    conflicts(\"%intel\")\n");
  ASSERT_EQ(recipe.conflicts.size(), 1u);
  EXPECT_FALSE(recipe.conflicts[0].has_when);
  EXPECT_EQ(recipe.conflicts[0].conflict.compiler, "intel");
}

}  // namespace
}  // namespace depchaos::spack
