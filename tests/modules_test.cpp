#include <gtest/gtest.h>

#include "depchaos/elf/patcher.hpp"
#include "depchaos/pkg/modules.hpp"
#include "depchaos/workload/scenarios.hpp"

namespace depchaos::pkg::modules {
namespace {

Module rocm(const std::string& version) {
  Module module;
  module.name = "rocm/" + version;
  module.ld_library_path_prepend = {"/opt/rocm-" + version + "/lib"};
  module.conflicts = {"rocm/"};
  return module;
}

TEST(Modules, LoadUnloadRoundTrip) {
  ModuleSystem system;
  system.add(rocm("4.5"));
  system.load("rocm/4.5");
  EXPECT_TRUE(system.is_loaded("rocm/4.5"));
  system.unload("rocm/4.5");
  EXPECT_FALSE(system.is_loaded("rocm/4.5"));
  EXPECT_TRUE(system.environment().ld_library_path.empty());
}

TEST(Modules, UnknownModuleThrows) {
  ModuleSystem system;
  EXPECT_THROW(system.load("nope/1.0"), Error);
}

TEST(Modules, FamilySwapOnConflict) {
  ModuleSystem system;
  system.add(rocm("4.5"));
  system.add(rocm("4.3"));
  system.load("rocm/4.5");
  system.load("rocm/4.3");
  EXPECT_FALSE(system.is_loaded("rocm/4.5"));
  EXPECT_TRUE(system.is_loaded("rocm/4.3"));
  ASSERT_EQ(system.environment().ld_library_path.size(), 1u);
  EXPECT_EQ(system.environment().ld_library_path[0], "/opt/rocm-4.3/lib");
}

TEST(Modules, MostRecentModulePathsFirst) {
  ModuleSystem system;
  Module a;
  a.name = "a/1";
  a.ld_library_path_prepend = {"/a/lib"};
  Module b;
  b.name = "b/1";
  b.ld_library_path_prepend = {"/b/lib"};
  system.add(a);
  system.add(b);
  system.load("a/1");
  system.load("b/1");
  const auto env = system.environment();
  ASSERT_EQ(env.ld_library_path.size(), 2u);
  EXPECT_EQ(env.ld_library_path[0], "/b/lib");  // prepend semantics
  EXPECT_EQ(env.ld_library_path[1], "/a/lib");
}

TEST(Modules, DependenciesAutoLoadFirst) {
  ModuleSystem system;
  Module gcc;
  gcc.name = "gcc/12";
  gcc.ld_library_path_prepend = {"/opt/gcc12/lib"};
  Module mpi;
  mpi.name = "mvapich2/2.3";
  mpi.ld_library_path_prepend = {"/opt/mvapich/lib"};
  mpi.requires_modules = {"gcc/12"};
  system.add(gcc);
  system.add(mpi);
  system.load("mvapich2/2.3");
  EXPECT_TRUE(system.is_loaded("gcc/12"));
  const auto env = system.environment();
  // mpi loaded after gcc, so its path outranks gcc's.
  EXPECT_EQ(env.ld_library_path[0], "/opt/mvapich/lib");
}

TEST(Modules, DependencyCycleDetected) {
  ModuleSystem system;
  Module a;
  a.name = "a";
  a.requires_modules = {"b"};
  Module b;
  b.name = "b";
  b.requires_modules = {"a"};
  system.add(a);
  system.add(b);
  EXPECT_THROW(system.load("a"), Error);
}

TEST(Modules, PreloadToolsCompose) {
  ModuleSystem system;
  Module tool;
  tool.name = "memcheck/1";
  tool.ld_preload_append = {"libmemcheck.so"};
  system.add(tool);
  system.load("memcheck/1");
  ASSERT_EQ(system.environment().ld_preload.size(), 1u);
}

TEST(Modules, RocmScenarioDrivenByModules) {
  // The §V-B.1 failure expressed in module terms: the app was built with
  // rocm/4.5 loaded; a user later runs it with rocm/4.3 loaded.
  vfs::FileSystem fs;
  const auto scenario = workload::make_rocm_scenario(fs);
  ModuleSystem system;
  system.add(rocm("4.5"));
  system.add(rocm("4.3"));

  loader::Loader loader(fs);
  system.load("rocm/4.5");
  const auto ok_report =
      loader.load(scenario.exe_path, system.environment());
  EXPECT_FALSE(workload::rocm_versions_mixed(ok_report, scenario));

  system.load("rocm/4.3");  // family swap
  const auto broken =
      loader.load(scenario.exe_path, system.environment());
  EXPECT_TRUE(workload::rocm_versions_mixed(broken, scenario));
}

}  // namespace
}  // namespace depchaos::pkg::modules
