#include <gtest/gtest.h>

#include "depchaos/analysis/graph.hpp"
#include "depchaos/analysis/histogram.hpp"

namespace depchaos::analysis {
namespace {

TEST(Digraph, NodesDedupByLabel) {
  Digraph graph;
  const auto a1 = graph.add_node("a");
  const auto a2 = graph.add_node("a");
  EXPECT_EQ(a1, a2);
  EXPECT_EQ(graph.node_count(), 1u);
}

TEST(Digraph, EdgesDedup) {
  Digraph graph;
  graph.add_edge("a", "b");
  graph.add_edge("a", "b");
  EXPECT_EQ(graph.edge_count(), 1u);
  EXPECT_EQ(graph.in_degree(graph.find("b").value()), 1u);
}

TEST(Digraph, ReachableFromIsClosure) {
  Digraph graph;
  graph.add_edge("root", "a");
  graph.add_edge("a", "b");
  graph.add_edge("x", "y");  // unreachable
  const auto closure = graph.reachable_from(graph.find("root").value());
  EXPECT_EQ(closure.size(), 3u);
}

TEST(Digraph, TopoOrderRespectsEdges) {
  Digraph graph;
  graph.add_edge("app", "lib");
  graph.add_edge("lib", "base");
  const auto order = graph.topo_order();
  ASSERT_TRUE(order.has_value());
  const auto pos = [&](const char* label) {
    const auto id = graph.find(label).value();
    return std::find(order->begin(), order->end(), id) - order->begin();
  };
  EXPECT_LT(pos("app"), pos("lib"));
  EXPECT_LT(pos("lib"), pos("base"));
}

TEST(Digraph, CycleDetection) {
  Digraph graph;
  graph.add_edge("a", "b");
  graph.add_edge("b", "a");
  EXPECT_TRUE(graph.has_cycle());
  EXPECT_FALSE(graph.topo_order().has_value());
}

TEST(Digraph, DensityOfCompleteGraph) {
  Digraph graph;
  const char* names[] = {"a", "b", "c"};
  for (const auto* from : names) {
    for (const auto* to : names) {
      if (from != to) graph.add_edge(from, to);
    }
  }
  EXPECT_DOUBLE_EQ(graph.density(), 1.0);
}

TEST(Digraph, DotOutputWellFormed) {
  Digraph graph;
  graph.add_edge("a", "b");
  const auto dot = graph.to_dot("test");
  EXPECT_NE(dot.find("digraph \"test\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"a\""), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
}

TEST(HistogramTest, SummariesOnKnownData) {
  Histogram histogram;
  for (const std::uint64_t v : {1, 1, 2, 3, 10}) histogram.add(v);
  EXPECT_EQ(histogram.max(), 10u);
  EXPECT_DOUBLE_EQ(histogram.mean(), 17.0 / 5);
  EXPECT_DOUBLE_EQ(histogram.fraction_above(2), 2.0 / 5);
  EXPECT_EQ(histogram.quantile(0.5), 2u);
  EXPECT_EQ(histogram.quantile(1.0), 10u);
}

TEST(HistogramTest, SortedDescForPlotting) {
  Histogram histogram;
  for (const std::uint64_t v : {3, 1, 2}) histogram.add(v);
  EXPECT_EQ(histogram.sorted_desc(), (std::vector<std::uint64_t>{3, 2, 1}));
}

TEST(HistogramTest, FrequencyTableCaps) {
  Histogram histogram;
  for (const std::uint64_t v : {0, 1, 1, 9}) histogram.add(v);
  const auto table = histogram.frequency_table(5);
  EXPECT_EQ(table[0], 1u);
  EXPECT_EQ(table[1], 2u);
  EXPECT_EQ(table[5], 1u);  // 9 clamped into the cap bucket
}

TEST(HistogramTest, AsciiChartNonEmpty) {
  Histogram histogram;
  for (int i = 0; i < 100; ++i) histogram.add(i % 10);
  const auto chart = histogram.ascii_chart(5);
  EXPECT_NE(chart.find('#'), std::string::npos);
}

TEST(HistogramTest, EmptyIsSafe) {
  const Histogram histogram;
  EXPECT_EQ(histogram.max(), 0u);
  EXPECT_EQ(histogram.quantile(0.9), 0u);
  EXPECT_DOUBLE_EQ(histogram.fraction_above(5), 0.0);
  EXPECT_EQ(histogram.ascii_chart(4), "(empty)\n");
}

}  // namespace
}  // namespace depchaos::analysis
