#include <gtest/gtest.h>

#include "depchaos/elf/patcher.hpp"
#include "depchaos/loader/loader.hpp"
#include "depchaos/pkg/bundle.hpp"
#include "depchaos/pkg/deb.hpp"
#include "depchaos/pkg/fhs.hpp"
#include "depchaos/pkg/nix.hpp"
#include "depchaos/pkg/store.hpp"

namespace depchaos::pkg {
namespace {

using elf::make_executable;
using elf::make_library;

// ----------------------------------------------------------------- deb

TEST(DebDepends, UnversionedSingle) {
  const auto deps = deb::parse_depends("libc6");
  ASSERT_EQ(deps.size(), 1u);
  EXPECT_EQ(deps[0].package, "libc6");
  EXPECT_EQ(deps[0].kind, deb::DepKind::Unversioned);
}

TEST(DebDepends, RangeAndExact) {
  const auto deps = deb::parse_depends("libc6 (>= 2.14), libfoo (= 1.2-3)");
  ASSERT_EQ(deps.size(), 2u);
  EXPECT_EQ(deps[0].kind, deb::DepKind::VersionRange);
  EXPECT_EQ(deps[0].relation, ">=");
  EXPECT_EQ(deps[0].version, "2.14");
  EXPECT_EQ(deps[1].kind, deb::DepKind::Exact);
}

TEST(DebDepends, StrictRelations) {
  const auto deps = deb::parse_depends("a (<< 2.0), b (>> 1.0), c (<= 3)");
  EXPECT_EQ(deps[0].kind, deb::DepKind::VersionRange);
  EXPECT_EQ(deps[0].relation, "<<");
  EXPECT_EQ(deps[1].relation, ">>");
  EXPECT_EQ(deps[2].relation, "<=");
}

TEST(DebDepends, AlternativesClassifiedIndependently) {
  const auto deps = deb::parse_depends("mta | postfix (>= 3.0)");
  ASSERT_EQ(deps.size(), 2u);
  EXPECT_EQ(deps[0].kind, deb::DepKind::Unversioned);
  EXPECT_EQ(deps[1].kind, deb::DepKind::VersionRange);
}

TEST(DebDepends, MalformedConstraintThrows) {
  EXPECT_THROW(deb::parse_depends("foo ("), ParseError);
  EXPECT_THROW(deb::parse_depends("foo (2.0)"), ParseError);
  EXPECT_THROW(deb::parse_depends("(>= 1)"), ParseError);
}

TEST(DebControl, ParsesParagraphs) {
  const auto pkgs = deb::parse_control(
      "Package: foo\n"
      "Version: 1.0-1\n"
      "Section: libs\n"
      "Depends: libc6 (>= 2.14), bar\n"
      "\n"
      "Package: bar\n"
      "Version: 2.0\n");
  ASSERT_EQ(pkgs.size(), 2u);
  EXPECT_EQ(pkgs[0].name, "foo");
  EXPECT_EQ(pkgs[0].depends.size(), 2u);
  EXPECT_EQ(pkgs[1].name, "bar");
  EXPECT_TRUE(pkgs[1].depends.empty());
}

TEST(DebControl, PreDependsCounted) {
  const auto pkgs = deb::parse_control(
      "Package: foo\nPre-Depends: dpkg (>= 1.15)\nDepends: libc6\n");
  ASSERT_EQ(pkgs.size(), 1u);
  EXPECT_EQ(pkgs[0].depends.size(), 2u);
}

TEST(DebControl, UnknownFieldsTolerated) {
  const auto pkgs = deb::parse_control(
      "Package: foo\nMaintainer: someone <x@y.z>\nDescription: hi\n");
  ASSERT_EQ(pkgs.size(), 1u);
}

TEST(DebControl, MissingPackageFieldThrows) {
  EXPECT_THROW(deb::parse_control("Version: 1.0\n"), ParseError);
}

TEST(DebControl, RoundTripThroughControlText) {
  const auto original = deb::parse_control(
      "Package: foo\nVersion: 1.0\nSection: libs\n"
      "Depends: a, b (>= 2.0), c (= 3.1-1)\n");
  const auto reparsed = deb::parse_control(deb::to_control(original));
  EXPECT_EQ(original, reparsed);
}

TEST(DebClassify, CountsMatchKinds) {
  const auto pkgs = deb::parse_control(
      "Package: p1\nDepends: a, b (>= 1), c (= 2), d\n"
      "\nPackage: p2\nDepends: e (<< 9)\n");
  const auto counts = deb::classify(pkgs);
  EXPECT_EQ(counts.unversioned, 2u);
  EXPECT_EQ(counts.range, 2u);
  EXPECT_EQ(counts.exact, 1u);
  EXPECT_EQ(counts.total(), 5u);
}

TEST(DebClassify, ParallelMatchesSerial) {
  std::vector<deb::Package> pkgs;
  for (int i = 0; i < 5000; ++i) {
    deb::Package pkg;
    pkg.name = "p" + std::to_string(i);
    pkg.depends.push_back(
        {"q", i % 3 == 0 ? deb::DepKind::Unversioned
                         : (i % 3 == 1 ? deb::DepKind::VersionRange
                                       : deb::DepKind::Exact),
         "", ""});
    pkgs.push_back(std::move(pkg));
  }
  support::ThreadPool pool(4);
  const auto serial = deb::classify(pkgs);
  const auto parallel = deb::classify_parallel(pool, pkgs);
  EXPECT_EQ(serial.unversioned, parallel.unversioned);
  EXPECT_EQ(serial.range, parallel.range);
  EXPECT_EQ(serial.exact, parallel.exact);
}

// ----------------------------------------------------------------- fhs

TEST(Fhs, InstallWritesFilesAndManifest) {
  vfs::FileSystem fs;
  fhs::Installer installer(fs);
  fhs::Package pkg{"tool", "1.0",
                   {{"usr/bin/tool", "binary", std::nullopt},
                    {"usr/lib/libtool.so.1", "", make_library("libtool.so.1")}}};
  const auto result = installer.install(pkg);
  EXPECT_EQ(result.written.size(), 2u);
  EXPECT_TRUE(result.clobbered.empty());
  EXPECT_TRUE(fs.exists("/usr/bin/tool"));
  EXPECT_EQ(installer.owner_of("/usr/bin/tool").value(), "tool");
}

TEST(Fhs, OverwriteDetectedAsClobber) {
  vfs::FileSystem fs;
  fhs::Installer installer(fs);
  installer.install({"a", "1", {{"usr/lib/libz.so", "A's", std::nullopt}}});
  const auto result =
      installer.install({"b", "1", {{"usr/lib/libz.so", "B's", std::nullopt}}});
  ASSERT_EQ(result.clobbered.size(), 1u);
  EXPECT_EQ(result.clobbered[0], "/usr/lib/libz.so");
  // The file now belongs to b — the FHS key-space dilemma.
  EXPECT_EQ(installer.owner_of("/usr/lib/libz.so").value(), "b");
  EXPECT_EQ(fs.peek("/usr/lib/libz.so")->bytes, "B's");
}

TEST(Fhs, InterruptedInstallLeavesPartialState) {
  vfs::FileSystem fs;
  fhs::Installer installer(fs);
  fhs::Package pkg{"big", "1",
                   {{"usr/bin/one", "1", std::nullopt},
                    {"usr/bin/two", "2", std::nullopt},
                    {"usr/bin/three", "3", std::nullopt}}};
  installer.install_interrupted(pkg, 2);
  EXPECT_TRUE(fs.exists("/usr/bin/one"));
  EXPECT_TRUE(fs.exists("/usr/bin/two"));
  EXPECT_FALSE(fs.exists("/usr/bin/three"));
  // The crash happened before the manifest commit: not "installed".
  EXPECT_TRUE(installer.installed().empty());
}

TEST(Fhs, RemoveDeletesOwnedFilesOnly) {
  vfs::FileSystem fs;
  fhs::Installer installer(fs);
  installer.install({"a", "1", {{"usr/lib/mine.so", "m", std::nullopt},
                                {"usr/lib/shared.so", "a", std::nullopt}}});
  installer.install({"b", "1", {{"usr/lib/shared.so", "b", std::nullopt}}});
  installer.remove("a");
  EXPECT_FALSE(fs.exists("/usr/lib/mine.so"));
  // shared.so was clobbered by b: a's removal leaves it alone.
  EXPECT_TRUE(fs.exists("/usr/lib/shared.so"));
}

TEST(Fhs, RemoveUnknownThrows) {
  vfs::FileSystem fs;
  fhs::Installer installer(fs);
  EXPECT_THROW(installer.remove("ghost"), Error);
}

// -------------------------------------------------------------- bundle

TEST(Bundle, CreatesRelocatableAppDir) {
  vfs::FileSystem fs;
  bundle::BundleSpec spec;
  spec.name = "paraview";
  spec.exe = make_executable({"libvtk.so"});
  spec.libs = {{"libvtk.so", make_library("libvtk.so")}};
  const auto bundle = bundle::create_bundle(fs, spec);

  loader::Loader loader(fs);
  EXPECT_TRUE(loader.load(bundle.exe_path).success);
}

TEST(Bundle, SurvivesRelocation) {
  vfs::FileSystem fs;
  bundle::BundleSpec spec;
  spec.name = "app";
  spec.exe = make_executable({"liba.so"});
  spec.libs = {{"liba.so", make_library("liba.so")}};
  const auto original = bundle::create_bundle(fs, spec);
  const auto moved = bundle::relocate_bundle(fs, original, "/home/user/Desktop/app");

  loader::Loader loader(fs);
  const auto report = loader.load(moved.exe_path);
  ASSERT_TRUE(report.success);
  EXPECT_EQ(report.load_order[1].path, "/home/user/Desktop/app/lib/liba.so");
}

TEST(Bundle, VendoredLibsResolveTheirOwnDeps) {
  vfs::FileSystem fs;
  bundle::BundleSpec spec;
  spec.name = "app";
  spec.exe = make_executable({"liba.so"});
  spec.libs = {{"liba.so", make_library("liba.so", {"libb.so"})},
               {"libb.so", make_library("libb.so")}};
  const auto bundle = bundle::create_bundle(fs, spec);
  loader::Loader loader(fs);
  const auto report = loader.load(bundle.exe_path);
  ASSERT_TRUE(report.success);
  EXPECT_EQ(report.load_order.size(), 3u);
}

TEST(Bundle, BundledTrumpsSystemLibrary) {
  vfs::FileSystem fs;
  elf::install_object(fs, "/usr/lib/liba.so", make_library("liba.so"));
  bundle::BundleSpec spec;
  spec.name = "app";
  spec.exe = make_executable({"liba.so"});
  spec.libs = {{"liba.so", make_library("liba.so")}};
  const auto bundle = bundle::create_bundle(fs, spec);
  loader::Loader loader(fs);
  const auto report = loader.load(bundle.exe_path);
  EXPECT_EQ(report.load_order[1].path, bundle.lib_dir + "/liba.so");
}

// --------------------------------------------------------------- store

store::PackageSpec simple_pkg(const std::string& name,
                              const std::string& version,
                              std::vector<std::string> deps = {},
                              std::vector<std::string> needed = {}) {
  store::PackageSpec spec;
  spec.name = name;
  spec.version = version;
  spec.deps = std::move(deps);
  spec.files.push_back(store::StoreFile{
      "lib/lib" + name + ".so", make_library("lib" + name + ".so",
                                             std::move(needed)),
      ""});
  return spec;
}

TEST(Store, HashedPrefixesAreUnique) {
  vfs::FileSystem fs;
  store::Store store(fs);
  const auto& a = store.add(simple_pkg("zlib", "1.2.11"));
  const auto& b = store.add(simple_pkg("zlib", "1.2.12"));
  EXPECT_NE(a.prefix, b.prefix);
  EXPECT_TRUE(fs.exists(a.prefix));
  EXPECT_TRUE(fs.exists(b.prefix));
}

TEST(Store, IdenticalInputsDeduplicate) {
  vfs::FileSystem fs;
  store::Store store(fs);
  const auto& a = store.add(simple_pkg("zlib", "1.2.11"));
  const auto& b = store.add(simple_pkg("zlib", "1.2.11"));
  EXPECT_EQ(a.prefix, b.prefix);
  EXPECT_EQ(store.packages().size(), 1u);
}

TEST(Store, PessimisticHashPropagatesThroughDeps) {
  // Changing a leaf package changes every downstream hash — the "domino
  // effect of rebuilds" (§II-D).
  vfs::FileSystem fs;
  store::Store store(fs);
  const auto& zlib1 = store.add(simple_pkg("zlib", "1.2.11"));
  const auto& curl1 = store.add(
      simple_pkg("curl", "7.79", {zlib1.prefix}, {"libzlib.so"}));
  const auto& zlib2 = store.add(simple_pkg("zlib", "1.2.12"));
  const auto& curl2 = store.add(
      simple_pkg("curl", "7.79", {zlib2.prefix}, {"libzlib.so"}));
  EXPECT_NE(curl1.hash, curl2.hash);
}

TEST(Store, MissingDependencyPrefixRejected) {
  vfs::FileSystem fs;
  store::Store store(fs);
  EXPECT_THROW(store.add(simple_pkg("x", "1", {"/store/nonexistent"})),
               ResolveError);
}

TEST(Store, RpathWiringMakesBinariesLoadable) {
  vfs::FileSystem fs;
  store::Store store(fs);
  const auto& zlib = store.add(simple_pkg("zlib", "1.2.11"));
  store::PackageSpec app = simple_pkg("app", "1.0", {zlib.prefix},
                                      {"libzlib.so"});
  app.files.push_back(store::StoreFile{
      "bin/app", make_executable({"libapp.so"}), ""});
  const auto& installed = store.add(app);

  loader::Loader loader(fs);
  const auto report = loader.load(installed.prefix + "/bin/app");
  ASSERT_TRUE(report.success);
  EXPECT_EQ(report.load_order.size(), 3u);
  // libapp.so's own RPATH includes its dependencies' lib dirs.
  EXPECT_EQ(report.find_loaded("libzlib.so")->how, loader::HowFound::Rpath);
}

TEST(Store, RunpathStyleBreaksTransitiveLookup) {
  // Same graph, RUNPATH style: the app's RUNPATH does not propagate, but
  // each library carries its own runpath including its deps, so it works —
  // unless a library lacks the entry. Verify the happy path here.
  vfs::FileSystem fs;
  store::Store store(fs, "/store", store::LinkStyle::Runpath);
  const auto& zlib = store.add(simple_pkg("zlib", "1.2.11"));
  store::PackageSpec app =
      simple_pkg("app", "1.0", {zlib.prefix}, {"libzlib.so"});
  app.files.push_back(
      store::StoreFile{"bin/app", make_executable({"libapp.so"}), ""});
  const auto& installed = store.add(app);
  loader::Loader loader(fs);
  EXPECT_TRUE(loader.load(installed.prefix + "/bin/app").success);
}

TEST(Store, ClosureRootFirst) {
  vfs::FileSystem fs;
  store::Store store(fs);
  const auto& a = store.add(simple_pkg("a", "1"));
  const auto& b = store.add(simple_pkg("b", "1", {a.prefix}));
  const auto& c = store.add(simple_pkg("c", "1", {b.prefix, a.prefix}));
  const auto closure = store.closure(c);
  ASSERT_EQ(closure.size(), 3u);
  EXPECT_EQ(closure[0], c.prefix);
}

TEST(Store, ProfileFlipIsAtomicAndRollsBack) {
  vfs::FileSystem fs;
  store::Store store(fs);
  const auto& v1 = store.add(simple_pkg("tool", "1.0"));
  const auto& v2 = store.add(simple_pkg("tool", "2.0"));

  store.set_profile({v1.prefix});
  const auto gen1 = fs.realpath(store.profile_path() + "/lib/libtool.so");
  ASSERT_TRUE(gen1.has_value());
  EXPECT_EQ(*gen1, v1.prefix + "/lib/libtool.so");

  store.set_profile({v2.prefix});
  EXPECT_EQ(fs.realpath(store.profile_path() + "/lib/libtool.so").value(),
            v2.prefix + "/lib/libtool.so");

  store.rollback();
  EXPECT_EQ(fs.realpath(store.profile_path() + "/lib/libtool.so").value(),
            v1.prefix + "/lib/libtool.so");
}

TEST(Store, RollbackWithoutHistoryThrows) {
  vfs::FileSystem fs;
  store::Store store(fs);
  EXPECT_THROW(store.rollback(), Error);
  store.set_profile({});
  EXPECT_THROW(store.rollback(), Error);
}

// ----------------------------------------------------------------- nix

TEST(Nix, ClosureIncludesAllInputsOnce) {
  nix::DerivationSet drvs;
  const auto leaf = drvs.add("leaf.drv", nix::DrvKind::Source);
  const auto mid1 = drvs.add("mid1.drv", nix::DrvKind::Package, {leaf});
  const auto mid2 = drvs.add("mid2.drv", nix::DrvKind::Package, {leaf});
  const auto root = drvs.add("root.drv", nix::DrvKind::Package, {mid1, mid2});
  const auto closure = drvs.closure(root);
  EXPECT_EQ(closure.size(), 4u);
}

TEST(Nix, StatsCountKindsAndDepth) {
  nix::DerivationSet drvs;
  const auto src = drvs.add("src.drv", nix::DrvKind::Source);
  const auto boot = drvs.add("boot.drv", nix::DrvKind::Bootstrap);
  const auto pkg = drvs.add("pkg.drv", nix::DrvKind::Package, {src, boot});
  const auto root = drvs.add("root.drv", nix::DrvKind::Package, {pkg});
  const auto stats = drvs.stats(root);
  EXPECT_EQ(stats.nodes, 4u);
  EXPECT_EQ(stats.sources, 1u);
  EXPECT_EQ(stats.bootstrap, 1u);
  EXPECT_EQ(stats.max_depth, 2u);
  EXPECT_EQ(stats.edges, 3u);
}

TEST(Nix, ClosureGraphMatchesClosure) {
  nix::DerivationSet drvs;
  const auto a = drvs.add("a.drv", nix::DrvKind::Package);
  const auto b = drvs.add("b.drv", nix::DrvKind::Package, {a});
  const auto unrelated = drvs.add("z.drv", nix::DrvKind::Package);
  (void)unrelated;
  const auto graph = drvs.closure_graph(b);
  EXPECT_EQ(graph.node_count(), 2u);
  EXPECT_EQ(graph.edge_count(), 1u);
}

}  // namespace
}  // namespace depchaos::pkg
