#include <gtest/gtest.h>

#include "depchaos/elf/patcher.hpp"
#include "depchaos/loader/symbols.hpp"
#include "depchaos/shrinkwrap/libtree.hpp"
#include "depchaos/shrinkwrap/needy.hpp"
#include "depchaos/shrinkwrap/shrinkwrap.hpp"
#include "depchaos/shrinkwrap/views.hpp"

namespace depchaos::shrinkwrap {
namespace {

using elf::install_object;
using elf::make_executable;
using elf::make_library;

class ShrinkwrapTest : public ::testing::Test {
 protected:
  // Store-style app: exe -> liba -> libb, each lib in its own directory,
  // found via the executable's (propagating) RPATH list. The leading empty
  // directory makes every lookup pay at least one failed probe, like a real
  // store-model search.
  void build_store_app() {
    fs_.mkdir_p("/store/empty");
    install_object(fs_, "/store/b/libb.so", make_library("libb.so"));
    install_object(fs_, "/store/a/liba.so",
                   make_library("liba.so", {"libb.so"}));
    install_object(fs_, "/store/app/bin/app",
                   make_executable({"liba.so"}, {},
                                   {"/store/empty", "/store/a", "/store/b"}));
  }

  vfs::FileSystem fs_;
  loader::Loader loader_{fs_};
};

TEST_F(ShrinkwrapTest, RewritesNeededToAbsolutePaths) {
  build_store_app();
  const auto report = shrinkwrap(fs_, loader_, "/store/app/bin/app");
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.changed);
  ASSERT_EQ(report.new_needed.size(), 2u);
  EXPECT_EQ(report.new_needed[0], "/store/a/liba.so");
  EXPECT_EQ(report.new_needed[1], "/store/b/libb.so");

  const auto exe = elf::read_object(fs_, "/store/app/bin/app");
  EXPECT_EQ(exe.dyn.needed, report.new_needed);
  EXPECT_TRUE(exe.dyn.rpath.empty());  // cleared
}

TEST_F(ShrinkwrapTest, WrappedBinaryStillLoads) {
  build_store_app();
  ASSERT_TRUE(shrinkwrap(fs_, loader_, "/store/app/bin/app").ok());
  const auto report = loader_.load("/store/app/bin/app");
  ASSERT_TRUE(report.success);
  EXPECT_EQ(report.load_order.size(), 3u);
}

TEST_F(ShrinkwrapTest, WrappedBinaryPassesVerify) {
  build_store_app();
  ASSERT_TRUE(shrinkwrap(fs_, loader_, "/store/app/bin/app").ok());
  const auto audit = verify(fs_, loader_, "/store/app/bin/app");
  EXPECT_TRUE(audit.ok);
  EXPECT_TRUE(audit.non_absolute.empty());
  EXPECT_TRUE(audit.missing.empty());
}

TEST_F(ShrinkwrapTest, UnwrappedBinaryFailsVerify) {
  build_store_app();
  const auto audit = verify(fs_, loader_, "/store/app/bin/app");
  EXPECT_FALSE(audit.ok);
  EXPECT_FALSE(audit.non_absolute.empty());
}

TEST_F(ShrinkwrapTest, SyscallsDropAfterWrapping) {
  build_store_app();
  const auto before = loader_.load("/store/app/bin/app");
  ASSERT_TRUE(shrinkwrap(fs_, loader_, "/store/app/bin/app").ok());
  const auto after = loader_.load("/store/app/bin/app");
  EXPECT_LT(after.stats.metadata_calls(), before.stats.metadata_calls());
  EXPECT_EQ(after.stats.failed_probes, 0u);
}

TEST_F(ShrinkwrapTest, IsIdempotent) {
  build_store_app();
  const auto first = shrinkwrap(fs_, loader_, "/store/app/bin/app");
  ASSERT_TRUE(first.ok());
  const auto second = shrinkwrap(fs_, loader_, "/store/app/bin/app");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.new_needed, second.new_needed);
  EXPECT_FALSE(second.changed);
}

TEST_F(ShrinkwrapTest, ImmuneToLdLibraryPath) {
  // After wrapping, a hostile LD_LIBRARY_PATH cannot redirect resolution.
  build_store_app();
  install_object(fs_, "/evil/liba.so", make_library("liba.so"));
  install_object(fs_, "/evil/libb.so", make_library("libb.so"));
  ASSERT_TRUE(shrinkwrap(fs_, loader_, "/store/app/bin/app").ok());
  const auto report =
      loader_.load("/store/app/bin/app",
                   loader::Environment::with_library_path({"/evil"}));
  ASSERT_TRUE(report.success);
  EXPECT_EQ(report.find_loaded("liba.so")->path, "/store/a/liba.so");
  EXPECT_EQ(report.find_loaded("libb.so")->path, "/store/b/libb.so");
}

TEST_F(ShrinkwrapTest, LdPreloadBackdoorStillWorks) {
  build_store_app();
  install_object(fs_, "/usr/lib/libhook.so", make_library("libhook.so"));
  ASSERT_TRUE(shrinkwrap(fs_, loader_, "/store/app/bin/app").ok());
  loader::Environment env;
  env.ld_preload = {"libhook.so"};
  const auto report = loader_.load("/store/app/bin/app", env);
  ASSERT_TRUE(report.success);
  EXPECT_EQ(report.load_order[1].how, loader::HowFound::Preload);
}

TEST_F(ShrinkwrapTest, PreservesFirstLevelOrder) {
  // §V-B.2: "it preserves the order the user set".
  install_object(fs_, "/l/libfirst.so", make_library("libfirst.so"));
  install_object(fs_, "/l/libsecond.so", make_library("libsecond.so"));
  install_object(fs_, "/bin/app",
                 make_executable({"libfirst.so", "libsecond.so"}, {}, {"/l"}));
  const auto report = shrinkwrap(fs_, loader_, "/bin/app");
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report.new_needed.size(), 2u);
  EXPECT_EQ(report.new_needed[0], "/l/libfirst.so");
  EXPECT_EQ(report.new_needed[1], "/l/libsecond.so");
}

TEST_F(ShrinkwrapTest, MissingDependencyRefusesToWrap) {
  install_object(fs_, "/bin/app", make_executable({"libghost.so"}));
  const auto report = shrinkwrap(fs_, loader_, "/bin/app");
  EXPECT_FALSE(report.ok());
  ASSERT_EQ(report.unresolved.size(), 1u);
  EXPECT_EQ(report.unresolved[0], "libghost.so");
  // Binary untouched.
  const auto exe = elf::read_object(fs_, "/bin/app");
  EXPECT_EQ(exe.dyn.needed, std::vector<std::string>{"libghost.so"});
}

TEST_F(ShrinkwrapTest, LiftDisabledKeepsOnlyFirstLevel) {
  build_store_app();
  Options options;
  options.lift_transitive = false;
  const auto report = shrinkwrap(fs_, loader_, "/store/app/bin/app", options);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report.new_needed.size(), 1u);
  EXPECT_EQ(report.new_needed[0], "/store/a/liba.so");
}

TEST_F(ShrinkwrapTest, TransitiveSonameRequestsHitDedupCache) {
  // Fig 5: liba still asks for bare "libb.so"; the lifted absolute entry
  // satisfies it from cache.
  build_store_app();
  ASSERT_TRUE(shrinkwrap(fs_, loader_, "/store/app/bin/app").ok());
  const auto report = loader_.load("/store/app/bin/app");
  ASSERT_TRUE(report.success);
  bool saw_cache_hit = false;
  for (const auto& request : report.requests) {
    if (request.name == "libb.so" &&
        request.how == loader::HowFound::Cache) {
      saw_cache_hit = true;
    }
  }
  EXPECT_TRUE(saw_cache_hit);
}

TEST_F(ShrinkwrapTest, WrappedBinaryBreaksOnMusl) {
  // §IV: musl does not dedup by soname, so the lifted absolute entries do
  // not satisfy the transitive bare-soname requests.
  build_store_app();
  ASSERT_TRUE(shrinkwrap(fs_, loader_, "/store/app/bin/app").ok());
  loader::Loader musl_loader(fs_, {}, loader::Dialect::Musl);
  const auto report = musl_loader.load("/store/app/bin/app");
  EXPECT_FALSE(report.success);
}

TEST_F(ShrinkwrapTest, ExtraNeededCoversKnownDlopens) {
  build_store_app();
  install_object(fs_, "/store/py/libpymod.so", make_library("libpymod.so"));
  Options options;
  options.extra_needed = {"/store/py/libpymod.so"};
  const auto report =
      shrinkwrap(fs_, loader_, "/store/app/bin/app", options);
  ASSERT_TRUE(report.ok());
  const auto exe = elf::read_object(fs_, "/store/app/bin/app");
  EXPECT_NE(std::find(exe.dyn.needed.begin(), exe.dyn.needed.end(),
                      "/store/py/libpymod.so"),
            exe.dyn.needed.end());
}

TEST_F(ShrinkwrapTest, NativeStrategyAgreesWithInterp) {
  build_store_app();
  const auto interp = shrinkwrap(fs_, loader_, "/store/app/bin/app");
  ASSERT_TRUE(interp.ok());

  // Fresh identical world for the native strategy.
  vfs::FileSystem fs2;
  loader::Loader loader2(fs2);
  fs2.mkdir_p("/store/empty");
  install_object(fs2, "/store/b/libb.so", make_library("libb.so"));
  install_object(fs2, "/store/a/liba.so", make_library("liba.so", {"libb.so"}));
  install_object(fs2, "/store/app/bin/app",
                 make_executable({"liba.so"}, {},
                                 {"/store/empty", "/store/a", "/store/b"}));
  Options options;
  options.strategy = Strategy::Native;
  const auto native = shrinkwrap(fs2, loader2, "/store/app/bin/app", options);
  ASSERT_TRUE(native.ok());
  EXPECT_EQ(interp.new_needed, native.new_needed);
}

TEST_F(ShrinkwrapTest, WrapCostScalesWithSearchWork) {
  build_store_app();
  const auto report = shrinkwrap(fs_, loader_, "/store/app/bin/app");
  EXPECT_GT(report.wrap_cost.metadata_calls(), 0u);
}

// ----------------------------------------------------------------- libtree

TEST_F(ShrinkwrapTest, LibtreeRendersAnnotatedTree) {
  build_store_app();
  const std::string tree = libtree(fs_, loader_, "/store/app/bin/app");
  EXPECT_NE(tree.find("liba.so [rpath]"), std::string::npos);
  EXPECT_NE(tree.find("libb.so [rpath (inherited)]"), std::string::npos);
}

TEST_F(ShrinkwrapTest, LibtreeMarksMissing) {
  install_object(fs_, "/bin/app", make_executable({"libghost.so"}));
  const std::string tree = libtree(fs_, loader_, "/bin/app");
  EXPECT_NE(tree.find("libghost.so [not found]"), std::string::npos);
}

TEST_F(ShrinkwrapTest, LibtreeShowsPathsWhenAsked) {
  build_store_app();
  TreeOptions options;
  options.show_paths = true;
  const std::string tree =
      libtree(fs_, loader_, "/store/app/bin/app", {}, options);
  EXPECT_NE(tree.find("=> /store/a/liba.so"), std::string::npos);
}

TEST_F(ShrinkwrapTest, LibtreeDepthLimit) {
  build_store_app();
  TreeOptions options;
  options.max_depth = 1;
  const std::string tree =
      libtree(fs_, loader_, "/store/app/bin/app", {}, options);
  EXPECT_NE(tree.find("liba.so"), std::string::npos);
  EXPECT_EQ(tree.find("libb.so"), std::string::npos);
}

// ------------------------------------------------------------------ views

TEST_F(ShrinkwrapTest, ViewMakesSingleRpathWork) {
  build_store_app();
  const auto view =
      make_dependency_view(fs_, loader_, "/store/app/bin/app", "/views/app");
  ASSERT_TRUE(view.ok);
  EXPECT_EQ(view.symlink_count, 2u);
  EXPECT_GT(view.inode_cost, 0u);

  const auto exe = elf::read_object(fs_, "/store/app/bin/app");
  ASSERT_EQ(exe.dyn.rpath.size(), 1u);
  EXPECT_EQ(exe.dyn.rpath[0], "/views/app/lib");

  const auto report = loader_.load("/store/app/bin/app");
  ASSERT_TRUE(report.success);
  // Everything resolves through the view (rpath + propagation).
  for (std::size_t i = 1; i < report.load_order.size(); ++i) {
    EXPECT_TRUE(report.load_order[i].path.starts_with("/views/app/lib/"));
  }
}

TEST_F(ShrinkwrapTest, ViewDetectsSonameConflicts) {
  // Two different files, same soname: the single-version restriction.
  install_object(fs_, "/s1/libdup.so", make_library("libdup.so"));
  install_object(fs_, "/s2/libdup.so", make_library("libdup.so", {}, {}, {}));
  elf::Object dup2 = make_library("libdup.so");
  dup2.symbols.push_back(elf::Symbol{"v2", elf::SymbolBinding::Global, true});
  install_object(fs_, "/s2/libdup.so", dup2);

  install_object(fs_, "/l/liba.so",
                 make_library("liba.so", {"/s1/libdup.so"}));
  install_object(fs_, "/l/libb.so",
                 make_library("libb.so", {"/s2/libdup.so"}));
  install_object(fs_, "/bin/app",
                 make_executable({"liba.so", "libb.so"}, {}, {"/l"}));
  const auto view =
      make_dependency_view(fs_, loader_, "/bin/app", "/views/app");
  EXPECT_FALSE(view.ok);
  ASSERT_EQ(view.conflicts.size(), 1u);
  EXPECT_EQ(view.conflicts[0], "libdup.so");
}

// ------------------------------------------------------------------ needy

TEST_F(ShrinkwrapTest, NeedyLiftsClosureToSonames) {
  build_store_app();
  const auto needy = make_needy(fs_, loader_, "/store/app/bin/app");
  ASSERT_TRUE(needy.ok);
  EXPECT_EQ(needy.lifted,
            (std::vector<std::string>{"liba.so", "libb.so"}));
  const auto report = loader_.load("/store/app/bin/app");
  EXPECT_TRUE(report.success);
}

TEST_F(ShrinkwrapTest, NeedyFailsOnDuplicateStrongSymbols) {
  // §V-B.2: the link line rejects libomp + libompstubs...
  auto omp_like = [&](const std::string& soname) {
    elf::Object lib = make_library(soname);
    lib.symbols.push_back(
        elf::Symbol{"omp_get_num_threads", elf::SymbolBinding::Global, true});
    return lib;
  };
  install_object(fs_, "/l/libomp.so", omp_like("libomp.so"));
  install_object(fs_, "/l/libompstubs.so", omp_like("libompstubs.so"));
  install_object(fs_, "/bin/app",
                 make_executable({"libomp.so", "libompstubs.so"}, {}, {"/l"}));

  const auto needy = make_needy(fs_, loader_, "/bin/app");
  EXPECT_FALSE(needy.ok);
  ASSERT_EQ(needy.link.duplicate_strong.size(), 1u);
  EXPECT_EQ(needy.link.duplicate_strong[0], "omp_get_num_threads");

  // ...while Shrinkwrap, which never touches the link line, succeeds.
  const auto wrapped = shrinkwrap(fs_, loader_, "/bin/app");
  EXPECT_TRUE(wrapped.ok());
  const auto exe = elf::read_object(fs_, "/bin/app");
  EXPECT_EQ(exe.dyn.needed[0], "/l/libomp.so");  // user order preserved
}

}  // namespace
}  // namespace depchaos::shrinkwrap
