#include <gtest/gtest.h>

#include "depchaos/elf/patcher.hpp"
#include "depchaos/loader/loader.hpp"
#include "depchaos/loader/symbols.hpp"
#include "depchaos/vfs/vfs.hpp"

namespace depchaos::loader {
namespace {

using elf::install_object;
using elf::make_executable;
using elf::make_library;
using elf::Symbol;
using elf::SymbolBinding;

class SymbolsTest : public ::testing::Test {
 protected:
  vfs::FileSystem fs_;

  elf::Object lib_defining(const std::string& soname,
                           std::vector<std::string> symbols,
                           SymbolBinding binding = SymbolBinding::Global) {
    elf::Object lib = make_library(soname);
    for (auto& name : symbols) {
      lib.symbols.push_back(Symbol{std::move(name), binding, true});
    }
    return lib;
  }

  LoadReport load(const std::string& exe, const Environment& env = {}) {
    Loader loader(fs_);
    return loader.load(exe, env);
  }
};

TEST_F(SymbolsTest, BindsToFirstDefinerInLoadOrder) {
  install_object(fs_, "/l/liba.so", lib_defining("liba.so", {"f"}));
  install_object(fs_, "/l/libb.so", lib_defining("libb.so", {"f"}));
  elf::Object exe = make_executable({"liba.so", "libb.so"}, {"/l"});
  exe.symbols.push_back(Symbol{"f", SymbolBinding::Global, false});
  install_object(fs_, "/bin/app", exe);

  const auto bind = bind_symbols(load("/bin/app"));
  ASSERT_NE(bind.provider_of("f"), nullptr);
  EXPECT_EQ(*bind.provider_of("f"), "/l/liba.so");
}

TEST_F(SymbolsTest, InterpositionRecordsShadowedProviders) {
  install_object(fs_, "/l/liba.so", lib_defining("liba.so", {"f"}));
  install_object(fs_, "/l/libb.so", lib_defining("libb.so", {"f"}));
  elf::Object exe = make_executable({"liba.so", "libb.so"}, {"/l"});
  install_object(fs_, "/bin/app", exe);

  const auto bind = bind_symbols(load("/bin/app"));
  ASSERT_EQ(bind.interpositions.size(), 1u);
  EXPECT_EQ(bind.interpositions[0].symbol, "f");
  EXPECT_EQ(bind.interpositions[0].winner_path, "/l/liba.so");
  ASSERT_EQ(bind.interpositions[0].shadowed_paths.size(), 1u);
  EXPECT_EQ(bind.interpositions[0].shadowed_paths[0], "/l/libb.so");
}

TEST_F(SymbolsTest, PreloadInterposesOverRegularLibraries) {
  // The PMPI / gperf pattern (§III-B): LD_PRELOAD provides the symbol
  // before any regular dependency.
  install_object(fs_, "/usr/lib/libwrap.so",
                 lib_defining("libwrap.so", {"MPI_Send"}));
  install_object(fs_, "/l/libmpi.so", lib_defining("libmpi.so", {"MPI_Send"}));
  elf::Object exe = make_executable({"libmpi.so"}, {"/l"});
  exe.symbols.push_back(Symbol{"MPI_Send", SymbolBinding::Global, false});
  install_object(fs_, "/bin/app", exe);

  Environment env;
  env.ld_preload = {"libwrap.so"};
  const auto bind = bind_symbols(load("/bin/app", env));
  ASSERT_NE(bind.provider_of("MPI_Send"), nullptr);
  EXPECT_EQ(*bind.provider_of("MPI_Send"), "/usr/lib/libwrap.so");
}

TEST_F(SymbolsTest, UnresolvedStrongReferenceReported) {
  elf::Object exe = make_executable({});
  exe.symbols.push_back(Symbol{"ghost", SymbolBinding::Global, false});
  install_object(fs_, "/bin/app", exe);
  const auto bind = bind_symbols(load("/bin/app"));
  ASSERT_EQ(bind.unresolved.size(), 1u);
  EXPECT_EQ(bind.unresolved[0], "ghost");
}

TEST_F(SymbolsTest, UnresolvedWeakReferenceTolerated) {
  elf::Object exe = make_executable({});
  exe.symbols.push_back(Symbol{"maybe", SymbolBinding::Weak, false});
  install_object(fs_, "/bin/app", exe);
  const auto bind = bind_symbols(load("/bin/app"));
  EXPECT_TRUE(bind.unresolved.empty());
}

TEST_F(SymbolsTest, WeakDefinitionStillBinds) {
  install_object(fs_, "/l/liba.so",
                 lib_defining("liba.so", {"w"}, SymbolBinding::Weak));
  elf::Object exe = make_executable({"liba.so"}, {"/l"});
  exe.symbols.push_back(Symbol{"w", SymbolBinding::Global, false});
  install_object(fs_, "/bin/app", exe);
  const auto bind = bind_symbols(load("/bin/app"));
  ASSERT_NE(bind.provider_of("w"), nullptr);
  ASSERT_EQ(bind.bindings.size(), 1u);
  EXPECT_TRUE(bind.bindings[0].weak);
}

TEST_F(SymbolsTest, LocalSymbolsInvisible) {
  elf::Object lib = make_library("liba.so");
  lib.symbols.push_back(Symbol{"hidden", SymbolBinding::Local, true});
  install_object(fs_, "/l/liba.so", lib);
  elf::Object exe = make_executable({"liba.so"}, {"/l"});
  exe.symbols.push_back(Symbol{"hidden", SymbolBinding::Global, false});
  install_object(fs_, "/bin/app", exe);
  const auto bind = bind_symbols(load("/bin/app"));
  ASSERT_EQ(bind.unresolved.size(), 1u);
}

// ------------------------------------------------------------ link_check

TEST_F(SymbolsTest, LinkCheckAcceptsCleanLine) {
  install_object(fs_, "/l/liba.so", lib_defining("liba.so", {"fa"}));
  install_object(fs_, "/l/libb.so", lib_defining("libb.so", {"fb"}));
  elf::Object exe = make_executable({});
  exe.symbols.push_back(Symbol{"fa", SymbolBinding::Global, false});
  install_object(fs_, "/bin/app", exe);
  const auto result =
      link_check(fs_, "/bin/app", {"/l/liba.so", "/l/libb.so"});
  EXPECT_TRUE(result.ok);
}

TEST_F(SymbolsTest, LinkCheckRejectsDuplicateStrong) {
  // The libomp/libompstubs failure (§V-B.2).
  install_object(fs_, "/l/libomp.so", lib_defining("libomp.so", {"omp_f"}));
  install_object(fs_, "/l/libompstubs.so",
                 lib_defining("libompstubs.so", {"omp_f"}));
  install_object(fs_, "/bin/app", make_executable({}));
  const auto result =
      link_check(fs_, "/bin/app", {"/l/libomp.so", "/l/libompstubs.so"});
  EXPECT_FALSE(result.ok);
  ASSERT_EQ(result.duplicate_strong.size(), 1u);
  EXPECT_EQ(result.duplicate_strong[0], "omp_f");
}

TEST_F(SymbolsTest, LinkCheckWeakDuplicatesAllowed) {
  install_object(fs_, "/l/liba.so",
                 lib_defining("liba.so", {"w"}, SymbolBinding::Weak));
  install_object(fs_, "/l/libb.so",
                 lib_defining("libb.so", {"w"}, SymbolBinding::Weak));
  install_object(fs_, "/bin/app", make_executable({}));
  EXPECT_TRUE(link_check(fs_, "/bin/app", {"/l/liba.so", "/l/libb.so"}).ok);
}

TEST_F(SymbolsTest, LinkCheckFlagsUndefined) {
  elf::Object exe = make_executable({});
  exe.symbols.push_back(Symbol{"nowhere", SymbolBinding::Global, false});
  install_object(fs_, "/bin/app", exe);
  const auto result = link_check(fs_, "/bin/app", {});
  EXPECT_FALSE(result.ok);
  ASSERT_EQ(result.undefined.size(), 1u);
  EXPECT_EQ(result.undefined[0], "nowhere");
}

}  // namespace
}  // namespace depchaos::loader
