// Tests for the extension features: the Guix-style per-application loader
// cache (§V-A reference), static linking (§III-B), the store rebuild
// cascade (§II-D), and the HPC recipe corpus (intro claim).

#include <gtest/gtest.h>

#include "depchaos/elf/patcher.hpp"
#include "depchaos/loader/static_link.hpp"
#include "depchaos/loader/symbols.hpp"
#include "depchaos/pkg/store.hpp"
#include "depchaos/shrinkwrap/ldcache.hpp"
#include "depchaos/shrinkwrap/shrinkwrap.hpp"
#include "depchaos/spack/install.hpp"
#include "depchaos/workload/emacs.hpp"
#include "depchaos/workload/spackrepo.hpp"

namespace depchaos {
namespace {

using elf::install_object;
using elf::make_executable;
using elf::make_library;

// ------------------------------------------------------- app loader cache

class LdCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fs_.mkdir_p("/store/empty");
    install_object(fs_, "/store/b/libb.so", make_library("libb.so"));
    install_object(fs_, "/store/a/liba.so",
                   make_library("liba.so", {"libb.so"}));
    install_object(fs_, "/bin/app",
                   make_executable({"liba.so"}, {},
                                   {"/store/empty", "/store/a", "/store/b"}));
  }

  loader::Loader cache_loader() {
    loader::SearchConfig config;
    config.use_app_cache = true;
    return loader::Loader(fs_, config);
  }

  vfs::FileSystem fs_;
};

TEST_F(LdCacheTest, WriterProducesEntries) {
  loader::Loader loader(fs_);
  const auto report = shrinkwrap::make_loader_cache(fs_, loader, "/bin/app");
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.cache_path, "/bin/app.ldcache");
  EXPECT_GE(report.entries, 2u);
  EXPECT_TRUE(fs_.exists("/bin/app.ldcache"));
}

TEST_F(LdCacheTest, CacheEliminatesSearchProbes) {
  loader::Loader plain(fs_);
  const auto before = plain.load("/bin/app");
  ASSERT_TRUE(before.success);

  loader::Loader writer(fs_);
  ASSERT_TRUE(shrinkwrap::make_loader_cache(fs_, writer, "/bin/app").ok());
  auto cached = cache_loader();
  const auto after = cached.load("/bin/app");
  ASSERT_TRUE(after.success);
  EXPECT_EQ(after.load_order[1].how, loader::HowFound::AppCache);
  EXPECT_LT(after.stats.failed_probes, before.stats.failed_probes);
  EXPECT_LE(after.stats.metadata_calls(), before.stats.metadata_calls());
}

TEST_F(LdCacheTest, BinaryIsUntouched) {
  const auto before = elf::read_object(fs_, "/bin/app");
  loader::Loader loader(fs_);
  ASSERT_TRUE(shrinkwrap::make_loader_cache(fs_, loader, "/bin/app").ok());
  EXPECT_EQ(elf::read_object(fs_, "/bin/app"), before);
}

TEST_F(LdCacheTest, StaleEntryFallsBackToSearch) {
  loader::Loader writer(fs_);
  ASSERT_TRUE(shrinkwrap::make_loader_cache(fs_, writer, "/bin/app").ok());
  // Move liba: the cache now points at a dead path.
  fs_.rename("/store/a/liba.so", "/store/b/liba.so");
  auto cached = cache_loader();
  const auto report = cached.load("/bin/app");
  ASSERT_TRUE(report.success);
  EXPECT_EQ(report.find_loaded("liba.so")->path, "/store/b/liba.so");
  EXPECT_NE(report.find_loaded("liba.so")->how, loader::HowFound::AppCache);
}

TEST_F(LdCacheTest, MissingCacheFileIsHarmless) {
  auto cached = cache_loader();
  const auto report = cached.load("/bin/app");
  EXPECT_TRUE(report.success);  // one wasted open, then the normal search
}

TEST_F(LdCacheTest, LosingTheSideFileLosesTheBenefit) {
  // The trade-off vs Shrinkwrap: the mapping lives OUTSIDE the binary.
  loader::Loader writer(fs_);
  ASSERT_TRUE(shrinkwrap::make_loader_cache(fs_, writer, "/bin/app").ok());
  fs_.remove("/bin/app.ldcache");
  auto cached = cache_loader();
  const auto report = cached.load("/bin/app");
  ASSERT_TRUE(report.success);
  EXPECT_NE(report.load_order[1].how, loader::HowFound::AppCache);
}

// ----------------------------------------------------------- static link

class StaticLinkTest : public ::testing::Test {
 protected:
  void SetUp() override {
    elf::Object lib = make_library("liba.so");
    lib.symbols.push_back(
        elf::Symbol{"compute", elf::SymbolBinding::Global, true});
    lib.extra_size = 1000;
    install_object(fs_, "/l/liba.so", lib);
    elf::Object exe = make_executable({"liba.so"}, {}, {"/l"});
    exe.symbols.push_back(
        elf::Symbol{"compute", elf::SymbolBinding::Global, false});
    exe.extra_size = 5000;
    install_object(fs_, "/bin/app", exe);
  }
  vfs::FileSystem fs_;
};

TEST_F(StaticLinkTest, ProducesSelfContainedImage) {
  const auto result = loader::static_link(fs_, "/bin/app", {"/l/liba.so"});
  ASSERT_TRUE(result.ok);
  EXPECT_TRUE(result.merged.dyn.needed.empty());
  EXPECT_TRUE(result.merged.interp.empty());
  EXPECT_TRUE(result.merged.defines("compute"));
  EXPECT_GE(result.image_size, 6000u);  // both components folded in
}

TEST_F(StaticLinkTest, StaticImageLoadsWithOneOpen) {
  const auto result = loader::static_link(fs_, "/bin/app", {"/l/liba.so"});
  ASSERT_TRUE(result.ok);
  install_object(fs_, "/bin/app-static", result.merged);
  loader::Loader loader(fs_);
  const auto report = loader.load("/bin/app-static");
  ASSERT_TRUE(report.success);
  EXPECT_EQ(report.load_order.size(), 1u);
  EXPECT_EQ(report.stats.open_calls, 1u);
}

TEST_F(StaticLinkTest, DuplicateStrongSymbolsFailTheLink) {
  elf::Object other = make_library("libb.so");
  other.symbols.push_back(
      elf::Symbol{"compute", elf::SymbolBinding::Global, true});
  install_object(fs_, "/l/libb.so", other);
  const auto result =
      loader::static_link(fs_, "/bin/app", {"/l/liba.so", "/l/libb.so"});
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.check.duplicate_strong.empty());
}

TEST_F(StaticLinkTest, InterpositionStopsWorking) {
  // §III-B: "Changing to fully static linking breaks all of these tools."
  const auto result = loader::static_link(fs_, "/bin/app", {"/l/liba.so"});
  ASSERT_TRUE(result.ok);
  install_object(fs_, "/bin/app-static", result.merged);
  elf::Object tool = make_library("libwrap.so");
  tool.symbols.push_back(
      elf::Symbol{"compute", elf::SymbolBinding::Global, true});
  install_object(fs_, "/usr/lib/libwrap.so", tool);

  loader::Loader loader(fs_);
  loader::Environment env;
  env.ld_preload = {"libwrap.so"};
  const auto bind = loader::bind_symbols(loader.load("/bin/app-static", env));
  // The static image has no undefined references: nothing binds to the tool.
  EXPECT_TRUE(bind.bindings.empty());
}

TEST_F(StaticLinkTest, SystemCostBlowup) {
  // Three binaries sharing one big libc: dynamic keeps one copy.
  const std::vector<std::uint64_t> bin_sizes = {100, 100, 100};
  const std::vector<std::vector<std::size_t>> deps = {{0}, {0}, {0}};
  const std::vector<std::uint64_t> lib_sizes = {1000};
  const auto cost = loader::estimate_system_cost(bin_sizes, deps, lib_sizes);
  EXPECT_EQ(cost.dynamic_bytes, 300u + 1000u);
  EXPECT_EQ(cost.static_bytes, 300u + 3000u);
  EXPECT_GT(cost.blowup(), 2.5);
}

// ------------------------------------------------------- rebuild cascade

TEST(RebuildCascade, DominoEffectThroughTheGraph) {
  vfs::FileSystem fs;
  pkg::store::Store store(fs);
  auto mk = [&](const std::string& name, std::vector<std::string> deps) {
    pkg::store::PackageSpec spec;
    spec.name = name;
    spec.version = "1";
    spec.deps = std::move(deps);
    elf::Object lib = make_library("lib" + name + ".so");
    lib.extra_size = 10000;
    spec.files.push_back(
        pkg::store::StoreFile{"lib/lib" + name + ".so", lib, ""});
    return store.add(spec).prefix;
  };
  const auto zlib = mk("zlib", {});
  const auto curl = mk("curl", {zlib});
  const auto cmake_pkg = mk("cmake", {curl});
  const auto standalone = mk("standalone", {});

  const auto affected = store.dependents_closure(zlib);
  EXPECT_EQ(affected.size(), 2u);  // curl + cmake, not standalone
  EXPECT_TRUE(std::find(affected.begin(), affected.end(), curl) !=
              affected.end());
  EXPECT_TRUE(std::find(affected.begin(), affected.end(), cmake_pkg) !=
              affected.end());
  EXPECT_TRUE(std::find(affected.begin(), affected.end(), standalone) ==
              affected.end());

  // Rebuild bytes cover zlib itself plus both dependents.
  EXPECT_GE(store.rebuild_bytes(zlib), 3u * 10000u);
  EXPECT_LT(store.rebuild_bytes(standalone), 2u * 10000u);
}

TEST(RebuildCascade, LeafUpdateTouchesOnlyItself) {
  vfs::FileSystem fs;
  pkg::store::Store store(fs);
  pkg::store::PackageSpec spec;
  spec.name = "leaf";
  spec.version = "1";
  spec.files.push_back(
      pkg::store::StoreFile{"lib/libleaf.so", make_library("libleaf.so"), ""});
  const auto& leaf = store.add(spec);
  EXPECT_TRUE(store.dependents_closure(leaf.prefix).empty());
}

// ---------------------------------------------------------- recipe corpus

TEST(HpcRepo, CoreRecipesAllParse) {
  spack::Repo repo;
  for (const auto& source : workload::core_hpc_recipes()) {
    EXPECT_NO_THROW(repo.add_package_py(source));
  }
  EXPECT_NE(repo.find("axom"), nullptr);
  EXPECT_NE(repo.find("py-numpy"), nullptr);  // CamelCase conversion
  EXPECT_TRUE(repo.is_virtual("mpi"));
}

TEST(HpcRepo, AxomClosureExceedsTwoHundred) {
  const auto repo = workload::build_hpc_repo();
  spack::ConcretizerOptions options;
  options.virtual_defaults["mpi"] = "openmpi";
  const spack::Concretizer concretizer(repo, options);
  const auto dag = concretizer.concretize("axom");
  EXPECT_GT(dag.size(), 200u);  // the paper's intro claim
}

TEST(HpcRepo, VariantsSteerTheClosure) {
  const auto repo = workload::build_hpc_repo();
  spack::ConcretizerOptions options;
  options.virtual_defaults["mpi"] = "openmpi";
  const spack::Concretizer concretizer(repo, options);
  const auto with_python = concretizer.concretize("axom+python");
  const auto without_python = concretizer.concretize("axom~python");
  EXPECT_TRUE(with_python.nodes.contains("py-numpy"));
  EXPECT_FALSE(without_python.nodes.contains("py-numpy"));
  EXPECT_LT(without_python.size(), with_python.size());
}

TEST(HpcRepo, SyntheticRecipesDeterministic) {
  workload::SyntheticRepoConfig config;
  config.num_packages = 50;
  EXPECT_EQ(workload::synthetic_recipes(config),
            workload::synthetic_recipes(config));
}

TEST(HpcRepo, InstalledAxomLoadsAndWraps) {
  const auto repo = workload::build_hpc_repo();
  spack::ConcretizerOptions options;
  options.virtual_defaults["mpi"] = "openmpi";
  const spack::Concretizer concretizer(repo, options);
  const auto dag = concretizer.concretize("axom");
  vfs::FileSystem fs;
  pkg::store::Store store(fs, "/spack/store");
  const auto installed = spack::install_dag(store, dag);
  loader::Loader loader(fs);
  ASSERT_TRUE(loader.load(installed.exe_path).success);
  ASSERT_TRUE(shrinkwrap::shrinkwrap(fs, loader, installed.exe_path).ok());
  const auto wrapped = loader.load(installed.exe_path);
  ASSERT_TRUE(wrapped.success);
  EXPECT_EQ(wrapped.stats.metadata_calls(), dag.size() + 1);
}

// -------------------------------------------------------------- disk usage

TEST(DiskUsage, SumsRegularFilesOnly) {
  vfs::FileSystem fs;
  fs.write_file("/d/a", std::string(100, 'x'));
  vfs::FileData big;
  big.declared_size = 5000;
  fs.write_file("/d/sub/b", std::move(big));
  fs.symlink("/d/a", "/d/link");
  EXPECT_EQ(fs.disk_usage("/d"), 5100u);
  EXPECT_EQ(fs.disk_usage("/nonexistent"), 0u);
}

}  // namespace
}  // namespace depchaos
