#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "depchaos/core/world.hpp"
#include "depchaos/elf/patcher.hpp"

namespace depchaos::core {
namespace {

using elf::make_executable;
using elf::make_library;

// Two LoadReports are "byte-identical" when every field a consumer can
// observe matches. (No operator== on the report structs: spell it out.)
void expect_reports_identical(const loader::LoadReport& a,
                              const loader::LoadReport& b) {
  EXPECT_EQ(a.success, b.success);
  ASSERT_EQ(a.load_order.size(), b.load_order.size());
  for (std::size_t i = 0; i < a.load_order.size(); ++i) {
    EXPECT_EQ(a.load_order[i].name, b.load_order[i].name);
    EXPECT_EQ(a.load_order[i].path, b.load_order[i].path);
    EXPECT_EQ(a.load_order[i].real_path, b.load_order[i].real_path);
    EXPECT_EQ(a.load_order[i].requested_by, b.load_order[i].requested_by);
    EXPECT_EQ(a.load_order[i].how, b.load_order[i].how);
    EXPECT_EQ(a.load_order[i].depth, b.load_order[i].depth);
    EXPECT_EQ(a.load_order[i].parent_index, b.load_order[i].parent_index);
  }
  ASSERT_EQ(a.requests.size(), b.requests.size());
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    EXPECT_EQ(a.requests[i].name, b.requests[i].name);
    EXPECT_EQ(a.requests[i].how, b.requests[i].how);
  }
  ASSERT_EQ(a.missing.size(), b.missing.size());
  EXPECT_EQ(a.stats.stat_calls, b.stats.stat_calls);
  EXPECT_EQ(a.stats.open_calls, b.stats.open_calls);
  EXPECT_EQ(a.stats.read_calls, b.stats.read_calls);
  EXPECT_EQ(a.stats.readlink_calls, b.stats.readlink_calls);
  EXPECT_EQ(a.stats.failed_probes, b.stats.failed_probes);
  EXPECT_DOUBLE_EQ(a.stats.sim_time_s, b.stats.sim_time_s);
  EXPECT_EQ(a.probe_log, b.probe_log);
}

// Install `count` independent little applications, each with a private lib
// dir plus one shared system library, and return their exe paths.
std::vector<std::string> install_fleet(WorldBuilder& builder,
                                       std::size_t count) {
  builder.install("/usr/lib/libcommon.so", make_library("libcommon.so"));
  std::vector<std::string> exes;
  for (std::size_t i = 0; i < count; ++i) {
    const std::string n = std::to_string(i);
    builder.install("/apps/a" + n + "/lib/libpriv" + n + ".so",
                    make_library("libpriv" + n + ".so", {"libcommon.so"}));
    builder.install(
        "/apps/a" + n + "/bin/app",
        make_executable({"libpriv" + n + ".so"}, {"/apps/a" + n + "/lib"}));
    exes.push_back("/apps/a" + n + "/bin/app");
  }
  return exes;
}

// ------------------------------------------------------ WorldBuilder basics

TEST(WorldBuilderTest, InstallSetsDefaultTargetAndSessionLoads) {
  auto session = WorldBuilder()
                     .install("/l/libx.so", make_library("libx.so"))
                     .install("/bin/app", make_executable({"libx.so"}, {"/l"}))
                     .build();
  EXPECT_EQ(session.default_exe(), "/bin/app");
  const auto report = session.load();
  ASSERT_TRUE(report.success);
  EXPECT_EQ(report.load_order.size(), 2u);
}

TEST(WorldBuilderTest, ScenarioDispatchMatchesNamedGenerators) {
  WorldBuilder by_name;
  by_name.scenario("emacs");
  EXPECT_TRUE(by_name.emacs_info().has_value());
  EXPECT_FALSE(by_name.default_exe().empty());
  EXPECT_THROW(WorldBuilder().scenario("nope"), Error);
}

TEST(WorldBuilderTest, SnapshotRoundTripPreservesWorldAndReports) {
  workload::EmacsConfig config;
  config.num_deps = 20;
  config.num_dirs = 6;
  WorldBuilder builder;
  builder.emacs(config);
  const std::string exe = builder.default_exe();
  const std::string image = builder.save();

  auto direct = builder.build();
  const auto direct_report = direct.load();

  // Rebuild the same world from the snapshot: same bytes back out, and the
  // same load behaviour.
  WorldBuilder reloaded;
  reloaded.snapshot(image).target(exe);
  EXPECT_EQ(reloaded.save(), image);
  auto session = reloaded.build();
  expect_reports_identical(direct_report, session.load());

  // Session-level snapshot restore too.
  auto from_snap = Session::from_snapshot(image);
  expect_reports_identical(direct_report, from_snap.load(exe));
}

TEST(WorldBuilderTest, SessionSaveRoundTripsAfterMutation) {
  auto session = WorldBuilder()
                     .install("/l/libx.so", make_library("libx.so"))
                     .install("/bin/app", make_executable({"libx.so"}, {"/l"}))
                     .build();
  ASSERT_TRUE(session.shrinkwrap().ok());
  // The wrapped world survives a save/restore: the reloaded binary is still
  // frozen.
  auto restored = Session::from_snapshot(session.save());
  EXPECT_TRUE(restored.verify("/bin/app").ok);
}

// ------------------------------------------------------------ session verbs

TEST(SessionTest, LoadWithoutTargetThrows) {
  auto session = WorldBuilder()
                     .install("/l/libx.so", make_library("libx.so"))
                     .build();
  EXPECT_THROW(session.load(), Error);
}

TEST(SessionTest, ShrinkwrapVerifyLibtreeFlow) {
  auto session = WorldBuilder()
                     .install("/l/libx.so", make_library("libx.so"))
                     .install("/bin/app", make_executable({"libx.so"}, {"/l"}))
                     .build();
  EXPECT_FALSE(session.verify().ok);  // unwrapped: found by search
  ASSERT_TRUE(session.shrinkwrap().ok());
  EXPECT_TRUE(session.verify().ok);
  const std::string tree = session.libtree();
  EXPECT_NE(tree.find("/bin/app"), std::string::npos);
  EXPECT_NE(tree.find("/l/libx.so"), std::string::npos);
}

TEST(SessionTest, SessionEnvironmentAppliesToLoads) {
  loader::Environment env = loader::Environment::with_library_path({"/env"});
  auto session = WorldBuilder()
                     .install("/env/libx.so", make_library("libx.so"))
                     .install("/bin/app", make_executable({"libx.so"}))
                     .environment(env)
                     .build();
  const auto report = session.load();
  ASSERT_TRUE(report.success);
  EXPECT_EQ(report.load_order[1].how, loader::HowFound::LdLibraryPath);
}

TEST(SessionTest, TwoArgShrinkwrapInheritsSessionEnvWhenUnset) {
  // The dependency is findable ONLY through the session's LD_LIBRARY_PATH:
  // an explicit-options wrap must still resolve under it.
  auto session =
      WorldBuilder()
          .install("/env/libx.so", make_library("libx.so"))
          .install("/bin/app", make_executable({"libx.so"}))
          .environment(loader::Environment::with_library_path({"/env"}))
          .build();
  Session::WrapOptions options;
  options.clear_search_paths = false;
  const auto wrap = session.shrinkwrap("", options);
  EXPECT_TRUE(wrap.ok());
  // A non-empty env in the options overrides the session's.
  auto session2 =
      WorldBuilder()
          .install("/env/libx.so", make_library("libx.so"))
          .install("/bin/app", make_executable({"libx.so"}))
          .environment(loader::Environment::with_library_path({"/env"}))
          .build();
  Session::WrapOptions hostile;
  hostile.env = loader::Environment::with_library_path({"/nowhere"});
  EXPECT_FALSE(session2.shrinkwrap("", hostile).ok());
}

TEST(SessionTest, DlopenContinuesReport) {
  auto session = WorldBuilder()
                     .install("/p/libplug.so", make_library("libplug.so"))
                     .install("/bin/app", make_executable({}))
                     .build();
  auto report = session.load();
  const auto plug = session.dlopen(report, "/bin/app", "/p/libplug.so");
  EXPECT_EQ(plug.how, loader::HowFound::AbsolutePath);
  EXPECT_NE(report.find_loaded("/p/libplug.so"), nullptr);
}

TEST(SessionTest, LaunchUsesSessionClusterConfig) {
  workload::PynamicConfig config;
  config.num_modules = 10;
  config.exe_extra_bytes = 0;
  launch::ClusterConfig cluster;
  cluster.init_s = 5.0;
  auto session =
      WorldBuilder().pynamic(config).cluster(cluster).nfs().build();
  const auto result = session.launch(8);
  EXPECT_TRUE(result.load_succeeded);
  EXPECT_GE(result.total_time_s, 5.0);
}

// --------------------------------------------------------------- load_many

TEST(LoadManyTest, ParallelReportsAreByteIdenticalToSerial) {
  WorldBuilder parallel_builder;
  const auto exes = install_fleet(parallel_builder, 12);
  const std::string image = parallel_builder.save();
  auto parallel_session = parallel_builder.build();

  auto serial_session = Session::from_snapshot(image);
  std::vector<loader::LoadReport> serial;
  serial.reserve(exes.size());
  for (const auto& exe : exes) serial.push_back(serial_session.load(exe));

  const auto reports = parallel_session.load_many(exes);
  ASSERT_EQ(reports.size(), exes.size());
  for (std::size_t i = 0; i < exes.size(); ++i) {
    expect_reports_identical(serial[i], reports[i]);
  }
}

TEST(LoadManyTest, RepeatedBatchesAreDeterministic) {
  WorldBuilder builder;
  const auto exes = install_fleet(builder, 8);
  auto session = builder.build();
  const auto first = session.load_many(exes);
  const auto second = session.load_many(exes);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    expect_reports_identical(first[i], second[i]);
  }
}

TEST(LoadManyTest, AggregatesStatDeltasIntoSessionCounters) {
  WorldBuilder builder;
  const auto exes = install_fleet(builder, 6);
  auto session = builder.build();
  const auto before = session.fs().stats();
  const auto reports = session.load_many(exes);
  const auto& after = session.fs().stats();
  std::uint64_t opens = 0, stats = 0, failed = 0;
  for (const auto& report : reports) {
    opens += report.stats.open_calls;
    stats += report.stats.stat_calls;
    failed += report.stats.failed_probes;
  }
  EXPECT_EQ(after.open_calls - before.open_calls, opens);
  EXPECT_EQ(after.stat_calls - before.stat_calls, stats);
  EXPECT_EQ(after.failed_probes - before.failed_probes, failed);
}

TEST(LoadManyTest, WorksWithClonableLatencyModelAndChargesTime) {
  WorldBuilder builder;
  const auto exes = install_fleet(builder, 4);
  auto session = builder.local_disk().build();
  const auto reports = session.load_many(exes);
  for (const auto& report : reports) {
    EXPECT_TRUE(report.success);
    EXPECT_GT(report.stats.sim_time_s, 0.0);
  }
}

TEST(LoadManyTest, EmptyEntriesResolveToDefaultTarget) {
  WorldBuilder builder;
  const auto exes = install_fleet(builder, 2);
  auto session = builder.target(exes[0]).build();
  const std::vector<std::string> batch = {"", exes[1]};
  const auto reports = session.load_many(batch);
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[0].load_order[0].path, exes[0]);
  EXPECT_EQ(reports[1].load_order[0].path, exes[1]);
}

TEST(LoadManyTest, MissingExecutableInBatchThrows) {
  WorldBuilder builder;
  const auto exes = install_fleet(builder, 3);
  auto session = builder.build();
  std::vector<std::string> batch = exes;
  batch.emplace_back("/bin/does-not-exist");
  EXPECT_THROW(session.load_many(batch), FsError);
}

// ----------------------------------------- dialect policies (Fig 5 dedup)

// The Fig 5 layout: the executable needs two libraries by absolute path;
// one of them transitively requests the other by bare soname.
void install_fig5(WorldBuilder& builder) {
  builder
      .install("/store/libac.so", make_library("libac.so"))
      .install("/store/libxyz.so", make_library("libxyz.so", {"libac.so"}))
      .install("/bin/app",
               make_executable({"/store/libac.so", "/store/libxyz.so"}));
}

TEST(SearchPolicyTest, GlibcPolicySatisfiesBareSonameFromDedupCache) {
  WorldBuilder builder;
  install_fig5(builder);
  auto session =
      builder.policy(std::make_shared<loader::GlibcPolicy>()).build();
  const auto report = session.load();
  ASSERT_TRUE(report.success);
  EXPECT_EQ(report.load_order.size(), 3u);  // no duplicate libac
  EXPECT_EQ(report.requests.back().name, "libac.so");
  EXPECT_EQ(report.requests.back().how, loader::HowFound::Cache);
}

TEST(SearchPolicyTest, MuslPolicyDoesNotDedupBySoname) {
  WorldBuilder builder;
  install_fig5(builder);
  auto session =
      builder.policy(std::make_shared<loader::MuslPolicy>()).build();
  const auto report = session.load();
  EXPECT_FALSE(report.success);
  ASSERT_EQ(report.missing.size(), 1u);
  EXPECT_EQ(report.missing[0].name, "libac.so");
}

TEST(SearchPolicyTest, DialectEnumRoutesToBuiltInPolicies) {
  EXPECT_EQ(loader::SearchPolicy::for_dialect(loader::Dialect::Glibc).name(),
            "glibc");
  EXPECT_EQ(loader::SearchPolicy::for_dialect(loader::Dialect::Musl).name(),
            "musl");
  EXPECT_EQ(loader::SearchPolicy::dialect_of(loader::SearchPolicy::glibc()),
            loader::Dialect::Glibc);
  EXPECT_EQ(loader::SearchPolicy::dialect_of(loader::SearchPolicy::musl()),
            loader::Dialect::Musl);

  WorldBuilder builder;
  install_fig5(builder);
  auto session = builder.dialect(loader::Dialect::Musl).build();
  EXPECT_EQ(session.policy().name(), "musl");
  EXPECT_EQ(session.loader().dialect(), loader::Dialect::Musl);
  EXPECT_FALSE(session.load().success);
}

// A custom policy: glibc search semantics but musl's strict dedup. Proves
// the seam is pluggable — this hybrid cannot be expressed with the enum.
class StrictDedupGlibc : public loader::GlibcPolicy {
 public:
  std::string_view name() const override { return "glibc-strict-dedup"; }
  bool dedups_by_soname() const override { return false; }
};

TEST(SearchPolicyTest, CustomHybridPolicyPlugsIn) {
  WorldBuilder builder;
  install_fig5(builder);
  auto session = builder.policy(std::make_shared<StrictDedupGlibc>()).build();
  EXPECT_EQ(session.policy().name(), "glibc-strict-dedup");
  // Glibc search order, but the bare-soname request no longer hits the
  // dedup cache -> the Fig 5 load breaks exactly like musl.
  const auto report = session.load();
  EXPECT_FALSE(report.success);
  ASSERT_EQ(report.missing.size(), 1u);
  EXPECT_EQ(report.missing[0].name, "libac.so");
}

}  // namespace
}  // namespace depchaos::core
