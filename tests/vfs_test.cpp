#include <gtest/gtest.h>

#include "depchaos/vfs/vfs.hpp"

namespace depchaos::vfs {
namespace {

// ------------------------------------------------------------ path utils

TEST(Paths, NormalizeCollapsesAndResolvesDots) {
  EXPECT_EQ(normalize_path("/a//b/./c/../d"), "/a/b/d");
  EXPECT_EQ(normalize_path("/"), "/");
  EXPECT_EQ(normalize_path("/.."), "/");
  EXPECT_EQ(normalize_path("/a/"), "/a");
}

TEST(Paths, NormalizeRejectsRelative) {
  EXPECT_THROW(normalize_path("a/b"), FsError);
  EXPECT_THROW(normalize_path(""), FsError);
}

TEST(Paths, NormalizeDotDotPastRootClampsAtRoot) {
  EXPECT_EQ(normalize_path("/../.."), "/");
  EXPECT_EQ(normalize_path("/../a"), "/a");
  EXPECT_EQ(normalize_path("/a/../../../b"), "/b");
  EXPECT_EQ(normalize_path("/../../../../usr/lib"), "/usr/lib");
}

TEST(Paths, NormalizeTrailingSlashes) {
  EXPECT_EQ(normalize_path("/a/b/"), "/a/b");
  EXPECT_EQ(normalize_path("/a/b///"), "/a/b");
  EXPECT_EQ(normalize_path("//"), "/");
  EXPECT_EQ(normalize_path("/a/../"), "/");
}

TEST(Paths, NormalizeRepeatedSlashes) {
  EXPECT_EQ(normalize_path("//a////b//c"), "/a/b/c");
  EXPECT_EQ(normalize_path("///"), "/");
  EXPECT_EQ(normalize_path("//usr//..//lib"), "/lib");
}

TEST(Paths, NormalizeLoneDot) {
  EXPECT_EQ(normalize_path("/."), "/");
  EXPECT_EQ(normalize_path("/./"), "/");
  EXPECT_EQ(normalize_path("/././."), "/");
  EXPECT_EQ(normalize_path("/a/./b"), "/a/b");
  EXPECT_EQ(normalize_path("/a/."), "/a");
}

// The interner must agree with normalize_path byte-for-byte: charged
// syscall strings come from PathTable::str now.
TEST(Paths, InternMatchesNormalizePath) {
  FileSystem fs;
  for (const char* path :
       {"/a//b/./c/../d", "/", "/..", "/a/", "/../..", "/a/../../../b",
        "//a////b//c", "/././.", "/a/./b", "/usr/lib/libx.so"}) {
    EXPECT_EQ(fs.paths().str(fs.intern(path)), normalize_path(path)) << path;
  }
  EXPECT_THROW(fs.intern("relative/path"), FsError);
  EXPECT_THROW(fs.intern(""), FsError);
}

TEST(Paths, DirnameBasename) {
  EXPECT_EQ(dirname("/a/b/c"), "/a/b");
  EXPECT_EQ(dirname("/a"), "/");
  EXPECT_EQ(basename("/a/b/c"), "c");
  EXPECT_EQ(basename("/"), "/");
}

// ---------------------------------------------------------------- basics

TEST(Vfs, WriteAndPeek) {
  FileSystem fs;
  fs.write_file("/usr/lib/libx.so", std::string("content"));
  const FileData* data = fs.peek("/usr/lib/libx.so");
  ASSERT_NE(data, nullptr);
  EXPECT_EQ(data->bytes, "content");
}

TEST(Vfs, MkdirPIdempotent) {
  FileSystem fs;
  fs.mkdir_p("/a/b/c");
  fs.mkdir_p("/a/b/c");
  EXPECT_TRUE(fs.exists("/a/b/c"));
}

TEST(Vfs, WriteCreatesParents) {
  FileSystem fs;
  fs.write_file("/deep/nested/dir/file", std::string("x"));
  EXPECT_TRUE(fs.exists("/deep/nested/dir"));
}

TEST(Vfs, OverwriteReplacesContent) {
  FileSystem fs;
  fs.write_file("/f", std::string("old"));
  fs.write_file("/f", std::string("new"));
  EXPECT_EQ(fs.peek("/f")->bytes, "new");
}

TEST(Vfs, WriteOverDirectoryThrows) {
  FileSystem fs;
  fs.mkdir_p("/d");
  EXPECT_THROW(fs.write_file("/d", std::string("x")), FsError);
}

TEST(Vfs, DeclaredSizeModelsLargeBinaries) {
  FileSystem fs;
  FileData data;
  data.bytes = "small";
  data.declared_size = 213ull << 20;
  fs.write_file("/big", std::move(data));
  const auto st = fs.stat("/big");
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(st->size, 213ull << 20);
}

TEST(Vfs, ListDirInsertionOrder) {
  FileSystem fs;
  fs.write_file("/d/z", std::string("1"));
  fs.write_file("/d/a", std::string("2"));
  fs.write_file("/d/m", std::string("3"));
  const auto names = fs.list_dir("/d");
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "z");
  EXPECT_EQ(names[1], "a");
  EXPECT_EQ(names[2], "m");
}

TEST(Vfs, ListDirOnFileThrows) {
  FileSystem fs;
  fs.write_file("/f", std::string("x"));
  EXPECT_THROW(fs.list_dir("/f"), FsError);
}

// --------------------------------------------------------------- symlinks

TEST(Vfs, SymlinkResolvesOnStat) {
  FileSystem fs;
  fs.write_file("/target/file", std::string("x"));
  fs.symlink("/target/file", "/link");
  const auto st = fs.stat("/link");
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(st->type, NodeType::Regular);
}

TEST(Vfs, LstatDoesNotFollow) {
  FileSystem fs;
  fs.write_file("/t", std::string("x"));
  fs.symlink("/t", "/l");
  const auto st = fs.lstat("/l");
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(st->type, NodeType::Symlink);
}

TEST(Vfs, RelativeSymlinkTarget) {
  FileSystem fs;
  fs.write_file("/a/b/real", std::string("x"));
  fs.symlink("real", "/a/b/alias");
  EXPECT_EQ(fs.peek("/a/b/alias")->bytes, "x");
}

TEST(Vfs, RelativeSymlinkWithDotDot) {
  FileSystem fs;
  fs.write_file("/pkg/lib/libx.so", std::string("x"));
  fs.symlink("../lib/libx.so", "/pkg/bin/libx.so");
  EXPECT_EQ(fs.peek("/pkg/bin/libx.so")->bytes, "x");
}

TEST(Vfs, SymlinkChain) {
  FileSystem fs;
  fs.write_file("/real", std::string("x"));
  fs.symlink("/real", "/l1");
  fs.symlink("/l1", "/l2");
  fs.symlink("/l2", "/l3");
  EXPECT_EQ(fs.realpath("/l3").value(), "/real");
}

TEST(Vfs, SymlinkLoopDetected) {
  FileSystem fs;
  fs.symlink("/b", "/a");
  fs.symlink("/a", "/b");
  EXPECT_FALSE(fs.exists("/a"));
  EXPECT_FALSE(fs.realpath("/a").has_value());
}

TEST(Vfs, SymlinkedDirectoryTraversal) {
  FileSystem fs;
  fs.write_file("/store/pkg1/lib/libx.so", std::string("x"));
  fs.symlink("/store/pkg1", "/current");
  EXPECT_TRUE(fs.exists("/current/lib/libx.so"));
  EXPECT_EQ(fs.realpath("/current/lib/libx.so").value(),
            "/store/pkg1/lib/libx.so");
}

TEST(Vfs, DanglingSymlinkStatMisses) {
  FileSystem fs;
  fs.symlink("/nowhere", "/l");
  EXPECT_FALSE(fs.stat("/l").has_value());
  EXPECT_TRUE(fs.lstat("/l").has_value());
}

TEST(Vfs, SymlinkOverExistingThrows) {
  FileSystem fs;
  fs.write_file("/f", std::string("x"));
  EXPECT_THROW(fs.symlink("/t", "/f"), FsError);
}

// ------------------------------------------------------ remove and rename

TEST(Vfs, RemoveFile) {
  FileSystem fs;
  fs.write_file("/f", std::string("x"));
  fs.remove("/f");
  EXPECT_FALSE(fs.exists("/f"));
}

TEST(Vfs, RemoveNonEmptyDirRequiresRecursive) {
  FileSystem fs;
  fs.write_file("/d/f", std::string("x"));
  EXPECT_THROW(fs.remove("/d"), FsError);
  fs.remove("/d", /*recursive=*/true);
  EXPECT_FALSE(fs.exists("/d"));
}

TEST(Vfs, RemoveUpdatesInodeCount) {
  FileSystem fs;
  const auto before = fs.inode_count();
  fs.write_file("/d/f", std::string("x"));
  EXPECT_EQ(fs.inode_count(), before + 2);  // dir + file
  fs.remove("/d", true);
  EXPECT_EQ(fs.inode_count(), before);
}

TEST(Vfs, RenameMovesSubtree) {
  FileSystem fs;
  fs.write_file("/old/sub/f", std::string("x"));
  fs.rename("/old", "/new");
  EXPECT_FALSE(fs.exists("/old"));
  EXPECT_EQ(fs.peek("/new/sub/f")->bytes, "x");
}

TEST(Vfs, RenameReplacesFile) {
  FileSystem fs;
  fs.write_file("/a", std::string("A"));
  fs.write_file("/b", std::string("B"));
  fs.rename("/a", "/b");
  EXPECT_FALSE(fs.exists("/a"));
  EXPECT_EQ(fs.peek("/b")->bytes, "A");
}

TEST(Vfs, RenameReplacesSymlinkAtomically) {
  // The store model's profile flip: rename a symlink over a symlink.
  FileSystem fs;
  fs.mkdir_p("/gen1");
  fs.mkdir_p("/gen2");
  fs.symlink("/gen1", "/profiles/current");
  fs.symlink("/gen2", "/profiles/.tmp");
  fs.rename("/profiles/.tmp", "/profiles/current");
  EXPECT_EQ(fs.realpath("/profiles/current").value(), "/gen2");
}

TEST(Vfs, RenameOverDirectoryThrows) {
  FileSystem fs;
  fs.write_file("/f", std::string("x"));
  fs.mkdir_p("/d");
  EXPECT_THROW(fs.rename("/f", "/d"), FsError);
}

// ----------------------------------------------------- syscall accounting

TEST(Vfs, StatCountsAndClassifiesFailures) {
  FileSystem fs;
  fs.write_file("/f", std::string("x"));
  fs.reset_stats();
  (void)fs.stat("/f");
  (void)fs.stat("/missing");
  EXPECT_EQ(fs.stats().stat_calls, 2u);
  EXPECT_EQ(fs.stats().failed_probes, 1u);
}

TEST(Vfs, OpenCountsSeparatelyFromStat) {
  FileSystem fs;
  fs.write_file("/f", std::string("x"));
  fs.reset_stats();
  (void)fs.open("/f");
  EXPECT_EQ(fs.stats().open_calls, 1u);
  EXPECT_EQ(fs.stats().stat_calls, 0u);
}

TEST(Vfs, OpenOnDirectoryIsFailedProbe) {
  FileSystem fs;
  fs.mkdir_p("/d");
  fs.reset_stats();
  EXPECT_EQ(fs.open("/d"), nullptr);
  EXPECT_EQ(fs.stats().failed_probes, 1u);
}

TEST(Vfs, PeekIsUncounted) {
  FileSystem fs;
  fs.write_file("/f", std::string("x"));
  fs.reset_stats();
  (void)fs.peek("/f");
  EXPECT_EQ(fs.stats().metadata_calls(), 0u);
}

TEST(Vfs, CountingToggleSuppressesEverything) {
  FileSystem fs;
  fs.set_latency_model(std::make_shared<LocalDiskModel>());
  fs.write_file("/f", std::string("x"));
  fs.reset_stats();
  fs.set_counting(false);
  (void)fs.stat("/f");
  (void)fs.open("/missing");
  fs.set_counting(true);
  EXPECT_EQ(fs.stats().metadata_calls(), 0u);
  EXPECT_EQ(fs.stats().sim_time_s, 0.0);
}

// ---------------------------------------------------------- latency models

TEST(Latency, LocalDiskUniformCosts) {
  FileSystem fs;
  fs.set_latency_model(std::make_shared<LocalDiskModel>());
  fs.write_file("/f", std::string("x"));
  fs.reset_stats();
  (void)fs.stat("/f");
  const double first = fs.stats().sim_time_s;
  (void)fs.stat("/f");
  EXPECT_DOUBLE_EQ(fs.stats().sim_time_s, 2 * first);
}

TEST(Latency, NfsColdThenWarm) {
  FileSystem fs;
  auto nfs = std::make_shared<NfsModel>();
  fs.set_latency_model(nfs);
  fs.write_file("/f", std::string("x"));
  fs.reset_stats();
  (void)fs.stat("/f");
  const double cold = fs.stats().sim_time_s;
  (void)fs.stat("/f");
  const double warm_delta = fs.stats().sim_time_s - cold;
  EXPECT_GT(cold, warm_delta * 10);
}

TEST(Latency, NfsNegativeCachingOffRepays) {
  FileSystem fs;
  auto nfs = std::make_shared<NfsModel>();  // negative_caching = false
  fs.set_latency_model(nfs);
  fs.reset_stats();
  (void)fs.stat("/missing");
  const double first = fs.stats().sim_time_s;
  (void)fs.stat("/missing");
  EXPECT_DOUBLE_EQ(fs.stats().sim_time_s, 2 * first);
}

TEST(Latency, NfsNegativeCachingOnAmortizes) {
  FileSystem fs;
  NfsModel::Params params;
  params.negative_caching = true;
  fs.set_latency_model(std::make_shared<NfsModel>(params));
  fs.reset_stats();
  (void)fs.stat("/missing");
  const double first = fs.stats().sim_time_s;
  (void)fs.stat("/missing");
  const double second = fs.stats().sim_time_s - first;
  EXPECT_LT(second, first / 10);
}

TEST(Latency, ClearCachesRestoresColdCost) {
  FileSystem fs;
  auto nfs = std::make_shared<NfsModel>();
  fs.set_latency_model(nfs);
  fs.write_file("/f", std::string("x"));
  fs.reset_stats();
  (void)fs.stat("/f");
  const double cold = fs.stats().sim_time_s;
  fs.clear_caches();
  fs.reset_stats();
  (void)fs.stat("/f");
  EXPECT_DOUBLE_EQ(fs.stats().sim_time_s, cold);
}

TEST(Latency, ServerRoundTripsTracked) {
  FileSystem fs;
  auto nfs = std::make_shared<NfsModel>();
  fs.set_latency_model(nfs);
  fs.write_file("/f", std::string("x"));
  (void)fs.stat("/f");
  (void)fs.stat("/f");
  EXPECT_EQ(nfs->server_round_trips(), 1u);
}

// ----------------------------------------------------------- dentry cache

TEST(Vfs, DentryCacheIsObservablyTransparent) {
  FileSystem fs;
  fs.write_file("/usr/lib/libx.so", std::string("x"));
  fs.symlink("libx.so", "/usr/lib/libx.so.1");
  fs.symlink("/usr/lib", "/lib64x");
  fs.symlink("loop_b", "/loops/loop_a");
  fs.symlink("loop_a", "/loops/loop_b");
  FileSystem uncached(fs);  // deep copy: identical world and counters
  uncached.set_dentry_cache(false);
  ASSERT_TRUE(fs.dentry_cache_enabled());
  ASSERT_FALSE(uncached.dentry_cache_enabled());

  const std::vector<std::string> probes = {
      "/usr/lib/libx.so",  "/usr/lib/libx.so.1", "/lib64x/libx.so.1",
      "/usr/lib/missing",  "/loops/loop_a",      "/nope/deep/path",
      "/lib64x/../lib64x/libx.so"};
  for (int round = 0; round < 3; ++round) {
    for (const auto& probe : probes) {
      const auto a = fs.stat(probe);
      const auto b = uncached.stat(probe);
      ASSERT_EQ(a.has_value(), b.has_value()) << probe;
      if (a.has_value()) {
        EXPECT_EQ(a->ino, b->ino) << probe;
        EXPECT_EQ(a->size, b->size) << probe;
      }
      EXPECT_EQ(fs.realpath(probe), uncached.realpath(probe)) << probe;
      EXPECT_EQ(fs.open(probe) != nullptr, uncached.open(probe) != nullptr);
    }
  }
  // Byte-identical accounting either way.
  EXPECT_EQ(fs.stats().stat_calls, uncached.stats().stat_calls);
  EXPECT_EQ(fs.stats().open_calls, uncached.stats().open_calls);
  EXPECT_EQ(fs.stats().failed_probes, uncached.stats().failed_probes);
}

TEST(Vfs, DentryCacheInvalidatedByMutations) {
  FileSystem fs;
  fs.write_file("/usr/lib/libx.so", std::string("x"));
  // Warm the cache with positive and negative entries.
  EXPECT_TRUE(fs.stat("/usr/lib/libx.so").has_value());
  EXPECT_FALSE(fs.stat("/usr/lib/libnew.so").has_value());
  // Creation flips a cached negative...
  fs.write_file("/usr/lib/libnew.so", std::string("n"));
  EXPECT_TRUE(fs.stat("/usr/lib/libnew.so").has_value());
  // ...removal flips a cached positive...
  fs.remove("/usr/lib/libx.so");
  EXPECT_FALSE(fs.stat("/usr/lib/libx.so").has_value());
  // ...and rename flips both sides at once.
  fs.rename("/usr/lib/libnew.so", "/usr/lib/libx.so");
  EXPECT_TRUE(fs.stat("/usr/lib/libx.so").has_value());
  EXPECT_FALSE(fs.stat("/usr/lib/libnew.so").has_value());
  // Symlink retargeting through remove+recreate is also visible.
  fs.symlink("libx.so", "/usr/lib/liblink.so");
  EXPECT_EQ(fs.realpath("/usr/lib/liblink.so"), "/usr/lib/libx.so");
  fs.remove("/usr/lib/liblink.so");
  fs.symlink("/elsewhere", "/usr/lib/liblink.so");
  EXPECT_FALSE(fs.stat("/usr/lib/liblink.so").has_value());  // dangling now
}

}  // namespace
}  // namespace depchaos::vfs
