// Parser robustness sweeps: hostile/garbled inputs must produce typed
// exceptions (or clean skips), never crashes or hangs. Random inputs are
// generated per-seed via TEST_P.

#include <gtest/gtest.h>

#include "depchaos/elf/object.hpp"
#include "depchaos/pkg/deb.hpp"
#include "depchaos/spack/dsl.hpp"
#include "depchaos/spack/spec.hpp"
#include "depchaos/support/rng.hpp"
#include "depchaos/vfs/snapshot.hpp"

namespace depchaos {
namespace {

std::string random_text(support::Rng& rng, std::size_t max_len) {
  static constexpr char kAlphabet[] =
      "abcXYZ0129 \t\n()[]{}\"'=,.:@%+~^/\\#$_-";
  std::string out;
  const std::size_t len = rng.below(max_len);
  for (std::size_t i = 0; i < len; ++i) {
    out += kAlphabet[rng.below(sizeof(kAlphabet) - 1)];
  }
  return out;
}

class FuzzishTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzishTest, SelfParserNeverCrashes) {
  support::Rng rng(GetParam());
  for (int trial = 0; trial < 300; ++trial) {
    std::string input = rng.chance(0.5) ? "SELF1\n" : "";
    input += random_text(rng, 200);
    try {
      (void)elf::parse(input);
    } catch (const Error&) {
      // typed failure is the contract
    }
  }
}

TEST_P(FuzzishTest, SelfParserSurvivesMutatedValidImages) {
  support::Rng rng(GetParam());
  const std::string valid = elf::serialize(elf::make_library(
      "libx.so", {"liba.so", "libb.so"}, {"/r1"}, {"/r2"}));
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = valid;
    const std::size_t edits = 1 + rng.below(4);
    for (std::size_t e = 0; e < edits; ++e) {
      const std::size_t at = rng.below(mutated.size());
      switch (rng.below(3)) {
        case 0:
          mutated[at] = static_cast<char>('!' + rng.below(90));
          break;
        case 1:
          mutated.erase(at, 1);
          break;
        default:
          mutated.insert(at, 1, '\n');
          break;
      }
    }
    try {
      (void)elf::parse(mutated);
    } catch (const Error&) {
    }
  }
}

TEST_P(FuzzishTest, DebControlParserNeverCrashes) {
  support::Rng rng(GetParam() + 1);
  for (int trial = 0; trial < 300; ++trial) {
    try {
      (void)pkg::deb::parse_control(random_text(rng, 300));
    } catch (const Error&) {
    }
  }
}

TEST_P(FuzzishTest, SpecParserNeverCrashes) {
  support::Rng rng(GetParam() + 2);
  for (int trial = 0; trial < 500; ++trial) {
    try {
      (void)spack::Spec::parse(random_text(rng, 60));
    } catch (const Error&) {
    }
  }
}

TEST_P(FuzzishTest, PackagePyParserNeverCrashes) {
  support::Rng rng(GetParam() + 3);
  for (int trial = 0; trial < 200; ++trial) {
    std::string source = rng.chance(0.6) ? "class X(Package):\n" : "";
    source += random_text(rng, 400);
    try {
      (void)spack::parse_package_py(source);
    } catch (const Error&) {
    }
  }
}

TEST_P(FuzzishTest, SnapshotLoaderNeverCrashes) {
  support::Rng rng(GetParam() + 4);
  for (int trial = 0; trial < 200; ++trial) {
    std::string image = rng.chance(0.7) ? "DCWORLD1\n" : "";
    image += random_text(rng, 300);
    try {
      (void)vfs::load_world(image);
    } catch (const Error&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzishTest,
                         ::testing::Values(0xf001, 0xf002, 0xf003, 0xf004));

}  // namespace
}  // namespace depchaos
