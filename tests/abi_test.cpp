// Symbol versioning, ABI diffing, and the §III-A administrator swap
// scenario (buggy-but-compatible 4.3.0 -> 4.3.1 via symlink, validated by
// abi_diff first).

#include <gtest/gtest.h>

#include "depchaos/elf/abi.hpp"
#include "depchaos/elf/patcher.hpp"
#include "depchaos/loader/loader.hpp"
#include "depchaos/loader/symbols.hpp"

namespace depchaos::elf {
namespace {

Object lib_with_exports(
    const std::string& soname,
    const std::vector<std::pair<std::string, std::string>>& exports) {
  Object lib = make_library(soname);
  for (const auto& [name, version] : exports) {
    Symbol sym{name, SymbolBinding::Global, true, version};
    lib.symbols.push_back(std::move(sym));
  }
  return lib;
}

TEST(VersionedSymbols, SerializationRoundTrips) {
  Object lib = lib_with_exports(
      "libc.so.6", {{"memcpy", "GLIBC_2.14"}, {"memcpy", "GLIBC_2.2.5"},
                    {"open", ""}});
  EXPECT_EQ(parse(serialize(lib)), lib);
}

TEST(VersionedSymbols, DisplayForm) {
  const Symbol versioned{"memcpy", SymbolBinding::Global, true, "GLIBC_2.14"};
  EXPECT_EQ(versioned.display(), "memcpy@GLIBC_2.14");
  const Symbol plain{"open", SymbolBinding::Global, true, ""};
  EXPECT_EQ(plain.display(), "open");
}

TEST(VersionedSymbols, MalformedVsymbolLinesRejected) {
  EXPECT_THROW(parse("SELF1\nvsymbol G D\nend\n"), ElfError);
  EXPECT_THROW(parse("SELF1\nvsymbol G D onlyversion\nend\n"), ElfError);
}

TEST(AbiDiffTest, IdenticalLibrariesCompatible) {
  const Object lib = lib_with_exports("libz.so.1", {{"deflate", ""}});
  const auto diff = abi_diff(lib, lib);
  EXPECT_TRUE(diff.compatible());
  EXPECT_TRUE(diff.removed.empty());
  EXPECT_TRUE(diff.added.empty());
}

TEST(AbiDiffTest, AddedSymbolsStayCompatible) {
  const Object old_lib = lib_with_exports("libz.so.1", {{"deflate", ""}});
  const Object new_lib =
      lib_with_exports("libz.so.1", {{"deflate", ""}, {"deflate2", ""}});
  const auto diff = abi_diff(old_lib, new_lib);
  EXPECT_TRUE(diff.compatible());
  ASSERT_EQ(diff.added.size(), 1u);
  EXPECT_EQ(diff.added[0], "deflate2");
}

TEST(AbiDiffTest, RemovedSymbolBreaks) {
  const Object old_lib =
      lib_with_exports("libz.so.1", {{"deflate", ""}, {"inflate", ""}});
  const Object new_lib = lib_with_exports("libz.so.1", {{"deflate", ""}});
  const auto diff = abi_diff(old_lib, new_lib);
  EXPECT_FALSE(diff.compatible());
  ASSERT_EQ(diff.removed.size(), 1u);
  EXPECT_EQ(diff.removed[0], "inflate");
}

TEST(AbiDiffTest, VersionBumpOnSymbolBreaks) {
  const Object old_lib =
      lib_with_exports("libc.so.6", {{"memcpy", "GLIBC_2.2.5"}});
  const Object new_lib =
      lib_with_exports("libc.so.6", {{"memcpy", "GLIBC_2.14"}});
  const auto diff = abi_diff(old_lib, new_lib);
  EXPECT_FALSE(diff.compatible());
  EXPECT_EQ(diff.removed[0], "memcpy@GLIBC_2.2.5");
}

TEST(AbiDiffTest, SonameChangeIsAnAbiBreak) {
  const Object old_lib = lib_with_exports("libssl.so.1", {{"f", ""}});
  const Object new_lib = lib_with_exports("libssl.so.3", {{"f", ""}});
  EXPECT_FALSE(abi_diff(old_lib, new_lib).compatible());
}

TEST(AbiDiffTest, UnsatisfiedReferences) {
  Object app = make_executable({});
  app.symbols.push_back(
      Symbol{"memcpy", SymbolBinding::Global, false, "GLIBC_2.14"});
  app.symbols.push_back(Symbol{"custom", SymbolBinding::Global, false, ""});
  const Object libc =
      lib_with_exports("libc.so.6", {{"memcpy", "GLIBC_2.14"}});
  const auto missing = unsatisfied_references(app, {&libc});
  ASSERT_EQ(missing.size(), 1u);
  EXPECT_EQ(missing[0], "custom");
}

TEST(AbiDiffTest, VersionedRefAcceptsUnversionedProvider) {
  Object app = make_executable({});
  app.symbols.push_back(
      Symbol{"memcpy", SymbolBinding::Global, false, "GLIBC_2.14"});
  const Object compat = lib_with_exports("libc.so.6", {{"memcpy", ""}});
  EXPECT_TRUE(unsatisfied_references(app, {&compat}).empty());
}

TEST(AbiDiffTest, UnversionedRefAcceptsVersionedProvider) {
  Object app = make_executable({});
  app.symbols.push_back(Symbol{"memcpy", SymbolBinding::Global, false, ""});
  const Object libc =
      lib_with_exports("libc.so.6", {{"memcpy", "GLIBC_2.14"}});
  EXPECT_TRUE(unsatisfied_references(app, {&libc}).empty());
}

TEST(VersionedBinding, LoaderBindsExactVersion) {
  vfs::FileSystem fs;
  Object libc = lib_with_exports(
      "libc.so.6", {{"memcpy", "GLIBC_2.2.5"}, {"memcpy", "GLIBC_2.14"}});
  install_object(fs, "/usr/lib/libc.so.6", libc);
  Object app = make_executable({"libc.so.6"});
  app.symbols.push_back(
      Symbol{"memcpy", SymbolBinding::Global, false, "GLIBC_2.14"});
  install_object(fs, "/bin/app", app);
  loader::Loader loader(fs);
  const auto bind = loader::bind_symbols(loader.load("/bin/app"));
  EXPECT_TRUE(bind.unresolved.empty());
}

TEST(VersionedBinding, MissingVersionIsUnresolved) {
  vfs::FileSystem fs;
  install_object(fs, "/usr/lib/libc.so.6",
                 lib_with_exports("libc.so.6", {{"memcpy", "GLIBC_2.2.5"}}));
  Object app = make_executable({"libc.so.6"});
  app.symbols.push_back(
      Symbol{"memcpy", SymbolBinding::Global, false, "GLIBC_2.38"});
  install_object(fs, "/bin/app", app);
  loader::Loader loader(fs);
  const auto bind = loader::bind_symbols(loader.load("/bin/app"));
  ASSERT_EQ(bind.unresolved.size(), 1u);
  EXPECT_EQ(bind.unresolved[0], "memcpy@GLIBC_2.38");
}

TEST(AdminSwap, CompatibleSymlinkSwapValidatedByAbiDiff) {
  // §III-A: /opt/rocm-4.3.0 is buggy but 4.3.1 is binary compatible; the
  // administrator validates with abi_diff, then symlinks the new one in.
  vfs::FileSystem fs;
  const Object v430 = lib_with_exports(
      "librocblas.so", {{"rocblas_sgemm", "ROCBLAS_4.3"}});
  Object v431 = v430;  // compatible: same exports (plus a fix inside)
  v431.symbols.push_back(
      Symbol{"rocblas_internal_fix", SymbolBinding::Local, true, ""});
  install_object(fs, "/opt/rocm-4.3.0/lib/librocblas.so", v430);
  install_object(fs, "/opt/rocm-4.3.1/lib/librocblas.so", v431);

  Object app = make_executable({"librocblas.so"}, {},
                               {"/opt/rocm-current/lib"});
  app.symbols.push_back(Symbol{"rocblas_sgemm", SymbolBinding::Global, false,
                               "ROCBLAS_4.3"});
  install_object(fs, "/bin/gpu_app", app);
  fs.symlink("/opt/rocm-4.3.0/lib", "/opt/rocm-current/lib");

  const auto diff = abi_diff(fs, "/opt/rocm-4.3.0/lib/librocblas.so",
                             "/opt/rocm-4.3.1/lib/librocblas.so");
  ASSERT_TRUE(diff.compatible());

  // The swap: retarget the symlink (atomic via rename in real life).
  fs.remove("/opt/rocm-current/lib");
  fs.symlink("/opt/rocm-4.3.1/lib", "/opt/rocm-current/lib");
  loader::Loader loader(fs);
  const auto report = loader.load("/bin/gpu_app");
  ASSERT_TRUE(report.success);
  EXPECT_EQ(report.load_order[1].real_path,
            "/opt/rocm-4.3.1/lib/librocblas.so");
  EXPECT_TRUE(loader::bind_symbols(report).unresolved.empty());
}

}  // namespace
}  // namespace depchaos::elf
