// The metadata-server contention simulator core (depchaos::mds):
// event-ordering determinism, hand-computed cache accounting, analytic
// equivalence on the regime the formula covers, and the scenarios the
// formula cannot express (stragglers, warm second waves, topologies).
#include <gtest/gtest.h>

#include <cmath>

#include "depchaos/launch/launch.hpp"
#include "depchaos/mds/sim.hpp"
#include "depchaos/support/rng.hpp"

namespace depchaos::mds {
namespace {

vfs::OpRecord op(vfs::OpKind kind, bool hit, std::uint32_t key,
                 bool shared = true, bool node_local = false) {
  return vfs::OpRecord{kind, hit, shared, node_local, key};
}

/// A homogeneous all-shared stream of `n` metadata ops on distinct paths.
std::vector<vfs::OpRecord> shared_stream(std::uint32_t n) {
  std::vector<vfs::OpRecord> ops;
  ops.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    ops.push_back(op(i % 2 ? vfs::OpKind::Open : vfs::OpKind::Stat,
                     /*hit=*/true, i));
  }
  return ops;
}

TEST(MdsValidate, RejectsNonPhysicalParameters) {
  const MdsConfig good;
  EXPECT_NO_THROW(validate(good));

  MdsConfig c = good;
  c.service.mean_s = 0;
  EXPECT_THROW(validate(c), std::invalid_argument);
  c = good;
  c.service.mean_s = -1e-6;
  EXPECT_THROW(validate(c), std::invalid_argument);
  c = good;
  c.service.uniform_spread = 1.5;
  EXPECT_THROW(validate(c), std::invalid_argument);
  c = good;
  c.service.uniform_spread = -0.1;
  EXPECT_THROW(validate(c), std::invalid_argument);
  c = good;
  c.service.pareto_alpha = 1.0;  // infinite mean
  EXPECT_THROW(validate(c), std::invalid_argument);
  c = good;
  c.cache.hit_cost_s = -1;
  EXPECT_THROW(validate(c), std::invalid_argument);
  c = good;
  c.topology.fanout = 1;
  EXPECT_THROW(validate(c), std::invalid_argument);
  c = good;
  c.topology.relay_hop_factor = -0.1;
  EXPECT_THROW(validate(c), std::invalid_argument);
  c = good;
  c.topology.local_op_cost_s = -1e-9;
  EXPECT_THROW(validate(c), std::invalid_argument);
  c = good;
  c.contention_exponent = -0.5;
  EXPECT_THROW(validate(c), std::invalid_argument);
  c = good;
  c.contention_exponent = std::nan("");
  EXPECT_THROW(validate(c), std::invalid_argument);
  c = good;
  c.start_delays = {0.0, -1.0};
  EXPECT_THROW(validate(c), std::invalid_argument);
  EXPECT_THROW(MdsSimulator{c}, std::invalid_argument);
}

TEST(MdsSim, LockstepDirectFleetMatchesStormFormulaExactly) {
  // Homogeneous clients, fixed service, no cache, DirectMds: every wave is
  // one batch of P costing mean*P^gamma, so the makespan is EXACTLY the
  // analytic storm_meta_seconds — the construction that pins the two
  // engines together.
  const auto stream = shared_stream(20);
  MdsConfig config;  // Fixed, mean 11us, gamma 0.55
  for (const int nprocs : {1, 7, 64, 1024}) {
    MdsSimulator sim(config);
    const SimResult result = sim.run_homogeneous(stream, nprocs);
    const double expected = 20 * config.service.mean_s *
                            std::pow(nprocs, config.contention_exponent);
    EXPECT_NEAR(result.makespan_s, expected, expected * 1e-9) << nprocs;
    EXPECT_EQ(result.server_requests, 20ull * nprocs);
    EXPECT_EQ(result.batches, 20ull);
    EXPECT_EQ(result.max_queue_depth, static_cast<std::uint64_t>(nprocs));
    EXPECT_DOUBLE_EQ(result.mean_batch, static_cast<double>(nprocs));
    EXPECT_EQ(result.cache_hits, 0ull);
    EXPECT_EQ(result.cache_misses, 0ull);
  }
}

TEST(MdsSim, PropertyDirectFixedNoCacheMatchesAnalyticExtrapolate) {
  // Randomized sweep: op count and rank count vary, the invariant holds
  // within 2% (it is exact up to floating-point accumulation).
  support::Rng rng(0xD15C0);
  for (int iter = 0; iter < 25; ++iter) {
    const auto ops = static_cast<std::uint32_t>(rng.between(3, 300));
    const int nprocs = static_cast<int>(rng.between(1, 600));
    launch::ClusterConfig cluster;
    launch::RankMeasurement rank;
    rank.load_succeeded = true;
    rank.meta_ops = ops;
    const launch::LaunchResult analytic =
        launch::extrapolate(rank, nprocs, cluster);

    MdsSimulator sim(launch::mds_config_for(cluster, /*prestaged=*/false));
    const SimResult sim_result = sim.run_homogeneous(shared_stream(ops),
                                                     nprocs);
    EXPECT_NEAR(sim_result.makespan_s, analytic.meta_time_s,
                analytic.meta_time_s * 0.02)
        << "ops=" << ops << " nprocs=" << nprocs;
  }
}

TEST(MdsSim, DeterministicUnderFixedSeedAcrossDistributions) {
  // Heterogeneous streams + a straggler + heavy-tailed service: two fresh
  // simulators with the same seed must agree bit-for-bit; a different
  // seed must not.
  std::vector<std::vector<vfs::OpRecord>> streams;
  for (std::uint32_t r = 0; r < 9; ++r) {
    auto s = shared_stream(30 + 7 * r);
    s.push_back(op(vfs::OpKind::Stat, /*hit=*/false, 1000 + r,
                   /*shared=*/true));
    streams.push_back(std::move(s));
  }
  for (const Dist dist : {Dist::Fixed, Dist::Uniform, Dist::Pareto}) {
    MdsConfig config;
    config.service.dist = dist;
    config.service.seed = 1234;
    config.start_delays = {0, 0, 0.5};
    const SimResult a = MdsSimulator(config).run(streams);
    const SimResult b = MdsSimulator(config).run(streams);
    EXPECT_EQ(a.makespan_s, b.makespan_s);  // bitwise
    EXPECT_EQ(a.server_requests, b.server_requests);
    EXPECT_EQ(a.batches, b.batches);
    EXPECT_EQ(a.latency_p99_s, b.latency_p99_s);
    ASSERT_EQ(a.ranks.size(), b.ranks.size());
    for (std::size_t r = 0; r < a.ranks.size(); ++r) {
      EXPECT_EQ(a.ranks[r].finish_s, b.ranks[r].finish_s);
    }
    if (dist != Dist::Fixed) {
      MdsConfig other = config;
      other.service.seed = 99;
      const SimResult c = MdsSimulator(other).run(streams);
      EXPECT_NE(a.makespan_s, c.makespan_s);
    }
  }
}

TEST(MdsSim, CacheAccountingExactOnHandComputedThreeRankTrace) {
  // gamma = 1 makes a batch cost the plain sum of its service times, so
  // every number below is hand-computable. Stream per rank:
  //   stat A (hit), open A (hit), stat B (miss)
  // mean 1s, cache hit 0.25s, no negative caching, 3 ranks.
  //
  // Wave 1: all ranks miss the cache on A at t=0 -> batch of 3, 3s.
  //   Resume at 3: open A hits the cache (3.25), stat B misses (not
  //   cacheable) -> batch of 3 arriving 3.25, done 6.25.
  const std::vector<vfs::OpRecord> stream = {
      op(vfs::OpKind::Stat, true, 0),
      op(vfs::OpKind::Open, true, 0),
      op(vfs::OpKind::Stat, false, 1),
  };
  MdsConfig config;
  config.service.mean_s = 1.0;
  config.contention_exponent = 1.0;
  config.cache.enabled = true;
  config.cache.hit_cost_s = 0.25;
  MdsSimulator sim(config);

  const SimResult wave1 = sim.run_homogeneous(stream, 3);
  EXPECT_DOUBLE_EQ(wave1.makespan_s, 6.25);
  EXPECT_EQ(wave1.cache_hits, 3ull);
  EXPECT_EQ(wave1.cache_misses, 6ull);
  EXPECT_EQ(wave1.server_requests, 6ull);
  EXPECT_EQ(wave1.batches, 2ull);
  EXPECT_DOUBLE_EQ(wave1.mean_batch, 3.0);
  EXPECT_DOUBLE_EQ(wave1.latency_max_s, 3.0);
  for (const RankOutcome& r : wave1.ranks) {
    EXPECT_DOUBLE_EQ(r.finish_s, 6.25);
    EXPECT_EQ(r.cache_hits, 1ull);
    EXPECT_EQ(r.server_ops, 2ull);
  }

  // Wave 2 on warm caches: A hits twice (0.5s), B still misses (negative
  // answers are not cached) -> one batch of 3 arriving 0.5, done 3.5.
  const SimResult wave2 = sim.run_homogeneous(stream, 3);
  EXPECT_DOUBLE_EQ(wave2.makespan_s, 3.5);
  EXPECT_EQ(wave2.cache_hits, 6ull);
  EXPECT_EQ(wave2.cache_misses, 3ull);
  EXPECT_EQ(wave2.server_requests, 3ull);

  // With negative caching the second wave never touches the server.
  config.cache.negative_caching = true;
  MdsSimulator neg(config);
  neg.run_homogeneous(stream, 3);
  const SimResult warm = neg.run_homogeneous(stream, 3);
  EXPECT_EQ(warm.server_requests, 0ull);
  EXPECT_DOUBLE_EQ(warm.makespan_s, 0.75);

  // reset_caches() makes the fleet cold again.
  neg.reset_caches();
  const SimResult cold = neg.run_homogeneous(stream, 3);
  EXPECT_EQ(cold.server_requests, 6ull);
}

TEST(MdsSim, SpindleTreeFlattensSharedScaling) {
  const auto stream = shared_stream(40);
  MdsConfig direct;
  MdsConfig spindle;
  spindle.topology = Topology::spindle();
  const SimResult d1024 = MdsSimulator(direct).run_homogeneous(stream, 1024);
  const SimResult s256 = MdsSimulator(spindle).run_homogeneous(stream, 256);
  const SimResult s1024 = MdsSimulator(spindle).run_homogeneous(stream, 1024);
  // One resolver + relay: only rank 0's ops hit the server...
  EXPECT_EQ(s1024.server_requests, 40ull);
  EXPECT_EQ(s1024.relayed_ops, 40ull * 1023);
  // ...so the metadata phase stops scaling with P (relay depth only)...
  EXPECT_LT(s1024.makespan_s, s256.makespan_s * 1.1);
  // ...and beats the direct storm at scale.
  EXPECT_LT(s1024.makespan_s, d1024.makespan_s);
}

TEST(MdsSim, PrestagedServesSharedOpsLocally) {
  // Shared ops never touch the MDS; a rank-private op still does.
  auto stream = shared_stream(10);
  stream.push_back(op(vfs::OpKind::Open, true, 500, /*shared=*/false));
  MdsConfig config;
  config.topology = Topology::prestaged();
  const SimResult result = MdsSimulator(config).run_homogeneous(stream, 64);
  EXPECT_EQ(result.local_ops, 10ull * 64);
  EXPECT_EQ(result.server_requests, 64ull);
  // An op already flagged node-local in the trace is local even under
  // DirectMds — the measured latency class travels with the stream.
  auto flagged = shared_stream(4);
  for (auto& o : flagged) o.node_local = true;
  const SimResult direct = MdsSimulator(MdsConfig{}).run_homogeneous(
      flagged, 8);
  EXPECT_EQ(direct.server_requests, 0ull);
  EXPECT_EQ(direct.local_ops, 4ull * 8);
}

TEST(MdsSim, StragglerDominatesMakespanAndTail) {
  const auto stream = shared_stream(25);
  MdsConfig config;
  const SimResult tight = MdsSimulator(config).run_homogeneous(stream, 32);

  MdsConfig late = config;
  late.start_delays.assign(32, 0.0);
  late.start_delays[7] = 0.5;
  const SimResult straggled =
      MdsSimulator(late).run_homogeneous(stream, 32);
  // The fleet is held hostage by one late rank — a mechanism the analytic
  // formula (uniform ranks by construction) cannot express.
  EXPECT_GT(straggled.makespan_s, 0.5);
  EXPECT_GT(straggled.makespan_s, tight.makespan_s * 2);
  double worst = 0;
  std::size_t worst_rank = 0;
  for (std::size_t r = 0; r < straggled.ranks.size(); ++r) {
    if (straggled.ranks[r].finish_s > worst) {
      worst = straggled.ranks[r].finish_s;
      worst_rank = r;
    }
  }
  EXPECT_EQ(worst_rank, 7u);
}

TEST(MdsSim, ServiceDistributionsPreserveTheConfiguredMean) {
  // One client, many ops, batch size 1: the makespan is the plain sum of
  // service samples, so makespan / ops estimates the distribution mean.
  const auto stream = shared_stream(4000);
  for (const Dist dist : {Dist::Uniform, Dist::Pareto}) {
    MdsConfig config;
    config.service.dist = dist;
    const SimResult result = MdsSimulator(config).run_homogeneous(stream, 1);
    const double mean_estimate = result.makespan_s / 4000.0;
    EXPECT_NEAR(mean_estimate, config.service.mean_s,
                config.service.mean_s * 0.15)
        << static_cast<int>(dist);
  }
  // Heavy tail shows up in the percentile spread.
  MdsConfig pareto;
  pareto.service.dist = Dist::Pareto;
  pareto.service.pareto_alpha = 1.5;
  const SimResult tail = MdsSimulator(pareto).run_homogeneous(stream, 1);
  EXPECT_LE(tail.latency_p50_s, tail.latency_p99_s);
  EXPECT_LE(tail.latency_p99_s, tail.latency_max_s);
  EXPECT_GT(tail.latency_max_s, tail.latency_p50_s * 5);
}

TEST(MdsSim, RunOverloadsAgree) {
  const auto stream = shared_stream(15);
  std::vector<std::vector<vfs::OpRecord>> copies(6, stream);
  MdsConfig config;
  const SimResult a = MdsSimulator(config).run_homogeneous(stream, 6);
  const SimResult b = MdsSimulator(config).run(copies);
  EXPECT_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.server_requests, b.server_requests);
  EXPECT_EQ(a.batches, b.batches);
}

}  // namespace
}  // namespace depchaos::mds
