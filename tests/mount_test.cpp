// Mount-table VFS: composing read-only images, overlays, tmpfs masks, and
// bind mounts under one path namespace, with resolution (PathId fast path
// and dentry cache included) crossing mount boundaries transparently.
//
// Also covers the PathTable byte budget: past the cap, resolution falls
// back to uncached string walks that must answer — and charge — exactly
// like the interned walk.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "depchaos/elf/patcher.hpp"
#include "depchaos/loader/loader.hpp"
#include "depchaos/shrinkwrap/libtree.hpp"
#include "depchaos/shrinkwrap/needy.hpp"
#include "depchaos/shrinkwrap/shrinkwrap.hpp"
#include "depchaos/support/rng.hpp"
#include "depchaos/vfs/vfs.hpp"

namespace depchaos::vfs {
namespace {

std::shared_ptr<FileSystem> small_image() {
  auto image = std::make_shared<FileSystem>();
  image->write_file("/lib/libimg.so", std::string("image library"));
  image->write_file("/etc/release", std::string("image v1"));
  image->symlink("libimg.so", "/lib/libalias.so");
  return image;
}

TEST(Mount, ImageMountShadowsHostAndIsSharedReadOnly) {
  FileSystem host;
  host.write_file("/app/native.txt", std::string("host content"));
  host.write_file("/usr/lib/libhost.so", std::string("host lib"));

  auto image = small_image();
  host.mount_image("/app", image);

  // The mounted root replaces the host directory beneath it.
  EXPECT_TRUE(host.exists("/app/lib/libimg.so"));
  EXPECT_FALSE(host.exists("/app/native.txt"));
  EXPECT_EQ(host.peek("/app/lib/libimg.so")->bytes, "image library");
  // Relative symlinks inside the image resolve inside the image.
  EXPECT_EQ(host.peek("/app/lib/libalias.so")->bytes, "image library");
  // Read-only end to end.
  EXPECT_THROW(host.write_file("/app/lib/new.so", std::string("x")), FsError);
  EXPECT_THROW(host.remove("/app/etc/release"), FsError);
  // The image itself never saw a write.
  EXPECT_FALSE(image->exists("/native.txt"));

  host.umount("/app");
  EXPECT_TRUE(host.exists("/app/native.txt"));
  EXPECT_FALSE(host.exists("/app/lib/libimg.so"));
}

TEST(Mount, MountpointListingComesFromTheImage) {
  FileSystem host;
  host.mkdir_p("/app/old");
  host.mount_image("/app", small_image());
  const auto names = host.list_dir("/app");
  EXPECT_EQ(names, (std::vector<std::string>{"lib", "etc"}));
}

TEST(Mount, TmpfsMaskHidesHostDirectory) {
  FileSystem host;
  host.write_file("/usr/lib/libleaky.so", std::string("host"));
  host.mount_tmpfs("/usr/lib", /*read_only=*/true);
  EXPECT_FALSE(host.exists("/usr/lib/libleaky.so"));
  EXPECT_TRUE(host.list_dir("/usr/lib").empty());
  EXPECT_THROW(host.write_file("/usr/lib/x", std::string("y")), FsError);
  host.umount("/usr/lib");
  EXPECT_TRUE(host.exists("/usr/lib/libleaky.so"));
}

TEST(Mount, WritableTmpfsScratch) {
  FileSystem host;
  host.mount_tmpfs("/tmp");
  host.write_file("/tmp/job/scratch.dat", std::string("per-job"));
  EXPECT_EQ(host.peek("/tmp/job/scratch.dat")->bytes, "per-job");
  host.umount("/tmp");
  EXPECT_FALSE(host.exists("/tmp/job/scratch.dat"));
}

TEST(Mount, OverlayDivergesWithoutTouchingTheImage) {
  auto image = small_image();
  FileSystem job_a;
  FileSystem job_b;
  job_a.mount_overlay("/app", image);
  job_b.mount_overlay("/app", image);

  job_a.write_file("/app/etc/override.conf", std::string("A"));
  job_a.write_file("/app/etc/release", std::string("patched by A"));

  EXPECT_EQ(job_a.peek("/app/etc/release")->bytes, "patched by A");
  EXPECT_EQ(job_b.peek("/app/etc/release")->bytes, "image v1");
  EXPECT_FALSE(job_b.exists("/app/etc/override.conf"));
  EXPECT_EQ(image->peek("/etc/release")->bytes, "image v1");
}

TEST(Mount, BindReRootsASubtree) {
  auto source = std::make_shared<FileSystem>();
  source->write_file("/data/sets/one.bin", std::string("1"));
  FileSystem host;
  host.mount_bind("/mnt/input", source, "/data");
  EXPECT_EQ(host.peek("/mnt/input/sets/one.bin")->bytes, "1");
  EXPECT_THROW(host.write_file("/mnt/input/x", std::string("y")), FsError);
}

TEST(Mount, StackingLastMountWinsAndUmountPeels) {
  FileSystem host;
  host.write_file("/app/host.txt", std::string("host"));
  host.mount_image("/app", small_image());
  host.mount_tmpfs("/app", /*read_only=*/true);
  EXPECT_TRUE(host.list_dir("/app").empty());
  host.umount("/app");
  EXPECT_TRUE(host.exists("/app/lib/libimg.so"));
  host.umount("/app");
  EXPECT_TRUE(host.exists("/app/host.txt"));
  EXPECT_THROW(host.umount("/app"), FsError);
}

TEST(Mount, AbsoluteSymlinkInsideImageResolvesInComposedNamespace) {
  // What a process inside the container observes: the image's absolute
  // symlink escapes into the composed (host+mounts) namespace — the
  // substrate of the host-leak container scenario.
  auto image = std::make_shared<FileSystem>();
  image->symlink("/usr/lib/libhost.so", "/lib/libescape.so");
  FileSystem host;
  host.write_file("/usr/lib/libhost.so", std::string("host bytes"));
  host.mount_image("/app", image);
  EXPECT_EQ(host.peek("/app/lib/libescape.so")->bytes, "host bytes");
  EXPECT_EQ(host.realpath("/app/lib/libescape.so").value(),
            "/usr/lib/libhost.so");
  // Mask the host dir: the escape now dangles.
  host.mount_tmpfs("/usr/lib", /*read_only=*/true);
  EXPECT_FALSE(host.exists("/app/lib/libescape.so"));
}

TEST(Mount, SymlinkOnHostPointingIntoMountCrosses) {
  FileSystem host;
  host.mount_image("/app", small_image());
  host.symlink("/app/lib/libimg.so", "/usr/lib/libvia.so");
  EXPECT_EQ(host.peek("/usr/lib/libvia.so")->bytes, "image library");
  const auto st = host.stat("/usr/lib/libvia.so");
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(st->type, NodeType::Regular);
}

TEST(Mount, MountpointReachedThroughSymlinkAliasCrosses) {
  FileSystem host;
  host.mkdir_p("/opt/apps");
  host.symlink("/opt/apps", "/apps");
  host.mount_image("/opt/apps/tool", small_image());
  // Probing via the alias still lands inside the mount: mounts attach to
  // canonical paths.
  EXPECT_TRUE(host.exists("/apps/tool/lib/libimg.so"));
}

TEST(Mount, CrossMountRenameAndRemoveGuards) {
  FileSystem host;
  host.write_file("/home/a.txt", std::string("a"));
  host.mount_tmpfs("/scratch");
  EXPECT_THROW(host.rename("/home/a.txt", "/scratch/a.txt"), FsError);
  host.mount_image("/app", small_image());
  EXPECT_THROW(host.remove("/app", /*recursive=*/true), FsError);  // busy
  // Removing an ANCESTOR of a mountpoint is just as busy: it would leave
  // the mount attached to a path that no longer resolves.
  host.mount_tmpfs("/deep/nested/scratch");
  EXPECT_THROW(host.remove("/deep", /*recursive=*/true), FsError);
  host.umount("/deep/nested/scratch");
  host.remove("/deep", /*recursive=*/true);  // fine once detached
  EXPECT_FALSE(host.exists("/deep"));
}

TEST(Mount, RenameIntoOwnSubtreeIsRejected) {
  FileSystem fs;
  fs.write_file("/a/b/keep.txt", std::string("precious"));
  EXPECT_THROW(fs.rename("/a", "/a/b/c"), FsError);  // POSIX EINVAL
  EXPECT_THROW(fs.rename("/a", "/a/b"), FsError);
  // Nothing was lost or detached.
  EXPECT_EQ(fs.peek("/a/b/keep.txt")->bytes, "precious");
  EXPECT_EQ(fs.list_dir("/"), (std::vector<std::string>{"a"}));
  // Sibling moves still work.
  fs.rename("/a/b/keep.txt", "/a/kept.txt");
  EXPECT_EQ(fs.peek("/a/kept.txt")->bytes, "precious");
}

TEST(Mount, StatReportsDistinctInodesAcrossMounts) {
  FileSystem host;
  host.write_file("/usr/lib/libx.so", std::string("host"));
  host.mount_image("/app", small_image());
  const auto host_st = host.stat("/usr/lib/libx.so");
  const auto img_st = host.stat("/app/lib/libimg.so");
  ASSERT_TRUE(host_st && img_st);
  EXPECT_NE(host_st->ino, img_st->ino);
  // The composed namespace counts the mounted backing's inodes too.
  FileSystem bare;
  bare.write_file("/usr/lib/libx.so", std::string("host"));
  bare.mkdir_p("/app");
  EXPECT_GT(host.inode_count(), bare.inode_count());
}

TEST(Mount, CountersChargeLikeOrdinaryProbes) {
  FileSystem host;
  host.mount_image("/app", small_image());
  host.reset_stats();
  EXPECT_NE(host.open("/app/lib/libimg.so"), nullptr);
  EXPECT_EQ(host.open("/app/lib/missing.so"), nullptr);
  EXPECT_EQ(host.stats().open_calls, 2u);
  EXPECT_EQ(host.stats().failed_probes, 1u);
}

TEST(Mount, ForkSharesImagesAndForksOverlays) {
  auto image = small_image();
  FileSystem parent;
  parent.mount_overlay("/app", image);
  parent.mount_image("/ro", image);
  parent.write_file("/app/etc/parent.conf", std::string("p"));

  FileSystem child = parent.fork();
  child.write_file("/app/etc/child.conf", std::string("c"));
  parent.write_file("/app/etc/parent2.conf", std::string("p2"));

  EXPECT_TRUE(parent.exists("/app/etc/parent2.conf"));
  EXPECT_FALSE(parent.exists("/app/etc/child.conf"));
  EXPECT_TRUE(child.exists("/app/etc/child.conf"));
  EXPECT_FALSE(child.exists("/app/etc/parent2.conf"));
  EXPECT_TRUE(child.exists("/app/etc/parent.conf"));  // pre-fork divergence
  EXPECT_TRUE(child.exists("/ro/lib/libimg.so"));     // shared image
  EXPECT_FALSE(image->exists("/etc/parent.conf"));
}

TEST(Mount, DentryWarmStartSurvivesMountsAcrossFork) {
  FileSystem host;
  host.write_file("/usr/lib/libx.so", std::string("x"));
  host.mount_image("/app", small_image());
  // Warm the parent's memo through the mount boundary.
  EXPECT_TRUE(host.exists("/app/lib/libimg.so"));
  EXPECT_TRUE(host.exists("/usr/lib/libx.so"));
  FileSystem child = host.fork();
  // Same answers through the inherited snapshot; then diverge and check
  // invalidation stays per view.
  EXPECT_EQ(child.peek("/app/lib/libimg.so")->bytes, "image library");
  child.umount("/app");
  EXPECT_FALSE(child.exists("/app/lib/libimg.so"));
  EXPECT_TRUE(host.exists("/app/lib/libimg.so"));
}

TEST(Mount, NestedMountTablesRejected) {
  FileSystem host;
  auto composed = std::make_shared<FileSystem>();
  composed->mount_tmpfs("/tmp");
  EXPECT_THROW(host.mount_image("/app", composed), FsError);
}

TEST(Mount, SaveWorldFlattensTheComposedNamespace) {
  // v1 snapshots stay the lowest common denominator: the composed view
  // serializes as one tree (see snapshot_test for v2 fleet round-trips).
  FileSystem host;
  host.write_file("/usr/lib/libhost.so", std::string("h"));
  host.mount_image("/app", small_image());
  // Exercised via exists(): no counted traffic, mounts crossed.
  EXPECT_TRUE(host.exists("/app/etc/release"));
}

// --------------------------------------------------- PathTable byte budget

/// Deterministic probe storm over hits, misses, symlinks, and dirs.
template <typename Fs>
std::string probe_fingerprint(Fs& fs, std::uint64_t seed, int rounds) {
  support::Rng rng(seed);
  const std::vector<std::string> stems = {
      "/usr/lib",  "/opt/app/lib", "/data", "/via",  "/loop",
      "/usr/miss", "/opt/missing", "/deep/a/b/c"};
  std::string out;
  for (int i = 0; i < rounds; ++i) {
    const std::string path = stems[rng.below(stems.size())] + "/lib" +
                             std::to_string(rng.below(40)) + ".so";
    switch (rng.below(4)) {
      case 0: {
        const auto st = fs.stat(path);
        out += st ? "s" + std::to_string(st->size) : std::string("s-");
        break;
      }
      case 1:
        out += fs.open(path) != nullptr ? "o+" : "o-";
        break;
      case 2:
        out += fs.exists(path) ? "e+" : "e-";
        break;
      default:
        out += "r" + fs.realpath(path).value_or("-");
        break;
    }
  }
  out += "|stat=" + std::to_string(fs.stats().stat_calls) +
         ",open=" + std::to_string(fs.stats().open_calls) +
         ",fail=" + std::to_string(fs.stats().failed_probes);
  return out;
}

void build_budget_world(FileSystem& fs) {
  for (int i = 0; i < 40; i += 2) {
    fs.write_file("/usr/lib/lib" + std::to_string(i) + ".so",
                  std::string("bytes") + std::to_string(i));
    fs.symlink("/usr/lib/lib" + std::to_string(i) + ".so",
               "/via/lib" + std::to_string(i) + ".so");
  }
  for (int i = 0; i < 40; i += 3) {
    fs.write_file("/opt/app/lib/lib" + std::to_string(i) + ".so",
                  std::string("opt") + std::to_string(i));
  }
  fs.symlink("self", "/loop/self");  // relative self-loop under /loop
  fs.mkdir_p("/deep/a/b/c");
}

TEST(PathBudget, ExhaustedTableFallsBackWithIdenticalAnswers) {
  FileSystem cached;
  FileSystem capped;
  build_budget_world(cached);
  build_budget_world(capped);
  // Freeze the capped table where it stands: every NEW path now takes the
  // uncached string-walk fallback; already-interned paths keep their ids.
  capped.paths().set_byte_budget(capped.paths().bytes_used());
  const std::size_t frozen = capped.paths().size();

  EXPECT_EQ(probe_fingerprint(cached, 99, 400),
            probe_fingerprint(capped, 99, 400));
  EXPECT_EQ(capped.paths().size(), frozen) << "budgeted table still grew";
  EXPECT_GT(cached.paths().size(), frozen) << "storm should intern new paths";
}

TEST(PathBudget, ExhaustedTableStillResolvesMounts) {
  FileSystem host;
  host.write_file("/usr/lib/libhost.so", std::string("host"));
  host.mount_image("/app", small_image());
  host.paths().set_byte_budget(host.paths().bytes_used());
  // These paths were never interned: pure string-walk, crossing the mount.
  EXPECT_EQ(host.peek("/app/lib/libimg.so")->bytes, "image library");
  EXPECT_EQ(host.peek("/app/lib/libalias.so")->bytes, "image library");
  EXPECT_FALSE(host.exists("/app/lib/zzz.so"));
}

TEST(PathBudget, LoaderSearchSurvivesExhaustion) {
  // Same closure, budget on vs off: byte-identical reports and counters.
  const auto build = [](FileSystem& fs) {
    elf::install_object(fs, "/lib64/libc.so.6", elf::make_library("libc.so.6"));
    elf::install_object(
        fs, "/opt/lib/libdep.so",
        elf::make_library("libdep.so", {"libc.so.6"}));
    elf::install_object(
        fs, "/bin/app",
        elf::make_executable({"libdep.so", "libc.so.6", "libmissing.so"},
                             /*runpath=*/{"/opt/lib", "/opt/none"}));
  };
  FileSystem plain;
  FileSystem capped;
  build(plain);
  build(capped);
  capped.paths().set_byte_budget(capped.paths().bytes_used());

  loader::SearchConfig config;
  config.use_ld_cache = false;  // force directory sweeps (the hot path)
  config.record_probes = true;
  loader::Loader a(plain, config);
  loader::Loader b(capped, config);
  const auto ra = a.load("/bin/app");
  const auto rb = b.load("/bin/app");
  EXPECT_EQ(ra.success, rb.success);
  ASSERT_EQ(ra.load_order.size(), rb.load_order.size());
  for (std::size_t i = 0; i < ra.load_order.size(); ++i) {
    EXPECT_EQ(ra.load_order[i].path, rb.load_order[i].path) << i;
    EXPECT_EQ(ra.load_order[i].how, rb.load_order[i].how) << i;
    EXPECT_EQ(ra.load_order[i].real_path, rb.load_order[i].real_path) << i;
  }
  EXPECT_EQ(ra.missing.size(), rb.missing.size());
  EXPECT_EQ(ra.stats.open_calls, rb.stats.open_calls);
  EXPECT_EQ(ra.stats.failed_probes, rb.stats.failed_probes);
  EXPECT_EQ(ra.probe_log, rb.probe_log);
}

TEST(PathBudget, ShrinkwrapLibtreeNeedySurviveExhaustion) {
  // The shrinkwrap layer keys its dedup sets and requester buckets by
  // PathId; past the byte budget those interns refuse, and the layer must
  // fall back to string keys with identical output — never collapse
  // distinct paths into the shared kNone bucket.
  const auto build = [](FileSystem& fs) {
    elf::install_object(fs, "/lib/liba.so", elf::make_library("liba.so"));
    elf::install_object(fs, "/opt/libb.so",
                        elf::make_library("libb.so", {"liba.so"}));
    elf::install_object(
        fs, "/bin/app",
        elf::make_executable({"libb.so", "liba.so"},
                             /*runpath=*/{"/opt", "/lib"}));
  };
  // Exhaust the budget BEFORE building, so nothing is ever interned and
  // every layer runs in fallback mode end to end.
  const auto capped_world = [&]() {
    FileSystem fs;
    fs.paths().set_byte_budget(fs.paths().bytes_used());
    build(fs);
    return fs;
  };

  FileSystem plain;
  build(plain);
  {
    FileSystem capped = capped_world();
    loader::Loader pl(plain), cl(capped);
    EXPECT_EQ(shrinkwrap::libtree(plain, pl, "/bin/app", {}, {}),
              shrinkwrap::libtree(capped, cl, "/bin/app", {}, {}));
    const auto wrapped_plain = shrinkwrap::shrinkwrap(plain, pl, "/bin/app");
    const auto wrapped_capped = shrinkwrap::shrinkwrap(capped, cl, "/bin/app");
    ASSERT_TRUE(wrapped_plain.ok() && wrapped_capped.ok());
    EXPECT_EQ(wrapped_plain.new_needed, wrapped_capped.new_needed);
  }
  {
    FileSystem plain2;
    build(plain2);
    FileSystem capped2 = capped_world();
    loader::Loader pl(plain2), cl(capped2);
    const auto needy_plain = shrinkwrap::make_needy(plain2, pl, "/bin/app");
    const auto needy_capped = shrinkwrap::make_needy(capped2, cl, "/bin/app");
    ASSERT_TRUE(needy_plain.ok && needy_capped.ok);
    EXPECT_EQ(needy_plain.search_dirs, needy_capped.search_dirs);
    EXPECT_EQ(needy_plain.lifted, needy_capped.lifted);
  }
}

TEST(Mount, RenamingAMountpointOrItsAncestorIsBusy) {
  FileSystem host;
  host.write_file("/data/file", std::string("x"));
  host.mount_tmpfs("/data/scratch/job");
  EXPECT_THROW(host.rename("/data", "/elsewhere"), FsError);
  EXPECT_THROW(host.rename("/data/scratch", "/elsewhere"), FsError);
  host.umount("/data/scratch/job");
  host.rename("/data", "/elsewhere");  // fine once detached
  EXPECT_TRUE(host.exists("/elsewhere/file"));
}

TEST(PathBudget, StatWithRefusedIdIsACleanMiss) {
  FileSystem fs;
  fs.write_file("/x/y", std::string("z"));
  fs.paths().set_byte_budget(fs.paths().bytes_used());
  const support::PathId refused = fs.paths().intern("/never/seen");
  ASSERT_EQ(refused, support::PathTable::kNone);
  // Forwarding the refused id into the PathId overloads must miss cleanly.
  EXPECT_FALSE(fs.stat(refused).has_value());
  EXPECT_FALSE(fs.lstat(refused).has_value());
  EXPECT_EQ(fs.open(refused), nullptr);
}

TEST(PathBudget, BudgetIsAdjustableAndReportsUsage) {
  FileSystem fs;
  EXPECT_EQ(fs.paths().byte_budget(), 0u);
  const std::size_t used = fs.paths().bytes_used();
  EXPECT_GT(used, 0u);
  fs.paths().set_byte_budget(used + 1);
  EXPECT_EQ(fs.paths().intern("/much/too/long/for/the/budget"),
            support::PathTable::kNone);
  fs.paths().set_byte_budget(0);  // unlimited again
  EXPECT_NE(fs.paths().intern("/much/too/long/for/the/budget"),
            support::PathTable::kNone);
}

}  // namespace
}  // namespace depchaos::vfs
