#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "depchaos/core/world.hpp"
#include "depchaos/elf/patcher.hpp"
#include "depchaos/launch/launch.hpp"
#include "depchaos/shrinkwrap/shrinkwrap.hpp"
#include "depchaos/support/rng.hpp"
#include "depchaos/workload/pynamic.hpp"
#include "depchaos/workload/scenarios.hpp"

namespace depchaos::launch {
namespace {

class LaunchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fs_.set_latency_model(std::make_shared<vfs::NfsModel>());
    workload::PynamicConfig config;
    config.num_modules = 120;  // scaled-down Pynamic
    config.exe_extra_bytes = 8ull << 20;
    app_ = workload::generate_pynamic(fs_, config);
  }

  vfs::FileSystem fs_;
  workload::PynamicApp app_;
};

TEST_F(LaunchTest, TimeGrowsWithRankCount) {
  loader::Loader loader(fs_);
  const auto r512 = simulate_launch(fs_, loader, app_.exe_path, {}, 512);
  const auto r2048 = simulate_launch(fs_, loader, app_.exe_path, {}, 2048);
  ASSERT_TRUE(r512.load_succeeded);
  EXPECT_GT(r2048.total_time_s, r512.total_time_s);
  // Sublinear: quadrupling ranks should not quadruple the time.
  EXPECT_LT(r2048.total_time_s, 4 * r512.total_time_s);
}

TEST_F(LaunchTest, WrappedBeatsNormalAtEveryScale) {
  loader::Loader loader(fs_);
  const std::vector<int> ranks = {512, 1024, 2048};
  const auto normal = scaling_sweep(fs_, loader, app_.exe_path, {}, ranks);

  ASSERT_TRUE(shrinkwrap::shrinkwrap(fs_, loader, app_.exe_path).ok());
  const auto wrapped = scaling_sweep(fs_, loader, app_.exe_path, {}, ranks);

  for (std::size_t i = 0; i < ranks.size(); ++i) {
    EXPECT_LT(wrapped[i].total_time_s, normal[i].total_time_s);
  }
}

TEST_F(LaunchTest, SpeedupGrowsWithScale) {
  // Fig 6's headline: the gap WIDENS as the job grows (5.5x -> 7.2x).
  loader::Loader loader(fs_);
  const auto n512 = simulate_launch(fs_, loader, app_.exe_path, {}, 512);
  const auto n2048 = simulate_launch(fs_, loader, app_.exe_path, {}, 2048);
  ASSERT_TRUE(shrinkwrap::shrinkwrap(fs_, loader, app_.exe_path).ok());
  const auto w512 = simulate_launch(fs_, loader, app_.exe_path, {}, 512);
  const auto w2048 = simulate_launch(fs_, loader, app_.exe_path, {}, 2048);

  const double speedup_512 = n512.total_time_s / w512.total_time_s;
  const double speedup_2048 = n2048.total_time_s / w2048.total_time_s;
  EXPECT_GT(speedup_512, 1.5);
  EXPECT_GT(speedup_2048, speedup_512);
}

TEST_F(LaunchTest, MetaOpsMeasuredNotModelled) {
  loader::Loader loader(fs_);
  const auto result = simulate_launch(fs_, loader, app_.exe_path, {}, 64);
  // 120 modules, one per directory: ~n^2/2 probes.
  EXPECT_GT(result.meta_ops_per_rank, 120ull * 121 / 2);
  EXPECT_GT(result.bytes_per_rank, 8ull << 20);
}

TEST_F(LaunchTest, BytesIdenticalBeforeAndAfterWrap) {
  // Shrinkwrap only removes metadata work; the bytes staged are the same.
  loader::Loader loader(fs_);
  const auto before = simulate_launch(fs_, loader, app_.exe_path, {}, 64);
  ASSERT_TRUE(shrinkwrap::shrinkwrap(fs_, loader, app_.exe_path).ok());
  const auto after = simulate_launch(fs_, loader, app_.exe_path, {}, 64);
  // Wrapped metadata is tiny compared to the original.
  EXPECT_LT(after.meta_ops_per_rank * 20, before.meta_ops_per_rank);
  // Bytes differ only by the rewritten (slightly longer) dynamic section.
  const double byte_ratio = static_cast<double>(after.bytes_per_rank) /
                            static_cast<double>(before.bytes_per_rank);
  EXPECT_NEAR(byte_ratio, 1.0, 0.01);
}

TEST_F(LaunchTest, SpindleBroadcastFlattensMetadataScaling) {
  loader::Loader loader(fs_);
  ClusterConfig spindle;
  spindle.spindle_broadcast = true;
  const auto s512 =
      simulate_launch(fs_, loader, app_.exe_path, {}, 512, spindle);
  const auto s2048 =
      simulate_launch(fs_, loader, app_.exe_path, {}, 2048, spindle);
  const auto n2048 = simulate_launch(fs_, loader, app_.exe_path, {}, 2048);
  // Broadcast beats per-rank resolution at scale...
  EXPECT_LT(s2048.meta_time_s, n2048.meta_time_s);
  // ...and its metadata phase grows only logarithmically.
  EXPECT_LT(s2048.meta_time_s, s512.meta_time_s * 1.5);
}

TEST_F(LaunchTest, SingleRankHasNoContentionPenalty) {
  loader::Loader loader(fs_);
  const auto result = simulate_launch(fs_, loader, app_.exe_path, {}, 1);
  ClusterConfig config;
  const double raw_meta =
      static_cast<double>(result.meta_ops_per_rank) * config.meta_op_cost_s;
  EXPECT_NEAR(result.meta_time_s, raw_meta, 1e-9);
}

TEST_F(LaunchTest, SweepReusesOneMeasurementByteIdentically) {
  // scaling_sweep measures the rank-1 op stream once and extrapolates;
  // re-measuring per entry with a fresh loader must give bit-equal results
  // (counters do not depend on cache warmth, the arithmetic is shared).
  loader::Loader loader(fs_);
  const std::vector<int> ranks = {64, 512, 1024, 2048};
  const auto sweep = scaling_sweep(fs_, loader, app_.exe_path, {}, ranks);
  ASSERT_EQ(sweep.size(), ranks.size());
  loader::Loader fresh(fs_);
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    const auto single =
        simulate_launch(fs_, fresh, app_.exe_path, {}, ranks[i]);
    EXPECT_EQ(sweep[i].nprocs, single.nprocs);
    EXPECT_EQ(sweep[i].load_succeeded, single.load_succeeded);
    EXPECT_EQ(sweep[i].meta_ops_per_rank, single.meta_ops_per_rank);
    EXPECT_EQ(sweep[i].bytes_per_rank, single.bytes_per_rank);
    EXPECT_EQ(sweep[i].data_time_s, single.data_time_s);
    EXPECT_EQ(sweep[i].meta_time_s, single.meta_time_s);
    EXPECT_EQ(sweep[i].total_time_s, single.total_time_s);
  }
}

// --------------------------------------------------- containerized launch

workload::PynamicConfig small_pynamic() {
  workload::PynamicConfig config;
  config.num_modules = 60;
  config.exe_extra_bytes = 1u << 20;
  return config;
}

/// Shadow an existing module's soname in an EARLIER search directory of
/// the sandbox — the loader then finds it in the per-rank overlay, which
/// is exactly the rank-private metadata the breakdown must attribute.
void shadow_module(core::Session& sandbox, std::size_t victim,
                   std::size_t dir) {
  const std::string soname =
      "libpynamic_module_" + std::to_string(victim) + ".so";
  elf::install_object(sandbox.fs(),
                      "/apps/pynamic/m" + std::to_string(dir) + "/lib/" +
                          soname,
                      elf::make_library(soname));
}

TEST(FleetLaunch, SandboxImageEqualToHostViewIsByteIdenticalToBare) {
  core::WorldBuilder builder;
  auto session = builder.pynamic(small_pynamic()).nfs().build();
  const auto bare = session.launch(512);
  ASSERT_TRUE(bare.load_succeeded);

  // The image IS the host view: same tree, same inode numbering. Mounted
  // as the sandbox rootfs behind a per-rank overlay, the measured op
  // stream must not change by a single op or byte.
  core::SandboxSpec spec;
  spec.image = std::make_shared<vfs::FileSystem>(session.fs());
  spec.image_mount = "/";
  spec.writable_image_overlay = true;
  const auto fleet = session.launch_fleet(spec, 512);
  EXPECT_TRUE(fleet.load_succeeded);
  EXPECT_TRUE(fleet.sandboxed);
  EXPECT_EQ(fleet.ranks_measured, 1);  // homogeneity fast path
  EXPECT_EQ(fleet.meta_ops_per_rank, bare.meta_ops_per_rank);
  EXPECT_EQ(fleet.bytes_per_rank, bare.bytes_per_rank);
  // The split tiles the total, and nothing diverged: all ops are shared.
  EXPECT_EQ(fleet.shared_meta_ops_per_rank + fleet.overlay_meta_ops_per_rank,
            fleet.meta_ops_per_rank);
  EXPECT_EQ(fleet.overlay_meta_ops_per_rank, 0u);
  EXPECT_EQ(fleet.overlay_bytes_per_rank, 0u);
  EXPECT_EQ(fleet.shared_bytes_per_rank, fleet.bytes_per_rank);
  EXPECT_EQ(fleet.fleet_meta_ops, fleet.meta_ops_per_rank * 512u);
  EXPECT_EQ(fleet.fleet_bytes, fleet.bytes_per_rank * 512u);
  // With every op shared and no mitigation, the fleet model must reduce
  // to the bare one bit for bit — times included, so the two conversion
  // paths can never drift apart.
  EXPECT_EQ(fleet.data_time_s, bare.data_time_s);
  EXPECT_EQ(fleet.meta_time_s, bare.meta_time_s);
  EXPECT_EQ(fleet.total_time_s, bare.total_time_s);
}

TEST(FleetLaunch, RankSetupDivergenceLandsInOverlayOps) {
  core::WorldBuilder builder;
  auto session = builder.pynamic(small_pynamic()).nfs().build();
  core::SandboxSpec spec;
  spec.image = std::make_shared<vfs::FileSystem>(session.fs());
  spec.image_mount = "/";
  spec.writable_image_overlay = true;

  FleetConfig fleet;
  fleet.cluster = session.config().cluster;
  fleet.rank_setup = [](core::Session& sandbox, int /*rank*/) {
    shadow_module(sandbox, 40, 0);
  };
  const auto result = session.launch_fleet(spec, "", 4, fleet);
  ASSERT_TRUE(result.load_succeeded);
  // All four ranks apply the SAME shadow, so fingerprint clustering folds
  // them into one equivalence class measured once.
  EXPECT_EQ(result.ranks_measured, 1);
  EXPECT_EQ(result.classes_measured, 1);
  ASSERT_EQ(result.class_sizes.size(), 1u);
  EXPECT_EQ(result.class_sizes[0], 4);
  EXPECT_GT(result.overlay_meta_ops_per_rank, 0u);
  EXPECT_EQ(result.shared_meta_ops_per_rank + result.overlay_meta_ops_per_rank,
            result.meta_ops_per_rank);
  // Shadowing module 40 into an earlier dir SHORTENS the probe storm: the
  // sandbox stream differs from the bare one in which ops exist, not just
  // their attribution.
  const auto bare = session.launch(4);
  EXPECT_NE(result.meta_ops_per_rank, bare.meta_ops_per_rank);
}

TEST(FleetLaunch, SpindleBroadcastFlattensOnlySharedOps) {
  core::WorldBuilder builder;
  auto session = builder.pynamic(small_pynamic()).nfs().build();
  core::SandboxSpec spec;
  spec.image = std::make_shared<vfs::FileSystem>(session.fs());
  spec.image_mount = "/";
  spec.writable_image_overlay = true;

  FleetConfig fleet;
  fleet.cluster = session.config().cluster;
  fleet.cluster.spindle_broadcast = true;
  fleet.rank_setup = [](core::Session& sandbox, int /*rank*/) {
    shadow_module(sandbox, 40, 0);
  };
  const int nprocs = 4;
  const auto result = session.launch_fleet(spec, "", nprocs, fleet);
  ASSERT_TRUE(result.load_succeeded);
  ASSERT_GT(result.overlay_meta_ops_per_rank, 0u);

  // Broadcast absorbs the shared ops (one resolver + log-tree relay); the
  // per-rank overlay ops still pay the full storm exponent.
  const ClusterConfig& c = fleet.cluster;
  const double p = nprocs;
  const double expected =
      static_cast<double>(result.shared_meta_ops_per_rank) *
          c.meta_op_cost_s * (1.0 + std::log2(p) * 0.1) +
      static_cast<double>(result.overlay_meta_ops_per_rank) *
          c.meta_op_cost_s * std::pow(p, c.meta_exponent);
  EXPECT_NEAR(result.meta_time_s, expected, 1e-12);

  // Without divergence the whole stream broadcasts: flat in P.
  FleetConfig homogeneous;
  homogeneous.cluster = fleet.cluster;
  const auto s512 = session.launch_fleet(spec, "", 512, homogeneous);
  const auto s2048 = session.launch_fleet(spec, "", 2048, homogeneous);
  EXPECT_LT(s2048.meta_time_s, s512.meta_time_s * 1.5);
}

TEST(FleetLaunch, PrestagedImageServesSharedPartLocally) {
  core::WorldBuilder builder;
  auto session = builder.pynamic(small_pynamic()).nfs().build();
  core::SandboxSpec spec;
  spec.image = std::make_shared<vfs::FileSystem>(session.fs());
  spec.image_mount = "/";
  spec.writable_image_overlay = true;

  FleetConfig cold;
  cold.cluster = session.config().cluster;
  FleetConfig staged = cold;
  staged.prestaged_image = true;
  const auto storm = session.launch_fleet(spec, "", 1024, cold);
  const auto local = session.launch_fleet(spec, "", 1024, staged);
  ASSERT_TRUE(storm.load_succeeded);
  // All ops are shared here, so pre-staging removes the storm entirely.
  EXPECT_NEAR(local.meta_time_s,
              static_cast<double>(local.shared_meta_ops_per_rank) *
                  cold.cluster.local_meta_op_cost_s,
              1e-12);
  EXPECT_LT(local.meta_time_s, storm.meta_time_s / 100.0);
  EXPECT_LT(local.total_time_s, storm.total_time_s);
}

TEST(FleetLaunch, PropertyFleetEqualsIndependentSandboxLaunches) {
  // N forked sandboxes measured in one fleet call == N separate launches,
  // op for op and byte for byte — fork isolation means no rank can see
  // another's divergence.
  for (const std::uint64_t seed : {7ull, 1234ull}) {
    core::WorldBuilder builder;
    auto session = builder.pynamic(small_pynamic()).nfs().build();
    core::SandboxSpec spec;
    spec.image = std::make_shared<vfs::FileSystem>(session.fs());
    spec.image_mount = "/";
    spec.writable_image_overlay = true;

    const auto setup = [seed](core::Session& sandbox, int rank) {
      support::Rng rng(seed * 1000 + static_cast<std::uint64_t>(rank));
      const std::size_t shadows = 1 + rng.below(3);
      for (std::size_t s = 0; s < shadows; ++s) {
        const std::size_t victim = 1 + rng.below(59);
        shadow_module(sandbox, victim, rng.below(victim));
      }
    };

    const int nprocs = 5;
    FleetConfig fleet;
    fleet.cluster = session.config().cluster;
    fleet.rank_setup = setup;
    const auto combined = session.launch_fleet(spec, "", nprocs, fleet);
    // Clustering measures one representative per distinct overlay, never
    // more ranks than exist; replicated totals below stay byte-exact.
    EXPECT_GE(combined.ranks_measured, 1);
    EXPECT_LE(combined.ranks_measured, nprocs);
    EXPECT_EQ(combined.ranks_measured, combined.classes_measured);
    int covered = 0;
    for (const int size : combined.class_sizes) covered += size;
    EXPECT_EQ(covered, nprocs);
    // Even with non-divisible heterogeneous sums, the reported per-rank
    // split tiles the per-rank total by construction.
    EXPECT_EQ(combined.shared_meta_ops_per_rank +
                  combined.overlay_meta_ops_per_rank,
              combined.meta_ops_per_rank);
    EXPECT_EQ(combined.shared_bytes_per_rank + combined.overlay_bytes_per_rank,
              combined.bytes_per_rank);

    std::uint64_t meta = 0, bytes = 0, shared = 0, overlay = 0;
    bool all_loaded = true;
    for (int rank = 0; rank < nprocs; ++rank) {
      FleetConfig one;
      one.cluster = fleet.cluster;
      one.rank_setup = [&setup, rank](core::Session& sandbox, int /*r*/) {
        setup(sandbox, rank);
      };
      const auto single = session.launch_fleet(spec, "", 1, one);
      meta += single.fleet_meta_ops;
      bytes += single.fleet_bytes;
      shared += single.fleet_shared_meta_ops;
      overlay += single.fleet_overlay_meta_ops;
      all_loaded = all_loaded && single.load_succeeded;
    }
    EXPECT_EQ(combined.load_succeeded, all_loaded) << "seed " << seed;
    EXPECT_EQ(combined.fleet_meta_ops, meta) << "seed " << seed;
    EXPECT_EQ(combined.fleet_bytes, bytes) << "seed " << seed;
    EXPECT_EQ(combined.fleet_shared_meta_ops, shared) << "seed " << seed;
    EXPECT_EQ(combined.fleet_overlay_meta_ops, overlay) << "seed " << seed;
  }
}

TEST(FleetLaunch, WrappedImagePreservesShrinkwrapReduction) {
  // The three-substrate story in miniature: shrinkwrap applied INSIDE the
  // image shrinks the containerized storm like it shrinks the bare one.
  const auto scenario =
      workload::make_container_launch_scenario(small_pynamic());
  core::WorldBuilder host;
  auto session = host.nfs().build();

  core::SandboxSpec bare;
  bare.image = scenario.image;
  bare.image_mount = scenario.image_mount;
  bare.writable_image_overlay = true;
  bare.exe = scenario.exe;
  core::SandboxSpec wrapped = bare;
  wrapped.image = scenario.wrapped_image;

  const auto normal = session.launch_fleet(bare, 512);
  const auto frozen = session.launch_fleet(wrapped, 512);
  ASSERT_TRUE(normal.load_succeeded);
  ASSERT_TRUE(frozen.load_succeeded);
  EXPECT_GT(normal.meta_ops_per_rank, frozen.meta_ops_per_rank * 10);
  // Same bytes staged modulo the slightly longer dynamic section.
  const double ratio = static_cast<double>(frozen.bytes_per_rank) /
                       static_cast<double>(normal.bytes_per_rank);
  EXPECT_NEAR(ratio, 1.0, 0.01);
  EXPECT_LT(frozen.total_time_s, normal.total_time_s);
}

// ------------------------------------------------ queueing-engine surface

TEST(LaunchValidation, RejectsNonPhysicalClusterConfigs) {
  const auto broken = [](auto&& mutate) {
    ClusterConfig config;
    mutate(config);
    return config;
  };
  EXPECT_NO_THROW(validate(ClusterConfig{}));
  EXPECT_THROW(validate(broken([](auto& c) { c.init_s = -1; })),
               std::invalid_argument);
  EXPECT_THROW(validate(broken([](auto& c) { c.init_s = 1.0 / 0.0; })),
               std::invalid_argument);
  EXPECT_THROW(
      validate(broken([](auto& c) { c.stage_bandwidth_bytes_s = 0; })),
      std::invalid_argument);
  EXPECT_THROW(
      validate(broken([](auto& c) { c.local_stage_bandwidth_bytes_s = -5; })),
      std::invalid_argument);
  EXPECT_THROW(validate(broken([](auto& c) { c.data_exponent = 2.5; })),
               std::invalid_argument);
  EXPECT_THROW(validate(broken([](auto& c) { c.meta_exponent = -0.1; })),
               std::invalid_argument);
  EXPECT_THROW(validate(broken([](auto& c) { c.meta_op_cost_s = 0; })),
               std::invalid_argument);
  EXPECT_THROW(validate(broken([](auto& c) { c.local_meta_op_cost_s = -1; })),
               std::invalid_argument);
  // The entry points validate too — a broken config cannot reach the
  // arithmetic through any of them.
  RankMeasurement rank;
  rank.meta_ops = 10;
  EXPECT_THROW(
      extrapolate(rank, 8, broken([](auto& c) { c.meta_op_cost_s = -1; })),
      std::invalid_argument);
  EXPECT_THROW(extrapolate(rank, 0, ClusterConfig{}), std::invalid_argument);
}

TEST(LaunchValidation, RejectsNonPhysicalFleetConfigs) {
  EXPECT_NO_THROW(validate(FleetConfig{}));
  const auto broken = [](auto&& mutate) {
    FleetConfig config;
    mutate(config);
    return config;
  };
  EXPECT_THROW(validate(broken([](auto& f) { f.cluster.meta_exponent = 3; })),
               std::invalid_argument);
  // Simulator knobs are validated whichever engine is selected.
  EXPECT_THROW(
      validate(broken([](auto& f) { f.service.pareto_alpha = 1.0; })),
      std::invalid_argument);
  EXPECT_THROW(
      validate(broken([](auto& f) { f.service.uniform_spread = 1.5; })),
      std::invalid_argument);
  EXPECT_THROW(validate(broken([](auto& f) { f.cache.hit_cost_s = -1; })),
               std::invalid_argument);
  EXPECT_THROW(validate(broken([](auto& f) { f.sim_waves = 0; })),
               std::invalid_argument);
  EXPECT_THROW(validate(broken([](auto& f) { f.start_delays = {0.0, -0.5}; })),
               std::invalid_argument);
}

TEST_F(LaunchTest, QueueingEngineMatchesAnalyticOnFixedService) {
  // Homogeneous fleet + fixed service + no cache: the batch-coalescing
  // server reproduces the closed form exactly, so the two engines agree to
  // rounding on bare launches — the bridge that anchors the simulator.
  loader::Loader loader(fs_);
  for (const int ranks : {1, 32, 256}) {
    const auto analytic = simulate_launch(fs_, loader, app_.exe_path, {}, ranks);
    const auto sim = simulate_launch_queueing(fs_, loader, app_.exe_path, {},
                                              ranks);
    ASSERT_TRUE(sim.launch.load_succeeded);
    EXPECT_EQ(sim.launch.meta_ops_per_rank, analytic.meta_ops_per_rank);
    EXPECT_EQ(sim.launch.data_time_s, analytic.data_time_s);
    EXPECT_NEAR(sim.launch.meta_time_s, analytic.meta_time_s,
                analytic.meta_time_s * 1e-9);
    EXPECT_EQ(sim.sim.server_requests,
              sim.launch.meta_ops_per_rank * static_cast<std::uint64_t>(ranks));
    EXPECT_EQ(sim.wave_makespans.size(), 1u);
  }
}

TEST_F(LaunchTest, SweepQueueingMatchesPerCallOutcomes) {
  loader::Loader loader(fs_);
  const std::vector<int> ranks = {16, 64, 256};
  const auto sweep =
      scaling_sweep_queueing(fs_, loader, app_.exe_path, {}, ranks);
  ASSERT_EQ(sweep.size(), ranks.size());
  loader::Loader fresh(fs_);
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    const auto single =
        simulate_launch_queueing(fs_, fresh, app_.exe_path, {}, ranks[i]);
    EXPECT_EQ(sweep[i].launch.meta_time_s, single.launch.meta_time_s);
    EXPECT_EQ(sweep[i].sim.server_requests, single.sim.server_requests);
    EXPECT_EQ(sweep[i].sim.batches, single.sim.batches);
  }
}

TEST(FleetLaunch, QueueingEngineSelectableThroughFleetConfig) {
  core::WorldBuilder builder;
  auto session = builder.pynamic(small_pynamic()).nfs().build();
  core::SandboxSpec spec;
  spec.image = std::make_shared<vfs::FileSystem>(session.fs());
  spec.image_mount = "/";
  spec.writable_image_overlay = true;

  FleetConfig fleet;
  fleet.cluster = session.config().cluster;
  fleet.engine = Engine::Queueing;
  const int nprocs = 128;
  const auto via_config = session.launch_fleet(spec, "", nprocs, fleet);
  const auto outcome = simulate_fleet_launch_sim(session, spec, "", nprocs,
                                                 fleet);
  // Engine::Queueing through the plain entry point IS the sim outcome's
  // launch summary.
  EXPECT_EQ(via_config.meta_time_s, outcome.launch.meta_time_s);
  EXPECT_EQ(via_config.total_time_s, outcome.launch.total_time_s);
  EXPECT_EQ(via_config.meta_ops_per_rank, outcome.launch.meta_ops_per_rank);

  // All-shared homogeneous container + fixed service: sim == formula.
  FleetConfig analytic_config = fleet;
  analytic_config.engine = Engine::Analytic;
  const auto analytic = session.launch_fleet(spec, "", nprocs, analytic_config);
  EXPECT_NEAR(via_config.meta_time_s, analytic.meta_time_s,
              analytic.meta_time_s * 1e-9);
  EXPECT_EQ(outcome.sim.server_requests,
            outcome.launch.meta_ops_per_rank *
                static_cast<std::uint64_t>(nprocs));
}

TEST(FleetLaunch, PrestagedQueueingServesSharedOpsNodeLocally) {
  core::WorldBuilder builder;
  auto session = builder.pynamic(small_pynamic()).nfs().build();
  core::SandboxSpec spec;
  spec.image = std::make_shared<vfs::FileSystem>(session.fs());
  spec.image_mount = "/";
  spec.writable_image_overlay = true;

  FleetConfig staged;
  staged.cluster = session.config().cluster;
  staged.prestaged_image = true;
  staged.engine = Engine::Queueing;
  const int nprocs = 256;
  const auto out = simulate_fleet_launch_sim(session, spec, "", nprocs, staged);
  ASSERT_TRUE(out.launch.load_succeeded);
  // Every shared op is absorbed node-locally; nothing queues at the MDS.
  EXPECT_EQ(out.sim.server_requests, 0u);
  EXPECT_EQ(out.sim.local_ops, out.launch.meta_ops_per_rank *
                                   static_cast<std::uint64_t>(nprocs));
  // Parallel node-local streams: the simulated makespan equals the
  // analytic node-local cost of one rank's stream.
  EXPECT_NEAR(out.launch.meta_time_s,
              static_cast<double>(out.launch.shared_meta_ops_per_rank) *
                  staged.cluster.local_meta_op_cost_s,
              1e-12);
}

TEST(FleetLaunch, WarmWavesAndStragglersEscapeTheFormula) {
  core::WorldBuilder builder;
  auto session = builder.pynamic(small_pynamic()).nfs().build();
  core::SandboxSpec spec;
  spec.image = std::make_shared<vfs::FileSystem>(session.fs());
  spec.image_mount = "/";
  spec.writable_image_overlay = true;

  // Cache-warm second wave: the analytic formula prices every wave the
  // same; the simulator's warm negative cache collapses the repeat launch.
  FleetConfig warm;
  warm.cluster = session.config().cluster;
  warm.engine = Engine::Queueing;
  warm.cache.enabled = true;
  warm.cache.negative_caching = true;
  warm.sim_waves = 2;
  const int nprocs = 128;
  const auto waves = simulate_fleet_launch_sim(session, spec, "", nprocs, warm);
  ASSERT_EQ(waves.wave_makespans.size(), 2u);
  EXPECT_GT(waves.wave_makespans[0], 0.0);
  EXPECT_LT(waves.wave_makespans[1], waves.wave_makespans[0] / 5.0);
  // The launch headline is the cold wave; the sim stats are the warm one.
  EXPECT_EQ(waves.launch.meta_time_s, waves.wave_makespans[0]);
  EXPECT_EQ(waves.sim.makespan_s, waves.wave_makespans[1]);

  // Straggler injection: one late rank stretches the makespan past the
  // homogeneous answer by at least its delay.
  FleetConfig late;
  late.cluster = session.config().cluster;
  late.engine = Engine::Queueing;
  late.start_delays.assign(static_cast<std::size_t>(nprocs), 0.0);
  late.start_delays[17] = 5.0;
  const auto straggler =
      simulate_fleet_launch_sim(session, spec, "", nprocs, late);
  FleetConfig prompt = late;
  prompt.start_delays.clear();
  const auto tight = simulate_fleet_launch_sim(session, spec, "", nprocs,
                                               prompt);
  EXPECT_GT(straggler.sim.makespan_s, 5.0);
  EXPECT_GT(straggler.sim.makespan_s, tight.sim.makespan_s);
  ASSERT_EQ(straggler.sim.ranks.size(), static_cast<std::size_t>(nprocs));
  const auto last = std::max_element(
      straggler.sim.ranks.begin(), straggler.sim.ranks.end(),
      [](const auto& a, const auto& b) { return a.finish_s < b.finish_s; });
  EXPECT_EQ(last - straggler.sim.ranks.begin(), 17);
}

}  // namespace
}  // namespace depchaos::launch
