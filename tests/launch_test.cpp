#include <gtest/gtest.h>

#include "depchaos/launch/launch.hpp"
#include "depchaos/shrinkwrap/shrinkwrap.hpp"
#include "depchaos/workload/pynamic.hpp"

namespace depchaos::launch {
namespace {

class LaunchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fs_.set_latency_model(std::make_shared<vfs::NfsModel>());
    workload::PynamicConfig config;
    config.num_modules = 120;  // scaled-down Pynamic
    config.exe_extra_bytes = 8ull << 20;
    app_ = workload::generate_pynamic(fs_, config);
  }

  vfs::FileSystem fs_;
  workload::PynamicApp app_;
};

TEST_F(LaunchTest, TimeGrowsWithRankCount) {
  loader::Loader loader(fs_);
  const auto r512 = simulate_launch(fs_, loader, app_.exe_path, {}, 512);
  const auto r2048 = simulate_launch(fs_, loader, app_.exe_path, {}, 2048);
  ASSERT_TRUE(r512.load_succeeded);
  EXPECT_GT(r2048.total_time_s, r512.total_time_s);
  // Sublinear: quadrupling ranks should not quadruple the time.
  EXPECT_LT(r2048.total_time_s, 4 * r512.total_time_s);
}

TEST_F(LaunchTest, WrappedBeatsNormalAtEveryScale) {
  loader::Loader loader(fs_);
  const std::vector<int> ranks = {512, 1024, 2048};
  const auto normal = scaling_sweep(fs_, loader, app_.exe_path, {}, ranks);

  ASSERT_TRUE(shrinkwrap::shrinkwrap(fs_, loader, app_.exe_path).ok());
  const auto wrapped = scaling_sweep(fs_, loader, app_.exe_path, {}, ranks);

  for (std::size_t i = 0; i < ranks.size(); ++i) {
    EXPECT_LT(wrapped[i].total_time_s, normal[i].total_time_s);
  }
}

TEST_F(LaunchTest, SpeedupGrowsWithScale) {
  // Fig 6's headline: the gap WIDENS as the job grows (5.5x -> 7.2x).
  loader::Loader loader(fs_);
  const auto n512 = simulate_launch(fs_, loader, app_.exe_path, {}, 512);
  const auto n2048 = simulate_launch(fs_, loader, app_.exe_path, {}, 2048);
  ASSERT_TRUE(shrinkwrap::shrinkwrap(fs_, loader, app_.exe_path).ok());
  const auto w512 = simulate_launch(fs_, loader, app_.exe_path, {}, 512);
  const auto w2048 = simulate_launch(fs_, loader, app_.exe_path, {}, 2048);

  const double speedup_512 = n512.total_time_s / w512.total_time_s;
  const double speedup_2048 = n2048.total_time_s / w2048.total_time_s;
  EXPECT_GT(speedup_512, 1.5);
  EXPECT_GT(speedup_2048, speedup_512);
}

TEST_F(LaunchTest, MetaOpsMeasuredNotModelled) {
  loader::Loader loader(fs_);
  const auto result = simulate_launch(fs_, loader, app_.exe_path, {}, 64);
  // 120 modules, one per directory: ~n^2/2 probes.
  EXPECT_GT(result.meta_ops_per_rank, 120ull * 121 / 2);
  EXPECT_GT(result.bytes_per_rank, 8ull << 20);
}

TEST_F(LaunchTest, BytesIdenticalBeforeAndAfterWrap) {
  // Shrinkwrap only removes metadata work; the bytes staged are the same.
  loader::Loader loader(fs_);
  const auto before = simulate_launch(fs_, loader, app_.exe_path, {}, 64);
  ASSERT_TRUE(shrinkwrap::shrinkwrap(fs_, loader, app_.exe_path).ok());
  const auto after = simulate_launch(fs_, loader, app_.exe_path, {}, 64);
  // Wrapped metadata is tiny compared to the original.
  EXPECT_LT(after.meta_ops_per_rank * 20, before.meta_ops_per_rank);
  // Bytes differ only by the rewritten (slightly longer) dynamic section.
  const double byte_ratio = static_cast<double>(after.bytes_per_rank) /
                            static_cast<double>(before.bytes_per_rank);
  EXPECT_NEAR(byte_ratio, 1.0, 0.01);
}

TEST_F(LaunchTest, SpindleBroadcastFlattensMetadataScaling) {
  loader::Loader loader(fs_);
  ClusterConfig spindle;
  spindle.spindle_broadcast = true;
  const auto s512 =
      simulate_launch(fs_, loader, app_.exe_path, {}, 512, spindle);
  const auto s2048 =
      simulate_launch(fs_, loader, app_.exe_path, {}, 2048, spindle);
  const auto n2048 = simulate_launch(fs_, loader, app_.exe_path, {}, 2048);
  // Broadcast beats per-rank resolution at scale...
  EXPECT_LT(s2048.meta_time_s, n2048.meta_time_s);
  // ...and its metadata phase grows only logarithmically.
  EXPECT_LT(s2048.meta_time_s, s512.meta_time_s * 1.5);
}

TEST_F(LaunchTest, SingleRankHasNoContentionPenalty) {
  loader::Loader loader(fs_);
  const auto result = simulate_launch(fs_, loader, app_.exe_path, {}, 1);
  ClusterConfig config;
  const double raw_meta =
      static_cast<double>(result.meta_ops_per_rank) * config.meta_op_cost_s;
  EXPECT_NEAR(result.meta_time_s, raw_meta, 1e-9);
}

}  // namespace
}  // namespace depchaos::launch
