// End-to-end pipelines across every layer of the library — the flows a
// downstream user would actually run.

#include <gtest/gtest.h>

#include "depchaos/elf/patcher.hpp"
#include "depchaos/launch/launch.hpp"
#include "depchaos/loader/symbols.hpp"
#include "depchaos/pkg/bundle.hpp"
#include "depchaos/pkg/fhs.hpp"
#include "depchaos/pkg/modules.hpp"
#include "depchaos/pkg/store.hpp"
#include "depchaos/shrinkwrap/libtree.hpp"
#include "depchaos/shrinkwrap/shrinkwrap.hpp"
#include "depchaos/shrinkwrap/views.hpp"
#include "depchaos/spack/concretizer.hpp"
#include "depchaos/spack/install.hpp"
#include "depchaos/workload/pynamic.hpp"

namespace depchaos {
namespace {

TEST(Integration, SpackToStoreToShrinkwrapToLaunch) {
  // DSL -> concretize -> store install -> NFS launch -> wrap -> faster.
  spack::Repo repo;
  repo.add_package_py(
      "class Zlib(Package):\n    version(\"1.2.12\")\n");
  repo.add_package_py(
      "class Hdf5(Package):\n    version(\"1.12.1\")\n"
      "    depends_on(\"zlib\")\n");
  repo.add_package_py(
      "class App(Package):\n    version(\"1.0\")\n"
      "    depends_on(\"hdf5\")\n");
  const spack::Concretizer concretizer(repo);
  const auto dag = concretizer.concretize("app");

  vfs::FileSystem fs;
  fs.set_latency_model(std::make_shared<vfs::NfsModel>());
  pkg::store::Store store(fs, "/spack/store");
  const auto installed = spack::install_dag(store, dag);

  loader::Loader loader(fs);
  const auto normal =
      launch::simulate_launch(fs, loader, installed.exe_path, {}, 256);
  ASSERT_TRUE(normal.load_succeeded);

  ASSERT_TRUE(shrinkwrap::shrinkwrap(fs, loader, installed.exe_path).ok());
  const auto wrapped =
      launch::simulate_launch(fs, loader, installed.exe_path, {}, 256);
  ASSERT_TRUE(wrapped.load_succeeded);
  EXPECT_LT(wrapped.meta_ops_per_rank, normal.meta_ops_per_rank);
  EXPECT_LE(wrapped.total_time_s, normal.total_time_s);
}

TEST(Integration, LayeredSystemLikeLassen) {
  // §II-E: FHS base + TCE-like module dir + user store, composed.
  vfs::FileSystem fs;

  // Base OS in the FHS.
  pkg::fhs::Installer base(fs);
  pkg::fhs::Package libc_pkg;
  libc_pkg.name = "glibc";
  libc_pkg.version = "2.33";
  libc_pkg.files.push_back(
      {"usr/lib/libc.so.6", "", elf::make_library("libc.so.6")});
  base.install(libc_pkg);

  // A TCE-style compiler runtime exposed via a module.
  elf::install_object(fs, "/usr/tce/gcc-12/lib/libstdcpp.so",
                      elf::make_library("libstdcpp.so", {"libc.so.6"}));
  pkg::modules::ModuleSystem modules;
  pkg::modules::Module gcc_module;
  gcc_module.name = "gcc/12";
  gcc_module.ld_library_path_prepend = {"/usr/tce/gcc-12/lib"};
  modules.add(gcc_module);
  modules.load("gcc/12");

  // A user application in a store, linking against both layers.
  pkg::store::Store store(fs, "/usr/workspace/store");
  pkg::store::PackageSpec app;
  app.name = "mycode";
  app.version = "1.0";
  app.files.push_back(
      {"lib/libmycode.so",
       elf::make_library("libmycode.so", {"libstdcpp.so", "libc.so.6"}), ""});
  app.files.push_back(
      {"bin/mycode", elf::make_executable({"libmycode.so"}), ""});
  const auto& installed = store.add(app);

  loader::Loader loader(fs);
  const auto report =
      loader.load(installed.prefix + "/bin/mycode", modules.environment());
  ASSERT_TRUE(report.success);
  EXPECT_EQ(report.find_loaded("libstdcpp.so")->how,
            loader::HowFound::LdLibraryPath);
  EXPECT_EQ(report.find_loaded("libc.so.6")->how,
            loader::HowFound::DefaultPath);

  // Without the module the app breaks — the composition fragility of §II-E.
  modules.unload("gcc/12");
  loader.invalidate();
  EXPECT_FALSE(
      loader.load(installed.prefix + "/bin/mycode", modules.environment())
          .success);

  // Shrinkwrap (resolved inside the working environment) removes the
  // module dependence entirely.
  modules.load("gcc/12");
  shrinkwrap::Options options;
  options.env = modules.environment();
  ASSERT_TRUE(shrinkwrap::shrinkwrap(fs, loader,
                                     installed.prefix + "/bin/mycode",
                                     options)
                  .ok());
  modules.unload("gcc/12");
  EXPECT_TRUE(
      loader.load(installed.prefix + "/bin/mycode", modules.environment())
          .success);
}

TEST(Integration, DlopenAuditLiftsPluginClosure) {
  // §IV future work: plugins reached only through dlopen get frozen too.
  vfs::FileSystem fs;
  elf::install_object(fs, "/plug/deps/libleaf.so",
                      elf::make_library("libleaf.so"));
  elf::Object plugin = elf::make_library("libplugin.so", {"libleaf.so"},
                                         {"/plug/deps"});
  elf::install_object(fs, "/plug/libplugin.so", plugin);

  elf::Object gui = elf::make_library("libgui.so", {}, {"/plug"});
  gui.dlopen_names = {"libplugin.so"};
  elf::install_object(fs, "/qt/libgui.so", gui);

  elf::install_object(fs, "/bin/app",
                      elf::make_executable({"libgui.so"}, {}, {"/qt"}));

  loader::Loader loader(fs);
  shrinkwrap::Options options;
  options.audit_dlopens = true;
  const auto wrap = shrinkwrap::shrinkwrap(fs, loader, "/bin/app", options);
  ASSERT_TRUE(wrap.ok());
  ASSERT_EQ(wrap.dlopen_lifted.size(), 2u);  // plugin + its leaf dep
  EXPECT_TRUE(wrap.dlopen_unresolved.empty());

  const auto exe = elf::read_object(fs, "/bin/app");
  EXPECT_NE(std::find(exe.dyn.needed.begin(), exe.dyn.needed.end(),
                      "/plug/libplugin.so"),
            exe.dyn.needed.end());
  EXPECT_NE(std::find(exe.dyn.needed.begin(), exe.dyn.needed.end(),
                      "/plug/deps/libleaf.so"),
            exe.dyn.needed.end());
}

TEST(Integration, DlopenAuditReportsMissingPlugins) {
  vfs::FileSystem fs;
  elf::Object gui = elf::make_library("libgui.so");
  gui.dlopen_names = {"libabsent_plugin.so"};
  elf::install_object(fs, "/qt/libgui.so", gui);
  elf::install_object(fs, "/bin/app",
                      elf::make_executable({"libgui.so"}, {}, {"/qt"}));
  loader::Loader loader(fs);
  shrinkwrap::Options options;
  options.audit_dlopens = true;
  const auto wrap = shrinkwrap::shrinkwrap(fs, loader, "/bin/app", options);
  EXPECT_TRUE(wrap.ok());  // missing plugins are non-fatal
  ASSERT_EQ(wrap.dlopen_unresolved.size(), 1u);
  EXPECT_EQ(wrap.dlopen_unresolved[0], "libabsent_plugin.so");
}

TEST(Integration, BundleVsStoreVsViewOnSameApp) {
  // The same logical app delivered three ways; all load, with different
  // resolution mechanics.
  // 1. Bundle.
  {
    vfs::FileSystem fs;
    pkg::bundle::BundleSpec spec;
    spec.name = "tool";
    spec.exe = elf::make_executable({"libcore.so"});
    spec.libs = {{"libcore.so", elf::make_library("libcore.so")}};
    const auto bundle = pkg::bundle::create_bundle(fs, spec);
    loader::Loader loader(fs);
    const auto report = loader.load(bundle.exe_path);
    ASSERT_TRUE(report.success);
    EXPECT_EQ(report.load_order[1].how, loader::HowFound::Runpath);
  }
  // 2. Store + shrinkwrap.
  {
    vfs::FileSystem fs;
    pkg::store::Store store(fs);
    pkg::store::PackageSpec core;
    core.name = "core";
    core.version = "1";
    core.files.push_back(
        {"lib/libcore.so", elf::make_library("libcore.so"), ""});
    const auto& core_installed = store.add(core);
    pkg::store::PackageSpec tool;
    tool.name = "tool";
    tool.version = "1";
    tool.deps = {core_installed.prefix};
    tool.files.push_back(
        {"bin/tool", elf::make_executable({"libcore.so"}), ""});
    const auto& tool_installed = store.add(tool);
    loader::Loader loader(fs);
    const auto exe_path = tool_installed.prefix + "/bin/tool";
    ASSERT_TRUE(loader.load(exe_path).success);
    ASSERT_TRUE(shrinkwrap::shrinkwrap(fs, loader, exe_path).ok());
    const auto wrapped = loader.load(exe_path);
    ASSERT_TRUE(wrapped.success);
    EXPECT_EQ(wrapped.load_order[1].how, loader::HowFound::AbsolutePath);
  }
  // 3. Store + dependency view.
  {
    vfs::FileSystem fs;
    elf::install_object(fs, "/s/core/lib/libcore.so",
                        elf::make_library("libcore.so"));
    elf::install_object(
        fs, "/s/tool/bin/tool",
        elf::make_executable({"libcore.so"}, {}, {"/s/core/lib"}));
    loader::Loader loader(fs);
    const auto view = shrinkwrap::make_dependency_view(
        fs, loader, "/s/tool/bin/tool", "/views/tool");
    ASSERT_TRUE(view.ok);
    const auto report = loader.load("/s/tool/bin/tool");
    ASSERT_TRUE(report.success);
    EXPECT_TRUE(report.load_order[1].path.starts_with("/views/tool/lib"));
  }
}

TEST(Integration, InterposedProfilerSurvivesWrapping) {
  // LD_PRELOAD-based PMPI-style tooling keeps working on wrapped binaries
  // (§IV: "traditional preloaded tools continue to work as normal").
  vfs::FileSystem fs;
  elf::Object mpi = elf::make_library("libmpi.so");
  mpi.symbols.push_back(
      elf::Symbol{"MPI_Send", elf::SymbolBinding::Global, true});
  elf::install_object(fs, "/l/libmpi.so", mpi);
  elf::Object wrapper = elf::make_library("libmpiP.so");
  wrapper.symbols.push_back(
      elf::Symbol{"MPI_Send", elf::SymbolBinding::Global, true});
  elf::install_object(fs, "/usr/lib/libmpiP.so", wrapper);

  elf::Object exe = elf::make_executable({"libmpi.so"}, {}, {"/l"});
  exe.symbols.push_back(
      elf::Symbol{"MPI_Send", elf::SymbolBinding::Global, false});
  elf::install_object(fs, "/bin/mpiapp", exe);

  loader::Loader loader(fs);
  ASSERT_TRUE(shrinkwrap::shrinkwrap(fs, loader, "/bin/mpiapp").ok());
  loader::Environment env;
  env.ld_preload = {"libmpiP.so"};
  const auto bind = loader::bind_symbols(loader.load("/bin/mpiapp", env));
  ASSERT_NE(bind.provider_of("MPI_Send"), nullptr);
  EXPECT_EQ(*bind.provider_of("MPI_Send"), "/usr/lib/libmpiP.so");
}

}  // namespace
}  // namespace depchaos
