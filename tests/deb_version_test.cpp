#include <gtest/gtest.h>

#include "depchaos/pkg/deb_version.hpp"
#include "depchaos/workload/debian.hpp"

namespace depchaos::pkg::deb {
namespace {

TEST(DebVersion, NumericOrdering) {
  EXPECT_LT(compare_versions("1.9", "1.10"), 0);
  EXPECT_LT(compare_versions("2.0", "10.0"), 0);
  EXPECT_EQ(compare_versions("1.0", "1.0"), 0);
  EXPECT_GT(compare_versions("1.0.1", "1.0"), 0);
}

TEST(DebVersion, LeadingZerosIgnored) {
  EXPECT_EQ(compare_versions("1.01", "1.1"), 0);
  EXPECT_LT(compare_versions("1.09", "1.10"), 0);
}

TEST(DebVersion, TildeSortsBeforeEverything) {
  EXPECT_LT(compare_versions("1.0~rc1", "1.0"), 0);
  EXPECT_LT(compare_versions("1.0~~", "1.0~"), 0);
  EXPECT_LT(compare_versions("1.0~beta", "1.0~rc"), 0);
}

TEST(DebVersion, LettersBeforeNonLetters) {
  EXPECT_LT(compare_versions("1.0a", "1.0+"), 0);
  EXPECT_GT(compare_versions("1.0+dfsg", "1.0"), 0);
}

TEST(DebVersion, EpochDominates) {
  EXPECT_LT(compare_versions("9.9", "1:0.1"), 0);
  EXPECT_LT(compare_versions("1:1.0", "2:0.1"), 0);
  EXPECT_EQ(compare_versions("0:1.0", "1.0"), 0);
}

TEST(DebVersion, RevisionTieBreaks) {
  EXPECT_LT(compare_versions("1.0-1", "1.0-2"), 0);
  EXPECT_EQ(compare_versions("1.0-1", "1.0-1"), 0);
  EXPECT_LT(compare_versions("1.0", "1.0-1"), 0);  // missing rev = "0"
}

TEST(DebVersion, BadEpochThrows) {
  EXPECT_THROW(compare_versions("x:1.0", "1.0"), ParseError);
}

TEST(DebVersion, RelationOperators) {
  EXPECT_TRUE(version_satisfies("2.0", ">=", "1.9"));
  EXPECT_TRUE(version_satisfies("2.0", ">>", "1.9"));
  EXPECT_FALSE(version_satisfies("2.0", ">>", "2.0"));
  EXPECT_TRUE(version_satisfies("2.0", "=", "2.0"));
  EXPECT_TRUE(version_satisfies("1.5", "<<", "2.0"));
  EXPECT_FALSE(version_satisfies("2.0", "<=", "1.9"));
  EXPECT_THROW(version_satisfies("1", "~>", "2"), ParseError);
}

TEST(DebVersion, DepAcceptsHonorsKind) {
  DepSpec unversioned{"x", DepKind::Unversioned, "", ""};
  EXPECT_TRUE(dep_accepts(unversioned, "0.0.1"));
  DepSpec range{"x", DepKind::VersionRange, ">=", "2.0"};
  EXPECT_TRUE(dep_accepts(range, "2.1"));
  EXPECT_FALSE(dep_accepts(range, "1.9"));
}

TEST(Consistency, CleanArchivePasses) {
  std::vector<Package> archive = parse_control(
      "Package: a\nVersion: 2.0-1\nDepends: b (>= 1.0), c\n"
      "\nPackage: b\nVersion: 1.5\n"
      "\nPackage: c\nVersion: 0.1\n");
  const auto report = check_archive(archive);
  EXPECT_TRUE(report.consistent());
  EXPECT_EQ(report.deps_checked, 2u);
}

TEST(Consistency, FindsMissingPackageAndBadVersion) {
  std::vector<Package> archive = parse_control(
      "Package: a\nVersion: 1.0\nDepends: ghost, b (>= 9.0)\n"
      "\nPackage: b\nVersion: 1.5\n");
  const auto report = check_archive(archive);
  ASSERT_EQ(report.broken.size(), 2u);
  EXPECT_TRUE(report.broken[0].target_missing);
  EXPECT_FALSE(report.broken[1].target_missing);
}

TEST(Consistency, MultipleVersionsAnyMatchCounts) {
  std::vector<Package> archive = parse_control(
      "Package: a\nVersion: 1.0\nDepends: b (>= 2.0)\n"
      "\nPackage: b\nVersion: 1.0\n"
      "\nPackage: b\nVersion: 2.5\n");
  EXPECT_TRUE(check_archive(archive).consistent());
}

TEST(Consistency, CuratedCorpusIsConsistent) {
  workload::DebianCorpusConfig config;
  config.num_packages = 3000;
  const auto corpus = workload::generate_debian_corpus(config);
  EXPECT_TRUE(check_archive(corpus).consistent());
}

TEST(Consistency, BrokenFractionIsDetected) {
  workload::DebianCorpusConfig config;
  config.num_packages = 3000;
  config.broken_fraction = 0.02;
  const auto corpus = workload::generate_debian_corpus(config);
  const auto report = check_archive(corpus);
  EXPECT_FALSE(report.consistent());
  const double rate = static_cast<double>(report.broken.size()) /
                      static_cast<double>(report.deps_checked);
  // A broken dependency is always emitted in versioned form, so the
  // observed rate tracks broken_fraction directly.
  EXPECT_GT(rate, 0.01);
  EXPECT_LT(rate, 0.035);
}

TEST(Consistency, ParallelMatchesSerial) {
  workload::DebianCorpusConfig config;
  config.num_packages = 5000;
  config.broken_fraction = 0.01;
  const auto corpus = workload::generate_debian_corpus(config);
  support::ThreadPool pool(4);
  const auto serial = check_archive(corpus);
  const auto parallel = check_archive_parallel(pool, corpus);
  EXPECT_EQ(serial.deps_checked, parallel.deps_checked);
  EXPECT_EQ(serial.broken.size(), parallel.broken.size());
}

}  // namespace
}  // namespace depchaos::pkg::deb
