#include <gtest/gtest.h>

#include "depchaos/elf/patcher.hpp"
#include "depchaos/loader/loader.hpp"
#include "depchaos/shrinkwrap/shrinkwrap.hpp"
#include "depchaos/vfs/snapshot.hpp"
#include "depchaos/workload/pynamic.hpp"
#include "depchaos/workload/scenarios.hpp"

namespace depchaos::vfs {
namespace {

TEST(Snapshot, EmptyWorldRoundTrips) {
  FileSystem fs;
  const auto restored = load_world(save_world(fs));
  EXPECT_EQ(restored.list_dir("/").size(), 0u);
}

TEST(Snapshot, FilesDirsLinksRoundTrip) {
  FileSystem fs;
  fs.write_file("/a/b/file.txt", std::string("hello\nworld\n"));
  FileData big;
  big.bytes = "small body";
  big.declared_size = 1 << 20;
  fs.write_file("/a/big.bin", std::move(big));
  fs.mkdir_p("/empty/dir");
  fs.symlink("../b/file.txt", "/a/c/rel_link");
  fs.symlink("/a/b/file.txt", "/abs_link");
  fs.symlink("/nowhere", "/dangling");

  const auto restored = load_world(save_world(fs));
  EXPECT_EQ(restored.peek("/a/b/file.txt")->bytes, "hello\nworld\n");
  EXPECT_EQ(restored.peek("/a/big.bin")->size(), 1u << 20);
  EXPECT_TRUE(restored.exists("/empty/dir"));
  EXPECT_EQ(restored.peek_link_target("/a/c/rel_link").value(),
            "../b/file.txt");
  EXPECT_EQ(restored.peek("/a/c/rel_link")->bytes, "hello\nworld\n");
  EXPECT_EQ(restored.peek_link_target("/dangling").value(), "/nowhere");
  EXPECT_FALSE(restored.exists("/dangling"));
}

TEST(Snapshot, DoubleRoundTripIsStable) {
  FileSystem fs;
  fs.write_file("/x/y", std::string("payload with\nfile /fake 1 2\ninside"));
  fs.symlink("/x/y", "/z");
  const auto once = save_world(fs);
  const auto twice = save_world(load_world(once));
  EXPECT_EQ(once, twice);
}

TEST(Snapshot, SelfImagesSurvive) {
  FileSystem fs;
  elf::install_object(fs, "/l/libx.so", elf::make_library("libx.so"));
  elf::install_object(fs, "/bin/app",
                      elf::make_executable({"libx.so"}, {"/l"}));
  auto restored = load_world(save_world(fs));
  loader::Loader loader(restored);
  EXPECT_TRUE(loader.load("/bin/app").success);
}

TEST(Snapshot, WholeScenarioSurvivesIncludingShrinkwrap) {
  FileSystem fs;
  workload::PynamicConfig config;
  config.num_modules = 30;
  config.exe_extra_bytes = 0;
  const auto app = workload::generate_pynamic(fs, config);

  auto restored = load_world(save_world(fs));
  loader::Loader loader(restored);
  ASSERT_TRUE(shrinkwrap::shrinkwrap(restored, loader, app.exe_path).ok());
  // And the wrapped world snapshots again.
  auto restored2 = load_world(save_world(restored));
  loader::Loader loader2(restored2);
  const auto report = loader2.load(app.exe_path);
  ASSERT_TRUE(report.success);
  EXPECT_EQ(report.stats.failed_probes, 0u);
}

TEST(Snapshot, RejectsBadMagic) {
  EXPECT_THROW(load_world("NOTAWORLD\n"), FsError);
}

TEST(Snapshot, RejectsTruncatedPayload) {
  EXPECT_THROW(load_world("DCWORLD1\nfile /x 0 100\nshort"), FsError);
}

TEST(Snapshot, RejectsUnknownRecord) {
  EXPECT_THROW(load_world("DCWORLD1\nblob /x\n"), FsError);
}

// ---------------------------------------------------------- probe logging

TEST(ProbeLog, RecordsEveryOutcomeKind) {
  FileSystem fs;
  fs.write_file("/p1/libx.so", std::string("not an object"));
  elf::Object wrong_arch = elf::make_library("libx.so");
  wrong_arch.machine = elf::Machine::AArch64;
  elf::install_object(fs, "/p2/libx.so", wrong_arch);
  elf::install_object(fs, "/p3/libx.so", elf::make_library("libx.so"));
  elf::install_object(
      fs, "/bin/app",
      elf::make_executable({"libx.so"}, {"/p0", "/p1", "/p2", "/p3"}));

  loader::SearchConfig config;
  config.record_probes = true;
  loader::Loader loader(fs, config);
  const auto report = loader.load("/bin/app");
  ASSERT_TRUE(report.success);
  const auto joined = [&] {
    std::string all;
    for (const auto& line : report.probe_log) all += line + "\n";
    return all;
  }();
  EXPECT_NE(joined.find("/p0/libx.so ... ENOENT"), std::string::npos);
  EXPECT_NE(joined.find("/p1/libx.so ... not an object"), std::string::npos);
  EXPECT_NE(joined.find("/p2/libx.so ... wrong architecture"),
            std::string::npos);
  EXPECT_NE(joined.find("/p3/libx.so ... found"), std::string::npos);
}

TEST(ProbeLog, OffByDefault) {
  FileSystem fs;
  elf::install_object(fs, "/bin/app", elf::make_executable({}));
  loader::Loader loader(fs);
  EXPECT_TRUE(loader.load("/bin/app").probe_log.empty());
}

TEST(ProbeLog, ShadowClassificationProbesNotLogged) {
  FileSystem fs;
  elf::install_object(fs, "/l/libshared.so", elf::make_library("libshared.so"));
  elf::install_object(
      fs, "/l/liba.so",
      elf::make_library("liba.so", {"libshared.so"}, {"/l"}));
  elf::install_object(
      fs, "/bin/app",
      elf::make_executable({"liba.so", "libshared.so"}, {"/l"}));
  loader::SearchConfig plain_config;
  plain_config.record_probes = true;
  loader::Loader plain(fs, plain_config);
  const auto baseline = plain.load("/bin/app").probe_log.size();

  loader::SearchConfig shadow_config = plain_config;
  shadow_config.classify_cache_hits = true;
  loader::Loader shadowing(fs, shadow_config);
  EXPECT_EQ(shadowing.load("/bin/app").probe_log.size(), baseline);
}

}  // namespace
}  // namespace depchaos::vfs
