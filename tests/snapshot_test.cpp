#include <gtest/gtest.h>

#include "depchaos/elf/patcher.hpp"
#include "depchaos/loader/loader.hpp"
#include "depchaos/shrinkwrap/shrinkwrap.hpp"
#include "depchaos/vfs/snapshot.hpp"
#include "depchaos/workload/pynamic.hpp"
#include "depchaos/workload/scenarios.hpp"

namespace depchaos::vfs {
namespace {

TEST(Snapshot, EmptyWorldRoundTrips) {
  FileSystem fs;
  const auto restored = load_world(save_world(fs));
  EXPECT_EQ(restored.list_dir("/").size(), 0u);
}

TEST(Snapshot, FilesDirsLinksRoundTrip) {
  FileSystem fs;
  fs.write_file("/a/b/file.txt", std::string("hello\nworld\n"));
  FileData big;
  big.bytes = "small body";
  big.declared_size = 1 << 20;
  fs.write_file("/a/big.bin", std::move(big));
  fs.mkdir_p("/empty/dir");
  fs.symlink("../b/file.txt", "/a/c/rel_link");
  fs.symlink("/a/b/file.txt", "/abs_link");
  fs.symlink("/nowhere", "/dangling");

  const auto restored = load_world(save_world(fs));
  EXPECT_EQ(restored.peek("/a/b/file.txt")->bytes, "hello\nworld\n");
  EXPECT_EQ(restored.peek("/a/big.bin")->size(), 1u << 20);
  EXPECT_TRUE(restored.exists("/empty/dir"));
  EXPECT_EQ(restored.peek_link_target("/a/c/rel_link").value(),
            "../b/file.txt");
  EXPECT_EQ(restored.peek("/a/c/rel_link")->bytes, "hello\nworld\n");
  EXPECT_EQ(restored.peek_link_target("/dangling").value(), "/nowhere");
  EXPECT_FALSE(restored.exists("/dangling"));
}

TEST(Snapshot, DoubleRoundTripIsStable) {
  FileSystem fs;
  fs.write_file("/x/y", std::string("payload with\nfile /fake 1 2\ninside"));
  fs.symlink("/x/y", "/z");
  const auto once = save_world(fs);
  const auto twice = save_world(load_world(once));
  EXPECT_EQ(once, twice);
}

TEST(Snapshot, SelfImagesSurvive) {
  FileSystem fs;
  elf::install_object(fs, "/l/libx.so", elf::make_library("libx.so"));
  elf::install_object(fs, "/bin/app",
                      elf::make_executable({"libx.so"}, {"/l"}));
  auto restored = load_world(save_world(fs));
  loader::Loader loader(restored);
  EXPECT_TRUE(loader.load("/bin/app").success);
}

TEST(Snapshot, WholeScenarioSurvivesIncludingShrinkwrap) {
  FileSystem fs;
  workload::PynamicConfig config;
  config.num_modules = 30;
  config.exe_extra_bytes = 0;
  const auto app = workload::generate_pynamic(fs, config);

  auto restored = load_world(save_world(fs));
  loader::Loader loader(restored);
  ASSERT_TRUE(shrinkwrap::shrinkwrap(restored, loader, app.exe_path).ok());
  // And the wrapped world snapshots again.
  auto restored2 = load_world(save_world(restored));
  loader::Loader loader2(restored2);
  const auto report = loader2.load(app.exe_path);
  ASSERT_TRUE(report.success);
  EXPECT_EQ(report.stats.failed_probes, 0u);
}

TEST(Snapshot, RejectsBadMagic) {
  EXPECT_THROW(load_world("NOTAWORLD\n"), FsError);
}

// -------------------------------------------------- DCWORLD2 fleet images

FileSystem fleet_base() {
  FileSystem base;
  base.write_file("/usr/lib/libc.so", std::string("libc bytes"));
  base.write_file("/usr/lib/libm.so", std::string("libm bytes"));
  base.write_file("/etc/conf", std::string("base conf"));
  base.symlink("libc.so", "/usr/lib/libc.so.6");
  base.mkdir_p("/var/empty");
  return base;
}

TEST(FleetSnapshot, ForkFleetSaveLoadEquivalence) {
  FileSystem base = fleet_base();
  FileSystem a = base.fork();
  FileSystem b = base.fork();
  FileSystem untouched = base.fork();
  // Divergence of every structural kind: adds, edits, removes, renames.
  a.write_file("/etc/conf", std::string("A's conf"));
  a.write_file("/home/a/new.txt", std::string("new in A"));
  a.remove("/usr/lib/libm.so");
  b.rename("/etc/conf", "/etc/conf.bak");
  b.symlink("/etc/conf.bak", "/etc/conf");

  const std::vector<const FileSystem*> views = {&a, &b, &untouched};
  const std::string image = save_fleet(base, views);
  ASSERT_TRUE(is_fleet_image(image));
  auto fleet = load_fleet(image);
  ASSERT_EQ(fleet.views.size(), 3u);
  EXPECT_EQ(save_world(fleet.base), save_world(base));
  EXPECT_EQ(save_world(fleet.views[0]), save_world(a));
  EXPECT_EQ(save_world(fleet.views[1]), save_world(b));
  EXPECT_EQ(save_world(fleet.views[2]), save_world(untouched));

  // Deltas are deltas: the image must be far smaller than per-view fulls.
  const std::size_t fulls =
      save_world(a).size() + save_world(b).size() + save_world(base).size();
  EXPECT_LT(image.size(), fulls);

  // And a re-save of the restored fleet is byte-identical — the layer
  // graft reproduces storage, not just observable content.
  const std::vector<const FileSystem*> restored = {
      &fleet.views[0], &fleet.views[1], &fleet.views[2]};
  EXPECT_EQ(save_fleet(fleet.base, restored), image);
}

TEST(FleetSnapshot, V1ToV2MigrationKeepsContent) {
  FileSystem original = fleet_base();
  const std::string v1 = save_world(original);
  FileSystem migrated = load_world(v1);
  const std::string v2 = save_fleet(migrated, {});
  ASSERT_TRUE(is_fleet_image(v2));
  auto fleet = load_fleet(v2);
  EXPECT_TRUE(fleet.views.empty());
  EXPECT_EQ(save_world(fleet.base), v1);
  // And v1 images load through the fleet entry point too.
  auto via_fleet = load_fleet(v1);
  EXPECT_EQ(save_world(via_fleet.base), v1);
}

TEST(FleetSnapshot, MountsPersistSharedImagesOnceAndOverlaysAsDeltas) {
  auto app = std::make_shared<FileSystem>();
  app->write_file("/lib/libapp.so", std::string(2048, 'X'));
  FileSystem base = fleet_base();
  FileSystem a = base.fork();
  FileSystem b = base.fork();
  for (FileSystem* view : {&a, &b}) {
    view->mount_overlay("/app", app);
    view->mount_image("/ro", app);
    view->mount_tmpfs("/scratch");
  }
  a.write_file("/app/lib/patch.diff", std::string("A only"));
  a.write_file("/scratch/a.tmp", std::string("tmp A"));

  const std::vector<const FileSystem*> views = {&a, &b};
  const std::string image = save_fleet(base, views);
  // The 2 KiB app image appears once, not four times (2 views x 2 mounts).
  EXPECT_LT(image.size(),
            save_world(*app).size() * 2 + save_world(base).size() * 2);

  auto fleet = load_fleet(image);
  ASSERT_EQ(fleet.views.size(), 2u);
  EXPECT_EQ(save_world(fleet.views[0]), save_world(a));
  EXPECT_EQ(save_world(fleet.views[1]), save_world(b));
  const auto mounts = fleet.views[0].mounts();
  ASSERT_EQ(mounts.size(), 3u);
  EXPECT_EQ(mounts[0].point, "/app");
  EXPECT_EQ(mounts[0].kind, MountKind::Overlay);
  EXPECT_EQ(mounts[1].point, "/ro");
  EXPECT_EQ(mounts[1].kind, MountKind::Image);
  EXPECT_TRUE(mounts[1].read_only);
  EXPECT_EQ(mounts[2].kind, MountKind::Tmpfs);
  // Restored overlay/tmpfs content and divergence survived.
  EXPECT_EQ(fleet.views[0].peek("/app/lib/patch.diff")->bytes, "A only");
  EXPECT_FALSE(fleet.views[1].exists("/app/lib/patch.diff"));
  EXPECT_EQ(fleet.views[0].peek("/scratch/a.tmp")->bytes, "tmp A");
}

TEST(FleetSnapshot, RejectsBindMountsAndForeignViews) {
  FileSystem base = fleet_base();
  FileSystem view = base.fork();
  auto src = std::make_shared<FileSystem>();
  src->mkdir_p("/data");
  view.mount_bind("/mnt", src, "/data");
  const std::vector<const FileSystem*> views = {&view};
  EXPECT_THROW(save_fleet(base, views), FsError);

  FileSystem stranger;  // not a fork of base
  stranger.write_file("/x", std::string("y"));
  const std::vector<const FileSystem*> foreign = {&stranger};
  EXPECT_THROW(save_fleet(base, foreign), FsError);

  FileSystem mutated_base = fleet_base();
  FileSystem child = mutated_base.fork();
  mutated_base.write_file("/drift", std::string("post-fork"));
  const std::vector<const FileSystem*> drifted = {&child};
  EXPECT_THROW(save_fleet(mutated_base, drifted), FsError);
}

TEST(FleetSnapshot, RejectsMalformedImages) {
  // Truncated header.
  EXPECT_THROW(load_fleet("DCWORLD2\n"), FsError);
  // Bad section keyword.
  EXPECT_THROW(load_fleet("DCWORLD2\nimagine 1\n"), FsError);
  // Image table inconsistencies.
  EXPECT_THROW(load_fleet("DCWORLD2\nimages 1\nimage 7 2 1\nendimage\n"),
               FsError);
  EXPECT_THROW(load_fleet("DCWORLD2\nimages 0\nviews 0\n"), FsError);
  // Inode out of the declared range.
  EXPECT_THROW(load_fleet("DCWORLD2\nimages 1\nimage 0 2 1\n"
                          "node 5 link /x\nendimage\nviews 0\n"),
               FsError);
  // Child reference out of the declared range (would be an OOB read on
  // first resolution if accepted).
  EXPECT_THROW(load_fleet("DCWORLD2\nimages 1\nimage 0 3 2\n"
                          "node 1 dir 1\nc 200 f\nnode 2 file 0 0\n\n"
                          "endimage\nviews 0\n"),
               FsError);
  // Absurd size fields must throw FsError, not drive huge allocations.
  EXPECT_THROW(load_fleet("DCWORLD2\nimages 1\nimage 0 99999999999999 1\n"
                          "endimage\nviews 0\n"),
               FsError);
  EXPECT_THROW(load_fleet("DCWORLD2\nimages 99999999999999\n"), FsError);
  EXPECT_THROW(load_fleet("DCWORLD2\nimages 1\nimage 0 3 2\n"
                          "node 1 dir 99999999999\nendimage\nviews 0\n"),
               FsError);
  // Truncated file payload inside a node record.
  EXPECT_THROW(load_fleet("DCWORLD2\nimages 1\nimage 0 3 2\n"
                          "node 1 dir 1\nc 2 f\nnode 2 file 0 100\nshort"),
               FsError);
  // Unknown node kind.
  EXPECT_THROW(load_fleet("DCWORLD2\nimages 1\nimage 0 3 2\n"
                          "node 1 dir 0\nnode 2 blob\nendimage\nviews 0\n"),
               FsError);
  // View referencing a missing image slot.
  EXPECT_THROW(
      load_fleet("DCWORLD2\nimages 1\nimage 0 2 1\nnode 1 dir 0\nendimage\n"
                 "views 1\nview 2 1\nmount image ro 4 0 0 /app\nendmount\n"
                 "endview\n"),
      FsError);
  // A well-formed minimal image for contrast.
  auto minimal = load_fleet(
      "DCWORLD2\nimages 1\nimage 0 2 1\nnode 1 dir 0\nendimage\nviews 0\n");
  EXPECT_TRUE(minimal.views.empty());
  EXPECT_TRUE(minimal.base.list_dir("/").empty());
}

TEST(Snapshot, RejectsTruncatedPayload) {
  EXPECT_THROW(load_world("DCWORLD1\nfile /x 0 100\nshort"), FsError);
}

TEST(Snapshot, RejectsUnknownRecord) {
  EXPECT_THROW(load_world("DCWORLD1\nblob /x\n"), FsError);
}

// ---------------------------------------------------------- probe logging

TEST(ProbeLog, RecordsEveryOutcomeKind) {
  FileSystem fs;
  fs.write_file("/p1/libx.so", std::string("not an object"));
  elf::Object wrong_arch = elf::make_library("libx.so");
  wrong_arch.machine = elf::Machine::AArch64;
  elf::install_object(fs, "/p2/libx.so", wrong_arch);
  elf::install_object(fs, "/p3/libx.so", elf::make_library("libx.so"));
  elf::install_object(
      fs, "/bin/app",
      elf::make_executable({"libx.so"}, {"/p0", "/p1", "/p2", "/p3"}));

  loader::SearchConfig config;
  config.record_probes = true;
  loader::Loader loader(fs, config);
  const auto report = loader.load("/bin/app");
  ASSERT_TRUE(report.success);
  const auto joined = [&] {
    std::string all;
    for (const auto& line : report.probe_log) all += line + "\n";
    return all;
  }();
  EXPECT_NE(joined.find("/p0/libx.so ... ENOENT"), std::string::npos);
  EXPECT_NE(joined.find("/p1/libx.so ... not an object"), std::string::npos);
  EXPECT_NE(joined.find("/p2/libx.so ... wrong architecture"),
            std::string::npos);
  EXPECT_NE(joined.find("/p3/libx.so ... found"), std::string::npos);
}

TEST(ProbeLog, OffByDefault) {
  FileSystem fs;
  elf::install_object(fs, "/bin/app", elf::make_executable({}));
  loader::Loader loader(fs);
  EXPECT_TRUE(loader.load("/bin/app").probe_log.empty());
}

TEST(ProbeLog, ShadowClassificationProbesNotLogged) {
  FileSystem fs;
  elf::install_object(fs, "/l/libshared.so", elf::make_library("libshared.so"));
  elf::install_object(
      fs, "/l/liba.so",
      elf::make_library("liba.so", {"libshared.so"}, {"/l"}));
  elf::install_object(
      fs, "/bin/app",
      elf::make_executable({"liba.so", "libshared.so"}, {"/l"}));
  loader::SearchConfig plain_config;
  plain_config.record_probes = true;
  loader::Loader plain(fs, plain_config);
  const auto baseline = plain.load("/bin/app").probe_log.size();

  loader::SearchConfig shadow_config = plain_config;
  shadow_config.classify_cache_hits = true;
  loader::Loader shadowing(fs, shadow_config);
  EXPECT_EQ(shadowing.load("/bin/app").probe_log.size(), baseline);
}

}  // namespace
}  // namespace depchaos::vfs
