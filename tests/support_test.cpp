#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "depchaos/support/path_table.hpp"
#include "depchaos/support/rng.hpp"
#include "depchaos/support/sha256.hpp"
#include "depchaos/support/strings.hpp"
#include "depchaos/support/thread_pool.hpp"

namespace depchaos::support {
namespace {

// ---------------------------------------------------------------- sha256

TEST(Sha256, EmptyStringVector) {
  EXPECT_EQ(sha256_hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, AbcVector) {
  EXPECT_EQ(sha256_hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockVector) {
  EXPECT_EQ(sha256_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  Sha256 h;
  h.update("hello ");
  h.update("world");
  EXPECT_EQ(h.hex_digest(), sha256_hex("hello world"));
}

TEST(Sha256, LongInputCrossesBlockBoundaries) {
  std::string input(1000, 'x');
  Sha256 h;
  for (std::size_t i = 0; i < input.size(); i += 7) {
    h.update(input.substr(i, 7));
  }
  EXPECT_EQ(h.hex_digest(), sha256_hex(input));
}

TEST(Sha256, ExactBlockSizeInput) {
  const std::string input(64, 'a');
  EXPECT_EQ(sha256_hex(input),
            "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb");
}

TEST(Sha256, PrefixTruncates) {
  EXPECT_EQ(sha256_prefix("abc", 8), "ba7816bf");
  EXPECT_EQ(sha256_prefix("abc", 200).size(), 64u);
}

// ------------------------------------------------------------------ rng

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BetweenInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.between(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, WeightedPrefersHeavyBucket) {
  Rng rng(13);
  int heavy = 0;
  for (int i = 0; i < 1000; ++i) {
    if (rng.weighted({1.0, 9.0}) == 1) ++heavy;
  }
  EXPECT_GT(heavy, 800);
}

TEST(Zipf, RankZeroMostPopular) {
  Rng rng(17);
  ZipfSampler zipf(100, 1.2);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[99] * 5);
}

TEST(Zipf, CoversSupport) {
  Rng rng(19);
  ZipfSampler zipf(5, 0.5);
  std::set<std::size_t> seen;
  for (int i = 0; i < 5000; ++i) seen.insert(zipf.sample(rng));
  EXPECT_EQ(seen.size(), 5u);
}

// -------------------------------------------------------------- strings

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(Strings, SplitNonempty) {
  const auto parts = split_nonempty("/usr//lib/", '/');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "usr");
  EXPECT_EQ(parts[1], "lib");
}

TEST(Strings, TrimBothEnds) {
  EXPECT_EQ(trim("  x y\t\n"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ":"), "a:b:c");
  EXPECT_EQ(join({}, ":"), "");
}

TEST(Strings, IsAllDigits) {
  EXPECT_TRUE(is_all_digits("0123"));
  EXPECT_FALSE(is_all_digits(""));
  EXPECT_FALSE(is_all_digits("12a"));
  EXPECT_FALSE(is_all_digits("-1"));
}

TEST(Strings, ReplaceAll) {
  EXPECT_EQ(replace_all("$ORIGIN/lib:$ORIGIN", "$ORIGIN", "/app"),
            "/app/lib:/app");
  EXPECT_EQ(replace_all("aaa", "aa", "b"), "ba");
  EXPECT_EQ(replace_all("none", "x", "y"), "none");
}

// ------------------------------------------------------------ path table

TEST(PathTable, RootIsPreinterned) {
  PathTable table;
  EXPECT_EQ(table.intern("/"), PathTable::kRoot);
  EXPECT_EQ(table.str(PathTable::kRoot), "/");
  EXPECT_EQ(table.name(PathTable::kRoot), "/");
  EXPECT_EQ(table.parent(PathTable::kRoot), PathTable::kRoot);
  EXPECT_EQ(table.depth(PathTable::kRoot), 0u);
}

TEST(PathTable, InternIsStableAndNormalizing) {
  PathTable table;
  const PathId a = table.intern("/usr/lib/libx.so");
  EXPECT_EQ(table.intern("/usr/lib/libx.so"), a);
  EXPECT_EQ(table.intern("//usr//lib/./libx.so"), a);
  EXPECT_EQ(table.intern("/usr/lib/sub/../libx.so"), a);
  EXPECT_EQ(table.str(a), "/usr/lib/libx.so");
  EXPECT_EQ(table.name(a), "libx.so");
  EXPECT_EQ(table.depth(a), 3u);
  EXPECT_EQ(table.str(table.parent(a)), "/usr/lib");
}

TEST(PathTable, InternRejectsNonAbsolute) {
  PathTable table;
  EXPECT_THROW(table.intern(""), std::invalid_argument);
  EXPECT_THROW(table.intern("usr/lib"), std::invalid_argument);
}

TEST(PathTable, DotDotClampsAtRoot) {
  PathTable table;
  EXPECT_EQ(table.intern("/.."), PathTable::kRoot);
  EXPECT_EQ(table.intern("/../../a"), table.intern("/a"));
  EXPECT_EQ(table.child(PathTable::kRoot, ".."), PathTable::kRoot);
}

TEST(PathTable, ChildSteps) {
  PathTable table;
  const PathId usr = table.intern("/usr");
  EXPECT_EQ(table.child(usr, "lib"), table.intern("/usr/lib"));
  EXPECT_EQ(table.child(usr, "."), usr);
  EXPECT_EQ(table.child(usr, ""), usr);
  EXPECT_EQ(table.child(usr, ".."), PathTable::kRoot);
}

TEST(PathTable, InternUnderResolvesRelative) {
  PathTable table;
  const PathId dir = table.intern("/opt/app/lib");
  EXPECT_EQ(table.intern_under(dir, "libz.so"),
            table.intern("/opt/app/lib/libz.so"));
  EXPECT_EQ(table.intern_under(dir, "../share/x"),
            table.intern("/opt/app/share/x"));
  EXPECT_EQ(table.intern_under(dir, "./a/./b"),
            table.intern("/opt/app/lib/a/b"));
  EXPECT_EQ(table.intern_under(dir, ""), dir);
  // Absolute relatives restart from the root, ignoring the base.
  EXPECT_EQ(table.intern_under(dir, "/etc/ld.so.conf"),
            table.intern("/etc/ld.so.conf"));
}

TEST(PathTable, LookupNeverAllocates) {
  PathTable table;
  EXPECT_EQ(table.lookup("/not/yet/interned"), PathTable::kNone);
  const std::size_t before = table.size();
  EXPECT_EQ(table.lookup("/still/not/interned"), PathTable::kNone);
  EXPECT_EQ(table.size(), before);
  const PathId id = table.intern("/now/interned");
  EXPECT_EQ(table.lookup("/now/interned"), id);
  EXPECT_EQ(table.lookup("//now//./interned"), id);
}

TEST(PathTable, NameIsSpanOfFullString) {
  PathTable table;
  const PathId id = table.intern("/a/b/component");
  const std::string_view name = table.name(id);
  const std::string& full = table.str(id);
  // The span aliases the stored string — no separate allocation.
  EXPECT_GE(name.data(), full.data());
  EXPECT_EQ(name.data() + name.size(), full.data() + full.size());
  EXPECT_EQ(name, "component");
}

TEST(PathTable, ConcurrentInternIsConsistent) {
  PathTable table;
  constexpr int kThreads = 8;
  constexpr int kPaths = 200;
  std::vector<std::vector<PathId>> ids(kThreads,
                                       std::vector<PathId>(kPaths));
  {
    ThreadPool pool(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      pool.submit([&table, &ids, t] {
        for (int i = 0; i < kPaths; ++i) {
          // Every thread interns the same path set (plus reads back
          // already-published entries) — ids must agree across threads.
          ids[t][i] = table.intern("/shared/dir" + std::to_string(i % 20) +
                                   "/file" + std::to_string(i));
          EXPECT_FALSE(table.str(ids[t][i]).empty());
        }
      });
    }
    pool.wait_idle();
  }
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(ids[t], ids[0]);
}

TEST(PathTable, ByteBudgetBlocksNewPathsKeepsExisting) {
  PathTable table;
  const PathId existing = table.intern("/usr/lib/libx.so");
  ASSERT_NE(existing, PathTable::kNone);
  const std::size_t used = table.bytes_used();
  EXPECT_GT(used, 0u);
  table.set_byte_budget(used);

  // New paths are refused at every entry point...
  EXPECT_EQ(table.intern("/brand/new/path"), PathTable::kNone);
  EXPECT_EQ(table.child(existing, "sibling"), PathTable::kNone);
  EXPECT_EQ(table.intern_under(existing, "../deeper/still"), PathTable::kNone);
  // ...while existing ids keep resolving, including lexical aliases.
  EXPECT_EQ(table.intern("/usr/lib/libx.so"), existing);
  EXPECT_EQ(table.intern("/usr//lib/./libx.so"), existing);
  EXPECT_EQ(table.lookup("/usr/lib/libx.so"), existing);
  EXPECT_EQ(table.str(existing), "/usr/lib/libx.so");
  EXPECT_EQ(table.bytes_used(), used);

  // Raising the budget resumes growth exactly where it stopped.
  table.set_byte_budget(used * 4);
  const PathId fresh = table.intern("/brand/new/path");
  EXPECT_NE(fresh, PathTable::kNone);
  EXPECT_GT(table.bytes_used(), used);
}

TEST(PathTable, ByteBudgetBoundsAdversarialGrowth) {
  PathTable table;
  table.intern("/seed/dir");
  const std::size_t cap = table.bytes_used() + 4096;
  table.set_byte_budget(cap);
  // A randomized probe storm interns every miss — growth must stop at the
  // cap instead of scaling with the storm.
  Rng rng(42);
  std::size_t refused = 0;
  for (int i = 0; i < 5000; ++i) {
    const std::string path = "/storm/p" + std::to_string(rng.below(100000)) +
                             "/lib" + std::to_string(rng.next() % 100000) +
                             ".so";
    if (table.intern(path) == PathTable::kNone) ++refused;
  }
  EXPECT_LE(table.bytes_used(), cap);
  EXPECT_GT(refused, 4000u);  // nearly the whole storm bounced
}

// ----------------------------------------------------------- thread pool

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(5000);
  parallel_for(pool, hits.size(), [&](std::size_t i) { hits[i]++; }, 16);
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [&](std::size_t) { FAIL(); });
  SUCCEED();
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ThrowingTaskIsCapturedNotFatal) {
  ThreadPool pool(2);
  std::atomic<int> after{0};
  pool.submit([] { throw std::runtime_error("bad request"); });
  pool.submit([&] { after.fetch_add(1); });
  pool.wait_idle();
  // The pool survived the throw and kept serving.
  EXPECT_EQ(after.load(), 1);
  EXPECT_TRUE(pool.has_errors());
  auto errors = pool.take_errors();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_THROW(std::rethrow_exception(errors[0]), std::runtime_error);
  // take_errors drains the list.
  EXPECT_FALSE(pool.has_errors());
  EXPECT_TRUE(pool.take_errors().empty());
}

TEST(ThreadPool, TagStatsCountSubmittedCompletedFailed) {
  ThreadPool pool(2);
  for (int i = 0; i < 5; ++i) {
    pool.submit("svc/shard0", [i] {
      if (i % 2 == 0) throw std::runtime_error("boom");
    });
  }
  pool.submit([] {});  // untagged buckets under ""
  pool.wait_idle();
  const auto stats = pool.tag_stats();
  const auto& shard = stats.at("svc/shard0");
  EXPECT_EQ(shard.submitted, 5u);
  EXPECT_EQ(shard.completed, 5u);
  EXPECT_EQ(shard.failed, 3u);
  EXPECT_EQ(stats.at("").submitted, 1u);
  EXPECT_EQ(pool.take_errors().size(), 3u);
}

TEST(ThreadPool, ParallelForRethrowsFirstChunkError) {
  ThreadPool pool(4);
  std::atomic<int> visited{0};
  EXPECT_THROW(parallel_for(
                   pool, 1000,
                   [&](std::size_t i) {
                     visited.fetch_add(1);
                     if (i == 500) throw std::runtime_error("mid-batch");
                   },
                   16),
               std::runtime_error);
  // Other chunks were not skipped, and the pool's shared error list was
  // not polluted by parallel_for's private capture.
  EXPECT_GT(visited.load(), 500);
  EXPECT_FALSE(pool.has_errors());
}

}  // namespace
}  // namespace depchaos::support
