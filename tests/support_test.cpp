#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>

#include "depchaos/support/rng.hpp"
#include "depchaos/support/sha256.hpp"
#include "depchaos/support/strings.hpp"
#include "depchaos/support/thread_pool.hpp"

namespace depchaos::support {
namespace {

// ---------------------------------------------------------------- sha256

TEST(Sha256, EmptyStringVector) {
  EXPECT_EQ(sha256_hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, AbcVector) {
  EXPECT_EQ(sha256_hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockVector) {
  EXPECT_EQ(sha256_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  Sha256 h;
  h.update("hello ");
  h.update("world");
  EXPECT_EQ(h.hex_digest(), sha256_hex("hello world"));
}

TEST(Sha256, LongInputCrossesBlockBoundaries) {
  std::string input(1000, 'x');
  Sha256 h;
  for (std::size_t i = 0; i < input.size(); i += 7) {
    h.update(input.substr(i, 7));
  }
  EXPECT_EQ(h.hex_digest(), sha256_hex(input));
}

TEST(Sha256, ExactBlockSizeInput) {
  const std::string input(64, 'a');
  EXPECT_EQ(sha256_hex(input),
            "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb");
}

TEST(Sha256, PrefixTruncates) {
  EXPECT_EQ(sha256_prefix("abc", 8), "ba7816bf");
  EXPECT_EQ(sha256_prefix("abc", 200).size(), 64u);
}

// ------------------------------------------------------------------ rng

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BetweenInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.between(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, WeightedPrefersHeavyBucket) {
  Rng rng(13);
  int heavy = 0;
  for (int i = 0; i < 1000; ++i) {
    if (rng.weighted({1.0, 9.0}) == 1) ++heavy;
  }
  EXPECT_GT(heavy, 800);
}

TEST(Zipf, RankZeroMostPopular) {
  Rng rng(17);
  ZipfSampler zipf(100, 1.2);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[99] * 5);
}

TEST(Zipf, CoversSupport) {
  Rng rng(19);
  ZipfSampler zipf(5, 0.5);
  std::set<std::size_t> seen;
  for (int i = 0; i < 5000; ++i) seen.insert(zipf.sample(rng));
  EXPECT_EQ(seen.size(), 5u);
}

// -------------------------------------------------------------- strings

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(Strings, SplitNonempty) {
  const auto parts = split_nonempty("/usr//lib/", '/');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "usr");
  EXPECT_EQ(parts[1], "lib");
}

TEST(Strings, TrimBothEnds) {
  EXPECT_EQ(trim("  x y\t\n"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ":"), "a:b:c");
  EXPECT_EQ(join({}, ":"), "");
}

TEST(Strings, IsAllDigits) {
  EXPECT_TRUE(is_all_digits("0123"));
  EXPECT_FALSE(is_all_digits(""));
  EXPECT_FALSE(is_all_digits("12a"));
  EXPECT_FALSE(is_all_digits("-1"));
}

TEST(Strings, ReplaceAll) {
  EXPECT_EQ(replace_all("$ORIGIN/lib:$ORIGIN", "$ORIGIN", "/app"),
            "/app/lib:/app");
  EXPECT_EQ(replace_all("aaa", "aa", "b"), "ba");
  EXPECT_EQ(replace_all("none", "x", "y"), "none");
}

// ----------------------------------------------------------- thread pool

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(5000);
  parallel_for(pool, hits.size(), [&](std::size_t i) { hits[i]++; }, 16);
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [&](std::size_t) { FAIL(); });
  SUCCEED();
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace depchaos::support
