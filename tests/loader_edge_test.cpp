// Loader corner cases beyond the main semantics suite: app-cache dialect
// interactions, $ORIGIN in needed entries, relative search dirs, nested
// dlopen, and cache staleness.

#include <gtest/gtest.h>

#include "depchaos/elf/patcher.hpp"
#include "depchaos/loader/loader.hpp"
#include "depchaos/shrinkwrap/ldcache.hpp"
#include "depchaos/vfs/vfs.hpp"

namespace depchaos::loader {
namespace {

using elf::install_object;
using elf::make_executable;
using elf::make_library;

class LoaderEdgeTest : public ::testing::Test {
 protected:
  vfs::FileSystem fs_;
};

TEST_F(LoaderEdgeTest, OriginInNeededEntryExpands) {
  install_object(fs_, "/app/lib/libx.so", make_library("libx.so"));
  install_object(fs_, "/app/bin/tool",
                 make_executable({"$ORIGIN/../lib/libx.so"}));
  Loader loader(fs_);
  const auto report = loader.load("/app/bin/tool");
  ASSERT_TRUE(report.success);
  EXPECT_EQ(report.load_order[1].path, "/app/lib/libx.so");
  EXPECT_EQ(report.load_order[1].how, HowFound::AbsolutePath);
}

TEST_F(LoaderEdgeTest, RelativeSearchDirResolvesAgainstRoot) {
  install_object(fs_, "/opt/libx.so", make_library("libx.so"));
  install_object(fs_, "/bin/app", make_executable({"libx.so"}, {"opt"}));
  Loader loader(fs_);
  EXPECT_TRUE(loader.load("/bin/app").success);
}

TEST_F(LoaderEdgeTest, AppCacheWorksUnderMusl) {
  fs_.mkdir_p("/e");
  install_object(fs_, "/l/libx.so", make_library("libx.so"));
  install_object(fs_, "/bin/app",
                 make_executable({"libx.so"}, {"/e", "/l"}));
  Loader writer(fs_);
  ASSERT_TRUE(shrinkwrap::make_loader_cache(fs_, writer, "/bin/app").ok());
  SearchConfig config;
  config.use_app_cache = true;
  Loader musl(fs_, config, Dialect::Musl);
  const auto report = musl.load("/bin/app");
  ASSERT_TRUE(report.success);
  EXPECT_EQ(report.load_order[1].how, HowFound::AppCache);
}

TEST_F(LoaderEdgeTest, AppCacheDoesNotOverrideAbsoluteNeeded) {
  install_object(fs_, "/real/libx.so", make_library("libx.so"));
  install_object(fs_, "/fake/libx.so", make_library("libx.so"));
  install_object(fs_, "/bin/app", make_executable({"/real/libx.so"}));
  fs_.write_file("/bin/app.ldcache",
                 std::string("libx.so /fake/libx.so\n"));
  SearchConfig config;
  config.use_app_cache = true;
  Loader loader(fs_, config);
  const auto report = loader.load("/bin/app");
  ASSERT_TRUE(report.success);
  EXPECT_EQ(report.load_order[1].path, "/real/libx.so");
}

TEST_F(LoaderEdgeTest, NestedDlopenResolvesFromInnerCaller) {
  // plugin1 (dlopened by exe) dlopens plugin2, findable only through
  // plugin1's own runpath.
  install_object(fs_, "/deep/libplug2.so", make_library("libplug2.so"));
  elf::Object plug1 = make_library("libplug1.so", {}, {"/deep"});
  install_object(fs_, "/p/libplug1.so", plug1);
  install_object(fs_, "/bin/app", make_executable({}));
  Loader loader(fs_);
  auto report = loader.load("/bin/app");
  const auto first = loader.dlopen(report, "/bin/app", "/p/libplug1.so");
  ASSERT_NE(first.how, HowFound::NotFound);
  const auto second =
      loader.dlopen(report, "/p/libplug1.so", "libplug2.so");
  EXPECT_EQ(second.how, HowFound::Runpath);
  // And NOT findable from the executable itself.
  auto fresh = loader.load("/bin/app");
  const auto from_exe = loader.dlopen(fresh, "/bin/app", "libplug2.so");
  EXPECT_EQ(from_exe.how, HowFound::NotFound);
}

TEST_F(LoaderEdgeTest, DlopenDedupsAgainstExistingLoad) {
  install_object(fs_, "/l/libshared.so", make_library("libshared.so"));
  install_object(fs_, "/bin/app",
                 make_executable({"libshared.so"}, {"/l"}));
  Loader loader(fs_);
  auto report = loader.load("/bin/app");
  const std::size_t loaded_before = report.load_order.size();
  const auto result = loader.dlopen(report, "/bin/app", "libshared.so");
  EXPECT_EQ(result.how, HowFound::Cache);
  EXPECT_EQ(report.load_order.size(), loaded_before);
}

TEST_F(LoaderEdgeTest, LdCacheReflectsFilesystemAtFirstUse) {
  // The ld.so.cache is built lazily; libraries installed BEFORE the first
  // load are all visible, mirroring a fresh ldconfig run.
  install_object(fs_, "/usr/lib/liblate.so", make_library("liblate.so"));
  install_object(fs_, "/bin/app", make_executable({"liblate.so"}));
  Loader loader(fs_);
  EXPECT_TRUE(loader.load("/bin/app").success);
}

TEST_F(LoaderEdgeTest, StaleLdCacheMissesNewLibraryUntilInvalidate) {
  install_object(fs_, "/bin/app", make_executable({"libnew.so"}));
  Loader loader(fs_);
  EXPECT_FALSE(loader.load("/bin/app").success);  // builds the cache, empty
  install_object(fs_, "/usr/lib/libnew.so", make_library("libnew.so"));
  // Still missing: the cache is stale (ldconfig has not "run").
  EXPECT_FALSE(loader.load("/bin/app").success);
  loader.invalidate();
  EXPECT_TRUE(loader.load("/bin/app").success);
}

TEST_F(LoaderEdgeTest, HwcapsDirsSkippedWhenEmpty) {
  install_object(fs_, "/l/libx.so", make_library("libx.so"));
  install_object(fs_, "/bin/app", make_executable({"libx.so"}, {"/l"}));
  SearchConfig config;
  config.hwcaps = {"glibc-hwcaps/x86-64-v3", "glibc-hwcaps/x86-64-v2"};
  Loader loader(fs_, config);
  const auto report = loader.load("/bin/app");
  ASSERT_TRUE(report.success);
  EXPECT_EQ(report.load_order[1].path, "/l/libx.so");
  // Two hwcaps misses + the hit + exe open.
  EXPECT_EQ(report.stats.failed_probes, 2u);
}

TEST_F(LoaderEdgeTest, MixedArchPreloadIsSkipped) {
  elf::Object foreign = make_library("libtool.so");
  foreign.machine = elf::Machine::AArch64;
  install_object(fs_, "/usr/lib/libtool.so", foreign);
  install_object(fs_, "/bin/app", make_executable({}));
  Environment env;
  env.ld_preload = {"libtool.so"};
  Loader loader(fs_);
  const auto report = loader.load("/bin/app", env);
  EXPECT_TRUE(report.success);
  EXPECT_EQ(report.load_order.size(), 1u);  // preload skipped, not fatal
}

TEST_F(LoaderEdgeTest, EmptyNeededListIsFine) {
  install_object(fs_, "/bin/min", make_executable({}));
  Loader loader(fs_);
  const auto report = loader.load("/bin/min");
  EXPECT_TRUE(report.success);
  EXPECT_EQ(report.stats.open_calls, 1u);
  EXPECT_EQ(report.requests.size(), 0u);
}

TEST_F(LoaderEdgeTest, DuplicateNeededEntriesLoadOnce) {
  install_object(fs_, "/l/libx.so", make_library("libx.so"));
  install_object(fs_, "/bin/app",
                 make_executable({"libx.so", "libx.so", "libx.so"}, {"/l"}));
  Loader loader(fs_);
  const auto report = loader.load("/bin/app");
  ASSERT_TRUE(report.success);
  EXPECT_EQ(report.load_order.size(), 2u);
  EXPECT_EQ(report.requests.size(), 3u);
}

}  // namespace
}  // namespace depchaos::loader
