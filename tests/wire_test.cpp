// svc wire layer — the session service over a socket.
//
// The load-bearing property mirrors svc_test's: the wire must be
// invisible. A loopback round trip for every request kind returns a
// payload BYTE-IDENTICAL to encoding the in-process submit_* result on a
// twin pool driven with the same op sequence — framing, pipelining, and
// out-of-order completion change nothing a client can observe. The other
// half is robustness: truncated, oversized, wrong-magic, wrong-version,
// and bit-flipped frames get a clean Error frame and a close, never a
// crash or a wedged server; Overloaded backpressure crosses the wire with
// shard/depth/retry-after intact.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "depchaos/core/world.hpp"
#include "depchaos/elf/patcher.hpp"
#include "depchaos/svc/session_pool.hpp"
#include "depchaos/svc/wire.hpp"

namespace depchaos::svc {
namespace {

using core::Session;
using core::WorldBuilder;
using elf::make_executable;
using elf::make_library;

// Same deterministic twin-world fleet as svc_test: byte-identical worlds
// let the wire-served pool and the in-process reference pool run the same
// ops and be compared field for field.
std::vector<std::string> install_fleet(WorldBuilder& builder,
                                       std::size_t count) {
  builder.install("/usr/lib/libcommon.so", make_library("libcommon.so"));
  std::vector<std::string> exes;
  for (std::size_t i = 0; i < count; ++i) {
    const std::string n = std::to_string(i);
    builder.install("/apps/a" + n + "/lib/libpriv" + n + ".so",
                    make_library("libpriv" + n + ".so", {"libcommon.so"}));
    builder.install(
        "/apps/a" + n + "/bin/app",
        make_executable({"libpriv" + n + ".so"}, {"/apps/a" + n + "/lib"}));
    exes.push_back("/apps/a" + n + "/bin/app");
  }
  return exes;
}

Session make_world(std::size_t apps = 4) {
  WorldBuilder builder;
  install_fleet(builder, apps);
  return builder.build();
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

std::uint32_t get_u32(const std::string& bytes, std::size_t at) {
  std::uint32_t v = 0;
  for (int shift = 0; shift < 32; shift += 8) {
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(bytes[at++]))
         << shift;
  }
  return v;
}

std::string load_many_payload(const std::vector<std::string>& exes) {
  std::string payload;
  put_u32(payload, static_cast<std::uint32_t>(exes.size()));
  for (const auto& exe : exes) {
    put_u32(payload, static_cast<std::uint32_t>(exe.size()));
    payload += exe;
  }
  return payload;
}

/// Raw loopback socket for malformed-frame tests: writes arbitrary bytes
/// (something WireClient, which only emits valid frames, cannot do) and
/// reads whatever comes back until the server closes or a deadline hits.
class RawConn {
 public:
  explicit RawConn(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
  }
  ~RawConn() { close(); }

  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  void write_bytes(std::string_view bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                               MSG_NOSIGNAL);
      if (n <= 0) break;  // server already closed on us — fine
      sent += static_cast<std::size_t>(n);
    }
  }

  /// Read until EOF or 5s of silence; returns everything received.
  std::string read_until_close() {
    std::string received;
    for (;;) {
      pollfd pfd{fd_, POLLIN, 0};
      if (::poll(&pfd, 1, 5000) <= 0) break;
      char buffer[4096];
      const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
      if (n <= 0) break;
      received.append(buffer, static_cast<std::size_t>(n));
    }
    return received;
  }

 private:
  int fd_ = -1;
};

struct RawResponse {
  WireStatus status;
  std::uint64_t seq;
  std::string payload;
};

/// Parse response frames out of a raw byte stream (header layout per
/// wire.hpp: magic u32, version u16, status u8, kind u8, seq u64, len u32).
std::vector<RawResponse> parse_responses(const std::string& bytes) {
  std::vector<RawResponse> frames;
  std::size_t at = 0;
  while (bytes.size() - at >= kWireResponseHeaderBytes) {
    EXPECT_EQ(get_u32(bytes, at), kWireMagic);
    const std::uint8_t status = static_cast<std::uint8_t>(bytes[at + 6]);
    std::uint64_t seq = 0;
    for (int b = 0; b < 8; ++b) {
      seq |= static_cast<std::uint64_t>(
                 static_cast<std::uint8_t>(bytes[at + 8 + b]))
             << (8 * b);
    }
    const std::uint32_t length = get_u32(bytes, at + 16);
    if (bytes.size() - at - kWireResponseHeaderBytes < length) break;
    frames.push_back(RawResponse{static_cast<WireStatus>(status), seq,
                                 bytes.substr(at + kWireResponseHeaderBytes,
                                              length)});
    at += kWireResponseHeaderBytes + length;
  }
  EXPECT_EQ(at, bytes.size()) << "trailing partial frame from server";
  return frames;
}

// ------------------------------------------------------------------ codecs

TEST(WireCodec, RoundTripsEveryResultType) {
  Session session = make_world();
  const std::string exe = "/apps/a0/bin/app";

  const loader::LoadReport load = session.load(exe);
  const std::string load_bytes = encode_load_report(load);
  EXPECT_EQ(encode_load_report(decode_load_report(load_bytes)), load_bytes);

  // Whatif runs shrinkwrap inside a fork; its report embeds wrap + two
  // load reports + trees, covering every nested codec in one shot.
  const Session::WhatIfReport whatif = session.whatif(exe, {}, {});
  const std::string whatif_bytes = encode_whatif_report(whatif);
  EXPECT_EQ(encode_whatif_report(decode_whatif_report(whatif_bytes)),
            whatif_bytes);

  const std::string wrap_bytes = encode_wrap_report(whatif.wrap);
  EXPECT_EQ(encode_wrap_report(decode_wrap_report(wrap_bytes)), wrap_bytes);

  QueryResult query;
  query.inode_count = 17;
  query.layer_depth = 3;
  query.owned_bytes = 123456789;
  query.interned_paths = 42;
  query.mount_count = 2;
  query.default_exe = exe;
  query.pristine = false;
  const std::string query_bytes = encode_query_result(query);
  EXPECT_EQ(encode_query_result(decode_query_result(query_bytes)),
            query_bytes);

  const std::string many_bytes = encode_load_reports({load, load});
  EXPECT_EQ(encode_load_reports(decode_load_reports(many_bytes)), many_bytes);
}

TEST(WireCodec, EveryTruncationThrowsAndTrailingBytesThrow) {
  Session session = make_world();
  const std::string bytes = encode_load_report(session.load("/apps/a0/bin/app"));
  ASSERT_GT(bytes.size(), 8u);
  // Every proper prefix is a truncation; none may crash or decode.
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_THROW(decode_load_report(bytes.substr(0, cut)), WireError)
        << "prefix of " << cut << " bytes decoded";
  }
  EXPECT_THROW(decode_load_report(bytes + "x"), WireError);
  EXPECT_THROW(decode_query_result(std::string_view{}), WireError);
}

// ------------------------------------------------- loopback byte identity

// Every wire kind, one connection, against an in-process twin pool driven
// with the SAME op sequence — raw wire payloads must equal encode_*() of
// the twin's results (interned-path counts and fork state depend on op
// history, so the sequences must match op for op).
TEST(WireServer, LoopbackByteIdenticalToInProcessForEveryKind) {
  WorldBuilder twin_a;
  const auto exes = install_fleet(twin_a, 4);
  WorldBuilder twin_b;
  install_fleet(twin_b, 4);

  SessionPool local(twin_a.build());
  SessionPool served(twin_b.build());
  WireServer server(served);
  WireClient client("127.0.0.1", server.port());
  const ClientId id = 7;

  // Load
  WireResponse response = client.call(WireKind::Load, id, exes[0]);
  EXPECT_EQ(response.status, WireStatus::Ok);
  EXPECT_EQ(response.kind, WireKind::Load);
  EXPECT_EQ(response.payload,
            encode_load_report(*local.submit_load_shared(id, exes[0]).get()));

  // LoadMany
  const std::vector<std::string> many = {exes[1], exes[2], exes[1]};
  response = client.call(WireKind::LoadMany, id, load_many_payload(many));
  EXPECT_EQ(response.status, WireStatus::Ok);
  EXPECT_EQ(response.payload,
            encode_load_reports(local.submit_load_many(id, many).get()));

  // Query (fork state now diverges from pristine — both did the loads)
  response = client.call(WireKind::Query, id, {});
  EXPECT_EQ(response.status, WireStatus::Ok);
  EXPECT_EQ(response.payload,
            encode_query_result(local.submit_query(id).get()));

  // Whatif
  response = client.call(WireKind::Whatif, id, exes[0]);
  EXPECT_EQ(response.status, WireStatus::Ok);
  EXPECT_EQ(response.payload,
            encode_whatif_report(local.submit_whatif(id, exes[0]).get()));

  // Shrinkwrap (mutates the fork)
  response = client.call(WireKind::Shrinkwrap, id, exes[3]);
  EXPECT_EQ(response.status, WireStatus::Ok);
  EXPECT_EQ(response.payload,
            encode_wrap_report(local.submit_shrinkwrap(id, exes[3]).get()));

  // Reset, then Query again: the post-reset state must match too.
  response = client.call(WireKind::Reset, id, {});
  EXPECT_EQ(response.status, WireStatus::Ok);
  EXPECT_TRUE(response.payload.empty());
  local.reset(id).get();
  response = client.call(WireKind::Query, id, {});
  EXPECT_EQ(response.payload,
            encode_query_result(local.submit_query(id).get()));

  // Release
  response = client.call(WireKind::Release, id, {});
  EXPECT_EQ(response.status, WireStatus::Ok);
  EXPECT_TRUE(response.payload.empty());
  local.release(id).get();

  // A load that throws in the pool (missing exe) crosses the wire as an
  // Error frame carrying the same exception message — never a hang or an
  // unexplained close.
  response = client.call(WireKind::Load, id, "/no/such/exe");
  std::string direct_error;
  try {
    local.submit_load_shared(id, "/no/such/exe").get();
  } catch (const std::exception& error) {
    direct_error = error.what();
  }
  ASSERT_FALSE(direct_error.empty());
  EXPECT_EQ(response.status, WireStatus::Error);
  EXPECT_EQ(response.payload, direct_error);

  const WireStats wire = server.stats();
  EXPECT_EQ(wire.accepted, 1u);
  EXPECT_EQ(wire.decode_errors, 0u);
  EXPECT_EQ(wire.frames_in, wire.frames_out);

  // Shutdown: acknowledged, then the server drains and stops.
  client.shutdown();
  server.wait();
  EXPECT_FALSE(server.running());
}

TEST(WireServer, TypedClientHelpersDecodeWhatTheTwinPoolProduces) {
  WorldBuilder twin_a;
  const auto exes = install_fleet(twin_a, 3);
  WorldBuilder twin_b;
  install_fleet(twin_b, 3);

  SessionPool local(twin_a.build());
  SessionPool served(twin_b.build());
  WireServer server(served);
  WireClient client("127.0.0.1", server.port());

  const loader::LoadReport remote = client.load(1, exes[0]);
  const loader::LoadReport direct = *local.submit_load_shared(1, exes[0]).get();
  EXPECT_EQ(encode_load_report(remote), encode_load_report(direct));
  EXPECT_EQ(remote.load_order.size(), direct.load_order.size());

  const QueryResult remote_query = client.query(1);
  const QueryResult direct_query = local.submit_query(1).get();
  EXPECT_EQ(encode_query_result(remote_query),
            encode_query_result(direct_query));
}

// ------------------------------------------------------ overload and order

TEST(WireServer, OverloadedCrossesTheWireWithRetryAfterIntact) {
  // manual_drain: nothing executes until pump(), so the first request
  // parks in the shard queue and the second trips the high-water mark.
  PoolConfig config;
  config.manual_drain = true;
  config.queue_high_water = 1;

  WorldBuilder twin_a;
  const auto exes = install_fleet(twin_a, 2);
  WorldBuilder twin_b;
  install_fleet(twin_b, 2);

  // In-process reference: same two submits on a twin pool.
  SessionPool local(twin_a.build(), config);
  const ClientId id = 5;
  auto parked = local.submit_load_shared(id, exes[0]);
  std::size_t want_shard = 0, want_depth = 0;
  double want_retry = -1.0;
  try {
    local.submit_load(id, exes[0]);
    FAIL() << "twin pool did not reject";
  } catch (const Overloaded& overloaded) {
    want_shard = overloaded.shard();
    want_depth = overloaded.queue_depth();
    want_retry = overloaded.retry_after_s();
  }

  SessionPool served(twin_b.build(), config);
  WireServer server(served);
  WireClient client("127.0.0.1", server.port());
  const std::uint64_t seq_a = client.send(WireKind::Load, id, exes[0]);
  const std::uint64_t seq_b = client.send(WireKind::Load, id, exes[0]);

  // The rejection for B overtakes the still-parked A: out-of-order
  // responses by sequence number are the contract.
  WireResponse rejected = client.recv_for(seq_b);
  EXPECT_EQ(rejected.status, WireStatus::Overloaded);
  try {
    rejected.throw_if_failed();
    FAIL() << "Overloaded response did not throw";
  } catch (const Overloaded& overloaded) {
    EXPECT_EQ(overloaded.shard(), want_shard);
    EXPECT_EQ(overloaded.queue_depth(), want_depth);
    EXPECT_DOUBLE_EQ(overloaded.retry_after_s(), want_retry);
    EXPECT_GT(overloaded.retry_after_s(), 0.0);
  }

  // Un-park A on both pools and compare the payloads.
  local.pump();
  served.pump();
  WireResponse ok = client.recv_for(seq_a);
  EXPECT_EQ(ok.status, WireStatus::Ok);
  EXPECT_EQ(ok.payload, encode_load_report(*parked.get()));
  EXPECT_GE(server.stats().overloaded, 1u);
}

// --------------------------------------------------------- malformed input

TEST(WireServer, MalformedFramesGetErrorFrameThenCloseNeverCrash) {
  SessionPool pool(make_world());
  WireServer server(pool);
  const std::string valid =
      encode_request_frame(WireKind::Load, 1, 9, "/apps/a0/bin/app");

  struct Case {
    const char* name;
    std::string frame;
  };
  std::vector<Case> cases;
  {
    std::string f = valid;
    f[0] = 'X';  // wrong magic
    cases.push_back({"wrong-magic", f});
  }
  {
    std::string f = valid;
    f[4] = 99;  // wrong version
    cases.push_back({"wrong-version", f});
  }
  {
    std::string f = valid;
    f[6] = 0x7f;  // unknown kind
    cases.push_back({"bad-kind", f});
  }
  {
    std::string f = valid;
    f[7] = 1;  // reserved byte must be zero
    cases.push_back({"reserved-set", f});
  }
  {
    // Oversized: a length prefix past max_frame_bytes must be rejected
    // from the header alone, without buffering the announced gigabytes.
    std::string f = encode_request_frame(WireKind::Load, 1, 9, {});
    f.resize(kWireRequestHeaderBytes - 4);
    put_u32(f, 0xfffffff0u);
    cases.push_back({"oversized", f});
  }
  {
    // Malformed payload: LoadMany announcing 1000 strings in 4 bytes.
    std::string payload;
    put_u32(payload, 1000);
    cases.push_back(
        {"payload-overrun",
         encode_request_frame(WireKind::LoadMany, 1, 9, payload)});
  }

  for (const Case& bad : cases) {
    SCOPED_TRACE(bad.name);
    RawConn conn(server.port());
    conn.write_bytes(bad.frame);
    const auto frames = parse_responses(conn.read_until_close());
    ASSERT_EQ(frames.size(), 1u) << "want exactly one error frame";
    EXPECT_EQ(frames[0].status, WireStatus::Error);
    EXPECT_FALSE(frames[0].payload.empty());
  }

  // A truncated frame followed by a client close is just dropped: no
  // response owed, no wedge.
  {
    RawConn conn(server.port());
    conn.write_bytes(valid.substr(0, kWireRequestHeaderBytes - 3));
    conn.close();
  }

  // The server survived all of it: a fresh valid round trip still works.
  WireClient client("127.0.0.1", server.port());
  EXPECT_TRUE(client.load(1, "/apps/a0/bin/app").success);
  const WireStats wire = server.stats();
  EXPECT_EQ(wire.decode_errors, cases.size());
}

TEST(WireServer, BitFlippedFramesNeverCrashOrWedge) {
  SessionPool pool(make_world());
  WireServer server(pool);
  const std::string valid =
      encode_request_frame(WireKind::Load, 3, 1, "/apps/a0/bin/app");

  std::mt19937_64 rng(20260808);
  for (int round = 0; round < 200; ++round) {
    std::string frame = valid;
    const int flips = 1 + static_cast<int>(rng() % 4);
    for (int f = 0; f < flips; ++f) {
      frame[rng() % frame.size()] ^=
          static_cast<char>(1u << (rng() % 8));
    }
    RawConn conn(server.port());
    conn.write_bytes(frame);
    conn.close();
    // No assertion on the response — a flip may yield a valid frame (Ok),
    // a pool-level failure (Error), a protocol violation (Error + close),
    // or a length that leaves the frame forever-partial (dropped at our
    // close). The property is that the server survives every one.
  }

  WireClient client("127.0.0.1", server.port());
  EXPECT_TRUE(client.load(1, "/apps/a0/bin/app").success);
}

TEST(WireServer, MidRequestDisconnectDiscardsResponsesQuietly) {
  SessionPool pool(make_world());
  WireServer server(pool);
  for (int round = 0; round < 8; ++round) {
    RawConn conn(server.port());
    // Pipeline several requests, then vanish before reading anything: the
    // completed responses hit a dead socket (SIGPIPE-safe send) and the
    // connection is reaped.
    for (std::uint64_t seq = 1; seq <= 4; ++seq) {
      conn.write_bytes(
          encode_request_frame(WireKind::Load, 1, seq, "/apps/a0/bin/app"));
    }
    conn.close();
  }
  // Quiesce the pool (all admitted loads finish), then prove liveness.
  pool.drain();
  WireClient client("127.0.0.1", server.port());
  EXPECT_TRUE(client.load(1, "/apps/a0/bin/app").success);
}

TEST(WireServer, StalledPartialFrameHitsReadDeadline) {
  SessionPool pool(make_world());
  WireConfig config;
  config.read_deadline_s = 0.2;
  WireServer server(pool, config);

  RawConn conn(server.port());
  const std::string valid =
      encode_request_frame(WireKind::Load, 1, 1, "/apps/a0/bin/app");
  conn.write_bytes(valid.substr(0, valid.size() - 4));  // stall mid-frame
  const auto frames = parse_responses(conn.read_until_close());
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].status, WireStatus::Error);
  EXPECT_NE(frames[0].payload.find("deadline"), std::string::npos);
  EXPECT_EQ(server.stats().timeouts, 1u);

  // Idle-but-complete connections do NOT time out: only partial frames do.
  WireClient client("127.0.0.1", server.port());
  EXPECT_TRUE(client.load(1, "/apps/a0/bin/app").success);
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  EXPECT_TRUE(client.load(1, "/apps/a0/bin/app").success);
  EXPECT_EQ(server.stats().timeouts, 1u);
}

}  // namespace
}  // namespace depchaos::svc
