#include "depchaos/elf/patcher.hpp"

#include <algorithm>

namespace depchaos::elf {

Object read_object(const vfs::FileSystem& fs, std::string_view path) {
  const vfs::FileData* data = fs.peek(path);
  if (data == nullptr) {
    throw FsError("no such file: " + std::string(path));
  }
  return parse(data->bytes);
}

void install_object(vfs::FileSystem& fs, std::string_view path,
                    const Object& object) {
  vfs::FileData data;
  data.bytes = serialize(object);
  data.declared_size = data.bytes.size() + object.extra_size;
  fs.write_file(path, std::move(data));
}

Object Patcher::read(std::string_view path) const {
  return read_object(fs_, path);
}

void Patcher::write(std::string_view path, const Object& object) {
  install_object(fs_, path, object);
}

void Patcher::set_rpath(std::string_view path, std::vector<std::string> dirs) {
  Object object = read(path);
  object.dyn.rpath = std::move(dirs);
  write(path, object);
}

void Patcher::set_runpath(std::string_view path,
                          std::vector<std::string> dirs) {
  Object object = read(path);
  object.dyn.runpath = std::move(dirs);
  write(path, object);
}

void Patcher::clear_search_paths(std::string_view path) {
  Object object = read(path);
  object.dyn.rpath.clear();
  object.dyn.runpath.clear();
  write(path, object);
}

void Patcher::set_soname(std::string_view path, std::string soname) {
  Object object = read(path);
  object.dyn.soname = std::move(soname);
  write(path, object);
}

void Patcher::set_needed(std::string_view path,
                         std::vector<std::string> needed) {
  Object object = read(path);
  object.dyn.needed = std::move(needed);
  write(path, object);
}

void Patcher::add_needed(std::string_view path, std::string entry) {
  Object object = read(path);
  object.dyn.needed.push_back(std::move(entry));
  write(path, object);
}

void Patcher::remove_needed(std::string_view path, std::string_view entry) {
  Object object = read(path);
  auto& needed = object.dyn.needed;
  needed.erase(std::remove(needed.begin(), needed.end(), entry), needed.end());
  write(path, object);
}

void Patcher::replace_needed(std::string_view path, std::string_view old_entry,
                             std::string new_entry) {
  Object object = read(path);
  for (auto& entry : object.dyn.needed) {
    if (entry == old_entry) entry = new_entry;
  }
  write(path, object);
}

}  // namespace depchaos::elf
