// patchelf-equivalent: read/modify/write SELF images inside a VFS.
//
// The store-model package managers (§II-D) use exactly these operations as
// post-build actions ("modify binaries using patchelf or similar tools"),
// and Shrinkwrap's rewrite step is built on top of them.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "depchaos/elf/object.hpp"
#include "depchaos/vfs/vfs.hpp"

namespace depchaos::elf {

class Patcher {
 public:
  explicit Patcher(vfs::FileSystem& fs) : fs_(fs) {}

  /// Parse the SELF image at `path`. Throws FsError / ElfError.
  Object read(std::string_view path) const;

  /// Serialize `object` over the file at `path`.
  void write(std::string_view path, const Object& object);

  // patchelf-style verbs. Each reads, edits, writes.
  void set_rpath(std::string_view path, std::vector<std::string> dirs);
  void set_runpath(std::string_view path, std::vector<std::string> dirs);
  void clear_search_paths(std::string_view path);
  void set_soname(std::string_view path, std::string soname);
  void set_needed(std::string_view path, std::vector<std::string> needed);
  void add_needed(std::string_view path, std::string entry);
  void remove_needed(std::string_view path, std::string_view entry);
  /// Replace one needed entry in place, preserving order (patchelf
  /// --replace-needed).
  void replace_needed(std::string_view path, std::string_view old_entry,
                      std::string new_entry);

 private:
  vfs::FileSystem& fs_;
};

/// Write `object` (serialized) to `path`, creating parents.
void install_object(vfs::FileSystem& fs, std::string_view path,
                    const Object& object);

/// Parse the object stored at `path` without syscall accounting.
Object read_object(const vfs::FileSystem& fs, std::string_view path);

}  // namespace depchaos::elf
