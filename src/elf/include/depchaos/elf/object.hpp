// Simulated ELF ("SELF") object model.
//
// The paper's tooling (Shrinkwrap, libtree, patchelf) only ever touches a
// narrow slice of a real ELF file: the dynamic section (DT_NEEDED, DT_RPATH,
// DT_RUNPATH, DT_SONAME), the interpreter, the machine/ABI tag used for the
// "silently skip wrong-architecture candidates" rule (§IV), and the dynamic
// symbol table used for interposition and duplicate-strong-symbol link
// failures (§V-B). The SELF format captures exactly that slice with a
// deterministic, human-readable serialization.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "depchaos/support/error.hpp"

namespace depchaos::elf {

/// Subset of e_machine values that show up on multi-ABI HPC systems.
enum class Machine : std::uint16_t {
  X86 = 3,
  PPC64LE = 21,
  X86_64 = 62,
  AArch64 = 183,
};

std::string_view machine_name(Machine machine);
std::optional<Machine> machine_from_name(std::string_view name);

enum class ObjectKind : std::uint8_t { Executable, SharedObject };

enum class SymbolBinding : std::uint8_t { Local, Global, Weak };

/// One dynamic-symbol-table entry. `defined` distinguishes exported
/// definitions from undefined references that the loader must bind.
/// `version` models ELF symbol versioning (GLIBC_2.17-style tags): a
/// versioned reference binds only to a matching versioned definition (or to
/// an unversioned one, glibc's compatibility fallback). "" = unversioned.
struct Symbol {
  Symbol() = default;
  Symbol(std::string name_in, SymbolBinding binding_in, bool defined_in,
         std::string version_in = {})
      : name(std::move(name_in)),
        binding(binding_in),
        defined(defined_in),
        version(std::move(version_in)) {}

  std::string name;
  SymbolBinding binding = SymbolBinding::Global;
  bool defined = true;
  std::string version;

  /// "name@VERSION" or plain name.
  std::string display() const {
    return version.empty() ? name : name + "@" + version;
  }

  friend bool operator==(const Symbol&, const Symbol&) = default;
};

/// The dynamic section slice the loader and Shrinkwrap care about.
struct DynamicInfo {
  std::string soname;                // DT_SONAME ("" = none)
  std::vector<std::string> needed;   // DT_NEEDED entries, in link order
  std::vector<std::string> rpath;    // DT_RPATH search dirs
  std::vector<std::string> runpath;  // DT_RUNPATH search dirs

  friend bool operator==(const DynamicInfo&, const DynamicInfo&) = default;
};

struct Object {
  ObjectKind kind = ObjectKind::SharedObject;
  Machine machine = Machine::X86_64;
  std::string interp;  // PT_INTERP, executables only
  DynamicInfo dyn;
  std::vector<Symbol> symbols;
  /// Library names this object dlopen()s at runtime — call sites recorded
  /// the way a dynamic trace (or Shrinkwrap's future-work dlopen audit, §IV)
  /// would see them. The loader does NOT resolve these during normal
  /// startup; shrinkwrap's audit mode lifts them to DT_NEEDED.
  std::vector<std::string> dlopen_names;
  /// Extra on-disk bytes beyond the serialized metadata, used to model large
  /// binaries (e.g. the 213 MiB executable wrapped in §V) without storing
  /// them.
  std::uint64_t extra_size = 0;

  friend bool operator==(const Object&, const Object&) = default;

  /// True if the object exports `name` with the given binding or stronger.
  bool defines(std::string_view name) const;
  bool defines_strong(std::string_view name) const;

  /// Undefined references this object expects the loader to bind.
  std::vector<std::string> undefined_symbols() const;

  /// The name the glibc loader would record for dedup: DT_SONAME when
  /// present, else empty (callers fall back to the file basename).
  std::string_view effective_soname() const { return dyn.soname; }
};

/// Serialize to the SELF text format (stable field order, roundtrips
/// exactly).
std::string serialize(const Object& object);

/// Parse a SELF image. Throws ElfError on malformed input.
Object parse(std::string_view bytes);

/// Cheap magic check without a full parse.
bool looks_like_self(std::string_view bytes);

/// Convenience builders used throughout the workload generators.
Object make_executable(std::vector<std::string> needed,
                       std::vector<std::string> runpath = {},
                       std::vector<std::string> rpath = {});
Object make_library(std::string soname, std::vector<std::string> needed = {},
                    std::vector<std::string> runpath = {},
                    std::vector<std::string> rpath = {});

}  // namespace depchaos::elf
