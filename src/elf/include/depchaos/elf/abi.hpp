// ABI compatibility analysis (§III-A's administrator dilemma).
//
// "If a library is locked to point to a library at /opt/rocm-4.3.0 and that
// version is found to be buggy but binary compatible with 4.3.1 ..." — the
// decision that swap is SAFE is an ABI question: does the replacement
// export every (versioned) symbol the old one did? This module makes the
// check executable, the way Fedora's ABI-diff workflow (§II-A, ref [12])
// does for distribution updates.
#pragma once

#include <string>
#include <vector>

#include "depchaos/elf/object.hpp"
#include "depchaos/vfs/vfs.hpp"

namespace depchaos::elf {

struct AbiDiff {
  /// Exported symbols of the old object missing from the new one — each is
  /// a potential runtime breakage for existing binaries.
  std::vector<std::string> removed;
  /// New exports (always safe for existing binaries).
  std::vector<std::string> added;
  /// Soname changed — by convention an intentional ABI break.
  bool soname_changed = false;

  bool compatible() const { return removed.empty() && !soname_changed; }
};

/// Diff the exported (defined, non-local) symbol sets, version-qualified.
AbiDiff abi_diff(const Object& old_object, const Object& new_object);

/// Convenience: diff two on-disk objects.
AbiDiff abi_diff(const vfs::FileSystem& fs, const std::string& old_path,
                 const std::string& new_path);

/// Would `object`'s (versioned) undefined references all bind against the
/// exports of `providers`? Returns the unsatisfied references — the check
/// an administrator runs before swapping a dependency under a binary.
std::vector<std::string> unsatisfied_references(
    const Object& object, const std::vector<const Object*>& providers);

}  // namespace depchaos::elf
