#include "depchaos/elf/abi.hpp"

#include <algorithm>
#include <set>

#include "depchaos/elf/patcher.hpp"

namespace depchaos::elf {

namespace {
std::set<std::string> exported_set(const Object& object) {
  std::set<std::string> out;
  for (const auto& sym : object.symbols) {
    if (sym.defined && sym.binding != SymbolBinding::Local) {
      out.insert(sym.display());
    }
  }
  return out;
}
}  // namespace

AbiDiff abi_diff(const Object& old_object, const Object& new_object) {
  AbiDiff diff;
  const auto old_exports = exported_set(old_object);
  const auto new_exports = exported_set(new_object);
  std::set_difference(old_exports.begin(), old_exports.end(),
                      new_exports.begin(), new_exports.end(),
                      std::back_inserter(diff.removed));
  std::set_difference(new_exports.begin(), new_exports.end(),
                      old_exports.begin(), old_exports.end(),
                      std::back_inserter(diff.added));
  diff.soname_changed = old_object.dyn.soname != new_object.dyn.soname;
  return diff;
}

AbiDiff abi_diff(const vfs::FileSystem& fs, const std::string& old_path,
                 const std::string& new_path) {
  return abi_diff(read_object(fs, old_path), read_object(fs, new_path));
}

std::vector<std::string> unsatisfied_references(
    const Object& object, const std::vector<const Object*>& providers) {
  // A versioned reference binds to the same name@version, or to an
  // unversioned definition (glibc's fallback for unversioned libraries).
  std::set<std::string> versioned_exports;
  std::set<std::string> unversioned_exports;
  for (const Object* provider : providers) {
    for (const auto& sym : provider->symbols) {
      if (!sym.defined || sym.binding == SymbolBinding::Local) continue;
      if (sym.version.empty()) {
        unversioned_exports.insert(sym.name);
      } else {
        versioned_exports.insert(sym.display());
      }
    }
  }
  std::vector<std::string> missing;
  for (const auto& sym : object.symbols) {
    if (sym.defined || sym.binding == SymbolBinding::Weak) continue;
    const bool ok =
        sym.version.empty()
            ? (unversioned_exports.contains(sym.name) ||
               std::any_of(versioned_exports.begin(), versioned_exports.end(),
                           [&](const std::string& entry) {
                             return entry.compare(0, sym.name.size() + 1,
                                                  sym.name + "@") == 0;
                           }))
            : (versioned_exports.contains(sym.display()) ||
               unversioned_exports.contains(sym.name));
    if (!ok) missing.push_back(sym.display());
  }
  return missing;
}

}  // namespace depchaos::elf
