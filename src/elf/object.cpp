#include "depchaos/elf/object.hpp"

#include <algorithm>

#include "depchaos/support/strings.hpp"

namespace depchaos::elf {

namespace {
constexpr std::string_view kMagic = "SELF1";

char binding_code(SymbolBinding binding) {
  switch (binding) {
    case SymbolBinding::Local:
      return 'L';
    case SymbolBinding::Global:
      return 'G';
    case SymbolBinding::Weak:
      return 'W';
  }
  return '?';
}

SymbolBinding binding_from_code(char code) {
  switch (code) {
    case 'L':
      return SymbolBinding::Local;
    case 'G':
      return SymbolBinding::Global;
    case 'W':
      return SymbolBinding::Weak;
    default:
      throw ElfError(std::string("bad symbol binding code: ") + code);
  }
}
}  // namespace

std::string_view machine_name(Machine machine) {
  switch (machine) {
    case Machine::X86:
      return "x86";
    case Machine::PPC64LE:
      return "ppc64le";
    case Machine::X86_64:
      return "x86_64";
    case Machine::AArch64:
      return "aarch64";
  }
  return "unknown";
}

std::optional<Machine> machine_from_name(std::string_view name) {
  if (name == "x86") return Machine::X86;
  if (name == "ppc64le") return Machine::PPC64LE;
  if (name == "x86_64") return Machine::X86_64;
  if (name == "aarch64") return Machine::AArch64;
  return std::nullopt;
}

bool Object::defines(std::string_view name) const {
  return std::any_of(symbols.begin(), symbols.end(), [&](const Symbol& sym) {
    return sym.defined && sym.name == name &&
           sym.binding != SymbolBinding::Local;
  });
}

bool Object::defines_strong(std::string_view name) const {
  return std::any_of(symbols.begin(), symbols.end(), [&](const Symbol& sym) {
    return sym.defined && sym.name == name &&
           sym.binding == SymbolBinding::Global;
  });
}

std::vector<std::string> Object::undefined_symbols() const {
  std::vector<std::string> out;
  for (const auto& sym : symbols) {
    if (!sym.defined) out.push_back(sym.name);
  }
  return out;
}

std::string serialize(const Object& object) {
  std::string out;
  out += kMagic;
  out += '\n';
  out += "kind ";
  out += (object.kind == ObjectKind::Executable ? "exec" : "dyn");
  out += '\n';
  out += "machine ";
  out += machine_name(object.machine);
  out += '\n';
  if (!object.interp.empty()) {
    out += "interp " + object.interp + '\n';
  }
  if (!object.dyn.soname.empty()) {
    out += "soname " + object.dyn.soname + '\n';
  }
  for (const auto& entry : object.dyn.needed) {
    out += "needed " + entry + '\n';
  }
  for (const auto& dir : object.dyn.rpath) {
    out += "rpath " + dir + '\n';
  }
  for (const auto& dir : object.dyn.runpath) {
    out += "runpath " + dir + '\n';
  }
  for (const auto& sym : object.symbols) {
    if (sym.version.empty()) {
      out += "symbol ";
      out += binding_code(sym.binding);
      out += ' ';
      out += (sym.defined ? 'D' : 'U');
      out += ' ';
      out += sym.name;
    } else {
      // Versioned form: "vsymbol <B> <D|U> <version> <name>" — the version
      // tag cannot contain spaces; the name (last field) may.
      out += "vsymbol ";
      out += binding_code(sym.binding);
      out += ' ';
      out += (sym.defined ? 'D' : 'U');
      out += ' ';
      out += sym.version;
      out += ' ';
      out += sym.name;
    }
    out += '\n';
  }
  for (const auto& name : object.dlopen_names) {
    out += "dlopen " + name + '\n';
  }
  if (object.extra_size != 0) {
    out += "extra " + std::to_string(object.extra_size) + '\n';
  }
  out += "end\n";
  return out;
}

Object parse(std::string_view bytes) {
  if (!looks_like_self(bytes)) {
    throw ElfError("bad magic (not a SELF image)");
  }
  Object object;
  object.kind = ObjectKind::SharedObject;
  bool saw_end = false;
  bool first = true;
  for (const auto& raw_line : support::split(bytes, '\n')) {
    const std::string_view line = support::trim(raw_line);
    if (first) {
      first = false;
      continue;  // magic
    }
    if (line.empty()) continue;
    if (saw_end) {
      throw ElfError("trailing content after 'end'");
    }
    if (line == "end") {
      saw_end = true;
      continue;
    }
    const auto space = line.find(' ');
    if (space == std::string_view::npos) {
      throw ElfError("malformed line: '" + std::string(line) + "'");
    }
    const std::string_view key = line.substr(0, space);
    const std::string_view value = support::trim(line.substr(space + 1));
    if (key == "kind") {
      if (value == "exec") {
        object.kind = ObjectKind::Executable;
      } else if (value == "dyn") {
        object.kind = ObjectKind::SharedObject;
      } else {
        throw ElfError("bad kind: '" + std::string(value) + "'");
      }
    } else if (key == "machine") {
      const auto machine = machine_from_name(value);
      if (!machine) throw ElfError("bad machine: '" + std::string(value) + "'");
      object.machine = *machine;
    } else if (key == "interp") {
      object.interp = std::string(value);
    } else if (key == "soname") {
      object.dyn.soname = std::string(value);
    } else if (key == "needed") {
      object.dyn.needed.emplace_back(value);
    } else if (key == "rpath") {
      object.dyn.rpath.emplace_back(value);
    } else if (key == "runpath") {
      object.dyn.runpath.emplace_back(value);
    } else if (key == "symbol") {
      // Format: "symbol <B> <D|U> <name>"
      if (value.size() < 5 || value[1] != ' ' || value[3] != ' ') {
        throw ElfError("malformed symbol line: '" + std::string(line) + "'");
      }
      Symbol sym;
      sym.binding = binding_from_code(value[0]);
      if (value[2] == 'D') {
        sym.defined = true;
      } else if (value[2] == 'U') {
        sym.defined = false;
      } else {
        throw ElfError("bad symbol def flag: '" + std::string(line) + "'");
      }
      sym.name = std::string(value.substr(4));
      object.symbols.push_back(std::move(sym));
    } else if (key == "vsymbol") {
      // Format: "vsymbol <B> <D|U> <version> <name>"
      if (value.size() < 7 || value[1] != ' ' || value[3] != ' ') {
        throw ElfError("malformed vsymbol line: '" + std::string(line) + "'");
      }
      Symbol sym;
      sym.binding = binding_from_code(value[0]);
      if (value[2] == 'D') {
        sym.defined = true;
      } else if (value[2] == 'U') {
        sym.defined = false;
      } else {
        throw ElfError("bad vsymbol def flag: '" + std::string(line) + "'");
      }
      const auto rest = value.substr(4);
      const auto space = rest.find(' ');
      if (space == std::string_view::npos || space == 0) {
        throw ElfError("vsymbol missing version: '" + std::string(line) + "'");
      }
      sym.version = std::string(rest.substr(0, space));
      sym.name = std::string(rest.substr(space + 1));
      if (sym.name.empty()) {
        throw ElfError("vsymbol missing name: '" + std::string(line) + "'");
      }
      object.symbols.push_back(std::move(sym));
    } else if (key == "dlopen") {
      object.dlopen_names.emplace_back(value);
    } else if (key == "extra") {
      object.extra_size = std::stoull(std::string(value));
    } else {
      throw ElfError("unknown field: '" + std::string(key) + "'");
    }
  }
  if (!saw_end) throw ElfError("truncated SELF image (missing 'end')");
  return object;
}

bool looks_like_self(std::string_view bytes) {
  return bytes.substr(0, kMagic.size()) == kMagic &&
         bytes.size() > kMagic.size() && bytes[kMagic.size()] == '\n';
}

Object make_executable(std::vector<std::string> needed,
                       std::vector<std::string> runpath,
                       std::vector<std::string> rpath) {
  Object object;
  object.kind = ObjectKind::Executable;
  object.interp = "/lib64/ld-linux-x86-64.so.2";
  object.dyn.needed = std::move(needed);
  object.dyn.runpath = std::move(runpath);
  object.dyn.rpath = std::move(rpath);
  return object;
}

Object make_library(std::string soname, std::vector<std::string> needed,
                    std::vector<std::string> runpath,
                    std::vector<std::string> rpath) {
  Object object;
  object.kind = ObjectKind::SharedObject;
  object.dyn.soname = std::move(soname);
  object.dyn.needed = std::move(needed);
  object.dyn.runpath = std::move(runpath);
  object.dyn.rpath = std::move(rpath);
  return object;
}

}  // namespace depchaos::elf
