#include "depchaos/core/session.hpp"

#include <algorithm>
#include <exception>
#include <thread>
#include <utility>

#include "depchaos/support/thread_pool.hpp"
#include "depchaos/vfs/snapshot.hpp"

namespace depchaos::core {

namespace {

std::shared_ptr<const loader::SearchPolicy> resolve_policy(
    const SessionConfig& config) {
  return config.policy ? config.policy
                       : loader::SearchPolicy::shared(config.dialect);
}

}  // namespace

Session::Session(vfs::FileSystem fs, SessionConfig config,
                 std::string default_exe)
    : config_(std::move(config)),
      policy_(resolve_policy(config_)),
      fs_(std::make_unique<vfs::FileSystem>(std::move(fs))),
      default_exe_(std::move(default_exe)) {
  if (config_.latency) fs_->set_latency_model(config_.latency);
  loader_ = std::make_unique<loader::Loader>(*fs_, config_.search, policy_);
}

Session Session::from_snapshot(std::string_view image, SessionConfig config) {
  if (vfs::is_fleet_image(image)) {
    auto fleet = vfs::load_fleet(image);
    vfs::FileSystem fs = fleet.views.empty()
                             ? std::move(fleet.base)
                             : std::move(fleet.views.front());
    return Session(std::move(fs), std::move(config));
  }
  return Session(vfs::load_world(image), std::move(config));
}

Session Session::sandbox(const SandboxSpec& spec) {
  // No cache adoption: the namespace surgery below would stale the host's
  // parsed-object / ld.so caches, so the sandbox starts cold and rebuilds
  // its own lazily — resolving against the HOST's ld.so.cache is precisely
  // the class of bug the container scenarios model.
  Session child = fork_internal(/*adopt_caches=*/false);
  vfs::FileSystem& cfs = child.fs();
  if (spec.image) {
    if (spec.writable_image_overlay) {
      cfs.mount_overlay(spec.image_mount, spec.image);
    } else {
      cfs.mount_image(spec.image_mount, spec.image);
    }
  }
  for (const auto& dir : spec.mask) {
    cfs.mount_tmpfs(dir, /*read_only=*/true);
  }
  for (const auto& dir : spec.scratch) {
    cfs.mount_tmpfs(dir, /*read_only=*/false);
  }
  if (!spec.exe.empty()) child.set_default_exe(spec.exe);
  return child;
}

Session Session::fork() { return fork_internal(/*adopt_caches=*/true); }

Session Session::fork_sealed() const {
  SessionConfig config = config_;
  // Same rule as fork_internal: the stamped filesystem carries its own
  // cloned latency model; a non-null config.latency would overwrite it.
  config.latency.reset();
  Session child(fs_->fork_sealed(), std::move(config), default_exe_);
  // Adoption reads the sealed parent's caches const-ly (plain map copies
  // of immutable parsed objects) — safe under concurrent fork_sealed().
  child.loader_->adopt_caches(*loader_);
  return child;
}

Session Session::fork_internal(bool adopt_caches) {
  SessionConfig config = config_;
  // The forked filesystem carries its own per-view latency model (cloned
  // by FileSystem::fork); a non-null config.latency would overwrite it in
  // the constructor with the parent's shared instance.
  config.latency.reset();
  Session child(fs_->fork(), std::move(config), default_exe_);
  if (adopt_caches) child.loader_->adopt_caches(*loader_);
  return child;
}

Session::WhatIfReport Session::whatif(std::string_view exe,
                                      WrapOptions options, TreeOptions tree) {
  const std::string target = resolve_exe(exe);
  WhatIfReport report;
  // libtree() is load() + render_tree(); render from the reports we keep
  // anyway instead of resolving each closure twice.
  report.before = load(target);
  report.before_tree =
      ::depchaos::shrinkwrap::render_tree(report.before, tree, fs_->paths());
  Session sandbox = fork();
  report.wrap = sandbox.shrinkwrap(target, std::move(options));
  report.after = sandbox.load(target);
  report.after_tree =
      ::depchaos::shrinkwrap::render_tree(report.after, tree, fs_->paths());
  report.tree_diff =
      ::depchaos::shrinkwrap::tree_diff(report.before_tree, report.after_tree);
  return report;
}

std::string Session::resolve_exe(std::string_view exe) const {
  if (!exe.empty()) return std::string(exe);
  if (default_exe_.empty()) {
    throw Error("session has no default executable; pass a path");
  }
  return default_exe_;
}

Session::LoadReport Session::load(std::string_view exe) {
  return load(exe, config_.env);
}

Session::LoadReport Session::load(std::string_view exe,
                                  const loader::Environment& env) {
  return loader_->load(resolve_exe(exe), env);
}

std::vector<Session::LoadReport> Session::load_many(
    std::span<const std::string> exes) {
  std::vector<LoadReport> reports(exes.size());
  if (exes.empty()) return reports;

  // Resolve "" entries against the default target up front, so serial and
  // parallel execution see the same paths (and the same throws).
  std::vector<std::string> paths;
  paths.reserve(exes.size());
  for (const auto& exe : exes) paths.push_back(resolve_exe(exe));

  const std::size_t hardware = std::max<std::size_t>(
      1, config_.threads ? config_.threads
                         : std::thread::hardware_concurrency());
  const std::size_t workers = std::min(hardware, paths.size());

  // One isolated world FORK per worker (not per entry): an O(1)
  // copy-on-write view with private syscall counters, a private
  // parsed-object cache, and private latency-model state cloned from
  // batch start by fork(). Loads never write, so no worker pays a single
  // byte of world copy; each load's stats are a delta on its own counters,
  // and report content does not depend on cache warmth, so every report
  // matches a sequential load() byte for byte — see the header for the
  // stateful-latency caveat. Forks are taken on this thread (fork mutates
  // the parent once, freezing its overlay) before any worker runs.
  std::vector<vfs::FileSystem> worlds;
  worlds.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) worlds.push_back(fs_->fork());

  // Parallel execution needs per-worker latency isolation; a stateful
  // model that cannot clone() forces the serial path. fork() falls back to
  // SHARING such a model, so probe the first fork instead of constructing
  // a throwaway clone of the model's state.
  if (vfs::LatencyModel* model = fs_->latency_model();
      model && worlds.front().latency_model() == model) {
    for (std::size_t i = 0; i < paths.size(); ++i) {
      reports[i] = loader_->load(paths[i], config_.env);
    }
    return reports;
  }

  support::ThreadPool pool(workers);
  std::vector<std::exception_ptr> errors(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.submit([this, &paths, &reports, &errors, &worlds, w, workers] {
      try {
        loader::Loader worker(worlds[w], config_.search, policy_);
        // Adopt the parent loader's parsed-object and ld.so caches instead
        // of rescanning ld.so.cache per worker: the forked world is
        // byte-identical at this point, parsed objects are immutable, and
        // cache warmth never shows in counters (fetch_object charges the
        // read either way) — so reports stay byte-identical to sequential
        // loads while the per-worker warmup cost drops to a map copy.
        worker.adopt_caches(*loader_);
        for (std::size_t i = w; i < paths.size(); i += workers) {
          reports[i] = worker.load(paths[i], config_.env);
        }
      } catch (...) {
        errors[w] = std::current_exception();
      }
    });
  }
  pool.wait_idle();

  for (auto& error : errors) {
    if (error) std::rethrow_exception(error);
  }
  // Aggregate the per-load stat deltas into the session's accounting, the
  // way sequential loads would have charged it — after the join, so no
  // counter interleaving is possible.
  for (const auto& report : reports) {
    fs_->stats() += report.stats;
  }
  return reports;
}

loader::LoadedObject Session::dlopen(LoadReport& report,
                                     const std::string& caller_path,
                                     const std::string& name) {
  return loader_->dlopen(report, caller_path, name, config_.env);
}

Session::WrapReport Session::shrinkwrap(std::string_view exe) {
  return shrinkwrap(exe, WrapOptions{});
}

Session::WrapReport Session::shrinkwrap(std::string_view exe,
                                        WrapOptions options) {
  // An unset env (both vectors empty) inherits the session environment,
  // matching every other verb; pass a non-empty env to override.
  if (options.env.ld_library_path.empty() && options.env.ld_preload.empty()) {
    options.env = config_.env;
  }
  return ::depchaos::shrinkwrap::shrinkwrap(*fs_, *loader_, resolve_exe(exe),
                                            options);
}

Session::VerifyReport Session::verify(std::string_view exe) {
  return verify(exe, config_.env);
}

Session::VerifyReport Session::verify(std::string_view exe,
                                      const loader::Environment& env) {
  return ::depchaos::shrinkwrap::verify(*fs_, *loader_, resolve_exe(exe), env);
}

std::string Session::libtree(std::string_view exe, TreeOptions options) {
  return ::depchaos::shrinkwrap::libtree(*fs_, *loader_, resolve_exe(exe),
                                         config_.env, options);
}

Session::LaunchResult Session::launch(std::string_view exe, int ranks) {
  return launch(exe, ranks, config_.cluster);
}

Session::LaunchResult Session::launch(std::string_view exe, int ranks,
                                      const launch::ClusterConfig& cluster) {
  return launch::simulate_launch(*fs_, *loader_, resolve_exe(exe), config_.env,
                                 ranks, cluster);
}

std::vector<Session::LaunchResult> Session::launch_sweep(
    std::string_view exe, const std::vector<int>& rank_counts) {
  return launch::scaling_sweep(*fs_, *loader_, resolve_exe(exe), config_.env,
                               rank_counts, config_.cluster);
}

Session::LaunchResult Session::launch_fleet(const SandboxSpec& spec,
                                            int ranks) {
  launch::FleetConfig config;
  config.cluster = config_.cluster;
  return launch_fleet(spec, {}, ranks, config);
}

Session::LaunchResult Session::launch_fleet(const SandboxSpec& spec,
                                            std::string_view exe, int ranks,
                                            const launch::FleetConfig& config) {
  return launch::simulate_fleet_launch(*this, spec, std::string(exe), ranks,
                                       config);
}

std::string Session::save() const { return vfs::save_world(*fs_); }

}  // namespace depchaos::core
