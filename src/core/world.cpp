#include "depchaos/core/world.hpp"

#include <utility>

#include "depchaos/elf/patcher.hpp"
#include "depchaos/vfs/snapshot.hpp"

namespace depchaos::core {

WorldBuilder& WorldBuilder::pynamic(const workload::PynamicConfig& config) {
  pynamic_ = workload::generate_pynamic(fs_, config);
  default_exe_ = pynamic_->exe_path;
  note_ = "executable: " + pynamic_->exe_path;
  return *this;
}

WorldBuilder& WorldBuilder::emacs(const workload::EmacsConfig& config) {
  emacs_ = workload::generate_emacs_like(fs_, config);
  default_exe_ = emacs_->exe_path;
  note_ = "executable: " + emacs_->exe_path;
  return *this;
}

WorldBuilder& WorldBuilder::samba() {
  samba_ = workload::make_samba_scenario(fs_);
  default_exe_ = samba_->exe_path;
  note_ = "executable: " + samba_->exe_path;
  return *this;
}

WorldBuilder& WorldBuilder::rocm() {
  rocm_ = workload::make_rocm_scenario(fs_);
  default_exe_ = rocm_->exe_path;
  note_ = "executable: " + rocm_->exe_path +
          "  (wrong env: LD_LIBRARY_PATH=" + rocm_->bad_lib_dir + ")";
  return *this;
}

WorldBuilder& WorldBuilder::paradox() {
  paradox_ = workload::make_runpath_paradox(fs_);
  default_exe_ = paradox_->exe_path;
  note_ = "executable: " + paradox_->exe_path;
  return *this;
}

WorldBuilder& WorldBuilder::debian(
    const workload::InstalledSystemConfig& config) {
  debian_ = workload::generate_installed_system(config);
  workload::materialize_installed_system(fs_, *debian_);
  default_exe_ = "/usr/bin/bin0";
  note_ = "installed system: " + std::to_string(debian_->binary_deps.size()) +
          " binaries, " + std::to_string(debian_->num_shared_objects) +
          " shared objects";
  return *this;
}

WorldBuilder& WorldBuilder::scenario(std::string_view name) {
  if (name == "pynamic") return pynamic();
  if (name == "emacs") return emacs();
  if (name == "samba") return samba();
  if (name == "rocm") return rocm();
  if (name == "paradox") return paradox();
  if (name == "debian") return debian();
  throw Error("unknown scenario: " + std::string(name));
}

WorldBuilder& WorldBuilder::install(std::string_view path,
                                    const elf::Object& object) {
  elf::install_object(fs_, path, object);
  if (object.kind == elf::ObjectKind::Executable && default_exe_.empty()) {
    default_exe_ = std::string(path);
  }
  return *this;
}

WorldBuilder& WorldBuilder::file(std::string_view path, std::string bytes) {
  fs_.write_file(path, std::move(bytes));
  return *this;
}

WorldBuilder& WorldBuilder::snapshot(std::string_view image) {
  fs_ = vfs::load_world(image);
  return *this;
}

std::string WorldBuilder::save() const { return vfs::save_world(fs_); }

WorldBuilder& WorldBuilder::dialect(loader::Dialect dialect) {
  config_.dialect = dialect;
  config_.policy.reset();
  return *this;
}

WorldBuilder& WorldBuilder::policy(
    std::shared_ptr<const loader::SearchPolicy> policy) {
  config_.policy = std::move(policy);
  return *this;
}

WorldBuilder& WorldBuilder::search(loader::SearchConfig config) {
  config_.search = std::move(config);
  return *this;
}

WorldBuilder& WorldBuilder::environment(loader::Environment env) {
  config_.env = std::move(env);
  return *this;
}

WorldBuilder& WorldBuilder::cluster(launch::ClusterConfig config) {
  config_.cluster = config;
  return *this;
}

WorldBuilder& WorldBuilder::latency(std::shared_ptr<vfs::LatencyModel> model) {
  config_.latency = std::move(model);
  return *this;
}

WorldBuilder& WorldBuilder::threads(std::size_t n) {
  config_.threads = n;
  return *this;
}

WorldBuilder& WorldBuilder::target(std::string exe) {
  default_exe_ = std::move(exe);
  return *this;
}

Session WorldBuilder::build() {
  return Session(std::move(fs_), std::move(config_), std::move(default_exe_));
}

std::shared_ptr<vfs::FileSystem> WorldBuilder::build_image() {
  return std::make_shared<vfs::FileSystem>(std::move(fs_));
}

}  // namespace depchaos::core
