// core::WorldBuilder — compose a scenario world, then open a Session on it.
//
// One fluent object replaces the hand-wired FileSystem + generator +
// SearchConfig + Loader + Environment boilerplate that every consumer used
// to repeat. Generators for the paper's worlds (pynamic, emacs, samba,
// rocm, paradox, debian) compose with custom objects, snapshot
// load/save, and the session knobs (dialect policy, search config,
// environment, latency model):
//
//   auto session = core::WorldBuilder()
//                      .pynamic({.num_modules = 300})
//                      .nfs()
//                      .build();
//   auto sweep = session.launch_sweep("", {64, 256, 1024});
//
// The scenario structs the generators return stay accessible (rocm_info()
// etc.) so walkthrough code can reach their environments and markers
// without re-wiring anything.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "depchaos/core/session.hpp"
#include "depchaos/elf/object.hpp"
#include "depchaos/workload/debian.hpp"
#include "depchaos/workload/emacs.hpp"
#include "depchaos/workload/pynamic.hpp"
#include "depchaos/workload/scenarios.hpp"

namespace depchaos::core {

class WorldBuilder {
 public:
  WorldBuilder() = default;

  // ---- scenario generators (each sets the default target) -----------------
  WorldBuilder& pynamic(const workload::PynamicConfig& config = {});
  WorldBuilder& emacs(const workload::EmacsConfig& config = {});
  WorldBuilder& samba();
  WorldBuilder& rocm();
  WorldBuilder& paradox();
  /// Fig 4 installed system, materialized as an FHS tree.
  WorldBuilder& debian(const workload::InstalledSystemConfig& config = {});

  /// CLI-style dispatch over the generator names above. Throws
  /// depchaos::Error on an unknown name.
  WorldBuilder& scenario(std::string_view name);

  // ---- custom content ------------------------------------------------------
  WorldBuilder& install(std::string_view path, const elf::Object& object);
  WorldBuilder& file(std::string_view path, std::string bytes);

  // ---- snapshots -----------------------------------------------------------
  /// Replace the world with a DCWORLD1 image (vfs::save_world output).
  WorldBuilder& snapshot(std::string_view image);
  /// Serialize the current world.
  std::string save() const;

  // ---- session knobs -------------------------------------------------------
  WorldBuilder& dialect(loader::Dialect dialect);
  WorldBuilder& policy(std::shared_ptr<const loader::SearchPolicy> policy);
  WorldBuilder& search(loader::SearchConfig config);
  WorldBuilder& environment(loader::Environment env);
  WorldBuilder& cluster(launch::ClusterConfig config);
  WorldBuilder& latency(std::shared_ptr<vfs::LatencyModel> model);
  WorldBuilder& nfs() { return latency(std::make_shared<vfs::NfsModel>()); }
  WorldBuilder& local_disk() {
    return latency(std::make_shared<vfs::LocalDiskModel>());
  }
  WorldBuilder& threads(std::size_t n);
  /// Override the default target executable.
  WorldBuilder& target(std::string exe);

  // ---- introspection -------------------------------------------------------
  vfs::FileSystem& fs() { return fs_; }
  const std::string& default_exe() const { return default_exe_; }
  /// Human-readable description of the last generated scenario.
  const std::string& note() const { return note_; }
  const std::optional<workload::PynamicApp>& pynamic_info() const {
    return pynamic_;
  }
  const std::optional<workload::EmacsApp>& emacs_info() const {
    return emacs_;
  }
  const std::optional<workload::SambaScenario>& samba_info() const {
    return samba_;
  }
  const std::optional<workload::RocmScenario>& rocm_info() const {
    return rocm_;
  }
  const std::optional<workload::ParadoxScenario>& paradox_info() const {
    return paradox_;
  }
  const std::optional<workload::InstalledSystem>& debian_info() const {
    return debian_;
  }

  /// Open a Session on the composed world (consumes the builder's world).
  Session build();

  /// Freeze the composed world into a shared read-only application image
  /// (consumes the builder's world) for vfs::FileSystem::mount_image /
  /// Session::sandbox. Paths inside the image are image-root relative;
  /// use $ORIGIN-style search paths so the image works at any mountpoint.
  std::shared_ptr<vfs::FileSystem> build_image();

 private:
  vfs::FileSystem fs_;
  SessionConfig config_;
  std::string default_exe_;
  std::string note_;
  std::optional<workload::PynamicApp> pynamic_;
  std::optional<workload::EmacsApp> emacs_;
  std::optional<workload::SambaScenario> samba_;
  std::optional<workload::RocmScenario> rocm_;
  std::optional<workload::ParadoxScenario> paradox_;
  std::optional<workload::InstalledSystem> debian_;
};

}  // namespace depchaos::core
