// core::Session — the unified entry point to a simulated world.
//
// Every experiment in the paper stands on the same four-piece rig: a
// vfs::FileSystem holding a world, a loader::Loader with a SearchConfig and
// a dialect policy, and a loader::Environment. Session owns that rig and
// exposes the verbs the paper's tooling performs against it — load (ldd),
// dlopen, shrinkwrap, verify, libtree, launch — plus batched parallel
// resolution (load_many) for corpus-scale sweeps. Build one with
// core::WorldBuilder (world.hpp) or from a DCWORLD1 snapshot.
//
//   auto session = core::WorldBuilder().emacs().build();
//   auto before  = session.load();
//   session.shrinkwrap();
//   auto after   = session.load();   // deps+1 opens, Table II's right column
#pragma once

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "depchaos/launch/launch.hpp"
#include "depchaos/loader/loader.hpp"
#include "depchaos/shrinkwrap/libtree.hpp"
#include "depchaos/shrinkwrap/shrinkwrap.hpp"
#include "depchaos/vfs/latency.hpp"
#include "depchaos/vfs/vfs.hpp"

namespace depchaos::core {

/// What Session::sandbox assembles on top of a fork — a container-style
/// per-job view: the app image bound read-only (optionally behind a
/// writable per-job overlay), host directories masked away, fresh
/// scratch space. The host world is never touched; a fleet of sandboxes
/// shares the host AND the image, so each one costs O(delta). Lives at
/// namespace scope (not nested in Session) so launch::simulate_fleet_launch
/// can take it with only a forward declaration; Session::SandboxSpec
/// remains a valid spelling.
struct SandboxSpec {
  /// Read-only squashfs-style application image (see
  /// WorldBuilder::build_image), mounted at `image_mount`. Null = no
  /// image (mask/scratch-only sandbox).
  std::shared_ptr<vfs::FileSystem> image;
  /// Mountpoint; "/" mounts the image as the container's own rootfs.
  std::string image_mount = "/app";
  /// Mount the image behind a writable per-job overlay (overlayfs upper
  /// layer) instead of read-only; divergence stays in this sandbox.
  bool writable_image_overlay = false;
  /// Host directories hidden behind empty read-only tmpfs — the
  /// container "mask" idiom that keeps host libraries from leaking into
  /// the job's library search.
  std::vector<std::string> mask;
  /// Fresh writable scratch mounts (per-job /tmp and friends).
  std::vector<std::string> scratch;
  /// Default executable inside the sandbox ("" keeps the parent's).
  std::string exe;
};

/// Everything configurable about a Session, in one aggregate.
struct SessionConfig {
  loader::SearchConfig search;
  /// Dialect policy; when null, `dialect` names a built-in policy.
  std::shared_ptr<const loader::SearchPolicy> policy;
  loader::Dialect dialect = loader::Dialect::Glibc;
  /// Default process environment for every load issued by the session.
  loader::Environment env;
  /// Default cluster model for launch().
  launch::ClusterConfig cluster;
  /// Latency model installed on the filesystem (nullptr = free operations).
  std::shared_ptr<vfs::LatencyModel> latency;
  /// Worker threads for load_many (0 = hardware concurrency).
  std::size_t threads = 0;
};

class Session {
 public:
  // Aliases so member names below can shadow the library namespaces.
  using LoadReport = loader::LoadReport;
  using WrapOptions = shrinkwrap::Options;
  using WrapReport = shrinkwrap::WrapReport;
  using VerifyReport = shrinkwrap::VerifyReport;
  using TreeOptions = shrinkwrap::TreeOptions;
  using LaunchResult = launch::LaunchResult;

  /// Take ownership of a prepared world. `default_exe` (optional) is the
  /// target every exe-taking method falls back to when passed "".
  explicit Session(vfs::FileSystem fs, SessionConfig config = {},
                   std::string default_exe = {});

  /// Rebuild a session from a DCWORLD1 snapshot (vfs::save_world image) or
  /// a DCWORLD2 fleet image (first view when present, else the base).
  static Session from_snapshot(std::string_view image,
                               SessionConfig config = {});

  Session(Session&&) = default;
  Session& operator=(Session&&) = default;

  /// O(1) copy-on-write fork: a child session over a forked world
  /// (vfs::FileSystem::fork — shared immutable base, private overlay),
  /// with the same search config, dialect policy, environment, and default
  /// target; a per-view latency model (cloned at fork time when the model
  /// supports it); FRESH syscall counters; and the parent's parsed-object /
  /// ld.so caches adopted (safe: parsed objects are immutable, keyed by
  /// PathId in the interner the fork family shares, and the worlds are
  /// identical at the fork point). The support::PathTable is inherited
  /// too — append-only with lock-free id reads, so a forked fleet interns
  /// every probed path exactly once fleet-wide. Mutations on either side —
  /// installs, patches, shrinkwrap — never leak across the boundary, which
  /// makes forks the primitive for what-if experiments and per-worker
  /// isolation in load_many.
  Session fork();

  /// Perform fork()'s parent-side mutations once (vfs::FileSystem::seal):
  /// freeze the overlay, rotate the dentry memo into the shared snapshot,
  /// seal writable mount backings. Until the next mutation of this world,
  /// fork_sealed() is then a const, lock-free stamp — any number of
  /// threads may fork one sealed session concurrently (the
  /// svc::SessionPool admission path). Idempotent.
  void seal() { fs_->seal(); }
  bool sealed() const { return fs_->sealed(); }

  /// Lock-free fork of a seal()ed session: byte-identical to fork() —
  /// same world view, config, caches adopted, fresh counters — but const
  /// on the parent, so concurrent callers need no serialization. Throws
  /// when the session is not sealed (vfs::FsError).
  Session fork_sealed() const;

  /// Compatibility spelling for the namespace-scope SandboxSpec above.
  using SandboxSpec = core::SandboxSpec;

  /// Build a per-job container view: fork this session and assemble the
  /// mount namespace from `spec`. The sandbox starts with COLD loader
  /// caches — its ld.so.cache must be rebuilt from the sandbox namespace;
  /// resolving against the host's cache is precisely the class of bug the
  /// container scenarios model. Loads, shrinkwraps, and patches inside
  /// the sandbox never leak into this session's world.
  Session sandbox(const SandboxSpec& spec);

  // ---- the rig ------------------------------------------------------------
  vfs::FileSystem& fs() { return *fs_; }
  const vfs::FileSystem& fs() const { return *fs_; }
  loader::Loader& loader() { return *loader_; }
  const loader::Loader& loader() const { return *loader_; }
  const loader::SearchPolicy& policy() const { return loader_->policy(); }
  /// The fork-family shared path interner (svc::SessionPool reads it to
  /// report interned-path counts across every client of a shared base).
  /// Id-keyed reads are lock-free; inserts are internally synchronized —
  /// safe to read while forks of this session resolve concurrently.
  const support::PathTable& path_table() const { return fs_->paths(); }
  loader::Environment& env() { return config_.env; }
  const loader::Environment& env() const { return config_.env; }
  const SessionConfig& config() const { return config_; }
  const std::string& default_exe() const { return default_exe_; }
  void set_default_exe(std::string exe) { default_exe_ = std::move(exe); }

  // ---- the verbs ----------------------------------------------------------

  /// Simulate process startup of `exe` ("" = default target) under the
  /// session environment, or an explicit override.
  LoadReport load(std::string_view exe = {});
  LoadReport load(std::string_view exe, const loader::Environment& env);

  /// Resolve many independent closures in parallel on a support::ThreadPool.
  /// Each worker runs against an isolated O(1) copy-on-write fork of the
  /// world (own syscall counters, own parsed-object cache, latency model
  /// cloned at batch start) — per-worker setup cost is independent of
  /// world size, so reports are byte-identical to sequential load() calls; the
  /// per-load VFS stat deltas are aggregated into this session's
  /// filesystem counters after the batch completes. Caveat: with a
  /// STATEFUL latency model (NfsModel's attribute cache), every batch
  /// entry observes the cache state as of batch start — back-to-back
  /// sequential load() calls would instead warm one shared cache, so
  /// sim_time_s can differ there; all other report fields are identical
  /// either way. Falls back to serial when the installed latency model
  /// cannot be cloned.
  std::vector<LoadReport> load_many(std::span<const std::string> exes);

  /// dlopen `name` from code in `caller_path`, continuing `report`.
  loader::LoadedObject dlopen(LoadReport& report,
                              const std::string& caller_path,
                              const std::string& name);

  /// Freeze the resolved closure into absolute DT_NEEDED entries (§IV).
  /// Resolves under the session environment unless `options.env` is set.
  WrapReport shrinkwrap(std::string_view exe = {});
  WrapReport shrinkwrap(std::string_view exe, WrapOptions options);

  /// Audit that a wrapped binary loads by direct open / dedup only.
  VerifyReport verify(std::string_view exe = {});
  VerifyReport verify(std::string_view exe, const loader::Environment& env);

  /// Render the annotated dependency tree (Listing 1).
  std::string libtree(std::string_view exe = {}, TreeOptions options = {});

  /// What-if shrinkwrap (§IV workflow without commitment): wrap `exe`
  /// inside a fork and report the effect — before/after trees, their diff,
  /// and before/after load reports — WITHOUT mutating this session's
  /// world. Only this session's syscall counters move (the baseline load
  /// is charged here like any other load() verb).
  struct WhatIfReport {
    WrapReport wrap;          // the wrap as applied inside the fork
    LoadReport before;        // load in the untouched base world
    LoadReport after;         // load in the wrapped fork
    std::string before_tree;  // libtree of the base
    std::string after_tree;   // libtree of the fork
    std::string tree_diff;    // line diff base -> fork
  };
  WhatIfReport whatif(std::string_view exe = {}, WrapOptions options = {},
                      TreeOptions tree = {});

  /// Extrapolate an MPI launch of `ranks` processes (Fig 6).
  LaunchResult launch(int ranks) { return launch({}, ranks); }
  LaunchResult launch(std::string_view exe, int ranks);
  LaunchResult launch(std::string_view exe, int ranks,
                      const launch::ClusterConfig& cluster);
  std::vector<LaunchResult> launch_sweep(std::string_view exe,
                                         const std::vector<int>& rank_counts);

  /// Containerized launch (launch::simulate_fleet_launch): assemble a
  /// per-rank sandbox from `spec` over this session's world, measure the
  /// op stream a rank issues inside it — shared-image vs per-rank overlay
  /// metadata split — and extrapolate the P-rank fleet. The two-argument
  /// form uses the session's cluster model and the homogeneity fast path
  /// (one sandboxed rank measured, replicated across the fleet).
  LaunchResult launch_fleet(const SandboxSpec& spec, int ranks);
  LaunchResult launch_fleet(const SandboxSpec& spec, std::string_view exe,
                            int ranks, const launch::FleetConfig& config);

  /// Serialize the world to a DCWORLD1 snapshot.
  std::string save() const;

  /// Drop the loader's parsed-object/ld.so caches (after patching).
  void invalidate() { loader_->invalidate(); }

 private:
  std::string resolve_exe(std::string_view exe) const;
  /// fork() with or without adopting this loader's caches — sandbox()
  /// skips the adoption since its namespace surgery would invalidate the
  /// copies anyway.
  Session fork_internal(bool adopt_caches);

  SessionConfig config_;
  std::shared_ptr<const loader::SearchPolicy> policy_;
  // Heap-held so Session stays movable while Loader keeps a stable
  // reference to the filesystem.
  std::unique_ptr<vfs::FileSystem> fs_;
  std::unique_ptr<loader::Loader> loader_;
  std::string default_exe_;
};

}  // namespace depchaos::core
