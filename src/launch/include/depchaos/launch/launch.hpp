// Parallel time-to-launch simulation (§V-A, Fig 6).
//
// An MPI job of P ranks starts by having EVERY rank open the executable and
// resolve its dynamic dependencies against a shared network filesystem.
// The cost decomposes into:
//
//   T(P) = t_init + T_data(P) + T_meta(P)
//
//   T_data — reading the executable + libraries (bytes are identical for
//            normal and shrinkwrapped binaries; this is the floor both
//            curves share);
//   T_meta — the metadata storm: every rank replays the loader's
//            stat/openat stream against the NFS metadata server.
//
// Both phases scale sublinearly with P (client-side caching, server
// queuing, staged start-up — the regime measured by Frings et al. [25]):
// we model them as power laws with calibrated exponents. The metadata op
// count and byte count are NOT modelled — they are measured by replaying
// the actual loader against the VFS; only the op -> seconds conversion is
// the analytic part. That is exactly the paper's causal chain: Shrinkwrap
// wins Fig 6 because it shrinks the measured per-rank op count ~450×, not
// because the model treats it specially.
//
// Containerized launches (simulate_fleet_launch) run the same measurement
// INSIDE a per-rank sandbox — the app image mounted behind a per-rank CoW
// overlay, host dirs masked — and split the measured stream into
// shared-image metadata (identical across ranks, servable once, the part a
// Spindle-style broadcast or image pre-staging can absorb) and per-rank
// overlay metadata (rank-private divergence that every rank must resolve
// itself). Mounts, overlays, and masks change *which* ops a rank issues,
// not just how many — that is the container cold-start regime.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "depchaos/loader/loader.hpp"
#include "depchaos/mds/sim.hpp"
#include "depchaos/vfs/vfs.hpp"

namespace depchaos::core {
class Session;
struct SandboxSpec;
}  // namespace depchaos::core

namespace depchaos::launch {

struct ClusterConfig {
  /// Fixed start-up overhead (job launch, MPI_Init) in seconds.
  double init_s = 1.0;
  /// Effective per-rank staging bandwidth at P=1 (bytes/s). Calibrated so a
  /// ~220 MiB Pynamic image stages in ~4 s at one rank.
  double stage_bandwidth_bytes_s = 57.0e6;
  /// Contention growth exponents (dimensionless, fitted to the Fig 6 regime).
  double data_exponent = 0.32;
  double meta_exponent = 0.55;
  /// Effective cost of one metadata operation at P=1, seconds.
  double meta_op_cost_s = 11.0e-6;
  /// Spindle-style broadcast (Frings et al. [25], mentioned in §V-A as a
  /// complement to Shrinkwrap): ONE rank performs the metadata resolution
  /// and broadcasts results over the interconnect tree, so the metadata
  /// phase stops scaling with P (log-factor relay cost instead). In a
  /// containerized launch only the SHARED-substrate ops broadcast; per-rank
  /// overlay ops are private state no other rank can relay.
  bool spindle_broadcast = false;
  /// Node-local rates for a pre-staged image (FleetConfig::prestaged_image):
  /// shared-substrate traffic served from node-local storage, no storm.
  double local_meta_op_cost_s = 0.2e-6;
  double local_stage_bandwidth_bytes_s = 500.0e6;
};

/// Which engine converts a measured op stream into launch seconds.
///  * Analytic — the closed-form power laws below (contention is an
///    exponent).
///  * Queueing — the depchaos::mds discrete-event simulator replays the
///    measured stream against a modelled metadata server (contention is a
///    mechanism: request batching, client caches, serving topologies).
enum class Engine : std::uint8_t { Analytic, Queueing };

/// Reject non-physical cluster parameters (negative or non-finite times
/// and exponents, non-positive bandwidths and op costs) with
/// std::invalid_argument instead of silently producing NaN/inf launch
/// times. Called at every model entry point.
void validate(const ClusterConfig& config);

struct LaunchResult {
  int nprocs = 0;
  bool load_succeeded = false;
  std::uint64_t meta_ops_per_rank = 0;
  std::uint64_t bytes_per_rank = 0;
  double data_time_s = 0;
  double meta_time_s = 0;
  double total_time_s = 0;

  // ---- containerized breakdown (simulate_fleet_launch; zero for bare) ----
  /// Ops/bytes served by substrate identical across the fleet (read-only
  /// image mounts, masks, content below the sandbox fork point): servable
  /// once, Spindle/broadcast-amenable. Failed probes count as shared — a
  /// negative answer is the same for every rank.
  std::uint64_t shared_meta_ops_per_rank = 0;
  std::uint64_t shared_bytes_per_rank = 0;
  /// Ops/bytes touching per-rank divergence (overlay upper writes, scratch
  /// tmpfs): inherently rank-private, immune to broadcast or pre-staging.
  std::uint64_t overlay_meta_ops_per_rank = 0;
  std::uint64_t overlay_bytes_per_rank = 0;
  /// Fleet totals. Under the homogeneity fast path these are exactly
  /// per-rank × nprocs; with a rank_setup hook they are the measured sums
  /// (the *_per_rank fields above are then floor-averages of the split,
  /// summed so shared + overlay == the per-rank total by construction).
  std::uint64_t fleet_meta_ops = 0;
  std::uint64_t fleet_bytes = 0;
  std::uint64_t fleet_shared_meta_ops = 0;
  std::uint64_t fleet_overlay_meta_ops = 0;
  /// Ranks actually measured: 1 for bare launches and under the fleet
  /// homogeneity fast path; with a rank_setup hook, the number of rank
  /// equivalence classes (== classes_measured; nprocs only with
  /// FleetConfig::cluster_ranks disabled).
  int ranks_measured = 0;
  /// Rank equivalence classes (image, overlay fingerprint, env): one
  /// loader replay each. 1 for bare/homogeneous launches; 0 when
  /// clustering is disabled (every rank measured independently).
  int classes_measured = 0;
  /// Ranks per class, in first-appearance (rank) order; sums to nprocs.
  /// Empty when clustering is disabled.
  std::vector<int> class_sizes;
  bool sandboxed = false;
};

/// One rank's measured cold-cache load — independent of the rank count, so
/// a sweep measures once and extrapolates (scaling_sweep).
struct RankMeasurement {
  bool load_succeeded = false;
  std::uint64_t meta_ops = 0;
  std::uint64_t bytes = 0;
  /// Shared/overlay attribution (sandboxed measurement only; `classified`
  /// false for bare-host measurements, where the split is not meaningful).
  bool classified = false;
  std::uint64_t shared_meta_ops = 0;
  std::uint64_t overlay_meta_ops = 0;
  std::uint64_t shared_bytes = 0;
  std::uint64_t overlay_bytes = 0;
};

/// Replay one rank's load (cold client caches) against the filesystem and
/// record its metadata op stream and staged bytes. When `trace` is
/// non-null the full per-op stream (vfs::OpTrace) is captured alongside
/// the counters — the queueing engine's input.
RankMeasurement measure_rank(vfs::FileSystem& fs, loader::Loader& loader,
                             const std::string& exe_path,
                             const loader::Environment& env,
                             vfs::OpTrace* trace = nullptr);

/// The calibrated op/byte -> seconds conversions, shared by the bare
/// (extrapolate) and containerized (simulate_fleet_launch) models so the
/// two can never drift apart.
double storm_meta_seconds(double ops, int nprocs, const ClusterConfig&);
double spindle_meta_seconds(double ops, int nprocs, const ClusterConfig&);
double storm_data_seconds(double bytes, int nprocs, const ClusterConfig&);

/// Convert a measured rank into the P-rank analytic extrapolation. Pure
/// arithmetic — extrapolating one measurement across a sweep is
/// byte-identical to re-measuring at every rank count.
LaunchResult extrapolate(const RankMeasurement& rank, int nprocs,
                         const ClusterConfig& config);

/// Measure one rank's load (cold client caches) and extrapolate to P ranks.
LaunchResult simulate_launch(vfs::FileSystem& fs, loader::Loader& loader,
                             const std::string& exe_path,
                             const loader::Environment& env, int nprocs,
                             const ClusterConfig& config = {});

/// Fig 6 helper: run the same binary across a rank sweep. The rank-1 op
/// stream is measured ONCE and extrapolated to every entry (the counters a
/// load produces do not depend on cache warmth, so this is byte-identical
/// to re-measuring per entry — asserted in tests/launch_test.cpp).
std::vector<LaunchResult> scaling_sweep(vfs::FileSystem& fs,
                                        loader::Loader& loader,
                                        const std::string& exe_path,
                                        const loader::Environment& env,
                                        const std::vector<int>& rank_counts,
                                        const ClusterConfig& config = {});

/// A queueing-engine launch: the analytic-compatible LaunchResult (same
/// counters and data phase; meta_time_s and total_time_s come from the
/// simulated makespan) plus the full simulator output — queue depths,
/// latency percentiles, cache and topology accounting the formula cannot
/// express.
struct SimOutcome {
  /// Analytic counters/data phase with meta_time_s replaced by the
  /// simulated FIRST-wave makespan (the cold launch Fig 6 measures).
  LaunchResult launch;
  /// Full simulator statistics for the LAST wave run (== the only wave
  /// unless FleetConfig::sim_waves > 1, in which case it is the
  /// cache-warm steady state).
  mds::SimResult sim;
  /// Makespan of every wave in order; size == sim_waves (1 for the bare
  /// entry points, which always run a single wave).
  std::vector<double> wave_makespans;
};

/// Engine glue: the MdsConfig the queueing engine runs for a cluster.
/// The cluster ALWAYS overrides the service mean (meta_op_cost_s), the
/// contention exponent (meta_exponent), the topology (prestaged >
/// spindle_broadcast > direct, mirroring extrapolate_fleet), and the
/// node-local op cost — so the two engines model the same cluster and can
/// never drift. The ServiceModel's distribution/spread/alpha/seed and the
/// CachePolicy are simulator-only degrees of freedom.
mds::MdsConfig mds_config_for(const ClusterConfig& cluster, bool prestaged,
                              const mds::ServiceModel& service = {},
                              const mds::CachePolicy& cache = {});

/// Queueing-engine counterpart of extrapolate: replay the measured bare
/// stream through the simulator at P ranks. A bare fleet is homogeneous by
/// construction, so every op is marked broadcast-amenable (a flat world
/// has no fork boundary to classify against).
SimOutcome extrapolate_queueing(const RankMeasurement& rank,
                                const vfs::OpTrace& trace, int nprocs,
                                const ClusterConfig& config,
                                const mds::ServiceModel& service = {},
                                const mds::CachePolicy& cache = {});

/// Measure one rank (capturing its op stream) and run the queueing engine.
SimOutcome simulate_launch_queueing(vfs::FileSystem& fs,
                                    loader::Loader& loader,
                                    const std::string& exe_path,
                                    const loader::Environment& env,
                                    int nprocs,
                                    const ClusterConfig& config = {},
                                    const mds::ServiceModel& service = {},
                                    const mds::CachePolicy& cache = {});

/// scaling_sweep's queueing column: one measured stream, one simulator run
/// per rank count (cold caches per entry).
std::vector<SimOutcome> scaling_sweep_queueing(
    vfs::FileSystem& fs, loader::Loader& loader, const std::string& exe_path,
    const loader::Environment& env, const std::vector<int>& rank_counts,
    const ClusterConfig& config = {}, const mds::ServiceModel& service = {},
    const mds::CachePolicy& cache = {});

/// Knobs for a containerized fleet launch.
struct FleetConfig {
  ClusterConfig cluster;
  /// Per-rank divergence hook, applied to rank r's sandbox before its
  /// measurement (rank-private config writes, shadowing libraries, ...).
  /// Null = ranks are homogeneous: the fast path measures ONE sandboxed
  /// rank and replicates it; non-null = every rank gets its own sandbox,
  /// and ranks are clustered into equivalence classes by (image, overlay
  /// fingerprint, env) with ONE measured load per class (see
  /// cluster_ranks).
  std::function<void(core::Session&, int rank)> rank_setup;
  /// Equivalence-class measurement for heterogeneous fleets (default on):
  /// after rank_setup runs in every rank's sandbox, ranks whose sandbox
  /// divergence (vfs::FileSystem::overlay_fingerprint, confirmed by
  /// overlay_delta_equal) and loader environment are identical share one
  /// representative measurement — O(#classes) loader replays instead of
  /// O(nprocs), byte-identical totals. false = measure every rank
  /// independently (the pre-clustering behavior; kept for byte-identity
  /// baselines and bench/hetero_fleet.cpp's speedup gate).
  bool cluster_ranks = true;
  /// The image was broadcast/staged to node-local storage before launch:
  /// shared-substrate metadata and bytes are served at the cluster's
  /// node-local rates with no storm contention; only per-rank overlay
  /// traffic still hits the shared filesystem. (Takes precedence over
  /// spindle_broadcast for the shared part — local beats relayed.)
  bool prestaged_image = false;
  /// Engine::Queueing routes the measured streams through the mds
  /// simulator instead of the closed-form extrapolation (see
  /// simulate_fleet_launch_sim for the full simulator output).
  Engine engine = Engine::Analytic;
  /// Simulator-only knobs (service distribution/seed, client caching);
  /// the mean, exponent, and topology always come from `cluster` /
  /// `prestaged_image` via mds_config_for. Ignored by the analytic engine.
  mds::ServiceModel service;
  mds::CachePolicy cache;
  /// Straggler injection (queueing engine only): per-rank start offsets in
  /// seconds; shorter than the fleet means the rest start at 0.
  std::vector<double> start_delays;
  /// Launch waves (queueing engine only): the fleet launches `sim_waves`
  /// times against ONE simulator, so client caches carry across waves —
  /// the repeat-launch scenario (SimOutcome::wave_makespans).
  int sim_waves = 1;
};

/// Reject non-physical fleet parameters: the cluster checks plus the
/// simulator knobs (distribution spread/shape, fanout, cache costs).
void validate(const FleetConfig& config);

/// Containerized Fig 6: assemble a per-rank sandbox from `spec` (image
/// mount + per-rank CoW overlay + masks) over `session`'s world, measure
/// the op stream a rank issues INSIDE it, split shared-image vs per-rank
/// overlay metadata, and extrapolate the P-rank launch. `exe_path` ""
/// falls back to the sandbox default (SandboxSpec::exe, then the
/// session's). Sandbox setup is O(1) per rank via CoW fork — no image
/// copies (gated by bench/fig6_container.cpp).
LaunchResult simulate_fleet_launch(core::Session& session,
                                   const core::SandboxSpec& spec,
                                   const std::string& exe_path, int nprocs,
                                   const FleetConfig& config = {});

/// Queueing-engine fleet launch: the same per-rank sandboxed measurement,
/// but each rank's full op stream is captured and replayed through the
/// mds simulator (homogeneous fleets replicate ONE measured stream across
/// P simulated clients — the measurement stays a single loader replay).
/// With prestaged_image the image mount is marked MountLatency::NodeLocal
/// inside each rank sandbox BEFORE measurement, so node-local costs are
/// charged inside the measured load rather than patched in afterwards.
/// The data phase stays analytic (bytes do not queue at the MDS).
SimOutcome simulate_fleet_launch_sim(core::Session& session,
                                     const core::SandboxSpec& spec,
                                     const std::string& exe_path, int nprocs,
                                     const FleetConfig& config = {});

}  // namespace depchaos::launch
