// Parallel time-to-launch simulation (§V-A, Fig 6).
//
// An MPI job of P ranks starts by having EVERY rank open the executable and
// resolve its dynamic dependencies against a shared network filesystem.
// The cost decomposes into:
//
//   T(P) = t_init + T_data(P) + T_meta(P)
//
//   T_data — reading the executable + libraries (bytes are identical for
//            normal and shrinkwrapped binaries; this is the floor both
//            curves share);
//   T_meta — the metadata storm: every rank replays the loader's
//            stat/openat stream against the NFS metadata server.
//
// Both phases scale sublinearly with P (client-side caching, server
// queuing, staged start-up — the regime measured by Frings et al. [25]):
// we model them as power laws with calibrated exponents. The metadata op
// count and byte count are NOT modelled — they are measured by replaying
// the actual loader against the VFS; only the op -> seconds conversion is
// the analytic part. That is exactly the paper's causal chain: Shrinkwrap
// wins Fig 6 because it shrinks the measured per-rank op count ~450×, not
// because the model treats it specially.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "depchaos/loader/loader.hpp"
#include "depchaos/vfs/vfs.hpp"

namespace depchaos::launch {

struct ClusterConfig {
  /// Fixed start-up overhead (job launch, MPI_Init) in seconds.
  double init_s = 1.0;
  /// Effective per-rank staging bandwidth at P=1 (bytes/s). Calibrated so a
  /// ~220 MiB Pynamic image stages in ~4 s at one rank.
  double stage_bandwidth_bytes_s = 57.0e6;
  /// Contention growth exponents (dimensionless, fitted to the Fig 6 regime).
  double data_exponent = 0.32;
  double meta_exponent = 0.55;
  /// Effective cost of one metadata operation at P=1, seconds.
  double meta_op_cost_s = 11.0e-6;
  /// Spindle-style broadcast (Frings et al. [25], mentioned in §V-A as a
  /// complement to Shrinkwrap): ONE rank performs the metadata resolution
  /// and broadcasts results over the interconnect tree, so the metadata
  /// phase stops scaling with P (log-factor relay cost instead).
  bool spindle_broadcast = false;
};

struct LaunchResult {
  int nprocs = 0;
  bool load_succeeded = false;
  std::uint64_t meta_ops_per_rank = 0;
  std::uint64_t bytes_per_rank = 0;
  double data_time_s = 0;
  double meta_time_s = 0;
  double total_time_s = 0;
};

/// Measure one rank's load (cold client caches) and extrapolate to P ranks.
LaunchResult simulate_launch(vfs::FileSystem& fs, loader::Loader& loader,
                             const std::string& exe_path,
                             const loader::Environment& env, int nprocs,
                             const ClusterConfig& config = {});

/// Fig 6 helper: run the same binary across a rank sweep.
std::vector<LaunchResult> scaling_sweep(vfs::FileSystem& fs,
                                        loader::Loader& loader,
                                        const std::string& exe_path,
                                        const loader::Environment& env,
                                        const std::vector<int>& rank_counts,
                                        const ClusterConfig& config = {});

}  // namespace depchaos::launch
