// Containerized launch storms (§V-A on the container substrate).
//
// A fleet launch replays the loader inside a PER-RANK sandbox: the app
// image mounted (optionally behind a per-rank CoW overlay), host dirs
// masked, per-rank scratch. The sandbox changes *which* metadata ops a
// rank issues — image mounts redirect probes, masks turn leaks into
// misses, overlays add rank-private paths — and the measurement splits
// the stream into shared-image ops (identical across ranks: servable
// once, amenable to a Spindle broadcast or image pre-staging) and
// per-rank overlay ops (divergence only that rank can resolve).
//
// Sandbox setup is O(1) per rank: Session::sandbox forks the host world
// copy-on-write and mounts the shared image without copying a byte of it
// (gated by bench/fig6_container.cpp). Measurement cost scales with the
// number of DISTINCT rank configurations, not the rank count: ranks are
// clustered into equivalence classes by (sandbox overlay fingerprint,
// loader environment) after rank_setup runs in every sandbox, and one
// representative per class is measured (gated by bench/hetero_fleet.cpp).
// Homogeneous fleets (no rank_setup hook) are the 1-class special case —
// a 2048-rank sweep stays a single loader replay.

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "depchaos/core/session.hpp"
#include "depchaos/launch/launch.hpp"

namespace depchaos::launch {

namespace {

void check_fleet_nprocs(int nprocs) {
  if (nprocs < 1) throw std::invalid_argument("launch: nprocs must be >= 1");
}

/// Measure one sandboxed rank with shared/overlay attribution installed.
/// `trace` (optional) additionally captures the full per-op stream — the
/// queueing engine's input.
RankMeasurement measure_sandboxed_rank(core::Session& rank_session,
                                       const std::string& exe_path,
                                       vfs::OpTrace* trace = nullptr) {
  vfs::FileSystem& fs = rank_session.fs();
  vfs::FileSystem::MetaBreakdown split;
  fs.set_meta_breakdown(&split);
  if (trace != nullptr) fs.set_op_trace(trace);
  fs.clear_caches();
  const loader::LoadReport report = rank_session.load(exe_path);
  fs.set_meta_breakdown(nullptr);
  if (trace != nullptr) fs.set_op_trace(nullptr);

  RankMeasurement rank;
  rank.load_succeeded = report.success;
  rank.meta_ops = report.stats.metadata_calls();
  rank.classified = true;
  rank.shared_meta_ops = split.shared_ops;
  rank.overlay_meta_ops = split.private_ops;
  for (const auto& obj : report.load_order) {
    const vfs::FileData* data = fs.peek(obj.path);
    if (data == nullptr) continue;
    rank.bytes += data->size();
    if (fs.served_shared(obj.path).value_or(true)) {
      rank.shared_bytes += data->size();
    } else {
      rank.overlay_bytes += data->size();
    }
  }
  return rank;
}

/// The split-aware op -> seconds conversion. The shared part can be
/// absorbed (pre-staged image: node-local rates; Spindle: one resolver +
/// log-tree relay); the overlay part is rank-private and always pays the
/// storm exponent.
void extrapolate_fleet(LaunchResult& result, double shared_ops,
                       double overlay_ops, double shared_bytes,
                       double overlay_bytes, const FleetConfig& config) {
  const ClusterConfig& cluster = config.cluster;
  const int p = result.nprocs;

  double shared_data_s;
  double shared_meta_s;
  if (config.prestaged_image) {
    shared_data_s = shared_bytes / cluster.local_stage_bandwidth_bytes_s;
    shared_meta_s = shared_ops * cluster.local_meta_op_cost_s;
  } else if (cluster.spindle_broadcast) {
    shared_data_s = storm_data_seconds(shared_bytes, p, cluster);
    shared_meta_s = spindle_meta_seconds(shared_ops, p, cluster);
  } else {
    shared_data_s = storm_data_seconds(shared_bytes, p, cluster);
    shared_meta_s = storm_meta_seconds(shared_ops, p, cluster);
  }
  result.data_time_s =
      shared_data_s + storm_data_seconds(overlay_bytes, p, cluster);
  result.meta_time_s =
      shared_meta_s + storm_meta_seconds(overlay_ops, p, cluster);
  result.total_time_s =
      cluster.init_s + result.data_time_s + result.meta_time_s;
}

/// Loader-environment half of the equivalence-class key. '\0'-terminated
/// entries with a section marker keep the serialization injective.
std::string env_class_key(const loader::Environment& env) {
  std::string key;
  for (const std::string& dir : env.ld_library_path) {
    key += dir;
    key += '\0';
  }
  key += '\1';
  for (const std::string& preload : env.ld_preload) {
    key += preload;
    key += '\0';
  }
  return key;
}

bool env_equal(const loader::Environment& a, const loader::Environment& b) {
  return a.ld_library_path == b.ld_library_path && a.ld_preload == b.ld_preload;
}

/// One rank equivalence class: the representative's sandbox is kept alive
/// so later ranks can be structurally compared against it
/// (overlay_delta_equal — the hash-collision paranoia check).
struct RankClass {
  core::Session sandbox;
  RankMeasurement m;
  int size = 0;
};

/// The shared measurement + analytic-extrapolation body. When `traces` is
/// non-null (queueing engine) each measured CLASS's op stream is captured
/// and `rank_class` receives the per-rank class index (empty for the
/// homogeneous fast path, where one stream stands in for every rank);
/// with prestaged_image the image mount is then marked NodeLocal inside
/// the rank sandbox BEFORE measurement, so the measured load itself
/// charges node-local latency and flags node-local ops in the trace.
LaunchResult measure_and_extrapolate(core::Session& session,
                                     const core::SandboxSpec& spec,
                                     const std::string& exe_path, int nprocs,
                                     const FleetConfig& config,
                                     std::vector<vfs::OpTrace>* traces,
                                     std::vector<int>* rank_class = nullptr) {
  LaunchResult result;
  result.nprocs = nprocs;
  result.sandboxed = true;
  result.load_succeeded = true;

  // Homogeneity fast path: identical ranks issue identical op streams, so
  // one sandboxed rank stands in for the fleet. A rank_setup hook means
  // per-rank divergence — every rank gets its own sandbox, and (unless
  // cluster_ranks is off) ranks collapse into fingerprint equivalence
  // classes measured once each.
  const bool homogeneous = !config.rank_setup;

  RankMeasurement first;
  std::uint64_t total_meta = 0, total_bytes = 0;
  std::uint64_t total_shared_meta = 0, total_overlay_meta = 0;
  std::uint64_t total_shared_bytes = 0, total_overlay_bytes = 0;

  auto prepare_rank = [&](int r) {
    core::Session rank_session = session.sandbox(spec);
    if (config.rank_setup) config.rank_setup(rank_session, r);
    if (traces != nullptr && config.prestaged_image && spec.image) {
      rank_session.fs().set_mount_latency(spec.image_mount,
                                          vfs::MountLatency::NodeLocal);
    }
    return rank_session;
  };
  auto accumulate = [&](const RankMeasurement& rank, std::uint64_t count) {
    result.load_succeeded = result.load_succeeded && rank.load_succeeded;
    total_meta += rank.meta_ops * count;
    total_bytes += rank.bytes * count;
    total_shared_meta += rank.shared_meta_ops * count;
    total_overlay_meta += rank.overlay_meta_ops * count;
    total_shared_bytes += rank.shared_bytes * count;
    total_overlay_bytes += rank.overlay_bytes * count;
  };

  if (homogeneous) {
    if (traces != nullptr) traces->resize(1);
    core::Session rank_session = prepare_rank(0);
    first = measure_sandboxed_rank(rank_session, exe_path,
                                   traces ? &(*traces)[0] : nullptr);
    accumulate(first, 1);
    result.ranks_measured = 1;
    result.classes_measured = 1;
    result.class_sizes = {nprocs};
  } else if (config.cluster_ranks) {
    // Equivalence-class measurement: run the (cheap) rank_setup hook in
    // every rank's sandbox, key each sandbox by its overlay-delta
    // fingerprint plus the loader environment, and replay the loader once
    // per DISTINCT key. The fingerprint is O(delta) (cached at the vfs
    // mutation choke point) and hash-equal candidates are confirmed
    // structurally before joining a class, so a sha256 collision can only
    // split a class (extra measurement), never merge two (wrong numbers).
    std::vector<RankClass> classes;
    std::unordered_map<std::string, std::vector<std::size_t>> by_key;
    if (rank_class != nullptr) rank_class->assign(nprocs, 0);
    for (int r = 0; r < nprocs; ++r) {
      core::Session rank_session = prepare_rank(r);
      std::string key = rank_session.fs().overlay_fingerprint();
      key += '\0';
      key += env_class_key(rank_session.env());
      std::vector<std::size_t>& bucket = by_key[key];
      std::size_t cls = classes.size();
      for (const std::size_t candidate : bucket) {
        if (classes[candidate].sandbox.fs().overlay_delta_equal(
                rank_session.fs()) &&
            env_equal(classes[candidate].sandbox.env(), rank_session.env())) {
          cls = candidate;
          break;
        }
      }
      if (cls == classes.size()) {
        bucket.push_back(cls);
        classes.push_back(RankClass{std::move(rank_session), {}, 0});
        vfs::OpTrace* trace = nullptr;
        if (traces != nullptr) {
          traces->emplace_back();
          trace = &traces->back();
        }
        classes.back().m =
            measure_sandboxed_rank(classes.back().sandbox, exe_path, trace);
      }
      ++classes[cls].size;
      if (rank_class != nullptr) (*rank_class)[r] = static_cast<int>(cls);
    }
    result.ranks_measured = static_cast<int>(classes.size());
    result.classes_measured = static_cast<int>(classes.size());
    result.class_sizes.reserve(classes.size());
    for (const RankClass& cls : classes) {
      accumulate(cls.m, static_cast<std::uint64_t>(cls.size));
      result.class_sizes.push_back(cls.size);
    }
  } else {
    // Clustering disabled: the pre-equivalence-class behavior — every
    // rank measured independently (the byte-identity baseline and the
    // bench speedup denominator).
    const int measured = std::max(1, nprocs);
    result.ranks_measured = measured;
    if (traces != nullptr) traces->resize(measured);
    if (rank_class != nullptr) {
      rank_class->resize(measured);
      for (int r = 0; r < measured; ++r) (*rank_class)[r] = r;
    }
    for (int r = 0; r < measured; ++r) {
      core::Session rank_session = prepare_rank(r);
      const RankMeasurement rank = measure_sandboxed_rank(
          rank_session, exe_path, traces ? &(*traces)[r] : nullptr);
      if (r == 0) first = rank;
      accumulate(rank, 1);
    }
  }

  const std::uint64_t ranks = static_cast<std::uint64_t>(std::max(1, nprocs));
  if (homogeneous) {
    result.meta_ops_per_rank = first.meta_ops;
    result.bytes_per_rank = first.bytes;
    result.shared_meta_ops_per_rank = first.shared_meta_ops;
    result.overlay_meta_ops_per_rank = first.overlay_meta_ops;
    result.shared_bytes_per_rank = first.shared_bytes;
    result.overlay_bytes_per_rank = first.overlay_bytes;
    result.fleet_meta_ops = first.meta_ops * ranks;
    result.fleet_bytes = first.bytes * ranks;
    result.fleet_shared_meta_ops = first.shared_meta_ops * ranks;
    result.fleet_overlay_meta_ops = first.overlay_meta_ops * ranks;
    extrapolate_fleet(result, static_cast<double>(first.shared_meta_ops),
                      static_cast<double>(first.overlay_meta_ops),
                      static_cast<double>(first.shared_bytes),
                      static_cast<double>(first.overlay_bytes), config);
  } else {
    // Heterogeneous ranks: totals are exact sums; the *_per_rank fields
    // are floor-averages of the SPLIT, summed so the tiling invariant
    // (shared + overlay == total) holds by construction; timing uses the
    // true (double) means.
    result.shared_meta_ops_per_rank = total_shared_meta / ranks;
    result.overlay_meta_ops_per_rank = total_overlay_meta / ranks;
    result.meta_ops_per_rank =
        result.shared_meta_ops_per_rank + result.overlay_meta_ops_per_rank;
    result.shared_bytes_per_rank = total_shared_bytes / ranks;
    result.overlay_bytes_per_rank = total_overlay_bytes / ranks;
    result.bytes_per_rank =
        result.shared_bytes_per_rank + result.overlay_bytes_per_rank;
    result.fleet_meta_ops = total_meta;
    result.fleet_bytes = total_bytes;
    result.fleet_shared_meta_ops = total_shared_meta;
    result.fleet_overlay_meta_ops = total_overlay_meta;
    const double n = static_cast<double>(ranks);
    extrapolate_fleet(result, static_cast<double>(total_shared_meta) / n,
                      static_cast<double>(total_overlay_meta) / n,
                      static_cast<double>(total_shared_bytes) / n,
                      static_cast<double>(total_overlay_bytes) / n, config);
  }
  return result;
}

}  // namespace

LaunchResult simulate_fleet_launch(core::Session& session,
                                   const core::SandboxSpec& spec,
                                   const std::string& exe_path, int nprocs,
                                   const FleetConfig& config) {
  validate(config);
  check_fleet_nprocs(nprocs);
  if (config.engine == Engine::Queueing) {
    return simulate_fleet_launch_sim(session, spec, exe_path, nprocs, config)
        .launch;
  }
  return measure_and_extrapolate(session, spec, exe_path, nprocs, config,
                                 nullptr);
}

SimOutcome simulate_fleet_launch_sim(core::Session& session,
                                     const core::SandboxSpec& spec,
                                     const std::string& exe_path, int nprocs,
                                     const FleetConfig& config) {
  validate(config);
  check_fleet_nprocs(nprocs);
  SimOutcome out;
  std::vector<vfs::OpTrace> traces;
  std::vector<int> rank_class;
  out.launch = measure_and_extrapolate(session, spec, exe_path, nprocs,
                                       config, &traces, &rank_class);
  mds::MdsConfig sim_config = mds_config_for(
      config.cluster, config.prestaged_image, config.service, config.cache);
  sim_config.start_delays = config.start_delays;
  mds::MdsSimulator sim(sim_config);
  // One captured stream per measured CLASS; rank r replays its class's
  // stream (pointer replication — no copies), so per-rank alignment with
  // start_delays and SimResult::ranks is preserved exactly as if every
  // rank had been measured.
  std::vector<const std::vector<vfs::OpRecord>*> streams;
  if (rank_class.empty()) {
    for (const vfs::OpTrace& t : traces) streams.push_back(&t.ops());
  } else {
    streams.reserve(rank_class.size());
    for (const int cls : rank_class) streams.push_back(&traces[cls].ops());
  }
  // Waves share ONE simulator: client caches warm across them, so wave 2+
  // of a cache-enabled fleet is the repeat-launch scenario no closed-form
  // storm formula expresses.
  for (int wave = 0; wave < config.sim_waves; ++wave) {
    // Homogeneity fast path: one measured stream, P simulated clients.
    out.sim = streams.size() == 1 ? sim.run_homogeneous(*streams[0], nprocs)
                                  : sim.run(streams);
    out.wave_makespans.push_back(out.sim.makespan_s);
  }
  // The data phase stays analytic — bytes stream from the object servers,
  // not the metadata queue; only the metadata storm is simulated. The
  // launch headline is the cold first wave.
  out.launch.meta_time_s = out.wave_makespans.front();
  out.launch.total_time_s =
      config.cluster.init_s + out.launch.data_time_s + out.launch.meta_time_s;
  return out;
}

}  // namespace depchaos::launch
