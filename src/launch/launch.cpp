#include "depchaos/launch/launch.hpp"

#include <cmath>

namespace depchaos::launch {

LaunchResult simulate_launch(vfs::FileSystem& fs, loader::Loader& loader,
                             const std::string& exe_path,
                             const loader::Environment& env, int nprocs,
                             const ClusterConfig& config) {
  LaunchResult result;
  result.nprocs = nprocs;

  // Cold start: drop whatever the latency model cached client-side.
  fs.clear_caches();
  const loader::LoadReport report = loader.load(exe_path, env);
  result.load_succeeded = report.success;
  result.meta_ops_per_rank = report.stats.metadata_calls();

  std::uint64_t bytes = 0;
  for (const auto& obj : report.load_order) {
    if (const auto* data = fs.peek(obj.path)) bytes += data->size();
  }
  result.bytes_per_rank = bytes;

  const double p = static_cast<double>(nprocs);
  result.data_time_s = (static_cast<double>(bytes) /
                        config.stage_bandwidth_bytes_s) *
                       std::pow(p, config.data_exponent);
  if (config.spindle_broadcast) {
    // One resolver rank + a log2(P) relay down the broadcast tree.
    result.meta_time_s = static_cast<double>(result.meta_ops_per_rank) *
                         config.meta_op_cost_s *
                         (1.0 + std::log2(std::max(1.0, p)) * 0.1);
  } else {
    result.meta_time_s = static_cast<double>(result.meta_ops_per_rank) *
                         config.meta_op_cost_s *
                         std::pow(p, config.meta_exponent);
  }
  result.total_time_s = config.init_s + result.data_time_s + result.meta_time_s;
  return result;
}

std::vector<LaunchResult> scaling_sweep(vfs::FileSystem& fs,
                                        loader::Loader& loader,
                                        const std::string& exe_path,
                                        const loader::Environment& env,
                                        const std::vector<int>& rank_counts,
                                        const ClusterConfig& config) {
  std::vector<LaunchResult> out;
  out.reserve(rank_counts.size());
  for (const int ranks : rank_counts) {
    out.push_back(simulate_launch(fs, loader, exe_path, env, ranks, config));
  }
  return out;
}

}  // namespace depchaos::launch
