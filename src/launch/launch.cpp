#include "depchaos/launch/launch.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace depchaos::launch {

namespace {

void reject(const char* what) { throw std::invalid_argument(what); }

void check_nprocs(int nprocs) {
  if (nprocs < 1) reject("launch: nprocs must be >= 1");
}

}  // namespace

void validate(const ClusterConfig& config) {
  if (!(config.init_s >= 0) || !std::isfinite(config.init_s)) {
    reject("launch: init_s must be finite and >= 0");
  }
  if (!(config.stage_bandwidth_bytes_s > 0)) {
    reject("launch: stage_bandwidth_bytes_s must be > 0");
  }
  if (!(config.local_stage_bandwidth_bytes_s > 0)) {
    reject("launch: local_stage_bandwidth_bytes_s must be > 0");
  }
  if (!(config.data_exponent >= 0 && config.data_exponent <= 2)) {
    reject("launch: data_exponent must be finite in [0, 2]");
  }
  if (!(config.meta_exponent >= 0 && config.meta_exponent <= 2)) {
    reject("launch: meta_exponent must be finite in [0, 2]");
  }
  if (!(config.meta_op_cost_s > 0)) {
    reject("launch: meta_op_cost_s must be > 0");
  }
  if (!(config.local_meta_op_cost_s >= 0)) {
    reject("launch: local_meta_op_cost_s must be >= 0");
  }
}

void validate(const FleetConfig& config) {
  validate(config.cluster);
  // The simulator knobs are checked through the exact MdsConfig the
  // queueing engine would run, whichever engine is selected — a config
  // that cannot simulate is rejected up front.
  mds::MdsConfig sim = mds_config_for(config.cluster, config.prestaged_image,
                                      config.service, config.cache);
  sim.start_delays = config.start_delays;
  mds::validate(sim);
  if (config.sim_waves < 1) reject("launch: sim_waves must be >= 1");
}

mds::MdsConfig mds_config_for(const ClusterConfig& cluster, bool prestaged,
                              const mds::ServiceModel& service,
                              const mds::CachePolicy& cache) {
  mds::MdsConfig config;
  config.service = service;
  config.service.mean_s = cluster.meta_op_cost_s;
  config.cache = cache;
  config.contention_exponent = cluster.meta_exponent;
  if (prestaged) {
    config.topology = mds::Topology::prestaged();
  } else if (cluster.spindle_broadcast) {
    config.topology = mds::Topology::spindle();
  }
  config.topology.local_op_cost_s = cluster.local_meta_op_cost_s;
  return config;
}

RankMeasurement measure_rank(vfs::FileSystem& fs, loader::Loader& loader,
                             const std::string& exe_path,
                             const loader::Environment& env,
                             vfs::OpTrace* trace) {
  RankMeasurement rank;
  // Cold start: drop whatever the latency model cached client-side.
  fs.clear_caches();
  if (trace != nullptr) fs.set_op_trace(trace);
  const loader::LoadReport report = loader.load(exe_path, env);
  if (trace != nullptr) fs.set_op_trace(nullptr);
  rank.load_succeeded = report.success;
  rank.meta_ops = report.stats.metadata_calls();
  for (const auto& obj : report.load_order) {
    if (const auto* data = fs.peek(obj.path)) rank.bytes += data->size();
  }
  return rank;
}

double storm_meta_seconds(double ops, int nprocs,
                          const ClusterConfig& config) {
  return ops * config.meta_op_cost_s *
         std::pow(static_cast<double>(nprocs), config.meta_exponent);
}

double spindle_meta_seconds(double ops, int nprocs,
                            const ClusterConfig& config) {
  // One resolver rank + a log2(P) relay down the broadcast tree.
  return ops * config.meta_op_cost_s *
         (1.0 +
          std::log2(std::max(1.0, static_cast<double>(nprocs))) * 0.1);
}

double storm_data_seconds(double bytes, int nprocs,
                          const ClusterConfig& config) {
  return (bytes / config.stage_bandwidth_bytes_s) *
         std::pow(static_cast<double>(nprocs), config.data_exponent);
}

LaunchResult extrapolate(const RankMeasurement& rank, int nprocs,
                         const ClusterConfig& config) {
  validate(config);
  check_nprocs(nprocs);
  LaunchResult result;
  result.nprocs = nprocs;
  result.load_succeeded = rank.load_succeeded;
  result.meta_ops_per_rank = rank.meta_ops;
  result.bytes_per_rank = rank.bytes;
  result.ranks_measured = 1;

  result.data_time_s =
      storm_data_seconds(static_cast<double>(rank.bytes), nprocs, config);
  result.meta_time_s =
      config.spindle_broadcast
          ? spindle_meta_seconds(static_cast<double>(rank.meta_ops), nprocs,
                                 config)
          : storm_meta_seconds(static_cast<double>(rank.meta_ops), nprocs,
                               config);
  result.total_time_s = config.init_s + result.data_time_s + result.meta_time_s;
  return result;
}

LaunchResult simulate_launch(vfs::FileSystem& fs, loader::Loader& loader,
                             const std::string& exe_path,
                             const loader::Environment& env, int nprocs,
                             const ClusterConfig& config) {
  return extrapolate(measure_rank(fs, loader, exe_path, env), nprocs, config);
}

std::vector<LaunchResult> scaling_sweep(vfs::FileSystem& fs,
                                        loader::Loader& loader,
                                        const std::string& exe_path,
                                        const loader::Environment& env,
                                        const std::vector<int>& rank_counts,
                                        const ClusterConfig& config) {
  validate(config);
  std::vector<LaunchResult> out;
  out.reserve(rank_counts.size());
  if (rank_counts.empty()) return out;
  // The measured op stream is rank-count independent (and load counters do
  // not depend on cache warmth), so one loader replay serves every entry.
  const RankMeasurement rank = measure_rank(fs, loader, exe_path, env);
  for (const int ranks : rank_counts) {
    out.push_back(extrapolate(rank, ranks, config));
  }
  return out;
}

SimOutcome extrapolate_queueing(const RankMeasurement& rank,
                                const vfs::OpTrace& trace, int nprocs,
                                const ClusterConfig& config,
                                const mds::ServiceModel& service,
                                const mds::CachePolicy& cache) {
  check_nprocs(nprocs);
  SimOutcome out;
  // The analytic extrapolation fills the counters and the data phase;
  // only the metadata phase is replaced by the simulated makespan.
  out.launch = extrapolate(rank, nprocs, config);
  // Bare glue: a flat never-forked world classifies every inode as
  // view-private, but a bare fleet is homogeneous by construction — every
  // rank gets the same answer for every op, so the whole stream is
  // broadcast-amenable shared substrate.
  std::vector<vfs::OpRecord> stream = trace.ops();
  for (auto& op : stream) op.shared = true;
  mds::MdsSimulator sim(
      mds_config_for(config, /*prestaged=*/false, service, cache));
  out.sim = sim.run_homogeneous(stream, nprocs);
  out.wave_makespans = {out.sim.makespan_s};
  out.launch.meta_time_s = out.sim.makespan_s;
  out.launch.total_time_s =
      config.init_s + out.launch.data_time_s + out.launch.meta_time_s;
  return out;
}

SimOutcome simulate_launch_queueing(vfs::FileSystem& fs,
                                    loader::Loader& loader,
                                    const std::string& exe_path,
                                    const loader::Environment& env,
                                    int nprocs, const ClusterConfig& config,
                                    const mds::ServiceModel& service,
                                    const mds::CachePolicy& cache) {
  validate(config);
  check_nprocs(nprocs);
  vfs::OpTrace trace;
  const RankMeasurement rank =
      measure_rank(fs, loader, exe_path, env, &trace);
  return extrapolate_queueing(rank, trace, nprocs, config, service, cache);
}

std::vector<SimOutcome> scaling_sweep_queueing(
    vfs::FileSystem& fs, loader::Loader& loader, const std::string& exe_path,
    const loader::Environment& env, const std::vector<int>& rank_counts,
    const ClusterConfig& config, const mds::ServiceModel& service,
    const mds::CachePolicy& cache) {
  validate(config);
  std::vector<SimOutcome> out;
  out.reserve(rank_counts.size());
  if (rank_counts.empty()) return out;
  vfs::OpTrace trace;
  const RankMeasurement rank =
      measure_rank(fs, loader, exe_path, env, &trace);
  for (const int ranks : rank_counts) {
    out.push_back(
        extrapolate_queueing(rank, trace, ranks, config, service, cache));
  }
  return out;
}

}  // namespace depchaos::launch
