#include "depchaos/launch/launch.hpp"

#include <algorithm>
#include <cmath>

namespace depchaos::launch {

RankMeasurement measure_rank(vfs::FileSystem& fs, loader::Loader& loader,
                             const std::string& exe_path,
                             const loader::Environment& env) {
  RankMeasurement rank;
  // Cold start: drop whatever the latency model cached client-side.
  fs.clear_caches();
  const loader::LoadReport report = loader.load(exe_path, env);
  rank.load_succeeded = report.success;
  rank.meta_ops = report.stats.metadata_calls();
  for (const auto& obj : report.load_order) {
    if (const auto* data = fs.peek(obj.path)) rank.bytes += data->size();
  }
  return rank;
}

double storm_meta_seconds(double ops, int nprocs,
                          const ClusterConfig& config) {
  return ops * config.meta_op_cost_s *
         std::pow(static_cast<double>(nprocs), config.meta_exponent);
}

double spindle_meta_seconds(double ops, int nprocs,
                            const ClusterConfig& config) {
  // One resolver rank + a log2(P) relay down the broadcast tree.
  return ops * config.meta_op_cost_s *
         (1.0 +
          std::log2(std::max(1.0, static_cast<double>(nprocs))) * 0.1);
}

double storm_data_seconds(double bytes, int nprocs,
                          const ClusterConfig& config) {
  return (bytes / config.stage_bandwidth_bytes_s) *
         std::pow(static_cast<double>(nprocs), config.data_exponent);
}

LaunchResult extrapolate(const RankMeasurement& rank, int nprocs,
                         const ClusterConfig& config) {
  LaunchResult result;
  result.nprocs = nprocs;
  result.load_succeeded = rank.load_succeeded;
  result.meta_ops_per_rank = rank.meta_ops;
  result.bytes_per_rank = rank.bytes;
  result.ranks_measured = 1;

  result.data_time_s =
      storm_data_seconds(static_cast<double>(rank.bytes), nprocs, config);
  result.meta_time_s =
      config.spindle_broadcast
          ? spindle_meta_seconds(static_cast<double>(rank.meta_ops), nprocs,
                                 config)
          : storm_meta_seconds(static_cast<double>(rank.meta_ops), nprocs,
                               config);
  result.total_time_s = config.init_s + result.data_time_s + result.meta_time_s;
  return result;
}

LaunchResult simulate_launch(vfs::FileSystem& fs, loader::Loader& loader,
                             const std::string& exe_path,
                             const loader::Environment& env, int nprocs,
                             const ClusterConfig& config) {
  return extrapolate(measure_rank(fs, loader, exe_path, env), nprocs, config);
}

std::vector<LaunchResult> scaling_sweep(vfs::FileSystem& fs,
                                        loader::Loader& loader,
                                        const std::string& exe_path,
                                        const loader::Environment& env,
                                        const std::vector<int>& rank_counts,
                                        const ClusterConfig& config) {
  std::vector<LaunchResult> out;
  out.reserve(rank_counts.size());
  if (rank_counts.empty()) return out;
  // The measured op stream is rank-count independent (and load counters do
  // not depend on cache warmth), so one loader replay serves every entry.
  const RankMeasurement rank = measure_rank(fs, loader, exe_path, env);
  for (const int ranks : rank_counts) {
    out.push_back(extrapolate(rank, ranks, config));
  }
  return out;
}

}  // namespace depchaos::launch
