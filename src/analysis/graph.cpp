#include "depchaos/analysis/graph.hpp"

#include <algorithm>
#include <deque>

namespace depchaos::analysis {

Digraph::NodeId Digraph::add_node(std::string label) {
  if (const auto it = index_.find(label); it != index_.end()) {
    return it->second;
  }
  const NodeId id = labels_.size();
  index_.emplace(label, id);
  labels_.push_back(std::move(label));
  adj_.emplace_back();
  in_degree_.push_back(0);
  return id;
}

void Digraph::add_edge(NodeId u, NodeId v) {
  auto& out = adj_[u];
  if (std::find(out.begin(), out.end(), v) != out.end()) return;
  out.push_back(v);
  ++in_degree_[v];
  ++edge_count_;
}

void Digraph::add_edge(std::string_view u_label, std::string_view v_label) {
  const NodeId u = add_node(std::string(u_label));
  const NodeId v = add_node(std::string(v_label));
  add_edge(u, v);
}

std::optional<Digraph::NodeId> Digraph::find(std::string_view label) const {
  const auto it = index_.find(std::string(label));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

std::vector<Digraph::NodeId> Digraph::reachable_from(NodeId root) const {
  std::vector<bool> seen(labels_.size(), false);
  std::vector<NodeId> out;
  std::deque<NodeId> queue{root};
  seen[root] = true;
  while (!queue.empty()) {
    const NodeId node = queue.front();
    queue.pop_front();
    out.push_back(node);
    for (const NodeId next : adj_[node]) {
      if (!seen[next]) {
        seen[next] = true;
        queue.push_back(next);
      }
    }
  }
  return out;
}

std::optional<std::vector<Digraph::NodeId>> Digraph::topo_order() const {
  std::vector<std::size_t> remaining(in_degree_);
  std::deque<NodeId> ready;
  for (NodeId id = 0; id < labels_.size(); ++id) {
    if (remaining[id] == 0) ready.push_back(id);
  }
  std::vector<NodeId> order;
  order.reserve(labels_.size());
  while (!ready.empty()) {
    const NodeId node = ready.front();
    ready.pop_front();
    order.push_back(node);
    for (const NodeId next : adj_[node]) {
      if (--remaining[next] == 0) ready.push_back(next);
    }
  }
  if (order.size() != labels_.size()) return std::nullopt;
  return order;
}

double Digraph::density() const {
  const std::size_t n = node_count();
  if (n < 2) return 0;
  return static_cast<double>(edge_count_) / (static_cast<double>(n) * (n - 1));
}

std::string Digraph::to_dot(std::string_view graph_name) const {
  std::string out = "digraph \"" + std::string(graph_name) + "\" {\n";
  for (NodeId id = 0; id < labels_.size(); ++id) {
    out += "  n" + std::to_string(id) + " [label=\"" + labels_[id] + "\"];\n";
  }
  for (NodeId id = 0; id < labels_.size(); ++id) {
    for (const NodeId next : adj_[id]) {
      out += "  n" + std::to_string(id) + " -> n" + std::to_string(next) +
             ";\n";
    }
  }
  out += "}\n";
  return out;
}

}  // namespace depchaos::analysis
