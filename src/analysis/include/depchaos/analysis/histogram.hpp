// Sample-set summaries used by the figure reproductions: Fig 4 is a
// frequency histogram of shared-object reuse; Fig 1 is categorical counts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace depchaos::analysis {

/// A set of non-negative integer samples (e.g. "number of binaries using
/// shared object i") with the summaries the paper quotes.
class Histogram {
 public:
  void add(std::uint64_t value) { samples_.push_back(value); }
  void reserve(std::size_t n) { samples_.reserve(n); }

  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  std::uint64_t max() const;
  double mean() const;

  /// Value at quantile q in [0,1] (nearest-rank on the sorted samples).
  std::uint64_t quantile(double q) const;

  /// Fraction of samples strictly greater than `threshold` — Fig 4's
  /// "only 4% of shared object files are used by more than 5% of binaries".
  double fraction_above(std::uint64_t threshold) const;

  /// Sorted descending — the shape plotted in Fig 4.
  std::vector<std::uint64_t> sorted_desc() const;

  /// Bucketed counts: result[i] = number of samples equal to i (capped).
  std::vector<std::uint64_t> frequency_table(std::uint64_t cap) const;

  /// Render an ASCII bar chart (for bench output), widest bar = `width`.
  std::string ascii_chart(std::size_t buckets, std::size_t width = 60) const;

  const std::vector<std::uint64_t>& samples() const { return samples_; }

 private:
  std::vector<std::uint64_t> samples_;
};

}  // namespace depchaos::analysis
