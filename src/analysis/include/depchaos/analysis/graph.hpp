// Directed-graph utilities for dependency analysis.
//
// Used for the Nix derivation "snarl" of Fig 2, Spack concrete DAGs, and
// the Debian dependency analyses. Nodes are deduplicated by label; labels
// are the package/derivation/store-path names.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace depchaos::analysis {

class Digraph {
 public:
  using NodeId = std::size_t;

  /// Insert (or find) a node by label; returns its id.
  NodeId add_node(std::string label);

  /// Add edge u -> v ("u depends on v"). Duplicate edges are kept out.
  void add_edge(NodeId u, NodeId v);
  void add_edge(std::string_view u_label, std::string_view v_label);

  std::size_t node_count() const { return labels_.size(); }
  std::size_t edge_count() const { return edge_count_; }

  const std::string& label(NodeId id) const { return labels_[id]; }
  std::optional<NodeId> find(std::string_view label) const;

  const std::vector<NodeId>& successors(NodeId id) const { return adj_[id]; }
  std::size_t out_degree(NodeId id) const { return adj_[id].size(); }
  std::size_t in_degree(NodeId id) const { return in_degree_[id]; }

  /// All nodes reachable from `root`, including `root` itself (the
  /// transitive closure of a package's dependencies).
  std::vector<NodeId> reachable_from(NodeId root) const;

  /// Topological order (dependencies after dependents); nullopt on cycle.
  std::optional<std::vector<NodeId>> topo_order() const;

  bool has_cycle() const { return !topo_order().has_value(); }

  /// Edge density relative to a complete digraph (Fig 2 "snarl" metric).
  double density() const;

  /// Graphviz rendering (Fig 2). Deterministic output ordering.
  std::string to_dot(std::string_view graph_name = "g") const;

 private:
  std::vector<std::string> labels_;
  std::unordered_map<std::string, NodeId> index_;
  std::vector<std::vector<NodeId>> adj_;
  std::vector<std::size_t> in_degree_;
  std::size_t edge_count_ = 0;
};

}  // namespace depchaos::analysis
