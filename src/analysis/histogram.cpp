#include "depchaos/analysis/histogram.hpp"

#include <algorithm>
#include <cmath>

namespace depchaos::analysis {

std::uint64_t Histogram::max() const {
  if (samples_.empty()) return 0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double Histogram::mean() const {
  if (samples_.empty()) return 0;
  long double sum = 0;
  for (const auto v : samples_) sum += v;
  return static_cast<double>(sum / samples_.size());
}

std::uint64_t Histogram::quantile(double q) const {
  if (samples_.empty()) return 0;
  auto sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}

double Histogram::fraction_above(std::uint64_t threshold) const {
  if (samples_.empty()) return 0;
  const auto count =
      std::count_if(samples_.begin(), samples_.end(),
                    [&](std::uint64_t v) { return v > threshold; });
  return static_cast<double>(count) / static_cast<double>(samples_.size());
}

std::vector<std::uint64_t> Histogram::sorted_desc() const {
  auto sorted = samples_;
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  return sorted;
}

std::vector<std::uint64_t> Histogram::frequency_table(std::uint64_t cap) const {
  std::vector<std::uint64_t> table(cap + 1, 0);
  for (const auto v : samples_) {
    ++table[std::min(v, cap)];
  }
  return table;
}

std::string Histogram::ascii_chart(std::size_t buckets,
                                   std::size_t width) const {
  if (samples_.empty() || buckets == 0) return "(empty)\n";
  const std::uint64_t top = std::max<std::uint64_t>(1, max());
  const double bucket_width =
      static_cast<double>(top + 1) / static_cast<double>(buckets);
  std::vector<std::uint64_t> counts(buckets, 0);
  for (const auto v : samples_) {
    auto b = static_cast<std::size_t>(static_cast<double>(v) / bucket_width);
    ++counts[std::min(b, buckets - 1)];
  }
  const std::uint64_t peak =
      std::max<std::uint64_t>(1, *std::max_element(counts.begin(), counts.end()));
  std::string out;
  for (std::size_t b = 0; b < buckets; ++b) {
    const auto lo = static_cast<std::uint64_t>(b * bucket_width);
    const auto bar_len = static_cast<std::size_t>(
        static_cast<double>(counts[b]) / static_cast<double>(peak) *
        static_cast<double>(width));
    out += "  [" + std::to_string(lo) + "+] ";
    out.append(bar_len, '#');
    out += " " + std::to_string(counts[b]) + "\n";
  }
  return out;
}

}  // namespace depchaos::analysis
