// Dependency Views (§III-D1): the symlink-farm workaround.
//
// Instead of a long RPATH list on every object, build one package-local
// FHS-shaped directory of symlinks to the whole dependency closure and give
// the executable a single RPATH entry pointing at it. glibc's RPATH
// propagation (Table I) then lets every transitive lookup resolve through
// the view. The cost is inodes — one symlink per closure library — and the
// single-version-per-dependency restriction, both of which the ablation
// bench quantifies.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "depchaos/loader/loader.hpp"
#include "depchaos/vfs/vfs.hpp"

namespace depchaos::shrinkwrap {

struct ViewReport {
  std::string view_dir;          // <view>/lib
  std::size_t symlink_count = 0;
  std::size_t inode_cost = 0;    // inodes consumed by the view
  /// Libraries that could not be added because a DIFFERENT file with the
  /// same soname is already in the view — the single-version restriction.
  std::vector<std::string> conflicts;
  bool ok = false;
};

/// Build a dependency view for `exe_path` at `view_root` and rewire the
/// executable: RPATH=[<view_root>/lib], RUNPATH cleared; every closure
/// library has its own search paths cleared so resolution flows through the
/// propagated view RPATH.
ViewReport make_dependency_view(vfs::FileSystem& fs, loader::Loader& loader,
                                const std::string& exe_path,
                                const std::string& view_root,
                                const loader::Environment& env = {});

}  // namespace depchaos::shrinkwrap
