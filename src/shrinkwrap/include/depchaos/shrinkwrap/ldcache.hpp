// Per-application loader cache writer — the Guix mitigation the paper cites
// in §V-A (Courtès, "Taming the 'stat' storm with a loader cache").
//
// Instead of rewriting the binary (Shrinkwrap), resolve the closure once
// and record the name->path map in a side file "<exe>.ldcache" that a
// cooperating loader (SearchConfig::use_app_cache) consults before any
// directory search. Same stat-storm savings; different trade-off: the
// binary is untouched, but correctness now depends on the side file
// shipping with the binary and staying in sync.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "depchaos/loader/loader.hpp"
#include "depchaos/vfs/vfs.hpp"

namespace depchaos::shrinkwrap {

struct LdCacheReport {
  std::string cache_path;
  std::size_t entries = 0;
  std::vector<std::string> unresolved;
  bool ok() const { return unresolved.empty(); }
};

/// Resolve `exe_path`'s closure under `env` and write the cache file.
LdCacheReport make_loader_cache(vfs::FileSystem& fs, loader::Loader& loader,
                                const std::string& exe_path,
                                const loader::Environment& env = {},
                                const std::string& suffix = ".ldcache");

}  // namespace depchaos::shrinkwrap
