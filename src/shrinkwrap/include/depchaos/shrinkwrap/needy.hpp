// Needy Executables (§III-D2): lift the closure via the *link line*.
//
// The precursor to Shrinkwrap: relink the executable with every library of
// the transitive closure as a direct NEEDED entry (bare sonames, with
// search paths covering their directories). It fixes load order by pinning
// BFS at the top, but has the two flaws the paper calls out, both modelled:
//   * if any pair of closure libraries defines the same strong symbol the
//     link FAILS (libomp vs libompstubs, §V-B.2) — Shrinkwrap does not
//     touch the link line and therefore does not have this problem;
//   * dlopen()ed libraries are invisible to it.
#pragma once

#include <string>
#include <vector>

#include "depchaos/loader/loader.hpp"
#include "depchaos/loader/symbols.hpp"
#include "depchaos/vfs/vfs.hpp"

namespace depchaos::shrinkwrap {

struct NeedyReport {
  bool ok = false;
  loader::LinkResult link;             // why the link failed, if it did
  std::vector<std::string> lifted;     // sonames now on the executable
  std::vector<std::string> search_dirs;  // RUNPATH written to the executable
};

/// Relink `exe_path` with its full closure as direct needed entries.
/// On duplicate strong symbols the executable is left unchanged and the
/// report's link result explains the failure.
NeedyReport make_needy(vfs::FileSystem& fs, loader::Loader& loader,
                       const std::string& exe_path,
                       const loader::Environment& env = {});

}  // namespace depchaos::shrinkwrap
