// libtree: render a binary's dependency tree with per-edge resolution
// annotations — the tool behind Listing 1, where libsamba-debug-samba4 is
// "not found" on one branch yet satisfied on another because an earlier
// subtree already loaded it.
#pragma once

#include <string>

#include "depchaos/loader/loader.hpp"
#include "depchaos/support/path_table.hpp"

namespace depchaos::shrinkwrap {

struct TreeOptions {
  bool show_paths = false;  // append the resolved path to each line
  int max_depth = -1;       // -1 = unlimited
  int indent = 4;
};

/// Render the dependency tree of `exe_path` under `env`.
std::string libtree(vfs::FileSystem& fs, loader::Loader& loader,
                    const std::string& exe_path,
                    const loader::Environment& env = {},
                    const TreeOptions& options = {});

/// Render from an existing report (avoids a second load). The overload
/// taking a PathTable keys the requester buckets in the caller's interner
/// (pass the world's — Session and libtree() do); the table-less overload
/// builds a short-lived local one.
std::string render_tree(const loader::LoadReport& report,
                        const TreeOptions& options = {});
std::string render_tree(const loader::LoadReport& report,
                        const TreeOptions& options,
                        support::PathTable& paths);

/// Line-oriented diff of two rendered trees (LCS-based): unchanged lines
/// prefixed "  ", removed "- ", added "+ ". Drives the what-if workflow:
/// shrinkwrap inside a Session::fork(), then diff the fork's tree against
/// the untouched base world's.
std::string tree_diff(const std::string& before, const std::string& after);

}  // namespace depchaos::shrinkwrap
