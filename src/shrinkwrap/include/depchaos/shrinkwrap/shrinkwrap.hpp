// Shrinkwrap (§IV): freeze a binary's dependency resolution.
//
// Caches the loader's answer by rewriting the executable's DT_NEEDED section
// to the *absolute paths* of every library in the full transitive closure,
// lifted to the top-level binary. After wrapping:
//   * the initial load is environment-independent (LD_LIBRARY_PATH cannot
//     redirect it; LD_PRELOAD still works — the supported backdoor);
//   * the loader issues one open() per library instead of searching
//     directory lists (Table II's 36× syscall reduction);
//   * transitive libraries are found via glibc's soname dedup (Fig 5) when
//     unwrapped objects deeper in the graph still request bare sonames.
//
// Two resolution strategies mirror the paper's implementation:
//   Interp — ask the loader itself (ld.so --list): authoritative when the
//            binary is executable on the current system.
//   Native — traverse the filesystem replicating the search semantics
//            (needed when the binary or loader cannot run here); handles
//            the corner cases §IV lists: wrong-architecture candidates are
//            silently skipped, hwcaps subdirectories are honored.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "depchaos/loader/loader.hpp"
#include "depchaos/vfs/vfs.hpp"

namespace depchaos::shrinkwrap {

enum class Strategy : std::uint8_t { Interp, Native };

struct Options {
  Strategy strategy = Strategy::Interp;
  /// Lift the full transitive closure onto the top-level binary (§IV).
  bool lift_transitive = true;
  /// Drop RPATH/RUNPATH after rewriting (they are dead weight once every
  /// needed entry is absolute).
  bool clear_search_paths = true;
  /// Extra sonames to append to the needed list before resolving — the
  /// documented recipe for known dlopen()ed libraries (python modules).
  std::vector<std::string> extra_needed;
  /// §IV future work, implemented: audit the dlopen() call sites recorded
  /// in every closure object, resolve each from its caller's search context
  /// (including nested dlopens), and lift the results to DT_NEEDED too.
  /// Unresolvable dlopen names are reported but are not fatal (plugins may
  /// legitimately be absent).
  bool audit_dlopens = false;
  /// Environment to resolve under (the "consistent build environment").
  loader::Environment env;
};

struct WrapReport {
  std::vector<std::string> old_needed;
  std::vector<std::string> new_needed;  // absolute paths, final order
  /// needed string -> resolved absolute path, for everything in the closure.
  std::map<std::string, std::string> resolved;
  std::vector<std::string> unresolved;  // names the strategy could not find
  /// dlopen audit results (when Options::audit_dlopens is set).
  std::vector<std::string> dlopen_lifted;      // absolute paths added
  std::vector<std::string> dlopen_unresolved;  // call sites we could not pin
  /// Syscall cost of performing the wrap itself (§V: ~4s warm / >1min cold
  /// NFS for a 900-dep binary).
  vfs::SyscallStats wrap_cost;
  bool changed = false;

  bool ok() const { return unresolved.empty(); }
};

/// Shrinkwrap the executable in place. The loader's caches are invalidated
/// so subsequent loads observe the rewritten binary.
WrapReport shrinkwrap(vfs::FileSystem& fs, loader::Loader& loader,
                      const std::string& exe_path, const Options& options = {});

struct VerifyReport {
  bool ok = false;
  /// Needed entries that are not absolute paths.
  std::vector<std::string> non_absolute;
  /// Libraries that had to be found by search rather than direct open.
  std::vector<std::string> searched;
  std::vector<std::string> missing;
};

/// Audit a wrapped binary: loads it and checks that every first-level
/// dependency was found by direct absolute-path open or dedup cache.
VerifyReport verify(vfs::FileSystem& fs, loader::Loader& loader,
                    const std::string& exe_path,
                    const loader::Environment& env = {});

}  // namespace depchaos::shrinkwrap
