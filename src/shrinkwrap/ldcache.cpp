#include "depchaos/shrinkwrap/ldcache.hpp"

namespace depchaos::shrinkwrap {

LdCacheReport make_loader_cache(vfs::FileSystem& fs, loader::Loader& loader,
                                const std::string& exe_path,
                                const loader::Environment& env,
                                const std::string& suffix) {
  LdCacheReport report;
  report.cache_path = exe_path + suffix;

  const loader::LoadReport load = loader.load(exe_path, env);
  std::string contents;
  for (std::size_t i = 1; i < load.load_order.size(); ++i) {
    const auto& obj = load.load_order[i];
    if (obj.how == loader::HowFound::Preload) continue;
    // Key by both the requested string and the soname so transitive
    // bare-soname requests hit too.
    contents += obj.name + " " + obj.path + "\n";
    ++report.entries;
    if (obj.object && !obj.object->dyn.soname.empty() &&
        obj.object->dyn.soname != obj.name) {
      contents += obj.object->dyn.soname + " " + obj.path + "\n";
      ++report.entries;
    }
  }
  for (const auto& missing : load.missing) {
    if (missing.requested_by != "LD_PRELOAD") {
      report.unresolved.push_back(missing.name);
    }
  }
  fs.write_file(report.cache_path, contents);
  loader.invalidate();
  return report;
}

}  // namespace depchaos::shrinkwrap
