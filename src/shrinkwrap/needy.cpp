#include "depchaos/shrinkwrap/needy.hpp"

#include <algorithm>
#include <unordered_set>

#include "depchaos/elf/patcher.hpp"
#include "depchaos/support/path_table.hpp"

namespace depchaos::shrinkwrap {

NeedyReport make_needy(vfs::FileSystem& fs, loader::Loader& loader,
                       const std::string& exe_path,
                       const loader::Environment& env) {
  NeedyReport report;
  const loader::LoadReport load = loader.load(exe_path, env);
  if (!load.success) return report;

  // Closure dirs are deduped by interned PathId — with a string-keyed
  // fallback for paths the interner refuses past its byte budget (the
  // kNone sentinel's parent is entry 0, which would collapse every such
  // dir into one empty string). The RUNPATH list is still emitted in
  // sorted-string order, as before.
  std::vector<std::string> closure_paths;
  std::vector<std::string> sonames;
  support::PathTable& paths = fs.paths();
  std::unordered_set<support::PathId> dirs_seen;
  std::unordered_set<std::string> dirs_overflow;
  for (std::size_t i = 1; i < load.load_order.size(); ++i) {
    const auto& obj = load.load_order[i];
    if (obj.how == loader::HowFound::Preload) continue;
    closure_paths.push_back(obj.path);
    sonames.push_back(obj.object && !obj.object->dyn.soname.empty()
                          ? obj.object->dyn.soname
                          : vfs::basename(obj.path));
    if (const support::PathId id = paths.intern(obj.path);
        id != support::PathTable::kNone) {
      dirs_seen.insert(paths.parent(id));
    } else {
      dirs_overflow.insert(vfs::dirname(obj.path));
    }
  }

  // The link line: the executable plus every closure library. Duplicate
  // strong symbols are a hard error here — ld(1) behaviour.
  report.link = loader::link_check(fs, exe_path, closure_paths);
  if (!report.link.ok) {
    return report;  // executable untouched
  }

  elf::Patcher patcher(fs);
  patcher.set_needed(exe_path, sonames);
  report.search_dirs.reserve(dirs_seen.size() + dirs_overflow.size());
  for (const support::PathId dir : dirs_seen) {
    report.search_dirs.push_back(paths.str(dir));
  }
  for (const std::string& dir : dirs_overflow) {
    report.search_dirs.push_back(dir);
  }
  std::sort(report.search_dirs.begin(), report.search_dirs.end());
  report.search_dirs.erase(
      std::unique(report.search_dirs.begin(), report.search_dirs.end()),
      report.search_dirs.end());
  patcher.set_runpath(exe_path, report.search_dirs);
  patcher.set_rpath(exe_path, {});
  loader.invalidate();

  report.lifted = std::move(sonames);
  report.ok = true;
  return report;
}

}  // namespace depchaos::shrinkwrap
