#include "depchaos/shrinkwrap/libtree.hpp"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "depchaos/support/path_table.hpp"
#include "depchaos/support/strings.hpp"

namespace depchaos::shrinkwrap {

namespace {

struct TreeBuilder {
  const loader::LoadReport& report;
  const TreeOptions& options;
  // Requester-path key -> indices into report.requests, in request
  // order: the recursion walks keys, usually PathIds of the world's own
  // interner (paths already interned by the load). Non-path requesters
  // ("LD_PRELOAD", "") share the 0 (kNone) bucket, which the render walk
  // never visits. Past the interner's byte budget a requester may refuse
  // to intern; such paths get LOCAL keys above 2^32 so distinct
  // requesters never collapse into one bucket (which would loop the
  // recursion).
  support::PathTable& paths;
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> children;
  std::unordered_map<std::string, std::uint64_t> overflow_keys;
  std::string out;

  std::uint64_t key_of(const std::string& requester) {
    if (requester.empty() || requester.front() != '/') {
      return support::PathTable::kNone;
    }
    const support::PathId id = paths.intern(requester);
    if (id != support::PathTable::kNone) return id;
    const auto [it, inserted] = overflow_keys.try_emplace(
        requester, (std::uint64_t{1} << 32) + overflow_keys.size());
    return it->second;
  }

  void render(std::uint64_t requester, int depth) {
    if (options.max_depth >= 0 && depth > options.max_depth) return;
    const auto it = children.find(requester);
    if (it == children.end()) return;
    for (const std::size_t index : it->second) {
      const auto& request = report.requests[index];
      out.append(static_cast<std::size_t>(depth * options.indent), ' ');
      out += request.name;
      if (request.how == loader::HowFound::Cache &&
          request.cache_search_how != loader::HowFound::Cache) {
        // Listing 1 rendering: annotate with the PURE-search outcome. A
        // library that only works because an earlier subtree loaded it
        // shows as "not found" even though the program runs.
        if (request.cache_search_how == loader::HowFound::NotFound) {
          out += " not found (satisfied by earlier load)";
        } else {
          out += " [";
          out += loader::how_found_name(request.cache_search_how);
          out += "]";
        }
      } else {
        out += " [";
        out += loader::how_found_name(request.how);
        out += "]";
      }
      if (options.show_paths && !request.path.empty()) {
        out += " => " + request.path;
      }
      out += '\n';
      // Recurse only below the edge that actually loaded the object; cache
      // hits terminate (their subtree was rendered where it loaded).
      if (request.how != loader::HowFound::Cache &&
          request.how != loader::HowFound::NotFound) {
        render(key_of(request.path), depth + 1);
      }
    }
  }
};

}  // namespace

std::string render_tree(const loader::LoadReport& report,
                        const TreeOptions& options,
                        support::PathTable& paths) {
  if (report.load_order.empty()) return "(empty load)\n";
  TreeBuilder builder{report, options, paths};
  for (std::size_t i = 0; i < report.requests.size(); ++i) {
    builder.children[builder.key_of(report.requests[i].requested_by)]
        .push_back(i);
  }
  const auto& root = report.load_order.front();
  builder.out = root.path + "\n";
  builder.render(builder.key_of(root.path), 1);
  return builder.out;
}

std::string render_tree(const loader::LoadReport& report,
                        const TreeOptions& options) {
  support::PathTable local;
  return render_tree(report, options, local);
}

std::string libtree(vfs::FileSystem& fs, loader::Loader& loader,
                    const std::string& exe_path,
                    const loader::Environment& env,
                    const TreeOptions& options) {
  const loader::LoadReport report = loader.load(exe_path, env);
  return render_tree(report, options, fs.paths());
}

std::string tree_diff(const std::string& before, const std::string& after) {
  const auto a = support::split(before, '\n');
  const auto b = support::split(after, '\n');
  // Classic LCS table; rendered trees are small (one line per request edge).
  const std::size_t n = a.size(), m = b.size();
  std::vector<std::vector<std::size_t>> lcs(n + 1,
                                            std::vector<std::size_t>(m + 1, 0));
  for (std::size_t i = n; i-- > 0;) {
    for (std::size_t j = m; j-- > 0;) {
      lcs[i][j] = a[i] == b[j] ? lcs[i + 1][j + 1] + 1
                               : std::max(lcs[i + 1][j], lcs[i][j + 1]);
    }
  }
  std::string out;
  std::size_t i = 0, j = 0;
  const auto emit = [&out](const char* prefix, const std::string& line) {
    if (line.empty()) return;  // trailing newline artifact
    out += prefix;
    out += line;
    out += '\n';
  };
  while (i < n && j < m) {
    if (a[i] == b[j]) {
      emit("  ", a[i]);
      ++i, ++j;
    } else if (lcs[i + 1][j] >= lcs[i][j + 1]) {
      emit("- ", a[i++]);
    } else {
      emit("+ ", b[j++]);
    }
  }
  while (i < n) emit("- ", a[i++]);
  while (j < m) emit("+ ", b[j++]);
  return out;
}

}  // namespace depchaos::shrinkwrap
