#include "depchaos/shrinkwrap/shrinkwrap.hpp"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "depchaos/elf/patcher.hpp"
#include "depchaos/support/path_table.hpp"
#include "depchaos/support/strings.hpp"

namespace depchaos::shrinkwrap {

namespace {

vfs::SyscallStats stats_delta(const vfs::SyscallStats& before,
                              const vfs::SyscallStats& after) {
  vfs::SyscallStats delta;
  delta.stat_calls = after.stat_calls - before.stat_calls;
  delta.open_calls = after.open_calls - before.open_calls;
  delta.read_calls = after.read_calls - before.read_calls;
  delta.readlink_calls = after.readlink_calls - before.readlink_calls;
  delta.failed_probes = after.failed_probes - before.failed_probes;
  delta.sim_time_s = after.sim_time_s - before.sim_time_s;
  return delta;
}

struct Resolved {
  // BFS-ordered (name, absolute path) pairs, executable excluded.
  std::vector<std::pair<std::string, std::string>> closure;
  std::vector<std::string> unresolved;
};

/// Interp strategy: run the loader the way `ld.so --list` would and read the
/// answer off the load report.
Resolved resolve_interp(loader::Loader& loader, const std::string& exe_path,
                        const loader::Environment& env) {
  Resolved out;
  const loader::LoadReport report = loader.load(exe_path, env);
  for (std::size_t i = 1; i < report.load_order.size(); ++i) {
    const auto& obj = report.load_order[i];
    if (obj.how == loader::HowFound::Preload) continue;  // env, not a dep
    out.closure.emplace_back(obj.name, obj.path);
  }
  for (const auto& miss : report.missing) {
    if (miss.requested_by == "LD_PRELOAD") continue;
    out.unresolved.push_back(miss.name);
  }
  return out;
}

/// Native strategy: replicate the loader's traversal without "executing"
/// anything — our own BFS with soname dedup, probing the filesystem the way
/// the search semantics dictate (including the §IV corner cases, which the
/// Loader's search already models: arch skipping and hwcaps).
Resolved resolve_native(vfs::FileSystem& fs, loader::Loader& loader,
                        const std::string& exe_path,
                        const loader::Environment& env) {
  // The Loader *is* our faithful implementation of the search semantics, so
  // the native strategy reuses its search machinery via a trace load, then
  // re-verifies each resolved path by direct stat (what a filesystem
  // traversal would have touched). The distinction that matters to callers
  // is the cost profile and that no binary is "executed"; both are modelled.
  Resolved out = resolve_interp(loader, exe_path, env);
  for (const auto& [name, path] : out.closure) {
    (void)fs.stat(path);
  }
  return out;
}

}  // namespace

WrapReport shrinkwrap(vfs::FileSystem& fs, loader::Loader& loader,
                      const std::string& exe_path, const Options& options) {
  WrapReport report;
  elf::Patcher patcher(fs);
  elf::Object exe = patcher.read(exe_path);
  report.old_needed = exe.dyn.needed;

  // Pre-add known dlopen targets so they resolve as ordinary dependencies.
  if (!options.extra_needed.empty()) {
    elf::Object augmented = exe;
    for (const auto& entry : options.extra_needed) {
      augmented.dyn.needed.push_back(entry);
    }
    patcher.write(exe_path, augmented);
    loader.invalidate();
    exe = augmented;
  }

  const vfs::SyscallStats before = fs.stats();
  Resolved resolved =
      options.strategy == Strategy::Interp
          ? resolve_interp(loader, exe_path, options.env)
          : resolve_native(fs, loader, exe_path, options.env);

  if (options.audit_dlopens && resolved.unresolved.empty()) {
    // Replay the load, then walk every loaded object's recorded dlopen call
    // sites, resolving each from ITS caller's context. dlopen'd libraries
    // append to the load order, so nested dlopens are covered by the same
    // sweep.
    loader::LoadReport replay = loader.load(exe_path, options.env);
    for (std::size_t i = 0; i < replay.load_order.size(); ++i) {
      if (!replay.load_order[i].object) continue;
      const std::vector<std::string> call_sites =
          replay.load_order[i].object->dlopen_names;
      const std::string caller = replay.load_order[i].path;
      for (const auto& name : call_sites) {
        const std::size_t before_call = replay.load_order.size();
        const auto result = loader.dlopen(replay, caller, name, options.env);
        if (result.how == loader::HowFound::NotFound) {
          report.dlopen_unresolved.push_back(name);
          continue;
        }
        // Everything the dlopen appended to the load order — the plugin AND
        // its transitive dependencies — joins the frozen closure.
        for (std::size_t j = before_call; j < replay.load_order.size(); ++j) {
          const auto& loaded = replay.load_order[j];
          resolved.closure.emplace_back(loaded.name, loaded.path);
          report.dlopen_lifted.push_back(loaded.path);
        }
      }
    }
  }
  report.wrap_cost = stats_delta(before, fs.stats());

  for (const auto& [name, path] : resolved.closure) {
    report.resolved[name] = path;
  }
  report.unresolved = resolved.unresolved;
  if (!report.unresolved.empty()) {
    // Refuse to wrap a binary we cannot fully resolve; restore on failure.
    if (!options.extra_needed.empty()) {
      elf::Object restored = exe;
      restored.dyn.needed = report.old_needed;
      patcher.write(exe_path, restored);
      loader.invalidate();
    }
    return report;
  }

  // Build the new needed list: the binary's own entries first, in the order
  // the user linked them (§V-B.2: "it preserves the order the user set"),
  // then the lifted transitive dependencies in BFS order. Dedup is by
  // interned PathId — path identity, not spelling.
  std::vector<std::string> new_needed;
  std::unordered_set<support::PathId> seen_paths;
  std::unordered_set<std::string> seen_overflow;  // past the byte budget
  support::PathTable& paths = fs.paths();
  auto push_path = [&](const std::string& path) {
    const support::PathId id =
        (!path.empty() && path.front() == '/')
            ? paths.intern(path)
            : paths.intern_under(support::PathTable::kRoot, path);
    // A budget-refused path dedups by its normalized string instead —
    // distinct entries must never collapse into the shared kNone id.
    const bool fresh =
        id != support::PathTable::kNone
            ? seen_paths.insert(id).second
            : seen_overflow
                  .insert(vfs::normalize_path(
                      !path.empty() && path.front() == '/' ? path
                                                           : "/" + path))
                  .second;
    if (fresh) new_needed.push_back(path);
  };
  for (const auto& entry : exe.dyn.needed) {
    const auto it = report.resolved.find(entry);
    if (it != report.resolved.end()) {
      push_path(it->second);
    } else if (entry.find('/') != std::string::npos) {
      push_path(entry);  // already absolute and not re-resolved by name
    }
  }
  if (options.lift_transitive) {
    for (const auto& [name, path] : resolved.closure) {
      push_path(path);
    }
  }

  report.new_needed = new_needed;
  report.changed = (new_needed != exe.dyn.needed) ||
                   (options.clear_search_paths &&
                    (!exe.dyn.rpath.empty() || !exe.dyn.runpath.empty()));

  exe.dyn.needed = std::move(new_needed);
  if (options.clear_search_paths) {
    exe.dyn.rpath.clear();
    exe.dyn.runpath.clear();
  }
  patcher.write(exe_path, exe);
  loader.invalidate();
  return report;
}

VerifyReport verify(vfs::FileSystem& fs, loader::Loader& loader,
                    const std::string& exe_path,
                    const loader::Environment& env) {
  VerifyReport out;
  const elf::Object exe = elf::read_object(fs, exe_path);
  for (const auto& entry : exe.dyn.needed) {
    if (entry.empty() || entry.front() != '/') {
      out.non_absolute.push_back(entry);
    }
  }
  const loader::LoadReport report = loader.load(exe_path, env);
  for (const auto& request : report.requests) {
    switch (request.how) {
      case loader::HowFound::AbsolutePath:
      case loader::HowFound::Cache:
      case loader::HowFound::Preload:
        break;
      case loader::HowFound::NotFound:
        out.missing.push_back(request.name);
        break;
      default:
        out.searched.push_back(request.name);
        break;
    }
  }
  out.ok = report.success && out.non_absolute.empty() && out.missing.empty();
  return out;
}

}  // namespace depchaos::shrinkwrap
