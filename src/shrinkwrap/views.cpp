#include "depchaos/shrinkwrap/views.hpp"

#include "depchaos/elf/patcher.hpp"

namespace depchaos::shrinkwrap {

ViewReport make_dependency_view(vfs::FileSystem& fs, loader::Loader& loader,
                                const std::string& exe_path,
                                const std::string& view_root,
                                const loader::Environment& env) {
  ViewReport report;
  report.view_dir = vfs::normalize_path(view_root + "/lib");
  const std::size_t inodes_before = fs.inode_count();

  const loader::LoadReport load = loader.load(exe_path, env);
  if (!load.success) return report;

  fs.mkdir_p(report.view_dir);
  elf::Patcher patcher(fs);

  for (std::size_t i = 1; i < load.load_order.size(); ++i) {
    const auto& obj = load.load_order[i];
    if (obj.how == loader::HowFound::Preload) continue;
    // View entry name: the soname (what lookups will ask for).
    const std::string entry_name =
        obj.object && !obj.object->dyn.soname.empty()
            ? obj.object->dyn.soname
            : vfs::basename(obj.path);
    const std::string link = report.view_dir + "/" + entry_name;
    if (fs.exists(link)) {
      const auto existing = fs.realpath(link);
      if (existing && *existing != obj.real_path) {
        // Two different files want the same name: the single-version
        // restriction of views (§III-D1).
        report.conflicts.push_back(entry_name);
      }
      continue;
    }
    fs.symlink(obj.real_path, link);
    ++report.symlink_count;
    // The library resolves through the view from now on.
    patcher.clear_search_paths(obj.path);
  }

  patcher.set_rpath(exe_path, {report.view_dir});
  patcher.set_runpath(exe_path, {});
  loader.invalidate();

  report.inode_cost = fs.inode_count() - inodes_before;
  report.ok = report.conflicts.empty();
  return report;
}

}  // namespace depchaos::shrinkwrap
