// Discrete-event metadata-server contention simulator (§V-A, Fig 6).
//
// The analytic model in depchaos::launch converts a measured op count into
// seconds with a power law: contention is an *exponent*. This subsystem
// makes it a *mechanism*: N client ranks replay their measured op streams
// (vfs::OpTrace) against a simulated shared metadata service — a request
// queue with a configurable service-time distribution, client-side
// metadata caches with hit/miss accounting, and pluggable serving
// topologies. Spindle broadcast and image pre-staging stop being
// special-cased formulas and become topologies the same event loop routes
// through.
//
// The server mechanism that reproduces the paper's sublinear storm: an
// idle server drains every queued request whose arrival time has passed as
// ONE batch of size b, and the batch takes (Σ sampled service times) ×
// b^(γ−1) — per-op amortization from request coalescing, γ the calibrated
// contention exponent. With homogeneous lockstep clients (no cache, fixed
// service, DirectMds) every wave is a batch of P costing mean·P^γ, so the
// makespan is EXACTLY ops · mean · P^γ — the analytic storm_meta_seconds.
// The two engines agree by construction on what the formula can express;
// the simulator additionally expresses what it cannot (cache-warm second
// waves, straggler ranks, queue-depth and latency percentiles).
//
// Determinism: a seeded PRNG (support::Rng) and a (time, sequence) event
// heap — same config + same streams ⇒ bit-identical SimResult.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "depchaos/vfs/latency.hpp"

namespace depchaos::mds {

/// Service-time distribution for one metadata request at the server.
enum class Dist : std::uint8_t {
  Fixed,    // exactly mean_s
  Uniform,  // mean_s * [1-spread, 1+spread]
  Pareto,   // heavy tail, shape pareto_alpha, scaled to mean mean_s
};

struct ServiceModel {
  Dist dist = Dist::Fixed;
  /// Mean per-request service time, seconds (the engine glue overrides
  /// this with ClusterConfig::meta_op_cost_s so the engines cannot drift).
  double mean_s = 11.0e-6;
  /// Uniform half-width as a fraction of the mean, in [0, 1].
  double uniform_spread = 0.5;
  /// Pareto shape; must be > 1 for a finite mean.
  double pareto_alpha = 2.5;
  std::uint64_t seed = 42;
};

/// Client-side metadata cache (attribute cache). Off by default so the
/// cold first wave matches the analytic model; enable it for warm
/// second-wave scenarios. Caches persist across MdsSimulator::run calls
/// until reset_caches().
struct CachePolicy {
  bool enabled = false;
  /// Cache the *absence* of a path (negative dentry). Off matches the NFS
  /// configuration of §V-A, where every failed probe pays the round trip.
  bool negative_caching = false;
  double hit_cost_s = 0.5e-6;
};

/// How shared-substrate ops reach an answer. Per-rank (overlay) ops always
/// go direct to the MDS — rank-private state has no shortcut.
struct Topology {
  enum class Kind : std::uint8_t {
    DirectMds,           // every op is a server request
    SpindleTree,         // rank 0 resolves shared ops, relays down a tree
    PrestagedNodeLocal,  // shared ops served from node-local storage
  };
  Kind kind = Kind::DirectMds;
  /// Broadcast-tree fanout (SpindleTree); must be >= 2.
  int fanout = 2;
  /// Per-hop relay delay down the tree, as a fraction of the service mean.
  double relay_hop_factor = 0.1;
  /// Node-local serve cost (PrestagedNodeLocal), seconds.
  double local_op_cost_s = 0.2e-6;

  static Topology direct() { return {}; }
  static Topology spindle(int fanout = 2) {
    Topology t;
    t.kind = Kind::SpindleTree;
    t.fanout = fanout;
    return t;
  }
  static Topology prestaged() {
    Topology t;
    t.kind = Kind::PrestagedNodeLocal;
    return t;
  }
};

struct MdsConfig {
  ServiceModel service;
  CachePolicy cache;
  Topology topology;
  /// Batch-coalescing exponent γ: a batch of b requests costs
  /// (Σ service) · b^(γ−1). Matches ClusterConfig::meta_exponent.
  double contention_exponent = 0.55;
  /// Optional per-rank start offsets, seconds (straggler injection).
  /// Shorter than the fleet ⇒ remaining ranks start at 0.
  std::vector<double> start_delays;
};

/// Throws std::invalid_argument on non-physical parameters (non-positive
/// mean, spread outside [0,1], Pareto shape <= 1, fanout < 2, negative
/// costs/factors/delays, exponent outside [0, 2] or non-finite).
void validate(const MdsConfig& config);

struct RankOutcome {
  double finish_s = 0;          // includes the rank's start delay
  std::uint64_t server_ops = 0; // requests this rank sent to the MDS
  std::uint64_t cache_hits = 0;
  std::uint64_t local_ops = 0;  // served node-locally (pre-staged image)
  std::uint64_t relayed_ops = 0;  // answered via the Spindle tree
};

struct SimResult {
  double makespan_s = 0;  // last rank finish — the fleet metadata time
  std::uint64_t server_requests = 0;
  std::uint64_t batches = 0;
  std::uint64_t max_queue_depth = 0;  // deepest pending queue observed
  double mean_batch = 0;
  /// Per-request server latency (arrival -> completion): exact mean/max,
  /// p50/p99 from a 1/8-decade log-scale histogram.
  double latency_mean_s = 0;
  double latency_p50_s = 0;
  double latency_p99_s = 0;
  double latency_max_s = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;  // cache consulted and empty (0 if off)
  std::uint64_t local_ops = 0;
  std::uint64_t relayed_ops = 0;
  std::vector<RankOutcome> ranks;
};

class MdsSimulator {
 public:
  explicit MdsSimulator(MdsConfig config);

  /// Replay per-rank op streams (streams.size() ranks). Deterministic for
  /// a fixed config + streams. Client caches warm across calls.
  SimResult run(const std::vector<const std::vector<vfs::OpRecord>*>& streams);
  SimResult run(const std::vector<std::vector<vfs::OpRecord>>& streams);

  /// Homogeneous fleet: every rank replays the same measured stream
  /// (no per-rank copies).
  SimResult run_homogeneous(const std::vector<vfs::OpRecord>& stream,
                            int nprocs);

  /// Drop all client caches (cold fleet again).
  void reset_caches() { warm_.clear(); }

  const MdsConfig& config() const { return config_; }

 private:
  MdsConfig config_;
  /// Per-rank warm cache contents, persisted across run() calls so a
  /// second wave can model a repeat launch on warm nodes.
  std::vector<std::unordered_set<std::uint32_t>> warm_;
};

}  // namespace depchaos::mds
