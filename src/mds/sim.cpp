// Event loop for the metadata-server contention simulator.
//
// Three event kinds on a (time, sequence) min-heap:
//
//   ClientResume — a rank continues replaying its op stream. Cache hits
//                  and node-local ops advance only its local clock; the
//                  first op needing the server issues ONE request (closed
//                  loop: each rank has at most one outstanding request).
//   ServerKick   — an idle server drains every pending request whose
//                  arrival has passed as one batch of size b; the batch
//                  takes (Σ sampled service times) · b^(γ−1).
//   ServerDone   — the batch completes: per-request latency accounting,
//                  cache fills, Spindle resolutions, and the batch's
//                  clients resume.
//
// The global sequence counter breaks time ties in schedule order, which is
// what makes simultaneous arrivals deterministic AND correct: the kick
// scheduled while rank 0 issues its t=0 request carries a higher sequence
// number than the other ranks' t=0 resume events, so all P requests are
// queued before the batch is taken.
//
// Spindle: rank 0 is the resolver. Whenever the resolver completes a
// shared op — via server, cache, or node-local storage — the answer for
// that path key becomes relayable; parked waiters wake at
// resolved_time + tree_depth(rank) · relay_hop_factor · mean. Ranks that
// park on a key the resolver will never resolve (heterogeneous streams)
// fall back to a direct MDS request when the resolver finishes.

#include "depchaos/mds/sim.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <queue>
#include <stdexcept>
#include <unordered_map>

#include "depchaos/support/rng.hpp"

namespace depchaos::mds {

namespace {

void reject(const char* what) { throw std::invalid_argument(what); }

/// 1/8-decade log-scale latency histogram: memory-bounded, deterministic,
/// good to ~15% relative error on quantiles — plenty for percentile rows.
class LatencyHistogram {
 public:
  static constexpr int kDecadeLo = -8;  // 10 ns
  static constexpr int kDecadeHi = 4;   // 10 ks
  static constexpr int kPerDecade = 8;
  static constexpr int kBuckets = (kDecadeHi - kDecadeLo) * kPerDecade;

  void add(double seconds) {
    ++count_;
    sum_ += seconds;
    max_ = std::max(max_, seconds);
    int idx = 0;
    if (seconds > 0) {
      const double pos = (std::log10(seconds) - kDecadeLo) * kPerDecade;
      idx = std::clamp(static_cast<int>(std::floor(pos)), 0, kBuckets - 1);
    }
    ++buckets_[idx];
  }

  double quantile(double q) const {
    if (count_ == 0) return 0;
    const std::uint64_t target = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(count_)));
    std::uint64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
      seen += buckets_[i];
      if (seen >= std::max<std::uint64_t>(target, 1)) {
        // Geometric bucket midpoint.
        return std::pow(10.0, kDecadeLo +
                                  (i + 0.5) / static_cast<double>(kPerDecade));
      }
    }
    return max_;
  }

  std::uint64_t count() const { return count_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0; }
  double max() const { return max_; }

 private:
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double max_ = 0;
};

double sample_service(const ServiceModel& service, support::Rng& rng) {
  switch (service.dist) {
    case Dist::Fixed:
      return service.mean_s;
    case Dist::Uniform:
      // mean * [1-spread, 1+spread]; mean-preserving.
      return service.mean_s *
             (1.0 - service.uniform_spread +
              rng.uniform() * 2.0 * service.uniform_spread);
    case Dist::Pareto: {
      // Scale xm so E[X] = xm * a/(a-1) equals the configured mean.
      const double a = service.pareto_alpha;
      const double xm = service.mean_s * (a - 1.0) / a;
      return xm * std::pow(1.0 - rng.uniform(), -1.0 / a);
    }
  }
  return service.mean_s;
}

/// Level of `rank` in the complete fanout-ary broadcast tree rooted at the
/// resolver (rank 0 = level 0).
int tree_depth(int rank, int fanout) {
  int level = 0;
  std::int64_t start = 0, width = 1;
  while (rank >= start + width) {
    start += width;
    width *= fanout;
    ++level;
  }
  return level;
}

struct Request {
  double arrival = 0;
  std::uint64_t seq = 0;
  int rank = 0;
  std::uint32_t key = 0;
  bool shared = false;
  bool hit = false;
};

struct RequestLater {
  bool operator()(const Request& a, const Request& b) const {
    if (a.arrival != b.arrival) return a.arrival > b.arrival;
    return a.seq > b.seq;
  }
};

enum class EventKind : std::uint8_t { ClientResume, ServerKick, ServerDone };

struct Event {
  double time = 0;
  std::uint64_t seq = 0;
  EventKind kind = EventKind::ClientResume;
  int rank = 0;
};

struct EventLater {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

/// One run's mutable state (the simulator object itself only carries the
/// config and the warm caches that persist across runs).
class Run {
 public:
  Run(const MdsConfig& config,
      const std::vector<const std::vector<vfs::OpRecord>*>& streams,
      std::vector<std::unordered_set<std::uint32_t>>& warm)
      : config_(config),
        streams_(streams),
        warm_(warm),
        rng_(config.service.seed),
        nranks_(static_cast<int>(streams.size())) {
    if (warm_.size() < streams_.size()) warm_.resize(streams_.size());
    clock_.resize(streams_.size());
    next_op_.assign(streams_.size(), 0);
    finished_.assign(streams_.size(), false);
    result_.ranks.resize(streams_.size());
    spindle_ = config_.topology.kind == Topology::Kind::SpindleTree;
    prestaged_ = config_.topology.kind == Topology::Kind::PrestagedNodeLocal;
  }

  SimResult go() {
    for (int r = 0; r < nranks_; ++r) {
      clock_[r] = r < static_cast<int>(config_.start_delays.size())
                      ? config_.start_delays[r]
                      : 0.0;
      push_event(clock_[r], EventKind::ClientResume, r);
    }
    while (!events_.empty()) {
      const Event ev = events_.top();
      events_.pop();
      switch (ev.kind) {
        case EventKind::ClientResume:
          clock_[ev.rank] = std::max(clock_[ev.rank], ev.time);
          advance(ev.rank);
          break;
        case EventKind::ServerKick:
          if (kick_at_ == ev.time) kick_at_ = kNoKick;
          serve(ev.time);
          break;
        case EventKind::ServerDone:
          complete(ev.time);
          break;
      }
    }
    finish();
    return std::move(result_);
  }

 private:
  static constexpr double kNoKick = std::numeric_limits<double>::infinity();

  void push_event(double time, EventKind kind, int rank = 0) {
    events_.push({time, event_seq_++, kind, rank});
  }

  /// Schedule a server kick at `at` unless the server is busy or an
  /// earlier-or-equal kick is already pending. Stale kicks are harmless:
  /// serve() re-checks the queue.
  void request_kick(double at) {
    if (busy_ || at >= kick_at_) return;
    kick_at_ = at;
    push_event(at, EventKind::ServerKick);
  }

  void fill_cache(int rank, const vfs::OpRecord& op) {
    if (!config_.cache.enabled) return;
    if (op.hit || config_.cache.negative_caching) {
      warm_[rank].insert(op.path);
    }
  }

  double relay_delay(int rank) const {
    return tree_depth(rank, config_.topology.fanout) *
           config_.topology.relay_hop_factor * config_.service.mean_s;
  }

  /// The resolver's answer for `key` is available as of `when`: wake every
  /// rank parked on it, one relay-tree descent later.
  void resolve_key(std::uint32_t key, double when) {
    resolved_at_[key] = when;
    const auto it = waiters_.find(key);
    if (it == waiters_.end()) return;
    for (const int w : it->second) {
      const vfs::OpRecord& op = (*streams_[w])[next_op_[w]];
      ++next_op_[w];
      ++result_.relayed_ops;
      ++result_.ranks[w].relayed_ops;
      fill_cache(w, op);
      push_event(when + relay_delay(w), EventKind::ClientResume, w);
    }
    waiters_.erase(it);
  }

  void issue(int rank, const vfs::OpRecord& op) {
    if (spindle_ && rank == 0 && op.shared) resolver_inflight_.insert(op.path);
    pending_.push({clock_[rank], request_seq_++, rank, op.path, op.shared,
                   op.hit});
    result_.max_queue_depth =
        std::max<std::uint64_t>(result_.max_queue_depth, pending_.size());
    ++next_op_[rank];
    request_kick(clock_[rank]);
  }

  /// Replay ops for `rank` until it blocks on the server (one outstanding
  /// request), parks on the Spindle tree, or finishes its stream.
  void advance(int rank) {
    const std::vector<vfs::OpRecord>& stream = *streams_[rank];
    while (next_op_[rank] < stream.size()) {
      const vfs::OpRecord& op = stream[next_op_[rank]];
      if (config_.cache.enabled) {
        if (warm_[rank].count(op.path)) {
          clock_[rank] += config_.cache.hit_cost_s;
          ++result_.cache_hits;
          ++result_.ranks[rank].cache_hits;
          ++next_op_[rank];
          if (spindle_ && rank == 0 && op.shared) {
            resolve_key(op.path, clock_[rank]);
          }
          continue;
        }
        ++result_.cache_misses;
      }
      if (op.node_local || (prestaged_ && op.shared)) {
        clock_[rank] += config_.topology.local_op_cost_s;
        ++result_.local_ops;
        ++result_.ranks[rank].local_ops;
        fill_cache(rank, op);
        ++next_op_[rank];
        if (spindle_ && rank == 0 && op.shared) {
          resolve_key(op.path, clock_[rank]);
        }
        continue;
      }
      if (spindle_ && op.shared && rank != 0) {
        const auto it = resolved_at_.find(op.path);
        if (it != resolved_at_.end()) {
          clock_[rank] =
              std::max(clock_[rank], it->second + relay_delay(rank));
          ++result_.relayed_ops;
          ++result_.ranks[rank].relayed_ops;
          fill_cache(rank, op);
          ++next_op_[rank];
          continue;
        }
        if (!resolver_stream_done_ || resolver_inflight_.count(op.path)) {
          waiters_[op.path].push_back(rank);  // woken by resolve_key
          return;
        }
        // The resolver will never resolve this key — go direct.
      }
      issue(rank, op);
      return;
    }
    finished_[rank] = true;
    result_.ranks[rank].finish_s = clock_[rank];
    if (spindle_ && rank == 0) on_resolver_done();
  }

  /// The resolver's stream ended: any key it will never answer (not
  /// resolved, not in flight) must stop blocking its waiters — they fall
  /// back to direct MDS requests from their park time.
  void on_resolver_done() {
    resolver_stream_done_ = true;
    std::vector<std::uint32_t> orphaned;
    for (const auto& [key, ranks] : waiters_) {  // std::map: key order
      if (!resolved_at_.count(key) && !resolver_inflight_.count(key)) {
        orphaned.push_back(key);
      }
    }
    for (const std::uint32_t key : orphaned) {
      std::vector<int> parked = std::move(waiters_[key]);
      waiters_.erase(key);
      for (const int w : parked) {
        issue(w, (*streams_[w])[next_op_[w]]);
      }
    }
  }

  /// Idle server takes every request whose arrival has passed as a batch.
  void serve(double now) {
    if (busy_ || pending_.empty()) return;
    batch_.clear();
    while (!pending_.empty() && pending_.top().arrival <= now) {
      batch_.push_back(pending_.top());
      pending_.pop();
    }
    if (batch_.empty()) {
      request_kick(pending_.top().arrival);
      return;
    }
    double service_sum = 0;
    for (std::size_t i = 0; i < batch_.size(); ++i) {
      service_sum += sample_service(config_.service, rng_);
    }
    const double b = static_cast<double>(batch_.size());
    const double duration =
        service_sum * std::pow(b, config_.contention_exponent - 1.0);
    busy_ = true;
    ++result_.batches;
    batch_size_sum_ += batch_.size();
    push_event(now + duration, EventKind::ServerDone);
  }

  void complete(double done) {
    busy_ = false;
    for (const Request& req : batch_) {
      latency_.add(done - req.arrival);
      ++result_.server_requests;
      ++result_.ranks[req.rank].server_ops;
      const vfs::OpRecord served{vfs::OpKind::Stat, req.hit, req.shared,
                                 false, req.key};
      fill_cache(req.rank, served);
      if (spindle_ && req.rank == 0 && req.shared) {
        resolver_inflight_.erase(req.key);
        resolve_key(req.key, done);
      }
      clock_[req.rank] = std::max(clock_[req.rank], done);
      push_event(done, EventKind::ClientResume, req.rank);
    }
    batch_.clear();
    if (!pending_.empty()) {
      request_kick(std::max(done, pending_.top().arrival));
    }
  }

  void finish() {
    for (int r = 0; r < nranks_; ++r) {
      if (!finished_[r]) result_.ranks[r].finish_s = clock_[r];
      result_.makespan_s = std::max(result_.makespan_s,
                                    result_.ranks[r].finish_s);
    }
    result_.mean_batch =
        result_.batches
            ? static_cast<double>(batch_size_sum_) /
                  static_cast<double>(result_.batches)
            : 0.0;
    result_.latency_mean_s = latency_.mean();
    result_.latency_p50_s = latency_.quantile(0.50);
    result_.latency_p99_s = latency_.quantile(0.99);
    result_.latency_max_s = latency_.max();
  }

  const MdsConfig& config_;
  const std::vector<const std::vector<vfs::OpRecord>*>& streams_;
  std::vector<std::unordered_set<std::uint32_t>>& warm_;
  support::Rng rng_;
  int nranks_;
  bool spindle_ = false;
  bool prestaged_ = false;

  std::priority_queue<Event, std::vector<Event>, EventLater> events_;
  std::uint64_t event_seq_ = 0;
  std::priority_queue<Request, std::vector<Request>, RequestLater> pending_;
  std::uint64_t request_seq_ = 0;
  std::vector<Request> batch_;
  bool busy_ = false;
  double kick_at_ = kNoKick;

  std::vector<double> clock_;
  std::vector<std::size_t> next_op_;
  std::vector<bool> finished_;

  // Spindle state. waiters_ is an ordered map so the resolver-done
  // fallback flushes parked ranks in a deterministic order.
  std::map<std::uint32_t, std::vector<int>> waiters_;
  std::unordered_map<std::uint32_t, double> resolved_at_;
  std::unordered_set<std::uint32_t> resolver_inflight_;
  bool resolver_stream_done_ = false;

  LatencyHistogram latency_;
  std::uint64_t batch_size_sum_ = 0;
  SimResult result_;
};

}  // namespace

void validate(const MdsConfig& config) {
  const ServiceModel& s = config.service;
  if (!(s.mean_s > 0)) reject("mds: service mean_s must be > 0");
  if (!(s.uniform_spread >= 0 && s.uniform_spread <= 1)) {
    reject("mds: uniform_spread must be in [0, 1]");
  }
  if (!(s.pareto_alpha > 1)) {
    reject("mds: pareto_alpha must be > 1 (finite mean)");
  }
  if (!(config.cache.hit_cost_s >= 0)) {
    reject("mds: cache hit_cost_s must be >= 0");
  }
  const Topology& t = config.topology;
  if (t.fanout < 2) reject("mds: topology fanout must be >= 2");
  if (!(t.relay_hop_factor >= 0)) {
    reject("mds: relay_hop_factor must be >= 0");
  }
  if (!(t.local_op_cost_s >= 0)) reject("mds: local_op_cost_s must be >= 0");
  if (!(config.contention_exponent >= 0 && config.contention_exponent <= 2)) {
    reject("mds: contention_exponent must be finite in [0, 2]");
  }
  for (const double d : config.start_delays) {
    if (!(d >= 0)) reject("mds: start_delays must be >= 0");
  }
}

MdsSimulator::MdsSimulator(MdsConfig config) : config_(std::move(config)) {
  validate(config_);
}

SimResult MdsSimulator::run(
    const std::vector<const std::vector<vfs::OpRecord>*>& streams) {
  if (streams.empty()) return {};
  return Run(config_, streams, warm_).go();
}

SimResult MdsSimulator::run(
    const std::vector<std::vector<vfs::OpRecord>>& streams) {
  std::vector<const std::vector<vfs::OpRecord>*> ptrs;
  ptrs.reserve(streams.size());
  for (const auto& s : streams) ptrs.push_back(&s);
  return run(ptrs);
}

SimResult MdsSimulator::run_homogeneous(
    const std::vector<vfs::OpRecord>& stream, int nprocs) {
  std::vector<const std::vector<vfs::OpRecord>*> ptrs(
      static_cast<std::size_t>(std::max(0, nprocs)), &stream);
  return run(ptrs);
}

}  // namespace depchaos::mds
