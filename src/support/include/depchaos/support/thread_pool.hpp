// Fixed-size thread pool + parallel_for used by the corpus analyses (Fig 1,
// Fig 4), the multi-rank launch simulation (Fig 6), and the svc::SessionPool
// shard drains.
//
// Queueing model: one lane (mutex + deque) per worker. submit() distributes
// tasks round-robin across lanes; a worker pops from its own lane first and
// steals from siblings when empty, so a burst of submissions no longer
// serializes every push/pop on one pool-wide mutex. steal_count() exposes the
// number of cross-lane pops — a cheap load-imbalance signal surfaced by
// svc::PoolStats. A pool-wide mutex remains, but it guards only the
// condition variables (sleep/wake), never the queues.
//
// Fault model: a task that throws does NOT terminate the process. The
// exception is captured as a std::exception_ptr and retrievable via
// take_errors(), so a long-lived service (svc::SessionPool) survives a bad
// request and the owner decides whether to rethrow, log, or drop it.
// parallel_for() rethrows the first exception its own chunks captured after
// the batch joins.
//
// Observability: submit() optionally tags a task with a short label
// ("svc/shard3", "load_many"); tag_stats() reports submitted / completed /
// failed counts per tag, which is where PoolStats gets its worker-side view.
// Counts are striped across lanes (submit bills the lane it enqueued to,
// completion bills the worker's own lane) and merged on read.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace depchaos::support {

class ThreadPool {
 public:
  /// Creates `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Joins all workers; outstanding tasks are completed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. A throwing task is captured (take_errors), not fatal.
  void submit(std::function<void()> task);

  /// Enqueue a tagged task; the tag buckets it in tag_stats().
  void submit(std::string tag, std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait_idle();

  std::size_t size() const { return workers_.size(); }

  /// Exceptions captured from tasks since the last take_errors(), in
  /// completion order. Emptied by the call.
  std::vector<std::exception_ptr> take_errors();
  bool has_errors() const;

  /// Per-tag task accounting (untagged tasks bucket under "").
  struct TagCounts {
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;  // includes failed
    std::uint64_t failed = 0;     // completed by throwing
  };
  std::unordered_map<std::string, TagCounts> tag_stats() const;

  /// Cross-lane pops since construction. A high rate relative to completed
  /// tasks means submissions are landing unevenly across lanes.
  std::uint64_t steal_count() const {
    return steals_.load(std::memory_order_relaxed);
  }

 private:
  struct Task {
    std::function<void()> fn;
    std::string tag;
  };

  // One per worker. Tag counts are striped here too so the hot submit /
  // complete paths never touch a pool-wide map lock.
  struct Lane {
    mutable std::mutex mutex;
    std::deque<Task> queue;
    std::unordered_map<std::string, TagCounts> tags;
  };

  void worker_loop(std::size_t self);
  bool next_task(std::size_t self, Task& out);
  bool try_pop(std::size_t lane_index, Task& out);

  std::vector<std::unique_ptr<Lane>> lanes_;
  std::atomic<std::uint64_t> next_lane_{0};
  // queued_ counts tasks sitting in lanes (the cv_task_ predicate);
  // unfinished_ additionally counts tasks currently executing (the
  // cv_idle_ predicate). Both change outside wake_mutex_; the publishing
  // side bumps the counter first and then passes through wake_mutex_
  // before notifying, which is what makes the sleep/wake race-free.
  std::atomic<std::size_t> queued_{0};
  std::atomic<std::size_t> unfinished_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<bool> stopping_{false};

  mutable std::mutex wake_mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;

  mutable std::mutex error_mutex_;
  std::vector<std::exception_ptr> errors_;

  std::vector<std::thread> workers_;
};

/// Run fn(i) for i in [0, n) across the pool in contiguous chunks and wait.
/// fn must be safe to call concurrently for distinct indices. If any call
/// throws, the batch still runs to completion (other indices are not
/// skipped across chunks already queued) and the FIRST captured exception
/// is rethrown after the join.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t min_chunk = 256);

}  // namespace depchaos::support
