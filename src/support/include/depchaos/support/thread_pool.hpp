// Fixed-size thread pool + parallel_for used by the corpus analyses (Fig 1,
// Fig 4) and the multi-rank launch simulation (Fig 6). Deliberately simple:
// a single mutex-protected deque is more than fast enough for coarse-grained
// analysis tasks, and simplicity keeps the shutdown path obviously correct
// (CppCoreGuidelines CP.*: RAII-owned threads, no detached threads).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace depchaos::support {

class ThreadPool {
 public:
  /// Creates `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Joins all workers; outstanding tasks are completed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Tasks must not throw (std::terminate otherwise).
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait_idle();

  std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// Run fn(i) for i in [0, n) across the pool in contiguous chunks and wait.
/// fn must be safe to call concurrently for distinct indices.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t min_chunk = 256);

}  // namespace depchaos::support
