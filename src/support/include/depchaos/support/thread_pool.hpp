// Fixed-size thread pool + parallel_for used by the corpus analyses (Fig 1,
// Fig 4), the multi-rank launch simulation (Fig 6), and the svc::SessionPool
// shard drains. Deliberately simple: a single mutex-protected deque is more
// than fast enough for coarse-grained analysis tasks, and simplicity keeps
// the shutdown path obviously correct (CppCoreGuidelines CP.*: RAII-owned
// threads, no detached threads).
//
// Fault model: a task that throws does NOT terminate the process. The
// exception is captured as a std::exception_ptr and retrievable via
// take_errors(), so a long-lived service (svc::SessionPool) survives a bad
// request and the owner decides whether to rethrow, log, or drop it.
// parallel_for() rethrows the first exception its own chunks captured after
// the batch joins.
//
// Observability: submit() optionally tags a task with a short label
// ("svc/shard3", "load_many"); tag_stats() reports submitted / completed /
// failed counts per tag, which is where PoolStats gets its worker-side view.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace depchaos::support {

class ThreadPool {
 public:
  /// Creates `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Joins all workers; outstanding tasks are completed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. A throwing task is captured (take_errors), not fatal.
  void submit(std::function<void()> task);

  /// Enqueue a tagged task; the tag buckets it in tag_stats().
  void submit(std::string tag, std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait_idle();

  std::size_t size() const { return workers_.size(); }

  /// Exceptions captured from tasks since the last take_errors(), in
  /// completion order. Emptied by the call.
  std::vector<std::exception_ptr> take_errors();
  bool has_errors() const;

  /// Per-tag task accounting (untagged tasks bucket under "").
  struct TagCounts {
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;  // includes failed
    std::uint64_t failed = 0;     // completed by throwing
  };
  std::unordered_map<std::string, TagCounts> tag_stats() const;

 private:
  struct Task {
    std::function<void()> fn;
    std::string tag;
  };

  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::deque<Task> queue_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::vector<std::exception_ptr> errors_;
  std::unordered_map<std::string, TagCounts> tags_;
  std::vector<std::thread> workers_;
};

/// Run fn(i) for i in [0, n) across the pool in contiguous chunks and wait.
/// fn must be safe to call concurrently for distinct indices. If any call
/// throws, the batch still runs to completion (other indices are not
/// skipped across chunks already queued) and the FIRST captured exception
/// is rethrown after the join.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t min_chunk = 256);

}  // namespace depchaos::support
