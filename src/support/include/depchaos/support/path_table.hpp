// support::PathTable — an append-only interner for absolute, normalized
// filesystem paths.
//
// Every path the simulator touches is reduced to a stable 32-bit PathId
// whose entry records the parent directory's PathId, the component depth,
// and the full normalized string (the final component is a span of that
// string, so name() costs nothing). Interning normalizes lexically the way
// vfs::normalize_path does — "//" collapse, "." dropped, ".." clamped at
// the root — so two spellings of one path always map to one id, and the
// resolution pipeline (vfs walk, loader candidate probing, shrinkwrap
// closure keys) can compare, hash, and traverse paths without re-splitting
// or re-normalizing strings on every probe.
//
// Sharing model: one table is created per root vfs::FileSystem and
// inherited by every fork of that world (and by deep copies), so a forked
// fleet interns each path once, fleet-wide. The table only ever grows:
// ids are never invalidated, entry storage is chunked so append never
// moves published entries, and id-indexed reads (str/name/parent/depth)
// are lock-free. The child index is sharded by (parent, name) hash:
// string-keyed lookups take that shard's shared lock, a first-ever
// interning takes the shard's exclusive lock, and only id allocation +
// entry publication serialize on a separate (short) allocation mutex —
// so concurrent cold-path interns of unrelated paths no longer queue on
// one table-wide write lock.
//
// Growth bound: adversarial workloads (randomized probe storms) intern
// every miss, so the table supports an optional byte budget
// (set_byte_budget). Past the cap, interning a NEW path returns kNone
// instead of allocating — already-interned paths keep resolving — and the
// resolution layers (vfs::FileSystem, loader candidate probes) fall back
// to uncached string walks, trading speed for bounded memory.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace depchaos::support {

/// Stable identifier of an interned absolute path. 0 is "no path";
/// PathTable::kRoot names "/".
using PathId = std::uint32_t;

class PathTable {
 public:
  static constexpr PathId kNone = 0;
  static constexpr PathId kRoot = 1;

  PathTable();
  ~PathTable();
  PathTable(const PathTable&) = delete;
  PathTable& operator=(const PathTable&) = delete;

  /// Intern an absolute path, normalizing lexically ('.'/'..'/'//', with
  /// '..' clamped at the root like vfs::normalize_path). Throws
  /// std::invalid_argument when `path` is empty or not absolute. Returns
  /// kNone when the path is new and the byte budget is exhausted.
  PathId intern(std::string_view path);

  /// Intern `relative` resolved lexically against the interned directory
  /// `base` — the allocation-free equivalent of
  /// intern(str(base) + "/" + relative). `relative` may contain '/', '.'
  /// and '..' components (".." climbs parent links, clamped at the root)
  /// and may also be absolute, in which case `base` is ignored. An empty
  /// `relative` returns `base`. Returns kNone past the byte budget.
  PathId intern_under(PathId base, std::string_view relative);

  /// Single-component step: the id of `name` inside directory `dir`.
  /// "." returns `dir`, ".." its parent (root clamps to root), "" returns
  /// `dir`. `name` must not contain '/'. Returns kNone when `name` is new
  /// under `dir` and the byte budget is exhausted.
  PathId child(PathId dir, std::string_view name);

  /// Optional growth cap: once bytes_used() would exceed the budget,
  /// intern/intern_under/child return kNone for paths not already in the
  /// table (existing ids keep resolving). 0 = unlimited (the default).
  void set_byte_budget(std::size_t bytes) {
    budget_.store(bytes, std::memory_order_relaxed);
  }
  std::size_t byte_budget() const {
    return budget_.load(std::memory_order_relaxed);
  }

  /// Approximate heap bytes held by entries and the child index.
  std::size_t bytes_used() const {
    return bytes_.load(std::memory_order_relaxed);
  }

  /// The id a path is already interned under, or kNone. Never allocates.
  PathId lookup(std::string_view path) const;

  /// Full normalized path. Reference stays valid forever (append-only).
  const std::string& str(PathId id) const { return entry(id).full; }

  /// Final component, a span of str(id). name(kRoot) is "/".
  std::string_view name(PathId id) const {
    const Entry& e = entry(id);
    return std::string_view(e.full).substr(e.full.size() - e.name_len);
  }

  /// Parent directory id; parent(kRoot) == kRoot.
  PathId parent(PathId id) const { return entry(id).parent; }

  /// Component count: 0 for "/", 1 for "/usr", 2 for "/usr/lib", ...
  std::uint32_t depth(PathId id) const { return entry(id).depth; }

  /// Number of interned paths (including the root).
  std::size_t size() const { return count_.load(std::memory_order_acquire); }

 private:
  struct Entry {
    PathId parent = kNone;
    std::uint32_t depth = 0;
    std::uint32_t name_len = 0;  // final-component span at the tail of full
    std::string full;
  };

  // Chunked entry storage: published entries never move, so id-indexed
  // reads need no lock. 2^kChunkBits entries per chunk; the chunk
  // directory is fixed (a growable one would race lock-free readers), so
  // its size bounds the table at kMaxChunks * kChunkSize = 4M paths —
  // an order of magnitude above the largest simulated world's probe
  // universe — while keeping the per-table directory at 32 KiB.
  static constexpr std::size_t kChunkBits = 10;
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkBits;
  static constexpr std::size_t kMaxChunks = std::size_t{1} << 12;

  struct ChildKey {
    PathId parent;
    std::string name;
    bool operator==(const ChildKey&) const = default;
  };
  struct ChildKeyView {
    PathId parent;
    std::string_view name;
  };
  struct ChildHash {
    using is_transparent = void;
    static std::size_t mix(PathId parent, std::string_view name) {
      return std::hash<std::string_view>{}(name) ^
             (std::size_t{parent} * 0x9e3779b97f4a7c15ull);
    }
    std::size_t operator()(const ChildKey& k) const {
      return mix(k.parent, k.name);
    }
    std::size_t operator()(const ChildKeyView& k) const {
      return mix(k.parent, k.name);
    }
  };
  struct ChildEq {
    using is_transparent = void;
    static bool eq(PathId pa, std::string_view na, PathId pb,
                   std::string_view nb) {
      return pa == pb && na == nb;
    }
    bool operator()(const ChildKey& a, const ChildKey& b) const {
      return eq(a.parent, a.name, b.parent, b.name);
    }
    bool operator()(const ChildKeyView& a, const ChildKey& b) const {
      return eq(a.parent, a.name, b.parent, b.name);
    }
    bool operator()(const ChildKey& a, const ChildKeyView& b) const {
      return eq(a.parent, a.name, b.parent, b.name);
    }
  };

  const Entry& entry(PathId id) const {
    return chunks_[id >> kChunkBits].load(
        std::memory_order_acquire)[id & (kChunkSize - 1)];
  }

  // Find (dir, name) in its index shard, or kNone. Shared lock only.
  PathId find_child(PathId dir, std::string_view name) const;
  // Find-or-append: shard exclusive lock, then alloc_mutex_ for the id.
  PathId intern_child(PathId dir, std::string_view name);

  std::unique_ptr<std::atomic<Entry*>[]> chunks_;
  std::atomic<std::uint32_t> count_{0};
  std::atomic<std::size_t> bytes_{0};
  std::atomic<std::size_t> budget_{0};

  // Child index, sharded by ChildHash::mix(parent, name). Lock order is
  // always shard -> alloc_mutex_; no path holds two shard locks at once,
  // so the sharding cannot deadlock.
  static constexpr std::size_t kIndexShards = 16;
  struct IndexShard {
    mutable std::shared_mutex mutex;
    std::unordered_map<ChildKey, PathId, ChildHash, ChildEq> index;
  };
  static std::size_t shard_index(PathId dir, std::string_view name) {
    // Use the upper bits: the map consumes the lower bits of the same
    // hash for its buckets, so this keeps shard choice decorrelated.
    return (ChildHash::mix(dir, name) >> 24) % kIndexShards;
  }
  mutable std::array<IndexShard, kIndexShards> index_shards_;

  // Guards id allocation, chunk creation, entry publication, and the
  // byte-budget accounting. Held briefly (the full-path string is built
  // before acquiring it).
  std::mutex alloc_mutex_;
};

}  // namespace depchaos::support
