// Small string utilities shared by the parsers (Debian control files, Spack
// package.py subset, spec syntax) and path handling in the VFS.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace depchaos::support {

/// Split `s` on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view s, char sep);

/// Split `s` on `sep`, dropping empty fields.
std::vector<std::string> split_nonempty(std::string_view s, char sep);

/// Strip leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Join parts with `sep`.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `s` consists only of [0-9].
bool is_all_digits(std::string_view s);

/// Replace every occurrence of `from` in `s` with `to`.
std::string replace_all(std::string_view s, std::string_view from,
                        std::string_view to);

}  // namespace depchaos::support
