// Standalone SHA-256 used for content-addressed store paths (Nix/Spack
// models) and deterministic dag hashes. Implemented from FIPS 180-4; no
// external dependencies.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace depchaos::support {

/// Incremental SHA-256. Typical use:
///   Sha256 h; h.update("a"); h.update("b"); auto hex = h.hex_digest();
class Sha256 {
 public:
  Sha256();

  /// Absorb more input. May be called repeatedly.
  void update(const void* data, std::size_t len);
  void update(std::string_view s) { update(s.data(), s.size()); }

  /// Finalize and return the 32-byte digest. The object must not be updated
  /// afterwards; construct a fresh one for a new message.
  std::array<std::uint8_t, 32> digest();

  /// Finalize and return the digest as 64 lowercase hex characters.
  std::string hex_digest();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::uint64_t bit_count_ = 0;
  std::size_t buffer_len_ = 0;
  bool finalized_ = false;
};

/// One-shot convenience: hex SHA-256 of a string.
std::string sha256_hex(std::string_view s);

/// Store-style truncated hash: first `n` hex chars (Spack uses 32 for
/// directory names, Nix uses a 32-char base-32; hex is close enough for the
/// purposes of a store path).
std::string sha256_prefix(std::string_view s, std::size_t n = 32);

}  // namespace depchaos::support
