// Error taxonomy for the depchaos library.
//
// All recoverable "the simulated world disagrees with you" conditions are
// reported via exceptions derived from depchaos::Error so callers can catch
// one base type. Lookup-style APIs that can legitimately miss return
// std::optional instead of throwing.
#pragma once

#include <stdexcept>
#include <string>

namespace depchaos {

/// Base class for all depchaos errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Filesystem-level failure (missing path, not-a-directory, symlink loop...).
class FsError : public Error {
 public:
  explicit FsError(const std::string& what) : Error("vfs: " + what) {}
};

/// Malformed SELF image, bad patch request, truncated serialization.
class ElfError : public Error {
 public:
  explicit ElfError(const std::string& what) : Error("elf: " + what) {}
};

/// Parse failure in one of the package metadata formats (Debian control,
/// Spack package.py subset, spec syntax).
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error("parse: " + what) {}
};

/// Dependency resolution failure (concretizer conflict, unknown package).
class ResolveError : public Error {
 public:
  explicit ResolveError(const std::string& what) : Error("resolve: " + what) {}
};

/// Link-time failure (duplicate strong symbols in the Needy Executables
/// workaround, unresolved strong references).
class LinkError : public Error {
 public:
  explicit LinkError(const std::string& what) : Error("link: " + what) {}
};

}  // namespace depchaos
