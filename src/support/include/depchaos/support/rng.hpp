// Deterministic, seedable random number generation for workload synthesis.
//
// All generators in depchaos::workload derive their streams from these so
// every figure/table reproduction is bit-identical run to run. SplitMix64 is
// used for seeding; xoshiro256** is the workhorse generator (Blackman &
// Vigna). Distribution helpers (uniform, Zipf) avoid libstdc++'s unspecified
// distribution algorithms so sequences are stable across standard libraries.
#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace depchaos::support {

/// SplitMix64: tiny generator used to expand a single seed into state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9d2c5680u) {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift reduction;
  /// bias is negligible for the bounds used here (< 2^32).
  std::uint64_t below(std::uint64_t bound) {
    assert(bound > 0);
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t between(std::int64_t lo, std::int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// True with probability p.
  bool chance(double p) { return uniform() < p; }

  /// Pick an index according to a weight vector (weights need not sum to 1).
  std::size_t weighted(const std::vector<double>& weights) {
    double total = 0;
    for (const double w : weights) total += w;
    double x = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      x -= weights[i];
      if (x < 0) return i;
    }
    return weights.empty() ? 0 : weights.size() - 1;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

/// Zipf-distributed sampler over ranks 1..n with exponent s, implemented by
/// precomputing the CDF (n is at most a few hundred thousand here).
/// Used for Fig 4's shared-object reuse distribution: a handful of libraries
/// (libc-like) are needed by nearly everything, most by almost nothing.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s) : cdf_(n) {
    assert(n > 0);
    double sum = 0;
    for (std::size_t k = 1; k <= n; ++k) {
      sum += 1.0 / std::pow(static_cast<double>(k), s);
      cdf_[k - 1] = sum;
    }
    for (auto& v : cdf_) v /= sum;
  }

  /// Sample a rank in [0, n). Rank 0 is the most popular item.
  std::size_t sample(Rng& rng) const {
    const double u = rng.uniform();
    // Binary search the CDF.
    std::size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace depchaos::support
