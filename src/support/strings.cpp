#include "depchaos/support/strings.hpp"

#include <cctype>

namespace depchaos::support {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_nonempty(std::string_view s, char sep) {
  std::vector<std::string> out;
  for (auto& part : split(s, sep)) {
    if (!part.empty()) out.push_back(std::move(part));
  }
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool is_all_digits(std::string_view s) {
  if (s.empty()) return false;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
  }
  return true;
}

std::string replace_all(std::string_view s, std::string_view from,
                        std::string_view to) {
  std::string out;
  out.reserve(s.size());
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(s.substr(start));
      return out;
    }
    out.append(s.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
}

}  // namespace depchaos::support
