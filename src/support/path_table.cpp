#include "depchaos/support/path_table.hpp"

#include <mutex>
#include <stdexcept>

namespace depchaos::support {

namespace {
// Approximate per-entry heap footprint: the Entry itself, its full-path
// string, and the child-index key + hash-node overhead. Deliberately
// coarse — the budget bounds order-of-magnitude growth, not exact bytes.
std::size_t entry_cost(std::size_t full_len, std::size_t name_len) {
  return sizeof(void*) * 8 + full_len + 2 * name_len + 48;
}
}  // namespace

PathTable::PathTable()
    : chunks_(new std::atomic<Entry*>[kMaxChunks]()) {
  // Slot 0 is the kNone sentinel; slot 1 the root. Both live in chunk 0.
  auto* chunk = new Entry[kChunkSize];
  chunk[kRoot].parent = kRoot;
  chunk[kRoot].name_len = 1;
  chunk[kRoot].full = "/";
  chunks_[0].store(chunk, std::memory_order_release);
  count_.store(2, std::memory_order_release);
  bytes_.store(entry_cost(1, 1), std::memory_order_relaxed);
}

PathTable::~PathTable() {
  for (std::size_t i = 0; i < kMaxChunks; ++i) {
    delete[] chunks_[i].load(std::memory_order_relaxed);
  }
}

PathId PathTable::find_child(PathId dir, std::string_view name) const {
  const IndexShard& shard = index_shards_[shard_index(dir, name)];
  std::shared_lock lock(shard.mutex);
  const auto it = shard.index.find(ChildKeyView{dir, name});
  return it == shard.index.end() ? kNone : it->second;
}

PathId PathTable::intern_child(PathId dir, std::string_view name) {
  IndexShard& shard = index_shards_[shard_index(dir, name)];
  std::unique_lock lock(shard.mutex);
  const auto it = shard.index.find(ChildKeyView{dir, name});
  if (it != shard.index.end()) return it->second;

  // The shard's exclusive lock makes this thread the sole possible
  // inserter of (dir, name); build the full-path string before touching
  // alloc_mutex_ so the table-wide critical section stays tiny.
  const Entry& parent_entry = entry(dir);
  const std::size_t cost =
      entry_cost(parent_entry.full.size() + 1 + name.size(), name.size());
  std::string full;
  full.reserve(parent_entry.full.size() + 1 + name.size());
  if (dir != kRoot) full = parent_entry.full;
  full += '/';
  full += name;

  std::uint32_t id;
  {
    std::lock_guard alloc(alloc_mutex_);
    id = count_.load(std::memory_order_relaxed);
    if (id >= kMaxChunks * kChunkSize) {
      throw std::length_error("PathTable full");
    }
    if (const std::size_t budget = budget_.load(std::memory_order_relaxed);
        budget != 0 &&
        bytes_.load(std::memory_order_relaxed) + cost > budget) {
      return kNone;  // budget exhausted: caller falls back to string walks
    }
    const std::size_t chunk_index = id >> kChunkBits;
    Entry* chunk = chunks_[chunk_index].load(std::memory_order_relaxed);
    if (chunk == nullptr) {
      chunk = new Entry[kChunkSize];
      chunks_[chunk_index].store(chunk, std::memory_order_release);
    }
    Entry& e = chunk[id & (kChunkSize - 1)];
    e.parent = dir;
    e.depth = parent_entry.depth + 1;
    e.name_len = static_cast<std::uint32_t>(name.size());
    e.full = std::move(full);
    // Publish the entry before the id becomes reachable via size() or
    // the shard index.
    count_.store(id + 1, std::memory_order_release);
    bytes_.fetch_add(cost, std::memory_order_relaxed);
  }
  shard.index.emplace(ChildKey{dir, std::string(name)}, id);
  return id;
}

PathId PathTable::child(PathId dir, std::string_view name) {
  if (name.empty() || name == ".") return dir;
  if (name == "..") return parent(dir);
  if (const PathId hit = find_child(dir, name); hit != kNone) return hit;
  return intern_child(dir, name);
}

PathId PathTable::intern_under(PathId base, std::string_view relative) {
  PathId cur = base;
  std::size_t pos = 0;
  if (!relative.empty() && relative.front() == '/') cur = kRoot;
  while (pos < relative.size()) {
    while (pos < relative.size() && relative[pos] == '/') ++pos;
    std::size_t end = pos;
    while (end < relative.size() && relative[end] != '/') ++end;
    if (end > pos) {
      cur = child(cur, relative.substr(pos, end - pos));
      if (cur == kNone) return kNone;  // byte budget exhausted
    }
    pos = end;
  }
  return cur;
}

PathId PathTable::intern(std::string_view path) {
  if (path.empty() || path.front() != '/') {
    throw std::invalid_argument("PathTable::intern: path must be absolute: '" +
                                std::string(path) + "'");
  }
  return intern_under(kRoot, path);
}

PathId PathTable::lookup(std::string_view path) const {
  if (path.empty() || path.front() != '/') return kNone;
  PathId cur = kRoot;
  std::size_t pos = 0;
  while (pos < path.size()) {
    while (pos < path.size() && path[pos] == '/') ++pos;
    std::size_t end = pos;
    while (end < path.size() && path[end] != '/') ++end;
    if (end > pos) {
      const std::string_view comp = path.substr(pos, end - pos);
      if (comp == ".") {
        // keep cur
      } else if (comp == "..") {
        cur = parent(cur);
      } else {
        cur = find_child(cur, comp);
        if (cur == kNone) return kNone;
      }
    }
    pos = end;
  }
  return cur;
}

}  // namespace depchaos::support
