#include "depchaos/support/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace depchaos::support {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_task_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  submit(std::string{}, std::move(task));
}

void ThreadPool::submit(std::string tag, std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    ++tags_[tag].submitted;
    queue_.push_back(Task{std::move(task), std::move(tag)});
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

std::vector<std::exception_ptr> ThreadPool::take_errors() {
  std::lock_guard lock(mutex_);
  return std::exchange(errors_, {});
}

bool ThreadPool::has_errors() const {
  std::lock_guard lock(mutex_);
  return !errors_.empty();
}

std::unordered_map<std::string, ThreadPool::TagCounts> ThreadPool::tag_stats()
    const {
  std::lock_guard lock(mutex_);
  return tags_;
}

void ThreadPool::worker_loop() {
  while (true) {
    Task task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    std::exception_ptr error;
    try {
      task.fn();
    } catch (...) {
      // Capture instead of std::terminate: a long-lived service must
      // survive one bad request. The owner drains via take_errors().
      error = std::current_exception();
    }
    {
      std::lock_guard lock(mutex_);
      TagCounts& counts = tags_[task.tag];
      ++counts.completed;
      if (error) {
        ++counts.failed;
        errors_.push_back(std::move(error));
      }
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t min_chunk) {
  if (n == 0) return;
  const std::size_t workers = pool.size();
  const std::size_t chunk =
      std::max(min_chunk, (n + workers * 4 - 1) / (workers * 4));
  // Capture the first chunk-level exception here (not in the pool's error
  // list — the pool may be shared with unrelated tasks) and rethrow after
  // the join so callers see fn's failure instead of a silent skip.
  std::mutex error_mutex;
  std::exception_ptr first_error;
  for (std::size_t start = 0; start < n; start += chunk) {
    const std::size_t end = std::min(n, start + chunk);
    pool.submit([&fn, &error_mutex, &first_error, start, end] {
      try {
        for (std::size_t i = start; i < end; ++i) fn(i);
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  pool.wait_idle();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace depchaos::support
