#include "depchaos/support/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace depchaos::support {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  lanes_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    lanes_.push_back(std::make_unique<Lane>());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard wake(wake_mutex_);
    stopping_.store(true, std::memory_order_release);
  }
  cv_task_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  submit(std::string{}, std::move(task));
}

void ThreadPool::submit(std::string tag, std::function<void()> task) {
  const std::size_t lane_index =
      next_lane_.fetch_add(1, std::memory_order_relaxed) % lanes_.size();
  Lane& lane = *lanes_[lane_index];
  unfinished_.fetch_add(1, std::memory_order_acq_rel);
  {
    std::lock_guard lock(lane.mutex);
    ++lane.tags[tag].submitted;
    lane.queue.push_back(Task{std::move(task), std::move(tag)});
  }
  queued_.fetch_add(1, std::memory_order_release);
  // Passing through wake_mutex_ after publishing queued_ guarantees any
  // worker that observed queued_ == 0 is either fully asleep (and gets the
  // notify) or has not yet re-checked the predicate (and will see the new
  // count). Without this fence a worker could sleep through the wakeup.
  { std::lock_guard wake(wake_mutex_); }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(wake_mutex_);
  cv_idle_.wait(lock, [this] {
    return unfinished_.load(std::memory_order_acquire) == 0;
  });
}

std::vector<std::exception_ptr> ThreadPool::take_errors() {
  std::lock_guard lock(error_mutex_);
  return std::exchange(errors_, {});
}

bool ThreadPool::has_errors() const {
  std::lock_guard lock(error_mutex_);
  return !errors_.empty();
}

std::unordered_map<std::string, ThreadPool::TagCounts> ThreadPool::tag_stats()
    const {
  std::unordered_map<std::string, TagCounts> merged;
  for (const auto& lane_ptr : lanes_) {
    std::lock_guard lock(lane_ptr->mutex);
    for (const auto& [tag, counts] : lane_ptr->tags) {
      TagCounts& into = merged[tag];
      into.submitted += counts.submitted;
      into.completed += counts.completed;
      into.failed += counts.failed;
    }
  }
  return merged;
}

bool ThreadPool::try_pop(std::size_t lane_index, Task& out) {
  Lane& lane = *lanes_[lane_index];
  std::lock_guard lock(lane.mutex);
  if (lane.queue.empty()) return false;
  out = std::move(lane.queue.front());
  lane.queue.pop_front();
  queued_.fetch_sub(1, std::memory_order_release);
  return true;
}

bool ThreadPool::next_task(std::size_t self, Task& out) {
  const std::size_t lanes = lanes_.size();
  while (true) {
    if (try_pop(self, out)) return true;
    // Own lane is dry: scan siblings front-to-back starting just past self
    // so steals spread instead of all converging on lane 0.
    for (std::size_t k = 1; k < lanes; ++k) {
      if (try_pop((self + k) % lanes, out)) {
        steals_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
    std::unique_lock lock(wake_mutex_);
    cv_task_.wait(lock, [this] {
      return stopping_.load(std::memory_order_acquire) ||
             queued_.load(std::memory_order_acquire) > 0;
    });
    if (stopping_.load(std::memory_order_acquire) &&
        queued_.load(std::memory_order_acquire) == 0) {
      return false;  // stopping and every lane drained
    }
  }
}

void ThreadPool::worker_loop(std::size_t self) {
  Task task;
  while (next_task(self, task)) {
    std::exception_ptr error;
    try {
      task.fn();
    } catch (...) {
      // Capture instead of std::terminate: a long-lived service must
      // survive one bad request. The owner drains via take_errors().
      error = std::current_exception();
    }
    {
      // Completion is billed to the worker's own lane; tag_stats() merges
      // the stripes, so submitted/completed still balance per tag.
      Lane& lane = *lanes_[self];
      std::lock_guard lock(lane.mutex);
      TagCounts& counts = lane.tags[task.tag];
      ++counts.completed;
      if (error) ++counts.failed;
    }
    if (error) {
      std::lock_guard lock(error_mutex_);
      errors_.push_back(std::move(error));
    }
    task = Task{};  // drop captures before signalling idle
    if (unfinished_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      { std::lock_guard wake(wake_mutex_); }
      cv_idle_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t min_chunk) {
  if (n == 0) return;
  const std::size_t workers = pool.size();
  const std::size_t chunk =
      std::max(min_chunk, (n + workers * 4 - 1) / (workers * 4));
  // Capture the first chunk-level exception here (not in the pool's error
  // list — the pool may be shared with unrelated tasks) and rethrow after
  // the join so callers see fn's failure instead of a silent skip.
  std::mutex error_mutex;
  std::exception_ptr first_error;
  for (std::size_t start = 0; start < n; start += chunk) {
    const std::size_t end = std::min(n, start + chunk);
    pool.submit([&fn, &error_mutex, &first_error, start, end] {
      try {
        for (std::size_t i = start; i < end; ++i) fn(i);
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  pool.wait_idle();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace depchaos::support
