#include "depchaos/support/thread_pool.hpp"

#include <algorithm>

namespace depchaos::support {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_task_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t min_chunk) {
  if (n == 0) return;
  const std::size_t workers = pool.size();
  const std::size_t chunk =
      std::max(min_chunk, (n + workers * 4 - 1) / (workers * 4));
  for (std::size_t start = 0; start < n; start += chunk) {
    const std::size_t end = std::min(n, start + chunk);
    pool.submit([&fn, start, end] {
      for (std::size_t i = start; i < end; ++i) fn(i);
    });
  }
  pool.wait_idle();
}

}  // namespace depchaos::support
