#include "depchaos/spack/version.hpp"

#include <cctype>

#include "depchaos/support/error.hpp"
#include "depchaos/support/strings.hpp"

namespace depchaos::spack {

Version::Version(std::string_view text) : raw_(text) {
  for (const auto& part : support::split_nonempty(text, '.')) {
    Segment seg;
    seg.text = part;
    if (support::is_all_digits(part)) {
      seg.number = std::stol(part);
    }
    segments_.push_back(std::move(seg));
  }
}

std::strong_ordering Version::Segment::operator<=>(const Segment& other) const {
  const bool a_num = number >= 0, b_num = other.number >= 0;
  if (a_num && b_num) return number <=> other.number;
  // Numeric segments sort after alpha ones ("1.0rc1" < "1.0.1" style);
  // simple but consistent.
  if (a_num != b_num) {
    return a_num ? std::strong_ordering::greater : std::strong_ordering::less;
  }
  const int cmp = text.compare(other.text);
  if (cmp < 0) return std::strong_ordering::less;
  if (cmp > 0) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

std::strong_ordering Version::operator<=>(const Version& other) const {
  const std::size_t n = std::max(segments_.size(), other.segments_.size());
  for (std::size_t i = 0; i < n; ++i) {
    // Missing segments compare as 0 ("1.8" == "1.8.0").
    static const Segment kZero{0, "0"};
    const Segment& a = i < segments_.size() ? segments_[i] : kZero;
    const Segment& b = i < other.segments_.size() ? other.segments_[i] : kZero;
    const auto cmp = a <=> b;
    if (cmp != std::strong_ordering::equal) return cmp;
  }
  return std::strong_ordering::equal;
}

bool Version::is_prefix_of(const Version& other) const {
  if (segments_.size() > other.segments_.size()) {
    // "1.8.0" can still prefix-match "1.8" only if trailing zeros.
    for (std::size_t i = other.segments_.size(); i < segments_.size(); ++i) {
      if (segments_[i].number != 0) return false;
    }
  }
  const std::size_t n = std::min(segments_.size(), other.segments_.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (!(segments_[i] == other.segments_[i])) return false;
  }
  return true;
}

VersionConstraint::VersionConstraint(std::string_view text) : raw_(text) {
  if (text.empty()) {
    kind_ = Kind::Any;
    return;
  }
  if (text.front() == '=') {
    kind_ = Kind::Exact;
    exact_ = Version(text.substr(1));
    return;
  }
  const auto colon = text.find(':');
  if (colon == std::string_view::npos) {
    kind_ = Kind::Prefix;
    exact_ = Version(text);
    return;
  }
  kind_ = Kind::Range;
  const auto lo_text = text.substr(0, colon);
  const auto hi_text = text.substr(colon + 1);
  if (!lo_text.empty()) lo_ = Version(lo_text);
  if (!hi_text.empty()) hi_ = Version(hi_text);
}

bool VersionConstraint::satisfied_by(const Version& version) const {
  switch (kind_) {
    case Kind::Any:
      return true;
    case Kind::Exact:
      return exact_ == version;
    case Kind::Prefix:
      return exact_.is_prefix_of(version);
    case Kind::Range:
      if (lo_ && version < *lo_) return false;
      if (hi_) {
        // Inclusive upper bound with prefix semantics: "…:1.12" admits
        // 1.12.3 (Spack's ranges are closed over prefix matches).
        if (*hi_ < version && !hi_->is_prefix_of(version)) return false;
      }
      return true;
  }
  return false;
}

bool VersionConstraint::intersects(const VersionConstraint& other) const {
  if (is_any() || other.is_any()) return true;
  // Sample-based check against both exact points and range endpoints;
  // exact for the constraint shapes the DSL can produce.
  auto candidates = [](const VersionConstraint& c) {
    std::vector<Version> out;
    if (c.kind_ == Kind::Exact || c.kind_ == Kind::Prefix) out.push_back(c.exact_);
    if (c.kind_ == Kind::Range) {
      if (c.lo_) out.push_back(*c.lo_);
      if (c.hi_) out.push_back(*c.hi_);
    }
    return out;
  };
  for (const auto& v : candidates(*this)) {
    if (other.satisfied_by(v)) return true;
  }
  for (const auto& v : candidates(other)) {
    if (satisfied_by(v)) return true;
  }
  // Two open-ended ranges pointing at each other.
  if (kind_ == Kind::Range && other.kind_ == Kind::Range) {
    if (!hi_ && !other.hi_) return true;
    if (!lo_ && !other.lo_) return true;
  }
  return false;
}

}  // namespace depchaos::spack
