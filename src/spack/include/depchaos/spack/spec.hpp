// Spack spec syntax: "pkg@ver%compiler@cver +variant ~variant ^dep@ver ...".
//
// This is the abstract-spec language users type on the command line and the
// `when=` condition language inside package.py. The parser covers the
// subset the DSL reparser and concretizer need: names, version constraints,
// compiler (with version), boolean variants, and '^'-anchored dependency
// constraints.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "depchaos/spack/version.hpp"

namespace depchaos::spack {

struct Spec {
  std::string name;  // may be empty in anonymous `when=` specs ("+mpi")
  VersionConstraint version;
  std::string compiler;  // "" = unconstrained
  VersionConstraint compiler_version;
  std::map<std::string, bool> variants;  // name -> requested value
  std::vector<Spec> dep_constraints;     // from '^' clauses

  /// Parse a spec string. Throws ParseError on malformed input.
  static Spec parse(std::string_view text);

  /// Canonical rendering (stable ordering; used in hashes and messages).
  std::string str() const;

  bool anonymous() const { return name.empty(); }
};

}  // namespace depchaos::spack
