// Dependency concretization: abstract spec -> concrete DAG.
//
// Models original Spack's greedy concretizer: pick the best version that
// satisfies every accumulated constraint, fill variant defaults, resolve
// virtual packages (mpi, blas...) through providers, evaluate `when=`
// conditions against the node under construction, and stamp the result
// with a pessimistic dag_hash covering the full transitive closure — the
// hash that names store prefixes (§II-D).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "depchaos/spack/dsl.hpp"

namespace depchaos::spack {

class Repo {
 public:
  /// Register a parsed recipe. Later registrations replace earlier ones.
  void add(Recipe recipe);

  /// Parse a package.py and register it; returns the package name.
  std::string add_package_py(std::string_view source);

  const Recipe* find(const std::string& name) const;

  /// Recipes that `provides()` the given virtual name.
  std::vector<const Recipe*> providers_of(const std::string& virtual_name) const;

  bool is_virtual(const std::string& name) const {
    return find(name) == nullptr && !providers_of(name).empty();
  }

  std::size_t size() const { return recipes_.size(); }
  std::vector<std::string> package_names() const;

 private:
  std::map<std::string, Recipe> recipes_;
};

struct ConcreteSpec {
  std::string name;
  std::string version;
  std::string compiler;
  std::string compiler_version;
  std::map<std::string, bool> variants;
  std::vector<std::string> deps;  // names of dependency nodes (unified DAG)

  /// "name@version%compiler+variant..." (no deps).
  std::string render() const;
};

struct ConcreteDag {
  std::string root;
  std::map<std::string, ConcreteSpec> nodes;

  const ConcreteSpec& at(const std::string& name) const;

  /// Pessimistic hash of `name`'s subtree (memoized externally if needed).
  std::string dag_hash(const std::string& name) const;

  /// Dependencies-first order (install order).
  std::vector<std::string> install_order() const;

  std::size_t size() const { return nodes.size(); }
};

struct ConcretizerOptions {
  std::string default_compiler = "gcc";
  std::string default_compiler_version = "12.1.0";
  /// Preferred provider for each virtual package ("mpi" -> "openmpi").
  std::map<std::string, std::string> virtual_defaults;
};

class Concretizer {
 public:
  explicit Concretizer(const Repo& repo, ConcretizerOptions options = {})
      : repo_(repo), options_(std::move(options)) {}

  /// Concretize an abstract spec. Throws ResolveError on unknown packages,
  /// unsatisfiable version constraints, contradictory variants, cycles, or
  /// triggered conflicts().
  ConcreteDag concretize(const Spec& abstract) const;
  ConcreteDag concretize(std::string_view spec_text) const {
    return concretize(Spec::parse(spec_text));
  }

  /// Concretize several roots against ONE shared node set (unified
  /// concretization, the basis of environments). `root_names` receives the
  /// resolved package name of each input spec in order. The returned DAG's
  /// `root` is the first root.
  ConcreteDag concretize_many(const std::vector<Spec>& roots,
                              std::vector<std::string>* root_names) const;

 private:
  struct Builder;

  const Repo& repo_;
  ConcretizerOptions options_;
};

/// Does `node` satisfy the (possibly anonymous) condition spec? Used for
/// when= clauses and conflicts().
bool satisfies(const ConcreteSpec& node, const Spec& condition);

}  // namespace depchaos::spack
