// Spack environments: several root specs concretized TOGETHER so shared
// dependencies unify into one node — the data structure behind Spack's
// environment views, which §III-D1's Dependency Views workaround is
// explicitly "based on the concept of".
//
// A concretized environment installs every node into the store and can
// publish a merged profile view (one bin/ + lib/ of symlinks), the
// unified-FHS experience the paper describes.
#pragma once

#include <string>
#include <vector>

#include "depchaos/pkg/store.hpp"
#include "depchaos/spack/concretizer.hpp"
#include "depchaos/spack/install.hpp"

namespace depchaos::spack {

struct ConcretizedEnvironment {
  std::vector<std::string> roots;  // package names of the root specs
  ConcreteDag dag;                 // unified node set (dag.root = first root)
};

/// Concretize `spec_texts` with unified constraints: a package appearing in
/// several roots' closures gets ONE concrete node satisfying all of them
/// (or ResolveError when they cannot agree — the views limitation of
/// §III-D1: "only allowing a package to depend on a single version of any
/// dependency").
ConcretizedEnvironment concretize_environment(
    const Concretizer& concretizer, const std::vector<std::string>& spec_texts);

struct EnvironmentInstallation {
  std::vector<InstallationResult> per_root;
  /// Profile view path (<store>/../profiles/current) after set_profile.
  std::string view_path;
};

/// Install every root (shared nodes install once thanks to store hashing)
/// and publish the merged profile view.
EnvironmentInstallation install_environment(pkg::store::Store& store,
                                            const ConcretizedEnvironment& env);

}  // namespace depchaos::spack
