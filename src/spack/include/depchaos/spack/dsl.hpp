// Reparser for the subset of Spack's Python package DSL that defines the
// dependency graph (the "awkward" piece of reproducing the paper's
// ecosystem: Spack recipes are Python, so we parse the declarative calls
// without executing Python).
//
// Supported statements:
//   class Axom(CMakePackage):            -> recipe name (CamelCase -> kebab)
//   """docstring"""                      -> skipped (multi-line aware)
//   homepage = "https://..."             -> recorded
//   version("0.7.0", sha256="…", deprecated=True, preferred=True)
//   variant("mpi", default=True, description="…")
//   depends_on("hdf5@1.8:1.12+shared", when="+mpi", type=("build","link"))
//   provides("mpi")                      -> virtual package provision
//   conflicts("%gcc@:7", when="+cuda")   -> recorded for the concretizer
//   patch("fix.patch", when="@1.0")      -> counted
// Calls may span multiple lines; comments and unknown statements are
// skipped; unknown kwargs are tolerated.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "depchaos/spack/spec.hpp"

namespace depchaos::spack {

struct VersionDecl {
  std::string version;
  std::string sha256;
  bool preferred = false;
  bool deprecated = false;
};

struct VariantDecl {
  std::string name;
  bool default_value = false;
  std::string description;
};

struct DependsDecl {
  Spec spec;                       // parsed from the first argument
  Spec when;                       // anonymous condition spec ("" = always)
  bool has_when = false;
  std::vector<std::string> types;  // build/link/run (default build+link)
};

struct ConflictDecl {
  Spec conflict;  // what must NOT hold
  Spec when;
  bool has_when = false;
};

struct Recipe {
  std::string name;        // kebab-case package name
  std::string class_name;  // original CamelCase
  std::string base_class;  // Package / CMakePackage / ...
  std::string homepage;
  std::string url;
  std::vector<VersionDecl> versions;
  std::vector<VariantDecl> variants;
  std::vector<DependsDecl> dependencies;
  std::vector<ConflictDecl> conflicts;
  std::vector<std::string> provides;  // virtual names
  std::size_t patch_count = 0;

  /// Highest non-deprecated version satisfying `constraint` (preferred
  /// versions win ties at the front). Empty string when none.
  std::string best_version(const VersionConstraint& constraint) const;

  const VariantDecl* find_variant(std::string_view variant_name) const;
};

/// Convert a Python class name to a Spack package name:
/// "Axom" -> "axom", "PyNumpy" -> "py-numpy", "Hdf5" -> "hdf5".
std::string class_to_package_name(std::string_view class_name);

/// Parse one package.py. Throws ParseError on inputs outside the subset
/// only when they are structurally broken (unbalanced quotes/parens);
/// unknown-but-wellformed statements are skipped.
Recipe parse_package_py(std::string_view source);

}  // namespace depchaos::spack
