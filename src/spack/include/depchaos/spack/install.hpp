// Materialize a concrete DAG into a store-model prefix tree (§II-D).
//
// Every package becomes <store>/<dag_hash>-<name>-<version>/lib/lib<name>.so
// with DT_NEEDED on its dependencies' sonames and RPATH or RUNPATH entries
// pointing at their store lib dirs — exactly the binaries Shrinkwrap is
// designed to freeze. The DAG root additionally gets bin/<name>.
#pragma once

#include <map>
#include <string>

#include "depchaos/pkg/store.hpp"
#include "depchaos/spack/concretizer.hpp"
#include "depchaos/vfs/vfs.hpp"

namespace depchaos::spack {

struct InstallationResult {
  /// Package name -> store prefix.
  std::map<std::string, std::string> prefixes;
  /// Absolute path of the root package's executable.
  std::string exe_path;
  /// Root package's library soname.
  std::string root_soname;
};

/// Install every node of `dag` into `store`, dependencies first.
InstallationResult install_dag(pkg::store::Store& store,
                               const ConcreteDag& dag);

}  // namespace depchaos::spack
