// Spack-style versions and version ranges.
//
// Versions are dotted numeric/alpha tuples compared segment-wise
// ("1.10" > "1.9"). Constraints follow Spack's spec syntax:
//   "1.8"        — prefix match (any 1.8.x)
//   "=1.8.2"     — exact match
//   "1.8:1.12"   — inclusive range
//   "1.8:"       — at least
//   ":1.12"      — at most
//   ""           — anything
#pragma once

#include <compare>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace depchaos::spack {

class Version {
 public:
  Version() = default;
  explicit Version(std::string_view text);

  const std::string& str() const { return raw_; }
  bool empty() const { return raw_.empty(); }

  std::strong_ordering operator<=>(const Version& other) const;
  bool operator==(const Version& other) const {
    return (*this <=> other) == std::strong_ordering::equal;
  }

  /// True if `this` is a prefix of `other` at segment granularity
  /// (1.8 is satisfied by 1.8.2; 1.8 is not satisfied by 1.80).
  bool is_prefix_of(const Version& other) const;

 private:
  struct Segment {
    long number = -1;   // -1 = non-numeric
    std::string text;   // original text (used for alpha compare)
    std::strong_ordering operator<=>(const Segment& other) const;
    bool operator==(const Segment& other) const {
      return (*this <=> other) == std::strong_ordering::equal;
    }
  };
  std::string raw_;
  std::vector<Segment> segments_;
};

class VersionConstraint {
 public:
  VersionConstraint() = default;  // matches anything

  /// Parse the text after '@' in a spec.
  explicit VersionConstraint(std::string_view text);

  bool satisfied_by(const Version& version) const;
  bool is_any() const { return kind_ == Kind::Any; }
  const std::string& str() const { return raw_; }

  /// Whether two constraints can possibly agree (used when the concretizer
  /// unifies two requirements on the same package). Conservative: checks
  /// range overlap.
  bool intersects(const VersionConstraint& other) const;

 private:
  enum class Kind { Any, Exact, Prefix, Range };
  Kind kind_ = Kind::Any;
  std::string raw_;
  Version exact_;                 // Exact / Prefix
  std::optional<Version> lo_;     // Range
  std::optional<Version> hi_;
};

}  // namespace depchaos::spack
