#include "depchaos/spack/spec.hpp"

#include <cctype>

#include "depchaos/support/error.hpp"
#include "depchaos/support/strings.hpp"

namespace depchaos::spack {

namespace {

bool is_name_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '-' || c == '_' ||
         c == '.';
}

bool is_version_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '.' || c == ':' ||
         c == '=' || c == '-';
}

// Parse one "unit" (no '^'): name@ver%comp@cver+var~var
Spec parse_unit(std::string_view text) {
  Spec spec;
  std::size_t pos = 0;
  const auto take_while = [&](auto pred) {
    const std::size_t start = pos;
    while (pos < text.size() && pred(text[pos])) ++pos;
    return std::string(text.substr(start, pos - start));
  };

  // Leading name (may be absent for anonymous specs like "+mpi" or "@1.8:").
  if (pos < text.size() && is_name_char(text[pos]) && text[pos] != '.') {
    spec.name = take_while(is_name_char);
  }

  while (pos < text.size()) {
    const char c = text[pos];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++pos;
      continue;
    }
    switch (c) {
      case '@': {
        ++pos;
        const std::string v = take_while(is_version_char);
        if (v.empty()) throw ParseError("empty version in spec: " + std::string(text));
        spec.version = VersionConstraint(v);
        break;
      }
      case '%': {
        ++pos;
        spec.compiler = take_while([](char ch) {
          return std::isalnum(static_cast<unsigned char>(ch)) || ch == '-' ||
                 ch == '_';
        });
        if (spec.compiler.empty()) {
          throw ParseError("empty compiler in spec: " + std::string(text));
        }
        if (pos < text.size() && text[pos] == '@') {
          ++pos;
          spec.compiler_version = VersionConstraint(take_while(is_version_char));
        }
        break;
      }
      case '+': {
        ++pos;
        const std::string v = take_while(is_name_char);
        if (v.empty()) throw ParseError("empty +variant in: " + std::string(text));
        spec.variants[v] = true;
        break;
      }
      case '~':
      case '-': {
        // '-variant' only counts when following whitespace or at start;
        // inside names '-' was already consumed by take_while(is_name_char).
        ++pos;
        const std::string v = take_while(is_name_char);
        if (v.empty()) throw ParseError("empty ~variant in: " + std::string(text));
        spec.variants[v] = false;
        break;
      }
      default:
        throw ParseError("unexpected character '" + std::string(1, c) +
                         "' in spec: " + std::string(text));
    }
  }
  return spec;
}

}  // namespace

Spec Spec::parse(std::string_view text) {
  const auto trimmed = support::trim(text);
  // Split on '^' boundaries (dependency constraints).
  std::vector<std::string> units;
  std::string current;
  for (const char c : trimmed) {
    if (c == '^') {
      units.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  units.push_back(current);

  Spec spec = parse_unit(support::trim(units.front()));
  for (std::size_t i = 1; i < units.size(); ++i) {
    const auto unit = support::trim(units[i]);
    if (unit.empty()) throw ParseError("empty ^dependency in: " + std::string(text));
    Spec dep = parse_unit(unit);
    if (dep.anonymous()) {
      throw ParseError("^dependency must be named in: " + std::string(text));
    }
    spec.dep_constraints.push_back(std::move(dep));
  }
  return spec;
}

std::string Spec::str() const {
  std::string out = name;
  if (!version.is_any()) out += "@" + version.str();
  if (!compiler.empty()) {
    out += "%" + compiler;
    if (!compiler_version.is_any()) out += "@" + compiler_version.str();
  }
  for (const auto& [variant, value] : variants) {
    out += (value ? "+" : "~") + variant;
  }
  for (const auto& dep : dep_constraints) {
    out += " ^" + dep.str();
  }
  return out;
}

}  // namespace depchaos::spack
