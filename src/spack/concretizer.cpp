#include "depchaos/spack/concretizer.hpp"

#include <algorithm>
#include <deque>
#include <set>

#include "depchaos/support/error.hpp"
#include "depchaos/support/sha256.hpp"

namespace depchaos::spack {

void Repo::add(Recipe recipe) {
  recipes_[recipe.name] = std::move(recipe);
}

std::string Repo::add_package_py(std::string_view source) {
  Recipe recipe = parse_package_py(source);
  std::string name = recipe.name;
  add(std::move(recipe));
  return name;
}

const Recipe* Repo::find(const std::string& name) const {
  const auto it = recipes_.find(name);
  return it == recipes_.end() ? nullptr : &it->second;
}

std::vector<const Recipe*> Repo::providers_of(
    const std::string& virtual_name) const {
  std::vector<const Recipe*> out;
  for (const auto& [name, recipe] : recipes_) {
    if (std::find(recipe.provides.begin(), recipe.provides.end(),
                  virtual_name) != recipe.provides.end()) {
      out.push_back(&recipe);
    }
  }
  return out;
}

std::vector<std::string> Repo::package_names() const {
  std::vector<std::string> out;
  out.reserve(recipes_.size());
  for (const auto& [name, recipe] : recipes_) out.push_back(name);
  return out;
}

std::string ConcreteSpec::render() const {
  std::string out = name + "@" + version;
  if (!compiler.empty()) {
    out += "%" + compiler;
    if (!compiler_version.empty()) out += "@" + compiler_version;
  }
  for (const auto& [variant, value] : variants) {
    out += (value ? "+" : "~") + variant;
  }
  return out;
}

const ConcreteSpec& ConcreteDag::at(const std::string& name) const {
  const auto it = nodes.find(name);
  if (it == nodes.end()) {
    throw ResolveError("no such node in concrete DAG: " + name);
  }
  return it->second;
}

std::string ConcreteDag::dag_hash(const std::string& name) const {
  const ConcreteSpec& node = at(name);
  support::Sha256 hasher;
  hasher.update(node.render());
  std::vector<std::string> dep_hashes;
  for (const auto& dep : node.deps) {
    dep_hashes.push_back(dag_hash(dep));
  }
  std::sort(dep_hashes.begin(), dep_hashes.end());
  for (const auto& hash : dep_hashes) hasher.update(hash);
  auto hex = hasher.hex_digest();
  hex.resize(16);
  return hex;
}

std::vector<std::string> ConcreteDag::install_order() const {
  // Post-order DFS from the root: dependencies first.
  std::vector<std::string> order;
  std::set<std::string> visited;
  std::vector<std::pair<std::string, bool>> stack{{root, false}};
  while (!stack.empty()) {
    auto [name, expanded] = stack.back();
    stack.pop_back();
    if (expanded) {
      order.push_back(name);
      continue;
    }
    if (!visited.insert(name).second) continue;
    stack.emplace_back(name, true);
    const auto& node = at(name);
    for (const auto& dep : node.deps) {
      if (!visited.contains(dep)) stack.emplace_back(dep, false);
    }
  }
  return order;
}

bool satisfies(const ConcreteSpec& node, const Spec& condition) {
  if (!condition.name.empty() && condition.name != node.name) return false;
  if (!condition.version.is_any() &&
      !condition.version.satisfied_by(Version(node.version))) {
    return false;
  }
  if (!condition.compiler.empty()) {
    if (condition.compiler != node.compiler) return false;
    if (!condition.compiler_version.is_any() &&
        !condition.compiler_version.satisfied_by(
            Version(node.compiler_version))) {
      return false;
    }
  }
  for (const auto& [variant, wanted] : condition.variants) {
    const auto it = node.variants.find(variant);
    if (it == node.variants.end() || it->second != wanted) return false;
  }
  return true;
}

struct Concretizer::Builder {
  const Repo& repo;
  const ConcretizerOptions& options;
  ConcreteDag dag;
  // Accumulated constraints per (resolved) package name.
  std::map<std::string, std::vector<Spec>> constraints;
  std::set<std::string> in_progress;  // cycle detection

  /// Resolve a possibly-virtual name to a concrete recipe.
  const Recipe& resolve_recipe(const std::string& name) {
    if (const Recipe* recipe = repo.find(name)) return *recipe;
    const auto providers = repo.providers_of(name);
    if (providers.empty()) {
      throw ResolveError("unknown package: " + name);
    }
    if (const auto it = options.virtual_defaults.find(name);
        it != options.virtual_defaults.end()) {
      for (const Recipe* provider : providers) {
        if (provider->name == it->second) return *provider;
      }
      throw ResolveError("preferred provider " + it->second + " for virtual " +
                         name + " is not in the repo");
    }
    return *providers.front();
  }

  void add_constraint(const std::string& name, const Spec& spec) {
    constraints[name].push_back(spec);
  }

  std::string concretize_node(const std::string& requested_name) {
    const Recipe& recipe = resolve_recipe(requested_name);
    const std::string& name = recipe.name;
    if (requested_name != name) {
      // Virtual resolution: migrate constraints keyed by the virtual name.
      for (const auto& spec : constraints[requested_name]) {
        constraints[name].push_back(spec);
      }
    }
    // Cycle check must precede the completed-node dedup: a node that is
    // still being built has a placeholder in `dag.nodes`.
    if (in_progress.contains(name)) {
      throw ResolveError("dependency cycle through " + name);
    }
    if (const auto it = dag.nodes.find(name); it != dag.nodes.end()) {
      // Already concretized: every constraint must still hold (strict
      // unification — original Spack re-runs; we verify).
      for (const auto& spec : constraints[name]) {
        Spec anonymous = spec;
        anonymous.name.clear();
        if (!satisfies(it->second, anonymous)) {
          throw ResolveError("conflicting constraints on " + name + ": " +
                             spec.str() + " vs " + it->second.render());
        }
      }
      return name;
    }
    in_progress.insert(name);

    ConcreteSpec node;
    node.name = name;

    // Version: best version satisfying ALL constraints.
    {
      const VersionDecl* chosen = nullptr;
      Version best;
      bool best_preferred = false;
      for (const auto& decl : recipe.versions) {
        if (decl.deprecated) continue;
        const Version candidate(decl.version);
        bool ok = true;
        for (const auto& spec : constraints[name]) {
          if (!spec.version.satisfied_by(candidate)) {
            ok = false;
            break;
          }
        }
        if (!ok) continue;
        const bool better = chosen == nullptr ||
                            (decl.preferred && !best_preferred) ||
                            (decl.preferred == best_preferred && best < candidate);
        if (better) {
          chosen = &decl;
          best = candidate;
          best_preferred = decl.preferred;
        }
      }
      if (chosen == nullptr) {
        std::string wanted;
        for (const auto& spec : constraints[name]) {
          if (!spec.version.is_any()) wanted += " @" + spec.version.str();
        }
        throw ResolveError("no version of " + name +
                           " satisfies constraints:" + wanted);
      }
      node.version = chosen->version;
    }

    // Compiler: first constrained value wins, else the default.
    node.compiler = options.default_compiler;
    node.compiler_version = options.default_compiler_version;
    for (const auto& spec : constraints[name]) {
      if (!spec.compiler.empty()) {
        node.compiler = spec.compiler;
        if (!spec.compiler_version.is_any()) {
          node.compiler_version = spec.compiler_version.str();
        }
      }
    }

    // Variants: declared defaults, overridden by constraints; contradictory
    // requests are an error.
    for (const auto& variant : recipe.variants) {
      node.variants[variant.name] = variant.default_value;
    }
    std::map<std::string, bool> forced;
    for (const auto& spec : constraints[name]) {
      for (const auto& [variant, value] : spec.variants) {
        if (const auto it = forced.find(variant);
            it != forced.end() && it->second != value) {
          throw ResolveError("contradictory variant " + variant + " on " +
                             name);
        }
        forced[variant] = value;
        node.variants[variant] = value;
      }
    }

    // Dependencies whose when= condition holds.
    std::vector<std::pair<std::string, Spec>> wanted_deps;
    for (const auto& dep : recipe.dependencies) {
      if (dep.has_when && !satisfies(node, dep.when)) continue;
      wanted_deps.emplace_back(dep.spec.name, dep.spec);
    }
    // Register constraints before recursing so siblings see them.
    for (const auto& [dep_name, dep_spec] : wanted_deps) {
      add_constraint(dep_name, dep_spec);
      for (const auto& nested : dep_spec.dep_constraints) {
        add_constraint(nested.name, nested);
      }
    }
    dag.nodes.emplace(name, node);  // placeholder for cycle-free recursion
    for (const auto& [dep_name, dep_spec] : wanted_deps) {
      const std::string resolved = concretize_node(dep_name);
      auto& self = dag.nodes.at(name);
      if (std::find(self.deps.begin(), self.deps.end(), resolved) ==
          self.deps.end()) {
        self.deps.push_back(resolved);
      }
    }

    // Conflicts: "conflicts(X, when=Y)" — error when both hold.
    const ConcreteSpec& final_node = dag.nodes.at(name);
    for (const auto& conflict : recipe.conflicts) {
      if (conflict.has_when && !satisfies(final_node, conflict.when)) continue;
      Spec anonymous = conflict.conflict;
      const bool name_matches =
          anonymous.name.empty() || anonymous.name == name;
      anonymous.name.clear();
      if (name_matches && satisfies(final_node, anonymous)) {
        throw ResolveError("conflict triggered on " + name + ": " +
                           conflict.conflict.str());
      }
    }

    in_progress.erase(name);
    return name;
  }
};

ConcreteDag Concretizer::concretize_many(
    const std::vector<Spec>& roots, std::vector<std::string>* root_names) const {
  if (roots.empty()) {
    throw ResolveError("cannot concretize an empty root list");
  }
  Builder builder{repo_, options_, {}, {}, {}};
  // Register every root's constraints first so unification sees them all.
  for (const auto& abstract : roots) {
    if (abstract.name.empty()) {
      throw ResolveError("cannot concretize an anonymous spec");
    }
    builder.add_constraint(abstract.name, abstract);
    for (const auto& dep : abstract.dep_constraints) {
      builder.add_constraint(dep.name, dep);
    }
  }
  // Unification pre-pass: pull in every UNCONDITIONAL depends_on constraint
  // reachable from any root, so a version pin in one root's subtree (e.g.
  // viz -> hdf5@1.10) constrains the shared node before another root's
  // subtree concretizes it. Conditional (when=) declarations cannot be
  // evaluated yet and stay late-registered; genuine contradictions still
  // surface as ResolveErrors during unification.
  {
    std::set<std::string> visited;
    std::deque<std::string> queue;
    for (const auto& abstract : roots) queue.push_back(abstract.name);
    while (!queue.empty()) {
      const std::string name = std::move(queue.front());
      queue.pop_front();
      if (!visited.insert(name).second) continue;
      const Recipe& recipe = builder.resolve_recipe(name);
      for (const auto& dep : recipe.dependencies) {
        if (dep.has_when) continue;
        builder.add_constraint(dep.spec.name, dep.spec);
        queue.push_back(dep.spec.name);
      }
    }
  }
  std::vector<std::string> resolved_roots;
  for (const auto& abstract : roots) {
    resolved_roots.push_back(builder.concretize_node(abstract.name));
  }
  builder.dag.root = resolved_roots.front();

  // '^' constraints name packages that must appear in the DAG; pull in any
  // that were not reached through declared dependencies (Spack adds them as
  // direct deps of their root).
  for (std::size_t i = 0; i < roots.size(); ++i) {
    for (const auto& dep : roots[i].dep_constraints) {
      const Recipe& recipe = builder.resolve_recipe(dep.name);
      if (!builder.dag.nodes.contains(recipe.name)) {
        const std::string resolved = builder.concretize_node(dep.name);
        auto& root_node = builder.dag.nodes.at(resolved_roots[i]);
        if (std::find(root_node.deps.begin(), root_node.deps.end(),
                      resolved) == root_node.deps.end()) {
          root_node.deps.push_back(resolved);
        }
      }
    }
  }
  if (root_names != nullptr) *root_names = std::move(resolved_roots);
  return std::move(builder.dag);
}

ConcreteDag Concretizer::concretize(const Spec& abstract) const {
  return concretize_many({abstract}, nullptr);
}

}  // namespace depchaos::spack
