#include "depchaos/spack/environment.hpp"

#include <set>

namespace depchaos::spack {

ConcretizedEnvironment concretize_environment(
    const Concretizer& concretizer,
    const std::vector<std::string>& spec_texts) {
  std::vector<Spec> roots;
  roots.reserve(spec_texts.size());
  for (const auto& text : spec_texts) {
    roots.push_back(Spec::parse(text));
  }
  ConcretizedEnvironment env;
  env.dag = concretizer.concretize_many(roots, &env.roots);
  return env;
}

EnvironmentInstallation install_environment(
    pkg::store::Store& store, const ConcretizedEnvironment& env) {
  EnvironmentInstallation result;
  std::set<std::string> profile_prefixes;
  for (const auto& root : env.roots) {
    ConcreteDag per_root;
    per_root.root = root;
    per_root.nodes = env.dag.nodes;  // shared node set
    const auto installed = install_dag(store, per_root);
    for (const auto& [name, prefix] : installed.prefixes) {
      profile_prefixes.insert(prefix);
    }
    result.per_root.push_back(installed);
  }
  store.set_profile(
      std::vector<std::string>(profile_prefixes.begin(),
                               profile_prefixes.end()));
  result.view_path = store.profile_path();
  return result;
}

}  // namespace depchaos::spack
