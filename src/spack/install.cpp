#include "depchaos/spack/install.hpp"

#include "depchaos/elf/object.hpp"

namespace depchaos::spack {

namespace {
std::string soname_for(const std::string& package_name) {
  return "lib" + package_name + ".so";
}
}  // namespace

InstallationResult install_dag(pkg::store::Store& store,
                               const ConcreteDag& dag) {
  InstallationResult result;
  for (const auto& name : dag.install_order()) {
    const ConcreteSpec& node = dag.at(name);
    pkg::store::PackageSpec spec;
    spec.name = node.name;
    spec.version = node.version;
    for (const auto& dep : node.deps) {
      spec.deps.push_back(result.prefixes.at(dep));
    }

    std::vector<std::string> dep_sonames;
    for (const auto& dep : node.deps) dep_sonames.push_back(soname_for(dep));

    elf::Object lib = elf::make_library(soname_for(node.name), dep_sonames);
    lib.symbols.push_back(
        elf::Symbol{node.name + "_init", elf::SymbolBinding::Global, true});
    spec.files.push_back(
        pkg::store::StoreFile{"lib/" + soname_for(node.name), lib, ""});

    const bool is_root = (node.name == dag.root);
    if (is_root) {
      std::vector<std::string> exe_needed = {soname_for(node.name)};
      elf::Object exe = elf::make_executable(exe_needed);
      spec.files.push_back(
          pkg::store::StoreFile{"bin/" + node.name, exe, ""});
    }

    const auto& installed = store.add(spec);
    result.prefixes[node.name] = installed.prefix;
    if (is_root) {
      result.exe_path = installed.prefix + "/bin/" + node.name;
      result.root_soname = soname_for(node.name);
    }
  }
  return result;
}

}  // namespace depchaos::spack
