#include "depchaos/spack/dsl.hpp"

#include <algorithm>
#include <cctype>

#include "depchaos/support/error.hpp"
#include "depchaos/support/strings.hpp"

namespace depchaos::spack {

namespace {

// ---------------------------------------------------------------------------
// Tiny Python-literal value model for call arguments.
// ---------------------------------------------------------------------------

struct PyValue {
  enum class Kind { Str, Bool, Number, Tuple, Ident } kind = Kind::Ident;
  std::string str;               // Str / Ident / Number (raw)
  bool boolean = false;          // Bool
  std::vector<PyValue> items;    // Tuple
};

struct Arg {
  std::string keyword;  // "" = positional
  PyValue value;
};

class Cursor {
 public:
  explicit Cursor(std::string_view text) : text_(text) {}

  bool done() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }
  char take() { return text_[pos_++]; }

  void skip_ws() {
    while (!done() && (std::isspace(static_cast<unsigned char>(peek())) != 0)) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (!done() && peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string_view rest() const { return text_.substr(pos_); }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
};

std::string parse_string_literal(Cursor& cur) {
  cur.skip_ws();
  const char quote = cur.take();
  std::string out;
  while (!cur.done()) {
    const char c = cur.take();
    if (c == '\\' && !cur.done()) {
      out += cur.take();
      continue;
    }
    if (c == quote) return out;
    out += c;
  }
  throw ParseError("unterminated string literal");
}

PyValue parse_value(Cursor& cur);

PyValue parse_tuple_or_list(Cursor& cur, char open) {
  const char close = open == '(' ? ')' : ']';
  PyValue out;
  out.kind = PyValue::Kind::Tuple;
  cur.take();  // consume open
  while (true) {
    cur.skip_ws();
    if (cur.done()) throw ParseError("unterminated tuple/list");
    if (cur.peek() == close) {
      cur.take();
      return out;
    }
    out.items.push_back(parse_value(cur));
    cur.skip_ws();
    if (!cur.done() && cur.peek() == ',') cur.take();
  }
}

PyValue parse_value(Cursor& cur) {
  cur.skip_ws();
  if (cur.done()) throw ParseError("expected value");
  const char c = cur.peek();
  if (c == '"' || c == '\'') {
    PyValue out;
    out.kind = PyValue::Kind::Str;
    out.str = parse_string_literal(cur);
    return out;
  }
  if (c == '(' || c == '[') return parse_tuple_or_list(cur, c);
  // Identifier / number / True / False.
  std::string token;
  while (!cur.done()) {
    const char ch = cur.peek();
    if (std::isalnum(static_cast<unsigned char>(ch)) || ch == '_' ||
        ch == '.' || ch == '-' || ch == '+') {
      token += cur.take();
    } else {
      break;
    }
  }
  if (token.empty()) {
    throw ParseError("cannot parse value near: " + std::string(cur.rest()));
  }
  PyValue out;
  if (token == "True" || token == "False") {
    out.kind = PyValue::Kind::Bool;
    out.boolean = (token == "True");
  } else if (std::isdigit(static_cast<unsigned char>(token[0])) != 0 ||
             token[0] == '-' || token[0] == '+') {
    out.kind = PyValue::Kind::Number;
    out.str = token;
  } else {
    out.kind = PyValue::Kind::Ident;
    out.str = token;
  }
  return out;
}

/// Parse "name(arg, kw=value, ...)" into (name, args). The input must be a
/// complete call expression.
std::vector<Arg> parse_call_args(std::string_view args_text) {
  std::vector<Arg> out;
  Cursor cur(args_text);
  while (true) {
    cur.skip_ws();
    if (cur.done()) return out;
    // keyword= ?
    Arg arg;
    const std::string_view rest = cur.rest();
    std::size_t i = 0;
    while (i < rest.size() &&
           (std::isalnum(static_cast<unsigned char>(rest[i])) != 0 ||
            rest[i] == '_')) {
      ++i;
    }
    std::size_t j = i;
    while (j < rest.size() &&
           std::isspace(static_cast<unsigned char>(rest[j])) != 0) {
      ++j;
    }
    if (i > 0 && j < rest.size() && rest[j] == '=' &&
        (j + 1 >= rest.size() || rest[j + 1] != '=')) {
      arg.keyword = std::string(rest.substr(0, i));
      for (std::size_t k = 0; k <= j; ++k) cur.take();
    }
    arg.value = parse_value(cur);
    out.push_back(std::move(arg));
    cur.skip_ws();
    if (!cur.done() && cur.peek() == ',') {
      cur.take();
      continue;
    }
    cur.skip_ws();
    if (cur.done()) return out;
    throw ParseError("trailing junk in call args: " + std::string(cur.rest()));
  }
}

const PyValue* find_kwarg(const std::vector<Arg>& args, std::string_view key) {
  for (const auto& arg : args) {
    if (arg.keyword == key) return &arg.value;
  }
  return nullptr;
}

const PyValue* positional(const std::vector<Arg>& args, std::size_t index) {
  std::size_t seen = 0;
  for (const auto& arg : args) {
    if (!arg.keyword.empty()) continue;
    if (seen == index) return &arg.value;
    ++seen;
  }
  return nullptr;
}

/// Preprocess: strip comments, remove docstrings, merge multi-line calls
/// into single logical lines (balancing parens/brackets outside strings).
std::vector<std::string> logical_lines(std::string_view source) {
  std::vector<std::string> out;
  std::string current;
  int depth = 0;
  bool in_string = false;
  char string_quote = 0;
  bool in_triple = false;
  std::string triple_quote;

  std::size_t i = 0;
  while (i < source.size()) {
    const char c = source[i];
    if (in_triple) {
      if (source.substr(i, 3) == triple_quote) {
        in_triple = false;
        i += 3;
      } else {
        ++i;
      }
      continue;
    }
    if (in_string) {
      if (c == '\\') {
        current += c;
        if (i + 1 < source.size()) current += source[i + 1];
        i += 2;
        continue;
      }
      current += c;
      if (c == string_quote) in_string = false;
      ++i;
      continue;
    }
    if (source.substr(i, 3) == "\"\"\"" || source.substr(i, 3) == "'''") {
      in_triple = true;
      triple_quote = std::string(source.substr(i, 3));
      i += 3;
      continue;
    }
    if (c == '"' || c == '\'') {
      in_string = true;
      string_quote = c;
      current += c;
      ++i;
      continue;
    }
    if (c == '#') {
      while (i < source.size() && source[i] != '\n') ++i;
      continue;
    }
    if (c == '(' || c == '[') ++depth;
    if (c == ')' || c == ']') --depth;
    if (c == '\n') {
      if (depth > 0) {
        current += ' ';
      } else {
        out.push_back(current);
        current.clear();
      }
      ++i;
      continue;
    }
    current += c;
    ++i;
  }
  if (!current.empty()) out.push_back(current);
  return out;
}

std::vector<std::string> tuple_to_strings(const PyValue& value) {
  std::vector<std::string> out;
  if (value.kind == PyValue::Kind::Str) {
    out.push_back(value.str);
    return out;
  }
  if (value.kind == PyValue::Kind::Tuple) {
    for (const auto& item : value.items) {
      if (item.kind == PyValue::Kind::Str) out.push_back(item.str);
    }
  }
  return out;
}

}  // namespace

std::string class_to_package_name(std::string_view class_name) {
  std::string out;
  for (std::size_t i = 0; i < class_name.size(); ++i) {
    const char c = class_name[i];
    if (std::isupper(static_cast<unsigned char>(c)) != 0) {
      if (i != 0) out += '-';
      out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else if (c == '_') {
      out += '-';
    } else {
      out += c;
    }
  }
  return out;
}

std::string Recipe::best_version(const VersionConstraint& constraint) const {
  const VersionDecl* best = nullptr;
  Version best_version;
  bool best_preferred = false;
  for (const auto& decl : versions) {
    if (decl.deprecated) continue;
    const Version candidate(decl.version);
    if (!constraint.satisfied_by(candidate)) continue;
    const bool better =
        best == nullptr ||
        (decl.preferred && !best_preferred) ||
        (decl.preferred == best_preferred && best_version < candidate);
    if (better) {
      best = &decl;
      best_version = candidate;
      best_preferred = decl.preferred;
    }
  }
  return best ? best->version : std::string{};
}

const VariantDecl* Recipe::find_variant(std::string_view variant_name) const {
  for (const auto& variant : variants) {
    if (variant.name == variant_name) return &variant;
  }
  return nullptr;
}

Recipe parse_package_py(std::string_view source) {
  Recipe recipe;
  for (const auto& raw_line : logical_lines(source)) {
    const std::string_view line = support::trim(raw_line);
    if (line.empty()) continue;

    // class Foo(Base):
    if (line.starts_with("class ")) {
      auto rest = support::trim(line.substr(6));
      const auto paren = rest.find('(');
      const auto colon = rest.find(':');
      const auto name_end = std::min(paren, colon);
      recipe.class_name = std::string(support::trim(rest.substr(0, name_end)));
      recipe.name = class_to_package_name(recipe.class_name);
      if (paren != std::string_view::npos && colon != std::string_view::npos &&
          colon > paren) {
        const auto close = rest.find(')', paren);
        if (close != std::string_view::npos) {
          recipe.base_class =
              std::string(support::trim(rest.substr(paren + 1, close - paren - 1)));
        }
      }
      continue;
    }

    // attribute = "string"
    {
      const auto eq = line.find('=');
      if (eq != std::string_view::npos && line.find('(') > eq) {
        const auto key = support::trim(line.substr(0, eq));
        const auto value_text = support::trim(line.substr(eq + 1));
        if (!value_text.empty() &&
            (value_text.front() == '"' || value_text.front() == '\'')) {
          Cursor cur(value_text);
          const std::string value = parse_string_literal(cur);
          if (key == "homepage") recipe.homepage = value;
          if (key == "url") recipe.url = value;
        }
        continue;
      }
    }

    // call(...)
    const auto paren = line.find('(');
    if (paren == std::string_view::npos || !line.ends_with(")")) continue;
    const std::string fn = std::string(support::trim(line.substr(0, paren)));
    const std::string_view args_text =
        line.substr(paren + 1, line.size() - paren - 2);

    if (fn == "version") {
      const auto args = parse_call_args(args_text);
      const PyValue* ver = positional(args, 0);
      if (ver == nullptr || ver->kind != PyValue::Kind::Str) {
        throw ParseError("version() needs a string argument: " +
                         std::string(line));
      }
      VersionDecl decl;
      decl.version = ver->str;
      if (const auto* sha = find_kwarg(args, "sha256")) decl.sha256 = sha->str;
      if (const auto* pref = find_kwarg(args, "preferred")) {
        decl.preferred = pref->boolean;
      }
      if (const auto* depr = find_kwarg(args, "deprecated")) {
        decl.deprecated = depr->boolean;
      }
      recipe.versions.push_back(std::move(decl));
    } else if (fn == "variant") {
      const auto args = parse_call_args(args_text);
      const PyValue* name = positional(args, 0);
      if (name == nullptr || name->kind != PyValue::Kind::Str) {
        throw ParseError("variant() needs a string argument: " +
                         std::string(line));
      }
      VariantDecl decl;
      decl.name = name->str;
      if (const auto* dflt = find_kwarg(args, "default")) {
        decl.default_value = dflt->boolean;
      }
      if (const auto* desc = find_kwarg(args, "description")) {
        decl.description = desc->str;
      }
      recipe.variants.push_back(std::move(decl));
    } else if (fn == "depends_on") {
      const auto args = parse_call_args(args_text);
      const PyValue* spec_text = positional(args, 0);
      if (spec_text == nullptr || spec_text->kind != PyValue::Kind::Str) {
        throw ParseError("depends_on() needs a string argument: " +
                         std::string(line));
      }
      DependsDecl decl;
      decl.spec = Spec::parse(spec_text->str);
      if (const auto* when = find_kwarg(args, "when")) {
        decl.when = Spec::parse(when->str);
        decl.has_when = true;
      }
      if (const auto* type = find_kwarg(args, "type")) {
        decl.types = tuple_to_strings(*type);
      } else {
        decl.types = {"build", "link"};
      }
      recipe.dependencies.push_back(std::move(decl));
    } else if (fn == "provides") {
      const auto args = parse_call_args(args_text);
      for (const auto& arg : args) {
        if (arg.keyword.empty() && arg.value.kind == PyValue::Kind::Str) {
          recipe.provides.push_back(arg.value.str);
        }
      }
    } else if (fn == "conflicts") {
      const auto args = parse_call_args(args_text);
      const PyValue* what = positional(args, 0);
      if (what == nullptr || what->kind != PyValue::Kind::Str) continue;
      ConflictDecl decl;
      decl.conflict = Spec::parse(what->str);
      if (const auto* when = find_kwarg(args, "when")) {
        decl.when = Spec::parse(when->str);
        decl.has_when = true;
      }
      recipe.conflicts.push_back(std::move(decl));
    } else if (fn == "patch") {
      ++recipe.patch_count;
    }
    // Other calls (maintainers(), license(), ...) are tolerated and skipped.
  }
  if (recipe.name.empty()) {
    throw ParseError("package.py defines no class");
  }
  return recipe;
}

}  // namespace depchaos::spack
