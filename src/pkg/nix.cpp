#include "depchaos/pkg/nix.hpp"

#include <algorithm>
#include <deque>

namespace depchaos::pkg::nix {

std::size_t DerivationSet::add(std::string name, DrvKind kind,
                               std::vector<std::size_t> inputs) {
  drvs_.push_back(Derivation{std::move(name), kind, std::move(inputs)});
  return drvs_.size() - 1;
}

void DerivationSet::add_input(std::size_t id, std::size_t input) {
  drvs_[id].inputs.push_back(input);
}

std::vector<std::size_t> DerivationSet::closure(std::size_t root) const {
  std::vector<bool> seen(drvs_.size(), false);
  std::vector<std::size_t> out;
  std::deque<std::size_t> queue{root};
  seen[root] = true;
  while (!queue.empty()) {
    const std::size_t id = queue.front();
    queue.pop_front();
    out.push_back(id);
    for (const std::size_t input : drvs_[id].inputs) {
      if (!seen[input]) {
        seen[input] = true;
        queue.push_back(input);
      }
    }
  }
  return out;
}

ClosureStats DerivationSet::stats(std::size_t root) const {
  ClosureStats stats;
  const auto members = closure(root);
  stats.nodes = members.size();

  std::vector<std::size_t> depth(drvs_.size(), 0);
  std::vector<bool> in_closure(drvs_.size(), false);
  for (const auto id : members) in_closure[id] = true;

  // BFS depth from root.
  std::deque<std::size_t> queue{root};
  std::vector<bool> seen(drvs_.size(), false);
  seen[root] = true;
  while (!queue.empty()) {
    const std::size_t id = queue.front();
    queue.pop_front();
    stats.max_depth = std::max(stats.max_depth, depth[id]);
    for (const std::size_t input : drvs_[id].inputs) {
      if (in_closure[input]) stats.edges++;
      if (!seen[input]) {
        seen[input] = true;
        depth[input] = depth[id] + 1;
        queue.push_back(input);
      }
    }
  }
  for (const auto id : members) {
    switch (drvs_[id].kind) {
      case DrvKind::Source:
        ++stats.sources;
        break;
      case DrvKind::Bootstrap:
        ++stats.bootstrap;
        break;
      default:
        break;
    }
  }
  if (stats.nodes > 1) {
    stats.density = static_cast<double>(stats.edges) /
                    (static_cast<double>(stats.nodes) * (stats.nodes - 1));
  }
  return stats;
}

analysis::Digraph DerivationSet::closure_graph(std::size_t root) const {
  analysis::Digraph graph;
  const auto members = closure(root);
  std::vector<bool> in_closure(drvs_.size(), false);
  for (const auto id : members) in_closure[id] = true;
  for (const auto id : members) {
    graph.add_node(drvs_[id].name);
  }
  for (const auto id : members) {
    for (const std::size_t input : drvs_[id].inputs) {
      if (in_closure[input]) {
        graph.add_edge(drvs_[id].name, drvs_[input].name);
      }
    }
  }
  return graph;
}

}  // namespace depchaos::pkg::nix
