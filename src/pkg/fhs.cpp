#include "depchaos/pkg/fhs.hpp"

#include <algorithm>

#include "depchaos/elf/patcher.hpp"
#include "depchaos/support/error.hpp"

namespace depchaos::pkg::fhs {

std::string Installer::abs_path(const std::string& rel) const {
  if (root_ == "/") return "/" + rel;
  return root_ + "/" + rel;
}

InstallResult Installer::install(const Package& package) {
  InstallResult result = install_interrupted(package, package.files.size());
  manifests_[package.name] = result.written;
  return result;
}

InstallResult Installer::install_interrupted(const Package& package,
                                             std::size_t files_written) {
  InstallResult result;
  const std::size_t count = std::min(files_written, package.files.size());
  for (std::size_t i = 0; i < count; ++i) {
    const PackageFile& file = package.files[i];
    const std::string path = vfs::normalize_path(abs_path(file.rel_path));
    if (const auto it = owners_.find(path);
        it != owners_.end() && it->second != package.name) {
      result.clobbered.push_back(path);
    } else if (owners_.find(path) == owners_.end() && fs_.exists(path)) {
      // Unowned but present: someone wrote it outside the package manager.
      result.clobbered.push_back(path);
    }
    if (file.object) {
      elf::install_object(fs_, path, *file.object);
    } else {
      fs_.write_file(path, file.content);
    }
    owners_[path] = package.name;
    result.written.push_back(path);
  }
  return result;
}

void Installer::remove(const std::string& name) {
  const auto it = manifests_.find(name);
  if (it == manifests_.end()) {
    throw Error("fhs: package not installed: " + name);
  }
  for (const auto& path : it->second) {
    const auto owner = owners_.find(path);
    if (owner == owners_.end() || owner->second != name) {
      continue;  // clobbered by a later install; not ours to delete anymore
    }
    if (fs_.exists(path)) fs_.remove(path);
    owners_.erase(owner);
  }
  manifests_.erase(it);
}

std::optional<std::string> Installer::owner_of(
    const std::string& abs_path) const {
  const auto it = owners_.find(vfs::normalize_path(abs_path));
  if (it == owners_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::string> Installer::installed() const {
  std::vector<std::string> names;
  names.reserve(manifests_.size());
  for (const auto& [name, manifest] : manifests_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace depchaos::pkg::fhs
