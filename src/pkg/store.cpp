#include "depchaos/pkg/store.hpp"

#include <algorithm>
#include <deque>
#include <set>

#include "depchaos/elf/patcher.hpp"
#include "depchaos/support/error.hpp"
#include "depchaos/support/sha256.hpp"

namespace depchaos::pkg::store {

Store::Store(vfs::FileSystem& fs, std::string root, LinkStyle link_style)
    : fs_(fs), root_(std::move(root)), link_style_(link_style) {
  profiles_root_ = root_ + "/../profiles";
  profiles_root_ = vfs::normalize_path(profiles_root_);
  fs_.mkdir_p(root_);
  fs_.mkdir_p(profiles_root_);
}

std::string Store::compute_hash(const PackageSpec& spec) const {
  // Pessimistic hashing (§II-D): identity + payload + the hash of every
  // dependency prefix (which itself embeds that package's closure hash).
  support::Sha256 hasher;
  hasher.update(spec.name);
  hasher.update("\0", 1);
  hasher.update(spec.version);
  hasher.update("\0", 1);
  for (const auto& file : spec.files) {
    hasher.update(file.rel_path);
    if (file.object) {
      hasher.update(elf::serialize(*file.object));
    } else {
      hasher.update(file.content);
    }
  }
  for (const auto& dep : spec.deps) {
    hasher.update(dep);
    hasher.update("\0", 1);
  }
  auto hex = hasher.hex_digest();
  hex.resize(16);
  return hex;
}

const InstalledPackage& Store::add(const PackageSpec& spec) {
  for (const auto& dep : spec.deps) {
    if (!fs_.exists(dep)) {
      throw ResolveError("store: dependency prefix missing: " + dep);
    }
  }
  InstalledPackage pkg;
  pkg.name = spec.name;
  pkg.version = spec.version;
  pkg.hash = compute_hash(spec);
  pkg.prefix = root_ + "/" + pkg.hash + "-" + spec.name + "-" + spec.version;
  pkg.deps = spec.deps;

  if (by_hash_.contains(pkg.hash)) {
    // Identical inputs: already in the store; return the existing one.
    return installed_[by_hash_.at(pkg.hash)];
  }

  // Search path: own lib dir plus every direct dependency's lib dir.
  std::vector<std::string> search_dirs = {pkg.prefix + "/lib"};
  for (const auto& dep : spec.deps) search_dirs.push_back(dep + "/lib");

  for (const auto& file : spec.files) {
    const std::string path =
        vfs::normalize_path(pkg.prefix + "/" + file.rel_path);
    if (file.object) {
      elf::Object object = *file.object;
      if (link_style_ == LinkStyle::Rpath) {
        object.dyn.rpath = search_dirs;
        object.dyn.runpath.clear();
      } else {
        object.dyn.runpath = search_dirs;
        object.dyn.rpath.clear();
      }
      elf::install_object(fs_, path, object);
      pkg.objects.push_back(path);
    } else {
      fs_.write_file(path, file.content);
    }
  }
  fs_.mkdir_p(pkg.prefix);  // even for file-less packages

  installed_.push_back(std::move(pkg));
  const std::size_t index = installed_.size() - 1;
  by_hash_[installed_[index].hash] = index;
  by_name_[installed_[index].name] = index;
  return installed_[index];
}

const InstalledPackage* Store::find(const std::string& name_or_hash) const {
  if (const auto it = by_hash_.find(name_or_hash); it != by_hash_.end()) {
    return &installed_[it->second];
  }
  if (const auto it = by_name_.find(name_or_hash); it != by_name_.end()) {
    return &installed_[it->second];
  }
  return nullptr;
}

std::vector<std::string> Store::closure(const InstalledPackage& package) const {
  std::vector<std::string> out;
  std::set<std::string> seen;
  std::deque<std::string> queue{package.prefix};
  seen.insert(package.prefix);
  while (!queue.empty()) {
    const std::string prefix = queue.front();
    queue.pop_front();
    out.push_back(prefix);
    // Find the installed record for this prefix.
    for (const auto& pkg : installed_) {
      if (pkg.prefix != prefix) continue;
      for (const auto& dep : pkg.deps) {
        if (seen.insert(dep).second) queue.push_back(dep);
      }
      break;
    }
  }
  return out;
}

std::vector<std::string> Store::dependents_closure(
    const std::string& prefix) const {
  std::vector<std::string> affected;
  std::set<std::string> dirty{prefix};
  // installed_ is in installation order, so dependents always come after
  // their dependencies; one forward pass reaches the fixpoint.
  for (const auto& pkg : installed_) {
    if (dirty.contains(pkg.prefix)) continue;
    for (const auto& dep : pkg.deps) {
      if (dirty.contains(dep)) {
        dirty.insert(pkg.prefix);
        affected.push_back(pkg.prefix);
        break;
      }
    }
  }
  return affected;
}

std::uint64_t Store::rebuild_bytes(const std::string& prefix) const {
  std::uint64_t total = fs_.disk_usage(prefix);
  for (const auto& dependent : dependents_closure(prefix)) {
    total += fs_.disk_usage(dependent);
  }
  return total;
}

Store::GcResult Store::garbage_collect() {
  // Roots: every symlink in every surviving generation dir points into some
  // package prefix.
  std::set<std::string> live;
  std::deque<std::string> queue;
  if (fs_.exists(profiles_root_)) {
    for (const auto& entry : fs_.list_dir(profiles_root_)) {
      if (!entry.starts_with("generation-")) continue;
      const std::string gen_dir = profiles_root_ + "/" + entry;
      for (const auto& sub : {std::string("bin"), std::string("lib")}) {
        const std::string sub_dir = gen_dir + "/" + sub;
        if (!fs_.exists(sub_dir)) continue;
        for (const auto& name : fs_.list_dir(sub_dir)) {
          const auto target = fs_.peek_link_target(sub_dir + "/" + name);
          if (!target.has_value() || !target->starts_with(root_ + "/")) {
            continue;
          }
          // <root>/<hash>-<name>-<version>/<sub>/<file> -> the prefix is the
          // first component under the store root.
          const auto rest = target->substr(root_.size() + 1);
          const auto slash = rest.find('/');
          const std::string prefix =
              root_ + "/" + (slash == std::string::npos ? rest
                                                        : rest.substr(0, slash));
          if (live.insert(prefix).second) queue.push_back(prefix);
        }
      }
    }
  }
  // Dependency closure of the roots.
  while (!queue.empty()) {
    const std::string prefix = std::move(queue.front());
    queue.pop_front();
    for (const auto& pkg : installed_) {
      if (pkg.prefix != prefix) continue;
      for (const auto& dep : pkg.deps) {
        if (live.insert(dep).second) queue.push_back(dep);
      }
      break;
    }
  }

  GcResult result;
  std::deque<InstalledPackage> survivors;
  by_hash_.clear();
  by_name_.clear();
  for (auto& pkg : installed_) {
    if (live.contains(pkg.prefix)) {
      by_hash_[pkg.hash] = survivors.size();
      by_name_[pkg.name] = survivors.size();
      survivors.push_back(std::move(pkg));
      continue;
    }
    result.bytes_freed += fs_.disk_usage(pkg.prefix);
    result.removed_prefixes.push_back(pkg.prefix);
    if (fs_.exists(pkg.prefix)) fs_.remove(pkg.prefix, /*recursive=*/true);
  }
  installed_ = std::move(survivors);
  return result;
}

void Store::set_profile(const std::vector<std::string>& prefixes) {
  const int generation = current_generation_ + 1;
  const std::string gen_dir =
      profiles_root_ + "/generation-" + std::to_string(generation);
  // Build the new generation fully before flipping the `current` symlink —
  // this is the commit model (§II-C/§II-D): readers see the old profile
  // until the atomic rename.
  for (const auto& prefix : prefixes) {
    for (const auto& sub : {std::string("bin"), std::string("lib")}) {
      const std::string src_dir = prefix + "/" + sub;
      if (!fs_.exists(src_dir)) continue;
      for (const auto& name : fs_.list_dir(src_dir)) {
        const std::string link = gen_dir + "/" + sub + "/" + name;
        if (!fs_.exists(link)) {
          fs_.mkdir_p(vfs::dirname(link));
          fs_.symlink(src_dir + "/" + name, link);
        }
      }
    }
  }
  fs_.mkdir_p(gen_dir);
  // Atomic flip: write the new symlink beside, then rename over.
  const std::string tmp_link = profiles_root_ + "/.current.tmp";
  if (fs_.exists(tmp_link)) fs_.remove(tmp_link);
  fs_.symlink(gen_dir, tmp_link);
  fs_.rename(tmp_link, profiles_root_ + "/current");
  current_generation_ = generation;
}

void Store::rollback() {
  if (current_generation_ <= 1) {
    throw Error("store: no generation to roll back to");
  }
  const int generation = current_generation_ - 1;
  const std::string gen_dir =
      profiles_root_ + "/generation-" + std::to_string(generation);
  if (!fs_.exists(gen_dir)) {
    throw Error("store: missing generation dir: " + gen_dir);
  }
  const std::string tmp_link = profiles_root_ + "/.current.tmp";
  if (fs_.exists(tmp_link)) fs_.remove(tmp_link);
  fs_.symlink(gen_dir, tmp_link);
  fs_.rename(tmp_link, profiles_root_ + "/current");
  current_generation_ = generation;
}

}  // namespace depchaos::pkg::store
