#include "depchaos/pkg/deb_version.hpp"

#include <cctype>
#include <map>
#include <mutex>

#include "depchaos/support/error.hpp"

namespace depchaos::pkg::deb {

namespace {

/// Character order for the non-digit chunks: '~' before end-of-string,
/// end-of-string before letters, letters before everything else.
int char_order(char c) {
  if (c == '~') return -1;
  if (c == '\0') return 0;
  if (std::isalpha(static_cast<unsigned char>(c)) != 0) return c;
  return c + 256;  // non-letters after all letters
}

/// Compare one upstream/revision component with the alternating-chunk rule.
int compare_component(std::string_view a, std::string_view b) {
  std::size_t i = 0, j = 0;
  while (i < a.size() || j < b.size()) {
    // Non-digit run.
    while ((i < a.size() && !std::isdigit(static_cast<unsigned char>(a[i]))) ||
           (j < b.size() && !std::isdigit(static_cast<unsigned char>(b[j])))) {
      const char ca = (i < a.size() &&
                       !std::isdigit(static_cast<unsigned char>(a[i])))
                          ? a[i]
                          : '\0';
      const char cb = (j < b.size() &&
                       !std::isdigit(static_cast<unsigned char>(b[j])))
                          ? b[j]
                          : '\0';
      if (ca == '\0' && cb == '\0') break;
      const int diff = char_order(ca) - char_order(cb);
      if (diff != 0) return diff;
      if (ca != '\0') ++i;
      if (cb != '\0') ++j;
    }
    // Digit run: strip leading zeros, compare by length then lexically.
    std::size_t ai = i, bj = j;
    while (ai < a.size() && std::isdigit(static_cast<unsigned char>(a[ai]))) {
      ++ai;
    }
    while (bj < b.size() && std::isdigit(static_cast<unsigned char>(b[bj]))) {
      ++bj;
    }
    std::string_view da = a.substr(i, ai - i);
    std::string_view db = b.substr(j, bj - j);
    while (!da.empty() && da.front() == '0') da.remove_prefix(1);
    while (!db.empty() && db.front() == '0') db.remove_prefix(1);
    if (da.size() != db.size()) {
      return da.size() < db.size() ? -1 : 1;
    }
    const int cmp = da.compare(db);
    if (cmp != 0) return cmp;
    i = ai;
    j = bj;
  }
  return 0;
}

struct Parts {
  long epoch = 0;
  std::string_view upstream;
  std::string_view revision;
};

Parts split_version(std::string_view text) {
  Parts parts;
  if (const auto colon = text.find(':'); colon != std::string_view::npos) {
    const auto epoch_text = text.substr(0, colon);
    parts.epoch = 0;
    for (const char c : epoch_text) {
      if (!std::isdigit(static_cast<unsigned char>(c))) {
        throw ParseError("bad epoch in version: " + std::string(text));
      }
      parts.epoch = parts.epoch * 10 + (c - '0');
    }
    text = text.substr(colon + 1);
  }
  if (const auto dash = text.rfind('-'); dash != std::string_view::npos) {
    parts.upstream = text.substr(0, dash);
    parts.revision = text.substr(dash + 1);
  } else {
    parts.upstream = text;
    parts.revision = "0";
  }
  return parts;
}

}  // namespace

int compare_versions(std::string_view a, std::string_view b) {
  const Parts pa = split_version(a);
  const Parts pb = split_version(b);
  if (pa.epoch != pb.epoch) return pa.epoch < pb.epoch ? -1 : 1;
  if (const int cmp = compare_component(pa.upstream, pb.upstream); cmp != 0) {
    return cmp;
  }
  return compare_component(pa.revision, pb.revision);
}

bool version_satisfies(std::string_view candidate, std::string_view relation,
                       std::string_view wanted) {
  const int cmp = compare_versions(candidate, wanted);
  if (relation == "<<") return cmp < 0;
  if (relation == "<=") return cmp <= 0;
  if (relation == "=") return cmp == 0;
  if (relation == ">=") return cmp >= 0;
  if (relation == ">>") return cmp > 0;
  throw ParseError("unknown version relation: " + std::string(relation));
}

bool dep_accepts(const DepSpec& dep, std::string_view version) {
  if (dep.kind == DepKind::Unversioned) return true;
  return version_satisfies(version, dep.relation, dep.version);
}

namespace {

ConsistencyReport check_range(
    const std::vector<Package>& archive,
    const std::map<std::string, std::vector<const Package*>>& by_name,
    std::size_t begin, std::size_t end) {
  ConsistencyReport report;
  for (std::size_t i = begin; i < end; ++i) {
    const Package& pkg = archive[i];
    for (const auto& dep : pkg.depends) {
      ++report.deps_checked;
      const auto it = by_name.find(dep.package);
      if (it == by_name.end()) {
        report.broken.push_back(BrokenDep{pkg.name, dep, true});
        continue;
      }
      bool satisfied = false;
      for (const Package* candidate : it->second) {
        if (dep_accepts(dep, candidate->version)) {
          satisfied = true;
          break;
        }
      }
      if (!satisfied) {
        report.broken.push_back(BrokenDep{pkg.name, dep, false});
      }
    }
  }
  return report;
}

std::map<std::string, std::vector<const Package*>> index_archive(
    const std::vector<Package>& archive) {
  std::map<std::string, std::vector<const Package*>> by_name;
  for (const auto& pkg : archive) {
    by_name[pkg.name].push_back(&pkg);
  }
  return by_name;
}

}  // namespace

ConsistencyReport check_archive(const std::vector<Package>& archive) {
  return check_range(archive, index_archive(archive), 0, archive.size());
}

ConsistencyReport check_archive_parallel(support::ThreadPool& pool,
                                         const std::vector<Package>& archive) {
  const auto by_name = index_archive(archive);
  const std::size_t shards = pool.size() * 4;
  const std::size_t chunk = (archive.size() + shards - 1) / std::max<std::size_t>(1, shards);
  std::vector<ConsistencyReport> partials(shards);
  std::mutex done;
  support::parallel_for(
      pool, shards,
      [&](std::size_t shard) {
        const std::size_t begin = shard * chunk;
        const std::size_t end = std::min(archive.size(), begin + chunk);
        if (begin >= end) return;
        partials[shard] = check_range(archive, by_name, begin, end);
      },
      /*min_chunk=*/1);
  ConsistencyReport report;
  for (auto& partial : partials) {
    report.deps_checked += partial.deps_checked;
    report.broken.insert(report.broken.end(),
                         std::make_move_iterator(partial.broken.begin()),
                         std::make_move_iterator(partial.broken.end()));
  }
  return report;
}

}  // namespace depchaos::pkg::deb
