#include "depchaos/pkg/pip.hpp"

#include "depchaos/support/error.hpp"
#include "depchaos/support/strings.hpp"

namespace depchaos::pkg::pip {

int compare_py_versions(std::string_view a, std::string_view b) {
  const auto parts_a = support::split_nonempty(a, '.');
  const auto parts_b = support::split_nonempty(b, '.');
  const std::size_t n = std::max(parts_a.size(), parts_b.size());
  for (std::size_t i = 0; i < n; ++i) {
    const long va = i < parts_a.size() ? std::stol(parts_a[i]) : 0;
    const long vb = i < parts_b.size() ? std::stol(parts_b[i]) : 0;
    if (va != vb) return va < vb ? -1 : 1;
  }
  return 0;
}

SitePackages::SitePackages(vfs::FileSystem& fs, std::string dir)
    : fs_(fs), dir_(vfs::normalize_path(dir)) {
  fs_.mkdir_p(dir_);
}

std::string SitePackages::metadata_path(const PyPackage& package) const {
  return dir_ + "/" + package.name + "-" + package.version + ".dist-info";
}

PipInstallResult SitePackages::install(const PyPackage& package) {
  PipInstallResult result;
  if (const auto existing = installed_version(package.name)) {
    result.replaced_version = existing->version;
    uninstall(package.name);
  }
  std::string metadata = "Name: " + package.name + "\n" +
                         "Version: " + package.version + "\n";
  for (const auto& req : package.requirements) {
    metadata += "Requires: " + req.name;
    if (!req.min_version.empty()) metadata += ">=" + req.min_version;
    metadata += "\n";
  }
  fs_.write_file(metadata_path(package), metadata);
  return result;
}

void SitePackages::uninstall(const std::string& name) {
  for (const auto& entry : fs_.list_dir(dir_)) {
    if (entry.starts_with(name + "-") && entry.ends_with(".dist-info")) {
      fs_.remove(dir_ + "/" + entry);
      return;
    }
  }
}

std::optional<PyPackage> SitePackages::installed_version(
    const std::string& name) const {
  for (const auto& pkg : list()) {
    if (pkg.name == name) return pkg;
  }
  return std::nullopt;
}

std::vector<PyPackage> SitePackages::list() const {
  std::vector<PyPackage> out;
  for (const auto& entry : fs_.list_dir(dir_)) {
    if (!entry.ends_with(".dist-info")) continue;
    const vfs::FileData* data = fs_.peek(dir_ + "/" + entry);
    if (data == nullptr) continue;
    PyPackage pkg;
    for (const auto& line : support::split(data->bytes, '\n')) {
      if (line.starts_with("Name: ")) {
        pkg.name = line.substr(6);
      } else if (line.starts_with("Version: ")) {
        pkg.version = line.substr(9);
      } else if (line.starts_with("Requires: ")) {
        const std::string spec = line.substr(10);
        Requirement req;
        if (const auto ge = spec.find(">="); ge != std::string::npos) {
          req.name = spec.substr(0, ge);
          req.min_version = spec.substr(ge + 2);
        } else {
          req.name = spec;
        }
        pkg.requirements.push_back(std::move(req));
      }
    }
    out.push_back(std::move(pkg));
  }
  return out;
}

std::vector<std::string> SitePackages::check() const {
  std::vector<std::string> broken;
  const auto packages = list();
  for (const auto& pkg : packages) {
    for (const auto& req : pkg.requirements) {
      const PyPackage* found = nullptr;
      for (const auto& candidate : packages) {
        if (candidate.name == req.name) {
          found = &candidate;
          break;
        }
      }
      if (found == nullptr) {
        broken.push_back(pkg.name + " requires " + req.name +
                         ", which is not installed");
        continue;
      }
      if (!req.min_version.empty() &&
          compare_py_versions(found->version, req.min_version) < 0) {
        broken.push_back(pkg.name + " requires " + req.name + ">=" +
                         req.min_version + ", but " + found->version +
                         " is installed");
      }
    }
  }
  return broken;
}

}  // namespace depchaos::pkg::pip
