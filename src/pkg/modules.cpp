#include "depchaos/pkg/modules.hpp"

#include <algorithm>

#include "depchaos/support/error.hpp"

namespace depchaos::pkg::modules {

void ModuleSystem::add(Module module) {
  available_[module.name] = std::move(module);
}

bool ModuleSystem::is_loaded(const std::string& name) const {
  return std::find(load_order_.begin(), load_order_.end(), name) !=
         load_order_.end();
}

void ModuleSystem::load(const std::string& name) {
  std::vector<std::string> chain;
  load_recursive(name, chain);
}

void ModuleSystem::load_recursive(const std::string& name,
                                  std::vector<std::string>& chain) {
  if (is_loaded(name)) return;
  if (std::find(chain.begin(), chain.end(), name) != chain.end()) {
    throw Error("modules: dependency cycle through " + name);
  }
  const auto it = available_.find(name);
  if (it == available_.end()) {
    throw Error("modules: no such module: " + name);
  }
  chain.push_back(name);
  const Module& module = it->second;
  for (const auto& dep : module.requires_modules) {
    load_recursive(dep, chain);
  }
  chain.pop_back();

  // Family swap: unload anything matching a conflict prefix.
  for (const auto& prefix : module.conflicts) {
    for (const auto& loaded_name : loaded()) {
      if (loaded_name != name && loaded_name.starts_with(prefix)) {
        unload(loaded_name);
      }
    }
  }
  load_order_.push_back(name);
}

void ModuleSystem::unload(const std::string& name) {
  const auto it = std::find(load_order_.begin(), load_order_.end(), name);
  if (it != load_order_.end()) load_order_.erase(it);
}

std::vector<std::string> ModuleSystem::loaded() const {
  std::vector<std::string> out(load_order_.rbegin(), load_order_.rend());
  return out;
}

loader::Environment ModuleSystem::environment() const {
  loader::Environment env;
  // Most recently loaded module's paths first — lmod prepend semantics.
  for (auto it = load_order_.rbegin(); it != load_order_.rend(); ++it) {
    const Module& module = available_.at(*it);
    for (const auto& dir : module.ld_library_path_prepend) {
      env.ld_library_path.push_back(dir);
    }
    for (const auto& preload : module.ld_preload_append) {
      env.ld_preload.push_back(preload);
    }
  }
  return env;
}

}  // namespace depchaos::pkg::modules
