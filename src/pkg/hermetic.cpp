#include "depchaos/pkg/hermetic.hpp"

#include <algorithm>

#include "depchaos/support/error.hpp"
#include "depchaos/support/sha256.hpp"

namespace depchaos::pkg::hermetic {

void Image::write_file(std::string path, vfs::FileData data) {
  staging_.entries[vfs::normalize_path(path)] =
      LayerEntry{false, std::move(data)};
}

void Image::remove(std::string path) {
  staging_.entries[vfs::normalize_path(path)] = LayerEntry{true, {}};
}

std::string Image::commit(std::string message) {
  if (staging_.entries.empty()) return head();
  support::Sha256 hasher;
  hasher.update(head());
  for (const auto& [path, entry] : staging_.entries) {
    hasher.update(path);
    hasher.update(entry.whiteout ? "\0w" : "\0f", 2);
    hasher.update(entry.data.bytes);
  }
  staging_.id = hasher.hex_digest().substr(0, 16);
  staging_.message = std::move(message);
  // Committing on a rolled-back head discards the abandoned future, like
  // `git reset --hard` followed by new commits.
  commits_.resize(head_count_);
  commits_.push_back(std::move(staging_));
  staging_ = Layer{};
  head_count_ = commits_.size();
  return commits_.back().id;
}

std::vector<std::string> Image::log() const {
  std::vector<std::string> out;
  for (std::size_t i = 0; i < head_count_; ++i) out.push_back(commits_[i].id);
  return out;
}

std::string Image::head() const {
  return head_count_ == 0 ? std::string{} : commits_[head_count_ - 1].id;
}

void Image::rollback() {
  if (head_count_ == 0) {
    throw Error("hermetic: no commit to roll back");
  }
  --head_count_;
  staging_ = Layer{};  // staged changes are abandoned with the deployment
}

void Image::checkout_commit(const std::string& id) {
  for (std::size_t i = 0; i < commits_.size(); ++i) {
    if (commits_[i].id == id) {
      head_count_ = i + 1;
      staging_ = Layer{};
      return;
    }
  }
  throw Error("hermetic: unknown commit: " + id);
}

std::optional<vfs::FileData> Image::read(const std::string& path) const {
  const std::string norm = vfs::normalize_path(path);
  // Staging first, then layers newest-to-oldest: overlayfs upper-dir rules.
  if (const auto it = staging_.entries.find(norm);
      it != staging_.entries.end()) {
    if (it->second.whiteout) return std::nullopt;
    return it->second.data;
  }
  for (std::size_t i = head_count_; i-- > 0;) {
    const auto it = commits_[i].entries.find(norm);
    if (it == commits_[i].entries.end()) continue;
    if (it->second.whiteout) return std::nullopt;
    return it->second.data;
  }
  return std::nullopt;
}

vfs::FileSystem Image::materialize() const {
  vfs::FileSystem fs;
  // Apply oldest-to-newest so later layers override and whiteouts delete.
  auto apply = [&fs](const Layer& layer) {
    for (const auto& [path, entry] : layer.entries) {
      if (entry.whiteout) {
        if (fs.exists(path)) fs.remove(path);
      } else {
        fs.write_file(path, entry.data);
      }
    }
  };
  for (std::size_t i = 0; i < head_count_; ++i) apply(commits_[i]);
  apply(staging_);
  return fs;
}

}  // namespace depchaos::pkg::hermetic
