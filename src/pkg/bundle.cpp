#include "depchaos/pkg/bundle.hpp"

#include "depchaos/elf/patcher.hpp"
#include "depchaos/vfs/vfs.hpp"

namespace depchaos::pkg::bundle {

Bundle create_bundle(vfs::FileSystem& fs, const BundleSpec& spec,
                     const std::string& base_dir) {
  Bundle bundle;
  bundle.root = vfs::normalize_path(base_dir + "/" + spec.name);
  bundle.exe_path = bundle.root + "/bin/" + spec.name;
  bundle.lib_dir = bundle.root + "/lib";

  elf::Object exe = spec.exe;
  exe.kind = elf::ObjectKind::Executable;
  exe.dyn.runpath = {"$ORIGIN/../lib"};
  elf::install_object(fs, bundle.exe_path, exe);

  for (const auto& [soname, object] : spec.libs) {
    elf::Object lib = object;
    lib.kind = elf::ObjectKind::SharedObject;
    if (lib.dyn.soname.empty()) lib.dyn.soname = soname;
    if (spec.runpath_on_libs) lib.dyn.runpath = {"$ORIGIN"};
    elf::install_object(fs, bundle.lib_dir + "/" + soname, lib);
  }
  return bundle;
}

Bundle relocate_bundle(vfs::FileSystem& fs, const Bundle& bundle,
                       const std::string& new_root) {
  const std::string target = vfs::normalize_path(new_root);
  fs.rename(bundle.root, target);
  const std::string name = vfs::basename(bundle.exe_path);
  return Bundle{target, target + "/bin/" + name, target + "/lib"};
}

}  // namespace depchaos::pkg::bundle
