#include "depchaos/pkg/deb.hpp"

#include <atomic>

#include "depchaos/support/error.hpp"
#include "depchaos/support/strings.hpp"

namespace depchaos::pkg::deb {

using support::split;
using support::trim;

std::string_view dep_kind_name(DepKind kind) {
  switch (kind) {
    case DepKind::Unversioned:
      return "Unversioned";
    case DepKind::VersionRange:
      return "Version Range";
    case DepKind::Exact:
      return "Exact";
  }
  return "?";
}

namespace {

DepSpec parse_single_dep(std::string_view text) {
  DepSpec spec;
  const auto paren = text.find('(');
  if (paren == std::string_view::npos) {
    spec.package = std::string(trim(text));
    spec.kind = DepKind::Unversioned;
    if (spec.package.empty()) {
      throw ParseError("empty dependency element");
    }
    return spec;
  }
  spec.package = std::string(trim(text.substr(0, paren)));
  const auto close = text.find(')', paren);
  if (close == std::string_view::npos || spec.package.empty()) {
    throw ParseError("malformed dependency: '" + std::string(text) + "'");
  }
  const std::string_view constraint =
      trim(text.substr(paren + 1, close - paren - 1));
  // Relation is the leading run of [<>=] characters.
  std::size_t rel_end = 0;
  while (rel_end < constraint.size() &&
         (constraint[rel_end] == '<' || constraint[rel_end] == '>' ||
          constraint[rel_end] == '=')) {
    ++rel_end;
  }
  spec.relation = std::string(constraint.substr(0, rel_end));
  spec.version = std::string(trim(constraint.substr(rel_end)));
  if (spec.relation.empty() || spec.version.empty()) {
    throw ParseError("malformed constraint: '" + std::string(text) + "'");
  }
  spec.kind = (spec.relation == "=") ? DepKind::Exact : DepKind::VersionRange;
  return spec;
}

}  // namespace

std::vector<DepSpec> parse_depends(std::string_view value) {
  std::vector<DepSpec> out;
  for (const auto& element : split(value, ',')) {
    const auto trimmed = trim(element);
    if (trimmed.empty()) continue;
    // Alternatives: "a | b | c" — each classified independently.
    for (const auto& alt : split(trimmed, '|')) {
      const auto alt_trimmed = trim(alt);
      if (alt_trimmed.empty()) continue;
      out.push_back(parse_single_dep(alt_trimmed));
    }
  }
  return out;
}

std::vector<Package> parse_control(std::string_view text) {
  std::vector<Package> out;
  Package current;
  bool in_paragraph = false;
  std::string last_field;

  auto flush = [&] {
    if (in_paragraph) {
      if (current.name.empty()) {
        throw ParseError("control paragraph without Package field");
      }
      out.push_back(std::move(current));
      current = Package{};
      in_paragraph = false;
    }
  };

  for (const auto& raw_line : split(text, '\n')) {
    if (trim(raw_line).empty()) {
      flush();
      continue;
    }
    if (raw_line.front() == ' ' || raw_line.front() == '\t') {
      continue;  // continuation line; field values we care about fit one line
    }
    const auto colon = raw_line.find(':');
    if (colon == std::string::npos) {
      throw ParseError("malformed control line: '" + raw_line + "'");
    }
    in_paragraph = true;
    const std::string field = std::string(trim(raw_line.substr(0, colon)));
    const std::string value = std::string(trim(raw_line.substr(colon + 1)));
    last_field = field;
    if (field == "Package") {
      current.name = value;
    } else if (field == "Version") {
      current.version = value;
    } else if (field == "Section") {
      current.section = value;
    } else if (field == "Depends" || field == "Pre-Depends") {
      auto deps = parse_depends(value);
      current.depends.insert(current.depends.end(),
                             std::make_move_iterator(deps.begin()),
                             std::make_move_iterator(deps.end()));
    }
    // Other fields (Maintainer, Description, ...) are tolerated and skipped.
  }
  flush();
  return out;
}

std::string to_control(const std::vector<Package>& packages) {
  std::string out;
  for (const auto& pkg : packages) {
    out += "Package: " + pkg.name + "\n";
    if (!pkg.version.empty()) out += "Version: " + pkg.version + "\n";
    if (!pkg.section.empty()) out += "Section: " + pkg.section + "\n";
    if (!pkg.depends.empty()) {
      out += "Depends: ";
      for (std::size_t i = 0; i < pkg.depends.size(); ++i) {
        const auto& dep = pkg.depends[i];
        if (i != 0) out += ", ";
        out += dep.package;
        if (dep.kind != DepKind::Unversioned) {
          out += " (" + dep.relation + " " + dep.version + ")";
        }
      }
      out += "\n";
    }
    out += "\n";
  }
  return out;
}

DepTypeCounts& DepTypeCounts::operator+=(const DepTypeCounts& other) {
  unversioned += other.unversioned;
  range += other.range;
  exact += other.exact;
  return *this;
}

DepTypeCounts classify(const std::vector<Package>& packages) {
  DepTypeCounts counts;
  for (const auto& pkg : packages) {
    for (const auto& dep : pkg.depends) {
      switch (dep.kind) {
        case DepKind::Unversioned:
          ++counts.unversioned;
          break;
        case DepKind::VersionRange:
          ++counts.range;
          break;
        case DepKind::Exact:
          ++counts.exact;
          break;
      }
    }
  }
  return counts;
}

DepTypeCounts classify_parallel(support::ThreadPool& pool,
                                const std::vector<Package>& packages) {
  std::atomic<std::uint64_t> unversioned{0}, range{0}, exact{0};
  support::parallel_for(
      pool, packages.size(),
      [&](std::size_t i) {
        DepTypeCounts local;
        for (const auto& dep : packages[i].depends) {
          switch (dep.kind) {
            case DepKind::Unversioned:
              ++local.unversioned;
              break;
            case DepKind::VersionRange:
              ++local.range;
              break;
            case DepKind::Exact:
              ++local.exact;
              break;
          }
        }
        unversioned.fetch_add(local.unversioned, std::memory_order_relaxed);
        range.fetch_add(local.range, std::memory_order_relaxed);
        exact.fetch_add(local.exact, std::memory_order_relaxed);
      },
      /*min_chunk=*/1024);
  DepTypeCounts counts;
  counts.unversioned = unversioned.load();
  counts.range = range.load();
  counts.exact = exact.load();
  return counts;
}

}  // namespace depchaos::pkg::deb
