// Language-level package manager model (§II-E: applications are "frequently
// more ... pulled from package managers like Spack, vcpkg, pip, conda" —
// layered ON TOP of the system models, with their own resolution rules).
//
// pip's site-packages is a FLAT namespace: exactly one version of each
// distribution can be installed; `pip install` silently replaces whatever
// was there, potentially breaking the requirements of other installed
// packages. `pip check` is the after-the-fact consistency pass. Isolation
// (venv) means a separate SitePackages directory per application — the
// store-model move applied at the language layer.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "depchaos/vfs/vfs.hpp"

namespace depchaos::pkg::pip {

struct Requirement {
  std::string name;
  std::string min_version;  // "" = any ("foo" vs "foo>=1.2")

  friend bool operator==(const Requirement&, const Requirement&) = default;
};

struct PyPackage {
  std::string name;
  std::string version;  // dotted-numeric
  std::vector<Requirement> requirements;
};

struct PipInstallResult {
  /// Version that was replaced in place ("" when fresh).
  std::string replaced_version;
};

/// Numeric dotted-version comparison (PEP 440 reduced to release segments).
int compare_py_versions(std::string_view a, std::string_view b);

class SitePackages {
 public:
  /// `dir` e.g. "/usr/lib/python3.9/site-packages" or a venv's.
  SitePackages(vfs::FileSystem& fs, std::string dir);

  /// pip install: writes <dir>/<name>-<version>.dist-info, REPLACING any
  /// other version of the same distribution (the flat-namespace hazard).
  PipInstallResult install(const PyPackage& package);

  void uninstall(const std::string& name);

  std::optional<PyPackage> installed_version(const std::string& name) const;
  std::vector<PyPackage> list() const;

  /// `pip check`: every requirement of every installed package, verified
  /// against the flat namespace. Returns human-readable breakages.
  std::vector<std::string> check() const;

  const std::string& dir() const { return dir_; }

 private:
  std::string metadata_path(const PyPackage& package) const;

  vfs::FileSystem& fs_;
  std::string dir_;
};

}  // namespace depchaos::pkg::pip
