// Nix-style derivations (§II-D, Fig 2).
//
// A derivation is a build recipe whose identity covers its full input
// closure. Fig 2 visualizes the Ruby derivation's build+runtime closure in
// nixpkgs — 453 dependencies, most of them bootstrap-stage compiler and
// shell machinery. This module models derivation graphs with enough
// structure (bootstrap stages, fetchurl sources, patches, builders) for the
// workload generator to synthesize closures with the same shape.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "depchaos/analysis/graph.hpp"

namespace depchaos::pkg::nix {

enum class DrvKind : std::uint8_t {
  Package,    // ordinary build (gcc, perl, openssl...)
  Source,     // fetchurl tarball / patch file
  Bootstrap,  // bootstrap-stage machinery
  Script,     // setup hooks / builder shell snippets
};

struct Derivation {
  std::string name;  // "ruby-2.7.5.drv"
  DrvKind kind = DrvKind::Package;
  std::vector<std::size_t> inputs;  // indices into DerivationSet::drvs
};

struct ClosureStats {
  std::size_t nodes = 0;
  std::size_t edges = 0;
  std::size_t sources = 0;
  std::size_t bootstrap = 0;
  std::size_t max_depth = 0;
  double density = 0;
};

class DerivationSet {
 public:
  std::size_t add(std::string name, DrvKind kind,
                  std::vector<std::size_t> inputs = {});

  /// Append one input edge to an existing derivation (used by generators
  /// when growing a closure incrementally).
  void add_input(std::size_t id, std::size_t input);

  const Derivation& at(std::size_t id) const { return drvs_[id]; }
  std::size_t size() const { return drvs_.size(); }

  /// Full input closure of `root` (root included).
  std::vector<std::size_t> closure(std::size_t root) const;

  ClosureStats stats(std::size_t root) const;

  /// Export the closure of `root` as a Digraph (for DOT / Fig 2).
  analysis::Digraph closure_graph(std::size_t root) const;

 private:
  std::vector<Derivation> drvs_;
};

}  // namespace depchaos::pkg::nix
