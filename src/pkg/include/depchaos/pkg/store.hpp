// The Store Model (§II-D): per-package hashed prefixes, explicit dependency
// edges, pessimistic content hashing, atomic profile swap/rollback.
//
// Each package lands in <root>/<hash>-<name>-<version>/ with its own
// FHS-shaped interior. The hash covers the package's identity, its payload,
// and the hashes of its full dependency closure — "any minor change ...
// will cause a domino effect of rebuilds". Binaries are wired to their
// dependencies with RPATH or RUNPATH entries pointing at store prefixes
// (configurable, because the paper's failure modes hinge on which is used).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "depchaos/elf/object.hpp"
#include "depchaos/vfs/vfs.hpp"

namespace depchaos::pkg::store {

enum class LinkStyle : std::uint8_t { Rpath, Runpath };

struct StoreFile {
  std::string rel_path;  // e.g. "lib/libfoo.so.1"
  std::optional<elf::Object> object;
  std::string content;  // used when object is not set
};

struct PackageSpec {
  std::string name;
  std::string version;
  std::vector<StoreFile> files;
  /// Store prefixes of direct dependencies (their lib dirs get added to the
  /// search path of every object in this package).
  std::vector<std::string> deps;
};

struct InstalledPackage {
  std::string name;
  std::string version;
  std::string hash;
  std::string prefix;                // <root>/<hash>-<name>-<version>
  std::vector<std::string> deps;     // dependency prefixes
  std::vector<std::string> objects;  // absolute paths of installed SELFs
};

class Store {
 public:
  explicit Store(vfs::FileSystem& fs, std::string root = "/store",
                 LinkStyle link_style = LinkStyle::Rpath);

  /// Install a package; computes the pessimistic hash, writes files, wires
  /// each SELF object's search path to `deps` lib dirs plus its own.
  const InstalledPackage& add(const PackageSpec& spec);

  /// Lookup by name (latest added wins) or by full hash.
  const InstalledPackage* find(const std::string& name_or_hash) const;

  /// All installed packages, in installation order. (Deque: `add` hands out
  /// stable references that must survive later installs.)
  const std::deque<InstalledPackage>& packages() const { return installed_; }

  /// Full dependency closure (prefixes) of a package, root first.
  std::vector<std::string> closure(const InstalledPackage& package) const;

  /// The §II-D "domino effect": every installed package whose pessimistic
  /// hash changes when `prefix` changes — the reverse-dependency closure,
  /// i.e. what a security update to that package forces you to rebuild.
  std::vector<std::string> dependents_closure(const std::string& prefix) const;

  /// On-disk bytes that a rebuild of `prefix`'s dependents would rewrite
  /// (the update-cost number debated in §III-B).
  std::uint64_t rebuild_bytes(const std::string& prefix) const;

  struct GcResult {
    std::vector<std::string> removed_prefixes;
    std::uint64_t bytes_freed = 0;
  };

  /// Garbage collection: every package reachable from any profile
  /// generation (through its dependency closure) is live; everything else
  /// is deleted from disk and forgotten. With no profiles, everything is
  /// garbage — exactly Nix's semantics.
  GcResult garbage_collect();

  // --- profiles: atomic upgrade / rollback (§II-D) ------------------------

  /// Commit a new generation whose bin/lib view symlinks the given package
  /// prefixes; /profiles/current atomically flips to it.
  void set_profile(const std::vector<std::string>& prefixes);

  /// Flip /profiles/current back one generation. Throws if none.
  void rollback();

  int current_generation() const { return current_generation_; }
  std::string profile_path() const { return profiles_root_ + "/current"; }

  const std::string& root() const { return root_; }
  LinkStyle link_style() const { return link_style_; }

 private:
  std::string compute_hash(const PackageSpec& spec) const;

  vfs::FileSystem& fs_;
  std::string root_;
  std::string profiles_root_;
  LinkStyle link_style_;
  std::deque<InstalledPackage> installed_;
  std::map<std::string, std::size_t> by_hash_;
  std::map<std::string, std::size_t> by_name_;  // latest
  int current_generation_ = 0;
};

}  // namespace depchaos::pkg::store
