// The Self-Referential (Bundled) Model (§II-B): AppDir-style bundles.
//
// An application directory vendoring all its libraries, wired together with
// a $ORIGIN-relative RUNPATH on the executable — the AppImage/AppDir recipe
// the paper describes. Bundles are relocatable: the whole directory can be
// renamed/moved and keeps working, which tests verify.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "depchaos/elf/object.hpp"
#include "depchaos/vfs/vfs.hpp"

namespace depchaos::pkg::bundle {

struct BundleSpec {
  std::string name;
  elf::Object exe;  // needed entries refer to the vendored sonames
  /// (soname, object) pairs vendored into <bundle>/lib.
  std::vector<std::pair<std::string, elf::Object>> libs;
  /// Propagate the $ORIGIN runpath to vendored libs too (so their own
  /// dependencies resolve inside the bundle). AppDir tooling does this.
  bool runpath_on_libs = true;
};

struct Bundle {
  std::string root;      // /apps/<name>
  std::string exe_path;  // /apps/<name>/bin/<name>
  std::string lib_dir;   // /apps/<name>/lib
};

/// Materialize the bundle under `base_dir`. The executable gets
/// RUNPATH=$ORIGIN/../lib so the bundle is relocatable.
Bundle create_bundle(vfs::FileSystem& fs, const BundleSpec& spec,
                     const std::string& base_dir = "/apps");

/// Move a bundle (rename its root) — the click-and-drag install the paper
/// mentions. Returns the updated paths.
Bundle relocate_bundle(vfs::FileSystem& fs, const Bundle& bundle,
                       const std::string& new_root);

}  // namespace depchaos::pkg::bundle
