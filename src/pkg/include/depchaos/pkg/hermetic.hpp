// The Hermetic Root Model (§II-C): layered, committed filesystem images.
//
// OSTree/CoreOS-style: the root filesystem is a stack of immutable layers
// (like overlayfs), deployments are commits, and upgrade/rollback means
// atomically choosing which commit the running system checks out. The
// layout inside remains FHS — the model "adopts any benefits or
// shortcomings of layouts used in addition to it" — so binaries built for
// FHS work unchanged, while the whole OS becomes read-only and versioned.
//
// Layers record file writes and deletions (whiteouts). A commit freezes
// the current staging layer with a content hash; checkout materializes a
// commit chain into a VFS root for the loader to run against.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "depchaos/vfs/vfs.hpp"

namespace depchaos::pkg::hermetic {

struct LayerEntry {
  bool whiteout = false;  // true = path deleted in this layer
  vfs::FileData data;     // valid when !whiteout
};

struct Layer {
  std::string id;  // content hash, assigned at commit
  std::string message;
  std::map<std::string, LayerEntry> entries;  // path -> delta
};

class Image {
 public:
  /// Stage a file write into the (mutable) top layer.
  void write_file(std::string path, vfs::FileData data);
  void write_file(std::string path, std::string bytes) {
    write_file(std::move(path), vfs::FileData{std::move(bytes), 0});
  }

  /// Stage a deletion (whiteout).
  void remove(std::string path);

  /// Freeze the staging layer as a commit; returns its id. Empty staging
  /// layers commit to the same id as the current head (no-op commits are
  /// deduplicated).
  std::string commit(std::string message);

  /// Ids of all commits, oldest first.
  std::vector<std::string> log() const;

  /// Current head commit id ("" when nothing committed).
  std::string head() const;

  /// Move head back one commit (the atomic rollback of §II-C). Staged but
  /// uncommitted changes are discarded. Throws Error with no parent.
  void rollback();

  /// Reset head to an arbitrary commit in the log.
  void checkout_commit(const std::string& id);

  /// Effective contents of `path` at head (+ staging), nullopt if absent.
  std::optional<vfs::FileData> read(const std::string& path) const;

  /// Materialize head (+ staging) into a fresh VFS for execution.
  vfs::FileSystem materialize() const;

  std::size_t staged_changes() const { return staging_.entries.size(); }

 private:
  std::vector<Layer> commits_;
  std::size_t head_count_ = 0;  // commits_[0..head_count_) are active
  Layer staging_;
};

}  // namespace depchaos::pkg::hermetic
