// The HPC Module Model (§II-E): lmod/environment-modules style environment
// mutation. A module prepends directories to LD_LIBRARY_PATH (and possibly
// LD_PRELOAD), which is exactly how the §V-B.1 ROCm failure enters the
// system: the loaded module's paths outrank RUNPATH (Table I) and silently
// redirect library resolution.
//
// Modules can declare conflicts (rocm/4.5 vs rocm/4.3) and dependencies
// (loading a compiler module pulls in its runtime module), mirroring lmod's
// `conflict` and `depends_on` directives.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "depchaos/loader/loader.hpp"

namespace depchaos::pkg::modules {

struct Module {
  std::string name;  // "rocm/4.5"
  std::vector<std::string> ld_library_path_prepend;
  std::vector<std::string> ld_preload_append;
  /// Module-name prefixes this module conflicts with ("rocm" conflicts with
  /// every other rocm/*).
  std::vector<std::string> conflicts;
  /// Modules auto-loaded first.
  std::vector<std::string> requires_modules;
};

class ModuleSystem {
 public:
  /// Register an available module. Replaces any same-named registration.
  void add(Module module);

  /// `module load name`: loads dependencies first, then swaps out any
  /// loaded module matching a conflict prefix (lmod family semantics),
  /// then activates. Throws Error on unknown modules or dependency cycles.
  void load(const std::string& name);

  /// `module unload name`; no-op if not loaded.
  void unload(const std::string& name);

  /// Currently loaded modules, most recently loaded first (the order their
  /// paths appear in LD_LIBRARY_PATH).
  std::vector<std::string> loaded() const;

  bool is_loaded(const std::string& name) const;

  /// Compose the process environment the current module set produces.
  loader::Environment environment() const;

 private:
  void load_recursive(const std::string& name, std::vector<std::string>& chain);

  std::map<std::string, Module> available_;
  std::vector<std::string> load_order_;  // oldest first
};

}  // namespace depchaos::pkg::modules
