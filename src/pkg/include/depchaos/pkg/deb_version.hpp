// Debian version ordering (Debian Policy §5.6.12) and archive consistency.
//
// §II-A: packages "work because, and only because, the maintainers of
// Debian diligently and manually ensure that the full graph of packages in
// a given distribution build, link, and work together." The consistency
// checker makes that implicit contract executable: given an archive, find
// every dependency whose constraint no package version satisfies.
//
// Version syntax: [epoch:]upstream[-revision]. Comparison alternates
// non-digit and digit chunks; '~' sorts before everything including the
// empty string (so 1.0~rc1 << 1.0), letters sort before non-letters.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "depchaos/pkg/deb.hpp"
#include "depchaos/support/thread_pool.hpp"

namespace depchaos::pkg::deb {

/// Compare full Debian version strings: negative / zero / positive like
/// strcmp.
int compare_versions(std::string_view a, std::string_view b);

/// Does `candidate` satisfy `relation` against `wanted`?
/// Relations: "<<", "<=", "=", ">=", ">>" (Policy §7.1).
bool version_satisfies(std::string_view candidate, std::string_view relation,
                       std::string_view wanted);

/// Does the dependency accept this package version?
bool dep_accepts(const DepSpec& dep, std::string_view version);

struct BrokenDep {
  std::string package;  // the package declaring the dependency
  DepSpec dep;          // the unsatisfiable dependency
  bool target_missing = false;  // no such package at all vs wrong version
};

struct ConsistencyReport {
  std::uint64_t deps_checked = 0;
  std::vector<BrokenDep> broken;

  bool consistent() const { return broken.empty(); }
};

/// Check every dependency of every package against the archive. Alternative
/// dependencies ('|') are NOT grouped here — the corpus generator emits
/// plain dependencies; each is checked independently.
ConsistencyReport check_archive(const std::vector<Package>& archive);

/// Parallel variant for 200k-package corpora.
ConsistencyReport check_archive_parallel(support::ThreadPool& pool,
                                         const std::vector<Package>& archive);

}  // namespace depchaos::pkg::deb
