// Debian package metadata: control-paragraph parser and the dependency-spec
// taxonomy behind Fig 1 ("Debian package dependencies by type").
//
// A Depends field looks like:
//   Depends: libc6 (>= 2.14), libfoo (= 1.2-3), bar, baz | qux (<< 2.0)
// Each comma-separated element is a dependency; '|' separates alternatives,
// each of which is classified independently. A dependency is:
//   Unversioned  — no parenthesised constraint ("bar")
//   VersionRange — a relational constraint (>=, <=, <<, >>)
//   Exact        — an equality constraint (= 1.2-3)
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "depchaos/support/thread_pool.hpp"

namespace depchaos::pkg::deb {

enum class DepKind : std::uint8_t { Unversioned, VersionRange, Exact };

std::string_view dep_kind_name(DepKind kind);

struct DepSpec {
  std::string package;
  DepKind kind = DepKind::Unversioned;
  std::string relation;  // ">=", "<<", "=", ... ("" when unversioned)
  std::string version;   // "" when unversioned

  friend bool operator==(const DepSpec&, const DepSpec&) = default;
};

struct Package {
  std::string name;
  std::string version;
  std::string section;
  std::vector<DepSpec> depends;

  friend bool operator==(const Package&, const Package&) = default;
};

/// Parse one "Depends:" value (without the field name).
std::vector<DepSpec> parse_depends(std::string_view value);

/// Parse a control file: blank-line-separated paragraphs with
/// "Field: value" lines (continuation lines start with a space).
std::vector<Package> parse_control(std::string_view text);

/// Render packages back to control format (roundtrips through
/// parse_control).
std::string to_control(const std::vector<Package>& packages);

/// Fig 1's three bars.
struct DepTypeCounts {
  std::uint64_t unversioned = 0;
  std::uint64_t range = 0;
  std::uint64_t exact = 0;

  std::uint64_t total() const { return unversioned + range + exact; }
  DepTypeCounts& operator+=(const DepTypeCounts& other);
};

/// Classify every dependency of every package.
DepTypeCounts classify(const std::vector<Package>& packages);

/// Parallel variant for the 209k-package corpus.
DepTypeCounts classify_parallel(support::ThreadPool& pool,
                                const std::vector<Package>& packages);

}  // namespace depchaos::pkg::deb
