// The Traditional Model (§II-A): a Filesystem Hierarchy Standard installer.
//
// Packages drop files into shared well-known directories (/usr/bin,
// /usr/lib, ...). The model's documented weaknesses are implemented
// faithfully so tests and benches can demonstrate them:
//  * installation is file-at-a-time and can OVERWRITE other packages' files
//    (the "limited key space dilemma");
//  * an interrupted install leaves the system inconsistent;
//  * removal depends on a manifest recorded at install time.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "depchaos/elf/object.hpp"
#include "depchaos/vfs/vfs.hpp"

namespace depchaos::pkg::fhs {

struct PackageFile {
  std::string rel_path;  // e.g. "usr/lib/libfoo.so.1"
  std::string content;   // raw bytes, or empty when `object` is set
  std::optional<elf::Object> object;
};

struct Package {
  std::string name;
  std::string version;
  std::vector<PackageFile> files;
};

struct InstallResult {
  std::vector<std::string> written;
  /// Paths that already existed and were owned by ANOTHER package — the
  /// conflicts the FHS model cannot express.
  std::vector<std::string> clobbered;
};

class Installer {
 public:
  explicit Installer(vfs::FileSystem& fs, std::string root = "/")
      : fs_(fs), root_(std::move(root)) {}

  /// Install every file; returns what was written and what got clobbered.
  InstallResult install(const Package& package);

  /// Simulate a crash after `files_written` files — the multi-step delivery
  /// hazard from §II-A. The manifest is NOT updated (the package manager
  /// died before committing).
  InstallResult install_interrupted(const Package& package,
                                    std::size_t files_written);

  /// Remove a package by manifest. Files clobbered by a later package are
  /// left alone. Throws if the package is unknown.
  void remove(const std::string& name);

  /// Owner of an installed path, if any.
  std::optional<std::string> owner_of(const std::string& abs_path) const;

  /// Installed package names.
  std::vector<std::string> installed() const;

 private:
  std::string abs_path(const std::string& rel) const;

  vfs::FileSystem& fs_;
  std::string root_;
  // abs path -> owning package
  std::unordered_map<std::string, std::string> owners_;
  // package -> manifest
  std::unordered_map<std::string, std::vector<std::string>> manifests_;
};

}  // namespace depchaos::pkg::fhs
