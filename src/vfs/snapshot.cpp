#include "depchaos/vfs/snapshot.hpp"

#include <algorithm>
#include <charconv>
#include <unordered_map>

namespace depchaos::vfs {

/// Private-storage access for the snapshot codec (befriended by
/// FileSystem): layer-chain introspection turns a CoW view into its
/// O(delta) record list on save, and grafts records straight into a forked
/// view's overlay on load — no path resolution, bit-identical storage.
struct SnapshotAccess {
  using Node = FileSystem::Node;
  using Layer = FileSystem::Layer;
  using Mount = FileSystem::Mount;

  static const Node& node(const FileSystem& fs, InodeNum ino) {
    return fs.node_local(ino);
  }
  static InodeNum end_ino(const FileSystem& fs) { return fs.end_ino(); }
  static std::size_t live(const FileSystem& fs) { return fs.live_inodes_; }
  static const std::vector<Mount>& mounts(const FileSystem& fs) {
    return fs.mounts_;
  }
  static const std::string& point_str(const FileSystem& fs, const Mount& m) {
    return fs.paths_->str(m.point);
  }

  /// One-past-the-end inode of the storage `view` shares with `base`:
  /// base's entire current chain must be a suffix of view's chain, with no
  /// private divergence on the base side (fork views from the final base).
  static InodeNum shared_prefix_end(const FileSystem& view,
                                    const FileSystem& base) {
    if (&view == &base) {
      throw FsError("save_fleet: a view aliases the base world");
    }
    if (!base.top_nodes_.empty() || !base.top_shadow_.empty()) {
      throw FsError(
          "save_fleet: base world mutated after its views were forked");
    }
    const Layer* base_top = base.base_.get();
    if (base_top != nullptr) {
      for (const Layer* l = view.base_.get(); l != nullptr;
           l = l->parent.get()) {
        if (l == base_top) return base.end_ino();
      }
    }
    throw FsError("save_fleet: view is not a fork of the base world");
  }

  /// Inos the view shadow-copied above the shared prefix, ascending.
  /// (Inos at or past `split` live in the new-allocation range, which the
  /// caller emits wholesale.)
  static std::vector<InodeNum> delta_shadows(const FileSystem& view,
                                             const FileSystem& base,
                                             InodeNum split) {
    const Layer* base_top = base.base_.get();
    std::vector<InodeNum> out;
    for (const auto& [ino, n] : view.top_shadow_) {
      (void)n;
      if (ino < split) out.push_back(ino);
    }
    for (const Layer* l = view.base_.get(); l != nullptr && l != base_top;
         l = l->parent.get()) {
      for (const auto& [ino, n] : l->shadowed) {
        (void)n;
        if (ino < split) out.push_back(ino);
      }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  }

  /// Size the private overlay for a graft of inos [top_start_, end).
  /// `cap` bounds the node count against the remaining image bytes (every
  /// grafted node costs at least one record byte), so a malformed header
  /// cannot drive a huge allocation.
  static void prepare(FileSystem& fs, InodeNum end, std::size_t live,
                      std::size_t cap) {
    if (end < fs.top_start_ || end < 2 || live > end ||
        end - fs.top_start_ > cap) {
      throw FsError("snapshot: bad inode range");
    }
    fs.top_nodes_.assign(end - fs.top_start_, Node{});
    fs.top_shadow_.clear();
    fs.live_inodes_ = live;
  }

  static void place(FileSystem& fs, InodeNum ino, Node node) {
    if (ino >= fs.end_ino() || ino == 0) {
      throw FsError("snapshot: inode out of range");
    }
    if (ino >= fs.top_start_) {
      fs.top_nodes_[ino - fs.top_start_] = std::move(node);
    } else {
      fs.top_shadow_[ino] = std::move(node);
    }
  }

  static void attach(FileSystem& fs, const std::string& point,
                     std::shared_ptr<FileSystem> backing, MountKind kind,
                     bool read_only, std::shared_ptr<FileSystem> lower) {
    fs.mount(point, std::move(backing), kind, read_only, std::move(lower));
  }
};

namespace {

constexpr std::string_view kMagic = "DCWORLD1\n";
constexpr std::string_view kMagic2 = "DCWORLD2\n";

void save_tree(const FileSystem& fs, const std::string& path,
               std::string& out) {
  const auto listing = fs.list_dir(path);
  for (const auto& name : listing) {
    const std::string child = path == "/" ? "/" + name : path + "/" + name;
    const auto type = fs.peek_type(child, /*follow=*/false);
    if (!type.has_value()) continue;  // unreachable in practice
    switch (*type) {
      case NodeType::Symlink:
        out += "link " + child + " " + *fs.peek_link_target(child) + "\n";
        break;
      case NodeType::Regular: {
        const FileData* data = fs.peek(child);
        out += "file " + child + " " + std::to_string(data->declared_size) +
               " " + std::to_string(data->bytes.size()) + "\n";
        out += data->bytes;
        out += '\n';
        break;
      }
      case NodeType::Directory:
        out += "dir " + child + "\n";
        save_tree(fs, child, out);
        break;
    }
  }
}

// ---------------------------------------------------------------- v2 codec

using SNode = SnapshotAccess::Node;

std::uint64_t parse_num(std::string_view text, const char* what) {
  std::uint64_t value = 0;
  const auto result =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (result.ec != std::errc{} || result.ptr != text.data() + text.size()) {
    throw FsError(std::string("malformed snapshot number (") + what +
                  "): '" + std::string(text) + "'");
  }
  return value;
}

struct Cursor {
  std::string_view image;
  std::size_t pos = 0;

  bool eof() const { return pos >= image.size(); }

  std::string_view line() {
    const auto end = image.find('\n', pos);
    std::string_view out;
    if (end == std::string_view::npos) {
      out = image.substr(pos);
      pos = image.size();
    } else {
      out = image.substr(pos, end - pos);
      pos = end + 1;
    }
    return out;
  }

  /// Next non-empty line; throws at end of image.
  std::string_view content_line() {
    while (!eof()) {
      const std::string_view out = line();
      if (!out.empty()) return out;
    }
    throw FsError("truncated fleet snapshot");
  }
};

/// Pop the leading space-delimited token off `rest`.
std::string_view take_token(std::string_view& rest, const char* what) {
  const auto space = rest.find(' ');
  std::string_view token;
  if (space == std::string_view::npos) {
    token = rest;
    rest = {};
  } else {
    token = rest.substr(0, space);
    rest = rest.substr(space + 1);
  }
  if (token.empty()) {
    throw FsError(std::string("malformed fleet snapshot: missing ") + what);
  }
  return token;
}

void emit_node(InodeNum ino, const SNode& n, std::string& out) {
  switch (n.type) {
    case NodeType::Directory:
      out += "node " + std::to_string(ino) + " dir " +
             std::to_string(n.children.size()) + "\n";
      for (const auto& [name, child] : n.children) {
        out += "c " + std::to_string(child) + " " + name + "\n";
      }
      break;
    case NodeType::Regular:
      out += "node " + std::to_string(ino) + " file " +
             std::to_string(n.data.declared_size) + " " +
             std::to_string(n.data.bytes.size()) + "\n";
      out += n.data.bytes;
      out += '\n';
      break;
    case NodeType::Symlink:
      out += "node " + std::to_string(ino) + " link " + n.link_target + "\n";
      break;
  }
}

/// Every inode of `fs`'s own storage (images, tmpfs dumps).
void emit_full(const FileSystem& fs, std::string& out) {
  const InodeNum end = SnapshotAccess::end_ino(fs);
  for (InodeNum ino = 1; ino < end; ++ino) {
    emit_node(ino, SnapshotAccess::node(fs, ino), out);
  }
}

/// Only what `view` changed relative to `base`: shadow copies of shared
/// inodes, then the view's own allocations. This IS the CoW layer delta.
void emit_delta(const FileSystem& view, const FileSystem& base,
                std::string& out) {
  const InodeNum split = SnapshotAccess::shared_prefix_end(view, base);
  for (const InodeNum ino :
       SnapshotAccess::delta_shadows(view, base, split)) {
    emit_node(ino, SnapshotAccess::node(view, ino), out);
  }
  const InodeNum end = SnapshotAccess::end_ino(view);
  for (InodeNum ino = split; ino < end; ++ino) {
    emit_node(ino, SnapshotAccess::node(view, ino), out);
  }
}

/// Consume consecutive node records into `fs` (inode-keyed graft).
void parse_nodes(Cursor& cur, FileSystem& fs) {
  while (!cur.eof()) {
    const std::size_t mark = cur.pos;
    const std::string_view line = cur.line();
    if (line.empty()) continue;
    if (!line.starts_with("node ")) {
      cur.pos = mark;  // hand the keyword back to the section parser
      return;
    }
    std::string_view rest = line.substr(5);
    const InodeNum ino = parse_num(take_token(rest, "inode"), "inode");
    const std::string_view kind = take_token(rest, "node kind");
    SNode n;
    if (kind == "dir") {
      n.type = NodeType::Directory;
      const std::uint64_t count = parse_num(rest, "child count");
      if (count > cur.image.size() - cur.pos) {  // each child is >= 1 byte
        throw FsError("snapshot: child count exceeds image");
      }
      n.children.reserve(count);
      for (std::uint64_t i = 0; i < count; ++i) {
        const std::string_view child_line = cur.line();
        if (!child_line.starts_with("c ")) {
          throw FsError("malformed child record: '" +
                        std::string(child_line) + "'");
        }
        std::string_view child_rest = child_line.substr(2);
        const InodeNum child_ino =
            parse_num(take_token(child_rest, "child inode"), "child inode");
        if (child_ino == 0 || child_ino >= SnapshotAccess::end_ino(fs)) {
          throw FsError("snapshot: child inode out of range");
        }
        n.children.emplace_back(std::string(child_rest), child_ino);
      }
    } else if (kind == "file") {
      n.type = NodeType::Regular;
      n.data.declared_size = parse_num(take_token(rest, "size"), "size");
      const std::uint64_t nbytes = parse_num(rest, "byte count");
      if (cur.pos + nbytes > cur.image.size()) {
        throw FsError("truncated node payload");
      }
      n.data.bytes = std::string(cur.image.substr(cur.pos, nbytes));
      cur.pos += nbytes;
      if (cur.pos < cur.image.size() && cur.image[cur.pos] == '\n') {
        ++cur.pos;
      }
    } else if (kind == "link") {
      n.type = NodeType::Symlink;
      n.link_target = std::string(rest);
    } else {
      throw FsError("unknown node kind: '" + std::string(line) + "'");
    }
    SnapshotAccess::place(fs, ino, std::move(n));
  }
}

MountKind mount_kind_from(std::string_view name) {
  if (name == "image") return MountKind::Image;
  if (name == "overlay") return MountKind::Overlay;
  if (name == "tmpfs") return MountKind::Tmpfs;
  if (name == "bind") return MountKind::Bind;
  throw FsError("unknown mount kind: '" + std::string(name) + "'");
}

}  // namespace

std::string save_world(const FileSystem& fs) {
  std::string out{kMagic};
  save_tree(fs, "/", out);
  return out;
}

FileSystem load_world(std::string_view image) {
  if (image.substr(0, kMagic.size()) != kMagic) {
    throw FsError("bad world snapshot magic");
  }
  FileSystem fs;
  std::size_t pos = kMagic.size();
  const auto read_line = [&]() -> std::string_view {
    const auto end = image.find('\n', pos);
    if (end == std::string_view::npos) {
      const auto line = image.substr(pos);
      pos = image.size();
      return line;
    }
    const auto line = image.substr(pos, end - pos);
    pos = end + 1;
    return line;
  };
  while (pos < image.size()) {
    const std::string_view line = read_line();
    if (line.empty()) continue;
    const auto first_space = line.find(' ');
    if (first_space == std::string_view::npos) {
      throw FsError("malformed snapshot line: " + std::string(line));
    }
    const std::string_view kind = line.substr(0, first_space);
    const std::string_view rest = line.substr(first_space + 1);
    if (kind == "dir") {
      fs.mkdir_p(rest);
    } else if (kind == "link") {
      const auto space = rest.find(' ');
      if (space == std::string_view::npos) {
        throw FsError("malformed link record: " + std::string(line));
      }
      fs.symlink(rest.substr(space + 1), rest.substr(0, space));
    } else if (kind == "file") {
      // file <path> <declared> <nbytes>
      const auto size_pos = rest.rfind(' ');
      const auto declared_pos = rest.rfind(' ', size_pos - 1);
      if (size_pos == std::string_view::npos ||
          declared_pos == std::string_view::npos) {
        throw FsError("malformed file record: " + std::string(line));
      }
      const std::string_view path = rest.substr(0, declared_pos);
      std::uint64_t declared = 0, nbytes = 0;
      const auto declared_text =
          rest.substr(declared_pos + 1, size_pos - declared_pos - 1);
      const auto nbytes_text = rest.substr(size_pos + 1);
      std::from_chars(declared_text.data(),
                      declared_text.data() + declared_text.size(), declared);
      std::from_chars(nbytes_text.data(),
                      nbytes_text.data() + nbytes_text.size(), nbytes);
      if (pos + nbytes > image.size()) {
        throw FsError("truncated file payload: " + std::string(path));
      }
      FileData data;
      data.bytes = std::string(image.substr(pos, nbytes));
      data.declared_size = declared;
      pos += nbytes;
      if (pos < image.size() && image[pos] == '\n') ++pos;
      fs.write_file(path, std::move(data));
    } else {
      throw FsError("unknown snapshot record: " + std::string(kind));
    }
  }
  return fs;
}

bool is_fleet_image(std::string_view image) {
  return image.substr(0, kMagic2.size()) == kMagic2;
}

std::string save_fleet(const FileSystem& base,
                       std::span<const FileSystem* const> views) {
  // Image table: the base plus every distinct read-only image a view's
  // mount table references (Image backings, Overlay lowers) — each
  // serialized exactly once no matter how many views share it.
  std::vector<const FileSystem*> images{&base};
  std::unordered_map<const FileSystem*, std::size_t> image_index{{&base, 0}};
  const auto image_of = [&](const FileSystem* fs) {
    const auto [it, inserted] = image_index.try_emplace(fs, images.size());
    if (inserted) images.push_back(fs);
    return it->second;
  };

  struct MountPlan {
    const SnapshotAccess::Mount* mount;
    std::size_t image = 0;  // Image backing / Overlay lower table slot
  };
  std::vector<std::vector<MountPlan>> plans(views.size());
  for (std::size_t v = 0; v < views.size(); ++v) {
    for (const auto& m : SnapshotAccess::mounts(*views[v])) {
      if (!m.active) continue;
      MountPlan plan{&m};
      switch (m.kind) {
        case MountKind::Image:
          plan.image = image_of(m.backing.get());
          break;
        case MountKind::Overlay:
          if (!m.lower) {
            throw FsError("save_fleet: overlay mount without a lower image");
          }
          plan.image = image_of(m.lower.get());
          break;
        case MountKind::Tmpfs:
          break;
        case MountKind::Bind:
          throw FsError(
              "save_fleet: bind mounts reference a foreign world and "
              "cannot be persisted");
      }
      plans[v].push_back(plan);
    }
  }

  std::string out{kMagic2};
  out += "images " + std::to_string(images.size()) + "\n";
  for (std::size_t k = 0; k < images.size(); ++k) {
    const FileSystem& img = *images[k];
    if (img.has_mounts()) {
      throw FsError(
          "save_fleet: the base/image worlds cannot themselves carry "
          "mounts");
    }
    out += "image " + std::to_string(k) + " " +
           std::to_string(SnapshotAccess::end_ino(img)) + " " +
           std::to_string(SnapshotAccess::live(img)) + "\n";
    emit_full(img, out);
    out += "endimage\n";
  }

  out += "views " + std::to_string(views.size()) + "\n";
  for (std::size_t v = 0; v < views.size(); ++v) {
    const FileSystem& view = *views[v];
    out += "view " + std::to_string(SnapshotAccess::end_ino(view)) + " " +
           std::to_string(SnapshotAccess::live(view)) + "\n";
    emit_delta(view, base, out);
    for (const MountPlan& plan : plans[v]) {
      const auto& m = *plan.mount;
      const bool has_backing_dump = m.kind != MountKind::Image;
      out += "mount " + std::string(mount_kind_name(m.kind)) + " " +
             (m.read_only ? "ro" : "rw") + " " +
             (m.kind == MountKind::Tmpfs ? std::string("-")
                                         : std::to_string(plan.image)) +
             " " +
             std::to_string(has_backing_dump
                                ? SnapshotAccess::end_ino(*m.backing)
                                : 0) +
             " " +
             std::to_string(has_backing_dump
                                ? SnapshotAccess::live(*m.backing)
                                : 0) +
             " " + SnapshotAccess::point_str(view, m) + "\n";
      if (m.kind == MountKind::Overlay) {
        emit_delta(*m.backing, *m.lower, out);
      } else if (m.kind == MountKind::Tmpfs) {
        emit_full(*m.backing, out);
      }
      out += "endmount\n";
    }
    out += "endview\n";
  }
  return out;
}

Fleet load_fleet(std::string_view image) {
  if (!is_fleet_image(image)) {
    // Convenience: a v1 image loads as a base with no views.
    return Fleet{load_world(image), {}};
  }
  Cursor cur{image, kMagic2.size()};

  std::string_view line = cur.content_line();
  if (!line.starts_with("images ")) {
    throw FsError("malformed fleet snapshot: expected images count");
  }
  const std::uint64_t nimages = parse_num(line.substr(7), "image count");
  if (nimages == 0 || nimages > image.size()) {
    throw FsError("malformed fleet snapshot: bad image count");
  }
  std::vector<std::shared_ptr<FileSystem>> images;
  images.reserve(nimages);
  for (std::uint64_t k = 0; k < nimages; ++k) {
    line = cur.content_line();
    if (!line.starts_with("image ")) {
      throw FsError("malformed fleet snapshot: expected image header");
    }
    std::string_view rest = line.substr(6);
    if (parse_num(take_token(rest, "image index"), "image index") != k) {
      throw FsError("malformed fleet snapshot: image table out of order");
    }
    const InodeNum end = parse_num(take_token(rest, "image end"), "image end");
    const std::uint64_t live = parse_num(rest, "image live count");
    auto fs = std::make_shared<FileSystem>();
    SnapshotAccess::prepare(*fs, end, live, image.size() - cur.pos);
    parse_nodes(cur, *fs);
    if (cur.content_line() != "endimage") {
      throw FsError("malformed fleet snapshot: expected endimage");
    }
    images.push_back(std::move(fs));
  }

  line = cur.content_line();
  if (!line.starts_with("views ")) {
    throw FsError("malformed fleet snapshot: expected views count");
  }
  const std::uint64_t nviews = parse_num(line.substr(6), "view count");
  if (nviews > image.size()) {
    throw FsError("malformed fleet snapshot: bad view count");
  }
  Fleet fleet;
  fleet.views.reserve(nviews);
  for (std::uint64_t v = 0; v < nviews; ++v) {
    line = cur.content_line();
    if (!line.starts_with("view ")) {
      throw FsError("malformed fleet snapshot: expected view header");
    }
    std::string_view rest = line.substr(5);
    const InodeNum end = parse_num(take_token(rest, "view end"), "view end");
    const std::uint64_t live = parse_num(rest, "view live count");
    FileSystem view = images[0]->fork();
    SnapshotAccess::prepare(view, end, live, image.size() - cur.pos);
    parse_nodes(cur, view);
    while (true) {
      line = cur.content_line();
      if (line == "endview") break;
      if (!line.starts_with("mount ")) {
        throw FsError("malformed fleet snapshot: expected mount or endview");
      }
      std::string_view mrest = line.substr(6);
      const MountKind kind =
          mount_kind_from(take_token(mrest, "mount kind"));
      const std::string_view rw = take_token(mrest, "mount mode");
      if (rw != "ro" && rw != "rw") {
        throw FsError("malformed fleet snapshot: bad mount mode");
      }
      const std::string_view imgref = take_token(mrest, "mount image ref");
      const InodeNum mend =
          parse_num(take_token(mrest, "mount end"), "mount end");
      const std::uint64_t mlive =
          parse_num(take_token(mrest, "mount live"), "mount live");
      const std::string point(mrest);  // rest of line; may contain spaces
      if (point.empty()) {
        throw FsError("malformed fleet snapshot: mount without a point");
      }
      const auto image_at = [&](std::string_view ref) {
        const std::uint64_t index = parse_num(ref, "image reference");
        if (index >= images.size()) {
          throw FsError("malformed fleet snapshot: image reference out of "
                        "range");
        }
        return images[index];
      };
      std::shared_ptr<FileSystem> backing;
      std::shared_ptr<FileSystem> lower;
      switch (kind) {
        case MountKind::Image:
          backing = image_at(imgref);  // shared fleet-wide, never copied
          break;
        case MountKind::Overlay:
          lower = image_at(imgref);
          backing = std::make_shared<FileSystem>(lower->fork());
          SnapshotAccess::prepare(*backing, mend, mlive,
                                  image.size() - cur.pos);
          parse_nodes(cur, *backing);
          break;
        case MountKind::Tmpfs:
          backing = std::make_shared<FileSystem>();
          SnapshotAccess::prepare(*backing, mend, mlive,
                                  image.size() - cur.pos);
          parse_nodes(cur, *backing);
          break;
        case MountKind::Bind:
          throw FsError("malformed fleet snapshot: bind mounts cannot be "
                        "persisted");
      }
      if (cur.content_line() != "endmount") {
        throw FsError("malformed fleet snapshot: expected endmount");
      }
      SnapshotAccess::attach(view, point, std::move(backing), kind,
                             rw == "ro", std::move(lower));
    }
    fleet.views.push_back(std::move(view));
  }
  // The base comes back as an O(1) fork of image 0 so views keep sharing
  // its storage even when image 0 is also mounted somewhere.
  fleet.base = images[0]->fork();
  return fleet;
}

}  // namespace depchaos::vfs
