#include "depchaos/vfs/snapshot.hpp"

#include <charconv>

namespace depchaos::vfs {

namespace {
constexpr std::string_view kMagic = "DCWORLD1\n";

void save_tree(const FileSystem& fs, const std::string& path,
               std::string& out) {
  const auto listing = fs.list_dir(path);
  for (const auto& name : listing) {
    const std::string child = path == "/" ? "/" + name : path + "/" + name;
    const auto type = fs.peek_type(child, /*follow=*/false);
    if (!type.has_value()) continue;  // unreachable in practice
    switch (*type) {
      case NodeType::Symlink:
        out += "link " + child + " " + *fs.peek_link_target(child) + "\n";
        break;
      case NodeType::Regular: {
        const FileData* data = fs.peek(child);
        out += "file " + child + " " + std::to_string(data->declared_size) +
               " " + std::to_string(data->bytes.size()) + "\n";
        out += data->bytes;
        out += '\n';
        break;
      }
      case NodeType::Directory:
        out += "dir " + child + "\n";
        save_tree(fs, child, out);
        break;
    }
  }
}
}  // namespace

std::string save_world(const FileSystem& fs) {
  std::string out{kMagic};
  save_tree(fs, "/", out);
  return out;
}

FileSystem load_world(std::string_view image) {
  if (image.substr(0, kMagic.size()) != kMagic) {
    throw FsError("bad world snapshot magic");
  }
  FileSystem fs;
  std::size_t pos = kMagic.size();
  const auto read_line = [&]() -> std::string_view {
    const auto end = image.find('\n', pos);
    if (end == std::string_view::npos) {
      const auto line = image.substr(pos);
      pos = image.size();
      return line;
    }
    const auto line = image.substr(pos, end - pos);
    pos = end + 1;
    return line;
  };
  while (pos < image.size()) {
    const std::string_view line = read_line();
    if (line.empty()) continue;
    const auto first_space = line.find(' ');
    if (first_space == std::string_view::npos) {
      throw FsError("malformed snapshot line: " + std::string(line));
    }
    const std::string_view kind = line.substr(0, first_space);
    const std::string_view rest = line.substr(first_space + 1);
    if (kind == "dir") {
      fs.mkdir_p(rest);
    } else if (kind == "link") {
      const auto space = rest.find(' ');
      if (space == std::string_view::npos) {
        throw FsError("malformed link record: " + std::string(line));
      }
      fs.symlink(rest.substr(space + 1), rest.substr(0, space));
    } else if (kind == "file") {
      // file <path> <declared> <nbytes>
      const auto size_pos = rest.rfind(' ');
      const auto declared_pos = rest.rfind(' ', size_pos - 1);
      if (size_pos == std::string_view::npos ||
          declared_pos == std::string_view::npos) {
        throw FsError("malformed file record: " + std::string(line));
      }
      const std::string_view path = rest.substr(0, declared_pos);
      std::uint64_t declared = 0, nbytes = 0;
      const auto declared_text =
          rest.substr(declared_pos + 1, size_pos - declared_pos - 1);
      const auto nbytes_text = rest.substr(size_pos + 1);
      std::from_chars(declared_text.data(),
                      declared_text.data() + declared_text.size(), declared);
      std::from_chars(nbytes_text.data(),
                      nbytes_text.data() + nbytes_text.size(), nbytes);
      if (pos + nbytes > image.size()) {
        throw FsError("truncated file payload: " + std::string(path));
      }
      FileData data;
      data.bytes = std::string(image.substr(pos, nbytes));
      data.declared_size = declared;
      pos += nbytes;
      if (pos < image.size() && image[pos] == '\n') ++pos;
      fs.write_file(path, std::move(data));
    } else {
      throw FsError("unknown snapshot record: " + std::string(kind));
    }
  }
  return fs;
}

}  // namespace depchaos::vfs
