#include "depchaos/vfs/latency.hpp"

namespace depchaos::vfs {
namespace {
constexpr double kMicro = 1e-6;
}

double LocalDiskModel::cost(OpKind op, bool /*hit*/,
                            const std::string& /*path*/) {
  switch (op) {
    case OpKind::Stat:
      return params_.stat_us * kMicro;
    case OpKind::Open:
      return params_.open_us * kMicro;
    case OpKind::Read:
      return params_.read_us * kMicro;
    case OpKind::Readlink:
      return params_.readlink_us * kMicro;
  }
  return 0;
}

double NfsModel::cost(OpKind op, bool hit, const std::string& path) {
  if (op == OpKind::Read) {
    // Data reads always go to the server in this model; the attribute cache
    // only covers metadata.
    ++server_round_trips_;
    return params_.read_us * kMicro;
  }
  if (hit) {
    if (attr_cache_.contains(path)) return params_.cached_us * kMicro;
    attr_cache_.insert(path);
    ++server_round_trips_;
    return params_.rtt_us * kMicro;
  }
  // Miss: with negative caching the client remembers "not there"; without it
  // (the LLNL default per §V-A) every probe of a missing path is a full RTT.
  if (params_.negative_caching) {
    if (negative_cache_.contains(path)) return params_.cached_us * kMicro;
    negative_cache_.insert(path);
  }
  ++server_round_trips_;
  return params_.rtt_us * kMicro;
}

void NfsModel::clear_client_cache() {
  attr_cache_.clear();
  negative_cache_.clear();
}

}  // namespace depchaos::vfs
