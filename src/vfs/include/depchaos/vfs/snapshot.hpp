// World snapshots: serialize an entire simulated filesystem to a single
// text image and back. This is what lets the CLI tools (tools/depchaos)
// operate like their real-world counterparts: one invocation generates a
// world to a file, later invocations run libtree/shrinkwrap/launch against
// it — the same workflow as pointing real tools at a real filesystem.
//
// Format (DCWORLD1): a header line, then one record per node in
// depth-first order:
//   dir <path>
//   link <path> <target>
//   file <path> <declared_size> <nbytes>\n<nbytes raw bytes>\n
// Raw bytes are length-prefixed, so SELF images (which are multi-line text)
// embed without escaping.
#pragma once

#include <string>
#include <string_view>

#include "depchaos/vfs/vfs.hpp"

namespace depchaos::vfs {

/// Serialize the whole filesystem (uncounted).
std::string save_world(const FileSystem& fs);

/// Rebuild a filesystem from a snapshot. Throws FsError on malformed input.
FileSystem load_world(std::string_view image);

}  // namespace depchaos::vfs
