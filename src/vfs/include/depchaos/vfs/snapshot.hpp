// World snapshots: serialize an entire simulated filesystem to a single
// text image and back. This is what lets the CLI tools (tools/depchaos)
// operate like their real-world counterparts: one invocation generates a
// world to a file, later invocations run libtree/shrinkwrap/launch against
// it — the same workflow as pointing real tools at a real filesystem.
//
// Format v1 (DCWORLD1): a header line, then one record per node in
// depth-first order:
//   dir <path>
//   link <path> <target>
//   file <path> <declared_size> <nbytes>\n<nbytes raw bytes>\n
// Raw bytes are length-prefixed, so SELF images (which are multi-line text)
// embed without escaping. save_world() flattens mount tables into the
// composed tree, so v1 stays the lowest-common-denominator image.
//
// Format v2 (DCWORLD2) — fleet snapshots: one shared base image plus
// per-view deltas, so persisting N copy-on-write forks (a sandbox fleet)
// costs O(base + Σ delta) instead of N full images. The delta is read
// straight off the CoW layer chain — the nodes a view allocated or
// shadow-copied above the layers it shares with the base — so both save
// cost and image size are proportional to actual divergence, and a
// restored view is bit-identical (inode numbers, directory order, dead
// nodes, declared sizes) to the saved one. Mount tables persist too:
// read-only images are stored once in a deduplicated image table,
// overlays as a delta against their lower image, tmpfs in full. Bind
// mounts reference a foreign world and are rejected. Two caveats:
// umounted (inactive) mount-table slots are compacted away on restore, so
// a view with umount history may renumber the mount-index bits of its
// COMPOSED inode numbers (stored worlds are unaffected); and a view
// flattened by the fork() auto-collapse threshold no longer shares layers
// with its base and is rejected — raise set_auto_collapse on worlds that
// must stay fleet-saveable across deep fork chains.
//
// DCWORLD2 grammar (line-oriented; <raw> spans are length-prefixed):
//   DCWORLD2
//   images <K>
//   image <k> <end_ino> <live_inodes>          (k = 0 is the fleet base)
//   <node records>
//   endimage
//   views <N>
//   view <end_ino> <live_inodes>               (delta vs. image 0)
//   <node records>
//   mount <kind> <ro|rw> <image|-> <end_ino> <live_inodes> <point>
//   <node records>                             (overlay delta / tmpfs dump)
//   endmount
//   endview
// node records address storage directly (inode-keyed, unlike v1):
//   node <ino> dir <nchildren>     followed by nchildren "c <ino> <name>"
//   node <ino> file <declared> <nbytes>\n<raw bytes>\n
//   node <ino> link <target>
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "depchaos/vfs/vfs.hpp"

namespace depchaos::vfs {

/// Serialize the whole filesystem (uncounted). Mounted namespaces are
/// flattened into one tree — the DCWORLD1 lowest common denominator.
std::string save_world(const FileSystem& fs);

/// Rebuild a filesystem from a DCWORLD1 snapshot. Throws FsError on
/// malformed input.
FileSystem load_world(std::string_view image);

/// A restored fleet: the shared base world plus each view rebuilt as a
/// fork of it (shared storage, shared PathTable, grafted deltas, mounts
/// reattached with read-only images shared across views).
struct Fleet {
  FileSystem base;
  std::vector<FileSystem> views;
};

/// Serialize a fleet as DCWORLD2: the base once, each view as its CoW
/// delta plus its mount table. Every view must be a fork of `base`'s
/// CURRENT state (fork first, then diverge — and do not mutate the base
/// afterwards); violations and bind mounts throw FsError.
std::string save_fleet(const FileSystem& base,
                       std::span<const FileSystem* const> views);

/// Load a DCWORLD2 image — or, for convenience, a DCWORLD1 image, which
/// comes back as a base with no views. Throws FsError on malformed input.
Fleet load_fleet(std::string_view image);

/// True when `image` carries the DCWORLD2 magic.
bool is_fleet_image(std::string_view image);

}  // namespace depchaos::vfs
