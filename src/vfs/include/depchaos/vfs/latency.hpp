// Latency models for the simulated filesystem.
//
// The paper's evaluation is, at heart, about the cost of metadata syscalls
// (stat/openat) issued by the dynamic loader: cheap on a warm local
// filesystem, ruinous on cold NFS at scale (§V, Fig 6, Table II). These
// models attach a cost in simulated seconds to each VFS operation.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace depchaos::vfs {

/// The metadata operations the loader issues while searching for libraries.
enum class OpKind : std::uint8_t {
  Stat,      // stat/access-style existence probe
  Open,      // openat of a candidate (or final) file
  Read,      // reading file contents after a successful open
  Readlink,  // symlink traversal
};

/// One recorded metadata operation (stat/open only — the storm traffic).
/// `path` is a dense per-trace key assigned in first-appearance order, so
/// a replayed trace is deterministic and a simulator can key client-side
/// caches without carrying strings.
struct OpRecord {
  OpKind kind = OpKind::Stat;
  bool hit = false;         // the path existed
  bool shared = false;      // fleet-wide substrate (FileSystem::MetaBreakdown
                            // rules: read-only mounts, below-fork content,
                            // failed probes)
  bool node_local = false;  // served by a MountLatency::NodeLocal mount
                            // (pre-staged image on node-local storage)
  std::uint32_t path = 0;   // dense path key, stable within one trace
};

/// Append-only sink for the measured metadata op stream of one load
/// (install with FileSystem::set_op_trace). This is the per-rank stream a
/// launch-storm simulator (depchaos::mds) replays against a modelled
/// metadata server: the op sequence is MEASURED, only op -> seconds is
/// simulated.
class OpTrace {
 public:
  void record(OpKind kind, bool hit, bool shared, bool node_local,
              const std::string& path) {
    const auto [it, inserted] =
        keys_.emplace(path, static_cast<std::uint32_t>(keys_.size()));
    ops_.push_back({kind, hit, shared, node_local, it->second});
  }

  const std::vector<OpRecord>& ops() const { return ops_; }
  std::size_t size() const { return ops_.size(); }
  std::size_t distinct_paths() const { return keys_.size(); }
  void clear() {
    ops_.clear();
    keys_.clear();
  }

 private:
  std::vector<OpRecord> ops_;
  std::unordered_map<std::string, std::uint32_t> keys_;
};

/// Cost model interface. Implementations may keep client-side cache state;
/// `clear_client_cache` models a cold start (fresh node, dropped caches).
class LatencyModel {
 public:
  virtual ~LatencyModel() = default;

  /// Cost, in simulated seconds, of one operation on `path`.
  /// `hit` is whether the path existed.
  virtual double cost(OpKind op, bool hit, const std::string& path) = 0;

  virtual void clear_client_cache() {}

  /// Duplicate this model (parameters AND current client-cache state) for
  /// an isolated filesystem copy — what lets batched parallel loads charge
  /// latency without sharing mutable cache state across threads. Models
  /// that cannot be duplicated may return nullptr; callers needing
  /// isolation (core::Session::load_many) then fall back to serial.
  virtual std::shared_ptr<LatencyModel> clone() const { return nullptr; }

  virtual std::string name() const = 0;
};

/// Local disk / warm page cache: every metadata op is cheap and uniform.
class LocalDiskModel final : public LatencyModel {
 public:
  struct Params {
    double stat_us = 1.2;
    double open_us = 2.5;
    double read_us = 8.0;
    double readlink_us = 1.0;
  };

  LocalDiskModel() = default;
  explicit LocalDiskModel(Params params) : params_(params) {}

  double cost(OpKind op, bool hit, const std::string& path) override;
  std::shared_ptr<LatencyModel> clone() const override {
    return std::make_shared<LocalDiskModel>(*this);
  }
  std::string name() const override { return "local-disk"; }

 private:
  Params params_;
};

/// NFS with a client-side attribute cache.
///
/// First touch of a path pays a full round trip to the metadata server;
/// subsequent touches hit the attribute cache. Negative caching (caching
/// the *absence* of a file) is disabled by default, matching the LLNL
/// configuration described in §V-A: every failed probe of a nonexistent
/// path pays the full round trip, every time. This is precisely what makes
/// long RPATH searches so expensive on shared filesystems.
class NfsModel final : public LatencyModel {
 public:
  struct Params {
    double rtt_us = 180.0;        // cold metadata round trip
    double cached_us = 1.5;       // client attribute-cache hit
    double read_us = 60.0;        // data read round trip
    bool negative_caching = false;
  };

  NfsModel() = default;
  explicit NfsModel(Params params) : params_(params) {}

  double cost(OpKind op, bool hit, const std::string& path) override;
  void clear_client_cache() override;
  std::shared_ptr<LatencyModel> clone() const override {
    return std::make_shared<NfsModel>(*this);
  }
  std::string name() const override { return "nfs"; }

  const Params& params() const { return params_; }

  /// Number of operations that had to go to the server (cache misses).
  std::uint64_t server_round_trips() const { return server_round_trips_; }

 private:
  Params params_;
  std::unordered_set<std::string> attr_cache_;
  std::unordered_set<std::string> negative_cache_;
  std::uint64_t server_round_trips_ = 0;
};

}  // namespace depchaos::vfs
