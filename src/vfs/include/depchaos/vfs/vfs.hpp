// In-memory POSIX-style filesystem with syscall accounting and layered
// copy-on-write storage.
//
// This is the substrate every packaging model in the paper is built on:
// FHS trees, bundled AppDirs, Nix/Spack stores, module directories. The
// loader simulator issues stat()/open() calls against it exactly the way
// ld.so probes candidate paths, and the per-operation counters + latency
// model produce the numbers behind Table II and Fig 6.
//
// Storage model: a FileSystem is a *view* over a chain of immutable,
// reference-counted base layers plus one private mutable overlay. fork()
// freezes the overlay into the chain and returns an O(1) writable sibling
// view; node lookups fall through overlay -> base layers, and every
// mutation lands in the forking view's own overlay (a shadowed directory
// copy with an entry absent IS the whiteout record — directory children
// lists are authoritative, so removals and renames need no separate
// tombstones). Inode numbers, symlink hop limits, syscall counters, and
// latency models are all per-view: a forked-then-mutated world is
// observably byte-identical to a deep-copied-then-mutated one, which is
// what lets core::Session::load_many hand every worker a private world
// without paying O(world size) per worker.
//
// Resolution model: every path is interned once into a support::PathTable
// shared by the whole fork family (append-only, so forked fleets reuse one
// table), and the walk runs over interned component ids — no per-probe
// splitting or re-normalization. Each view memoizes walk results in a
// private positive/negative dentry cache so repeated probes of the same
// directories (the loader's candidate storm) skip the overlay -> base
// chain entirely; the cache is dropped on any mutation. At a fork
// boundary the memo is frozen into an immutable shared snapshot both
// sides keep consulting (positive entries only — content is identical at
// the fork point), so a forked fleet starts warm; the first mutation on a
// side drops that side's snapshot reference (copy-on-invalidate).
// collapse() flattens a long fork chain back into a single layer (inode
// numbers and observable content preserved, so cached dentries stay
// valid); fork() does it automatically past a configurable layer-depth
// threshold. When the shared PathTable carries a byte budget and it is
// exhausted, resolution transparently falls back to uncached string
// walks — identical answers and syscall charges, no new interning.
//
// Mount model: a view optionally composes MOUNTED filesystems under its
// path namespace, real mount-table style. Each mount attaches another
// FileSystem (a read-only squashfs-like image, a CoW overlay forked from
// an image, a fresh tmpfs, or a bind of a subtree of another world) at a
// canonical mountpoint directory; resolution — including the PathId fast
// path and the dentry cache — crosses mount boundaries transparently, so
// the loader and shrinkwrap layers need no mount awareness. Composed
// inode numbers carry the mount index in their top 16 bits; absolute
// symlink targets inside a mounted image resolve in the COMPOSED
// namespace (what a process inside the container observes). Mounted
// backings must not carry mounts of their own (one level, like a kernel
// mount table over block devices), and must not be mutated behind the
// composed view's back. fork() of a composed view shares read-only
// backings and CoW-forks writable ones, which is what makes per-job
// sandbox fleets (core::Session::sandbox) O(delta) to create and — via
// vfs::save_fleet — O(delta) to persist.
//
// Thread safety (audited for svc::SessionPool, which runs thousands of
// client forks of one shared base concurrently):
//  * A VIEW is single-threaded. Even const read paths touch per-view
//    mutable state — the positive/negative dentry memo, the syscall
//    counters, a local latency model's warmth — so one FileSystem view
//    must never be shared between threads without external serialization.
//    Give every thread its own fork; that is the whole design.
//  * The SHARED substrate between sibling forks is safe for any number of
//    concurrent reader views: frozen CoW base layers are immutable after
//    freeze_top (no API mutates a frozen layer); the fork-family
//    PathTable is append-only with lock-free id-keyed reads and
//    internally synchronized inserts; the shared dentry SNAPSHOT taken at
//    a fork boundary is immutable (sides drop their reference on first
//    mutation, never edit it); read-only mount backings are only
//    const-read at resolve time (node_local), never resolved or mutated
//    post-mount.
//  * fork() MUTATES the parent view (freezes its overlay, rotates its
//    dentry memo into the snapshot) — concurrent forks of one parent must
//    be serialized by the caller.
//  * SEALED FORK CONTRACT: seal() performs fork()'s parent-side mutations
//    once and for all — freeze the overlay into the immutable chain,
//    rotate the dentry memo into the shared snapshot, recursively seal
//    writable mount backings — leaving the view in exactly the state a
//    priming fork() would. From then until the next mutation,
//    fork_sealed() is a *const* stamp over the immutable substrate: any
//    number of threads may call it concurrently on one sealed view with
//    no external lock (svc::SessionPool's wait-free admission path), and
//    each child is byte-identical to what legacy fork() would return.
//    Only fork_sealed() has this guarantee — other const reads on the
//    sealed view (resolution, fingerprinting) still touch per-view
//    mutable memo state and stay single-threaded. ANY mutation (node
//    write, mount surgery, collapse) clears the seal; fork_sealed() then
//    throws until seal() runs again, so a stale seal can never hand out
//    a child that misses unfrozen state.
//  * collapse() rewrites the calling view's layer chain only; sibling
//    views keep their own references to the frozen generations, so one
//    client flattening its world never perturbs another. Mutating a
//    WRITABLE mount backing behind a composed view remains forbidden
//    (documented above) — that rule is what keeps sandbox fleets safe.
//
// Conventions:
//  * Paths are absolute, '/'-separated; "." and ".." are normalized away.
//  * Symlinks store a (possibly relative) target string, resolved lazily
//    with a Linux-style 40-hop loop limit.
//  * Mutating setup APIs (write_file, mkdir_p, symlink, rename, remove) are
//    NOT counted as syscalls: they represent package-manager installation,
//    not process startup. The counted operations are stat/open/read/readlink.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "depchaos/support/error.hpp"
#include "depchaos/support/path_table.hpp"
#include "depchaos/vfs/latency.hpp"

namespace depchaos::vfs {

using InodeNum = std::uint64_t;
using support::PathId;

enum class NodeType : std::uint8_t { Regular, Directory, Symlink };

/// Result of stat()/lstat().
struct Stat {
  InodeNum ino = 0;
  NodeType type = NodeType::Regular;
  std::uint64_t size = 0;
};

/// Contents of a regular file. `declared_size` lets workloads model large
/// binaries (the paper wraps a 213 MiB executable) without materializing
/// bytes; it is max(bytes.size(), declared_size) that stat() reports.
struct FileData {
  std::string bytes;
  std::uint64_t declared_size = 0;

  std::uint64_t size() const {
    return std::max<std::uint64_t>(bytes.size(), declared_size);
  }
};

/// Counters for the operations a process issues during startup.
struct SyscallStats {
  std::uint64_t stat_calls = 0;
  std::uint64_t open_calls = 0;
  std::uint64_t read_calls = 0;
  std::uint64_t readlink_calls = 0;
  std::uint64_t failed_probes = 0;  // stat/open of nonexistent paths
  double sim_time_s = 0;            // accumulated latency-model cost

  std::uint64_t metadata_calls() const { return stat_calls + open_calls; }

  SyscallStats& operator+=(const SyscallStats& other);
};

/// Normalize an absolute path: collapse '//', resolve '.' and '..'
/// lexically. Throws FsError if `path` is not absolute.
std::string normalize_path(std::string_view path);

/// What kind of filesystem a mount table entry attaches (MountInfo/mount).
enum class MountKind : std::uint8_t {
  Image,    // read-only squashfs-style application image
  Overlay,  // writable CoW overlay forked from a shared lower image
  Tmpfs,    // fresh scratch (read-only tmpfs = masking a host dir)
  Bind,     // subtree of another world re-rooted at the mountpoint
};

std::string_view mount_kind_name(MountKind kind);

/// Latency class of a mount (set_mount_latency): which cost model — and,
/// downstream, which simulated metadata server — serves operations that
/// resolve inside it. `Shared` = the view's latency model (the shared
/// parallel FS / NFS storm path). `NodeLocal` = the view's node-local
/// model (a pre-staged image on node-local storage: cheap, no storm).
/// Only the SHARED substrate of a mount is ever node-local: per-view
/// overlay divergence always pays the shared-FS price (the PR-5 rule that
/// broadcast/pre-staging cannot absorb rank-private state).
enum class MountLatency : std::uint8_t { Shared, NodeLocal };

/// One row of FileSystem::mounts() — the `mount(8)`-style listing.
struct MountInfo {
  std::string point;  // canonical mountpoint
  MountKind kind = MountKind::Image;
  bool read_only = false;
  MountLatency latency = MountLatency::Shared;
};

/// Lexical dirname/basename of a normalized absolute path.
std::string dirname(std::string_view path);
std::string basename(std::string_view path);

class FileSystem {
 public:
  FileSystem();

  /// Deep copy: flattens the layer chain into a fresh single-layer world.
  /// The O(world) path — prefer fork() when the copy is read-mostly. The
  /// latency model pointer is SHARED by a copy (matching the historical
  /// copy semantics); callers needing isolated latency state re-install a
  /// clone, or use fork() which clones automatically.
  FileSystem(const FileSystem& other);
  FileSystem& operator=(const FileSystem& other);
  FileSystem(FileSystem&&) = default;
  FileSystem& operator=(FileSystem&&) = default;

  /// O(1) copy-on-write fork: freeze this view's overlay into the shared
  /// immutable chain and return a sibling view over the same layers.
  /// Subsequent mutations on either side are private to that side. The
  /// child gets the same inode numbering a deep copy would (so post-fork
  /// node allocations are byte-identical either way), zeroed syscall
  /// counters, and its own latency model: a clone of this view's model
  /// when the model supports clone(), else the shared pointer (callers
  /// needing thread isolation with an uncloneable model must not fork
  /// across threads — core::Session::load_many guards this).
  FileSystem fork();

  /// Perform fork()'s parent-side mutations once: freeze the overlay,
  /// rotate the dentry memo into the shared snapshot, seal writable mount
  /// backings recursively, and pre-warm the fingerprint memo. Afterwards —
  /// until the next mutation — fork_sealed() needs no lock. Idempotent;
  /// observably identical to a discarded priming fork().
  void seal();

  /// Lock-free fork fast path over a seal()ed view: stamps a new sibling
  /// view (same inode numbering, zeroed counters, cloned latency models,
  /// shared dentry snapshot — byte-identical to what fork() would return)
  /// without touching the parent. Safe to call concurrently from many
  /// threads on one sealed view. Throws FsError when the view is not
  /// currently sealed.
  FileSystem fork_sealed() const;

  /// True between seal() and the next mutation.
  bool sealed() const { return sealed_; }

  // ----- mount table (uncounted namespace surgery) -------------------------
  //
  // Mount operations model container assembly (squashfs app images,
  // overlayfs stacks, tmpfs masks, bind mounts), not process startup, so
  // like the setup APIs they are uncounted. Every operation drops the
  // dentry memo (the namespace changed). The mountpoint directory is
  // created (mkdir -p style) when missing; mounts stack — the latest
  // mount at a point wins, umount() peels it off again.

  /// Low-level mount: attach `backing` at `point`. `backing` must not have
  /// mounts of its own and must not be mutated directly afterwards;
  /// `lower` (overlays only) records the shared image the backing was
  /// forked from so vfs::save_fleet can persist the delta. `source` is the
  /// directory inside `backing` that becomes the mount root (bind mounts;
  /// "/" for whole-filesystem mounts).
  void mount(std::string_view point, std::shared_ptr<FileSystem> backing,
             MountKind kind, bool read_only,
             std::shared_ptr<FileSystem> lower = nullptr,
             std::string_view source = "/");

  /// Read-only squashfs-style image mount; the image is shared, never
  /// copied, so a fleet of views mounting it costs O(1) each.
  void mount_image(std::string_view point, std::shared_ptr<FileSystem> image);

  /// Writable overlay whose lower layer is `lower`: the backing is a CoW
  /// fork of the image, so per-view divergence stays in the view.
  void mount_overlay(std::string_view point,
                     const std::shared_ptr<FileSystem>& lower);

  /// Fresh scratch filesystem; read_only=true is the container "mask a
  /// host directory" idiom (an empty dir shadows whatever was beneath).
  void mount_tmpfs(std::string_view point, bool read_only = false);

  /// Re-root `source_path` of `source_fs` at `point` (default read-only).
  void mount_bind(std::string_view point,
                  std::shared_ptr<FileSystem> source_fs,
                  std::string_view source_path, bool read_only = true);

  /// Peel off the topmost mount at `point`. Throws FsError when nothing is
  /// mounted there.
  void umount(std::string_view point);

  /// Set the latency class of the topmost active mount at `point` (image
  /// pre-staged to node-local storage). Throws FsError when nothing is
  /// mounted there. Inherited by fork() and copies, like the rest of the
  /// mount table.
  void set_mount_latency(std::string_view point, MountLatency latency);

  /// The cost model charged for NodeLocal-served operations (lazily a
  /// default LocalDiskModel when unset). nullptr restores the default.
  void set_local_latency_model(std::shared_ptr<LatencyModel> model) {
    local_latency_ = std::move(model);
  }

  /// Active mounts in mount order (the `mount(8)` listing).
  std::vector<MountInfo> mounts() const;
  bool has_mounts() const { return !mount_at_.empty(); }

  // ----- setup (uncounted) -------------------------------------------------

  /// Create directory and all ancestors. Idempotent.
  void mkdir_p(std::string_view path);

  /// Create/overwrite a regular file, creating parent directories.
  void write_file(std::string_view path, FileData data);
  void write_file(std::string_view path, std::string bytes) {
    write_file(path, FileData{std::move(bytes), 0});
  }

  /// Create a symlink at `linkpath` pointing at `target` (target may be
  /// relative and need not exist). Throws if linkpath already exists.
  void symlink(std::string_view target, std::string_view linkpath);

  /// Remove a file/symlink, or a directory (recursively if requested).
  void remove(std::string_view path, bool recursive = false);

  /// Atomic rename (the store model's commit primitive). Replaces an
  /// existing non-directory destination, like rename(2).
  void rename(std::string_view from, std::string_view to);

  /// True if the path exists (following symlinks). Uncounted.
  bool exists(std::string_view path) const;

  /// Directory listing in insertion order. Uncounted.
  std::vector<std::string> list_dir(std::string_view path) const;

  /// Resolve all symlinks; returns canonical path or nullopt. Uncounted.
  std::optional<std::string> realpath(std::string_view path) const;

  /// Total inode count across the composed namespace (Dependency Views
  /// cost accounting, §III-D1): this view's own storage plus every active
  /// mounted backing's.
  std::size_t inode_count() const;

  /// Uncounted file access for tooling (package managers, patchers) that
  /// does not represent process-startup syscall traffic.
  const FileData* peek(std::string_view path) const;

  /// Recursive on-disk byte total under `path` (uncounted; du(1)-style).
  /// Symlinks contribute nothing. Returns 0 for missing paths.
  std::uint64_t disk_usage(std::string_view path) const;

  /// Uncounted node-type query. `follow` controls final-symlink
  /// dereferencing (stat vs lstat semantics).
  std::optional<NodeType> peek_type(std::string_view path,
                                    bool follow = false) const;

  /// Uncounted readlink(2): the literal target of a symlink, nullopt when
  /// the path is not a symlink.
  std::optional<std::string> peek_link_target(std::string_view path) const;

  // ----- counted process-startup operations --------------------------------

  /// stat(2): follow symlinks, count one metadata op (plus readlink costs).
  std::optional<Stat> stat(std::string_view path);
  std::optional<Stat> stat(PathId id);

  /// lstat(2): do not follow the final symlink.
  std::optional<Stat> lstat(std::string_view path);
  std::optional<Stat> lstat(PathId id);

  /// openat(2) + contents: returns file data if `path` names a regular file.
  const FileData* open(std::string_view path);
  const FileData* open(PathId id);

  /// Batched counted probe — the loader's candidate storm as ONE call.
  /// Opens candidates in order, charging exactly one open(2) per attempt
  /// (identical counters and latency to individual open() calls), invoking
  /// `visit(index, data)` for each — data is null for a missing or
  /// non-regular path — until `visit` returns true. Returns the accepting
  /// index, or npos when every candidate was visited without acceptance.
  /// Templated so the per-sweep visitor stays a direct, allocation-free
  /// call (this IS the hot path the interner exists for).
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  template <typename Visit>
  std::size_t open_first(std::span<const PathId> candidates, Visit&& visit) {
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const FileData* data = open(candidates[i]);
      if (visit(i, data)) return i;
    }
    return npos;
  }

  /// Read after open: counted separately (data vs metadata traffic).
  void count_read(std::string_view path);
  void count_read(PathId id);

  // ----- interned paths -----------------------------------------------------

  /// The interner shared by this view's whole fork family. Callers may
  /// intern paths eagerly (loader search dirs, shrinkwrap closure keys) and
  /// use the PathId overloads above to probe without rebuilding strings.
  support::PathTable& paths() const { return *paths_; }
  const std::shared_ptr<support::PathTable>& path_table() const {
    return paths_;
  }

  /// Intern an absolute path, throwing FsError (like normalize_path) when
  /// it is not absolute. str(id) of the result is the normalized path.
  /// Returns kNone (never throws) for a NEW path once the table's byte
  /// budget is exhausted — the string-taking operations then fall back to
  /// uncached walks with identical answers and charges.
  PathId intern(std::string_view path) const;

  /// Uncounted interned resolution: canonical (symlink-free) PathId of
  /// `id`, or kNone when the path does not exist. The interned realpath.
  PathId resolve_canonical(PathId id) const;

  /// Enable/disable the per-view dentry cache (enabled by default). Used
  /// by tests and bench/loader_hotpath to measure the cache's effect;
  /// disabling also drops the current entries.
  void set_dentry_cache(bool enabled);
  bool dentry_cache_enabled() const { return dentry_enabled_; }

  /// Dentry snapshot generations: at a fork boundary the warm-start
  /// snapshot normally merges every prior generation's walk results, so a
  /// long fork chain can carry entries for paths nothing resolves anymore.
  /// Past `cap` merged entries the snapshot is instead REBUILT from the
  /// current generation alone — the entries walked or re-hit since the
  /// last fork (shared-snapshot hits are promoted into the private map
  /// precisely so a rebuild keeps the still-hot paths). The cache stays
  /// transparent either way: a shed entry is simply re-walked. A single
  /// generation larger than the cap is kept whole (the cap bounds
  /// cross-generation accumulation, not one generation's working set).
  /// 0 = uncapped. Inherited by forks and copies. Default: 1 << 16.
  void set_dentry_snapshot_cap(std::size_t cap) { dentry_snapshot_cap_ = cap; }
  std::size_t dentry_snapshot_cap() const { return dentry_snapshot_cap_; }
  /// Entries currently frozen in the fork-shared snapshot (test hook).
  std::size_t dentry_snapshot_entries() const {
    return dentry_shared_ ? dentry_shared_->size() : 0;
  }

  // ----- fleet-launch op attribution ---------------------------------------

  /// Shared-vs-private split of the counted metadata ops issued while a
  /// sink is installed (launch::simulate_fleet_launch). "Shared" = served
  /// by substrate identical across a sandbox fleet: read-only mounts
  /// (images, masks, RO binds), content below the last fork boundary of a
  /// writable mount or of this view's own storage, and failed probes (a
  /// negative answer is the same for every rank, broadcast-amenable).
  /// "Private" = per-view divergence: nodes created or CoW-shadowed since
  /// the last fork (overlay upper writes, scratch tmpfs contents).
  struct MetaBreakdown {
    std::uint64_t shared_ops = 0;
    std::uint64_t private_ops = 0;
  };
  /// Install (nullptr removes) the attribution sink. Purely additive
  /// accounting — counters, latency charges, and answers are untouched.
  /// Not inherited by fork() or copies; the caller owns the sink lifetime.
  void set_meta_breakdown(MetaBreakdown* sink) { breakdown_ = sink; }

  /// Install (nullptr removes) an op-trace sink: every counted metadata op
  /// (stat/open) is appended with its hit/shared/node-local attribution —
  /// the measured per-rank stream the depchaos::mds queueing engine
  /// replays. Purely additive, like set_meta_breakdown, and likewise never
  /// inherited by fork() or copies.
  void set_op_trace(OpTrace* sink) { trace_ = sink; }

  /// Uncounted one-path classification under the same rules: true =
  /// shared substrate, false = per-view divergence, nullopt = the path
  /// does not resolve.
  std::optional<bool> served_shared(std::string_view path) const;

  /// Content fingerprint of this view's post-fork private delta: a sha256
  /// over the overlay nodes (inode, kind, children, bytes, link target),
  /// the CoW-shadow set, and the mount-table shape, recursing into
  /// writable mount backings. Two sibling sandboxes forked from the same
  /// base compare equal iff their divergence since the fork is identical —
  /// the launch layer clusters fleet ranks into equivalence classes by
  /// this key and measures one representative per class. Cached; cost is
  /// O(delta) after any structural mutation (the cache is dropped at the
  /// mutable_node choke point, at mount surgery, and at fork/collapse
  /// boundaries). Equal fingerprints should be confirmed with
  /// overlay_delta_equal before acting on them (collision paranoia).
  const std::string& overlay_fingerprint() const;

  /// Structural comparison of the same inputs overlay_fingerprint hashes:
  /// true iff both views carry an identical private delta over equivalent
  /// substrate. O(delta); hash-collision-proof fallback for clustering.
  bool overlay_delta_equal(const FileSystem& other) const;

  // ----- accounting ---------------------------------------------------------

  SyscallStats& stats() { return stats_; }
  const SyscallStats& stats() const { return stats_; }
  void reset_stats() { stats_ = SyscallStats{}; }

  /// Attach/replace the latency model (nullptr = free operations).
  void set_latency_model(std::shared_ptr<LatencyModel> model) {
    latency_ = std::move(model);
  }
  LatencyModel* latency_model() const { return latency_.get(); }
  /// Owning handles to the installed models (svc's memo re-pricing swaps
  /// in recording decorators and must restore the originals afterwards).
  const std::shared_ptr<LatencyModel>& latency_model_ptr() const {
    return latency_;
  }
  const std::shared_ptr<LatencyModel>& local_latency_model_ptr() const {
    return local_latency_;
  }

  /// Drop client caches in the latency models (cold start).
  void clear_caches() {
    if (latency_) latency_->clear_client_cache();
    if (local_latency_) local_latency_->clear_client_cache();
  }

  /// Disable/enable syscall accounting (counters AND latency). Used for
  /// what-if probes (libtree's cache-hit classification) that must not
  /// perturb the measured workload.
  void set_counting(bool enabled) { counting_ = enabled; }
  bool counting() const { return counting_; }

  // ----- storage introspection (fork cost accounting) ----------------------

  /// Number of storage layers backing this view, counting the private
  /// overlay: 1 for a flat (never-forked, freshly built or snapshot-loaded)
  /// world, one more per frozen fork generation beneath it.
  std::size_t layer_depth() const;

  /// Approximate heap bytes held PRIVATELY by this view (overlay nodes and
  /// shadow copies; shared base layers excluded). A fresh fork owns ~0; a
  /// deep copy owns the whole world — the ratio is the CoW win that
  /// bench/fork_scaling gates on.
  std::uint64_t owned_bytes() const;

  /// Flatten the layer chain into a single private layer. Inode numbers,
  /// directory order, and every observable read answer are preserved (this
  /// is the deep-copy ctor's flattening applied in place), so cached
  /// dentries remain valid; the cost is O(world) time and owned bytes —
  /// after a collapse this view no longer shares storage with its fork
  /// family. Long fork chains (overlay-on-overlay-on-…) pay a per-lookup
  /// chain walk; collapsing trades one flatten for flat lookups.
  void collapse();

  /// Auto-collapse policy: when a fork() would hand back a child whose
  /// layer_depth() exceeds `threshold`, the CHILD is collapsed on the spot
  /// (the parent view keeps its chain — fork() stays O(1) for the caller).
  /// 0 disables. Inherited by forks. Default: 64.
  void set_auto_collapse(std::size_t threshold) { auto_collapse_ = threshold; }
  std::size_t auto_collapse() const { return auto_collapse_; }

 private:
  // Raw storage access for the DCWORLD2 snapshot codec (snapshot.cpp):
  // layer-chain introspection for O(delta) fleet saves and direct overlay
  // grafts on load.
  friend struct SnapshotAccess;

  // Uninitialized shell for fork(): no root node, no interner allocation
  // (fork() wires in the family's shared table).
  struct ForkTag {};
  explicit FileSystem(ForkTag) {}

  struct Node {
    NodeType type = NodeType::Regular;
    // Directory children, insertion-ordered for deterministic listings.
    std::vector<std::pair<std::string, InodeNum>> children;
    FileData data;            // Regular
    std::string link_target;  // Symlink

    InodeNum find_child(std::string_view name) const;
  };

  /// One frozen fork generation. `nodes` holds inodes [start,
  /// start+nodes.size()) appended during that generation; `shadowed` holds
  /// CoW copies of older inodes the generation mutated (including the
  /// directory copies that act as whiteouts).
  struct Layer {
    std::shared_ptr<const Layer> parent;
    InodeNum start = 0;
    std::vector<Node> nodes;
    std::unordered_map<InodeNum, Node> shadowed;
  };

  /// One mount table entry. Inactive entries (umounted) stay in the
  /// vector so mount indices — baked into composed inode numbers — remain
  /// stable.
  struct Mount {
    PathId point = support::PathTable::kNone;  // canonical mountpoint
    MountKind kind = MountKind::Image;
    bool read_only = false;
    bool active = true;
    MountLatency latency = MountLatency::Shared;
    std::shared_ptr<FileSystem> backing;
    std::shared_ptr<FileSystem> lower;  // overlays: the shared image below
    InodeNum source_root = 1;           // binds: entry inode inside backing
  };

  // Composed inode numbers: mount index (0 = this view's own storage,
  // i+1 = mounts_[i]) in the top 16 bits, backing-local inode below.
  static constexpr int kMountShift = 48;
  static constexpr InodeNum kMountMask = InodeNum{0xffff} << kMountShift;
  static std::uint16_t mount_index(InodeNum ino) {
    return static_cast<std::uint16_t>(ino >> kMountShift);
  }
  static InodeNum local_ino(InodeNum ino) { return ino & ~kMountMask; }
  static InodeNum tag(std::uint16_t mount, InodeNum local) {
    return (InodeNum{mount} << kMountShift) | local;
  }
  /// Re-tag a backing-local child inode with its directory's mount bits.
  static InodeNum tag_like(InodeNum context, InodeNum local) {
    return (context & kMountMask) | local;
  }

  // Read access to a composed inode: route to the owning backing, falling
  // through its overlay -> base chain.
  const Node& node(InodeNum ino) const;
  const Node& node_local(InodeNum ino) const;
  // Write access: returns the owning store's copy, creating the CoW shadow
  // on first touch of a base-layer inode, enforcing mount read-only flags,
  // and dropping this view's dentry memo. The returned reference is
  // invalidated by the next new_node_at()/mutable_node() call.
  Node& mutable_node(InodeNum ino);
  Node& mutable_node_local(InodeNum ino);
  // One-past-the-end inode number (the next local allocation index).
  InodeNum end_ino() const { return top_start_ + top_nodes_.size(); }
  // Freeze the private overlay into the immutable chain (fork prologue).
  void freeze_top();

  /// Tagged child lookup: `name` inside directory `dir`, 0 on miss.
  InodeNum child_of(InodeNum dir, std::string_view name) const;
  /// Root of the topmost active mount at canonical path `canon`, or 0.
  InodeNum mount_root_at(PathId canon) const;
  /// The namespace root: "/" itself, honoring a mount over "/".
  InodeNum root_ino() const;
  /// The mount owning `ino`, or null for this view's own storage.
  Mount* mount_of(InodeNum ino);
  void ensure_writable(InodeNum ino) const;
  /// Throw "mount point busy" when an active mountpoint sits at or under
  /// canonical path `canon` (rmdir/rename of a mount ancestor is EBUSY).
  void ensure_no_mount_under(const std::string& canon,
                             const std::string& display) const;

  // Resolve `path` to an inode. If follow_final is false the last component
  // is not dereferenced when it is a symlink. Returns 0 (invalid) on miss.
  InodeNum resolve(std::string_view path, bool follow_final,
                   std::string* canonical = nullptr) const;

  // Uncached string walk: the budget-exhausted fallback. `norm` must be a
  // normalized absolute path; answers (inode, canonical string, symlink
  // hop consumption, ELOOP throws, mount crossings) are identical to the
  // interned walk, but nothing is interned or memoized.
  InodeNum resolve_str(std::string_view norm, bool follow_final, int& hops,
                       std::string* canonical) const;
  // resolve_id's escape hatch when a table op inside the walk hits the
  // byte budget: one uncached string walk of str(id). The canonical comes
  // back as an id only when the canonical path happens to be interned
  // already (lookup never allocates).
  InodeNum resolve_fallback(PathId id, bool follow_final, int& hops,
                            PathId* canonical) const;
  // The string-overload fallback shared by stat/lstat/open/count_read:
  // normalize + uncached walk, FsError (ELOOP) counting as a miss;
  // `norm_out` receives the normalized path for charging.
  InodeNum resolve_uncached(std::string_view path, bool follow_final,
                            std::string* norm_out) const;

  // The interned walk behind every lookup: resolve `id` by stepping its
  // component chain against the node store, expanding symlinks with a
  // Linux-style hop budget shared across the whole resolution. On success
  // `canonical` (when non-null) receives the symlink-free PathId. Results
  // — positive and negative — are memoized in the per-view dentry cache
  // keyed by (id, follow_final); a cached entry replays the hop count its
  // walk consumed so ELOOP behaviour is byte-identical with or without
  // the cache.
  InodeNum resolve_id(PathId id, bool follow_final, int& hops,
                      PathId* canonical) const;

  // Parent directory inode of `path`, creating it if `create`.
  InodeNum parent_of(const std::string& norm, bool create);

  /// Allocate a node in the same store as mount index `mount`; returns the
  /// tagged composed inode.
  InodeNum new_node_at(std::uint16_t mount, NodeType type);
  InodeNum new_node_local(NodeType type);
  /// Allocate + link a child named `name` under directory `dir` (same
  /// store as `dir`); returns the tagged child.
  InodeNum create_child(InodeNum dir, std::string_view name, NodeType type);
  /// `ino` (the resolved composed inode, 0 on a miss) feeds the optional
  /// fleet-launch attribution sink and the node-local latency-class
  /// routing; counters are unaffected by it.
  void charge(OpKind op, bool hit, const std::string& path, InodeNum ino = 0);
  /// Was this operation served by a MountLatency::NodeLocal mount? Hits
  /// route by the owning mount (shared substrate only — overlay-private
  /// nodes always pay the shared-FS price); misses and reads attribute by
  /// the longest active node-local mountpoint prefix (a failed probe of a
  /// pre-staged image is a local negative).
  bool op_is_node_local(InodeNum ino, bool hit, const std::string& path) const;
  bool under_node_local_mount(const std::string& path) const;
  bool has_node_local_mount() const;
  void remove_subtree(InodeNum ino);

  /// Attribution helpers (fleet-launch accounting): is local inode `ino`
  /// part of this store's private top overlay (created or CoW-shadowed
  /// since the last fork/freeze) rather than the shared frozen chain?
  bool node_is_private_local(InodeNum ino) const {
    return ino >= top_start_ || top_shadow_.count(ino) != 0;
  }
  bool op_is_shared(InodeNum ino) const;

  // Immutable shared layers (null for a never-forked world) ...
  std::shared_ptr<const Layer> base_;
  // ... plus the private mutable overlay: inodes >= top_start_ live in
  // top_nodes_ (top_nodes_[0] is the unused slot 0 / root 1 pair in a flat
  // world); older inodes this view mutated live in top_shadow_.
  InodeNum top_start_ = 0;
  std::vector<Node> top_nodes_;
  std::unordered_map<InodeNum, Node> top_shadow_;

  std::size_t live_inodes_ = 0;
  SyscallStats stats_;
  std::shared_ptr<LatencyModel> latency_;
  // Cost model for NodeLocal-served ops (lazy LocalDiskModel when null at
  // first use). Shared by copies, cloned by fork(), like latency_.
  std::shared_ptr<LatencyModel> local_latency_;
  bool counting_ = true;

  // Interner shared by the whole fork family (deep copies join it too —
  // the table is world-independent).
  std::shared_ptr<support::PathTable> paths_;

  /// One memoized walk result. `hops` is the symlink-hop budget the walk
  /// consumed, replayed into the caller's counter on a cache hit.
  struct Dentry {
    InodeNum ino = 0;        // 0 = negative entry (path does not exist)
    PathId canonical = support::PathTable::kNone;
    int hops = 0;
  };
  static std::uint64_t dentry_key(PathId id, bool follow) {
    return (std::uint64_t{id} << 1) | (follow ? 1u : 0u);
  }
  using DentryMap = std::unordered_map<std::uint64_t, Dentry>;
  // Two-level memo. `dentry_` is per-view and private: new walk results
  // land here. `dentry_shared_` is an immutable snapshot frozen at the
  // last fork boundary, consulted for POSITIVE entries only — every view
  // sharing it has identical content for those paths until it mutates.
  // Invalidation (mutable_node — the single choke point every structural
  // change goes through — and mount-table surgery) drops the private map
  // AND this view's snapshot reference (copy-on-invalidate: siblings keep
  // theirs). Mutable because resolution memoizes inside const read paths.
  mutable DentryMap dentry_;
  std::shared_ptr<const DentryMap> dentry_shared_;
  // Keys present in BOTH maps this generation (capped mode only):
  // promoted positive hits plus re-walked shared negatives. The fork
  // merge subtracts them to size the true union exactly.
  mutable std::size_t dentry_dup_ = 0;
  void invalidate_dentries() {
    dentry_.clear();
    dentry_shared_.reset();
    dentry_dup_ = 0;
    fingerprint_.reset();
    sealed_ = false;  // any invalidation means the substrate may change
  }
  bool dentry_enabled_ = true;
  // True between seal() and the next mutation: the overlay is frozen, the
  // dentry memo rotated, writable backings sealed — fork_sealed() may run
  // concurrently. Cleared at the invalidate_dentries choke point, at node
  // allocation, and at collapse().
  bool sealed_ = false;
  std::size_t auto_collapse_ = 64;
  std::size_t dentry_snapshot_cap_ = 1 << 16;
  // Memoized overlay_fingerprint (mutable: computed inside const reads).
  // Reset wherever the delta can change: invalidate_dentries covers every
  // structural mutation and mount surgery; fork()/freeze_top()/collapse()
  // reset it explicitly because they move the fork boundary itself.
  mutable std::optional<std::string> fingerprint_;
  // Fleet-launch attribution sink (set_meta_breakdown); never inherited.
  MetaBreakdown* breakdown_ = nullptr;
  // Measured op-stream sink (set_op_trace); never inherited.
  OpTrace* trace_ = nullptr;

  // The mount table (empty for ordinary worlds; every operation above is
  // zero-overhead then). `mount_at_` maps a canonical mountpoint PathId to
  // the stack of mounts at that point, topmost last.
  std::vector<Mount> mounts_;
  std::unordered_map<PathId, std::vector<std::uint16_t>> mount_at_;
};

}  // namespace depchaos::vfs
