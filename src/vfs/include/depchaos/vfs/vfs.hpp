// In-memory POSIX-style filesystem with syscall accounting and layered
// copy-on-write storage.
//
// This is the substrate every packaging model in the paper is built on:
// FHS trees, bundled AppDirs, Nix/Spack stores, module directories. The
// loader simulator issues stat()/open() calls against it exactly the way
// ld.so probes candidate paths, and the per-operation counters + latency
// model produce the numbers behind Table II and Fig 6.
//
// Storage model: a FileSystem is a *view* over a chain of immutable,
// reference-counted base layers plus one private mutable overlay. fork()
// freezes the overlay into the chain and returns an O(1) writable sibling
// view; node lookups fall through overlay -> base layers, and every
// mutation lands in the forking view's own overlay (a shadowed directory
// copy with an entry absent IS the whiteout record — directory children
// lists are authoritative, so removals and renames need no separate
// tombstones). Inode numbers, symlink hop limits, syscall counters, and
// latency models are all per-view: a forked-then-mutated world is
// observably byte-identical to a deep-copied-then-mutated one, which is
// what lets core::Session::load_many hand every worker a private world
// without paying O(world size) per worker.
//
// Resolution model: every path is interned once into a support::PathTable
// shared by the whole fork family (append-only, so forked fleets reuse one
// table), and the walk runs over interned component ids — no per-probe
// splitting or re-normalization. Each view memoizes walk results in a
// private positive/negative dentry cache so repeated probes of the same
// directories (the loader's candidate storm) skip the overlay -> base
// chain entirely; the cache is dropped on any mutation and at fork
// boundaries. collapse() flattens a long fork chain back into a single
// layer (inode numbers and observable content preserved, so cached
// dentries stay valid); fork() does it automatically past a configurable
// layer-depth threshold.
//
// Conventions:
//  * Paths are absolute, '/'-separated; "." and ".." are normalized away.
//  * Symlinks store a (possibly relative) target string, resolved lazily
//    with a Linux-style 40-hop loop limit.
//  * Mutating setup APIs (write_file, mkdir_p, symlink, rename, remove) are
//    NOT counted as syscalls: they represent package-manager installation,
//    not process startup. The counted operations are stat/open/read/readlink.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "depchaos/support/error.hpp"
#include "depchaos/support/path_table.hpp"
#include "depchaos/vfs/latency.hpp"

namespace depchaos::vfs {

using InodeNum = std::uint64_t;
using support::PathId;

enum class NodeType : std::uint8_t { Regular, Directory, Symlink };

/// Result of stat()/lstat().
struct Stat {
  InodeNum ino = 0;
  NodeType type = NodeType::Regular;
  std::uint64_t size = 0;
};

/// Contents of a regular file. `declared_size` lets workloads model large
/// binaries (the paper wraps a 213 MiB executable) without materializing
/// bytes; it is max(bytes.size(), declared_size) that stat() reports.
struct FileData {
  std::string bytes;
  std::uint64_t declared_size = 0;

  std::uint64_t size() const {
    return std::max<std::uint64_t>(bytes.size(), declared_size);
  }
};

/// Counters for the operations a process issues during startup.
struct SyscallStats {
  std::uint64_t stat_calls = 0;
  std::uint64_t open_calls = 0;
  std::uint64_t read_calls = 0;
  std::uint64_t readlink_calls = 0;
  std::uint64_t failed_probes = 0;  // stat/open of nonexistent paths
  double sim_time_s = 0;            // accumulated latency-model cost

  std::uint64_t metadata_calls() const { return stat_calls + open_calls; }

  SyscallStats& operator+=(const SyscallStats& other);
};

/// Normalize an absolute path: collapse '//', resolve '.' and '..'
/// lexically. Throws FsError if `path` is not absolute.
std::string normalize_path(std::string_view path);

/// Lexical dirname/basename of a normalized absolute path.
std::string dirname(std::string_view path);
std::string basename(std::string_view path);

class FileSystem {
 public:
  FileSystem();

  /// Deep copy: flattens the layer chain into a fresh single-layer world.
  /// The O(world) path — prefer fork() when the copy is read-mostly. The
  /// latency model pointer is SHARED by a copy (matching the historical
  /// copy semantics); callers needing isolated latency state re-install a
  /// clone, or use fork() which clones automatically.
  FileSystem(const FileSystem& other);
  FileSystem& operator=(const FileSystem& other);
  FileSystem(FileSystem&&) = default;
  FileSystem& operator=(FileSystem&&) = default;

  /// O(1) copy-on-write fork: freeze this view's overlay into the shared
  /// immutable chain and return a sibling view over the same layers.
  /// Subsequent mutations on either side are private to that side. The
  /// child gets the same inode numbering a deep copy would (so post-fork
  /// node allocations are byte-identical either way), zeroed syscall
  /// counters, and its own latency model: a clone of this view's model
  /// when the model supports clone(), else the shared pointer (callers
  /// needing thread isolation with an uncloneable model must not fork
  /// across threads — core::Session::load_many guards this).
  FileSystem fork();

  // ----- setup (uncounted) -------------------------------------------------

  /// Create directory and all ancestors. Idempotent.
  void mkdir_p(std::string_view path);

  /// Create/overwrite a regular file, creating parent directories.
  void write_file(std::string_view path, FileData data);
  void write_file(std::string_view path, std::string bytes) {
    write_file(path, FileData{std::move(bytes), 0});
  }

  /// Create a symlink at `linkpath` pointing at `target` (target may be
  /// relative and need not exist). Throws if linkpath already exists.
  void symlink(std::string_view target, std::string_view linkpath);

  /// Remove a file/symlink, or a directory (recursively if requested).
  void remove(std::string_view path, bool recursive = false);

  /// Atomic rename (the store model's commit primitive). Replaces an
  /// existing non-directory destination, like rename(2).
  void rename(std::string_view from, std::string_view to);

  /// True if the path exists (following symlinks). Uncounted.
  bool exists(std::string_view path) const;

  /// Directory listing in insertion order. Uncounted.
  std::vector<std::string> list_dir(std::string_view path) const;

  /// Resolve all symlinks; returns canonical path or nullopt. Uncounted.
  std::optional<std::string> realpath(std::string_view path) const;

  /// Total inode count (Dependency Views cost accounting, §III-D1).
  std::size_t inode_count() const { return live_inodes_; }

  /// Uncounted file access for tooling (package managers, patchers) that
  /// does not represent process-startup syscall traffic.
  const FileData* peek(std::string_view path) const;

  /// Recursive on-disk byte total under `path` (uncounted; du(1)-style).
  /// Symlinks contribute nothing. Returns 0 for missing paths.
  std::uint64_t disk_usage(std::string_view path) const;

  /// Uncounted node-type query. `follow` controls final-symlink
  /// dereferencing (stat vs lstat semantics).
  std::optional<NodeType> peek_type(std::string_view path,
                                    bool follow = false) const;

  /// Uncounted readlink(2): the literal target of a symlink, nullopt when
  /// the path is not a symlink.
  std::optional<std::string> peek_link_target(std::string_view path) const;

  // ----- counted process-startup operations --------------------------------

  /// stat(2): follow symlinks, count one metadata op (plus readlink costs).
  std::optional<Stat> stat(std::string_view path);
  std::optional<Stat> stat(PathId id);

  /// lstat(2): do not follow the final symlink.
  std::optional<Stat> lstat(std::string_view path);
  std::optional<Stat> lstat(PathId id);

  /// openat(2) + contents: returns file data if `path` names a regular file.
  const FileData* open(std::string_view path);
  const FileData* open(PathId id);

  /// Batched counted probe — the loader's candidate storm as ONE call.
  /// Opens candidates in order, charging exactly one open(2) per attempt
  /// (identical counters and latency to individual open() calls), invoking
  /// `visit(index, data)` for each — data is null for a missing or
  /// non-regular path — until `visit` returns true. Returns the accepting
  /// index, or npos when every candidate was visited without acceptance.
  /// Templated so the per-sweep visitor stays a direct, allocation-free
  /// call (this IS the hot path the interner exists for).
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  template <typename Visit>
  std::size_t open_first(std::span<const PathId> candidates, Visit&& visit) {
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const FileData* data = open(candidates[i]);
      if (visit(i, data)) return i;
    }
    return npos;
  }

  /// Read after open: counted separately (data vs metadata traffic).
  void count_read(std::string_view path);
  void count_read(PathId id);

  // ----- interned paths -----------------------------------------------------

  /// The interner shared by this view's whole fork family. Callers may
  /// intern paths eagerly (loader search dirs, shrinkwrap closure keys) and
  /// use the PathId overloads above to probe without rebuilding strings.
  support::PathTable& paths() const { return *paths_; }
  const std::shared_ptr<support::PathTable>& path_table() const {
    return paths_;
  }

  /// Intern an absolute path, throwing FsError (like normalize_path) when
  /// it is not absolute. str(id) of the result is the normalized path.
  PathId intern(std::string_view path) const;

  /// Uncounted interned resolution: canonical (symlink-free) PathId of
  /// `id`, or kNone when the path does not exist. The interned realpath.
  PathId resolve_canonical(PathId id) const;

  /// Enable/disable the per-view dentry cache (enabled by default). Used
  /// by tests and bench/loader_hotpath to measure the cache's effect;
  /// disabling also drops the current entries.
  void set_dentry_cache(bool enabled);
  bool dentry_cache_enabled() const { return dentry_enabled_; }

  // ----- accounting ---------------------------------------------------------

  SyscallStats& stats() { return stats_; }
  const SyscallStats& stats() const { return stats_; }
  void reset_stats() { stats_ = SyscallStats{}; }

  /// Attach/replace the latency model (nullptr = free operations).
  void set_latency_model(std::shared_ptr<LatencyModel> model) {
    latency_ = std::move(model);
  }
  LatencyModel* latency_model() const { return latency_.get(); }

  /// Drop client caches in the latency model (cold start).
  void clear_caches() {
    if (latency_) latency_->clear_client_cache();
  }

  /// Disable/enable syscall accounting (counters AND latency). Used for
  /// what-if probes (libtree's cache-hit classification) that must not
  /// perturb the measured workload.
  void set_counting(bool enabled) { counting_ = enabled; }
  bool counting() const { return counting_; }

  // ----- storage introspection (fork cost accounting) ----------------------

  /// Number of storage layers backing this view, counting the private
  /// overlay: 1 for a flat (never-forked, freshly built or snapshot-loaded)
  /// world, one more per frozen fork generation beneath it.
  std::size_t layer_depth() const;

  /// Approximate heap bytes held PRIVATELY by this view (overlay nodes and
  /// shadow copies; shared base layers excluded). A fresh fork owns ~0; a
  /// deep copy owns the whole world — the ratio is the CoW win that
  /// bench/fork_scaling gates on.
  std::uint64_t owned_bytes() const;

  /// Flatten the layer chain into a single private layer. Inode numbers,
  /// directory order, and every observable read answer are preserved (this
  /// is the deep-copy ctor's flattening applied in place), so cached
  /// dentries remain valid; the cost is O(world) time and owned bytes —
  /// after a collapse this view no longer shares storage with its fork
  /// family. Long fork chains (overlay-on-overlay-on-…) pay a per-lookup
  /// chain walk; collapsing trades one flatten for flat lookups.
  void collapse();

  /// Auto-collapse policy: when a fork() would hand back a child whose
  /// layer_depth() exceeds `threshold`, the CHILD is collapsed on the spot
  /// (the parent view keeps its chain — fork() stays O(1) for the caller).
  /// 0 disables. Inherited by forks. Default: 64.
  void set_auto_collapse(std::size_t threshold) { auto_collapse_ = threshold; }
  std::size_t auto_collapse() const { return auto_collapse_; }

 private:
  // Uninitialized shell for fork(): no root node, no interner allocation
  // (fork() wires in the family's shared table).
  struct ForkTag {};
  explicit FileSystem(ForkTag) {}

  struct Node {
    NodeType type = NodeType::Regular;
    // Directory children, insertion-ordered for deterministic listings.
    std::vector<std::pair<std::string, InodeNum>> children;
    FileData data;            // Regular
    std::string link_target;  // Symlink

    InodeNum find_child(std::string_view name) const;
  };

  /// One frozen fork generation. `nodes` holds inodes [start,
  /// start+nodes.size()) appended during that generation; `shadowed` holds
  /// CoW copies of older inodes the generation mutated (including the
  /// directory copies that act as whiteouts).
  struct Layer {
    std::shared_ptr<const Layer> parent;
    InodeNum start = 0;
    std::vector<Node> nodes;
    std::unordered_map<InodeNum, Node> shadowed;
  };

  // Read access to an inode, falling through overlay -> base chain.
  const Node& node(InodeNum ino) const;
  // Write access: returns the overlay's copy, creating the CoW shadow on
  // first touch of a base-layer inode. The returned reference is
  // invalidated by the next new_node()/mutable_node() call.
  Node& mutable_node(InodeNum ino);
  // One-past-the-end inode number (the next new_node() index).
  InodeNum end_ino() const { return top_start_ + top_nodes_.size(); }
  // Freeze the private overlay into the immutable chain (fork prologue).
  void freeze_top();

  // Resolve `path` to an inode. If follow_final is false the last component
  // is not dereferenced when it is a symlink. Returns 0 (invalid) on miss.
  InodeNum resolve(std::string_view path, bool follow_final,
                   std::string* canonical = nullptr) const;

  // The interned walk behind every lookup: resolve `id` by stepping its
  // component chain against the node store, expanding symlinks with a
  // Linux-style hop budget shared across the whole resolution. On success
  // `canonical` (when non-null) receives the symlink-free PathId. Results
  // — positive and negative — are memoized in the per-view dentry cache
  // keyed by (id, follow_final); a cached entry replays the hop count its
  // walk consumed so ELOOP behaviour is byte-identical with or without
  // the cache.
  InodeNum resolve_id(PathId id, bool follow_final, int& hops,
                      PathId* canonical) const;

  // Parent directory inode of `path`, creating it if `create`.
  InodeNum parent_of(const std::string& norm, bool create);

  InodeNum new_node(NodeType type);
  void charge(OpKind op, bool hit, const std::string& path);
  void remove_subtree(InodeNum ino);

  // Immutable shared layers (null for a never-forked world) ...
  std::shared_ptr<const Layer> base_;
  // ... plus the private mutable overlay: inodes >= top_start_ live in
  // top_nodes_ (top_nodes_[0] is the unused slot 0 / root 1 pair in a flat
  // world); older inodes this view mutated live in top_shadow_.
  InodeNum top_start_ = 0;
  std::vector<Node> top_nodes_;
  std::unordered_map<InodeNum, Node> top_shadow_;

  std::size_t live_inodes_ = 0;
  SyscallStats stats_;
  std::shared_ptr<LatencyModel> latency_;
  bool counting_ = true;

  // Interner shared by the whole fork family (deep copies join it too —
  // the table is world-independent).
  std::shared_ptr<support::PathTable> paths_;

  /// One memoized walk result. `hops` is the symlink-hop budget the walk
  /// consumed, replayed into the caller's counter on a cache hit.
  struct Dentry {
    InodeNum ino = 0;        // 0 = negative entry (path does not exist)
    PathId canonical = support::PathTable::kNone;
    int hops = 0;
  };
  static std::uint64_t dentry_key(PathId id, bool follow) {
    return (std::uint64_t{id} << 1) | (follow ? 1u : 0u);
  }
  // Per-view and private: cleared on any mutation (mutable_node — the
  // single choke point every structural change goes through — drops it
  // BEFORE handing out the write reference) and at fork boundaries.
  // Mutable because resolution memoizes inside const read paths.
  mutable std::unordered_map<std::uint64_t, Dentry> dentry_;
  bool dentry_enabled_ = true;
  std::size_t auto_collapse_ = 64;
};

}  // namespace depchaos::vfs
