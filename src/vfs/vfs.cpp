#include "depchaos/vfs/vfs.hpp"

#include <algorithm>
#include <cassert>

#include "depchaos/support/sha256.hpp"
#include "depchaos/support/strings.hpp"

namespace depchaos::vfs {

namespace {
constexpr int kMaxSymlinkHops = 40;  // Linux ELOOP limit
constexpr support::PathId kNoPath = support::PathTable::kNone;
}  // namespace

std::string_view mount_kind_name(MountKind kind) {
  switch (kind) {
    case MountKind::Image:
      return "image";
    case MountKind::Overlay:
      return "overlay";
    case MountKind::Tmpfs:
      return "tmpfs";
    case MountKind::Bind:
      return "bind";
  }
  return "?";
}

SyscallStats& SyscallStats::operator+=(const SyscallStats& other) {
  stat_calls += other.stat_calls;
  open_calls += other.open_calls;
  read_calls += other.read_calls;
  readlink_calls += other.readlink_calls;
  failed_probes += other.failed_probes;
  sim_time_s += other.sim_time_s;
  return *this;
}

std::string normalize_path(std::string_view path) {
  if (path.empty() || path.front() != '/') {
    throw FsError("path must be absolute: '" + std::string(path) + "'");
  }
  std::vector<std::string> out;
  for (const auto& comp : support::split_nonempty(path, '/')) {
    if (comp == ".") continue;
    if (comp == "..") {
      if (!out.empty()) out.pop_back();
      continue;
    }
    out.push_back(comp);
  }
  if (out.empty()) return "/";
  std::string result;
  for (const auto& comp : out) {
    result += '/';
    result += comp;
  }
  return result;
}

std::string dirname(std::string_view path) {
  const std::string norm = normalize_path(path);
  const auto pos = norm.rfind('/');
  if (pos == 0) return "/";
  return norm.substr(0, pos);
}

std::string basename(std::string_view path) {
  const std::string norm = normalize_path(path);
  if (norm == "/") return "/";
  return norm.substr(norm.rfind('/') + 1);
}

InodeNum FileSystem::Node::find_child(std::string_view name) const {
  for (const auto& [child_name, ino] : children) {
    if (child_name == name) return ino;
  }
  return 0;
}

FileSystem::FileSystem()
    : paths_(std::make_shared<support::PathTable>()) {
  top_nodes_.resize(2);  // [0] unused; [1] = root
  top_nodes_[1].type = NodeType::Directory;
  live_inodes_ = 1;
}

FileSystem::FileSystem(const FileSystem& other) {
  // Flatten the chain: the copy is a fresh single-layer world with the same
  // inode numbering (dead nodes included, so post-copy allocations match).
  const InodeNum end = other.end_ino();
  top_nodes_.reserve(end);
  for (InodeNum i = 0; i < end; ++i) top_nodes_.push_back(other.node_local(i));
  live_inodes_ = other.live_inodes_;
  stats_ = other.stats_;
  latency_ = other.latency_;
  local_latency_ = other.local_latency_;
  counting_ = other.counting_;
  // The interner is world-independent, so the copy joins the family table;
  // the dentry cache is a per-view memo and starts cold.
  paths_ = other.paths_;
  dentry_enabled_ = other.dentry_enabled_;
  auto_collapse_ = other.auto_collapse_;
  dentry_snapshot_cap_ = other.dentry_snapshot_cap_;
  // Mount table: immutable backings are shared (never copied); writable
  // backings get the same deep-copy treatment as the host storage.
  mounts_.reserve(other.mounts_.size());
  for (const Mount& m : other.mounts_) {
    Mount copy = m;
    if (m.active && !m.read_only && m.backing) {
      copy.backing = std::make_shared<FileSystem>(*m.backing);
    }
    mounts_.push_back(std::move(copy));
  }
  mount_at_ = other.mount_at_;
}

FileSystem& FileSystem::operator=(const FileSystem& other) {
  if (this != &other) {
    FileSystem copy(other);
    *this = std::move(copy);
  }
  return *this;
}

void FileSystem::freeze_top() {
  if (base_ && top_nodes_.empty() && top_shadow_.empty()) return;
  auto layer = std::make_shared<Layer>();
  layer->parent = std::move(base_);
  layer->start = top_start_;
  layer->nodes = std::move(top_nodes_);
  layer->shadowed = std::move(top_shadow_);
  top_start_ = layer->start + layer->nodes.size();
  top_nodes_.clear();
  top_shadow_.clear();
  base_ = std::move(layer);
  // The fork boundary moved: the private delta is now empty, which is a
  // different fingerprint even though no node changed.
  fingerprint_.reset();
}

FileSystem FileSystem::fork() {
  // fork() IS seal-then-stamp: the parent-side mutations (freeze, dentry
  // rotation, backing seals) happen in seal(), the child is a pure const
  // stamp over the frozen state. Splitting it this way makes the sealed
  // fast path byte-identical to a legacy fork by construction — they are
  // the same code.
  seal();
  return fork_sealed();
}

void FileSystem::seal() {
  freeze_top();
  // Dentry warm start: freeze the memo into an immutable snapshot every
  // future child keeps consulting (content is identical at the seal point,
  // so every entry stays valid until a side mutates — which drops only
  // that side's snapshot reference). The private map restarts empty so
  // concurrent forked workers never write a shared structure.
  if (dentry_enabled_ && !dentry_.empty()) {
    // Snapshot generations: merging every generation forever lets a long
    // fork chain carry dead entries. Past the cap, rebuild age-based —
    // only this generation's entries (fresh walks plus promoted shared
    // hits, i.e. everything actually touched since the last fork)
    // survive; untouched carry-overs are shed and simply re-walked on
    // demand.
    // Keys living in BOTH maps (promoted hits, re-walked negatives)
    // are subtracted so the merged size is the exact union and a
    // working set under the cap never rebuilds.
    const std::size_t carried = dentry_shared_ ? dentry_shared_->size() : 0;
    const std::size_t merged = dentry_.size() + carried - dentry_dup_;
    if (carried != 0 &&
        (dentry_snapshot_cap_ == 0 || merged <= dentry_snapshot_cap_)) {
      dentry_.insert(dentry_shared_->begin(), dentry_shared_->end());
    }
    dentry_shared_ = std::make_shared<const DentryMap>(std::move(dentry_));
    dentry_ = DentryMap{};
    dentry_dup_ = 0;
  }
  // Writable mount backings are part of the forkable state: seal them too
  // so fork_sealed() can stamp their children without mutating them.
  for (Mount& m : mounts_) {
    if (m.active && !m.read_only && m.backing) m.backing->seal();
  }
  // Pre-warm the fingerprint memo (a mutable cache): concurrent
  // fork_sealed() callers must never be the first to compute it.
  overlay_fingerprint();
  sealed_ = true;
}

FileSystem FileSystem::fork_sealed() const {
  if (!sealed_) {
    throw FsError("fork_sealed: view is not sealed (call seal() first)");
  }
  FileSystem child{ForkTag{}};
  child.base_ = base_;
  child.top_start_ = top_start_;
  child.live_inodes_ = live_inodes_;
  child.counting_ = counting_;
  child.paths_ = paths_;  // one interner per fork family
  child.dentry_enabled_ = dentry_enabled_;
  child.auto_collapse_ = auto_collapse_;
  child.dentry_snapshot_cap_ = dentry_snapshot_cap_;
  if (latency_) {
    auto clone = latency_->clone();
    child.latency_ = clone ? std::move(clone) : latency_;
  }
  if (local_latency_) {
    auto clone = local_latency_->clone();
    child.local_latency_ = clone ? std::move(clone) : local_latency_;
  }
  if (dentry_enabled_) {
    child.dentry_shared_ = dentry_shared_;
  }
  // Mount table: share read-only backings, stamp sealed children of
  // writable ones so per-view divergence stays in the view. Mount indices
  // — baked into tagged inode numbers, including the warm dentries — are
  // preserved.
  child.mounts_.reserve(mounts_.size());
  for (const Mount& m : mounts_) {
    Mount copy = m;
    if (m.active && !m.read_only && m.backing) {
      copy.backing = std::make_shared<FileSystem>(m.backing->fork_sealed());
    }
    child.mounts_.push_back(std::move(copy));
  }
  child.mount_at_ = mount_at_;
  // Layer compaction: past the threshold the chain walk under every cache
  // miss starts to dominate, so flatten the CHILD (the view that carries
  // the chain forward); the parent stays O(1) as fork() promises.
  if (auto_collapse_ != 0 && child.layer_depth() > auto_collapse_) {
    child.collapse();
  }
  return child;
}

void FileSystem::collapse() {
  if (!base_) return;  // already flat
  const InodeNum end = end_ino();
  std::vector<Node> flat;
  flat.reserve(end);
  for (InodeNum i = 0; i < end; ++i) flat.push_back(node_local(i));
  top_nodes_ = std::move(flat);
  top_shadow_.clear();
  top_start_ = 0;
  base_.reset();
  // Cached dentries survive: inode numbers and content are unchanged. The
  // overlay fingerprint does NOT: the whole world is the private delta now.
  fingerprint_.reset();
  sealed_ = false;  // the overlay is the whole (unfrozen) world again
}

const FileSystem::Node& FileSystem::node(InodeNum ino) const {
  if (const std::uint16_t m = mount_index(ino)) {
    return mounts_[m - 1].backing->node_local(local_ino(ino));
  }
  return node_local(ino);
}

const FileSystem::Node& FileSystem::node_local(InodeNum ino) const {
  if (ino >= top_start_) return top_nodes_[ino - top_start_];
  if (const auto it = top_shadow_.find(ino); it != top_shadow_.end()) {
    return it->second;
  }
  for (const Layer* layer = base_.get(); layer != nullptr;
       layer = layer->parent.get()) {
    if (ino >= layer->start) return layer->nodes[ino - layer->start];
    if (const auto it = layer->shadowed.find(ino);
        it != layer->shadowed.end()) {
      return it->second;
    }
  }
  throw FsError("invalid inode");  // unreachable for allocated inode numbers
}

FileSystem::Node& FileSystem::mutable_node(InodeNum ino) {
  // Every structural change flows through here, so this is the dentry
  // cache's single invalidation point: drop the memo — the private map AND
  // this view's reference to the fork-shared snapshot (siblings keep
  // theirs: copy-on-invalidate) — BEFORE handing out the write reference.
  invalidate_dentries();
  if (const std::uint16_t m = mount_index(ino)) {
    Mount& mnt = mounts_[m - 1];
    if (mnt.read_only) {
      throw FsError("read-only file system: mount at " +
                    paths_->str(mnt.point));
    }
    return mnt.backing->mutable_node_local(local_ino(ino));
  }
  return mutable_node_local(ino);
}

FileSystem::Node& FileSystem::mutable_node_local(InodeNum ino) {
  invalidate_dentries();  // the store's own memo, when used standalone
  if (ino >= top_start_) return top_nodes_[ino - top_start_];
  const auto it = top_shadow_.find(ino);
  if (it != top_shadow_.end()) return it->second;
  // First write to a base-layer inode: make the CoW shadow copy.
  return top_shadow_.emplace(ino, node_local(ino)).first->second;
}

void FileSystem::ensure_writable(InodeNum ino) const {
  if (const std::uint16_t m = mount_index(ino)) {
    const Mount& mnt = mounts_[m - 1];
    if (mnt.read_only) {
      throw FsError("read-only file system: mount at " +
                    paths_->str(mnt.point));
    }
  }
}

void FileSystem::ensure_no_mount_under(const std::string& canon,
                                       const std::string& display) const {
  if (!has_mounts()) return;
  // Detaching a mountpoint — or any ancestor of one — would leave the
  // mount attached to a path that no longer resolves: EBUSY.
  const std::string prefix = canon + '/';
  for (const Mount& m : mounts_) {
    if (!m.active) continue;
    const std::string& point = paths_->str(m.point);
    if (point == canon || point.starts_with(prefix)) {
      throw FsError("mount point busy: " + display);
    }
  }
}

InodeNum FileSystem::child_of(InodeNum dir, std::string_view name) const {
  const InodeNum local = node(dir).find_child(name);
  return local == 0 ? 0 : tag_like(dir, local);
}

InodeNum FileSystem::mount_root_at(PathId canon) const {
  if (mount_at_.empty() || canon == kNoPath) return 0;
  const auto it = mount_at_.find(canon);
  if (it == mount_at_.end() || it->second.empty()) return 0;
  const std::uint16_t index = it->second.back();
  return tag(static_cast<std::uint16_t>(index + 1),
             mounts_[index].source_root);
}

InodeNum FileSystem::root_ino() const {
  if (const InodeNum mroot = mount_root_at(support::PathTable::kRoot)) {
    return mroot;
  }
  return 1;
}

FileSystem::Mount* FileSystem::mount_of(InodeNum ino) {
  const std::uint16_t m = mount_index(ino);
  return m == 0 ? nullptr : &mounts_[m - 1];
}

std::size_t FileSystem::inode_count() const {
  std::size_t total = live_inodes_;
  for (const Mount& m : mounts_) {
    if (m.active && m.backing) total += m.backing->live_inodes_;
  }
  return total;
}

std::size_t FileSystem::layer_depth() const {
  std::size_t depth = 1;  // the private overlay
  for (const Layer* layer = base_.get(); layer != nullptr;
       layer = layer->parent.get()) {
    ++depth;
  }
  return depth;
}

std::uint64_t FileSystem::owned_bytes() const {
  const auto bytes_of = [](const Node& n) {
    std::uint64_t total = sizeof(Node);
    total += n.data.bytes.size();
    total += n.link_target.size();
    for (const auto& [name, ino] : n.children) {
      (void)ino;
      total += sizeof(std::pair<std::string, InodeNum>) + name.size();
    }
    return total;
  };
  std::uint64_t total = 0;
  for (const Node& n : top_nodes_) total += bytes_of(n);
  for (const auto& [ino, n] : top_shadow_) {
    (void)ino;
    total += bytes_of(n) + sizeof(InodeNum);
  }
  // Writable mount backings are this view's private divergence too;
  // shared read-only images cost a view nothing.
  for (const Mount& m : mounts_) {
    if (m.active && !m.read_only && m.backing) total += m.backing->owned_bytes();
  }
  return total;
}

InodeNum FileSystem::new_node_local(NodeType type) {
  sealed_ = false;  // the overlay is no longer empty, so no longer frozen
  top_nodes_.emplace_back();
  top_nodes_.back().type = type;
  ++live_inodes_;
  return end_ino() - 1;
}

InodeNum FileSystem::new_node_at(std::uint16_t mount, NodeType type) {
  if (mount == 0) return new_node_local(type);
  Mount& mnt = mounts_[mount - 1];
  if (mnt.read_only) {
    throw FsError("read-only file system: mount at " +
                  paths_->str(mnt.point));
  }
  return tag(mount, mnt.backing->new_node_local(type));
}

InodeNum FileSystem::create_child(InodeNum dir, std::string_view name,
                                  NodeType type) {
  ensure_writable(dir);
  const InodeNum child = new_node_at(mount_index(dir), type);
  mutable_node(dir).children.emplace_back(std::string(name), local_ino(child));
  return child;
}

bool FileSystem::op_is_shared(InodeNum ino) const {
  const std::uint16_t m = mount_index(ino);
  if (m == 0) return !node_is_private_local(ino);
  const Mount& mnt = mounts_[m - 1];
  // Read-only mounts (images, masks, RO binds) are fleet-wide by
  // construction; inside a writable mount the fork boundary of its backing
  // separates the shared lower image from per-view divergence.
  if (mnt.read_only) return true;
  return !mnt.backing->node_is_private_local(local_ino(ino));
}

std::optional<bool> FileSystem::served_shared(std::string_view path) const {
  InodeNum ino = 0;
  try {
    ino = resolve(path, /*follow_final=*/true);
  } catch (const FsError&) {
    return std::nullopt;
  }
  if (ino == 0) return std::nullopt;
  return op_is_shared(ino);
}

const std::string& FileSystem::overlay_fingerprint() const {
  if (fingerprint_) return *fingerprint_;
  support::Sha256 hash;
  // Length-prefix every variable-width field so adjacent fields can never
  // alias across node boundaries.
  auto u64 = [&hash](std::uint64_t v) { hash.update(&v, sizeof v); };
  auto str = [&](std::string_view s) {
    u64(s.size());
    hash.update(s);
  };
  auto add_node = [&](InodeNum ino, const Node& n) {
    u64(ino);
    u64(static_cast<std::uint64_t>(n.type));
    u64(n.children.size());
    for (const auto& [name, child] : n.children) {
      str(name);
      u64(child);
    }
    switch (n.type) {
      case NodeType::Regular:
        str(support::sha256_hex(n.data.bytes));
        u64(n.data.declared_size);
        break;
      case NodeType::Symlink:
        str(n.link_target);
        break;
      case NodeType::Directory:
        break;
    }
  };
  // Substrate identity: equal deltas over DIFFERENT shared bases are
  // different configurations. Pointer identity is exactly right within one
  // process — sibling forks share the frozen chain and the RO mount
  // backings by shared_ptr — and fingerprints are only ever compared
  // within one process (fleet clustering), never persisted.
  u64(reinterpret_cast<std::uintptr_t>(base_.get()));
  u64(top_start_);
  // The private delta: appended nodes in inode order, then the CoW-shadow
  // set in sorted order (the map iterates nondeterministically).
  u64(top_nodes_.size());
  for (std::size_t i = 0; i < top_nodes_.size(); ++i) {
    add_node(top_start_ + i, top_nodes_[i]);
  }
  std::vector<InodeNum> shadowed;
  shadowed.reserve(top_shadow_.size());
  for (const auto& [ino, node] : top_shadow_) shadowed.push_back(ino);
  std::sort(shadowed.begin(), shadowed.end());
  u64(shadowed.size());
  for (const InodeNum ino : shadowed) add_node(ino, top_shadow_.at(ino));
  // Mount-table shape. Read-only backings and overlay lowers contribute
  // pointer identity (shared substrate); writable backings contribute
  // their own recursive delta fingerprint.
  u64(mounts_.size());
  for (const Mount& m : mounts_) {
    str(m.point == kNoPath ? std::string_view{} : paths_->str(m.point));
    u64(static_cast<std::uint64_t>(m.kind));
    u64(m.read_only);
    u64(m.active);
    u64(static_cast<std::uint64_t>(m.latency));
    u64(m.source_root);
    u64(reinterpret_cast<std::uintptr_t>(m.lower.get()));
    if (m.active && !m.read_only && m.backing) {
      str(m.backing->overlay_fingerprint());
    } else {
      u64(reinterpret_cast<std::uintptr_t>(m.backing.get()));
    }
  }
  fingerprint_ = hash.hex_digest();
  return *fingerprint_;
}

bool FileSystem::overlay_delta_equal(const FileSystem& other) const {
  if (this == &other) return true;
  auto node_equal = [](const Node& a, const Node& b) {
    if (a.type != b.type || a.children != b.children) return false;
    switch (a.type) {
      case NodeType::Regular:
        return a.data.bytes == b.data.bytes &&
               a.data.declared_size == b.data.declared_size;
      case NodeType::Symlink:
        return a.link_target == b.link_target;
      case NodeType::Directory:
        return true;
    }
    return false;
  };
  if (base_.get() != other.base_.get() || top_start_ != other.top_start_ ||
      top_nodes_.size() != other.top_nodes_.size() ||
      top_shadow_.size() != other.top_shadow_.size()) {
    return false;
  }
  for (std::size_t i = 0; i < top_nodes_.size(); ++i) {
    if (!node_equal(top_nodes_[i], other.top_nodes_[i])) return false;
  }
  for (const auto& [ino, node] : top_shadow_) {
    const auto it = other.top_shadow_.find(ino);
    if (it == other.top_shadow_.end() || !node_equal(node, it->second)) {
      return false;
    }
  }
  if (mounts_.size() != other.mounts_.size()) return false;
  for (std::size_t i = 0; i < mounts_.size(); ++i) {
    const Mount& a = mounts_[i];
    const Mount& b = other.mounts_[i];
    const std::string_view a_point =
        a.point == kNoPath ? std::string_view{} : paths_->str(a.point);
    const std::string_view b_point =
        b.point == kNoPath ? std::string_view{} : other.paths_->str(b.point);
    if (a_point != b_point || a.kind != b.kind ||
        a.read_only != b.read_only || a.active != b.active ||
        a.latency != b.latency || a.source_root != b.source_root ||
        a.lower.get() != b.lower.get()) {
      return false;
    }
    if (a.active && !a.read_only && a.backing && b.backing) {
      if (!a.backing->overlay_delta_equal(*b.backing)) return false;
    } else if (a.backing.get() != b.backing.get()) {
      return false;
    }
  }
  return true;
}

void FileSystem::charge(OpKind op, bool hit, const std::string& path,
                        InodeNum ino) {
  if (!counting_) return;
  // Latency-class routing: ops served by a pre-staged (NodeLocal) mount
  // charge the node-local cost model and are flagged in the op trace, so
  // a measured load INSIDE a pre-staged sandbox already carries node-local
  // costs — pre-staging is no longer post-hoc extrapolation arithmetic.
  const bool node_local =
      has_node_local_mount() && op_is_node_local(ino, hit, path);
  if (op == OpKind::Stat || op == OpKind::Open) {
    // Failed probes are shared — a negative answer (missing path OR
    // open of a non-regular node) is the same for every rank.
    const bool shared = !hit || op_is_shared(ino);
    if (breakdown_ != nullptr) {
      ++(shared ? breakdown_->shared_ops : breakdown_->private_ops);
    }
    if (trace_ != nullptr) trace_->record(op, hit, shared, node_local, path);
  }
  switch (op) {
    case OpKind::Stat:
      ++stats_.stat_calls;
      break;
    case OpKind::Open:
      ++stats_.open_calls;
      break;
    case OpKind::Read:
      ++stats_.read_calls;
      break;
    case OpKind::Readlink:
      ++stats_.readlink_calls;
      break;
  }
  if (!hit && (op == OpKind::Stat || op == OpKind::Open)) {
    ++stats_.failed_probes;
  }
  if (latency_) {
    if (node_local) {
      if (!local_latency_) local_latency_ = std::make_shared<LocalDiskModel>();
      stats_.sim_time_s += local_latency_->cost(op, hit, path);
    } else {
      stats_.sim_time_s += latency_->cost(op, hit, path);
    }
  }
}

InodeNum FileSystem::resolve_id(PathId id, bool follow_final, int& hops,
                                PathId* canonical) const {
  using support::PathTable;
  if (id == PathTable::kNone) {
    // "No path" — reachable through the public PathId overloads when a
    // caller forwards a budget-refused intern(); a clean miss, not UB.
    if (canonical) *canonical = PathTable::kNone;
    return 0;
  }
  if (id == PathTable::kRoot) {
    if (canonical) *canonical = PathTable::kRoot;
    return root_ino();
  }
  const std::uint64_t key = dentry_key(id, follow_final);
  bool key_in_snapshot = false;  // re-walked negative: lives in both maps
  if (dentry_enabled_) {
    const Dentry* hit = nullptr;
    if (const auto it = dentry_.find(key); it != dentry_.end()) {
      hit = &it->second;
    } else if (dentry_shared_) {
      // The fork-shared snapshot serves POSITIVE entries only; negative
      // results are re-walked and memoized privately.
      if (const auto sit = dentry_shared_->find(key);
          sit != dentry_shared_->end()) {
        if (sit->second.ino != 0) {
          hit = &sit->second;
          // Recency for the snapshot cap: a served entry is young.
          // Promote it into the private map so an age-based rebuild at
          // the next fork keeps the paths this generation touched, not
          // only the ones it re-walked. (`hit` stays valid: it points
          // into the shared map.) Pointless when uncapped — fork merges
          // everything anyway.
          if (dentry_snapshot_cap_ != 0 &&
              dentry_.emplace(key, sit->second).second) {
            ++dentry_dup_;
          }
        } else {
          key_in_snapshot = true;
        }
      }
    }
    if (hit != nullptr) {
      // Replay the hop budget the memoized walk consumed so a resolution
      // that would have tripped ELOOP still trips it through the cache.
      hops += hit->hops;
      if (hops > kMaxSymlinkHops) {
        throw FsError("too many levels of symbolic links");
      }
      if (canonical) *canonical = hit->canonical;
      return hit->ino;
    }
  }
  const int hops_before = hops;
  InodeNum result = 0;
  PathId result_canon = PathTable::kNone;

  // Resolve the parent directory first (intermediate symlinks are always
  // followed), then take one component step. The recursion memoizes every
  // prefix, so a directory probed once is never chain-walked again until
  // the next mutation.
  PathId dir_canon = PathTable::kNone;
  const InodeNum dir_ino =
      resolve_id(paths_->parent(id), /*follow_final=*/true, hops, &dir_canon);
  if (dir_ino != 0 && dir_canon == PathTable::kNone) {
    // A nested walk hit the interner byte budget and lost the canonical
    // chain: finish with one uncached string walk of the full path.
    hops = hops_before;
    return resolve_fallback(id, follow_final, hops, canonical);
  }
  if (dir_ino != 0 && node(dir_ino).type == NodeType::Directory) {
    const InodeNum child = child_of(dir_ino, paths_->name(id));
    if (child != 0) {
      if (node(child).type == NodeType::Symlink && follow_final) {
        if (++hops > kMaxSymlinkHops) {
          throw FsError("too many levels of symbolic links");
        }
        // Absolute targets restart from the root; relative targets resolve
        // lexically against the link's (canonical) directory — exactly
        // normalize_path(dir + "/" + target), without building the string.
        const std::string& target = node(child).link_target;
        const PathId target_id =
            (!target.empty() && target.front() == '/')
                ? paths_->intern(target)
                : paths_->intern_under(dir_canon, target);
        if (target_id == PathTable::kNone) {  // byte budget exhausted
          hops = hops_before;
          return resolve_fallback(id, follow_final, hops, canonical);
        }
        result = resolve_id(target_id, /*follow_final=*/true, hops,
                            &result_canon);
      } else {
        result = child;
        result_canon = paths_->child(dir_canon, paths_->name(id));
        if (result_canon == PathTable::kNone) {  // byte budget exhausted
          hops = hops_before;
          return resolve_fallback(id, follow_final, hops, canonical);
        }
        // Crossing a mount boundary: the topmost mounted root replaces
        // the underlying directory its mount now shadows.
        if (const InodeNum mroot = mount_root_at(result_canon)) {
          result = mroot;
        }
      }
    }
  }
  if (dentry_enabled_) {
    const bool inserted =
        dentry_.emplace(key, Dentry{result, result_canon, hops - hops_before})
            .second;
    // A re-walked shared-snapshot negative now sits in both maps too.
    if (inserted && key_in_snapshot && dentry_snapshot_cap_ != 0) {
      ++dentry_dup_;
    }
  }
  if (canonical) *canonical = result_canon;
  return result;
}

InodeNum FileSystem::resolve_uncached(std::string_view path, bool follow_final,
                                      std::string* norm_out) const {
  std::string norm = normalize_path(path);
  InodeNum ino = 0;
  try {
    int hops = 0;
    ino = resolve_str(norm, follow_final, hops, nullptr);
  } catch (const FsError&) {
    ino = 0;  // symlink loop counts as a miss, like the interned walk
  }
  if (norm_out) *norm_out = std::move(norm);
  return ino;
}

InodeNum FileSystem::resolve_fallback(PathId id, bool follow_final, int& hops,
                                      PathId* canonical) const {
  std::string canon;
  const InodeNum ino =
      resolve_str(paths_->str(id), follow_final, hops, &canon);
  if (canonical) {
    *canonical = ino != 0 ? paths_->lookup(canon) : kNoPath;
  }
  return ino;
}

InodeNum FileSystem::resolve_str(std::string_view norm, bool follow_final,
                                 int& hops, std::string* canonical) const {
  InodeNum cur = root_ino();
  std::string canon = "/";
  std::size_t pos = 1;
  while (pos < norm.size()) {
    std::size_t end = norm.find('/', pos);
    if (end == std::string_view::npos) end = norm.size();
    const std::string_view comp = norm.substr(pos, end - pos);
    const bool last = end == norm.size();
    pos = end + 1;
    if (comp.empty()) continue;
    if (node(cur).type != NodeType::Directory) return 0;
    InodeNum child = child_of(cur, comp);
    if (child == 0) return 0;
    std::string child_canon = canon.size() == 1
                                  ? '/' + std::string(comp)
                                  : canon + '/' + std::string(comp);
    if (node(child).type == NodeType::Symlink && (follow_final || !last)) {
      if (++hops > kMaxSymlinkHops) {
        throw FsError("too many levels of symbolic links");
      }
      const std::string& target = node(child).link_target;
      const std::string full = normalize_path(
          !target.empty() && target.front() == '/' ? std::string(target)
                                                   : canon + '/' + target);
      std::string sub_canon;
      child = resolve_str(full, /*follow_final=*/true, hops, &sub_canon);
      if (child == 0) return 0;
      child_canon = std::move(sub_canon);
    } else if (has_mounts()) {
      if (const InodeNum mroot = mount_root_at(paths_->lookup(child_canon))) {
        child = mroot;
      }
    }
    cur = child;
    canon = std::move(child_canon);
  }
  if (canonical) *canonical = std::move(canon);
  return cur;
}

PathId FileSystem::intern(std::string_view path) const {
  if (path.empty() || path.front() != '/') {
    throw FsError("path must be absolute: '" + std::string(path) + "'");
  }
  return paths_->intern(path);
}

InodeNum FileSystem::resolve(std::string_view path, bool follow_final,
                             std::string* canonical) const {
  const PathId id = intern(path);
  int hops = 0;
  if (id == kNoPath) {  // interner byte budget exhausted: uncached walk
    return resolve_str(normalize_path(path), follow_final, hops, canonical);
  }
  PathId canon_id = kNoPath;
  const InodeNum ino =
      resolve_id(id, follow_final, hops, canonical ? &canon_id : nullptr);
  if (canonical && ino != 0) {
    if (canon_id != kNoPath) {
      *canonical = paths_->str(canon_id);
    } else {
      // The walk fell back past the byte budget and lost the canonical
      // id; recompute the string with one more uncached walk.
      int rehops = 0;
      resolve_str(paths_->str(id), follow_final, rehops, canonical);
    }
  }
  return ino;
}

PathId FileSystem::resolve_canonical(PathId id) const {
  int hops = 0;
  PathId canon = kNoPath;
  InodeNum ino = 0;
  try {
    ino = resolve_id(id, /*follow_final=*/true, hops, &canon);
  } catch (const FsError&) {
    return kNoPath;
  }
  if (ino == 0) return kNoPath;
  if (canon == kNoPath) {
    // Budget fallback: canonical string via an uncached walk, then a
    // non-allocating lookup (kNone when that path was never interned).
    std::string canon_str;
    int rehops = 0;
    try {
      if (resolve_str(paths_->str(id), true, rehops, &canon_str) == 0) {
        return kNoPath;
      }
    } catch (const FsError&) {
      return kNoPath;
    }
    return paths_->lookup(canon_str);
  }
  return canon;
}

void FileSystem::set_dentry_cache(bool enabled) {
  dentry_enabled_ = enabled;
  invalidate_dentries();
}

// ----- mount table ---------------------------------------------------------

void FileSystem::mount(std::string_view point,
                       std::shared_ptr<FileSystem> backing, MountKind kind,
                       bool read_only, std::shared_ptr<FileSystem> lower,
                       std::string_view source) {
  if (!backing) throw FsError("mount: null backing filesystem");
  if (backing.get() == this) {
    throw FsError("mount: cannot mount a view into itself");
  }
  if (backing->has_mounts()) {
    throw FsError("mount: nested mount tables are not supported");
  }
  if (mounts_.size() >= 0xfffe) throw FsError("mount: table full");
  const std::string norm = normalize_path(point);
  mkdir_p(norm);  // the mountpoint directory must exist
  std::string canon_str;
  if (resolve(norm, /*follow_final=*/true, &canon_str) == 0) {
    throw FsError("mount: cannot resolve mountpoint: " + norm);
  }
  const PathId canon = paths_->intern(canon_str);
  if (canon == kNoPath) {
    throw FsError("mount: path-table byte budget exhausted at " + norm);
  }
  Mount m;
  m.point = canon;
  m.kind = kind;
  m.read_only = read_only;
  m.lower = std::move(lower);
  if (kind == MountKind::Bind) {
    const std::string src = normalize_path(source);
    const InodeNum src_ino = backing->resolve(src, /*follow_final=*/true);
    if (src_ino == 0 ||
        backing->node(src_ino).type != NodeType::Directory) {
      throw FsError("mount: bind source is not a directory: " + src);
    }
    m.source_root = src_ino;
  }
  m.backing = std::move(backing);
  mounts_.push_back(std::move(m));
  mount_at_[canon].push_back(static_cast<std::uint16_t>(mounts_.size() - 1));
  invalidate_dentries();  // the namespace changed
}

void FileSystem::mount_image(std::string_view point,
                             std::shared_ptr<FileSystem> image) {
  mount(point, std::move(image), MountKind::Image, /*read_only=*/true);
}

void FileSystem::mount_overlay(std::string_view point,
                               const std::shared_ptr<FileSystem>& lower) {
  // The writable upper layer is a CoW fork of the shared image; `lower`
  // rides along so vfs::save_fleet can persist the per-view delta.
  auto upper = std::make_shared<FileSystem>(lower->fork());
  mount(point, std::move(upper), MountKind::Overlay, /*read_only=*/false,
        lower);
}

void FileSystem::mount_tmpfs(std::string_view point, bool read_only) {
  mount(point, std::make_shared<FileSystem>(), MountKind::Tmpfs, read_only);
}

void FileSystem::mount_bind(std::string_view point,
                            std::shared_ptr<FileSystem> source_fs,
                            std::string_view source_path, bool read_only) {
  mount(point, std::move(source_fs), MountKind::Bind, read_only, nullptr,
        source_path);
}

void FileSystem::umount(std::string_view point) {
  const std::string norm = normalize_path(point);
  std::string canon_str;
  if (resolve(norm, /*follow_final=*/true, &canon_str) == 0) {
    throw FsError("umount: no such path: " + norm);
  }
  const PathId canon = paths_->lookup(canon_str);
  const auto it =
      canon != kNoPath ? mount_at_.find(canon) : mount_at_.end();
  if (it == mount_at_.end() || it->second.empty()) {
    throw FsError("umount: not a mountpoint: " + norm);
  }
  mounts_[it->second.back()].active = false;
  it->second.pop_back();
  if (it->second.empty()) mount_at_.erase(it);
  invalidate_dentries();
}

std::vector<MountInfo> FileSystem::mounts() const {
  std::vector<MountInfo> out;
  for (const Mount& m : mounts_) {
    if (!m.active) continue;
    out.push_back(
        MountInfo{paths_->str(m.point), m.kind, m.read_only, m.latency});
  }
  return out;
}

void FileSystem::set_mount_latency(std::string_view point,
                                   MountLatency latency) {
  const std::string norm = normalize_path(point);
  std::string canon_str;
  if (resolve(norm, /*follow_final=*/true, &canon_str) == 0) {
    throw FsError("set_mount_latency: no such path: " + norm);
  }
  const PathId canon = paths_->lookup(canon_str);
  const auto it = canon != kNoPath ? mount_at_.find(canon) : mount_at_.end();
  if (it == mount_at_.end() || it->second.empty()) {
    throw FsError("set_mount_latency: not a mountpoint: " + norm);
  }
  mounts_[it->second.back()].latency = latency;
}

bool FileSystem::has_node_local_mount() const {
  for (const Mount& m : mounts_) {
    if (m.active && m.latency == MountLatency::NodeLocal) return true;
  }
  return false;
}

bool FileSystem::under_node_local_mount(const std::string& path) const {
  for (const Mount& m : mounts_) {
    if (!m.active || m.latency != MountLatency::NodeLocal) continue;
    const std::string& point = paths_->str(m.point);
    if (point == "/") return true;
    if (path.size() > point.size() && path[point.size()] == '/' &&
        path.compare(0, point.size(), point) == 0) {
      return true;
    }
    if (path == point) return true;
  }
  return false;
}

bool FileSystem::op_is_node_local(InodeNum ino, bool hit,
                                  const std::string& path) const {
  if (hit && ino != 0) {
    const std::uint16_t m = mount_index(ino);
    if (m == 0) return false;
    const Mount& mnt = mounts_[m - 1];
    // Only the SHARED substrate of the mount is pre-staged: a node the
    // view created or CoW-shadowed (overlay upper writes) diverges
    // per-rank and always pays the shared-FS price.
    return mnt.latency == MountLatency::NodeLocal && op_is_shared(ino);
  }
  // Miss (or unresolved read): a probe that dies inside a pre-staged
  // image's namespace is answered locally — the local negative the PR-5
  // follow-up asked for.
  return under_node_local_mount(path);
}

// ----- setup ---------------------------------------------------------------

InodeNum FileSystem::parent_of(const std::string& norm, bool create) {
  const std::string dir = dirname(norm);
  InodeNum ino = resolve(dir, /*follow_final=*/true);
  if (ino != 0) {
    if (node(ino).type != NodeType::Directory) {
      throw FsError("not a directory: " + dir);
    }
    return ino;
  }
  if (!create) throw FsError("no such directory: " + dir);
  mkdir_p(dir);
  ino = resolve(dir, true);
  assert(ino != 0);
  return ino;
}

void FileSystem::mkdir_p(std::string_view path) {
  const std::string norm = normalize_path(path);
  if (norm == "/") return;
  InodeNum cur = root_ino();
  std::string prefix;
  for (const auto& comp : support::split_nonempty(norm, '/')) {
    prefix += '/';
    prefix += comp;
    // resolve() handles symlinked intermediates, mount crossings, and the
    // interner byte budget uniformly; setup traffic is uncounted anyway.
    const InodeNum next = resolve(prefix, /*follow_final=*/true);
    if (next == 0) {
      if (node(cur).type != NodeType::Directory) {
        throw FsError("not a directory: " + prefix);
      }
      if (child_of(cur, comp) != 0) {
        // Exists but does not resolve: a dangling symlink in the way.
        throw FsError("not a directory (through symlink): " + prefix);
      }
      cur = create_child(cur, comp, NodeType::Directory);
    } else if (node(next).type != NodeType::Directory) {
      if (node(cur).type == NodeType::Directory) {
        if (const InodeNum direct = child_of(cur, comp);
            direct != 0 && node(direct).type == NodeType::Symlink) {
          throw FsError("not a directory (through symlink): " + prefix);
        }
      }
      throw FsError("not a directory: " + prefix);
    } else {
      cur = next;
    }
  }
}

void FileSystem::write_file(std::string_view path, FileData data) {
  const std::string norm = normalize_path(path);
  if (norm == "/") throw FsError("cannot write to /");
  const InodeNum parent = parent_of(norm, /*create=*/true);
  const std::string name = basename(norm);
  InodeNum child = child_of(parent, name);
  if (child != 0 && node(child).type == NodeType::Symlink) {
    // Writing through a symlink targets the link's destination.
    std::string canonical;
    const InodeNum target = resolve(norm, true, &canonical);
    if (target != 0) {
      child = target;
    } else {
      throw FsError("dangling symlink: " + norm);
    }
  }
  if (child == 0) {
    child = create_child(parent, name, NodeType::Regular);
  } else if (node(child).type == NodeType::Directory) {
    throw FsError("is a directory: " + norm);
  }
  mutable_node(child).data = std::move(data);
}

void FileSystem::symlink(std::string_view target, std::string_view linkpath) {
  const std::string norm = normalize_path(linkpath);
  const InodeNum parent = parent_of(norm, /*create=*/true);
  const std::string name = basename(norm);
  if (child_of(parent, name) != 0) {
    throw FsError("already exists: " + norm);
  }
  const InodeNum child = create_child(parent, name, NodeType::Symlink);
  mutable_node(child).link_target = std::string(target);
}

void FileSystem::remove_subtree(InodeNum ino) {
  // Bookkeeping only: once detached from its parent the subtree is
  // unreachable, so the nodes themselves are left untouched — on a forked
  // view, writing them would force pointless CoW copies of every node in
  // the doomed subtree.
  for (const auto& [name, child] : node(ino).children) {
    (void)name;
    remove_subtree(tag_like(ino, child));
  }
  if (const std::uint16_t m = mount_index(ino)) {
    --mounts_[m - 1].backing->live_inodes_;
  } else {
    --live_inodes_;
  }
}

void FileSystem::remove(std::string_view path, bool recursive) {
  const std::string norm = normalize_path(path);
  if (norm == "/") throw FsError("cannot remove /");
  std::string canon_dir;
  const InodeNum parent = resolve(dirname(norm), true, &canon_dir);
  if (parent == 0) throw FsError("no such path: " + norm);
  const std::string name = basename(norm);
  if (has_mounts()) {
    ensure_no_mount_under(
        canon_dir == "/" ? '/' + name : canon_dir + '/' + name, norm);
  }
  const InodeNum ino = child_of(parent, name);
  if (ino == 0) throw FsError("no such path: " + norm);
  if (node(ino).type == NodeType::Directory && !node(ino).children.empty() &&
      !recursive) {
    throw FsError("directory not empty: " + norm);
  }
  ensure_writable(parent);
  remove_subtree(ino);
  auto& children = mutable_node(parent).children;
  children.erase(std::find_if(children.begin(), children.end(),
                              [&](const auto& p) { return p.first == name; }));
}

void FileSystem::rename(std::string_view from, std::string_view to) {
  const std::string norm_from = normalize_path(from);
  const std::string norm_to = normalize_path(to);
  std::string canon_from_dir;
  const InodeNum from_parent =
      resolve(dirname(norm_from), true, &canon_from_dir);
  if (from_parent == 0) throw FsError("no such path: " + norm_from);
  const std::string from_name = basename(norm_from);
  const InodeNum moving = child_of(from_parent, from_name);
  if (moving == 0) throw FsError("no such path: " + norm_from);
  if (has_mounts()) {
    ensure_no_mount_under(canon_from_dir == "/"
                              ? '/' + from_name
                              : canon_from_dir + '/' + from_name,
                          norm_from);
  }
  const InodeNum to_parent = parent_of(norm_to, /*create=*/true);
  if (mount_index(from_parent) != mount_index(to_parent)) {
    // rename(2) across filesystems fails EXDEV; mounts are separate stores.
    throw FsError("cross-mount rename: " + norm_from + " -> " + norm_to);
  }
  if (node(moving).type == NodeType::Directory) {
    // Moving a directory underneath itself would orphan the whole subtree
    // (POSIX EINVAL). Checked by inode, so symlink aliases can't evade it.
    std::vector<InodeNum> stack{moving};
    while (!stack.empty()) {
      const InodeNum cur = stack.back();
      stack.pop_back();
      if (cur == to_parent) {
        throw FsError("cannot move a directory into itself: " + norm_from +
                      " -> " + norm_to);
      }
      for (const auto& [name, child] : node(cur).children) {
        (void)name;
        stack.push_back(tag_like(cur, child));
      }
    }
  }
  {
    auto& from_children = mutable_node(from_parent).children;
    const auto it =
        std::find_if(from_children.begin(), from_children.end(),
                     [&](const auto& p) { return p.first == from_name; });
    from_children.erase(it);
  }  // reference dropped: mutable_node below may shadow-copy other nodes

  const std::string to_name = basename(norm_to);
  auto& to_children = mutable_node(to_parent).children;
  const auto existing =
      std::find_if(to_children.begin(), to_children.end(),
                   [&](const auto& p) { return p.first == to_name; });
  if (existing != to_children.end()) {
    if (node(tag_like(to_parent, existing->second)).type ==
        NodeType::Directory) {
      throw FsError("rename over directory: " + norm_to);
    }
    remove_subtree(tag_like(to_parent, existing->second));
    to_children.erase(existing);
  }
  to_children.emplace_back(to_name, local_ino(moving));
}

bool FileSystem::exists(std::string_view path) const {
  try {
    return resolve(path, true) != 0;
  } catch (const FsError&) {
    return false;  // symlink loop counts as nonexistent for probing purposes
  }
}

std::vector<std::string> FileSystem::list_dir(std::string_view path) const {
  const InodeNum ino = resolve(path, true);
  if (ino == 0) throw FsError("no such directory: " + std::string(path));
  const Node& dir = node(ino);
  if (dir.type != NodeType::Directory) {
    throw FsError("not a directory: " + std::string(path));
  }
  std::vector<std::string> out;
  out.reserve(dir.children.size());
  for (const auto& [name, child] : dir.children) {
    (void)child;
    out.push_back(name);
  }
  return out;
}

std::optional<std::string> FileSystem::realpath(std::string_view path) const {
  std::string canonical;
  try {
    if (resolve(path, true, &canonical) == 0) return std::nullopt;
  } catch (const FsError&) {
    return std::nullopt;
  }
  return canonical;
}

const FileData* FileSystem::peek(std::string_view path) const {
  InodeNum ino = 0;
  try {
    ino = resolve(path, true);
  } catch (const FsError&) {
    return nullptr;
  }
  if (ino == 0 || node(ino).type != NodeType::Regular) return nullptr;
  return &node(ino).data;
}

std::optional<NodeType> FileSystem::peek_type(std::string_view path,
                                              bool follow) const {
  InodeNum ino = 0;
  try {
    ino = resolve(path, follow);
  } catch (const FsError&) {
    return std::nullopt;
  }
  if (ino == 0) return std::nullopt;
  return node(ino).type;
}

std::optional<std::string> FileSystem::peek_link_target(
    std::string_view path) const {
  InodeNum ino = 0;
  try {
    ino = resolve(path, /*follow_final=*/false);
  } catch (const FsError&) {
    return std::nullopt;
  }
  if (ino == 0 || node(ino).type != NodeType::Symlink) return std::nullopt;
  return node(ino).link_target;
}

std::uint64_t FileSystem::disk_usage(std::string_view path) const {
  InodeNum ino = 0;
  try {
    ino = resolve(path, true);
  } catch (const FsError&) {
    return 0;
  }
  if (ino == 0) return 0;
  // Iterative DFS over the subtree.
  std::uint64_t total = 0;
  std::vector<InodeNum> stack{ino};
  while (!stack.empty()) {
    const InodeNum cur_ino = stack.back();
    stack.pop_back();
    const Node& cur = node(cur_ino);
    switch (cur.type) {
      case NodeType::Regular:
        total += cur.data.size();
        break;
      case NodeType::Directory:
        for (const auto& [name, child] : cur.children) {
          (void)name;
          stack.push_back(tag_like(cur_ino, child));
        }
        break;
      case NodeType::Symlink:
        break;  // links are weightless here
    }
  }
  return total;
}

std::optional<Stat> FileSystem::stat(std::string_view path) {
  const PathId id = intern(path);
  if (id != kNoPath) return stat(id);
  // Interner byte budget exhausted: uncached walk, identical charge.
  std::string norm;
  const InodeNum ino = resolve_uncached(path, /*follow_final=*/true, &norm);
  charge(OpKind::Stat, ino != 0, norm, ino);
  if (ino == 0) return std::nullopt;
  const Node& n = node(ino);
  return Stat{ino, n.type, n.type == NodeType::Regular ? n.data.size() : 0};
}

std::optional<Stat> FileSystem::stat(PathId id) {
  InodeNum ino = 0;
  try {
    int hops = 0;
    ino = resolve_id(id, /*follow_final=*/true, hops, nullptr);
  } catch (const FsError&) {
    ino = 0;
  }
  charge(OpKind::Stat, ino != 0, paths_->str(id), ino);
  if (ino == 0) return std::nullopt;
  const Node& n = node(ino);
  return Stat{ino, n.type, n.type == NodeType::Regular ? n.data.size() : 0};
}

std::optional<Stat> FileSystem::lstat(std::string_view path) {
  const PathId id = intern(path);
  if (id != kNoPath) return lstat(id);
  std::string norm;
  const InodeNum ino = resolve_uncached(path, /*follow_final=*/false, &norm);
  charge(OpKind::Stat, ino != 0, norm, ino);
  if (ino == 0) return std::nullopt;
  const Node& n = node(ino);
  return Stat{ino, n.type, n.type == NodeType::Regular ? n.data.size() : 0};
}

std::optional<Stat> FileSystem::lstat(PathId id) {
  InodeNum ino = 0;
  try {
    int hops = 0;
    ino = resolve_id(id, /*follow_final=*/false, hops, nullptr);
  } catch (const FsError&) {
    ino = 0;
  }
  charge(OpKind::Stat, ino != 0, paths_->str(id), ino);
  if (ino == 0) return std::nullopt;
  const Node& n = node(ino);
  return Stat{ino, n.type, n.type == NodeType::Regular ? n.data.size() : 0};
}

const FileData* FileSystem::open(std::string_view path) {
  const PathId id = intern(path);
  if (id != kNoPath) return open(id);
  std::string norm;
  const InodeNum ino = resolve_uncached(path, /*follow_final=*/true, &norm);
  const bool hit = ino != 0 && node(ino).type == NodeType::Regular;
  charge(OpKind::Open, hit, norm, ino);
  if (!hit) return nullptr;
  return &node(ino).data;
}

const FileData* FileSystem::open(PathId id) {
  InodeNum ino = 0;
  try {
    int hops = 0;
    ino = resolve_id(id, /*follow_final=*/true, hops, nullptr);
  } catch (const FsError&) {
    ino = 0;
  }
  const bool hit = ino != 0 && node(ino).type == NodeType::Regular;
  charge(OpKind::Open, hit, paths_->str(id), ino);
  if (!hit) return nullptr;
  return &node(ino).data;
}

void FileSystem::count_read(std::string_view path) {
  const PathId id = intern(path);
  if (id != kNoPath) {
    count_read(id);
    return;
  }
  charge(OpKind::Read, true, normalize_path(path));
}

void FileSystem::count_read(PathId id) {
  charge(OpKind::Read, true, paths_->str(id));
}

}  // namespace depchaos::vfs
