#include "depchaos/vfs/vfs.hpp"

#include <algorithm>
#include <cassert>

#include "depchaos/support/strings.hpp"

namespace depchaos::vfs {

namespace {
constexpr int kMaxSymlinkHops = 40;  // Linux ELOOP limit
}

SyscallStats& SyscallStats::operator+=(const SyscallStats& other) {
  stat_calls += other.stat_calls;
  open_calls += other.open_calls;
  read_calls += other.read_calls;
  readlink_calls += other.readlink_calls;
  failed_probes += other.failed_probes;
  sim_time_s += other.sim_time_s;
  return *this;
}

std::string normalize_path(std::string_view path) {
  if (path.empty() || path.front() != '/') {
    throw FsError("path must be absolute: '" + std::string(path) + "'");
  }
  std::vector<std::string> out;
  for (const auto& comp : support::split_nonempty(path, '/')) {
    if (comp == ".") continue;
    if (comp == "..") {
      if (!out.empty()) out.pop_back();
      continue;
    }
    out.push_back(comp);
  }
  if (out.empty()) return "/";
  std::string result;
  for (const auto& comp : out) {
    result += '/';
    result += comp;
  }
  return result;
}

std::string dirname(std::string_view path) {
  const std::string norm = normalize_path(path);
  const auto pos = norm.rfind('/');
  if (pos == 0) return "/";
  return norm.substr(0, pos);
}

std::string basename(std::string_view path) {
  const std::string norm = normalize_path(path);
  if (norm == "/") return "/";
  return norm.substr(norm.rfind('/') + 1);
}

InodeNum FileSystem::Node::find_child(std::string_view name) const {
  for (const auto& [child_name, ino] : children) {
    if (child_name == name) return ino;
  }
  return 0;
}

FileSystem::FileSystem()
    : paths_(std::make_shared<support::PathTable>()) {
  top_nodes_.resize(2);  // [0] unused; [1] = root
  top_nodes_[1].type = NodeType::Directory;
  live_inodes_ = 1;
}

FileSystem::FileSystem(const FileSystem& other) {
  // Flatten the chain: the copy is a fresh single-layer world with the same
  // inode numbering (dead nodes included, so post-copy allocations match).
  const InodeNum end = other.end_ino();
  top_nodes_.reserve(end);
  for (InodeNum i = 0; i < end; ++i) top_nodes_.push_back(other.node(i));
  live_inodes_ = other.live_inodes_;
  stats_ = other.stats_;
  latency_ = other.latency_;
  counting_ = other.counting_;
  // The interner is world-independent, so the copy joins the family table;
  // the dentry cache is a per-view memo and starts cold.
  paths_ = other.paths_;
  dentry_enabled_ = other.dentry_enabled_;
  auto_collapse_ = other.auto_collapse_;
}

FileSystem& FileSystem::operator=(const FileSystem& other) {
  if (this != &other) {
    FileSystem copy(other);
    *this = std::move(copy);
  }
  return *this;
}

void FileSystem::freeze_top() {
  if (base_ && top_nodes_.empty() && top_shadow_.empty()) return;
  auto layer = std::make_shared<Layer>();
  layer->parent = std::move(base_);
  layer->start = top_start_;
  layer->nodes = std::move(top_nodes_);
  layer->shadowed = std::move(top_shadow_);
  top_start_ = layer->start + layer->nodes.size();
  top_nodes_.clear();
  top_shadow_.clear();
  base_ = std::move(layer);
}

FileSystem FileSystem::fork() {
  freeze_top();
  dentry_.clear();  // fork boundary: both sides restart cold
  FileSystem child{ForkTag{}};
  child.base_ = base_;
  child.top_start_ = top_start_;
  child.live_inodes_ = live_inodes_;
  child.counting_ = counting_;
  child.paths_ = paths_;  // one interner per fork family
  child.dentry_enabled_ = dentry_enabled_;
  child.auto_collapse_ = auto_collapse_;
  if (latency_) {
    auto clone = latency_->clone();
    child.latency_ = clone ? std::move(clone) : latency_;
  }
  // Layer compaction: past the threshold the chain walk under every cache
  // miss starts to dominate, so flatten the CHILD (the view that carries
  // the chain forward); the parent stays O(1) as fork() promises.
  if (auto_collapse_ != 0 && child.layer_depth() > auto_collapse_) {
    child.collapse();
  }
  return child;
}

void FileSystem::collapse() {
  if (!base_) return;  // already flat
  const InodeNum end = end_ino();
  std::vector<Node> flat;
  flat.reserve(end);
  for (InodeNum i = 0; i < end; ++i) flat.push_back(node(i));
  top_nodes_ = std::move(flat);
  top_shadow_.clear();
  top_start_ = 0;
  base_.reset();
  // Cached dentries survive: inode numbers and content are unchanged.
}

const FileSystem::Node& FileSystem::node(InodeNum ino) const {
  if (ino >= top_start_) return top_nodes_[ino - top_start_];
  if (const auto it = top_shadow_.find(ino); it != top_shadow_.end()) {
    return it->second;
  }
  for (const Layer* layer = base_.get(); layer != nullptr;
       layer = layer->parent.get()) {
    if (ino >= layer->start) return layer->nodes[ino - layer->start];
    if (const auto it = layer->shadowed.find(ino);
        it != layer->shadowed.end()) {
      return it->second;
    }
  }
  throw FsError("invalid inode");  // unreachable for allocated inode numbers
}

FileSystem::Node& FileSystem::mutable_node(InodeNum ino) {
  // Every structural change flows through here, so this is the dentry
  // cache's single invalidation point: drop the memo BEFORE handing out
  // the write reference (resolution after the write starts cold).
  dentry_.clear();
  if (ino >= top_start_) return top_nodes_[ino - top_start_];
  const auto it = top_shadow_.find(ino);
  if (it != top_shadow_.end()) return it->second;
  // First write to a base-layer inode: make the CoW shadow copy.
  return top_shadow_.emplace(ino, node(ino)).first->second;
}

std::size_t FileSystem::layer_depth() const {
  std::size_t depth = 1;  // the private overlay
  for (const Layer* layer = base_.get(); layer != nullptr;
       layer = layer->parent.get()) {
    ++depth;
  }
  return depth;
}

std::uint64_t FileSystem::owned_bytes() const {
  const auto bytes_of = [](const Node& n) {
    std::uint64_t total = sizeof(Node);
    total += n.data.bytes.size();
    total += n.link_target.size();
    for (const auto& [name, ino] : n.children) {
      (void)ino;
      total += sizeof(std::pair<std::string, InodeNum>) + name.size();
    }
    return total;
  };
  std::uint64_t total = 0;
  for (const Node& n : top_nodes_) total += bytes_of(n);
  for (const auto& [ino, n] : top_shadow_) {
    (void)ino;
    total += bytes_of(n) + sizeof(InodeNum);
  }
  return total;
}

InodeNum FileSystem::new_node(NodeType type) {
  top_nodes_.emplace_back();
  top_nodes_.back().type = type;
  ++live_inodes_;
  return end_ino() - 1;
}

void FileSystem::charge(OpKind op, bool hit, const std::string& path) {
  if (!counting_) return;
  switch (op) {
    case OpKind::Stat:
      ++stats_.stat_calls;
      break;
    case OpKind::Open:
      ++stats_.open_calls;
      break;
    case OpKind::Read:
      ++stats_.read_calls;
      break;
    case OpKind::Readlink:
      ++stats_.readlink_calls;
      break;
  }
  if (!hit && (op == OpKind::Stat || op == OpKind::Open)) {
    ++stats_.failed_probes;
  }
  if (latency_) stats_.sim_time_s += latency_->cost(op, hit, path);
}

InodeNum FileSystem::resolve_id(PathId id, bool follow_final, int& hops,
                                PathId* canonical) const {
  using support::PathTable;
  if (id == PathTable::kRoot) {
    if (canonical) *canonical = PathTable::kRoot;
    return 1;
  }
  const std::uint64_t key = dentry_key(id, follow_final);
  if (dentry_enabled_) {
    if (const auto it = dentry_.find(key); it != dentry_.end()) {
      // Replay the hop budget the memoized walk consumed so a resolution
      // that would have tripped ELOOP still trips it through the cache.
      hops += it->second.hops;
      if (hops > kMaxSymlinkHops) {
        throw FsError("too many levels of symbolic links");
      }
      if (canonical) *canonical = it->second.canonical;
      return it->second.ino;
    }
  }
  const int hops_before = hops;
  InodeNum result = 0;
  PathId result_canon = PathTable::kNone;

  // Resolve the parent directory first (intermediate symlinks are always
  // followed), then take one component step. The recursion memoizes every
  // prefix, so a directory probed once is never chain-walked again until
  // the next mutation.
  PathId dir_canon = PathTable::kNone;
  const InodeNum dir_ino =
      resolve_id(paths_->parent(id), /*follow_final=*/true, hops, &dir_canon);
  if (dir_ino != 0 && node(dir_ino).type == NodeType::Directory) {
    const InodeNum child = node(dir_ino).find_child(paths_->name(id));
    if (child != 0) {
      if (node(child).type == NodeType::Symlink && follow_final) {
        if (++hops > kMaxSymlinkHops) {
          throw FsError("too many levels of symbolic links");
        }
        // Absolute targets restart from the root; relative targets resolve
        // lexically against the link's (canonical) directory — exactly
        // normalize_path(dir + "/" + target), without building the string.
        const std::string& target = node(child).link_target;
        const PathId target_id =
            (!target.empty() && target.front() == '/')
                ? paths_->intern(target)
                : paths_->intern_under(dir_canon, target);
        result = resolve_id(target_id, /*follow_final=*/true, hops,
                            &result_canon);
      } else {
        result = child;
        result_canon = paths_->child(dir_canon, paths_->name(id));
      }
    }
  }
  if (dentry_enabled_) {
    dentry_.emplace(key, Dentry{result, result_canon, hops - hops_before});
  }
  if (canonical) *canonical = result_canon;
  return result;
}

PathId FileSystem::intern(std::string_view path) const {
  if (path.empty() || path.front() != '/') {
    throw FsError("path must be absolute: '" + std::string(path) + "'");
  }
  return paths_->intern(path);
}

InodeNum FileSystem::resolve(std::string_view path, bool follow_final,
                             std::string* canonical) const {
  const PathId id = intern(path);
  int hops = 0;
  PathId canon_id = support::PathTable::kNone;
  const InodeNum ino =
      resolve_id(id, follow_final, hops, canonical ? &canon_id : nullptr);
  if (canonical && ino != 0) *canonical = paths_->str(canon_id);
  return ino;
}

PathId FileSystem::resolve_canonical(PathId id) const {
  int hops = 0;
  PathId canon = support::PathTable::kNone;
  try {
    if (resolve_id(id, /*follow_final=*/true, hops, &canon) == 0) {
      return support::PathTable::kNone;
    }
  } catch (const FsError&) {
    return support::PathTable::kNone;
  }
  return canon;
}

void FileSystem::set_dentry_cache(bool enabled) {
  dentry_enabled_ = enabled;
  dentry_.clear();
}

InodeNum FileSystem::parent_of(const std::string& norm, bool create) {
  const std::string dir = dirname(norm);
  InodeNum ino = resolve(dir, /*follow_final=*/true);
  if (ino != 0) {
    if (node(ino).type != NodeType::Directory) {
      throw FsError("not a directory: " + dir);
    }
    return ino;
  }
  if (!create) throw FsError("no such directory: " + dir);
  mkdir_p(dir);
  ino = resolve(dir, true);
  assert(ino != 0);
  return ino;
}

void FileSystem::mkdir_p(std::string_view path) {
  const std::string norm = normalize_path(path);
  if (norm == "/") return;
  InodeNum cur = 1;
  std::string prefix;
  for (const auto& comp : support::split_nonempty(norm, '/')) {
    prefix += '/';
    prefix += comp;
    InodeNum child = node(cur).find_child(comp);
    if (child == 0) {
      child = new_node(NodeType::Directory);
      mutable_node(cur).children.emplace_back(comp, child);
    } else if (node(child).type == NodeType::Symlink) {
      // Follow symlinked intermediate directories.
      child = resolve(prefix, /*follow_final=*/true);
      if (child == 0 || node(child).type != NodeType::Directory) {
        throw FsError("not a directory (through symlink): " + prefix);
      }
    } else if (node(child).type != NodeType::Directory) {
      throw FsError("not a directory: " + prefix);
    }
    cur = child;
  }
}

void FileSystem::write_file(std::string_view path, FileData data) {
  const std::string norm = normalize_path(path);
  if (norm == "/") throw FsError("cannot write to /");
  const InodeNum parent = parent_of(norm, /*create=*/true);
  const std::string name = basename(norm);
  InodeNum child = node(parent).find_child(name);
  if (child != 0 && node(child).type == NodeType::Symlink) {
    // Writing through a symlink targets the link's destination.
    std::string canonical;
    const InodeNum target = resolve(norm, true, &canonical);
    if (target != 0) {
      child = target;
    } else {
      throw FsError("dangling symlink: " + norm);
    }
  }
  if (child == 0) {
    child = new_node(NodeType::Regular);
    mutable_node(parent).children.emplace_back(name, child);
  } else if (node(child).type == NodeType::Directory) {
    throw FsError("is a directory: " + norm);
  }
  mutable_node(child).data = std::move(data);
}

void FileSystem::symlink(std::string_view target, std::string_view linkpath) {
  const std::string norm = normalize_path(linkpath);
  const InodeNum parent = parent_of(norm, /*create=*/true);
  const std::string name = basename(norm);
  if (node(parent).find_child(name) != 0) {
    throw FsError("already exists: " + norm);
  }
  const InodeNum child = new_node(NodeType::Symlink);
  mutable_node(child).link_target = std::string(target);
  mutable_node(parent).children.emplace_back(name, child);
}

void FileSystem::remove_subtree(InodeNum ino) {
  // Bookkeeping only: once detached from its parent the subtree is
  // unreachable, so the nodes themselves are left untouched — on a forked
  // view, writing them would force pointless CoW copies of every node in
  // the doomed subtree.
  for (const auto& [name, child] : node(ino).children) {
    (void)name;
    remove_subtree(child);
  }
  --live_inodes_;
}

void FileSystem::remove(std::string_view path, bool recursive) {
  const std::string norm = normalize_path(path);
  if (norm == "/") throw FsError("cannot remove /");
  const InodeNum parent = resolve(dirname(norm), true);
  if (parent == 0) throw FsError("no such path: " + norm);
  const std::string name = basename(norm);
  const InodeNum ino = node(parent).find_child(name);
  if (ino == 0) throw FsError("no such path: " + norm);
  if (node(ino).type == NodeType::Directory && !node(ino).children.empty() &&
      !recursive) {
    throw FsError("directory not empty: " + norm);
  }
  remove_subtree(ino);
  auto& children = mutable_node(parent).children;
  children.erase(std::find_if(children.begin(), children.end(),
                              [&](const auto& p) { return p.first == name; }));
}

void FileSystem::rename(std::string_view from, std::string_view to) {
  const std::string norm_from = normalize_path(from);
  const std::string norm_to = normalize_path(to);
  const InodeNum from_parent = resolve(dirname(norm_from), true);
  if (from_parent == 0) throw FsError("no such path: " + norm_from);
  const std::string from_name = basename(norm_from);
  InodeNum moving = 0;
  {
    auto& from_children = mutable_node(from_parent).children;
    const auto it =
        std::find_if(from_children.begin(), from_children.end(),
                     [&](const auto& p) { return p.first == from_name; });
    if (it == from_children.end()) {
      throw FsError("no such path: " + norm_from);
    }
    moving = it->second;
    from_children.erase(it);
  }  // reference dropped: parent_of below may allocate nodes

  const InodeNum to_parent = parent_of(norm_to, /*create=*/true);
  const std::string to_name = basename(norm_to);
  auto& to_children = mutable_node(to_parent).children;
  const auto existing =
      std::find_if(to_children.begin(), to_children.end(),
                   [&](const auto& p) { return p.first == to_name; });
  if (existing != to_children.end()) {
    if (node(existing->second).type == NodeType::Directory) {
      throw FsError("rename over directory: " + norm_to);
    }
    remove_subtree(existing->second);
    to_children.erase(existing);
  }
  to_children.emplace_back(to_name, moving);
}

bool FileSystem::exists(std::string_view path) const {
  try {
    return resolve(path, true) != 0;
  } catch (const FsError&) {
    return false;  // symlink loop counts as nonexistent for probing purposes
  }
}

std::vector<std::string> FileSystem::list_dir(std::string_view path) const {
  const InodeNum ino = resolve(path, true);
  if (ino == 0) throw FsError("no such directory: " + std::string(path));
  const Node& dir = node(ino);
  if (dir.type != NodeType::Directory) {
    throw FsError("not a directory: " + std::string(path));
  }
  std::vector<std::string> out;
  out.reserve(dir.children.size());
  for (const auto& [name, child] : dir.children) {
    (void)child;
    out.push_back(name);
  }
  return out;
}

std::optional<std::string> FileSystem::realpath(std::string_view path) const {
  std::string canonical;
  try {
    if (resolve(path, true, &canonical) == 0) return std::nullopt;
  } catch (const FsError&) {
    return std::nullopt;
  }
  return canonical;
}

const FileData* FileSystem::peek(std::string_view path) const {
  InodeNum ino = 0;
  try {
    ino = resolve(path, true);
  } catch (const FsError&) {
    return nullptr;
  }
  if (ino == 0 || node(ino).type != NodeType::Regular) return nullptr;
  return &node(ino).data;
}

std::optional<NodeType> FileSystem::peek_type(std::string_view path,
                                              bool follow) const {
  InodeNum ino = 0;
  try {
    ino = resolve(path, follow);
  } catch (const FsError&) {
    return std::nullopt;
  }
  if (ino == 0) return std::nullopt;
  return node(ino).type;
}

std::optional<std::string> FileSystem::peek_link_target(
    std::string_view path) const {
  InodeNum ino = 0;
  try {
    ino = resolve(path, /*follow_final=*/false);
  } catch (const FsError&) {
    return std::nullopt;
  }
  if (ino == 0 || node(ino).type != NodeType::Symlink) return std::nullopt;
  return node(ino).link_target;
}

std::uint64_t FileSystem::disk_usage(std::string_view path) const {
  InodeNum ino = 0;
  try {
    ino = resolve(path, true);
  } catch (const FsError&) {
    return 0;
  }
  if (ino == 0) return 0;
  // Iterative DFS over the subtree.
  std::uint64_t total = 0;
  std::vector<InodeNum> stack{ino};
  while (!stack.empty()) {
    const Node& cur = node(stack.back());
    stack.pop_back();
    switch (cur.type) {
      case NodeType::Regular:
        total += cur.data.size();
        break;
      case NodeType::Directory:
        for (const auto& [name, child] : cur.children) {
          (void)name;
          stack.push_back(child);
        }
        break;
      case NodeType::Symlink:
        break;  // links are weightless here
    }
  }
  return total;
}

std::optional<Stat> FileSystem::stat(std::string_view path) {
  return stat(intern(path));
}

std::optional<Stat> FileSystem::stat(PathId id) {
  InodeNum ino = 0;
  try {
    int hops = 0;
    ino = resolve_id(id, /*follow_final=*/true, hops, nullptr);
  } catch (const FsError&) {
    ino = 0;
  }
  charge(OpKind::Stat, ino != 0, paths_->str(id));
  if (ino == 0) return std::nullopt;
  const Node& n = node(ino);
  return Stat{ino, n.type, n.type == NodeType::Regular ? n.data.size() : 0};
}

std::optional<Stat> FileSystem::lstat(std::string_view path) {
  return lstat(intern(path));
}

std::optional<Stat> FileSystem::lstat(PathId id) {
  InodeNum ino = 0;
  try {
    int hops = 0;
    ino = resolve_id(id, /*follow_final=*/false, hops, nullptr);
  } catch (const FsError&) {
    ino = 0;
  }
  charge(OpKind::Stat, ino != 0, paths_->str(id));
  if (ino == 0) return std::nullopt;
  const Node& n = node(ino);
  return Stat{ino, n.type, n.type == NodeType::Regular ? n.data.size() : 0};
}

const FileData* FileSystem::open(std::string_view path) {
  return open(intern(path));
}

const FileData* FileSystem::open(PathId id) {
  InodeNum ino = 0;
  try {
    int hops = 0;
    ino = resolve_id(id, /*follow_final=*/true, hops, nullptr);
  } catch (const FsError&) {
    ino = 0;
  }
  const bool hit = ino != 0 && node(ino).type == NodeType::Regular;
  charge(OpKind::Open, hit, paths_->str(id));
  if (!hit) return nullptr;
  return &node(ino).data;
}

void FileSystem::count_read(std::string_view path) {
  count_read(intern(path));
}

void FileSystem::count_read(PathId id) {
  charge(OpKind::Read, true, paths_->str(id));
}

}  // namespace depchaos::vfs
