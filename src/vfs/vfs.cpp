#include "depchaos/vfs/vfs.hpp"

#include <algorithm>
#include <cassert>

#include "depchaos/support/strings.hpp"

namespace depchaos::vfs {

namespace {
constexpr int kMaxSymlinkHops = 40;  // Linux ELOOP limit
}

SyscallStats& SyscallStats::operator+=(const SyscallStats& other) {
  stat_calls += other.stat_calls;
  open_calls += other.open_calls;
  read_calls += other.read_calls;
  readlink_calls += other.readlink_calls;
  failed_probes += other.failed_probes;
  sim_time_s += other.sim_time_s;
  return *this;
}

std::string normalize_path(std::string_view path) {
  if (path.empty() || path.front() != '/') {
    throw FsError("path must be absolute: '" + std::string(path) + "'");
  }
  std::vector<std::string> out;
  for (const auto& comp : support::split_nonempty(path, '/')) {
    if (comp == ".") continue;
    if (comp == "..") {
      if (!out.empty()) out.pop_back();
      continue;
    }
    out.push_back(comp);
  }
  if (out.empty()) return "/";
  std::string result;
  for (const auto& comp : out) {
    result += '/';
    result += comp;
  }
  return result;
}

std::string dirname(std::string_view path) {
  const std::string norm = normalize_path(path);
  const auto pos = norm.rfind('/');
  if (pos == 0) return "/";
  return norm.substr(0, pos);
}

std::string basename(std::string_view path) {
  const std::string norm = normalize_path(path);
  if (norm == "/") return "/";
  return norm.substr(norm.rfind('/') + 1);
}

InodeNum FileSystem::Node::find_child(const std::string& name) const {
  for (const auto& [child_name, ino] : children) {
    if (child_name == name) return ino;
  }
  return 0;
}

FileSystem::FileSystem() {
  nodes_.resize(2);
  nodes_[1].type = NodeType::Directory;
  live_inodes_ = 1;
}

InodeNum FileSystem::new_node(NodeType type) {
  nodes_.emplace_back();
  nodes_.back().type = type;
  ++live_inodes_;
  return nodes_.size() - 1;
}

void FileSystem::charge(OpKind op, bool hit, const std::string& path) {
  if (!counting_) return;
  switch (op) {
    case OpKind::Stat:
      ++stats_.stat_calls;
      break;
    case OpKind::Open:
      ++stats_.open_calls;
      break;
    case OpKind::Read:
      ++stats_.read_calls;
      break;
    case OpKind::Readlink:
      ++stats_.readlink_calls;
      break;
  }
  if (!hit && (op == OpKind::Stat || op == OpKind::Open)) {
    ++stats_.failed_probes;
  }
  if (latency_) stats_.sim_time_s += latency_->cost(op, hit, path);
}

InodeNum FileSystem::resolve_components(const std::vector<std::string>& comps,
                                        bool follow_final, int& hops,
                                        std::string* canonical) const {
  InodeNum cur = 1;
  std::vector<std::string> canon;
  for (std::size_t i = 0; i < comps.size(); ++i) {
    const Node& node = nodes_[cur];
    if (node.type != NodeType::Directory) return 0;
    const InodeNum child = node.find_child(comps[i]);
    if (child == 0) return 0;
    const bool is_final = (i + 1 == comps.size());
    if (nodes_[child].type == NodeType::Symlink && (follow_final || !is_final)) {
      if (++hops > kMaxSymlinkHops) {
        throw FsError("too many levels of symbolic links");
      }
      // Build the target path: absolute targets restart from root; relative
      // targets are resolved against the link's directory.
      std::string target = nodes_[child].link_target;
      std::string base;
      if (!target.empty() && target.front() == '/') {
        base = target;
      } else {
        base = "/";
        for (const auto& comp : canon) base += comp + "/";
        base += target;
      }
      std::string rest = normalize_path(base);
      for (std::size_t j = i + 1; j < comps.size(); ++j) {
        rest += '/';
        rest += comps[j];
      }
      const auto rest_comps =
          support::split_nonempty(normalize_path(rest), '/');
      return resolve_components(rest_comps, follow_final, hops, canonical);
    }
    canon.push_back(comps[i]);
    cur = child;
  }
  if (canonical) {
    *canonical = "/";
    for (std::size_t i = 0; i < canon.size(); ++i) {
      if (i) *canonical += '/';
      *canonical += canon[i];
    }
    if (canon.empty()) *canonical = "/";
    else if ((*canonical)[0] != '/') *canonical = "/" + *canonical;
  }
  return cur;
}

InodeNum FileSystem::resolve(std::string_view path, bool follow_final,
                             std::string* canonical) const {
  const std::string norm = normalize_path(path);
  const auto comps = support::split_nonempty(norm, '/');
  int hops = 0;
  return resolve_components(comps, follow_final, hops, canonical);
}

InodeNum FileSystem::parent_of(const std::string& norm, bool create) {
  const std::string dir = dirname(norm);
  InodeNum ino = resolve(dir, /*follow_final=*/true);
  if (ino != 0) {
    if (nodes_[ino].type != NodeType::Directory) {
      throw FsError("not a directory: " + dir);
    }
    return ino;
  }
  if (!create) throw FsError("no such directory: " + dir);
  mkdir_p(dir);
  ino = resolve(dir, true);
  assert(ino != 0);
  return ino;
}

void FileSystem::mkdir_p(std::string_view path) {
  const std::string norm = normalize_path(path);
  if (norm == "/") return;
  InodeNum cur = 1;
  std::string prefix;
  for (const auto& comp : support::split_nonempty(norm, '/')) {
    prefix += '/';
    prefix += comp;
    InodeNum child = nodes_[cur].find_child(comp);
    if (child == 0) {
      child = new_node(NodeType::Directory);
      nodes_[cur].children.emplace_back(comp, child);
    } else if (nodes_[child].type == NodeType::Symlink) {
      // Follow symlinked intermediate directories.
      child = resolve(prefix, /*follow_final=*/true);
      if (child == 0 || nodes_[child].type != NodeType::Directory) {
        throw FsError("not a directory (through symlink): " + prefix);
      }
    } else if (nodes_[child].type != NodeType::Directory) {
      throw FsError("not a directory: " + prefix);
    }
    cur = child;
  }
}

void FileSystem::write_file(std::string_view path, FileData data) {
  const std::string norm = normalize_path(path);
  if (norm == "/") throw FsError("cannot write to /");
  const InodeNum parent = parent_of(norm, /*create=*/true);
  const std::string name = basename(norm);
  InodeNum child = nodes_[parent].find_child(name);
  if (child != 0 && nodes_[child].type == NodeType::Symlink) {
    // Writing through a symlink targets the link's destination.
    std::string canonical;
    const InodeNum target = resolve(norm, true, &canonical);
    if (target != 0) {
      child = target;
    } else {
      throw FsError("dangling symlink: " + norm);
    }
  }
  if (child == 0) {
    child = new_node(NodeType::Regular);
    nodes_[parent].children.emplace_back(name, child);
  } else if (nodes_[child].type == NodeType::Directory) {
    throw FsError("is a directory: " + norm);
  }
  nodes_[child].data = std::move(data);
}

void FileSystem::symlink(std::string_view target, std::string_view linkpath) {
  const std::string norm = normalize_path(linkpath);
  const InodeNum parent = parent_of(norm, /*create=*/true);
  const std::string name = basename(norm);
  if (nodes_[parent].find_child(name) != 0) {
    throw FsError("already exists: " + norm);
  }
  const InodeNum child = new_node(NodeType::Symlink);
  nodes_[child].link_target = std::string(target);
  nodes_[parent].children.emplace_back(name, child);
}

void FileSystem::remove_subtree(InodeNum ino) {
  for (const auto& [name, child] : nodes_[ino].children) {
    remove_subtree(child);
  }
  nodes_[ino].children.clear();
  nodes_[ino].alive = false;
  --live_inodes_;
}

void FileSystem::remove(std::string_view path, bool recursive) {
  const std::string norm = normalize_path(path);
  if (norm == "/") throw FsError("cannot remove /");
  const InodeNum parent = resolve(dirname(norm), true);
  if (parent == 0) throw FsError("no such path: " + norm);
  const std::string name = basename(norm);
  auto& children = nodes_[parent].children;
  const auto it = std::find_if(children.begin(), children.end(),
                               [&](const auto& p) { return p.first == name; });
  if (it == children.end()) throw FsError("no such path: " + norm);
  const InodeNum ino = it->second;
  if (nodes_[ino].type == NodeType::Directory &&
      !nodes_[ino].children.empty() && !recursive) {
    throw FsError("directory not empty: " + norm);
  }
  remove_subtree(ino);
  children.erase(it);
}

void FileSystem::rename(std::string_view from, std::string_view to) {
  const std::string norm_from = normalize_path(from);
  const std::string norm_to = normalize_path(to);
  const InodeNum from_parent = resolve(dirname(norm_from), true);
  if (from_parent == 0) throw FsError("no such path: " + norm_from);
  auto& from_children = nodes_[from_parent].children;
  const std::string from_name = basename(norm_from);
  const auto it =
      std::find_if(from_children.begin(), from_children.end(),
                   [&](const auto& p) { return p.first == from_name; });
  if (it == from_children.end()) throw FsError("no such path: " + norm_from);
  const InodeNum moving = it->second;
  from_children.erase(it);

  const InodeNum to_parent = parent_of(norm_to, /*create=*/true);
  const std::string to_name = basename(norm_to);
  auto& to_children = nodes_[to_parent].children;
  const auto existing =
      std::find_if(to_children.begin(), to_children.end(),
                   [&](const auto& p) { return p.first == to_name; });
  if (existing != to_children.end()) {
    if (nodes_[existing->second].type == NodeType::Directory) {
      throw FsError("rename over directory: " + norm_to);
    }
    remove_subtree(existing->second);
    to_children.erase(existing);
  }
  to_children.emplace_back(to_name, moving);
}

bool FileSystem::exists(std::string_view path) const {
  try {
    return resolve(path, true) != 0;
  } catch (const FsError&) {
    return false;  // symlink loop counts as nonexistent for probing purposes
  }
}

std::vector<std::string> FileSystem::list_dir(std::string_view path) const {
  const InodeNum ino = resolve(path, true);
  if (ino == 0) throw FsError("no such directory: " + std::string(path));
  if (nodes_[ino].type != NodeType::Directory) {
    throw FsError("not a directory: " + std::string(path));
  }
  std::vector<std::string> out;
  out.reserve(nodes_[ino].children.size());
  for (const auto& [name, child] : nodes_[ino].children) out.push_back(name);
  return out;
}

std::optional<std::string> FileSystem::realpath(std::string_view path) const {
  std::string canonical;
  try {
    if (resolve(path, true, &canonical) == 0) return std::nullopt;
  } catch (const FsError&) {
    return std::nullopt;
  }
  return canonical;
}

const FileData* FileSystem::peek(std::string_view path) const {
  InodeNum ino = 0;
  try {
    ino = resolve(path, true);
  } catch (const FsError&) {
    return nullptr;
  }
  if (ino == 0 || nodes_[ino].type != NodeType::Regular) return nullptr;
  return &nodes_[ino].data;
}

std::optional<NodeType> FileSystem::peek_type(std::string_view path,
                                              bool follow) const {
  InodeNum ino = 0;
  try {
    ino = resolve(path, follow);
  } catch (const FsError&) {
    return std::nullopt;
  }
  if (ino == 0) return std::nullopt;
  return nodes_[ino].type;
}

std::optional<std::string> FileSystem::peek_link_target(
    std::string_view path) const {
  InodeNum ino = 0;
  try {
    ino = resolve(path, /*follow_final=*/false);
  } catch (const FsError&) {
    return std::nullopt;
  }
  if (ino == 0 || nodes_[ino].type != NodeType::Symlink) return std::nullopt;
  return nodes_[ino].link_target;
}

std::uint64_t FileSystem::disk_usage(std::string_view path) const {
  InodeNum ino = 0;
  try {
    ino = resolve(path, true);
  } catch (const FsError&) {
    return 0;
  }
  if (ino == 0) return 0;
  // Iterative DFS over the subtree.
  std::uint64_t total = 0;
  std::vector<InodeNum> stack{ino};
  while (!stack.empty()) {
    const InodeNum node = stack.back();
    stack.pop_back();
    switch (nodes_[node].type) {
      case NodeType::Regular:
        total += nodes_[node].data.size();
        break;
      case NodeType::Directory:
        for (const auto& [name, child] : nodes_[node].children) {
          stack.push_back(child);
        }
        break;
      case NodeType::Symlink:
        break;  // links are weightless here
    }
  }
  return total;
}

std::optional<Stat> FileSystem::stat(std::string_view path) {
  const std::string norm = normalize_path(path);
  InodeNum ino = 0;
  try {
    ino = resolve(norm, true);
  } catch (const FsError&) {
    ino = 0;
  }
  charge(OpKind::Stat, ino != 0, norm);
  if (ino == 0) return std::nullopt;
  const Node& node = nodes_[ino];
  return Stat{ino, node.type,
              node.type == NodeType::Regular ? node.data.size() : 0};
}

std::optional<Stat> FileSystem::lstat(std::string_view path) {
  const std::string norm = normalize_path(path);
  InodeNum ino = 0;
  try {
    ino = resolve(norm, false);
  } catch (const FsError&) {
    ino = 0;
  }
  charge(OpKind::Stat, ino != 0, norm);
  if (ino == 0) return std::nullopt;
  const Node& node = nodes_[ino];
  return Stat{ino, node.type,
              node.type == NodeType::Regular ? node.data.size() : 0};
}

const FileData* FileSystem::open(std::string_view path) {
  const std::string norm = normalize_path(path);
  InodeNum ino = 0;
  try {
    ino = resolve(norm, true);
  } catch (const FsError&) {
    ino = 0;
  }
  const bool hit = ino != 0 && nodes_[ino].type == NodeType::Regular;
  charge(OpKind::Open, hit, norm);
  if (!hit) return nullptr;
  return &nodes_[ino].data;
}

void FileSystem::count_read(std::string_view path) {
  charge(OpKind::Read, true, normalize_path(path));
}

}  // namespace depchaos::vfs
