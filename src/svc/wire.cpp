#include "depchaos/svc/wire.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <functional>
#include <future>
#include <type_traits>
#include <utility>

namespace depchaos::svc {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

// ---- little-endian primitives ---------------------------------------------
// Explicit byte shuffles, not memcpy of host integers: the encoding is the
// protocol (and the byte-identity oracle), so it cannot depend on host
// endianness.

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

void put_f64(std::string& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_str(std::string& out, std::string_view s) {
  if (s.size() > 0xffffffffu) {
    throw WireError("string too long to encode");
  }
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

/// Bounds-checked sequential reader over an encoded payload. Every get
/// throws WireError on truncation; callers assert full consumption.
struct Cursor {
  std::string_view data;
  std::size_t pos = 0;

  void require(std::size_t n) const {
    if (data.size() - pos < n) {
      throw WireError("truncated payload (need " + std::to_string(n) +
                      " bytes at offset " + std::to_string(pos) + ", have " +
                      std::to_string(data.size() - pos) + ")");
    }
  }
  std::uint8_t u8() {
    require(1);
    return static_cast<std::uint8_t>(data[pos++]);
  }
  std::uint16_t u16() {
    require(2);
    std::uint16_t v = 0;
    for (int shift = 0; shift < 16; shift += 8) {
      v |= static_cast<std::uint16_t>(static_cast<std::uint8_t>(data[pos++]))
           << shift;
    }
    return v;
  }
  std::uint32_t u32() {
    require(4);
    std::uint32_t v = 0;
    for (int shift = 0; shift < 32; shift += 8) {
      v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(data[pos++]))
           << shift;
    }
    return v;
  }
  std::uint64_t u64() {
    require(8);
    std::uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 8) {
      v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(data[pos++]))
           << shift;
    }
    return v;
  }
  double f64() { return std::bit_cast<double>(u64()); }
  std::string str() {
    const std::uint32_t n = u32();
    require(n);
    std::string s(data.substr(pos, n));
    pos += n;
    return s;
  }
  bool done() const { return pos == data.size(); }
  void expect_done() const {
    if (!done()) {
      throw WireError("trailing bytes after payload (offset " +
                      std::to_string(pos) + " of " +
                      std::to_string(data.size()) + ")");
    }
  }
};

// ---- result codecs ---------------------------------------------------------

void put_stats(std::string& out, const vfs::SyscallStats& stats) {
  put_u64(out, stats.stat_calls);
  put_u64(out, stats.open_calls);
  put_u64(out, stats.read_calls);
  put_u64(out, stats.readlink_calls);
  put_u64(out, stats.failed_probes);
  put_f64(out, stats.sim_time_s);
}

vfs::SyscallStats get_stats(Cursor& in) {
  vfs::SyscallStats stats;
  stats.stat_calls = in.u64();
  stats.open_calls = in.u64();
  stats.read_calls = in.u64();
  stats.readlink_calls = in.u64();
  stats.failed_probes = in.u64();
  stats.sim_time_s = in.f64();
  return stats;
}

// LoadedObject::object (the parsed ELF handle) is a process-local cache
// pointer and is deliberately not encoded; decode leaves it null.
void put_object(std::string& out, const loader::LoadedObject& o) {
  put_str(out, o.name);
  put_str(out, o.path);
  put_str(out, o.real_path);
  put_str(out, o.requested_by);
  put_u8(out, static_cast<std::uint8_t>(o.how));
  put_u32(out, static_cast<std::uint32_t>(o.depth));
  put_u64(out, static_cast<std::uint64_t>(o.parent_index));
  put_u8(out, static_cast<std::uint8_t>(o.cache_search_how));
}

loader::HowFound get_how(Cursor& in) {
  const std::uint8_t raw = in.u8();
  if (raw > static_cast<std::uint8_t>(loader::HowFound::NotFound)) {
    throw WireError("bad HowFound value " + std::to_string(raw));
  }
  return static_cast<loader::HowFound>(raw);
}

loader::LoadedObject get_object(Cursor& in) {
  loader::LoadedObject o;
  o.name = in.str();
  o.path = in.str();
  o.real_path = in.str();
  o.requested_by = in.str();
  o.how = get_how(in);
  o.depth = static_cast<int>(in.u32());
  o.parent_index = static_cast<std::int64_t>(in.u64());
  o.cache_search_how = get_how(in);
  return o;
}

void put_objects(std::string& out, const std::vector<loader::LoadedObject>& v) {
  put_u32(out, static_cast<std::uint32_t>(v.size()));
  for (const auto& o : v) put_object(out, o);
}

std::vector<loader::LoadedObject> get_objects(Cursor& in) {
  const std::uint32_t n = in.u32();
  std::vector<loader::LoadedObject> v;
  v.reserve(std::min<std::uint32_t>(n, 4096));  // bogus counts fail below
  for (std::uint32_t i = 0; i < n; ++i) v.push_back(get_object(in));
  return v;
}

void put_strings(std::string& out, const std::vector<std::string>& v) {
  put_u32(out, static_cast<std::uint32_t>(v.size()));
  for (const auto& s : v) put_str(out, s);
}

std::vector<std::string> get_strings(Cursor& in) {
  const std::uint32_t n = in.u32();
  std::vector<std::string> v;
  v.reserve(std::min<std::uint32_t>(n, 4096));
  for (std::uint32_t i = 0; i < n; ++i) v.push_back(in.str());
  return v;
}

void put_load_report(std::string& out, const loader::LoadReport& r) {
  put_u8(out, r.success ? 1 : 0);
  put_objects(out, r.load_order);
  put_objects(out, r.requests);
  put_objects(out, r.missing);
  put_stats(out, r.stats);
  put_strings(out, r.probe_log);
}

loader::LoadReport get_load_report(Cursor& in) {
  loader::LoadReport r;
  r.success = in.u8() != 0;
  r.load_order = get_objects(in);
  r.requests = get_objects(in);
  r.missing = get_objects(in);
  r.stats = get_stats(in);
  r.probe_log = get_strings(in);
  return r;
}

void put_wrap_report(std::string& out, const shrinkwrap::WrapReport& r) {
  put_strings(out, r.old_needed);
  put_strings(out, r.new_needed);
  put_u32(out, static_cast<std::uint32_t>(r.resolved.size()));
  for (const auto& [name, path] : r.resolved) {  // std::map: sorted, stable
    put_str(out, name);
    put_str(out, path);
  }
  put_strings(out, r.unresolved);
  put_strings(out, r.dlopen_lifted);
  put_strings(out, r.dlopen_unresolved);
  put_stats(out, r.wrap_cost);
  put_u8(out, r.changed ? 1 : 0);
}

shrinkwrap::WrapReport get_wrap_report(Cursor& in) {
  shrinkwrap::WrapReport r;
  r.old_needed = get_strings(in);
  r.new_needed = get_strings(in);
  const std::uint32_t resolved = in.u32();
  for (std::uint32_t i = 0; i < resolved; ++i) {
    std::string name = in.str();
    r.resolved.emplace(std::move(name), in.str());
  }
  r.unresolved = get_strings(in);
  r.dlopen_lifted = get_strings(in);
  r.dlopen_unresolved = get_strings(in);
  r.wrap_cost = get_stats(in);
  r.changed = in.u8() != 0;
  return r;
}

}  // namespace

std::string_view wire_kind_name(WireKind kind) {
  switch (kind) {
    case WireKind::Load:
      return "load";
    case WireKind::LoadMany:
      return "load_many";
    case WireKind::Whatif:
      return "whatif";
    case WireKind::Shrinkwrap:
      return "shrinkwrap";
    case WireKind::Query:
      return "query";
    case WireKind::Release:
      return "release";
    case WireKind::Reset:
      return "reset";
    case WireKind::Shutdown:
      return "shutdown";
  }
  return "?";
}

std::string encode_load_report(const loader::LoadReport& report) {
  std::string out;
  put_load_report(out, report);
  return out;
}

loader::LoadReport decode_load_report(std::string_view bytes) {
  Cursor in{bytes};
  loader::LoadReport r = get_load_report(in);
  in.expect_done();
  return r;
}

std::string encode_load_reports(
    const std::vector<loader::LoadReport>& reports) {
  std::string out;
  put_u32(out, static_cast<std::uint32_t>(reports.size()));
  for (const auto& r : reports) put_load_report(out, r);
  return out;
}

std::vector<loader::LoadReport> decode_load_reports(std::string_view bytes) {
  Cursor in{bytes};
  const std::uint32_t n = in.u32();
  std::vector<loader::LoadReport> v;
  v.reserve(std::min<std::uint32_t>(n, 4096));
  for (std::uint32_t i = 0; i < n; ++i) v.push_back(get_load_report(in));
  in.expect_done();
  return v;
}

std::string encode_wrap_report(const shrinkwrap::WrapReport& report) {
  std::string out;
  put_wrap_report(out, report);
  return out;
}

shrinkwrap::WrapReport decode_wrap_report(std::string_view bytes) {
  Cursor in{bytes};
  shrinkwrap::WrapReport r = get_wrap_report(in);
  in.expect_done();
  return r;
}

std::string encode_whatif_report(const core::Session::WhatIfReport& report) {
  std::string out;
  put_wrap_report(out, report.wrap);
  put_load_report(out, report.before);
  put_load_report(out, report.after);
  put_str(out, report.before_tree);
  put_str(out, report.after_tree);
  put_str(out, report.tree_diff);
  return out;
}

core::Session::WhatIfReport decode_whatif_report(std::string_view bytes) {
  Cursor in{bytes};
  core::Session::WhatIfReport r;
  r.wrap = get_wrap_report(in);
  r.before = get_load_report(in);
  r.after = get_load_report(in);
  r.before_tree = in.str();
  r.after_tree = in.str();
  r.tree_diff = in.str();
  in.expect_done();
  return r;
}

std::string encode_query_result(const QueryResult& result) {
  std::string out;
  put_u64(out, result.inode_count);
  put_u64(out, result.layer_depth);
  put_u64(out, result.owned_bytes);
  put_u64(out, result.interned_paths);
  put_u64(out, result.mount_count);
  put_str(out, result.default_exe);
  put_u8(out, result.pristine ? 1 : 0);
  return out;
}

QueryResult decode_query_result(std::string_view bytes) {
  Cursor in{bytes};
  QueryResult r;
  r.inode_count = static_cast<std::size_t>(in.u64());
  r.layer_depth = static_cast<std::size_t>(in.u64());
  r.owned_bytes = in.u64();
  r.interned_paths = static_cast<std::size_t>(in.u64());
  r.mount_count = static_cast<std::size_t>(in.u64());
  r.default_exe = in.str();
  r.pristine = in.u8() != 0;
  in.expect_done();
  return r;
}

// ---- frame assembly --------------------------------------------------------

std::string encode_request_frame(WireKind kind, ClientId client,
                                 std::uint64_t seq, std::string_view payload) {
  std::string out;
  out.reserve(kWireRequestHeaderBytes + payload.size());
  put_u32(out, kWireMagic);
  put_u16(out, kWireVersion);
  put_u8(out, static_cast<std::uint8_t>(kind));
  put_u8(out, 0);  // reserved
  put_u64(out, client);
  put_u64(out, seq);
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.append(payload);
  return out;
}

std::string encode_response_frame(WireStatus status, WireKind kind,
                                  std::uint64_t seq, std::string_view payload) {
  std::string out;
  out.reserve(kWireResponseHeaderBytes + payload.size());
  put_u32(out, kWireMagic);
  put_u16(out, kWireVersion);
  put_u8(out, static_cast<std::uint8_t>(status));
  put_u8(out, static_cast<std::uint8_t>(kind));
  put_u64(out, seq);
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.append(payload);
  return out;
}

namespace {

std::string encode_overloaded(const Overloaded& o) {
  std::string out;
  put_u64(out, o.shard());
  put_u64(out, o.queue_depth());
  put_f64(out, o.retry_after_s());
  return out;
}

}  // namespace

void WireResponse::throw_if_failed() const {
  switch (status) {
    case WireStatus::Ok:
      return;
    case WireStatus::Overloaded: {
      Cursor in{payload};
      const std::uint64_t shard = in.u64();
      const std::uint64_t depth = in.u64();
      const double retry = in.f64();
      in.expect_done();
      throw Overloaded(static_cast<std::size_t>(shard),
                       static_cast<std::size_t>(depth), retry);
    }
    case WireStatus::Error:
      throw WireError("server: " + payload);
  }
  throw WireError("bad response status " +
                  std::to_string(static_cast<int>(status)));
}

// ---- server ----------------------------------------------------------------

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// Wrap a pool future so the IO thread can poll it without blocking
/// indefinitely: returns true once the result (or its exception) has been
/// folded into (status, payload). `wait_us` bounds how long the call may
/// block — 0 is a pure poll; the io_loop spends its idle budget here so
/// completions are answered the moment they land instead of at poll(2)
/// granularity.
template <typename T, typename Encode>
std::function<bool(WireStatus*, std::string*, int)> make_poller(
    std::future<T> fut, Encode encode) {
  auto shared = std::make_shared<std::future<T>>(std::move(fut));
  return [shared, encode](WireStatus* status, std::string* payload,
                          int wait_us) -> bool {
    if (shared->wait_for(std::chrono::microseconds(wait_us)) !=
        std::future_status::ready) {
      return false;
    }
    try {
      if constexpr (std::is_void_v<T>) {
        shared->get();
        payload->clear();
      } else {
        *payload = encode(shared->get());
      }
      *status = WireStatus::Ok;
    } catch (const std::exception& error) {
      // The verb threw (bad exe, wrap failure): the client's problem,
      // reported as an Error frame; the connection stays open.
      *status = WireStatus::Error;
      *payload = error.what();
    }
    return true;
  };
}

}  // namespace

struct WireServer::Connection {
  int fd = -1;
  std::string inbuf;
  std::string outbuf;
  Clock::time_point last_read = Clock::now();
  /// No more reads: flush outbuf and finish pending responses, then close.
  bool closing = false;

  struct Pending {
    std::uint64_t seq = 0;
    WireKind kind = WireKind::Load;
    /// Third arg is a wait budget in microseconds (0 = pure poll).
    std::function<bool(WireStatus*, std::string*, int)> poll;
  };
  std::vector<Pending> pending;
};

WireServer::WireServer(SessionPool& pool, WireConfig config)
    : pool_(pool), config_(std::move(config)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw WireError("socket: " + std::string(strerror(errno)));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    throw WireError("bad bind address " + config_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string what = strerror(errno);
    ::close(listen_fd_);
    throw WireError("bind " + config_.host + ":" +
                    std::to_string(config_.port) + ": " + what);
  }
  if (::listen(listen_fd_, config_.backlog) != 0) {
    const std::string what = strerror(errno);
    ::close(listen_fd_);
    throw WireError("listen: " + what);
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  set_nonblocking(listen_fd_);

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    const std::string what = strerror(errno);
    ::close(listen_fd_);
    throw WireError("pipe: " + what);
  }
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  set_nonblocking(wake_read_fd_);
  set_nonblocking(wake_write_fd_);

  running_.store(true, std::memory_order_release);
  io_thread_ = std::thread([this] { io_loop(); });
}

WireServer::~WireServer() { stop(); }

void WireServer::wake() {
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_write_fd_, &byte, 1);
}

void WireServer::stop() {
  stop_requested_.store(true, std::memory_order_release);
  wake();
  wait();
}

void WireServer::wait() {
  std::lock_guard lock(join_mutex_);
  if (io_thread_.joinable()) io_thread_.join();
}

WireStats WireServer::stats() const {
  WireStats stats;
  stats.accepted = accepted_.load(std::memory_order_relaxed);
  stats.active = active_.load(std::memory_order_relaxed);
  stats.frames_in = frames_in_.load(std::memory_order_relaxed);
  stats.frames_out = frames_out_.load(std::memory_order_relaxed);
  stats.decode_errors = decode_errors_.load(std::memory_order_relaxed);
  stats.timeouts = timeouts_.load(std::memory_order_relaxed);
  stats.overloaded = overloaded_.load(std::memory_order_relaxed);
  stats.bytes_in = bytes_in_.load(std::memory_order_relaxed);
  stats.bytes_out = bytes_out_.load(std::memory_order_relaxed);
  return stats;
}

void WireServer::close_connection(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  ::close(fd);
  connections_.erase(it);
  active_.fetch_sub(1, std::memory_order_relaxed);
}

void WireServer::accept_ready() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or a transient error: poll again later
    set_nonblocking(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    connections_.emplace(fd, std::move(conn));
    accepted_.fetch_add(1, std::memory_order_relaxed);
    active_.fetch_add(1, std::memory_order_relaxed);
  }
}

void WireServer::respond(Connection& conn, WireStatus status, WireKind kind,
                         std::uint64_t seq, std::string_view payload) {
  conn.outbuf += encode_response_frame(status, kind, seq, payload);
  frames_out_.fetch_add(1, std::memory_order_relaxed);
}

void WireServer::dispatch(Connection& conn, WireKind kind, ClientId client,
                          std::uint64_t seq, std::string payload) {
  Connection::Pending pending;
  pending.seq = seq;
  pending.kind = kind;
  try {
    switch (kind) {
      case WireKind::Load: {
        // submit_load_shared: byte-identical reports, and N remote clients
        // storming one exe share one immutable payload inside the server.
        pending.poll = make_poller(
            pool_.submit_load_shared(client, std::move(payload)),
            [](const std::shared_ptr<const loader::LoadReport>& r) {
              return encode_load_report(*r);
            });
        break;
      }
      case WireKind::LoadMany: {
        Cursor in{payload};
        std::vector<std::string> exes = get_strings(in);
        in.expect_done();
        pending.poll =
            make_poller(pool_.submit_load_many(client, std::move(exes)),
                        [](const std::vector<loader::LoadReport>& r) {
                          return encode_load_reports(r);
                        });
        break;
      }
      case WireKind::Whatif: {
        pending.poll =
            make_poller(pool_.submit_whatif(client, std::move(payload)),
                        [](const core::Session::WhatIfReport& r) {
                          return encode_whatif_report(r);
                        });
        break;
      }
      case WireKind::Shrinkwrap: {
        pending.poll =
            make_poller(pool_.submit_shrinkwrap(client, std::move(payload)),
                        [](const shrinkwrap::WrapReport& r) {
                          return encode_wrap_report(r);
                        });
        break;
      }
      case WireKind::Query: {
        pending.poll = make_poller(
            pool_.submit_query(client),
            [](const QueryResult& r) { return encode_query_result(r); });
        break;
      }
      case WireKind::Release: {
        pending.poll = make_poller(pool_.release(client), nullptr);
        break;
      }
      case WireKind::Reset: {
        pending.poll = make_poller(pool_.reset(client), nullptr);
        break;
      }
      case WireKind::Shutdown: {
        // Acknowledge first, then begin the same graceful drain stop()
        // performs; the response reaches the client because draining
        // flushes outbufs before closing.
        respond(conn, WireStatus::Ok, kind, seq, {});
        stop_requested_.store(true, std::memory_order_release);
        return;
      }
    }
  } catch (const Overloaded& overloaded) {
    // Admission rejected synchronously: the remote client gets the same
    // shard/depth/retry-after an in-process submitter would, immediately.
    respond(conn, WireStatus::Overloaded, kind, seq,
            encode_overloaded(overloaded));
    overloaded_.fetch_add(1, std::memory_order_relaxed);
    return;
  } catch (const WireError&) {
    // Payload decode failure: malformed by construction, not a verb
    // failure — let parse_frames count it and close the connection.
    throw;
  } catch (const std::exception& error) {
    respond(conn, WireStatus::Error, kind, seq, error.what());
    return;
  }
  conn.pending.push_back(std::move(pending));
}

bool WireServer::parse_frames(Connection& conn) {
  for (;;) {
    if (conn.inbuf.size() < kWireRequestHeaderBytes) return true;
    Cursor header{conn.inbuf};
    const std::uint32_t magic = header.u32();
    const std::uint16_t version = header.u16();
    const std::uint8_t kind_raw = header.u8();
    const std::uint8_t reserved = header.u8();
    const ClientId client = header.u64();
    const std::uint64_t seq = header.u64();
    const std::uint32_t length = header.u32();
    if (magic != kWireMagic) {
      decode_errors_.fetch_add(1, std::memory_order_relaxed);
      respond(conn, WireStatus::Error, WireKind::Load, seq, "bad magic");
      return false;
    }
    if (version != kWireVersion) {
      decode_errors_.fetch_add(1, std::memory_order_relaxed);
      respond(conn, WireStatus::Error, WireKind::Load, seq,
              "unsupported protocol version " + std::to_string(version));
      return false;
    }
    if (kind_raw > kWireKindMax || reserved != 0) {
      decode_errors_.fetch_add(1, std::memory_order_relaxed);
      respond(conn, WireStatus::Error, WireKind::Load, seq,
              "bad request kind " + std::to_string(kind_raw));
      return false;
    }
    if (length > config_.max_frame_bytes) {
      decode_errors_.fetch_add(1, std::memory_order_relaxed);
      respond(conn, WireStatus::Error, static_cast<WireKind>(kind_raw), seq,
              "frame payload " + std::to_string(length) +
                  " bytes exceeds max " +
                  std::to_string(config_.max_frame_bytes));
      return false;
    }
    if (conn.inbuf.size() - kWireRequestHeaderBytes < length) {
      return true;  // wait for the rest (read deadline bounds the wait)
    }
    std::string payload =
        conn.inbuf.substr(kWireRequestHeaderBytes, length);
    conn.inbuf.erase(0, kWireRequestHeaderBytes + length);
    frames_in_.fetch_add(1, std::memory_order_relaxed);
    try {
      dispatch(conn, static_cast<WireKind>(kind_raw), client, seq,
               std::move(payload));
    } catch (const WireError& error) {
      // Payload decode failure (e.g. a LoadMany whose strings overrun the
      // frame): malformed by construction — error frame, then close.
      decode_errors_.fetch_add(1, std::memory_order_relaxed);
      respond(conn, WireStatus::Error, static_cast<WireKind>(kind_raw), seq,
              error.what());
      return false;
    }
  }
}

void WireServer::read_ready(Connection& conn) {
  char buffer[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(conn.fd, buffer, sizeof(buffer), 0);
    if (n > 0) {
      conn.inbuf.append(buffer, static_cast<std::size_t>(n));
      bytes_in_.fetch_add(static_cast<std::uint64_t>(n),
                          std::memory_order_relaxed);
      conn.last_read = Clock::now();
      continue;
    }
    if (n == 0) {
      // Peer finished sending. Whatever is in flight still gets flushed
      // (half-close support); a dangling partial frame is just dropped.
      conn.closing = true;
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    conn.closing = true;  // connection reset et al.: flush-and-close
    return;
  }
}

void WireServer::poll_pending(Connection& conn) {
  for (auto it = conn.pending.begin(); it != conn.pending.end();) {
    WireStatus status = WireStatus::Ok;
    std::string payload;
    if (it->poll(&status, &payload, 0)) {
      respond(conn, status, it->kind, it->seq, payload);
      it = conn.pending.erase(it);
    } else {
      ++it;
    }
  }
}

bool WireServer::flush_writes(Connection& conn) {
  while (!conn.outbuf.empty()) {
    const ssize_t n = ::send(conn.fd, conn.outbuf.data(), conn.outbuf.size(),
                             MSG_NOSIGNAL);
    if (n > 0) {
      bytes_out_.fetch_add(static_cast<std::uint64_t>(n),
                           std::memory_order_relaxed);
      conn.outbuf.erase(0, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    if (n < 0 && errno == EINTR) continue;
    return false;  // EPIPE/ECONNRESET: the peer is gone
  }
  return true;
}

void WireServer::io_loop() {
  bool draining = false;
  Clock::time_point drain_start{};

  for (;;) {
    if (stop_requested_.load(std::memory_order_acquire) && !draining) {
      draining = true;
      drain_start = Clock::now();
      if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
      }
      // Stop reading new requests; what was admitted will be answered.
      for (auto& [fd, conn] : connections_) conn->closing = true;
    }

    // Fold completed futures into response frames and push bytes out.
    std::vector<int> fds;
    fds.reserve(connections_.size());
    for (const auto& [fd, conn] : connections_) fds.push_back(fd);
    bool any_pending = false;
    for (const int fd : fds) {
      auto it = connections_.find(fd);
      if (it == connections_.end()) continue;
      Connection& conn = *it->second;
      poll_pending(conn);
      if (!flush_writes(conn)) {
        close_connection(fd);
        continue;
      }
      // Read-deadline: a PARTIAL frame that stalls is a protocol failure.
      if (!conn.closing && !conn.inbuf.empty() &&
          seconds_between(conn.last_read, Clock::now()) >
              config_.read_deadline_s) {
        timeouts_.fetch_add(1, std::memory_order_relaxed);
        respond(conn, WireStatus::Error, WireKind::Load, 0,
                "read deadline exceeded mid-frame");
        flush_writes(conn);
        conn.closing = true;
        conn.inbuf.clear();
      }
      if (conn.closing && conn.pending.empty() && conn.outbuf.empty()) {
        close_connection(fd);
        continue;
      }
      if (!conn.pending.empty()) any_pending = true;
    }

    if (draining) {
      const bool overdue = seconds_between(drain_start, Clock::now()) >
                           config_.drain_deadline_s;
      if (connections_.empty() || overdue) break;
    }

    // While futures are in flight they complete on pool workers — not on
    // any fd poll() can wait on. Sleeping in poll() would add scheduler
    // granularity (~2 ms) to every response, so instead spend a bounded
    // wait inside ONE in-flight future and keep the socket poll at zero
    // timeout: completions are answered the moment they land while new
    // connections and reads are still serviced at >= 1 kHz.
    int timeout_ms = draining ? 2 : 200;
    if (any_pending) {
      timeout_ms = 0;
      for (auto& [fd, conn] : connections_) {
        if (conn->pending.empty()) continue;
        Connection::Pending& head = conn->pending.front();
        WireStatus status = WireStatus::Ok;
        std::string payload;
        if (head.poll(&status, &payload, 1000)) {
          respond(*conn, status, head.kind, head.seq, payload);
          conn->pending.erase(conn->pending.begin());
          // Flushed at the top of the next iteration (timeout is 0).
        }
        break;
      }
    }

    // Poll sockets. Zero timeout while futures are in flight (the wait
    // budget was already spent above, inside wait_for).
    std::vector<pollfd> pfds;
    pfds.reserve(connections_.size() + 2);
    pfds.push_back(pollfd{wake_read_fd_, POLLIN, 0});
    if (listen_fd_ >= 0) pfds.push_back(pollfd{listen_fd_, POLLIN, 0});
    for (const auto& [fd, conn] : connections_) {
      short events = 0;
      if (!conn->closing) events |= POLLIN;
      if (!conn->outbuf.empty()) events |= POLLOUT;
      pfds.push_back(pollfd{fd, events, 0});
    }
    ::poll(pfds.data(), pfds.size(), timeout_ms);

    // Drain the wake pipe.
    if (pfds[0].revents & POLLIN) {
      char sink[64];
      while (::read(wake_read_fd_, sink, sizeof(sink)) > 0) {
      }
    }
    std::size_t index = 1;
    if (listen_fd_ >= 0) {
      if (pfds[index].revents & POLLIN) accept_ready();
      ++index;
    }
    for (; index < pfds.size(); ++index) {
      auto it = connections_.find(pfds[index].fd);
      if (it == connections_.end()) continue;
      Connection& conn = *it->second;
      if (pfds[index].revents & (POLLERR | POLLNVAL)) {
        close_connection(conn.fd);
        continue;
      }
      if (pfds[index].revents & (POLLIN | POLLHUP)) {
        if (!conn.closing) {
          read_ready(conn);
          if (!parse_frames(conn)) {
            // Malformed frame: the error response is already queued; stop
            // reading and close once it is flushed.
            flush_writes(conn);
            conn.closing = true;
            conn.inbuf.clear();
          }
        } else if (pfds[index].revents & POLLHUP) {
          // Peer hung up while we were already closing; no reads left.
          if (conn.pending.empty() && conn.outbuf.empty()) {
            close_connection(conn.fd);
            continue;
          }
        }
      }
    }
  }

  // Teardown: anything still open is force-closed (drain deadline), then
  // the pool quiesces so a caller observing !running() sees a settled
  // service.
  std::vector<int> fds;
  fds.reserve(connections_.size());
  for (const auto& [fd, conn] : connections_) fds.push_back(fd);
  for (const int fd : fds) close_connection(fd);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  pool_.drain();
  ::close(wake_read_fd_);
  ::close(wake_write_fd_);
  wake_read_fd_ = wake_write_fd_ = -1;
  running_.store(false, std::memory_order_release);
}

// ---- client ----------------------------------------------------------------

WireClient::WireClient(const std::string& host, std::uint16_t port,
                       double timeout_s) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* results = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(),
                               &hints, &results);
  if (rc != 0) {
    throw WireError("resolve " + host + ": " + gai_strerror(rc));
  }
  int last_errno = 0;
  for (addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    fd_ = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd_ < 0) {
      last_errno = errno;
      continue;
    }
    if (::connect(fd_, ai->ai_addr, ai->ai_addrlen) == 0) break;
    last_errno = errno;
    ::close(fd_);
    fd_ = -1;
  }
  ::freeaddrinfo(results);
  if (fd_ < 0) {
    throw WireError("connect " + host + ":" + std::to_string(port) + ": " +
                    strerror(last_errno));
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout_s);
  tv.tv_usec = static_cast<suseconds_t>((timeout_s - static_cast<double>(
                                                         tv.tv_sec)) *
                                        1e6);
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

WireClient::~WireClient() {
  if (fd_ >= 0) ::close(fd_);
}

void WireClient::write_all(std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw WireError("send: " + std::string(strerror(errno)));
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::uint64_t WireClient::send(WireKind kind, ClientId client,
                               std::string_view payload) {
  const std::uint64_t seq = next_seq_++;
  write_all(encode_request_frame(kind, client, seq, payload));
  return seq;
}

WireResponse WireClient::recv_response() {
  auto fill_to = [this](std::size_t needed) {
    while (read_buffer_.size() < needed) {
      char buffer[64 * 1024];
      const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
      if (n > 0) {
        read_buffer_.append(buffer, static_cast<std::size_t>(n));
        continue;
      }
      if (n == 0) throw WireError("server closed the connection");
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw WireError("recv timeout");
      }
      throw WireError("recv: " + std::string(strerror(errno)));
    }
  };
  fill_to(kWireResponseHeaderBytes);
  Cursor header{read_buffer_};
  const std::uint32_t magic = header.u32();
  const std::uint16_t version = header.u16();
  const std::uint8_t status = header.u8();
  const std::uint8_t kind = header.u8();
  const std::uint64_t seq = header.u64();
  const std::uint32_t length = header.u32();
  if (magic != kWireMagic) throw WireError("response: bad magic");
  if (version != kWireVersion) {
    throw WireError("response: unsupported version " + std::to_string(version));
  }
  if (status > static_cast<std::uint8_t>(WireStatus::Overloaded) ||
      kind > kWireKindMax) {
    throw WireError("response: bad status/kind byte");
  }
  if (length > (1u << 30)) throw WireError("response: absurd payload length");
  fill_to(kWireResponseHeaderBytes + length);
  WireResponse response;
  response.status = static_cast<WireStatus>(status);
  response.kind = static_cast<WireKind>(kind);
  response.seq = seq;
  response.payload = read_buffer_.substr(kWireResponseHeaderBytes, length);
  read_buffer_.erase(0, kWireResponseHeaderBytes + length);
  return response;
}

WireResponse WireClient::recv_for(std::uint64_t seq) {
  if (auto it = stash_.find(seq); it != stash_.end()) {
    WireResponse response = std::move(it->second);
    stash_.erase(it);
    return response;
  }
  for (;;) {
    WireResponse response = recv_response();
    if (response.seq == seq) return response;
    stash_.emplace(response.seq, std::move(response));
  }
}

WireResponse WireClient::call(WireKind kind, ClientId client,
                              std::string_view payload) {
  return recv_for(send(kind, client, payload));
}

loader::LoadReport WireClient::load(ClientId client, const std::string& exe) {
  WireResponse response = call(WireKind::Load, client, exe);
  response.throw_if_failed();
  return decode_load_report(response.payload);
}

std::vector<loader::LoadReport> WireClient::load_many(
    ClientId client, std::vector<std::string> exes) {
  std::string payload;
  put_u32(payload, static_cast<std::uint32_t>(exes.size()));
  for (const auto& exe : exes) put_str(payload, exe);
  WireResponse response = call(WireKind::LoadMany, client, payload);
  response.throw_if_failed();
  return decode_load_reports(response.payload);
}

core::Session::WhatIfReport WireClient::whatif(ClientId client,
                                               const std::string& exe) {
  WireResponse response = call(WireKind::Whatif, client, exe);
  response.throw_if_failed();
  return decode_whatif_report(response.payload);
}

shrinkwrap::WrapReport WireClient::shrinkwrap(ClientId client,
                                              const std::string& exe) {
  WireResponse response = call(WireKind::Shrinkwrap, client, exe);
  response.throw_if_failed();
  return decode_wrap_report(response.payload);
}

QueryResult WireClient::query(ClientId client) {
  WireResponse response = call(WireKind::Query, client, {});
  response.throw_if_failed();
  return decode_query_result(response.payload);
}

void WireClient::release(ClientId client) {
  call(WireKind::Release, client, {}).throw_if_failed();
}

void WireClient::reset(ClientId client) {
  call(WireKind::Reset, client, {}).throw_if_failed();
}

void WireClient::shutdown() {
  call(WireKind::Shutdown, 0, {}).throw_if_failed();
}

}  // namespace depchaos::svc
