#include "depchaos/svc/session_pool.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <optional>
#include <shared_mutex>
#include <type_traits>
#include <utility>
#include <variant>

#include "depchaos/analysis/histogram.hpp"

namespace depchaos::svc {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

/// splitmix64 finalizer: client ids are often small consecutive integers,
/// whose identity hash would land every client in shard 0.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// One latency-charged operation from a memo-miss run, exactly as
/// FileSystem::charge routed it: `local` = the node-local model was
/// charged (pre-staged mount), else the shared model. Replaying the log
/// through another client's models re-prices sim_time_s for THAT client's
/// cache warmth — and warms its caches the way executing the load would.
struct ChargeRec {
  vfs::OpKind op = vfs::OpKind::Stat;
  bool hit = false;
  bool local = false;
  std::string path;
};

/// Decorator installed around the executing client's latency models for
/// the duration of a memo-miss load: forwards every cost() to the wrapped
/// model (charges and warmth are untouched) while appending the charge
/// log the memo stores. clone() is disabled on purpose — run_load drives
/// single-view Session::load only, and a silent un-recorded clone would
/// corrupt the log.
class RecordingModel final : public vfs::LatencyModel {
 public:
  RecordingModel(std::shared_ptr<vfs::LatencyModel> inner, bool local,
                 std::vector<ChargeRec>* log)
      : inner_(std::move(inner)), local_(local), log_(log) {}

  double cost(vfs::OpKind op, bool hit, const std::string& path) override {
    log_->push_back(ChargeRec{op, hit, local_, path});
    return inner_ ? inner_->cost(op, hit, path) : 0.0;
  }
  void clear_client_cache() override {
    if (inner_) inner_->clear_client_cache();
  }
  std::shared_ptr<vfs::LatencyModel> clone() const override { return nullptr; }
  std::string name() const override {
    return inner_ ? inner_->name() : "recording";
  }

 private:
  std::shared_ptr<vfs::LatencyModel> inner_;
  bool local_;
  std::vector<ChargeRec>* log_;
};

/// Replay a recorded charge log against `fs`'s installed models,
/// mirroring FileSystem::charge's routing: node-local records price
/// through the local model (lazily a default LocalDiskModel, exactly like
/// charge), everything else through the shared model. Returns the total
/// simulated seconds — the hit's re-priced sim_time_s.
double replay_charges(vfs::FileSystem& fs,
                      const std::vector<ChargeRec>& log) {
  double total = 0;
  for (const ChargeRec& rec : log) {
    if (rec.local) {
      if (!fs.local_latency_model_ptr()) {
        fs.set_local_latency_model(std::make_shared<vfs::LocalDiskModel>());
      }
      total += fs.local_latency_model_ptr()->cost(rec.op, rec.hit, rec.path);
    } else if (vfs::LatencyModel* model = fs.latency_model()) {
      total += model->cost(rec.op, rec.hit, rec.path);
    }
  }
  return total;
}

}  // namespace

std::string_view request_kind_name(RequestKind kind) {
  switch (kind) {
    case RequestKind::Load:
      return "load";
    case RequestKind::LoadMany:
      return "load_many";
    case RequestKind::Whatif:
      return "whatif";
    case RequestKind::Shrinkwrap:
      return "shrinkwrap";
    case RequestKind::LaunchFleet:
      return "launch_fleet";
    case RequestKind::Query:
      return "query";
    case RequestKind::Control:
      return "control";
  }
  return "?";
}

Overloaded::Overloaded(std::size_t shard, std::size_t queue_depth,
                       double retry_after_s)
    : Error("svc: shard " + std::to_string(shard) + " over high-water mark (" +
            std::to_string(queue_depth) + " pending); retry in " +
            std::to_string(retry_after_s) + "s"),
      shard_(shard),
      queue_depth_(queue_depth),
      retry_after_s_(retry_after_s) {}

// ---- internal command/state types -----------------------------------------

struct LoadCmd {
  std::string exe;
  std::promise<loader::LoadReport> done;
};
struct SharedLoadCmd {
  std::string exe;
  std::promise<std::shared_ptr<const loader::LoadReport>> done;
};
struct LoadManyCmd {
  std::vector<std::string> exes;
  std::promise<std::vector<loader::LoadReport>> done;
};
struct WhatifCmd {
  std::string exe;
  std::promise<core::Session::WhatIfReport> done;
};
struct WrapCmd {
  std::string exe;
  std::promise<shrinkwrap::WrapReport> done;
};
struct FleetCmd {
  core::SandboxSpec spec;
  std::string exe;
  int ranks = 0;
  /// Null = default config built from the client session's cluster model;
  /// set = the caller's full FleetConfig (rank_setup hook, cluster_ranks,
  /// engine/prestage knobs) rides along with the command.
  std::optional<launch::FleetConfig> fleet;
  std::promise<launch::LaunchResult> done;
};
struct QueryCmd {
  std::promise<QueryResult> done;
};
struct ControlCmd {
  bool reset = false;  // false = release
  std::promise<void> done;
};

struct SessionPool::Command {
  ClientId client = 0;
  RequestKind kind = RequestKind::Load;
  Clock::time_point enqueued;
  std::variant<LoadCmd, SharedLoadCmd, LoadManyCmd, WhatifCmd, WrapCmd,
               FleetCmd, QueryCmd, ControlCmd>
      op;
};

struct SessionPool::ClientState {
  std::optional<core::Session> session;
  bool pristine = true;        // no mutating request executed on this fork
  bool collapsed_idle = false;  // the idle sweep flattened it already
  std::uint64_t last_active = 0;  // shard drain-cycle stamp
};

struct SessionPool::Shard {
  std::size_t index = 0;

  /// Queue + counters + histograms. Never held while a command executes.
  mutable std::mutex mutex;
  std::deque<Command> queue;
  bool draining = false;  // a strand task is queued or running
  double service_ema_s = 100e-6;  // feeds the Overloaded retry-after hint
  std::uint64_t executed = 0;
  std::uint64_t memoized = 0;
  std::uint64_t rejected = 0;
  std::uint64_t evicted = 0;
  std::uint64_t collapsed = 0;
  std::uint64_t errors = 0;
  std::uint64_t cycles = 0;
  std::size_t max_clients_per_cycle = 0;  // fairness dashboard high-water
  std::array<analysis::Histogram, kRequestKinds> latency;

  /// Client map AND the sessions inside it. The strand holds it for the
  /// duration of each command so stats() can read live-fork aggregates
  /// without racing execution; submits never touch it.
  mutable std::mutex client_mutex;
  std::unordered_map<ClientId, ClientState> clients;

  /// Commands executed per drain-cycle batch (PoolStats::drain_batch).
  analysis::Histogram batch_sizes;
};

/// One bucket of the load memo. The hit path — the common case under
/// fleet traffic — takes only the shared lock; a miss inserts under the
/// exclusive lock after resolving OUTSIDE any memo lock.
struct SessionPool::MemoShard {
  struct Entry {
    /// The resolved report. Model-free pools hand this exact object to
    /// every hit (zero copies); re-pricing pools copy it and patch
    /// stats.sim_time_s per client.
    std::shared_ptr<const loader::LoadReport> report;
    /// The miss run's latency charge log (null on model-free pools).
    std::shared_ptr<const std::vector<ChargeRec>> charges;
  };
  mutable std::shared_mutex mutex;
  std::unordered_map<std::string, Entry> map;
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
};

// ---- construction ---------------------------------------------------------

SessionPool::SessionPool(core::Session base, PoolConfig config)
    : config_(config), base_(std::move(base)) {
  config_.shards = std::max<std::size_t>(1, config_.shards);
  memo_enabled_ = config_.memoize_loads;
  // A latency model's per-view state (NfsModel's attribute cache) shows up
  // in sim_time_s, so memo hits cannot reuse the stored report verbatim:
  // misses record their charge log and hits replay it through the client's
  // own models. (Counters and load orders are warmth-transparent by the
  // PR-3 dentry-cache contract, so everything else memoizes as-is.
  // charge() only prices ops when the shared model is installed, which is
  // why reprice_ keys on latency_model() alone.)
  reprice_ = base_.fs().latency_model() != nullptr;
  // Seal the fork family: freeze the base's overlay and dentry snapshot
  // once (observably what the old priming fork did) so every admission is
  // a lock-free O(1) fork_sealed() stamp and the base session is never
  // structurally mutated again.
  base_.seal();
  memo_shards_.reserve(kMemoShards);
  for (std::size_t i = 0; i < kMemoShards; ++i) {
    memo_shards_.push_back(std::make_unique<MemoShard>());
  }
  shards_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
    shards_.back()->index = i;
  }
  pool_ = std::make_unique<support::ThreadPool>(config_.threads);
}

SessionPool::~SessionPool() {
  drain();
  // pool_ (last member) is destroyed first, joining every strand before
  // the shards and base go away.
}

std::size_t SessionPool::shard_of(ClientId client) const {
  return static_cast<std::size_t>(mix64(client) % shards_.size());
}

SessionPool::Shard& SessionPool::shard_for(ClientId client) {
  return *shards_[shard_of(client)];
}

SessionPool::MemoShard& SessionPool::memo_shard_for(const std::string& key) {
  return *memo_shards_[std::hash<std::string>{}(key) % memo_shards_.size()];
}

// ---- admission ------------------------------------------------------------

void SessionPool::enqueue(ClientId client, RequestKind kind, Command command) {
  Shard& shard = shard_for(client);
  command.client = client;
  command.kind = kind;
  command.enqueued = Clock::now();
  {
    std::lock_guard lock(shard.mutex);
    // Control commands (release/reset) shed state and bypass the bound —
    // an overloaded pool must stay able to shrink itself.
    if (kind != RequestKind::Control &&
        shard.queue.size() >= config_.queue_high_water) {
      ++shard.rejected;
      throw Overloaded(shard.index, shard.queue.size(),
                       shard.service_ema_s *
                           static_cast<double>(shard.queue.size() + 1));
    }
    pending_.fetch_add(1, std::memory_order_acq_rel);
    shard.queue.push_back(std::move(command));
    if (!config_.manual_drain) {
      try {
        schedule_drain(shard);
      } catch (...) {
        // The worker-pool submit failed (e.g. pool shutting down): nothing
        // will ever run this command, so undo the admission completely —
        // our command is still at the back (mutex held), pending_ must be
        // given back (waking a blocked drain() if we were the last), and
        // the submitter gets the exception instead of a forever-pending
        // future. Without this the counter leaked and drain() hung.
        shard.queue.pop_back();
        ++shard.rejected;
        if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          std::lock_guard quiesce_lock(quiesce_mutex_);
          quiesce_cv_.notify_all();
        }
        throw;
      }
    }
  }
}

void SessionPool::schedule_drain(Shard& shard) {
  // Caller holds shard.mutex. Strand invariant: at most one drain task per
  // shard in flight, so commands for one client never execute concurrently
  // or out of order.
  if (shard.draining) return;
  shard.draining = true;
  try {
    if (config_.drain_submit_fault) config_.drain_submit_fault();
    pool_->submit("svc/shard" + std::to_string(shard.index), [this, &shard] {
      while (drain_cycle(shard) != 0) {
      }
    });
  } catch (...) {
    // A failed submit must not wedge the strand: leaving `draining` set
    // with no task in flight would silence every future schedule_drain
    // for this shard.
    shard.draining = false;
    throw;
  }
}

std::size_t SessionPool::drain_cycle(Shard& shard) {
  std::deque<Command> batch;
  {
    std::lock_guard lock(shard.mutex);
    if (shard.queue.empty()) {
      shard.draining = false;
      return 0;
    }
    batch.swap(shard.queue);
    ++shard.cycles;
  }
  // Deficit round-robin over the swapped batch: under a per-client budget
  // each client runs at most `budget` commands this cycle; the surplus is
  // requeued (below) at the FRONT of the shard queue — ahead of anything
  // submitted since the swap — so per-client FIFO order and old-before-new
  // precedence both survive, but one chatty client can no longer pin the
  // strand for a whole cycle while quiet tenants wait. pending_ is NOT
  // decremented for deferred commands (they have not run), so drain()
  // still quiesces correctly.
  std::deque<Command> deferred;
  std::size_t clients_served = 0;
  {
    std::unordered_map<ClientId, std::size_t> per_client;
    if (config_.client_budget_per_cycle != 0) {
      std::deque<Command> admitted;
      for (Command& command : batch) {
        if (per_client[command.client]++ < config_.client_budget_per_cycle) {
          admitted.push_back(std::move(command));
        } else {
          deferred.push_back(std::move(command));
        }
      }
      batch.swap(admitted);
    } else {
      for (const Command& command : batch) per_client[command.client] = 0;
    }
    // budget >= 1, so every client in the batch ran at least one command.
    clients_served = per_client.size();
  }
  // Execute the whole batch outside the queue lock — submissions keep
  // landing while the strand works, and they will be picked up by the
  // next cycle of the same task (the while-loop in schedule_drain).
  for (Command& command : batch) {
    execute(shard, command);
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard lock(quiesce_mutex_);
      quiesce_cv_.notify_all();
    }
  }
  {
    std::lock_guard lock(shard.client_mutex);
    sweep_idle(shard);
  }
  {
    std::lock_guard lock(shard.mutex);
    shard.max_clients_per_cycle =
        std::max(shard.max_clients_per_cycle, clients_served);
    shard.batch_sizes.add(batch.size());
    while (!deferred.empty()) {
      shard.queue.push_front(std::move(deferred.back()));
      deferred.pop_back();
    }
  }
  return batch.size();
}

std::size_t SessionPool::pump() {
  std::size_t ran = 0;
  for (auto& shard : shards_) {
    {
      std::lock_guard lock(shard->mutex);
      if (shard->draining) continue;  // a worker strand owns it right now
      shard->draining = true;
    }
    ran += drain_cycle(*shard);
    std::lock_guard lock(shard->mutex);
    shard->draining = false;
  }
  return ran;
}

void SessionPool::drain() {
  if (config_.manual_drain) {
    while (pending_.load(std::memory_order_acquire) != 0) pump();
    return;
  }
  std::unique_lock lock(quiesce_mutex_);
  quiesce_cv_.wait(lock, [this] {
    return pending_.load(std::memory_order_acquire) == 0;
  });
}

// ---- execution ------------------------------------------------------------

void SessionPool::finish(Shard& shard, RequestKind kind, bool error,
                         bool memo_hit, double wait_s, double service_s) {
  const double total_us = (wait_s + service_s) * 1e6;
  std::lock_guard lock(shard.mutex);
  ++shard.executed;
  if (error) ++shard.errors;
  if (memo_hit) ++shard.memoized;
  shard.latency[static_cast<std::size_t>(kind)].add(
      static_cast<std::uint64_t>(total_us));
  shard.service_ema_s = 0.9 * shard.service_ema_s + 0.1 * service_s;
}

void SessionPool::execute(Shard& shard, Command& command) {
  const Clock::time_point started = Clock::now();
  const double wait_s = seconds_between(command.enqueued, started);
  bool error = false;
  bool memo_hit = false;

  std::lock_guard clients_lock(shard.client_mutex);
  ClientState& state = shard.clients[command.client];
  state.last_active = shard.cycles;

  // Lazily acquire the client's fork (Control and memo-served Loads may
  // not need one; everything else does). The base is sealed at pool
  // construction, so the expected path is a lock-free fork_sealed stamp;
  // the fork mutex survives only as the unsealed-base fallback.
  auto ensure_session = [&]() -> core::Session& {
    if (!state.session) {
      if (base_.sealed()) {
        state.session.emplace(base_.fork_sealed());
        forks_wait_free_.fetch_add(1, std::memory_order_relaxed);
      } else {
        std::lock_guard fork_lock(fork_mutex_);
        state.session.emplace(base_.sealed() ? base_.fork_sealed()
                                             : base_.fork());
        forks_locked_.fetch_add(1, std::memory_order_relaxed);
      }
      state.pristine = true;
      state.collapsed_idle = false;
    }
    return *state.session;
  };

  // One Load, through the shared-world memo when sound: on a pristine fork
  // the report is a pure function of the exe (see header), so thousands of
  // clients loading the same closure cost one resolution fleet-wide. On a
  // model-free pool every hit receives the same immutable report object
  // (no copies); under a latency model a hit replays the stored charge log
  // through the client's own models, so sim_time_s (and the client's cache
  // warmth afterwards) is exactly what executing the load would produce.
  auto run_load =
      [&](const std::string& exe) -> std::shared_ptr<const loader::LoadReport> {
    const std::string key = exe.empty() ? base_.default_exe() : exe;
    if (memo_enabled_ && state.pristine) {
      MemoShard& memo = memo_shard_for(key);
      {
        std::shared_lock memo_lock(memo.mutex);
        if (auto it = memo.map.find(key); it != memo.map.end()) {
          MemoShard::Entry entry = it->second;  // shared_ptr copies
          memo_lock.unlock();
          memo_hit = true;
          memo.hits.fetch_add(1, std::memory_order_relaxed);
          if (!entry.charges) return entry.report;
          auto priced = std::make_shared<loader::LoadReport>(*entry.report);
          priced->stats.sim_time_s =
              replay_charges(ensure_session().fs(), *entry.charges);
          return priced;
        }
      }
      memo.misses.fetch_add(1, std::memory_order_relaxed);
      core::Session& session = ensure_session();
      MemoShard::Entry entry;
      if (reprice_) {
        // Record the charge log while executing: wrap both installed
        // models in forwarding recorders (costs and warmth unchanged),
        // restore the originals afterwards. The local slot mirrors
        // charge()'s lazy default when empty.
        auto log = std::make_shared<std::vector<ChargeRec>>();
        vfs::FileSystem& fs = session.fs();
        std::shared_ptr<vfs::LatencyModel> orig = fs.latency_model_ptr();
        std::shared_ptr<vfs::LatencyModel> orig_local =
            fs.local_latency_model_ptr();
        fs.set_latency_model(
            std::make_shared<RecordingModel>(orig, /*local=*/false,
                                             log.get()));
        fs.set_local_latency_model(std::make_shared<RecordingModel>(
            orig_local ? orig_local
                       : std::make_shared<vfs::LocalDiskModel>(),
            /*local=*/true, log.get()));
        loader::LoadReport report;
        try {
          report = session.load(exe);
        } catch (...) {
          fs.set_latency_model(std::move(orig));
          fs.set_local_latency_model(std::move(orig_local));
          throw;
        }
        fs.set_latency_model(std::move(orig));
        fs.set_local_latency_model(std::move(orig_local));
        entry.report =
            std::make_shared<const loader::LoadReport>(std::move(report));
        entry.charges = std::move(log);
      } else {
        entry.report =
            std::make_shared<const loader::LoadReport>(session.load(exe));
      }
      {
        std::unique_lock memo_lock(memo.mutex);
        memo.map.try_emplace(key, entry);
      }
      // This client's own run is returned even if a racing strand
      // inserted first — both are correct for their clients.
      return entry.report;
    }
    return std::make_shared<const loader::LoadReport>(ensure_session().load(exe));
  };

  // Every verb's exception lands in the FUTURE, never in the worker: a bad
  // request (missing exe, malformed image) is the client's problem, and
  // the strand moves on to the next command.
  auto deliver = [&](auto& cmd, auto&& produce) {
    try {
      if constexpr (std::is_void_v<decltype(produce())>) {
        produce();
        cmd.done.set_value();
      } else {
        cmd.done.set_value(produce());
      }
    } catch (...) {
      error = true;
      cmd.done.set_exception(std::current_exception());
    }
  };

  switch (command.kind) {
    case RequestKind::Load: {
      if (auto* shared = std::get_if<SharedLoadCmd>(&command.op)) {
        deliver(*shared, [&] { return run_load(shared->exe); });
      } else {
        auto& cmd = std::get<LoadCmd>(command.op);
        deliver(cmd, [&] { return loader::LoadReport(*run_load(cmd.exe)); });
      }
      break;
    }
    case RequestKind::LoadMany: {
      // Executed as a serial loop in the strand (not Session::load_many,
      // which would nest a private thread pool per request): reports are
      // byte-identical either way, and each entry still rides the memo.
      auto& cmd = std::get<LoadManyCmd>(command.op);
      deliver(cmd, [&] {
        std::vector<loader::LoadReport> reports;
        reports.reserve(cmd.exes.size());
        for (const std::string& exe : cmd.exes) {
          reports.push_back(loader::LoadReport(*run_load(exe)));
        }
        return reports;
      });
      break;
    }
    case RequestKind::Whatif: {
      // whatif works inside a throwaway sub-fork: the client's world is
      // observably unchanged, so the fork stays pristine.
      auto& cmd = std::get<WhatifCmd>(command.op);
      deliver(cmd, [&] { return ensure_session().whatif(cmd.exe); });
      break;
    }
    case RequestKind::Shrinkwrap: {
      auto& cmd = std::get<WrapCmd>(command.op);
      deliver(cmd, [&] {
        shrinkwrap::WrapReport report = ensure_session().shrinkwrap(cmd.exe);
        state.pristine = false;  // the fork's world diverged from the base
        return report;
      });
      break;
    }
    case RequestKind::LaunchFleet: {
      auto& cmd = std::get<FleetCmd>(command.op);
      deliver(cmd, [&] {
        core::Session& session = ensure_session();
        if (cmd.fleet) {
          // The caller's config (rank_setup, cluster_ranks, engine) rides
          // along: pooled tenants get the same fingerprint-clustered
          // O(#classes) measurement as direct launch_fleet callers.
          return session.launch_fleet(cmd.spec, cmd.exe, cmd.ranks,
                                      *cmd.fleet);
        }
        launch::FleetConfig fleet;
        fleet.cluster = session.config().cluster;
        return session.launch_fleet(cmd.spec, cmd.exe, cmd.ranks, fleet);
      });
      break;
    }
    case RequestKind::Query: {
      auto& cmd = std::get<QueryCmd>(command.op);
      deliver(cmd, [&] {
        core::Session& session = ensure_session();
        QueryResult result;
        result.inode_count = session.fs().inode_count();
        result.layer_depth = session.fs().layer_depth();
        result.owned_bytes = session.fs().owned_bytes();
        result.interned_paths = session.fs().paths().size();
        result.mount_count = session.fs().mounts().size();
        result.default_exe = session.default_exe();
        result.pristine = state.pristine;
        return result;
      });
      break;
    }
    case RequestKind::Control: {
      auto& cmd = std::get<ControlCmd>(command.op);
      deliver(cmd, [&] {
        if (cmd.reset) {
          // Lazy re-fork: drop the state; the next request re-admits.
          state = ClientState{};
          state.last_active = shard.cycles;
        } else {
          shard.clients.erase(command.client);
        }
      });
      break;
    }
  }

  const double service_s = seconds_between(started, Clock::now());
  finish(shard, command.kind, error, memo_hit, wait_s, service_s);
}

void SessionPool::sweep_idle(Shard& shard) {
  // Caller holds shard.client_mutex.
  if (config_.idle_evict_cycles == 0) return;
  std::uint64_t evicted = 0;
  std::uint64_t collapsed = 0;
  for (auto it = shard.clients.begin(); it != shard.clients.end();) {
    ClientState& state = it->second;
    const bool idle = state.session &&
                      shard.cycles - state.last_active >=
                          config_.idle_evict_cycles;
    if (!idle) {
      ++it;
      continue;
    }
    if (state.pristine) {
      // A pristine fork carries no divergence: drop it, re-fork O(1) on
      // the next request.
      it = shard.clients.erase(it);
      ++evicted;
      continue;
    }
    if (!state.collapsed_idle) {
      // A mutated fork must keep its divergence, but flattening it stops
      // it pinning the fork family's frozen generations and makes its
      // lookups flat for whenever the owner returns.
      state.session->fs().collapse();
      state.collapsed_idle = true;
      ++collapsed;
    }
    ++it;
  }
  if (evicted != 0 || collapsed != 0) {
    std::lock_guard lock(shard.mutex);
    shard.evicted += evicted;
    shard.collapsed += collapsed;
  }
}

// ---- typed submits --------------------------------------------------------

std::future<loader::LoadReport> SessionPool::submit_load(ClientId client,
                                                         std::string exe) {
  LoadCmd cmd{std::move(exe), {}};
  auto future = cmd.done.get_future();
  Command command;
  command.op = std::move(cmd);
  enqueue(client, RequestKind::Load, std::move(command));
  return future;
}

std::future<std::shared_ptr<const loader::LoadReport>>
SessionPool::submit_load_shared(ClientId client, std::string exe) {
  SharedLoadCmd cmd{std::move(exe), {}};
  auto future = cmd.done.get_future();
  Command command;
  command.op = std::move(cmd);
  enqueue(client, RequestKind::Load, std::move(command));
  return future;
}

std::future<std::vector<loader::LoadReport>> SessionPool::submit_load_many(
    ClientId client, std::vector<std::string> exes) {
  LoadManyCmd cmd{std::move(exes), {}};
  auto future = cmd.done.get_future();
  Command command;
  command.op = std::move(cmd);
  enqueue(client, RequestKind::LoadMany, std::move(command));
  return future;
}

std::future<core::Session::WhatIfReport> SessionPool::submit_whatif(
    ClientId client, std::string exe) {
  WhatifCmd cmd{std::move(exe), {}};
  auto future = cmd.done.get_future();
  Command command;
  command.op = std::move(cmd);
  enqueue(client, RequestKind::Whatif, std::move(command));
  return future;
}

std::future<shrinkwrap::WrapReport> SessionPool::submit_shrinkwrap(
    ClientId client, std::string exe) {
  WrapCmd cmd{std::move(exe), {}};
  auto future = cmd.done.get_future();
  Command command;
  command.op = std::move(cmd);
  enqueue(client, RequestKind::Shrinkwrap, std::move(command));
  return future;
}

std::future<launch::LaunchResult> SessionPool::submit_launch_fleet(
    ClientId client, core::SandboxSpec spec, std::string exe, int ranks) {
  FleetCmd cmd{std::move(spec), std::move(exe), ranks, std::nullopt, {}};
  auto future = cmd.done.get_future();
  Command command;
  command.op = std::move(cmd);
  enqueue(client, RequestKind::LaunchFleet, std::move(command));
  return future;
}

std::future<launch::LaunchResult> SessionPool::submit_launch_fleet(
    ClientId client, core::SandboxSpec spec, std::string exe, int ranks,
    launch::FleetConfig fleet) {
  FleetCmd cmd{std::move(spec), std::move(exe), ranks, std::move(fleet), {}};
  auto future = cmd.done.get_future();
  Command command;
  command.op = std::move(cmd);
  enqueue(client, RequestKind::LaunchFleet, std::move(command));
  return future;
}

std::future<QueryResult> SessionPool::submit_query(ClientId client) {
  QueryCmd cmd;
  auto future = cmd.done.get_future();
  Command command;
  command.op = std::move(cmd);
  enqueue(client, RequestKind::Query, std::move(command));
  return future;
}

std::future<void> SessionPool::release(ClientId client) {
  ControlCmd cmd{/*reset=*/false, {}};
  auto future = cmd.done.get_future();
  Command command;
  command.op = std::move(cmd);
  enqueue(client, RequestKind::Control, std::move(command));
  return future;
}

std::future<void> SessionPool::reset(ClientId client) {
  ControlCmd cmd{/*reset=*/true, {}};
  auto future = cmd.done.get_future();
  Command command;
  command.op = std::move(cmd);
  enqueue(client, RequestKind::Control, std::move(command));
  return future;
}

// ---- observability --------------------------------------------------------

PoolStats SessionPool::stats() const {
  PoolStats stats;
  stats.shards = shards_.size();
  stats.queue_depths.reserve(shards_.size());
  std::array<analysis::Histogram, kRequestKinds> merged;
  analysis::Histogram batches;
  for (const auto& shard : shards_) {
    {
      std::lock_guard lock(shard->mutex);
      stats.queue_depths.push_back(shard->queue.size());
      stats.executed += shard->executed;
      stats.memoized += shard->memoized;
      stats.rejected += shard->rejected;
      stats.evicted += shard->evicted;
      stats.collapsed += shard->collapsed;
      stats.worker_errors += shard->errors;
      stats.drain_cycles += shard->cycles;
      stats.max_clients_per_cycle =
          std::max(stats.max_clients_per_cycle, shard->max_clients_per_cycle);
      for (std::size_t k = 0; k < kRequestKinds; ++k) {
        for (const std::uint64_t sample : shard->latency[k].samples()) {
          merged[k].add(sample);
        }
      }
      for (const std::uint64_t sample : shard->batch_sizes.samples()) {
        batches.add(sample);
      }
    }
    std::lock_guard lock(shard->client_mutex);
    for (const auto& [id, state] : shard->clients) {
      if (!state.session) continue;
      ++stats.clients_live;
      stats.fork_owned_bytes += state.session->fs().owned_bytes();
    }
  }
  stats.admitted = stats.executed + pending_.load(std::memory_order_acquire);
  stats.forks_wait_free = forks_wait_free_.load(std::memory_order_relaxed);
  stats.forks_locked = forks_locked_.load(std::memory_order_relaxed);
  stats.memo_shard_hits.reserve(memo_shards_.size());
  stats.memo_shard_misses.reserve(memo_shards_.size());
  for (const auto& memo : memo_shards_) {
    const std::uint64_t hits = memo->hits.load(std::memory_order_relaxed);
    const std::uint64_t misses = memo->misses.load(std::memory_order_relaxed);
    stats.memo_shard_hits.push_back(hits);
    stats.memo_shard_misses.push_back(misses);
    stats.memo_hits += hits;
    stats.memo_misses += misses;
  }
  if (!batches.empty()) {
    stats.drain_batch.cycles = batches.size();
    stats.drain_batch.p50 = static_cast<double>(batches.quantile(0.50));
    stats.drain_batch.p99 = static_cast<double>(batches.quantile(0.99));
    stats.drain_batch.max = batches.max();
  }
  stats.pool_threads = pool_->size();
  stats.pool_steals = pool_->steal_count();
  for (std::size_t k = 0; k < kRequestKinds; ++k) {
    const analysis::Histogram& h = merged[k];
    if (h.empty()) continue;
    OpLatency& lat = stats.latency[k];
    lat.count = h.size();
    lat.p50_us = static_cast<double>(h.quantile(0.50));
    lat.p99_us = static_cast<double>(h.quantile(0.99));
    lat.max_us = static_cast<double>(h.max());
  }
  return stats;
}

}  // namespace depchaos::svc
