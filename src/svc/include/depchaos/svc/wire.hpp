// svc wire layer — the session service over a socket.
//
// PR 7-9 built svc::SessionPool, but it was only reachable in-process;
// this header makes the pool externally loadable: a versioned,
// length-prefixed binary protocol plus a poll-driven WireServer that
// decodes request frames into the existing submit_* calls and a blocking
// WireClient that drives it. The storm story does not change — remote
// clients hit the same sharded admission queues, ride the same Load memo,
// and receive the same Overloaded backpressure (shard, queue depth, and
// retry-after cross the wire, so a remote client backs off exactly like
// an in-process one).
//
// Frame layout (all integers little-endian; doubles are IEEE-754 bit
// patterns in a u64):
//
//   request:   magic  u32   0x44435750 ("DCWP" read as bytes P,W,C,D)
//              version u16  1
//              kind    u8   WireKind
//              reserved u8  must be 0
//              client  u64  caller-chosen ClientId (the fork identity;
//                           connections are transport, ids are state)
//              seq     u64  echoed verbatim in the response
//              length  u32  payload byte count
//              payload ...  per-kind encoding (see below)
//
//   response:  magic u32, version u16, status u8 (WireStatus), kind u8
//              (echo), seq u64, length u32, payload ...
//
// Request payloads: Load/Whatif/Shrinkwrap carry the exe path as raw
// bytes (empty = the world's default exe); LoadMany a u32 count then
// length-prefixed strings; Query/Release/Reset/Shutdown are empty.
// Response payloads: Ok carries the canonical encoding of the result
// type (encode_load_report and friends below — the SAME bytes a caller
// would get by encoding the in-process submit_* result, which is what
// the loopback byte-identity tests assert); Error carries the exception
// message as raw bytes; Overloaded carries shard u64 + queue depth u64 +
// retry-after f64.
//
// LaunchFleet does not cross the wire: its SandboxSpec carries an
// in-memory image filesystem and FleetConfig a rank_setup hook — neither
// serializes. (LoadedObject::object, the parsed ELF handle, is likewise a
// process-local cache handle and is not encoded; decode leaves it null.)
//
// Robustness by construction: per-connection read deadline (a partial
// frame that stalls past it gets an error frame, then close) and
// max-frame bound; malformed, truncated, or bit-flipped frames are
// answered with a clean Error frame and a connection close — never a
// crash or a hung strand; writes are MSG_NOSIGNAL (SIGPIPE-safe) and a
// peer that disconnects mid-request just has its in-flight responses
// discarded. Graceful shutdown stops accepting, flushes every in-flight
// response (bounded by drain_deadline_s), then drains the pool.
//
//   svc::SessionPool pool(std::move(base));
//   svc::WireServer server(pool);               // ephemeral port
//   svc::WireClient client("127.0.0.1", server.port());
//   loader::LoadReport r = client.load(7, "/usr/bin/bin0");
//   server.stop();                              // graceful
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "depchaos/svc/session_pool.hpp"

namespace depchaos::svc {

inline constexpr std::uint32_t kWireMagic = 0x44435750u;  // "DCWP"
inline constexpr std::uint16_t kWireVersion = 1;
inline constexpr std::size_t kWireRequestHeaderBytes = 28;
inline constexpr std::size_t kWireResponseHeaderBytes = 20;

/// Request kinds a frame can carry. Shutdown is the admin verb the CI
/// smoke uses to stop a `depchaos serve --listen` host from the client
/// side; everything else maps 1:1 onto a SessionPool submit_* call.
enum class WireKind : std::uint8_t {
  Load = 0,
  LoadMany = 1,
  Whatif = 2,
  Shrinkwrap = 3,
  Query = 4,
  Release = 5,
  Reset = 6,
  Shutdown = 7,
};
inline constexpr std::uint8_t kWireKindMax =
    static_cast<std::uint8_t>(WireKind::Shutdown);
std::string_view wire_kind_name(WireKind kind);

enum class WireStatus : std::uint8_t {
  Ok = 0,
  Error = 1,       // the verb threw; payload = exception message
  Overloaded = 2,  // admission rejected; payload = shard, depth, retry-after
};

/// Malformed frame, truncated payload, protocol violation, or a transport
/// failure on the client side.
class WireError : public Error {
 public:
  explicit WireError(const std::string& what) : Error("wire: " + what) {}
};

// ---- canonical result encodings -------------------------------------------
// Deterministic byte encodings of every wire-served result type. These are
// the protocol's response payloads AND the byte-identity oracle: encoding
// an in-process submit_* result must equal the payload a remote client
// received for the same request. decode_* inverts encode_* exactly
// (encode(decode(bytes)) == bytes for valid input) and throws WireError on
// truncated or trailing bytes.

std::string encode_load_report(const loader::LoadReport& report);
loader::LoadReport decode_load_report(std::string_view bytes);

std::string encode_load_reports(const std::vector<loader::LoadReport>& reports);
std::vector<loader::LoadReport> decode_load_reports(std::string_view bytes);

std::string encode_wrap_report(const shrinkwrap::WrapReport& report);
shrinkwrap::WrapReport decode_wrap_report(std::string_view bytes);

std::string encode_whatif_report(const core::Session::WhatIfReport& report);
core::Session::WhatIfReport decode_whatif_report(std::string_view bytes);

std::string encode_query_result(const QueryResult& result);
QueryResult decode_query_result(std::string_view bytes);

// ---- frame assembly --------------------------------------------------------

std::string encode_request_frame(WireKind kind, ClientId client,
                                 std::uint64_t seq, std::string_view payload);
std::string encode_response_frame(WireStatus status, WireKind kind,
                                  std::uint64_t seq, std::string_view payload);

/// One decoded response frame (header + raw payload). Typed accessors on
/// WireClient decode the payload; byte-identity tests compare it raw.
struct WireResponse {
  WireStatus status = WireStatus::Ok;
  WireKind kind = WireKind::Load;
  std::uint64_t seq = 0;
  std::string payload;

  /// Throws: Overloaded (reconstructed — shard/depth/retry-after survive
  /// the wire) on Overloaded status, WireError carrying the server's
  /// message on Error status. No-op on Ok.
  void throw_if_failed() const;
};

// ---- server ----------------------------------------------------------------

struct WireConfig {
  /// Bind address. Loopback by default: the simulator's service is a
  /// same-host demo unless deliberately exposed.
  std::string host = "127.0.0.1";
  /// 0 = ephemeral; WireServer::port() reports the bound port either way.
  std::uint16_t port = 0;
  /// Frames whose payload length exceeds this are decode errors (error
  /// frame, then close) — a garbage length prefix cannot make the server
  /// buffer gigabytes.
  std::uint32_t max_frame_bytes = 8u << 20;
  /// A connection sitting on a PARTIAL frame longer than this gets an
  /// error frame and a close (idle connections between frames are fine).
  double read_deadline_s = 30.0;
  /// Graceful-stop bound: how long stop() waits for in-flight responses
  /// to finish flushing before force-closing the stragglers.
  double drain_deadline_s = 10.0;
  /// listen(2) backlog.
  int backlog = 64;
};

/// Counters a running server exposes (joins the PoolStats dashboard).
struct WireStats {
  std::uint64_t accepted = 0;       // connections ever accepted
  std::uint64_t active = 0;         // connections open right now
  std::uint64_t frames_in = 0;      // well-formed request frames decoded
  std::uint64_t frames_out = 0;     // response frames fully written
  std::uint64_t decode_errors = 0;  // malformed/truncated/oversized frames
  std::uint64_t timeouts = 0;       // read-deadline closes
  std::uint64_t overloaded = 0;     // responses carrying backpressure
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
};

/// Poll-driven socket front end over a SessionPool. One acceptor+IO
/// thread owns every connection: it decodes frames into pool submit_*
/// calls (so admission, fairness, memoization, and backpressure are the
/// pool's — unchanged), keeps each connection's in-flight futures in a
/// pending set, and writes responses AS THEY COMPLETE, tagged by request
/// sequence number — a slow shrinkwrap never blocks a later query on the
/// same connection (out-of-order completion is the contract; clients
/// match on seq).
class WireServer {
 public:
  /// Binds and starts serving immediately. Throws WireError if the
  /// address cannot be bound. The pool must outlive the server.
  explicit WireServer(SessionPool& pool, WireConfig config = {});
  ~WireServer();  // graceful stop()

  WireServer(const WireServer&) = delete;
  WireServer& operator=(const WireServer&) = delete;

  /// The bound port (the actual one when config.port was 0).
  std::uint16_t port() const { return port_; }

  /// Graceful shutdown: stop accepting, finish in-flight requests and
  /// flush their responses (bounded by drain_deadline_s), close every
  /// connection, then drain the pool. Idempotent; safe to call while a
  /// remote Shutdown frame is doing the same thing.
  void stop();

  /// Block until the server has stopped (a remote Shutdown frame or a
  /// concurrent stop()).
  void wait();

  bool running() const { return running_.load(std::memory_order_acquire); }

  WireStats stats() const;

 private:
  struct Connection;

  void io_loop();
  void accept_ready();
  void read_ready(Connection& conn);
  bool parse_frames(Connection& conn);  // false = close this connection
  void dispatch(Connection& conn, WireKind kind, ClientId client,
                std::uint64_t seq, std::string payload);
  void poll_pending(Connection& conn);
  bool flush_writes(Connection& conn);  // false = peer gone, close
  void respond(Connection& conn, WireStatus status, WireKind kind,
               std::uint64_t seq, std::string_view payload);
  void close_connection(int fd);
  void wake();

  SessionPool& pool_;
  WireConfig config_;
  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  std::uint16_t port_ = 0;

  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};

  // Owned exclusively by the IO thread after construction.
  std::unordered_map<int, std::unique_ptr<Connection>> connections_;

  // Counters are atomics: written by the IO thread, read by stats().
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> active_{0};
  std::atomic<std::uint64_t> frames_in_{0};
  std::atomic<std::uint64_t> frames_out_{0};
  std::atomic<std::uint64_t> decode_errors_{0};
  std::atomic<std::uint64_t> timeouts_{0};
  std::atomic<std::uint64_t> overloaded_{0};
  std::atomic<std::uint64_t> bytes_in_{0};
  std::atomic<std::uint64_t> bytes_out_{0};

  std::mutex join_mutex_;  // serializes the join in stop()/wait()
  std::thread io_thread_;
};

// ---- client ----------------------------------------------------------------

/// Blocking client for one connection. Typed helpers do a full round trip
/// and decode; send()/recv_response() are the pipelining primitives the
/// out-of-order tests use (send N requests, then collect responses in
/// whatever order the server finishes them — recv_for() stashes frames
/// for other sequence numbers).
class WireClient {
 public:
  /// Connects (getaddrinfo; numeric IPs and names both work). Throws
  /// WireError on failure. `timeout_s` bounds each blocking recv.
  WireClient(const std::string& host, std::uint16_t port,
             double timeout_s = 30.0);
  ~WireClient();

  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;

  // ---- typed round trips (throw Overloaded / WireError on failure) --------
  loader::LoadReport load(ClientId client, const std::string& exe = {});
  std::vector<loader::LoadReport> load_many(ClientId client,
                                            std::vector<std::string> exes);
  core::Session::WhatIfReport whatif(ClientId client,
                                     const std::string& exe = {});
  shrinkwrap::WrapReport shrinkwrap(ClientId client,
                                    const std::string& exe = {});
  QueryResult query(ClientId client);
  void release(ClientId client);
  void reset(ClientId client);
  /// Ask the server to shut down gracefully (responds before stopping).
  void shutdown();

  /// One full round trip returning the raw response frame (what the
  /// byte-identity tests compare against encode_* of in-process results).
  WireResponse call(WireKind kind, ClientId client,
                    std::string_view payload = {});

  // ---- pipelining primitives ----------------------------------------------
  /// Write one request frame; returns its sequence number.
  std::uint64_t send(WireKind kind, ClientId client,
                     std::string_view payload = {});
  /// Read the next response frame off the socket (any seq).
  WireResponse recv_response();
  /// Read until the response for `seq` arrives; responses for other
  /// sequence numbers are stashed and returned by their own recv_for().
  WireResponse recv_for(std::uint64_t seq);

 private:
  void write_all(std::string_view bytes);

  int fd_ = -1;
  std::uint64_t next_seq_ = 1;
  std::string read_buffer_;
  std::unordered_map<std::uint64_t, WireResponse> stash_;
};

}  // namespace depchaos::svc
